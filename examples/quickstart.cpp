// Quickstart: run one instance of the paper's <>WLM consensus
// (Algorithm 2) among 8 simulated processes whose network stabilizes at
// round GSR = 12, and watch it decide within 4 rounds of GSR (the
// stable-leader bound of Theorem 10(b)) while sending only O(n) messages
// per stable round.
#include <iostream>
#include <memory>

#include "consensus/factory.hpp"
#include "giraf/engine.hpp"
#include "models/schedule.hpp"
#include "oracles/omega.hpp"

using namespace timing;

int main() {
  constexpr int kN = 8;
  constexpr ProcessId kLeader = 2;
  constexpr Round kGsr = 12;

  // Every process proposes a different value; consensus must pick one.
  std::vector<Value> proposals;
  for (int i = 0; i < kN; ++i) proposals.push_back(100 + i);

  // A stable leader known from the start (the common case the paper
  // optimises for) and a network that conforms to <>WLM from round 12.
  auto oracle = std::make_shared<DesignatedOracle>(kLeader);
  RoundEngine engine(make_group(AlgorithmKind::kWlm, proposals), oracle);

  ScheduleConfig sched;
  sched.n = kN;
  sched.model = TimingModel::kWlm;
  sched.leader = kLeader;
  sched.gsr = kGsr;
  sched.pre_gsr_p = 0.25;  // chaotic network before stabilization
  sched.seed = 2024;
  ScheduleSampler sampler(sched);

  const Round decided = engine.run(sampler, /*max_rounds=*/100);
  if (decided < 0) {
    std::cerr << "did not decide (unexpected)\n";
    return 1;
  }

  std::cout << "GSR (network stabilization round): " << kGsr << "\n";
  std::cout << "global decision round:             " << decided << " (bound: GSR+3 = "
            << kGsr + 3 << ")\n";
  for (ProcessId i = 0; i < kN; ++i) {
    std::cout << "  p" << i << " proposed " << proposals[i] << ", decided "
              << engine.process(i).decision() << " in round "
              << engine.decision_round(i) << "\n";
  }
  std::cout << "messages in the last (stable) round: "
            << engine.messages_last_round() << "  -- linear in n: 2(n-1) = "
            << 2 * (kN - 1) << "\n";
  std::cout << "total messages: " << engine.stats().messages_sent << "\n";
  return 0;
}

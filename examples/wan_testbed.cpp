// The full Section 5 pipeline on the simulated PlanetLab testbed:
// 8 "sites" as threads over a latency-injecting datagram hub, running
//   1. ping-based pairwise latency estimation (Section 5.1),
//   2. offline election of a well-connected leader (Section 5.2's
//      method - expect the UK site),
//   3. round-synchronized consensus (Algorithm 2) without synchronized
//      clocks, several instances back to back.
//
// Every code path here is the same one the integration tests drive over
// real UDP sockets; the hub injects WAN latencies scaled down 20x so the
// example finishes quickly (a 170 ms WAN timeout becomes 8.5 ms).
#include <barrier>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "consensus/factory.hpp"
#include "net/ping.hpp"
#include "net/transport.hpp"
#include "oracles/omega.hpp"
#include "roundsync/roundsync.hpp"
#include "sim/latency_model.hpp"

using namespace timing;

namespace {

constexpr double kScale = 20.0;  // WAN ms -> example ms

/// Wraps the WAN model, dividing all latencies by kScale.
class ScaledWan final : public LatencyModel {
 public:
  ScaledWan(WanProfile profile, std::uint64_t seed) : wan_(profile, seed) {}
  int n() const noexcept override { return wan_.n(); }
  void begin_round(Round k) override { wan_.begin_round(k); }
  double sample_ms(ProcessId s, ProcessId d) override {
    return wan_.sample_ms(s, d) / kScale;
  }
  std::string node_name(ProcessId i) const override {
    return wan_.node_name(i);
  }
 private:
  WanLatencyModel wan_;
};

}  // namespace

int main() {
  constexpr int kN = 8;
  constexpr double kTimeoutMs = 170.0 / kScale;  // the Fig 1(i) optimum
  constexpr int kInstances = 3;

  WanProfile profile;
  profile.slow_run_prob = 0.0;  // keep the demo snappy
  auto hub = std::make_shared<InProcHub>(kN);
  hub->set_latency_model(std::make_unique<ScaledWan>(profile, 99),
                         kTimeoutMs);
  WanLatencyModel names(profile, 1);  // for site names only

  struct SiteResult {
    PingReport ping;
    ProcessId leader = kNoProcess;
    std::vector<Value> decisions;
    std::vector<double> times_ms;
  };
  std::vector<SiteResult> sites(kN);
  std::vector<std::thread> threads;
  // The paper measured all pairs "before starting the experiments" and
  // elected offline from the full matrix; the barrier stands in for that
  // out-of-band exchange of ping reports.
  std::barrier rendezvous(kN);

  for (ProcessId i = 0; i < kN; ++i) {
    threads.emplace_back([&, i] {
      auto& site = sites[static_cast<std::size_t>(i)];
      InProcTransport transport(hub, i);

      // Enough samples to average out the bursty CN outbound links -
      // with too few pings the election gets noisy, exactly why the
      // paper measured "the average latency ... using pings" plural.
      PingConfig pcfg;
      pcfg.pings_per_peer = 25;
      pcfg.probe_interval = std::chrono::milliseconds(2);
      pcfg.total_duration = std::chrono::milliseconds(8000);
      site.ping = measure_peer_rtts(transport, kN, pcfg);

      // Exchange reports, then every site elects from the same full
      // matrix; the answer is unanimous (the UK site), as in the paper.
      rendezvous.arrive_and_wait();
      std::vector<std::vector<double>> rtt(kN, std::vector<double>(kN, 0.0));
      for (ProcessId a = 0; a < kN; ++a) {
        for (ProcessId b = 0; b < kN; ++b) {
          rtt[a][b] = sites[static_cast<std::size_t>(a)].ping.avg_rtt_ms[b];
        }
      }
      site.leader = elect_well_connected(rtt);

      DesignatedOracle oracle(site.leader);
      for (int inst = 0; inst < kInstances; ++inst) {
        auto protocol =
            make_protocol(AlgorithmKind::kWlm, i, kN, 7000 + 10 * inst + i);
        RoundSyncConfig cfg;
        cfg.timeout_ms = kTimeoutMs;
        cfg.max_rounds = 600;
        cfg.first_round = 1 + inst * 100000;
        cfg.one_way_ms.clear();
        for (ProcessId j = 0; j < kN; ++j) {
          cfg.one_way_ms.push_back(site.ping.one_way_ms(j));
        }
        RoundSyncRunner runner(*protocol, &oracle, transport, kN, cfg);
        const auto r = runner.run();
        site.decisions.push_back(r.decided ? protocol->decision() : kNoValue);
        site.times_ms.push_back(r.elapsed_ms);
      }
    });
  }
  for (auto& t : threads) t.join();

  std::printf("measured RTTs from CH (site 0), ms (scaled 1/%.0f):\n", kScale);
  for (ProcessId j = 0; j < kN; ++j) {
    std::printf("  %-6s %7.2f\n", names.node_name(j).c_str(),
                sites[0].ping.avg_rtt_ms[j]);
  }

  std::printf("\nelected leader per site: ");
  bool unanimous = true;
  for (ProcessId i = 0; i < kN; ++i) {
    std::printf("%s ", names.node_name(sites[i].leader).c_str());
    if (sites[i].leader != sites[0].leader) unanimous = false;
  }
  std::printf("%s\n", unanimous ? "(unanimous)" : "(split!)");

  int ok = 0;
  for (int inst = 0; inst < kInstances; ++inst) {
    const Value v = sites[0].decisions[static_cast<std::size_t>(inst)];
    bool agreed = v != kNoValue;
    for (ProcessId i = 1; i < kN; ++i) {
      agreed &= sites[i].decisions[static_cast<std::size_t>(inst)] == v;
    }
    std::printf("instance %d: decision %lld, agreement %s\n", inst,
                static_cast<long long>(v), agreed ? "yes" : "NO");
    if (agreed) ++ok;
  }
  std::printf("\n%d/%d instances decided consistently across all 8 sites.\n",
              ok, kInstances);
  return ok == kInstances ? 0 : 1;
}

// Leader failover with the ONLINE Omega election (no designated oracle):
// a sequence of consensus instances in which the elected leader crashes
// midway. The election layer (punishment counters piggybacked on the
// consensus messages) abandons the dead leader, converges on a live one,
// and later instances keep deciding - the "stable leader election" story
// the paper cites [1, 24] to justify its stable-leader analysis, here as
// running code.
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "consensus/wlm.hpp"
#include "giraf/engine.hpp"
#include "models/schedule.hpp"
#include "oracles/omega_election.hpp"

using namespace timing;

namespace {

struct InstanceOutcome {
  bool decided = false;
  Value value = kNoValue;
  Round rounds = 0;
  ProcessId leader_at_end = kNoProcess;
};

InstanceOutcome run_instance(int n, int instance,
                             const std::vector<Round>& crashes) {
  std::vector<std::unique_ptr<Protocol>> group;
  std::vector<OmegaElection*> stacks;
  for (ProcessId i = 0; i < n; ++i) {
    auto stack = std::make_unique<OmegaElection>(
        i, n, std::make_unique<WlmConsensus>(i, n, 100 * (instance + 1) + i));
    stacks.push_back(stack.get());
    group.push_back(std::move(stack));
  }
  RoundEngine engine(std::move(group), /*oracle=*/nullptr);
  for (ProcessId i = 0; i < n; ++i) {
    if (crashes[static_cast<std::size_t>(i)] > 0) {
      engine.crash_at(i, crashes[static_cast<std::size_t>(i)]);
    }
  }

  // Perfect links among the living: isolates the election dynamics.
  ScheduleConfig sched;
  sched.n = n;
  sched.model = TimingModel::kEs;
  sched.gsr = 1;
  sched.seed = 99 + static_cast<std::uint64_t>(instance);
  sched.crash_rounds = crashes;
  ScheduleSampler sampler(sched);

  InstanceOutcome out;
  LinkMatrix a(n);
  for (Round k = 1; k <= 120; ++k) {
    sampler.sample_round(k, a);
    engine.step(a);
    if (engine.all_alive_decided()) {
      out.rounds = k;
      break;
    }
  }
  out.decided = engine.all_alive_decided();
  std::set<Value> vals;
  for (ProcessId i = 0; i < n; ++i) {
    if (engine.alive(i) && engine.process(i).has_decided()) {
      vals.insert(engine.process(i).decision());
    }
  }
  if (vals.size() == 1) out.value = *vals.begin();
  for (ProcessId i = 0; i < n; ++i) {
    if (engine.alive(i)) {
      out.leader_at_end = stacks[static_cast<std::size_t>(i)]->trusted_leader();
      break;
    }
  }
  return out;
}

}  // namespace

int main() {
  constexpr int kN = 5;
  std::vector<Round> crashes(kN, 0);

  std::printf("online Omega election under %d replicas (no external "
              "oracle)\n\n", kN);

  // Instance 0: everyone healthy. The id tie-break elects p0.
  auto o = run_instance(kN, 0, crashes);
  std::printf("instance 0: decided=%s value=%lld in %d rounds, leader p%d\n",
              o.decided ? "yes" : "NO", static_cast<long long>(o.value),
              o.rounds, o.leader_at_end);

  // Instance 1: p0 (the natural leader) dies at round 3, mid-protocol.
  crashes[0] = 3;
  o = run_instance(kN, 1, crashes);
  std::printf("instance 1: p0 crashes at round 3 -> decided=%s value=%lld "
              "in %d rounds, new leader p%d\n",
              o.decided ? "yes" : "NO", static_cast<long long>(o.value),
              o.rounds, o.leader_at_end);

  // Instance 2: p0 AND p1 are gone from the start; p2 must take over.
  crashes[0] = 1;
  crashes[1] = 1;
  o = run_instance(kN, 2, crashes);
  std::printf("instance 2: p0,p1 never start -> decided=%s value=%lld in "
              "%d rounds, leader p%d\n",
              o.decided ? "yes" : "NO", static_cast<long long>(o.value),
              o.rounds, o.leader_at_end);

  std::printf("\nthe election layer keeps Algorithm 2 live across leader "
              "crashes while never touching its safety.\n");
  return 0;
}

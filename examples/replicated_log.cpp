// State-machine replication (the paper's motivating use case, [20]): a
// replicated key-value store driven by the library's SMR layer - one
// consensus instance (Algorithm 2) per log slot.
//
// Five replicas propose conflicting commands per slot; consensus orders
// them. Each slot's network starts chaotic and stabilizes to <>WLM at a
// random round - decisions only happen once stability arrives, but
// safety never depends on it. At the end, all replicas hold identical
// stores (checked by state fingerprints).
#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "models/schedule.hpp"
#include "smr/smr.hpp"

using namespace timing;

int main() {
  constexpr int kN = 5;
  constexpr ProcessId kLeader = 0;
  constexpr int kSlots = 8;

  SmrGroupConfig cfg;
  cfg.n = kN;
  cfg.leader = kLeader;
  std::vector<std::unique_ptr<StateMachine>> machines;
  for (int i = 0; i < kN; ++i) {
    machines.push_back(std::make_unique<KvStateMachine>());
  }
  SmrGroup group(cfg, std::move(machines));

  Rng rng(2027);
  std::printf("replicated log: %d replicas, %d slots, leader p%d\n\n", kN,
              kSlots, kLeader);

  for (int slot = 0; slot < kSlots; ++slot) {
    std::vector<Command> proposals;
    for (int i = 0; i < kN; ++i) {
      proposals.push_back(make_kv_command(
          static_cast<std::uint32_t>(rng.uniform_int(4)),
          static_cast<std::uint32_t>(1000 * (slot + 1) + i)));
    }

    ScheduleConfig sched;
    sched.n = kN;
    sched.model = TimingModel::kWlm;
    sched.leader = kLeader;
    sched.gsr = 1 + static_cast<Round>(rng.uniform_int(10));
    sched.pre_gsr_p = 0.3;
    sched.seed = 0xbeef + static_cast<std::uint64_t>(slot);
    ScheduleSampler network(sched);

    const SmrInstanceResult r = group.run_instance(proposals, network);
    if (!r.decided) {
      std::fprintf(stderr, "slot %d failed to decide\n", slot);
      return 1;
    }
    std::printf(
        "slot %d: GSR=%2d, decided in round %2d (GSR+%d): set k%u := %u\n",
        slot, sched.gsr, r.rounds, r.rounds - sched.gsr,
        kv_command_key(r.command), kv_command_argument(r.command));
  }

  const auto& kv = static_cast<const KvStateMachine&>(group.machine(0));
  std::printf("\nfinal store (replica 0): %s\n", kv.describe().c_str());
  if (!group.consistent()) {
    std::fprintf(stderr, "replicas diverged!\n");
    return 1;
  }
  std::printf("all %d replicas hold identical stores (fingerprints match).\n",
              kN);
  return 0;
}

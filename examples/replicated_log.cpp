// State-machine replication (the paper's motivating use case, [20]): a
// replicated key-value store driven by the library's pipelined,
// batched replicated log - up to `pipeline` consensus instances
// (Algorithm 2) in flight at once, up to `batch` commands per decree.
//
// Commands are submitted tick by tick; batches seal on fullness or at
// the flush deadline, slots may DECIDE out of order (each slot's
// network stabilizes to <>WLM at its own random round) but COMMIT
// strictly in slot order, so all replicas apply the same sequence. One
// replica crashes partway through and stays down: it ends legitimately
// BEHIND, which is why the final check is consistent_among(survivors),
// not consistent().
#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "models/schedule.hpp"
#include "smr/replicated_log.hpp"

using namespace timing;

int main() {
  constexpr int kN = 5;
  constexpr ProcessId kLeader = 0;
  constexpr ProcessId kCrashed = 3;  // crashes in every slot from #5 on
  constexpr int kCommands = 24;

  ReplicatedLogConfig cfg;
  cfg.n = kN;
  cfg.leader = kLeader;
  cfg.pipeline = 4;
  cfg.batch = 3;
  cfg.flush_ticks = 2;
  std::vector<std::unique_ptr<StateMachine>> machines;
  for (int i = 0; i < kN; ++i) {
    machines.push_back(std::make_unique<KvStateMachine>());
  }

  // Each (slot, attempt) gets its own schedule: chaotic until a random
  // GSR, <>WLM-conforming afterwards. From slot 5 on, replica 3 is
  // crashed from round 1 - decisions still happen (majority alive).
  const SlotEnvFactory env_of = [](int slot, int attempt) {
    ScheduleConfig sched;
    sched.n = kN;
    sched.model = TimingModel::kWlm;
    sched.leader = kLeader;
    Rng rng(0xbeef + 31ULL * static_cast<std::uint64_t>(slot) +
            static_cast<std::uint64_t>(attempt));
    sched.gsr = 1 + static_cast<Round>(rng.uniform_int(10));
    sched.pre_gsr_p = 0.3;
    sched.seed = rng.next();
    SlotEnv env;
    if (slot >= 5) {
      env.crash_rounds.assign(kN, 0);
      env.crash_rounds[kCrashed] = 1;
      sched.crash_rounds = env.crash_rounds;
    }
    env.sampler = std::make_unique<ScheduleSampler>(sched);
    return env;
  };
  ReplicatedLog rlog(cfg, std::move(machines), env_of);

  std::printf(
      "replicated log: %d replicas, pipeline=%d, batch=%d, leader p%d "
      "(p%d crashes from slot 5)\n\n",
      kN, cfg.pipeline, cfg.batch, kLeader, kCrashed);

  Rng rng(2027);
  int submitted = 0;
  while (!(submitted == kCommands && rlog.drained())) {
    // A bursty closed loop: 0-2 fresh commands per tick until the
    // budget is spent, so some batches fill and some hit the deadline.
    const int burst = static_cast<int>(rng.uniform_int(3));
    for (int i = 0; i < burst && submitted < kCommands; ++i, ++submitted) {
      rlog.submit(
          make_kv_command(static_cast<std::uint32_t>(rng.uniform_int(4)),
                          static_cast<std::uint32_t>(1000 + submitted)));
    }
    rlog.tick();
    for (const SlotRecord& r : rlog.take_committed()) {
      if (!r.committed) {
        std::fprintf(stderr, "slot %d abandoned\n", r.slot);
        return 1;
      }
      std::printf(
          "slot %2d: %zu cmd(s), decided tick %3lld, committed tick %3lld "
          "(%d attempt(s), %2d rounds)%s\n",
          r.slot, r.ops.size(), r.decided_tick, r.committed_tick,
          r.attempts, r.rounds,
          r.decided_tick < r.committed_tick ? "  <- decided early, waited"
                                            : "");
    }
  }

  const auto& kv = static_cast<const KvStateMachine&>(rlog.machine(0));
  std::printf("\nfinal store (replica 0): %s\n", kv.describe().c_str());
  std::printf("committed %d slots across %lld ticks\n",
              rlog.slots_committed(), rlog.now());

  // Replica 3 missed every slot it was crashed for: the full-group
  // check reports divergence, the survivor check must not.
  if (rlog.consistent()) {
    std::fprintf(stderr,
                 "crashed replica unexpectedly caught up (consistent() "
                 "should be false)\n");
    return 1;
  }
  if (!rlog.consistent_among(rlog.alive_at_end())) {
    std::fprintf(stderr, "surviving replicas diverged!\n");
    return 1;
  }
  std::printf(
      "crashed replica p%d is behind (expected); all surviving replicas "
      "hold identical stores (fingerprints match).\n",
      kCrashed);
  return 0;
}

// The Section 5.3 timeout-tuning methodology as a tool: "a system
// administrator can perform measurements and choose the timeout for a
// specific system, according to such criteria."
//
// Given a testbed (the simulated WAN by default, or the LAN with --lan),
// the tuner sweeps round timeouts, measures for each model the expected
// time until the conditions for global decision hold, and recommends the
// optimal timeout per model together with the corresponding p - exactly
// the analysis behind Figure 1(i). The sweep is described declaratively
// as a ScenarioSpec (src/scenario) and executed by the same kernel the
// registered figure scenarios use.
#include <cstring>
#include <iostream>

#include "common/table.hpp"
#include "scenario/spec.hpp"

using namespace timing;

int main(int argc, char** argv) {
  scenario::ScenarioSpec spec;
  spec.runs = 25;
  spec.rounds_per_run = 300;
  spec.seed = 17;
  const bool lan = argc > 1 && std::strcmp(argv[1], "--lan") == 0;
  if (lan) {
    spec.sampler = scenario::SamplerKind::kLan;
    spec.timeouts_ms = {0.10, 0.15, 0.20, 0.25, 0.30, 0.40,
                        0.55, 0.70, 0.90, 1.20, 1.60};
  } else {
    spec.sampler = scenario::SamplerKind::kWan;
    spec.timeouts_ms = {140, 150, 160, 165, 170, 175, 180, 190,
                        200, 210, 220, 230, 250, 270, 300, 350};
  }

  std::cout << (lan ? "LAN" : "WAN (PlanetLab profile)")
            << " testbed, designated leader: node "
            << scenario::resolve_leader(spec) << "\n\n";
  const auto rs = scenario::run_experiment(spec);

  Table sweep({"timeout(ms)", "p", "ES time", "<>AFM time", "<>LM time",
               "<>WLM time"});
  for (const auto& r : rs) {
    const auto& es = r.models[model_index(TimingModel::kEs)];
    sweep.add_row(
        {Table::num(r.timeout_ms, lan ? 2 : 0), Table::num(r.mean_p, 3),
         (es.censored_fraction > 0.5 ? ">=" : "") +
             Table::num(es.mean_time_ms, lan ? 2 : 0),
         Table::num(r.models[model_index(TimingModel::kAfm)].mean_time_ms,
                    lan ? 2 : 0),
         Table::num(r.models[model_index(TimingModel::kLm)].mean_time_ms,
                    lan ? 2 : 0),
         Table::num(r.models[model_index(TimingModel::kWlm)].mean_time_ms,
                    lan ? 2 : 0)});
  }
  sweep.print(std::cout, "Expected time (ms) to global-decision conditions");

  std::cout << "\nRecommended timeouts:\n";
  Table rec({"model", "optimal timeout(ms)", "decision time(ms)",
             "p at optimum"});
  for (TimingModel m : kAllModels) {
    double best_t = 0, best_v = 1e300, best_p = 0;
    for (const auto& r : rs) {
      const auto& s = r.models[model_index(m)];
      if (s.censored_fraction > 0.5) continue;  // unreliable estimate
      if (s.mean_time_ms < best_v) {
        best_v = s.mean_time_ms;
        best_t = r.timeout_ms;
        best_p = r.mean_p;
      }
    }
    if (best_v < 1e299) {
      rec.add_row({to_string(m), Table::num(best_t, lan ? 2 : 0),
                   Table::num(best_v, lan ? 2 : 0), Table::num(best_p, 2)});
    } else {
      rec.add_row({to_string(m), "n/a (conditions never held)", "-", "-"});
    }
  }
  rec.print(std::cout);
  std::cout << "\nNote (the paper's conclusion): conservative timeouts do "
               "not necessarily help -\npast the optimum every extra "
               "millisecond of timeout is paid on every round.\n";
  return 0;
}

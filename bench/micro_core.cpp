// Micro-benchmarks (google-benchmark) for the hot paths: predicate
// evaluation, schedule sampling, the GIRAF engine, protocol compute
// functions, and the wire codec.
#include <benchmark/benchmark.h>

#include <memory>

#include "consensus/factory.hpp"
#include "consensus/wlm.hpp"
#include "giraf/engine.hpp"
#include "net/transport.hpp"
#include "models/predicates.hpp"
#include "models/schedule.hpp"
#include "net/codec.hpp"
#include "oracles/omega.hpp"
#include "sim/sampler.hpp"

using namespace timing;

namespace {

void BM_PredicateEvaluation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  IidTimelinessSampler s(n, 0.9, 1);
  LinkMatrix a(n);
  s.sample_round(1, a);
  const TimingModel m = static_cast<TimingModel>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(satisfies(m, a, 0));
  }
}
BENCHMARK(BM_PredicateEvaluation)
    ->ArgsProduct({{8, 32, 128}, {0, 1, 2, 3}});

void BM_PackedPredicateEvaluation(benchmark::State& state) {
  // All four models in one sweep over the bit plane (vs one model per
  // call in BM_PredicateEvaluation above).
  const int n = static_cast<int>(state.range(0));
  IidTimelinessSampler s(n, 0.9, 1);
  PackedLinkMatrix a(n);
  s.sample_round(1, a);
  ColumnDeficits cols;
  for (auto _ : state) {
    benchmark::DoNotOptimize(packed_evaluate_mask(a, 0, cols));
  }
}
BENCHMARK(BM_PackedPredicateEvaluation)->Arg(8)->Arg(32)->Arg(128);

void BM_FusedSampleEvaluate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  IidTimelinessSampler s(n, 0.95, 1);
  PackedLinkMatrix a(n);
  ColumnDeficits cols;
  Round k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.sample_round_and_evaluate(++k, 0, a, cols));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_FusedSampleEvaluate)->Arg(8)->Arg(32)->Arg(128);

void BM_IidSampleRound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  IidTimelinessSampler s(n, 0.95, 1);
  LinkMatrix a(n);
  Round k = 0;
  for (auto _ : state) {
    s.sample_round(++k, a);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_IidSampleRound)->Arg(8)->Arg(32)->Arg(128);

void BM_WanSampleRound(benchmark::State& state) {
  WanLatencyModel model(WanProfile{}, 3);
  LatencyTimelinessSampler s(model, 170.0);
  LinkMatrix a(8);
  Round k = 0;
  for (auto _ : state) {
    s.sample_round(++k, a);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_WanSampleRound);

void BM_ScheduleSampleRound(benchmark::State& state) {
  ScheduleConfig cfg;
  cfg.n = static_cast<int>(state.range(0));
  cfg.model = TimingModel::kWlm;
  cfg.gsr = 1;
  ScheduleSampler s(cfg);
  LinkMatrix a(cfg.n);
  Round k = 0;
  for (auto _ : state) {
    s.sample_round(++k, a);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ScheduleSampleRound)->Arg(8)->Arg(64);

void BM_EngineRound(benchmark::State& state) {
  // One full lock-step round of Algorithm 2 for n processes.
  const int n = static_cast<int>(state.range(0));
  std::vector<Value> proposals;
  for (int i = 0; i < n; ++i) proposals.push_back(i + 1);
  auto oracle = std::make_shared<DesignatedOracle>(0);
  RoundEngine engine(make_group(AlgorithmKind::kWlm, proposals), oracle);
  LinkMatrix a(n, 0);
  for (auto _ : state) {
    engine.step(a);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineRound)->Arg(8)->Arg(32)->Arg(128);

void BM_WlmCompute(benchmark::State& state) {
  const int n = 8;
  WlmConsensus p(0, n, 42);
  SendSpec init = p.initialize(0);
  RoundMsgs row(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    Message m = init.msg;
    m.leader = 0;
    row[static_cast<std::size_t>(j)] = m;
  }
  Round k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.compute(++k, row, 0));
  }
}
BENCHMARK(BM_WlmCompute);

void BM_CodecEncodeDecode(benchmark::State& state) {
  Message m;
  m.type = MsgType::kCommit;
  m.est = 123456789;
  m.ts = 17;
  m.leader = 3;
  Envelope e{19, 2, m};
  Bytes buf;
  for (auto _ : state) {
    buf.clear();
    encode(e, buf);
    benchmark::DoNotOptimize(decode(buf));
  }
  state.SetBytesProcessed(state.iterations() * 41);
}
BENCHMARK(BM_CodecEncodeDecode);

void BM_CodecRelayPayload(benchmark::State& state) {
  // Algorithm 3's relay of a full 8-process round.
  Message relay;
  relay.type = MsgType::kRelay;
  for (ProcessId j = 0; j < 8; ++j) {
    Message m;
    m.est = j;
    m.ts = j;
    relay.relay_from.push_back(j);
    relay.relay_msgs.push_back(m);
  }
  Envelope e{4, 1, relay};
  Bytes buf;
  for (auto _ : state) {
    buf.clear();
    encode(e, buf);
    benchmark::DoNotOptimize(decode(buf));
  }
}
BENCHMARK(BM_CodecRelayPayload);

}  // namespace

BENCHMARK_MAIN();

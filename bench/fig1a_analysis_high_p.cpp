// Figure 1(a): IID analysis, expected rounds to global decision vs p in
// the high-reliability regime (p in [0.99, 1]), n = 8.
//
// Paper's qualitative claims reproduced here:
//  * ES deteriorates drastically as p decreases even in this range;
//  * <>AFM, <>LM and the direct <>WLM algorithm stay excellent;
//  * the direct <>WLM algorithm pays practically nothing for cutting the
//    message complexity from Theta(n^2) to O(n);
//  * the simulated <>WLM (the <>LM algorithm over Algorithm 3) is clearly
//    worse than the direct one (7 conforming rounds vs 4).
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_fig1a, parameters come from the "fig1a" entry, and the same
// run is reachable as `timing_lab run fig1a [key=value ...]`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("fig1a", argc, argv);
}

// Figure 1(a): IID analysis, expected rounds to global decision vs p in
// the high-reliability regime (p in [0.99, 1]), n = 8.
//
// Paper's qualitative claims reproduced here:
//  * ES deteriorates drastically as p decreases even in this range;
//  * <>AFM, <>LM and the direct <>WLM algorithm stay excellent;
//  * the direct <>WLM algorithm pays practically nothing for cutting the
//    message complexity from Theta(n^2) to O(n);
//  * the simulated <>WLM (the <>LM algorithm over Algorithm 3) is clearly
//    worse than the direct one (7 conforming rounds vs 4).
#include <iostream>

#include "analysis/equations.hpp"
#include "common/table.hpp"

using namespace timing;
using namespace timing::analysis;

int main() {
  constexpr int n = 8;
  Table t({"p", "ES(3r)", "<>AFM(5r)", "<>LM(3r)", "<>WLM direct(4r)",
           "<>WLM simulated(7r)"});
  for (double p = 1.0; p >= 0.98999; p -= 0.001) {
    t.add_row({Table::num(p, 3),
               Table::num(e_rounds_es(n, p), 2),
               Table::num(e_rounds_afm(n, p), 2),
               Table::num(e_rounds_lm(n, p), 2),
               Table::num(e_rounds_wlm_direct(n, p), 2),
               Table::num(e_rounds_wlm_simulated(n, p), 2)});
  }
  t.print(std::cout,
          "Figure 1(a): E[rounds to global decision] vs p (IID analysis, "
          "n=8, high p)");
  return 0;
}

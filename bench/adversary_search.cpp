// Fitness-guided hunt for worst-case fault schedules: simulated
// annealing + elite pool over the fault-plan grammar, shrunk winners,
// and the search-beats-uniform-sampling acceptance gate (baseline=N).
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_adversary_search; the same run is reachable as
// `timing_lab run adversary/search`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("adversary/search", argc, argv);
}

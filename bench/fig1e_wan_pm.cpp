// Figure 1(e): WAN - measured P_M (incidence of rounds satisfying each
// model), averaged over the 33 runs per timeout, with 95% confidence
// intervals.
//
// Reproduced claims (Section 5.3):
//  * <>WLM's requirements hold far more often than everyone else's (only
//    the leader's links matter);
//  * <>LM and <>WLM are much easier than <>AFM and ES (at 160 ms:
//    P_ES = 0, P_AFM ~ 0.4, P_LM ~ 0.79, P_WLM ~ 0.94);
//  * the CIs of <>AFM/<>LM/<>WLM shrink with the timeout while ES's CI
//    GROWS (run-to-run spread from message loss).
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_fig1e; the same run is reachable as `timing_lab run fig1e`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("fig1e", argc, argv);
}

// Figure 1(e): WAN - measured P_M (incidence of rounds satisfying each
// model), averaged over the 33 runs per timeout, with 95% confidence
// intervals.
//
// Reproduced claims (Section 5.3):
//  * <>WLM's requirements hold far more often than everyone else's (only
//    the leader's links matter);
//  * <>LM and <>WLM are much easier than <>AFM and ES (at 160 ms:
//    P_ES = 0, P_AFM ~ 0.4, P_LM ~ 0.79, P_WLM ~ 0.94);
//  * the CIs of <>AFM/<>LM/<>WLM shrink with the timeout while ES's CI
//    GROWS (run-to-run spread from message loss).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace timing;

int main(int argc, char** argv) {
  const bool csv = timing::bench::csv_mode(argc, argv);
  const auto rs = run_experiment(timing::bench::wan_config());
  Table t({"timeout(ms)", "P_ES +-ci", "P_AFM +-ci", "P_LM +-ci",
           "P_WLM +-ci"});
  auto cell = [](const ModelTimeoutStats& m) {
    return Table::num(m.mean_pm, 3) + " +-" + Table::num(m.ci95_pm, 3);
  };
  for (const auto& r : rs) {
    t.add_row({Table::num(r.timeout_ms, 0),
               cell(r.models[model_index(TimingModel::kEs)]),
               cell(r.models[model_index(TimingModel::kAfm)]),
               cell(r.models[model_index(TimingModel::kLm)]),
               cell(r.models[model_index(TimingModel::kWlm)])});
  }
  timing::bench::emit(t, csv, std::string() +
          "Figure 1(e): WAN, measured P_M per timeout (mean over 33 runs, "
          "95% CI)");
  return 0;
}

// Chaos safety harness for a single algorithm (algorithm=KEY), under
// seeded random fault plans or a fixed plan given via fault=PLAN — the
// replay entry point quoted by chaos violation reports.
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_chaos_single; the same run is reachable as
// `timing_lab run chaos/single`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("chaos/single", argc, argv);
}

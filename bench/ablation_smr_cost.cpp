// Ablation: steady-state cost of a replicated service per committed
// command - the system-level consequence of the paper's message-
// complexity argument.
//
// "The same leader may persist for numerous instances of consensus
// (possibly thousands)": in that regime, each committed command costs
// one consensus instance on an already-stable network. We run long
// instance sequences with a stable leader and report, per algorithm,
// rounds and messages per command - Algorithm 2's O(n) advantage
// compounds across the log.
#include <iostream>
#include <memory>
#include <vector>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "models/schedule.hpp"
#include "smr/smr.hpp"

using namespace timing;

namespace {

struct PerCommand {
  double rounds = 0.0;
  double messages = 0.0;
  int decided = 0;
};

PerCommand run_sequence(AlgorithmKind kind, int n, int commands) {
  SmrGroupConfig cfg;
  cfg.n = n;
  cfg.algorithm = kind;
  cfg.leader = 0;
  std::vector<std::unique_ptr<StateMachine>> machines;
  for (int i = 0; i < n; ++i) {
    machines.push_back(std::make_unique<KvStateMachine>());
  }
  SmrGroup group(cfg, std::move(machines));

  PerCommand out;
  long long rounds_total = 0;
  for (int c = 0; c < commands; ++c) {
    std::vector<Command> proposals;
    for (int i = 0; i < n; ++i) {
      proposals.push_back(make_kv_command(static_cast<std::uint32_t>(c % 16),
                                          static_cast<std::uint32_t>(c + i)));
    }
    ScheduleConfig sched;
    sched.n = n;
    sched.model = kind == AlgorithmKind::kLm3 ? TimingModel::kLm
                                              : TimingModel::kWlm;
    sched.leader = 0;
    sched.gsr = 1;  // stable regime: the common case the paper optimises
    sched.seed = 0x1000 + static_cast<std::uint64_t>(c);
    ScheduleSampler network(sched);
    const auto r = group.run_instance(proposals, network);
    if (!r.decided) continue;
    ++out.decided;
    rounds_total += r.rounds;
  }
  out.rounds = out.decided ? static_cast<double>(rounds_total) / out.decided
                           : 0.0;
  // Messages per command: rounds x per-round complexity of the pattern.
  const double per_round = kind == AlgorithmKind::kWlm
                               ? 2.0 * (n - 1)
                               : static_cast<double>(n) * (n - 1);
  out.messages = out.rounds * per_round;
  return out;
}

}  // namespace

int main() {
  constexpr int kCommands = 50;
  Table t({"n", "Alg2 rounds/cmd", "Alg2 msgs/cmd", "LM-3 rounds/cmd",
           "LM-3 msgs/cmd", "msg ratio"});
  const std::vector<int> ns = {4, 8, 16, 32, 64};
  struct Point {
    PerCommand wlm, lm;
  };
  const auto points = run_trials<Point>(ns.size(), [&](std::size_t i) {
    return Point{run_sequence(AlgorithmKind::kWlm, ns[i], kCommands),
                 run_sequence(AlgorithmKind::kLm3, ns[i], kCommands)};
  });
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const PerCommand& wlm = points[i].wlm;
    const PerCommand& lm = points[i].lm;
    t.add_row({Table::integer(ns[i]), Table::num(wlm.rounds, 2),
               Table::num(wlm.messages, 0), Table::num(lm.rounds, 2),
               Table::num(lm.messages, 0),
               Table::num(lm.messages / wlm.messages, 1)});
  }
  t.print(std::cout,
          "Steady-state replication cost per committed command (stable "
          "leader, stable network, 50 commands per point)");
  std::cout << "\nAlgorithm 2 pays ~1 extra round per command and saves a\n"
               "factor ~n/2 in messages - at n = 64 every command costs\n"
               "hundreds of messages less. This is the paper's tradeoff\n"
               "expressed in the unit operators care about.\n";
  return 0;
}

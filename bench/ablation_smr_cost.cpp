// Ablation: steady-state cost of a replicated service per committed
// command - the system-level consequence of the paper's message-
// complexity argument.
//
// "The same leader may persist for numerous instances of consensus
// (possibly thousands)": in that regime, each committed command costs
// one consensus instance on an already-stable network. We run long
// instance sequences with a stable leader and report, per algorithm,
// rounds and messages per command - Algorithm 2's O(n) advantage
// compounds across the log.
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_ablation_smr_cost; the same run is reachable as
// `timing_lab run ablation/smr_cost`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("ablation/smr_cost", argc, argv);
}

// Figure 1(h): WAN - average TIME until the conditions for global
// decision hold: rounds x timeout. The interesting consequence (zoomed
// in Figure 1(i)): a longer timeout lowers the round count but raises the
// cost of each round, so each model has an optimal timeout.
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_fig1h; the same run is reachable as `timing_lab run fig1h`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("fig1h", argc, argv);
}

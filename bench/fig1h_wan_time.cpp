// Figure 1(h): WAN - average TIME until the conditions for global
// decision hold: rounds x timeout. The interesting consequence (zoomed
// in Figure 1(i)): a longer timeout lowers the round count but raises the
// cost of each round, so each model has an optimal timeout.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace timing;

int main(int argc, char** argv) {
  const bool csv = timing::bench::csv_mode(argc, argv);
  const auto rs = run_experiment(timing::bench::wan_config());
  Table t({"timeout(ms)", "ES(ms)", "<>AFM(ms)", "<>LM(ms)", "<>WLM(ms)"});
  for (const auto& r : rs) {
    const auto& es = r.models[model_index(TimingModel::kEs)];
    t.add_row({Table::num(r.timeout_ms, 0),
               (es.censored_fraction > 0 ? ">=" : "") +
                   Table::num(es.mean_time_ms, 0),
               Table::num(r.models[model_index(TimingModel::kAfm)].mean_time_ms, 0),
               Table::num(r.models[model_index(TimingModel::kLm)].mean_time_ms, 0),
               Table::num(r.models[model_index(TimingModel::kWlm)].mean_time_ms, 0)});
  }
  timing::bench::emit(t, csv, std::string() +
          "Figure 1(h): WAN, average time (ms) until the global-decision "
          "conditions hold (rounds x timeout)");
  return 0;
}

// Figure 1(d): WAN - how the round timeout translates into the fraction
// p of messages delivered on time. The paper works with timeouts that
// deliver up to ~99% ("assuring 100% is unrealistic" on a WAN).
//
// Anchor points from the paper: ~0.88 @ 160 ms, ~0.90 @ 170 ms,
// ~0.95 @ 200 ms, ~0.96 @ 210 ms.
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_fig1d; the same run is reachable as `timing_lab run fig1d`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("fig1d", argc, argv);
}

// Figure 1(d): WAN - how the round timeout translates into the fraction
// p of messages delivered on time. The paper works with timeouts that
// deliver up to ~99% ("assuring 100% is unrealistic" on a WAN).
//
// Anchor points from the paper: ~0.88 @ 160 ms, ~0.90 @ 170 ms,
// ~0.95 @ 200 ms, ~0.96 @ 210 ms.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace timing;

int main(int argc, char** argv) {
  const bool csv = timing::bench::csv_mode(argc, argv);
  const auto rs = run_experiment(timing::bench::wan_config());
  Table t({"timeout(ms)", "p (fraction timely)"});
  for (const auto& r : rs) {
    t.add_row({Table::num(r.timeout_ms, 0), Table::num(r.mean_p, 3)});
  }
  timing::bench::emit(t, csv, std::string() +
          "Figure 1(d): WAN timeout -> fraction of timely messages "
          "(8 PlanetLab-profile sites, 33 runs x 300 rounds)");
  return 0;
}

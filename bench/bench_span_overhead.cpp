// Span-tracing cost bench: what the causal span layer (obs/span.hpp)
// costs the live SMR ablation path (SmrGroup over a stable-regime
// schedule — the workload of ablation/smr_cost), in three modes:
//
//   off    - no tracer attached (what everyone pays by default);
//   ids    - causality only, no clock reads (deterministic traces);
//   timed  - monotonic timestamps on every begin/end (profiling mode).
//
// Gates (docs/OBSERVABILITY.md): the off path must stay under 3% — like
// bench_trace_overhead's null-sink contract, the honest bound comes from
// isolating the `spans && spans->enabled()` branch and scaling it to the
// run's emission-site crossings, since a full-run delta at this scale is
// scheduler noise. Timed mode must stay under 10%, measured directly.
// Budgets relax 3x under sanitizers.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <vector>

#include "models/schedule.hpp"
#include "obs/span.hpp"
#include "obs/trace_sink.hpp"
#include "smr/smr.hpp"
#include "smr/state_machine.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define TIMING_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define TIMING_BENCH_SANITIZED 1
#endif
#endif

using namespace timing;

namespace {

using BenchClock = std::chrono::steady_clock;

// Mid-point of the ablation/smr_cost group-size sweep {4..64}: big
// enough that the O(n^2) per-round consensus work dominates the clock
// and the constant per-round span cost is measured against realistic
// round work, small enough to finish in milliseconds.
constexpr int kN = 16;
constexpr int kCommands = 300;  // consensus instances per configuration
constexpr int kReps = 7;        // best-of to shed scheduler noise
#ifdef TIMING_BENCH_SANITIZED
constexpr double kBudgetScale = 3.0;
#else
constexpr double kBudgetScale = 1.0;
#endif
constexpr double kOffBudgetPct = 3.0 * kBudgetScale;
constexpr double kTimedBudgetPct = 10.0 * kBudgetScale;

double once_ms(const std::function<void()>& body) {
  const auto t0 = BenchClock::now();
  body();
  return std::chrono::duration<double, std::milli>(BenchClock::now() - t0)
      .count();
}

/// Interleaved best-of: round-robin the configurations within each rep
/// so drift and noise hit them all equally, keep each one's best rep.
std::vector<double> interleaved_best_ms(
    const std::vector<std::function<void()>>& bodies) {
  std::vector<double> best(bodies.size(), 1e300);
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t c = 0; c < bodies.size(); ++c) {
      const double ms = once_ms(bodies[c]);
      if (ms < best[c]) best[c] = ms;
    }
  }
  return best;
}

/// The live ablation workload: a stable-leader command sequence, one
/// consensus instance per command, fresh conforming schedule each time.
long long run_sequence(SpanTracer* spans) {
  SmrGroupConfig cfg;
  cfg.n = kN;
  cfg.algorithm = AlgorithmKind::kWlm;
  cfg.leader = 0;
  std::vector<std::unique_ptr<StateMachine>> machines;
  for (int i = 0; i < kN; ++i) {
    machines.push_back(std::make_unique<KvStateMachine>());
  }
  SmrGroup group(cfg, std::move(machines));
  group.set_span_tracer(spans);

  long long checksum = 0;
  for (int c = 0; c < kCommands; ++c) {
    std::vector<Command> proposals;
    for (int i = 0; i < kN; ++i) {
      proposals.push_back(make_kv_command(static_cast<std::uint32_t>(c % 16),
                                          static_cast<std::uint32_t>(c + i)));
    }
    ScheduleConfig sched;
    sched.n = kN;
    sched.model = TimingModel::kWlm;
    sched.leader = 0;
    sched.gsr = 1;  // stable regime: the steady state the paper optimises
    sched.seed = 0xabcdef + static_cast<std::uint64_t>(c);
    ScheduleSampler network(sched);
    const auto r = group.run_instance(proposals, network);
    checksum += r.rounds + (r.decided ? 1 : 0);
  }
  return checksum;
}

}  // namespace

int main() {
  (void)run_sequence(nullptr);  // warm-up: touch every code path once

  long long checksum = 0;  // defeat dead-code elimination
  std::size_t timed_events = 0;
  const std::vector<double> best = interleaved_best_ms({
      [&] { checksum += run_sequence(nullptr); },
      [&] {
        BufferSink sink;
        SpanTracer tracer(&sink, SpanMode::kIds);
        checksum += run_sequence(&tracer);
        checksum += static_cast<long long>(sink.events().size());
      },
      [&] {
        BufferSink sink;
        SpanTracer tracer(&sink, SpanMode::kTimed);
        checksum += run_sequence(&tracer);
        timed_events = sink.events().size();
      },
  });
  const double base_ms = best[0];
  const double ids_ms = best[1];
  const double timed_ms = best[2];
  const auto pct = [&](double ms) {
    return 100.0 * (ms - base_ms) / base_ms;
  };

  std::printf("SMR live path, n=%d, %d instances (best of %d)\n", kN,
              kCommands, kReps);
  std::printf("  %-6s %9.2f ms   baseline\n", "off", base_ms);
  std::printf("  %-6s %9.2f ms   %+6.2f%%\n", "ids", ids_ms, pct(ids_ms));
  std::printf("  %-6s %9.2f ms   %+6.2f%%  (%zu span events)\n", "timed",
              timed_ms, pct(timed_ms), timed_events);

  // The off-path gate. A full-run delta between "no tracer" and "tracer
  // off" is dominated by noise here, so isolate what the off path
  // actually adds — one pointer test plus one mode load per emission
  // site — on a pointer that is null at runtime but not provably null at
  // compile time, then scale the per-site cost to the number of site
  // crossings the timed run demonstrated.
  BufferSink micro_sink;
  SpanTracer micro_tracer(&micro_sink, SpanMode::kTimed);
  SpanTracer* null_tracer =
      std::getenv("TIMING_BENCH_FORCE_SINK") != nullptr ? &micro_tracer
                                                        : nullptr;
  constexpr int kIters = 2'000'000;
  std::uint64_t xa = 0x9e3779b97f4a7c15ull;
  std::uint64_t xb = 0x9e3779b97f4a7c15ull;
  const auto work = [](std::uint64_t& x) {
    for (int s = 0; s < 4; ++s) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    return x;
  };
  const std::vector<double> micro = interleaved_best_ms({
      [&] {
        for (int i = 0; i < kIters; ++i) {
          checksum += static_cast<long long>(work(xa) >> 60);
        }
      },
      [&] {
        for (int i = 0; i < kIters; ++i) {
          const std::uint64_t w = work(xb);
          if (null_tracer != nullptr && null_tracer->enabled()) {
            checksum += null_tracer->begin(
                make_span_id(span_kind::kRound, w & 0xFF, 0),
                0, span_kind::kRound);
          }
          checksum += static_cast<long long>(w >> 60);
        }
      },
  });
  const double delta_ns = (micro[1] - micro[0]) * 1e6 / kIters;
  const double site_cost_ns = delta_ns > 0.0 ? delta_ns : 0.0;
  // Each recorded span event is one emission-site crossing; scale the
  // branch cost to that count against the baseline run.
  const double off_pct =
      base_ms > 0.0 ? 100.0 * site_cost_ns *
                          static_cast<double>(timed_events) / (base_ms * 1e6)
                    : 0.0;
  std::printf("emission site: %.3f ns per crossing, %zu crossings\n",
              site_cost_ns, timed_events);

  const bool off_ok = off_pct < kOffBudgetPct;
  const bool timed_ok = pct(timed_ms) < kTimedBudgetPct;
  std::printf("off overhead:   %6.2f%% (budget %.0f%%) -> %s\n", off_pct,
              kOffBudgetPct, off_ok ? "OK" : "OVER BUDGET");
  std::printf("timed overhead: %6.2f%% (budget %.0f%%) -> %s   "
              "[checksum %lld]\n",
              pct(timed_ms), kTimedBudgetPct,
              timed_ok ? "OK" : "OVER BUDGET", checksum);
  return off_ok && timed_ok ? 0 : 1;
}

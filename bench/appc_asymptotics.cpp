// Appendix C: asymptotic behaviour of E(D) as n grows, at fixed p.
//
// Reproduced claims:
//  * ES and <>LM diverge for any fixed p < 1 (so does <>WLM, with the
//    simulated variant growing faster than the direct one);
//  * <>AFM approaches the constant 5 rounds (Lemma 13, via a Chernoff
//    bound), i.e. for large groups the all-from-majority requirements are
//    almost always satisfied.
#include <cmath>
#include <iostream>
#include <string>

#include "analysis/equations.hpp"
#include "common/table.hpp"

using namespace timing;
using namespace timing::analysis;

int main() {
  const double p = 0.95;
  Table t({"n", "log10 E(D_ES)", "log10 E(D_LM)", "log10 E(D_WLM,4r)",
           "log10 E(D_WLM,7r)", "E(D_AFM)", "AFM Chernoff UB"});
  for (int n : {4, 8, 16, 32, 64, 128, 256, 512}) {
    const double afm = e_rounds_afm(n, p);
    const double ub = afm_chernoff_upper_bound(n, p);
    t.add_row({Table::integer(n),
               Table::num(log10_e_rounds(AnalyzedAlgorithm::kEs3, n, p), 2),
               Table::num(log10_e_rounds(AnalyzedAlgorithm::kLm3, n, p), 2),
               Table::num(log10_e_rounds(AnalyzedAlgorithm::kWlmDirect, n, p), 2),
               Table::num(log10_e_rounds(AnalyzedAlgorithm::kWlmSimulated, n, p), 2),
               Table::num(afm, 3),
               std::isinf(ub) ? std::string("inf") : Table::num(ub, 3)});
  }
  t.print(std::cout,
          "Appendix C: asymptotics of expected decision time in n "
          "(p = 0.95). ES/LM/WLM diverge; AFM -> 5.");

  std::cout << "\nAFM convergence to 5 rounds for several p:\n";
  Table t2({"p", "E(D_AFM) n=8", "n=32", "n=128", "n=512"});
  for (double q : {0.6, 0.75, 0.9, 0.95}) {
    t2.add_row({Table::num(q, 2), Table::num(e_rounds_afm(8, q), 2),
                Table::num(e_rounds_afm(32, q), 2),
                Table::num(e_rounds_afm(128, q), 2),
                Table::num(e_rounds_afm(512, q), 2)});
  }
  t2.print(std::cout);
  return 0;
}

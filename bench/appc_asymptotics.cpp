// Appendix C: asymptotic behaviour of E(D) as n grows, at fixed p.
//
// Reproduced claims:
//  * ES and <>LM diverge for any fixed p < 1 (so does <>WLM, with the
//    simulated variant growing faster than the direct one);
//  * <>AFM approaches the constant 5 rounds (Lemma 13, via a Chernoff
//    bound), i.e. for large groups the all-from-majority requirements are
//    almost always satisfied.
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_appc_asymptotics; the same run is reachable as
// `timing_lab run appc`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("appc", argc, argv);
}

// Tracing-cost bench: quantifies what the observability layer costs the
// measurement hot path, in three configurations of measure_run on a
// fig1-style sweep (WAN-like IID timeliness, all-to-all traffic):
//
//   off      - null sink, null metrics (the default everyone else pays);
//   count    - CountingSink: the per-event virtual call, no storage;
//   buffer   - BufferSink: what measure_runs uses per trial;
//   jsonl    - BufferSink + serializing every event to JSONL.
//
// The contract asserted by the design (docs/OBSERVABILITY.md): the null
// sink adds < 2% to the untraced baseline — tracing off is free. Also
// reports the JSONL writer's throughput in events/sec.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <vector>

#include "harness/measurement.hpp"
#include "obs/jsonl.hpp"
#include "obs/trace_sink.hpp"
#include "sim/sampler.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define TIMING_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define TIMING_BENCH_SANITIZED 1
#endif
#endif

using namespace timing;

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kN = 8;          // the paper's group size
constexpr int kRounds = 8000;  // long runs so timing dominates setup
constexpr int kReps = 7;       // best-of to shed scheduler noise
constexpr double kP = 0.95;
// The null-sink budget; relaxed under sanitizers, whose shadow-memory
// instrumentation inflates the isolated branch cost far more than the
// surrounding sampling work.
#ifdef TIMING_BENCH_SANITIZED
constexpr double kNullBudgetPct = 6.0;
#else
constexpr double kNullBudgetPct = 2.0;
#endif

double once_ms(const std::function<void()>& body) {
  const auto t0 = Clock::now();
  body();
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// Interleaved best-of: run the configurations round-robin within each
/// rep so clock drift and scheduler noise hit them all equally, then
/// keep each configuration's best rep.
std::vector<double> interleaved_best_ms(
    const std::vector<std::function<void()>>& bodies) {
  std::vector<double> best(bodies.size(), 1e300);
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t c = 0; c < bodies.size(); ++c) {
      const double ms = once_ms(bodies[c]);
      if (ms < best[c]) best[c] = ms;
    }
  }
  return best;
}

double best_of_ms(const std::function<void()>& body) {
  return interleaved_best_ms({body})[0];
}

RunMeasurement run_once(TraceSink* sink) {
  IidTimelinessSampler sampler(kN, kP, 0xbeef);
  return measure_run(sampler, kRounds, /*leader=*/0, sink);
}

}  // namespace

int main() {
  // Warm-up: touch every code path once.
  (void)run_once(nullptr);

  long long checksum = 0;  // defeat dead-code elimination
  std::size_t events = 0;
  std::string jsonl_bytes;
  const std::vector<double> best = interleaved_best_ms({
      [&] { checksum += run_once(nullptr).messages_timely; },
      [&] {
        CountingSink sink;
        checksum += run_once(&sink).messages_timely;
        events = sink.count();
      },
      [&] {
        BufferSink sink;
        checksum += run_once(&sink).messages_timely;
      },
      [&] {
        BufferSink sink;
        checksum += run_once(&sink).messages_timely;
        std::ostringstream out;
        write_trace_header(out, kN);
        write_trial(out, 0, sink.events());
        jsonl_bytes = out.str();
      },
  });
  const double off_ms = best[0];
  const double count_ms = best[1];
  const double buffer_ms = best[2];
  const double jsonl_ms = best[3];

  const auto pct = [&](double ms) { return 100.0 * (ms - off_ms) / off_ms; };
  std::printf("measure_run, n=%d, %d rounds, p=%.2f (best of %d)\n", kN,
              kRounds, kP, kReps);
  std::printf("  %-7s %9.2f ms   baseline\n", "off", off_ms);
  std::printf("  %-7s %9.2f ms   %+6.2f%%  (%zu events)\n", "count",
              count_ms, pct(count_ms), events);
  std::printf("  %-7s %9.2f ms   %+6.2f%%\n", "buffer", buffer_ms,
              pct(buffer_ms));
  std::printf("  %-7s %9.2f ms   %+6.2f%%  (%.1f MB JSONL)\n", "jsonl",
              jsonl_ms, pct(jsonl_ms),
              static_cast<double>(jsonl_bytes.size()) / 1e6);

  // events/sec of serialization alone (the jsonl - buffer delta is noisy
  // at this scale, so time it directly too).
  BufferSink sink;
  (void)run_once(&sink);
  const double ser_ms = best_of_ms([&] {
    std::ostringstream out;
    write_trace_header(out, kN);
    write_trial(out, 0, sink.events());
    checksum += static_cast<long long>(out.str().size());
  });
  std::printf("JSONL writer: %.2f ms for %zu events = %.2f Mevents/s\n",
              ser_ms, sink.events().size(),
              static_cast<double>(sink.events().size()) / ser_ms / 1e3);

  // The off-path contract: with a null sink each emission site is one
  // test of a pointer the compiler keeps in a register and can hoist
  // across the round's inner loops (exactly what happens in the engine,
  // where trace_ is loop-invariant between opaque compute() calls).
  // The `count` row above cannot bound this — a virtual call per event
  // is an order of magnitude dearer than the branch. Isolate the branch
  // instead: two loops with identical engine-like per-iteration work
  // (the run above averages off_ms/events ~ a few ns of sampling and
  // bookkeeping per event), one of which adds the guarded emission on a
  // pointer that is null at runtime but not provably null at compile
  // time. Scale the per-iteration delta back to the full run's events.
  TraceSink* null_sink = std::getenv("TIMING_BENCH_FORCE_SINK") != nullptr
                             ? static_cast<TraceSink*>(&sink)
                             : nullptr;
  constexpr int kIters = 2'000'000;
  std::uint64_t xa = 0x9e3779b97f4a7c15ull;
  std::uint64_t xb = 0x9e3779b97f4a7c15ull;
  const auto work = [](std::uint64_t& x) {
    // Four xorshift steps + a data-dependent test: roughly one link's
    // worth of sampler + engine bookkeeping.
    for (int s = 0; s < 4; ++s) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    return x;
  };
  const std::vector<double> micro = interleaved_best_ms({
      [&] {
        for (int i = 0; i < kIters; ++i) {
          const std::uint64_t w = work(xa);
          checksum += static_cast<long long>(w >> 60);
        }
      },
      [&] {
        for (int i = 0; i < kIters; ++i) {
          const std::uint64_t w = work(xb);
          trace_emit(null_sink,
                     TraceEvent::msg(EventKind::kMsgSent, 1, 0,
                                     static_cast<ProcessId>(w & 7u)));
          checksum += static_cast<long long>(w >> 60);
        }
      },
  });
  const double delta_ns = (micro[1] - micro[0]) * 1e6 / kIters;
  const double per_event_ns =
      off_ms * 1e6 / static_cast<double>(events ? events : 1);
  const double null_pct =
      delta_ns > 0.0 ? 100.0 * delta_ns / per_event_ns : 0.0;
  std::printf(
      "emission site: %.3f ns/event on top of %.2f ns/event baseline\n",
      delta_ns > 0.0 ? delta_ns : 0.0, per_event_ns);
  std::printf(
      "null-sink overhead: %.2f%% (branch cost scaled to %zu events; "
      "budget %.0f%%) -> %s   [checksum %lld]\n",
      null_pct, events, kNullBudgetPct,
      null_pct < kNullBudgetPct ? "OK" : "OVER BUDGET", checksum);
  return null_pct < kNullBudgetPct ? 0 : 1;
}

// Ablation: how accurate is the paper's E(D) formula?
//
// Section 4 uses E(D) = P^-R + (R-1): it treats the R-round windows
// starting at each round as independent Bernoulli(P^R) events. The exact
// renewal expectation for the first run of R successes in IID trials is
// E = (1 - P^R) / ((1 - P) P^R), which is LARGER (overlapping windows
// share failures). This bench quantifies the gap against a Monte-Carlo
// simulation of the very process the formula models.
//
// Conclusion printed by the runner: the gap is a constant factor
// ~1/(1-P) only when decisions are slow anyway; at the operating points
// the paper cares about (P close to 1) the three values coincide, so
// none of the paper's conclusions are affected - but quantitative users
// of Figure 1(a)/(b) should prefer the exact column.
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_ablation_window_formula; the same run is reachable as
// `timing_lab run ablation/window_formula`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("ablation/window_formula", argc, argv);
}

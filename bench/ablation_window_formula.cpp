// Ablation: how accurate is the paper's E(D) formula?
//
// Section 4 uses E(D) = P^-R + (R-1): it treats the R-round windows
// starting at each round as independent Bernoulli(P^R) events. The exact
// renewal expectation for the first run of R successes in IID trials is
// E = (1 - P^R) / ((1 - P) P^R), which is LARGER (overlapping windows
// share failures). This bench quantifies the gap against a Monte-Carlo
// simulation of the very process the formula models.
//
// Conclusion printed below: the gap is a constant factor ~1/(1-P) only
// when decisions are slow anyway; at the operating points the paper
// cares about (P close to 1) the three values coincide, so none of the
// paper's conclusions are affected - but quantitative users of Figure 1
// (a)/(b) should prefer the exact column.
#include <iostream>
#include <vector>

#include "analysis/equations.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace timing;
using namespace timing::analysis;

namespace {

double monte_carlo(double p_round, int needed, int trials, Rng& rng) {
  RunningStats stats;
  for (int t = 0; t < trials; ++t) {
    int streak = 0;
    int round = 0;
    for (;;) {
      ++round;
      streak = rng.bernoulli(p_round) ? streak + 1 : 0;
      if (streak >= needed) break;
      if (round > 100000000) break;  // unreachable at these parameters
    }
    stats.add(round);
  }
  return stats.mean();
}

}  // namespace

int main() {
  Table t({"P (round ok)", "R", "paper E(D)", "exact E(D)", "Monte-Carlo",
           "paper/exact"});
  struct GridCell {
    int r;
    double p;
  };
  std::vector<GridCell> grid;
  for (int r : {3, 4, 5, 7}) {
    for (double p : {0.5, 0.7, 0.9, 0.95, 0.99}) grid.push_back({r, p});
  }
  // Each grid cell simulates on its own counter-based sub-stream, so the
  // fan-out stays reproducible (the former shared Rng would have made
  // results depend on execution order).
  const auto mcs = run_trials<double>(grid.size(), [&](std::size_t i) {
    Rng rng = substream(20240707, i);
    return monte_carlo(grid[i].p, grid[i].r, 20000, rng);
  });
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double paper = expected_rounds(grid[i].p, grid[i].r);
    const double exact = exact_expected_rounds(grid[i].p, grid[i].r);
    t.add_row({Table::num(grid[i].p, 2), Table::integer(grid[i].r),
               Table::num(paper, 2), Table::num(exact, 2),
               Table::num(mcs[i], 2), Table::num(paper / exact, 3)});
  }
  t.print(std::cout,
          "Window-formula ablation: the paper's E(D) = P^-R + (R-1) vs "
          "the exact run-of-R renewal expectation vs simulation");

  std::cout << "\nEffect on Figure 1(b) (n=8): expected rounds, paper vs "
               "exact formula\n";
  Table f({"p", "<>WLM direct paper", "exact", "<>LM paper", "exact",
           "<>AFM paper", "exact"});
  for (double p : {0.90, 0.92, 0.95, 0.97, 0.99}) {
    f.add_row({Table::num(p, 2),
               Table::num(e_rounds_wlm_direct(8, p), 1),
               Table::num(e_rounds_exact(AnalyzedAlgorithm::kWlmDirect, 8, p), 1),
               Table::num(e_rounds_lm(8, p), 1),
               Table::num(e_rounds_exact(AnalyzedAlgorithm::kLm3, 8, p), 1),
               Table::num(e_rounds_afm(8, p), 1),
               Table::num(e_rounds_exact(AnalyzedAlgorithm::kAfm5, 8, p), 1)});
  }
  f.print(std::cout);
  std::cout << "\nThe model ranking at every p is unchanged; only the "
               "absolute round counts shift where P_M is far from 1.\n";
  return 0;
}

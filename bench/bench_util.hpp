// Shared helpers for the figure benches: canonical experiment
// configurations (the paper's 33 runs x 300 rounds x 15 start points) and
// the standard WAN timeout sweep used by Figures 1(d)-(h).
//
// The sweeps execute on the shared thread pool (common/parallel.hpp);
// TIMING_THREADS picks the parallelism and TIMING_RUNS optionally raises
// the per-timeout run count beyond the paper's defaults for tighter
// confidence intervals — both without changing any per-run result, since
// run k's randomness is a pure function of (seed, k).
#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "harness/experiments.hpp"

namespace timing::bench {

/// The paper's repetition count unless TIMING_RUNS (>= 1) says otherwise.
/// Raising it appends runs 33, 34, ... — existing runs keep their seeds,
/// so curves only tighten, they don't resample.
inline int runs_or_default(int paper_default) {
  if (const char* env = std::getenv("TIMING_RUNS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(v > 100000 ? 100000 : v);
  }
  return paper_default;
}

inline ExperimentConfig wan_config() {
  ExperimentConfig cfg;
  cfg.testbed = Testbed::kWan;
  cfg.timeouts_ms = {140, 150, 160, 170, 180, 190, 200,
                     210, 230, 260, 300, 350};
  cfg.runs = runs_or_default(33);  // the paper's repetition count
  cfg.rounds_per_run = 300;  // the paper's run length
  cfg.start_points = 15;   // the paper's random starting points
  cfg.seed = 42;
  return cfg;
}

inline ExperimentConfig lan_config() {
  ExperimentConfig cfg;
  cfg.testbed = Testbed::kLan;
  cfg.timeouts_ms = {0.1, 0.15, 0.2, 0.25, 0.35, 0.5, 0.7, 0.9, 1.2, 1.6};
  cfg.runs = runs_or_default(25);
  cfg.rounds_per_run = 300;
  cfg.seed = 7;
  return cfg;
}

/// True when the binary was invoked with --csv: tables are then emitted
/// as machine-readable CSV instead of aligned text.
inline bool csv_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  }
  return false;
}

/// Print a table honouring the output mode.
inline void emit(const Table& t, bool csv, const std::string& caption) {
  if (csv) {
    t.print_csv(std::cout, caption);
  } else {
    t.print(std::cout, caption);
  }
}

}  // namespace timing::bench

// Granular ablation: how the Section 4 model comparison shifts when a
// growing fraction of links drops to asynchrony. Each sweep point builds
// a seeded mixed LinkModelMatrix (async_fracs= / psync_frac=), measures
// the granular P_M over IID links, and compares against the
// Poisson-binomial prediction of analysis/granular.hpp. At async_frac=0
// this reduces to the homogeneous IID comparison.
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_granular_ablation; the same run is reachable as
// `timing_lab run granular/ablation`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("granular/ablation", argc, argv);
}

// Ablation: message-complexity-aware reducibility (Appendix B's closing
// remark): "the 'classical' notion of model reducibility and equivalence
// could be refined to take message complexity into account."
//
// <>LM and <>WLM are equivalent under classical (CHT) reducibility - the
// Appendix B simulation proves one direction, the other is trivial - but
// the REDUCTION ITSELF is expensive. The runner makes that concrete by
// running the three <>WLM options over a stable network and accounting,
// with the real wire codec, for (a) messages per stable round, (b) BYTES
// per stable round, and (c) rounds to decision:
//
//   * Algorithm 2 (direct):        O(n) messages of O(1) size;
//   * LM-3 over Algorithm 3:       O(n^2) RELAY messages each carrying up
//                                  to n inner messages -> O(n^3) bytes per
//                                  simulated round;
//   * LM-3 run natively (needs the stronger <>LM network): O(n^2) small
//                                  messages.
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_ablation_simulation_cost; the same run is reachable as
// `timing_lab run ablation/simulation_cost`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("ablation/simulation_cost", argc, argv);
}

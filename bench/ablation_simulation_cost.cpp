// Ablation: message-complexity-aware reducibility (Appendix B's closing
// remark): "the 'classical' notion of model reducibility and equivalence
// could be refined to take message complexity into account."
//
// <>LM and <>WLM are equivalent under classical (CHT) reducibility - the
// Appendix B simulation proves one direction, the other is trivial - but
// the REDUCTION ITSELF is expensive. This bench makes that concrete by
// running the three <>WLM options over a stable network and accounting,
// with the real wire codec, for (a) messages per stable round, (b) BYTES
// per stable round, and (c) rounds to decision:
//
//   * Algorithm 2 (direct):        O(n) messages of O(1) size;
//   * LM-3 over Algorithm 3:       O(n^2) RELAY messages each carrying up
//                                  to n inner messages -> O(n^3) bytes per
//                                  simulated round;
//   * LM-3 run natively (needs the stronger <>LM network): O(n^2) small
//                                  messages.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "consensus/factory.hpp"
#include "giraf/engine.hpp"
#include "models/schedule.hpp"
#include "net/codec.hpp"
#include "net/transport.hpp"
#include "oracles/omega.hpp"

using namespace timing;

namespace {

struct Cost {
  Round decision_round = -1;
  long long stable_msgs = 0;
  long long stable_bytes = 0;
};

// Byte accounting needs message contents; we intercept by wrapping each
// protocol and encoding what it sends.
class ByteCounter final : public Protocol {
 public:
  ByteCounter(std::unique_ptr<Protocol> inner, long long* bytes,
              long long* msgs)
      : inner_(std::move(inner)), bytes_(bytes), msgs_(msgs) {}

  SendSpec initialize(ProcessId hint) override {
    return count(inner_->initialize(hint));
  }
  SendSpec compute(Round k, const RoundMsgs& received,
                   ProcessId hint) override {
    return count(inner_->compute(k, received, hint));
  }
  bool has_decided() const noexcept override { return inner_->has_decided(); }
  Value decision() const noexcept override { return inner_->decision(); }

 private:
  SendSpec count(SendSpec spec) {
    Bytes wire;
    encode(Envelope{0, 0, spec.msg}, wire);
    long long copies = 0;
    for (ProcessId d : spec.dests) {
      if (d != self_counted_) ++copies;
    }
    // Destination lists never include duplicates in our protocols; self
    // is skipped by the engine.
    *bytes_ = static_cast<long long>(wire.size()) * copies;
    *msgs_ = copies;
    return spec;
  }

  std::unique_ptr<Protocol> inner_;
  long long* bytes_;
  long long* msgs_;
  ProcessId self_counted_ = kNoProcess;  // self never in dests for our protos
};

Cost run(AlgorithmKind kind, TimingModel network, int n) {
  std::vector<long long> bytes(static_cast<std::size_t>(n), 0);
  std::vector<long long> msgs(static_cast<std::size_t>(n), 0);
  std::vector<std::unique_ptr<Protocol>> group;
  for (ProcessId i = 0; i < n; ++i) {
    group.push_back(std::make_unique<ByteCounter>(
        make_protocol(kind, i, n, 100 + i), &bytes[static_cast<std::size_t>(i)],
        &msgs[static_cast<std::size_t>(i)]));
  }
  auto oracle = std::make_shared<DesignatedOracle>(0);
  RoundEngine engine(std::move(group), oracle);

  ScheduleConfig sched;
  sched.n = n;
  sched.model = network;
  sched.leader = 0;
  sched.gsr = 1;  // stable from the start: measure the steady state
  sched.seed = 77;
  ScheduleSampler sampler(sched);

  Cost cost;
  LinkMatrix a(n);
  std::vector<long long> round_msgs, round_bytes;
  for (Round k = 1; k <= 200; ++k) {
    sampler.sample_round(k, a);
    engine.step(a);
    long long m = 0, b = 0;
    for (ProcessId i = 0; i < n; ++i) {
      m += msgs[static_cast<std::size_t>(i)];
      b += bytes[static_cast<std::size_t>(i)];
    }
    round_msgs.push_back(m);
    round_bytes.push_back(b);
    if (engine.all_alive_decided()) {
      cost.decision_round = engine.global_decision_round();
      break;
    }
  }
  // Steady-state per-round cost: average the last two rounds, so the
  // simulation's alternating relay/inner rounds are both represented
  // (the relay rounds carry the O(n^3) payload).
  const std::size_t have = round_msgs.size();
  const std::size_t take = std::min<std::size_t>(2, have);
  for (std::size_t i = have - take; i < have; ++i) {
    cost.stable_msgs += round_msgs[i];
    cost.stable_bytes += round_bytes[i];
  }
  cost.stable_msgs /= static_cast<long long>(take);
  cost.stable_bytes /= static_cast<long long>(take);
  return cost;
}

}  // namespace

int main() {
  const std::vector<int> ns = {8, 16, 32};
  // The 3x3 (group size x protocol option) grid runs as independent
  // trials on the thread pool; rows are emitted in grid order below.
  struct Cell {
    Cost direct, simulated, native;
  };
  const auto cells = run_trials<Cell>(ns.size(), [&](std::size_t i) {
    const int n = ns[i];
    return Cell{run(AlgorithmKind::kWlm, TimingModel::kWlm, n),
                run(AlgorithmKind::kLmOverWlm, TimingModel::kWlm, n),
                run(AlgorithmKind::kLm3, TimingModel::kLm, n)};
  });
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const int n = ns[i];
    Table t({"protocol", "network", "decision round", "msgs/round",
             "bytes/round"});
    const Cost& direct = cells[i].direct;
    const Cost& simulated = cells[i].simulated;
    const Cost& native = cells[i].native;
    t.add_row({"Algorithm 2 (direct)", "<>WLM",
               Table::integer(direct.decision_round),
               Table::integer(direct.stable_msgs),
               Table::integer(direct.stable_bytes)});
    t.add_row({"LM-3 over Algorithm 3", "<>WLM",
               Table::integer(simulated.decision_round),
               Table::integer(simulated.stable_msgs),
               Table::integer(simulated.stable_bytes)});
    t.add_row({"LM-3 native", "<>LM (stronger!)",
               Table::integer(native.decision_round),
               Table::integer(native.stable_msgs),
               Table::integer(native.stable_bytes)});
    t.print(std::cout, "n = " + std::to_string(n));
    std::cout << "\n";
  }
  std::cout
      << "Classical reducibility calls <>LM and <>WLM equivalent; the wire\n"
         "bill disagrees: the Appendix B reduction inflates both the round\n"
         "count (x2+2) and the traffic (O(n^3) bytes/round), while the\n"
         "paper's direct Algorithm 2 stays at O(n) small messages.\n";
  return 0;
}

// Figure 1(b): IID analysis for p in [0.90, 1), n = 8, ES omitted (it is
// off the chart: 349 expected rounds already at p = 0.97).
//
// Reproduced claims: <>AFM is best at low p; <>LM overtakes around
// p ~ 0.96; the direct <>WLM algorithm overtakes <>AFM near the top of
// the range; the simulated <>WLM is far worse than the direct one
// (e.g. p = 0.92: 18 vs 114 rounds; p = 0.85: AFM 10 vs LM 69).
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_fig1b; the same run is reachable as `timing_lab run fig1b`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("fig1b", argc, argv);
}

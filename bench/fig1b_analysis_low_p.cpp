// Figure 1(b): IID analysis for p in [0.90, 1), n = 8, ES omitted (it is
// off the chart: 349 expected rounds already at p = 0.97).
//
// Reproduced claims: <>AFM is best at low p; <>LM overtakes around
// p ~ 0.96; the direct <>WLM algorithm overtakes <>AFM near the top of
// the range; the simulated <>WLM is far worse than the direct one
// (e.g. p = 0.92: 18 vs 114 rounds; p = 0.85: AFM 10 vs LM 69).
#include <iostream>

#include "analysis/equations.hpp"
#include "common/table.hpp"

using namespace timing;
using namespace timing::analysis;

int main() {
  constexpr int n = 8;
  Table t({"p", "<>AFM(5r)", "<>LM(3r)", "<>WLM direct(4r)",
           "<>WLM simulated(7r)", "ES(3r, off-chart)"});
  for (double p = 0.90; p <= 0.9951; p += 0.005) {
    t.add_row({Table::num(p, 3),
               Table::num(e_rounds_afm(n, p), 1),
               Table::num(e_rounds_lm(n, p), 1),
               Table::num(e_rounds_wlm_direct(n, p), 1),
               Table::num(e_rounds_wlm_simulated(n, p), 1),
               Table::num(e_rounds_es(n, p), 0)});
  }
  t.print(std::cout,
          "Figure 1(b): E[rounds to global decision] vs p (IID analysis, "
          "n=8, p in [0.9, 1))");

  std::cout << "\nPaper spot values (Section 4.2):\n";
  std::cout << "  ES at p=0.97:            " << Table::num(e_rounds_es(n, 0.97), 0)
            << " rounds   (paper: 349)\n";
  std::cout << "  <>WLM direct at p=0.92:  "
            << Table::num(e_rounds_wlm_direct(n, 0.92), 0)
            << " rounds   (paper: 18)\n";
  std::cout << "  <>WLM simulated at 0.92: "
            << Table::num(e_rounds_wlm_simulated(n, 0.92), 0)
            << " rounds   (paper: 114)\n";
  std::cout << "  <>AFM at p=0.85:         " << Table::num(e_rounds_afm(n, 0.85), 0)
            << " rounds   (paper: 10)\n";
  std::cout << "  <>LM at p=0.85:          " << Table::num(e_rounds_lm(n, 0.85), 0)
            << " rounds   (paper: 69)\n";
  return 0;
}

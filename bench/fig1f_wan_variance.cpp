// Figure 1(f): WAN - the across-run VARIANCE of the P_M values behind
// Figure 1(e).
//
// Reproduced claims (Section 5.3):
//  * at short timeouts <>LM has high variance: in runs where the Poland
//    site receives slowly, its row loses the majority and P_LM collapses
//    (95% of rounds in some runs, ~15% in others at 160 ms);
//  * <>AFM is consistently low at short timeouts (its cap is the
//    chronically slow sender's column, present in every run), hence low
//    variance; <>WLM is consistently high;
//  * for long timeouts the leader/majority models' variance goes to ~0
//    while ES remains (or grows) noisy.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace timing;

int main(int argc, char** argv) {
  const bool csv = timing::bench::csv_mode(argc, argv);
  const auto rs = run_experiment(timing::bench::wan_config());
  Table t({"timeout(ms)", "var P_ES", "var P_AFM", "var P_LM", "var P_WLM"});
  for (const auto& r : rs) {
    t.add_row({Table::num(r.timeout_ms, 0),
               Table::num(r.models[model_index(TimingModel::kEs)].var_pm, 4),
               Table::num(r.models[model_index(TimingModel::kAfm)].var_pm, 4),
               Table::num(r.models[model_index(TimingModel::kLm)].var_pm, 4),
               Table::num(r.models[model_index(TimingModel::kWlm)].var_pm, 4)});
  }
  timing::bench::emit(t, csv, std::string() +
          "Figure 1(f): WAN, across-run variance of P_M per timeout");
  return 0;
}

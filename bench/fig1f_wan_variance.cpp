// Figure 1(f): WAN - the across-run VARIANCE of the P_M values behind
// Figure 1(e).
//
// Reproduced claims (Section 5.3):
//  * at short timeouts <>LM has high variance: in runs where the Poland
//    site receives slowly, its row loses the majority and P_LM collapses
//    (95% of rounds in some runs, ~15% in others at 160 ms);
//  * <>AFM is consistently low at short timeouts (its cap is the
//    chronically slow sender's column, present in every run), hence low
//    variance; <>WLM is consistently high;
//  * for long timeouts the leader/majority models' variance goes to ~0
//    while ES remains (or grows) noisy.
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_fig1f; the same run is reachable as `timing_lab run fig1f`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("fig1f", argc, argv);
}

// Replay the archived minimized adversary plans (archive=DIR) and hold
// every entry to its recorded verdict, decision round and score.
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_chaos_regression; the same run is reachable as
// `timing_lab run chaos/regression`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("chaos/regression", argc, argv);
}

// Chaos safety harness: every consensus algorithm of the paper under
// seeded random fault plans (crashes, partitions, drops, delays, leader
// suppression), holding each run to agreement/validity/integrity and to
// a decision within the proven bound after the plan's gsr marker.
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_chaos_consensus; the same run is reachable as
// `timing_lab run chaos/consensus`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("chaos/consensus", argc, argv);
}

// Figure 1(c): LAN - measured incidence P_M of each model per timeout vs
// the IID-based prediction computed from the measured p (Equations (1),
// (3), (6), (9)).
//
// Reproduced claims (Section 5.2):
//  * ES is hard to satisfy even on a LAN, but BETTER in practice than the
//    IID prediction (late messages cluster in bursts);
//  * <>AFM and <>LM are WORSE than predicted (one occasionally slow
//    machine), with <>AFM above <>LM (the leader column costs extra);
//  * with a well-connected leader, <>WLM beats everything; with an
//    average leader, leader-based models need much bigger timeouts.
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_fig1c; the same run is reachable as `timing_lab run fig1c`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("fig1c", argc, argv);
}

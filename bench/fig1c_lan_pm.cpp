// Figure 1(c): LAN - measured incidence P_M of each model per timeout vs
// the IID-based prediction computed from the measured p (Equations (1),
// (3), (6), (9)).
//
// Reproduced claims (Section 5.2):
//  * ES is hard to satisfy even on a LAN, but BETTER in practice than the
//    IID prediction (late messages cluster in bursts);
//  * <>AFM and <>LM are WORSE than predicted (one occasionally slow
//    machine), with <>AFM above <>LM (the leader column costs extra);
//  * with a well-connected leader, <>WLM beats everything; with an
//    average leader, leader-based models need much bigger timeouts.
#include <iostream>

#include "analysis/equations.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "oracles/omega.hpp"

using namespace timing;
using namespace timing::analysis;

namespace {

void sweep(const ExperimentConfig& cfg, const char* caption) {
  const auto rs = run_experiment(cfg);
  Table t({"timeout(ms)", "p", "P_ES", "pred", "P_AFM", "pred", "P_LM",
           "pred", "P_WLM", "pred"});
  for (const auto& r : rs) {
    t.add_row({Table::num(r.timeout_ms, 2), Table::num(r.mean_p, 3),
               Table::num(r.models[model_index(TimingModel::kEs)].mean_pm, 3),
               Table::num(p_es(8, r.mean_p), 3),
               Table::num(r.models[model_index(TimingModel::kAfm)].mean_pm, 3),
               Table::num(p_afm(8, r.mean_p), 3),
               Table::num(r.models[model_index(TimingModel::kLm)].mean_pm, 3),
               Table::num(p_lm(8, r.mean_p), 3),
               Table::num(r.models[model_index(TimingModel::kWlm)].mean_pm, 3),
               Table::num(p_wlm(8, r.mean_p), 3)});
  }
  t.print(std::cout, caption);
  std::cout << "\n";
}

}  // namespace

int main() {
  ExperimentConfig good = timing::bench::lan_config();
  std::cout << "Good (well-connected) leader: node "
            << resolve_leader(good) << "\n";
  sweep(good,
        "Figure 1(c): LAN, measured vs IID-predicted P_M per timeout "
        "(well-connected leader)");

  ExperimentConfig avg = good;
  avg.leader = pick_average_leader(expected_rtt_matrix(good));
  std::cout << "Average leader: node " << avg.leader << "\n";
  sweep(avg,
        "Figure 1(c) variant: the same sweep with an average leader "
        "(<>LM / <>WLM need bigger timeouts, Section 5.2)");
  return 0;
}

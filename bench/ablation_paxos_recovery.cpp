// Ablation: why <>WLM needed a NEW algorithm (Sections 1 and 3, citing
// [13]): Paxos satisfies <>WLM's progress requirements, but after GSR its
// leader can keep discovering higher promised ballots one at a time -
// each round's mobile majority into the leader may reveal just one new
// NACK - so recovery takes a linear number of rounds. Algorithm 2 uses
// round numbers as timestamps plus the majApproved certificate and
// decides in a constant number of rounds under the same adversary.
//
// Setup: acceptors are pre-seeded with staggered promised ballots
// (emulating pre-GSR contention). From round 1 the network is
// minimally-<>WLM-conforming and ADVERSARIAL: the leader's column is
// timely, and the majority into the leader always consists of the
// lowest-promised acceptors plus exactly one "fresh" high-promise
// acceptor, revealed tier by tier.
#include <iostream>
#include <memory>
#include <vector>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "consensus/paxos.hpp"
#include "consensus/wlm.hpp"
#include "giraf/engine.hpp"
#include "oracles/omega.hpp"

using namespace timing;

namespace {

struct RunResult {
  Round decision_round = -1;
  int ballots = 0;
};

// Builds the adversarial <>WLM-conforming matrix for one round.
LinkMatrix adversary_matrix(int n, ProcessId leader, int reveal_index) {
  const int maj = majority_size(n);
  LinkMatrix a(n, kLost);
  for (ProcessId i = 0; i < n; ++i) a.set(i, i, 0);
  for (ProcessId d = 0; d < n; ++d) a.set(d, leader, 0);  // leader n-source
  // Low group: acceptors 1 .. maj-2 (seeded with the lowest promises).
  for (ProcessId s = 1; s <= maj - 2; ++s) a.set(leader, s, 0);
  // One rotating high-promise acceptor.
  const ProcessId fresh = static_cast<ProcessId>(
      std::min(n - 1, maj - 1 + reveal_index));
  a.set(leader, fresh, 0);
  return a;
}

RunResult run_paxos(int n) {
  const ProcessId leader = 0;
  std::vector<std::unique_ptr<Protocol>> group;
  std::vector<PaxosConsensus*> raw;
  for (ProcessId i = 0; i < n; ++i) {
    auto p = std::make_unique<PaxosConsensus>(i, n, 100 + i);
    raw.push_back(p.get());
    group.push_back(std::move(p));
  }
  for (ProcessId i = 1; i < n; ++i) raw[i]->seed_promise(1000 * i);
  auto oracle = std::make_shared<DesignatedOracle>(leader);
  RoundEngine engine(std::move(group), oracle);
  for (Round k = 1; k <= 40 * n; ++k) {
    const int reveal = std::max(0, raw[0]->ballots_started() - 1);
    engine.step(adversary_matrix(n, leader, reveal));
    if (engine.all_alive_decided()) {
      return {engine.global_decision_round(), raw[0]->ballots_started()};
    }
  }
  return {-1, raw[0]->ballots_started()};
}

RunResult run_wlm(int n) {
  const ProcessId leader = 0;
  std::vector<std::unique_ptr<Protocol>> group;
  for (ProcessId i = 0; i < n; ++i) {
    group.push_back(std::make_unique<WlmConsensus>(i, n, 100 + i));
  }
  auto oracle = std::make_shared<DesignatedOracle>(leader);
  RoundEngine engine(std::move(group), oracle);
  int reveal = 0;
  for (Round k = 1; k <= 40 * n; ++k) {
    engine.step(adversary_matrix(n, leader, reveal));
    ++reveal;  // rotate the "fresh" member every round: mobile majorities
    if (engine.all_alive_decided()) {
      return {engine.global_decision_round(), 0};
    }
  }
  return {-1, 0};
}

}  // namespace

int main() {
  Table t({"n", "Paxos rounds", "Paxos ballots", "Algorithm 2 rounds"});
  const std::vector<int> ns = {5, 7, 9, 11, 13, 15, 21, 31};
  struct Point {
    RunResult paxos, wlm;
  };
  const auto points = run_trials<Point>(ns.size(), [&](std::size_t i) {
    return Point{run_paxos(ns[i]), run_wlm(ns[i])};
  });
  for (std::size_t i = 0; i < ns.size(); ++i) {
    t.add_row({Table::integer(ns[i]),
               Table::integer(points[i].paxos.decision_round),
               Table::integer(points[i].paxos.ballots),
               Table::integer(points[i].wlm.decision_round)});
  }
  t.print(std::cout,
          "Ablation ([13] / Section 3): global decision under an "
          "adversarial minimally-<>WLM schedule with staggered pre-GSR "
          "ballots. Paxos recovery grows linearly with n; Algorithm 2 is "
          "constant.");
  std::cout << "\nNote: every round of the schedule satisfies <>WLM "
               "(leader column timely + a majority into the leader), yet "
               "Paxos's 'chase' pays ~2 rounds per hidden ballot tier.\n";
  return 0;
}

// Ablation: why <>WLM needed a NEW algorithm (Sections 1 and 3, citing
// [13]): Paxos satisfies <>WLM's progress requirements, but after GSR its
// leader can keep discovering higher promised ballots one at a time -
// each round's mobile majority into the leader may reveal just one new
// NACK - so recovery takes a linear number of rounds. Algorithm 2 uses
// round numbers as timestamps plus the majApproved certificate and
// decides in a constant number of rounds under the same adversary.
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body (adversarial schedule construction included) is
// run_ablation_paxos_recovery; the same run is reachable as
// `timing_lab run ablation/paxos_recovery`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("ablation/paxos_recovery", argc, argv);
}

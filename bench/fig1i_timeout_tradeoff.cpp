// Figure 1(i): the zoom of Figure 1(h) for <>LM and <>WLM - the
// timeout-tuning methodology of Section 5.3.
//
// Reproduced claims:
//  * both curves are convex: shrinking the timeout below the optimum adds
//    rounds faster than it shrinks them, stretching it wastes time per
//    round ("setting conservative timeouts will not necessarily improve
//    performance ... it might actually make it worse");
//  * <>WLM's optimum sits near 160-170 ms (~730 ms to decision), <>LM's
//    near 200-210 ms, and the gap between the optima is small (~80 ms in
//    the paper) - the price of cutting message complexity from Theta(n^2)
//    to O(n);
//  * at 180 ms <>WLM needs ~4.5 rounds, ~800 ms.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace timing;

int main() {
  ExperimentConfig cfg = timing::bench::wan_config();
  cfg.timeouts_ms = {140, 150, 160, 165, 170, 175, 180, 190,
                     200, 210, 220, 230, 250, 270, 300};
  const auto rs = run_experiment(cfg);

  Table t({"timeout(ms)", "<>LM rounds", "<>LM time(ms)", "<>WLM rounds",
           "<>WLM time(ms)"});
  double best_lm = 1e18, best_lm_t = 0, best_wlm = 1e18, best_wlm_t = 0;
  for (const auto& r : rs) {
    const auto& lm = r.models[model_index(TimingModel::kLm)];
    const auto& wlm = r.models[model_index(TimingModel::kWlm)];
    if (lm.mean_time_ms < best_lm) {
      best_lm = lm.mean_time_ms;
      best_lm_t = r.timeout_ms;
    }
    if (wlm.mean_time_ms < best_wlm) {
      best_wlm = wlm.mean_time_ms;
      best_wlm_t = r.timeout_ms;
    }
    t.add_row({Table::num(r.timeout_ms, 0), Table::num(lm.mean_rounds, 1),
               Table::num(lm.mean_time_ms, 0), Table::num(wlm.mean_rounds, 1),
               Table::num(wlm.mean_time_ms, 0)});
  }
  t.print(std::cout,
          "Figure 1(i): WAN, time to global-decision conditions vs "
          "timeout, <>LM and <>WLM (fine sweep)");

  std::cout << "\nOptimal timeouts (paper: ~170 ms / ~730 ms for <>WLM, "
               "~210 ms / ~650 ms for <>LM, ~80 ms apart):\n";
  std::cout << "  <>WLM: best timeout " << Table::num(best_wlm_t, 0)
            << " ms -> " << Table::num(best_wlm, 0) << " ms to decision\n";
  std::cout << "  <>LM:  best timeout " << Table::num(best_lm_t, 0)
            << " ms -> " << Table::num(best_lm, 0) << " ms to decision\n";
  std::cout << "  difference at the optima: "
            << Table::num(best_wlm - best_lm, 0)
            << " ms - the cost of dropping from Theta(n^2) to O(n) "
               "stable-state messages\n";
  return 0;
}

// Figure 1(i): the zoom of Figure 1(h) for <>LM and <>WLM - the
// timeout-tuning methodology of Section 5.3.
//
// Reproduced claims:
//  * both curves are convex: shrinking the timeout below the optimum adds
//    rounds faster than it shrinks them, stretching it wastes time per
//    round ("setting conservative timeouts will not necessarily improve
//    performance ... it might actually make it worse");
//  * <>WLM's optimum sits near 160-170 ms (~730 ms to decision), <>LM's
//    near 200-210 ms, and the gap between the optima is small (~80 ms in
//    the paper) - the price of cutting message complexity from Theta(n^2)
//    to O(n);
//  * at 180 ms <>WLM needs ~4.5 rounds, ~800 ms.
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_fig1i; the same run is reachable as `timing_lab run fig1i`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("fig1i", argc, argv);
}

// Granular Figure 1: the WAN sweep of Figures 1(d)-(g) evaluated under
// per-link timing assumptions (link_models=SPEC, grammar in
// models/link_model_matrix.hpp). Async links carry no timing obligations
// and count towards no quorums; the sweep reports the granular P_M, the
// per-class conformance fractions, and the rounds until the granular
// global-decision conditions hold. With link_models=sync:all the model
// columns reproduce the homogeneous fig1e/fig1g numbers bit-for-bit.
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_granular_fig1; the same run is reachable as
// `timing_lab run granular/fig1`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("granular/fig1", argc, argv);
}

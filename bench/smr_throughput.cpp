// Replicated-log load scenario: closed-loop clients drive KV commands
// through the pipelined, batched ReplicatedLog over the calibrated
// LAN/WAN latency testbeds; reports ops/sec and commit-latency
// quantiles next to the serialized baseline.
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_smr_throughput; the same run is reachable as
// `timing_lab run smr/throughput`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("smr/throughput", argc, argv);
}

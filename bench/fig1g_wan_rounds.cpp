// Figure 1(g): WAN - average number of rounds until the conditions for
// global decision hold in each model (R_M consecutive conforming rounds:
// ES 3, <>LM 3, <>WLM 4, <>AFM 5), measured from 15 random starting
// points per 300-round run, averaged over 33 runs per timeout.
//
// Reproduced claims (Section 5.3):
//  * at low timeouts the <>WLM algorithm (Section 3) reaches the decision
//    conditions much faster than every other model;
//  * from ~180 ms up its round count is comparable to <>LM's;
//  * <>AFM needs more rounds than both below ~230 ms;
//  * ES windows essentially never occur at short timeouts (censored: the
//    300-round run ends first; reported values are lower bounds).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace timing;

int main(int argc, char** argv) {
  const bool csv = timing::bench::csv_mode(argc, argv);
  const auto rs = run_experiment(timing::bench::wan_config());
  Table t({"timeout(ms)", "ES(3r)", "cens", "<>AFM(5r)", "<>LM(3r)",
           "<>WLM(4r)"});
  for (const auto& r : rs) {
    const auto& es = r.models[model_index(TimingModel::kEs)];
    t.add_row({Table::num(r.timeout_ms, 0),
               (es.censored_fraction > 0 ? ">=" : "") +
                   Table::num(es.mean_rounds, 1),
               Table::num(es.censored_fraction, 2),
               Table::num(r.models[model_index(TimingModel::kAfm)].mean_rounds, 1),
               Table::num(r.models[model_index(TimingModel::kLm)].mean_rounds, 1),
               Table::num(r.models[model_index(TimingModel::kWlm)].mean_rounds, 1)});
  }
  timing::bench::emit(t, csv, std::string() +
          "Figure 1(g): WAN, average rounds until the global-decision "
          "conditions hold ('cens' = fraction of censored ES windows)");
  return 0;
}

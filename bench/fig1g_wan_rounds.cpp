// Figure 1(g): WAN - average number of rounds until the conditions for
// global decision hold in each model (R_M consecutive conforming rounds:
// ES 3, <>LM 3, <>WLM 4, <>AFM 5), measured from 15 random starting
// points per 300-round run, averaged over 33 runs per timeout.
//
// Reproduced claims (Section 5.3):
//  * at low timeouts the <>WLM algorithm (Section 3) reaches the decision
//    conditions much faster than every other model;
//  * from ~180 ms up its round count is comparable to <>LM's;
//  * <>AFM needs more rounds than both below ~230 ms;
//  * ES windows essentially never occur at short timeouts (censored: the
//    300-round run ends first; reported values are lower bounds).
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_fig1g; the same run is reachable as `timing_lab run fig1g`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("fig1g", argc, argv);
}

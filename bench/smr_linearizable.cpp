// Linearizability gate for the SMR layer: closed-loop clients drive
// register/append operations through the replicated state machine under
// per-instance seeded random fault plans; the recorded op history must
// admit a linearization of the register spec (docs/HISTORY.md).
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_smr_linearizable; the same run is reachable as
// `timing_lab run smr/linearizable`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("smr/linearizable", argc, argv);
}

// Ablation: the figures measure MODEL CONDITIONS (the paper's own
// methodology); this bench runs the ACTUAL algorithms over the same
// simulated WAN and reports their real decision rounds, validating that
// the condition-based numbers are an honest proxy.
//
// For each timeout, each algorithm runs many independent consensus
// instances over fresh WAN latency streams (stable designated leader =
// the UK site) and we report the mean global decision round and the mean
// per-instance message count.
#include <iostream>
#include <memory>

#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "consensus/factory.hpp"
#include "giraf/engine.hpp"
#include "oracles/omega.hpp"
#include "sim/latency_model.hpp"
#include "sim/sampler.hpp"

using namespace timing;

namespace {

struct Row {
  double mean_rounds = 0.0;
  double mean_msgs = 0.0;
  double timely_pct = 0.0;
  double late_pct = 0.0;
  double lost_pct = 0.0;
  int failures = 0;
};

struct Instance {
  Round decided = -1;
  EngineStats stats;
};

Row run_algo(AlgorithmKind kind, double timeout_ms, int instances) {
  // Each instance is seeded by its index alone, so the parallel fan-out
  // returns the same per-instance results for any TIMING_THREADS.
  const auto outs = run_trials<Instance>(
      static_cast<std::size_t>(instances), [&](std::size_t inst) {
        WanProfile prof;
        WanLatencyModel model(prof,
                              0x1234 + static_cast<std::uint64_t>(inst) * 7919);
        LatencyTimelinessSampler sampler(model, timeout_ms);
        std::vector<Value> proposals;
        for (int i = 0; i < 8; ++i) proposals.push_back(100 + i);
        auto oracle = std::make_shared<DesignatedOracle>(WanLatencyModel::kUk);
        RoundEngine engine(make_group(kind, proposals), oracle);
        Instance out;
        out.decided = engine.run(sampler, 400);
        out.stats = engine.stats();
        return out;
      });
  RunningStats rounds, msgs;
  // Engine-side message-fate totals: the engine's own view of the
  // simulated network quality, cross-checkable against the sampler's p.
  long long sent = 0, timely = 0, late = 0, lost = 0;
  int failures = 0;
  for (const Instance& inst : outs) {
    sent += inst.stats.messages_sent;
    timely += inst.stats.timely_deliveries;
    late += inst.stats.late_messages;
    lost += inst.stats.lost_messages;
    if (inst.decided < 0) {
      ++failures;
      continue;
    }
    rounds.add(static_cast<double>(inst.decided));
    msgs.add(static_cast<double>(inst.stats.messages_sent));
  }
  const auto share = [&](long long part) {
    return sent > 0 ? 100.0 * static_cast<double>(part) /
                          static_cast<double>(sent)
                    : 0.0;
  };
  return {rounds.mean(), msgs.mean(), share(timely), share(late),
          share(lost), failures};
}

}  // namespace

int main() {
  constexpr int kInstances = 60;
  const AlgorithmKind kinds[] = {AlgorithmKind::kWlm, AlgorithmKind::kLm3,
                                 AlgorithmKind::kAfm5, AlgorithmKind::kEs3,
                                 AlgorithmKind::kLmOverWlm,
                                 AlgorithmKind::kPaxos};
  for (double timeout : {160.0, 200.0, 260.0}) {
    Table t({"algorithm", "mean rounds to global decision", "mean messages",
             "timely%", "late%", "lost%", "undecided@400r"});
    for (AlgorithmKind k : kinds) {
      const Row r = run_algo(k, timeout, kInstances);
      t.add_row({to_string(k), Table::num(r.mean_rounds, 2),
                 Table::num(r.mean_msgs, 0), Table::num(r.timely_pct, 1),
                 Table::num(r.late_pct, 1), Table::num(r.lost_pct, 1),
                 Table::integer(r.failures)});
    }
    t.print(std::cout, "Actual algorithm executions over the simulated WAN, "
                       "timeout = " +
                           Table::num(timeout, 0) + " ms, " +
                           std::to_string(kInstances) + " instances");
    std::cout << "\n";
  }
  std::cout
      << "Algorithm 2 (O(n) messages) decides in nearly the same number of\n"
         "rounds as the Theta(n^2) <>LM algorithm while sending a fraction\n"
         "of the messages - the paper's headline result, on live runs.\n";
  return 0;
}

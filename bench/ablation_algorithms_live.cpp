// Ablation: the figures measure MODEL CONDITIONS (the paper's own
// methodology); this bench runs the ACTUAL algorithms over the same
// simulated WAN and reports their real decision rounds, validating that
// the condition-based numbers are an honest proxy.
//
// For each timeout, each algorithm runs many independent consensus
// instances over fresh WAN latency streams (stable designated leader =
// the UK site) and we report the mean global decision round and the mean
// per-instance message count.
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_ablation_algorithms_live; the same run is reachable as
// `timing_lab run ablation/algorithms_live`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("ablation/algorithms_live", argc, argv);
}

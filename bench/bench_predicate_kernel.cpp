// Predicate-kernel bench: scalar per-cell predicate evaluation vs the
// packed bit-plane kernel, and the split sample-then-evaluate round vs
// the fused sample-and-evaluate kernel, on IID matrices in the paper's
// high-p regime (p = 0.9) at n in {8, 32, 128}.
//
// The contract (gated, exit code 1 on failure): the packed evaluate_all
// is at least 3x the scalar one at n = 32 single-threaded. Both paths'
// masks are cross-checked cell-for-cell while timing, so a kernel that
// got fast by being wrong fails loudly instead.
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "models/link_model_matrix.hpp"
#include "models/predicates.hpp"
#include "sim/packed_eval.hpp"
#include "sim/sampler.hpp"

using namespace timing;

namespace {

using Clock = std::chrono::steady_clock;

constexpr double kP = 0.9;
constexpr int kBatch = 64;  // rotate matrices so no single one is cached
constexpr int kReps = 7;    // interleaved best-of to shed scheduler noise

double once_ms(const std::function<void()>& body) {
  const auto t0 = Clock::now();
  body();
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// Round-robin the bodies within each rep so clock drift and scheduler
/// noise hit them all equally; keep each body's best rep.
std::vector<double> interleaved_best_ms(
    const std::vector<std::function<void()>>& bodies) {
  std::vector<double> best(bodies.size(), 1e300);
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t c = 0; c < bodies.size(); ++c) {
      const double ms = once_ms(bodies[c]);
      if (ms < best[c]) best[c] = ms;
    }
  }
  return best;
}

/// Evaluations per timing rep, scaled so every n runs for a comparable
/// wall-clock slice (the scalar path is O(n^2) per evaluation).
int evals_for(int n) {
  const int e = 4'000'000 / (n * n);
  return e < 2000 ? 2000 : e;
}

struct Batch {
  std::vector<LinkMatrix> scalar;
  std::vector<PackedLinkMatrix> packed;
};

Batch make_batch(int n) {
  IidTimelinessSampler s(n, kP, 0xfeedULL + static_cast<unsigned>(n));
  Batch b;
  b.scalar.reserve(kBatch);
  b.packed.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) {
    LinkMatrix a(n);
    s.sample_round(i + 1, a);
    PackedLinkMatrix q(n);
    q.assign_from(a);
    b.scalar.push_back(std::move(a));
    b.packed.push_back(std::move(q));
  }
  return b;
}

}  // namespace

int main() {
  bool gate_ok = true;
  bool masks_ok = true;
  long long checksum = 0;  // defeat dead-code elimination

  std::printf("predicate evaluation, IID p=%.2f, batch of %d matrices "
              "(best of %d)\n",
              kP, kBatch, kReps);
  std::printf("  %-6s %12s %12s %9s\n", "n", "scalar", "packed", "speedup");
  for (const int n : {8, 32, 128}) {
    const Batch b = make_batch(n);
    // Cross-check before timing: the gate must not pass on a wrong kernel.
    for (int i = 0; i < kBatch; ++i) {
      if (evaluate_all(b.scalar[i], 0) != evaluate_all(b.packed[i], 0)) {
        masks_ok = false;
      }
    }
    const int evals = evals_for(n);
    const std::vector<double> best = interleaved_best_ms({
        [&] {
          for (int i = 0; i < evals; ++i) {
            checksum += evaluate_all(b.scalar[i % kBatch], 0);
          }
        },
        [&] {
          for (int i = 0; i < evals; ++i) {
            checksum += evaluate_all(b.packed[i % kBatch], 0);
          }
        },
    });
    const double scalar_ns = best[0] * 1e6 / evals;
    const double packed_ns = best[1] * 1e6 / evals;
    const double speedup = scalar_ns / packed_ns;
    std::printf("  %-6d %9.1f ns %9.1f ns %8.2fx%s\n", n, scalar_ns,
                packed_ns, speedup, n == 32 ? "  <- gated (>= 3x)" : "");
    if (n == 32 && speedup < 3.0) gate_ok = false;
  }

  std::printf("\ngranular evaluation (mixed matrix: 20%% async, 25%% psync "
              "of the rest)\n");
  std::printf("  %-6s %12s %12s %9s\n", "n", "scalar", "packed", "speedup");
  for (const int n : {8, 32, 128}) {
    const Batch b = make_batch(n);
    const GranularContext g{LinkModelMatrix::mixed(
        n, 0.2, 0.25, 0x6ea1ULL + static_cast<unsigned>(n))};
    for (int i = 0; i < kBatch; ++i) {
      const GranularEval s = evaluate_all_granular(b.scalar[i], 0, g);
      const GranularEval q = evaluate_all_granular(b.packed[i], 0, g);
      if (s.sat != q.sat || s.csat != q.csat) masks_ok = false;
    }
    const int evals = evals_for(n);
    const std::vector<double> best = interleaved_best_ms({
        [&] {
          for (int i = 0; i < evals; ++i) {
            const GranularEval e =
                evaluate_all_granular(b.scalar[i % kBatch], 0, g);
            checksum += e.sat + (e.csat << 8);
          }
        },
        [&] {
          for (int i = 0; i < evals; ++i) {
            const GranularEval e =
                evaluate_all_granular(b.packed[i % kBatch], 0, g);
            checksum += e.sat + (e.csat << 8);
          }
        },
    });
    const double scalar_ns = best[0] * 1e6 / evals;
    const double packed_ns = best[1] * 1e6 / evals;
    const double speedup = scalar_ns / packed_ns;
    std::printf("  %-6d %9.1f ns %9.1f ns %8.2fx%s\n", n, scalar_ns,
                packed_ns, speedup, n == 32 ? "  <- gated (>= 3x)" : "");
    if (n == 32 && speedup < 3.0) gate_ok = false;
  }

  std::printf("\nfull round: sample + evaluate vs fused kernel\n");
  std::printf("  %-6s %12s %12s %9s\n", "n", "split", "fused", "speedup");
  for (const int n : {8, 32, 128}) {
    const int rounds = evals_for(n) / 8;
    // Identical seeds: the fused sampler replays the split sampler's
    // sub-stream, so the masks must match round-for-round.
    IidTimelinessSampler split(n, kP, 0xabcULL);
    IidTimelinessSampler fused(n, kP, 0xabcULL);
    LinkMatrix a(n);
    PackedLinkMatrix q(n);
    ColumnDeficits cols;
    Round k_split = 0;
    Round k_fused = 0;
    for (int r = 0; r < 16; ++r) {  // warm-up + mask cross-check
      split.sample_round(++k_split, a);
      const std::uint8_t want = evaluate_all(a, 0);
      const FusedRoundEval e =
          fused.sample_round_and_evaluate(++k_fused, 0, q, cols);
      if (e.mask != want) masks_ok = false;
    }
    const std::vector<double> best = interleaved_best_ms({
        [&] {
          for (int r = 0; r < rounds; ++r) {
            split.sample_round(++k_split, a);
            checksum += evaluate_all(a, 0);
          }
        },
        [&] {
          for (int r = 0; r < rounds; ++r) {
            checksum +=
                fused.sample_round_and_evaluate(++k_fused, 0, q, cols).mask;
          }
        },
    });
    const double split_ns = best[0] * 1e6 / rounds;
    const double fused_ns = best[1] * 1e6 / rounds;
    std::printf("  %-6d %9.1f ns %9.1f ns %8.2fx\n", n, split_ns, fused_ns,
                split_ns / fused_ns);
  }

  std::printf("\nmask cross-check: %s   [checksum %lld]\n",
              masks_ok ? "OK" : "MISMATCH", checksum);
  std::printf("gate (packed >= 3x scalar at n=32, homogeneous and "
              "granular): %s\n",
              gate_ok && masks_ok ? "OK" : "FAILED");
  return gate_ok && masks_ok ? 0 : 1;
}

// Ablation: sensitivity of the model comparison to the group size n.
//
// The paper fixes n = 8 ("similarly to the group sizes used in other
// performance studies"). Here we sweep n on the IID network at a fixed
// per-link p and report measured per-round incidence P_M and the rounds
// until the decision conditions hold - the measured counterpart of the
// Appendix C asymptotics: ES collapses quadratically-exponentially, the
// leader models degrade like p^n, <>AFM IMPROVES with n (majorities
// concentrate).
//
// Thin wrapper over the scenario registry (src/scenario): the experiment
// body is run_ablation_group_size; the same run is reachable as
// `timing_lab run ablation/group_size`.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::bench_main("ablation/group_size", argc, argv);
}

// Ablation: sensitivity of the model comparison to the group size n.
//
// The paper fixes n = 8 ("similarly to the group sizes used in other
// performance studies"). Here we sweep n on the IID network at a fixed
// per-link p and report measured per-round incidence P_M and the rounds
// until the decision conditions hold - the measured counterpart of the
// Appendix C asymptotics: ES collapses quadratically-exponentially, the
// leader models degrade like p^n, <>AFM IMPROVES with n (majorities
// concentrate).
#include <iostream>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness/measurement.hpp"
#include "models/timing_model.hpp"
#include "sim/sampler.hpp"

using namespace timing;

int main() {
  const double p = 0.95;
  const int rounds = 4000;
  Table t({"n", "P_ES", "P_AFM", "P_LM", "P_WLM", "rounds ES(3)",
           "AFM(5)", "LM(3)", "WLM(4)"});
  const std::vector<int> ns = {4, 6, 8, 12, 16, 24, 32, 48};
  // One measurement run per group size, fanned over the pool; sampler
  // seeds depend only on n, so the sweep is thread-count-invariant.
  const auto runs = measure_runs(
      static_cast<int>(ns.size()),
      [&](int i) -> std::unique_ptr<TimelinessSampler> {
        const int n = ns[static_cast<std::size_t>(i)];
        return std::make_unique<IidTimelinessSampler>(n, p, 0xabc + n);
      },
      rounds, /*leader=*/0);
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const RunMeasurement& m = runs[i];
    Rng rng(7);
    auto window = [&](TimingModel model, int needed) {
      const auto ds = decision_stats(
          m.sat[static_cast<std::size_t>(model_index(model))], needed, 40, rng);
      return (ds.censored_fraction > 0.5 ? ">=" : "") +
             Table::num(ds.mean_rounds, 1);
    };
    t.add_row({Table::integer(ns[i]),
               Table::num(m.incidence(TimingModel::kEs), 3),
               Table::num(m.incidence(TimingModel::kAfm), 3),
               Table::num(m.incidence(TimingModel::kLm), 3),
               Table::num(m.incidence(TimingModel::kWlm), 3),
               window(TimingModel::kEs, 3), window(TimingModel::kAfm, 5),
               window(TimingModel::kLm, 3), window(TimingModel::kWlm, 4)});
  }
  t.print(std::cout,
          "Group-size sweep, IID p = 0.95 (measured; compare Appendix C). "
          "'>=' marks censored (4000-round run ended first).");
  std::cout << "\nChoosing a timing model depends on n as much as on p: at "
               "n = 48, <>AFM's conditions hold essentially always while "
               "ES's never do.\n";
  return 0;
}

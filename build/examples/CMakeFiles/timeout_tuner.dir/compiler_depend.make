# Empty compiler generated dependencies file for timeout_tuner.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/timeout_tuner.dir/timeout_tuner.cpp.o"
  "CMakeFiles/timeout_tuner.dir/timeout_tuner.cpp.o.d"
  "timeout_tuner"
  "timeout_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeout_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

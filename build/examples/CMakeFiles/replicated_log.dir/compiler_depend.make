# Empty compiler generated dependencies file for replicated_log.
# This may be replaced when dependencies are built.

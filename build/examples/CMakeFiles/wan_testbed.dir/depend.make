# Empty dependencies file for wan_testbed.
# This may be replaced when dependencies are built.

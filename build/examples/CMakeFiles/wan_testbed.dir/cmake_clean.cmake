file(REMOVE_RECURSE
  "CMakeFiles/wan_testbed.dir/wan_testbed.cpp.o"
  "CMakeFiles/wan_testbed.dir/wan_testbed.cpp.o.d"
  "wan_testbed"
  "wan_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig1h_wan_time.
# This may be replaced when dependencies are built.

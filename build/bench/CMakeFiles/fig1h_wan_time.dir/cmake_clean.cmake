file(REMOVE_RECURSE
  "CMakeFiles/fig1h_wan_time.dir/fig1h_wan_time.cpp.o"
  "CMakeFiles/fig1h_wan_time.dir/fig1h_wan_time.cpp.o.d"
  "fig1h_wan_time"
  "fig1h_wan_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1h_wan_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

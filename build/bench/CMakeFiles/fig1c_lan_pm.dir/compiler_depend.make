# Empty compiler generated dependencies file for fig1c_lan_pm.
# This may be replaced when dependencies are built.

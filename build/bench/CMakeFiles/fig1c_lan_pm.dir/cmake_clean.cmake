file(REMOVE_RECURSE
  "CMakeFiles/fig1c_lan_pm.dir/fig1c_lan_pm.cpp.o"
  "CMakeFiles/fig1c_lan_pm.dir/fig1c_lan_pm.cpp.o.d"
  "fig1c_lan_pm"
  "fig1c_lan_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1c_lan_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

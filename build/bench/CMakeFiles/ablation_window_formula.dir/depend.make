# Empty dependencies file for ablation_window_formula.
# This may be replaced when dependencies are built.

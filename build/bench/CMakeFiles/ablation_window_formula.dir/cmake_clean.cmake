file(REMOVE_RECURSE
  "CMakeFiles/ablation_window_formula.dir/ablation_window_formula.cpp.o"
  "CMakeFiles/ablation_window_formula.dir/ablation_window_formula.cpp.o.d"
  "ablation_window_formula"
  "ablation_window_formula.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_window_formula.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_paxos_recovery.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_paxos_recovery.dir/ablation_paxos_recovery.cpp.o"
  "CMakeFiles/ablation_paxos_recovery.dir/ablation_paxos_recovery.cpp.o.d"
  "ablation_paxos_recovery"
  "ablation_paxos_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_paxos_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

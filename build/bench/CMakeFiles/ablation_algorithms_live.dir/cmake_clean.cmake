file(REMOVE_RECURSE
  "CMakeFiles/ablation_algorithms_live.dir/ablation_algorithms_live.cpp.o"
  "CMakeFiles/ablation_algorithms_live.dir/ablation_algorithms_live.cpp.o.d"
  "ablation_algorithms_live"
  "ablation_algorithms_live.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_algorithms_live.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_algorithms_live.
# This may be replaced when dependencies are built.

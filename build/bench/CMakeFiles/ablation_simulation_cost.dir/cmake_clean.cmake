file(REMOVE_RECURSE
  "CMakeFiles/ablation_simulation_cost.dir/ablation_simulation_cost.cpp.o"
  "CMakeFiles/ablation_simulation_cost.dir/ablation_simulation_cost.cpp.o.d"
  "ablation_simulation_cost"
  "ablation_simulation_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_simulation_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

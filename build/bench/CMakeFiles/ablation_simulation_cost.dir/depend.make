# Empty dependencies file for ablation_simulation_cost.
# This may be replaced when dependencies are built.

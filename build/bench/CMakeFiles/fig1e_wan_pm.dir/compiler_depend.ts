# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig1e_wan_pm.

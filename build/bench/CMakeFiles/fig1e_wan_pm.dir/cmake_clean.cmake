file(REMOVE_RECURSE
  "CMakeFiles/fig1e_wan_pm.dir/fig1e_wan_pm.cpp.o"
  "CMakeFiles/fig1e_wan_pm.dir/fig1e_wan_pm.cpp.o.d"
  "fig1e_wan_pm"
  "fig1e_wan_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1e_wan_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig1e_wan_pm.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig1b_analysis_low_p.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig1b_analysis_low_p.dir/fig1b_analysis_low_p.cpp.o"
  "CMakeFiles/fig1b_analysis_low_p.dir/fig1b_analysis_low_p.cpp.o.d"
  "fig1b_analysis_low_p"
  "fig1b_analysis_low_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_analysis_low_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

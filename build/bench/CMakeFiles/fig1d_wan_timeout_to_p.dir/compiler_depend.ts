# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig1d_wan_timeout_to_p.

file(REMOVE_RECURSE
  "CMakeFiles/fig1d_wan_timeout_to_p.dir/fig1d_wan_timeout_to_p.cpp.o"
  "CMakeFiles/fig1d_wan_timeout_to_p.dir/fig1d_wan_timeout_to_p.cpp.o.d"
  "fig1d_wan_timeout_to_p"
  "fig1d_wan_timeout_to_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1d_wan_timeout_to_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

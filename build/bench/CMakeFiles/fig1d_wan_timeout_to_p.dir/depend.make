# Empty dependencies file for fig1d_wan_timeout_to_p.
# This may be replaced when dependencies are built.

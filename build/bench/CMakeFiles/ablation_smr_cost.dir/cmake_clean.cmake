file(REMOVE_RECURSE
  "CMakeFiles/ablation_smr_cost.dir/ablation_smr_cost.cpp.o"
  "CMakeFiles/ablation_smr_cost.dir/ablation_smr_cost.cpp.o.d"
  "ablation_smr_cost"
  "ablation_smr_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smr_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

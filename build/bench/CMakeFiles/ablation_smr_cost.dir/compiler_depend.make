# Empty compiler generated dependencies file for ablation_smr_cost.
# This may be replaced when dependencies are built.

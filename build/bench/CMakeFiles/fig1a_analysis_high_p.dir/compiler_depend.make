# Empty compiler generated dependencies file for fig1a_analysis_high_p.
# This may be replaced when dependencies are built.

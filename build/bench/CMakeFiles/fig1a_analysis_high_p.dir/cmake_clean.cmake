file(REMOVE_RECURSE
  "CMakeFiles/fig1a_analysis_high_p.dir/fig1a_analysis_high_p.cpp.o"
  "CMakeFiles/fig1a_analysis_high_p.dir/fig1a_analysis_high_p.cpp.o.d"
  "fig1a_analysis_high_p"
  "fig1a_analysis_high_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_analysis_high_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

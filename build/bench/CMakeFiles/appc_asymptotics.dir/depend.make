# Empty dependencies file for appc_asymptotics.
# This may be replaced when dependencies are built.

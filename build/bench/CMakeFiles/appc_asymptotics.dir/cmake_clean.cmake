file(REMOVE_RECURSE
  "CMakeFiles/appc_asymptotics.dir/appc_asymptotics.cpp.o"
  "CMakeFiles/appc_asymptotics.dir/appc_asymptotics.cpp.o.d"
  "appc_asymptotics"
  "appc_asymptotics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appc_asymptotics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig1i_timeout_tradeoff.
# This may be replaced when dependencies are built.

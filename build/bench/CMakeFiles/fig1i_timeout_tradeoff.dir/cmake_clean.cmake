file(REMOVE_RECURSE
  "CMakeFiles/fig1i_timeout_tradeoff.dir/fig1i_timeout_tradeoff.cpp.o"
  "CMakeFiles/fig1i_timeout_tradeoff.dir/fig1i_timeout_tradeoff.cpp.o.d"
  "fig1i_timeout_tradeoff"
  "fig1i_timeout_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1i_timeout_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig1f_wan_variance.dir/fig1f_wan_variance.cpp.o"
  "CMakeFiles/fig1f_wan_variance.dir/fig1f_wan_variance.cpp.o.d"
  "fig1f_wan_variance"
  "fig1f_wan_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1f_wan_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

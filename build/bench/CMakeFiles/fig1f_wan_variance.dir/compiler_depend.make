# Empty compiler generated dependencies file for fig1f_wan_variance.
# This may be replaced when dependencies are built.

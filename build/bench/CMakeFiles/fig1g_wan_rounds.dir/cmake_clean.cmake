file(REMOVE_RECURSE
  "CMakeFiles/fig1g_wan_rounds.dir/fig1g_wan_rounds.cpp.o"
  "CMakeFiles/fig1g_wan_rounds.dir/fig1g_wan_rounds.cpp.o.d"
  "fig1g_wan_rounds"
  "fig1g_wan_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1g_wan_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

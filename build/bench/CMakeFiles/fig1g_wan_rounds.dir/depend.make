# Empty dependencies file for fig1g_wan_rounds.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/oracles_test.dir/oracles_test.cpp.o"
  "CMakeFiles/oracles_test.dir/oracles_test.cpp.o.d"
  "oracles_test"
  "oracles_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

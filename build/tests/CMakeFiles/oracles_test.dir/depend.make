# Empty dependencies file for oracles_test.
# This may be replaced when dependencies are built.

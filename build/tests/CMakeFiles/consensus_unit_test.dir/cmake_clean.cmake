file(REMOVE_RECURSE
  "CMakeFiles/consensus_unit_test.dir/consensus_unit_test.cpp.o"
  "CMakeFiles/consensus_unit_test.dir/consensus_unit_test.cpp.o.d"
  "consensus_unit_test"
  "consensus_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consensus_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

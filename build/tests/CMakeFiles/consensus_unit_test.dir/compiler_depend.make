# Empty compiler generated dependencies file for consensus_unit_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/roundsync_test.dir/roundsync_test.cpp.o"
  "CMakeFiles/roundsync_test.dir/roundsync_test.cpp.o.d"
  "roundsync_test"
  "roundsync_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roundsync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

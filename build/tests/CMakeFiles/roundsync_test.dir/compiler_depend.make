# Empty compiler generated dependencies file for roundsync_test.
# This may be replaced when dependencies are built.

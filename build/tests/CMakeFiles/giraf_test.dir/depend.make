# Empty dependencies file for giraf_test.
# This may be replaced when dependencies are built.

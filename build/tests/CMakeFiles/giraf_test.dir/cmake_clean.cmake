file(REMOVE_RECURSE
  "CMakeFiles/giraf_test.dir/giraf_test.cpp.o"
  "CMakeFiles/giraf_test.dir/giraf_test.cpp.o.d"
  "giraf_test"
  "giraf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/giraf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/sim_test.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/tm_models.dir/DependInfo.cmake"
  "/root/repo/build/src/giraf/CMakeFiles/tm_giraf.dir/DependInfo.cmake"
  "/root/repo/build/src/oracles/CMakeFiles/tm_oracles.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/tm_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/roundsync/CMakeFiles/tm_roundsync.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/tm_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/smr/CMakeFiles/tm_smr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for tm_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tm_common.dir/binomial.cpp.o"
  "CMakeFiles/tm_common.dir/binomial.cpp.o.d"
  "CMakeFiles/tm_common.dir/rng.cpp.o"
  "CMakeFiles/tm_common.dir/rng.cpp.o.d"
  "CMakeFiles/tm_common.dir/stats.cpp.o"
  "CMakeFiles/tm_common.dir/stats.cpp.o.d"
  "CMakeFiles/tm_common.dir/table.cpp.o"
  "CMakeFiles/tm_common.dir/table.cpp.o.d"
  "libtm_common.a"
  "libtm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtm_common.a"
)

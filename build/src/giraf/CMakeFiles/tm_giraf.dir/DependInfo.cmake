
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/giraf/engine.cpp" "src/giraf/CMakeFiles/tm_giraf.dir/engine.cpp.o" "gcc" "src/giraf/CMakeFiles/tm_giraf.dir/engine.cpp.o.d"
  "/root/repo/src/giraf/message.cpp" "src/giraf/CMakeFiles/tm_giraf.dir/message.cpp.o" "gcc" "src/giraf/CMakeFiles/tm_giraf.dir/message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for tm_giraf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tm_giraf.dir/engine.cpp.o"
  "CMakeFiles/tm_giraf.dir/engine.cpp.o.d"
  "CMakeFiles/tm_giraf.dir/message.cpp.o"
  "CMakeFiles/tm_giraf.dir/message.cpp.o.d"
  "libtm_giraf.a"
  "libtm_giraf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_giraf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtm_giraf.a"
)

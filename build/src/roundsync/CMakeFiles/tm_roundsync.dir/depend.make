# Empty dependencies file for tm_roundsync.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtm_roundsync.a"
)

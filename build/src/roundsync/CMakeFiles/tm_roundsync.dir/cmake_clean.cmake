file(REMOVE_RECURSE
  "CMakeFiles/tm_roundsync.dir/adaptive_timeout.cpp.o"
  "CMakeFiles/tm_roundsync.dir/adaptive_timeout.cpp.o.d"
  "CMakeFiles/tm_roundsync.dir/roundsync.cpp.o"
  "CMakeFiles/tm_roundsync.dir/roundsync.cpp.o.d"
  "libtm_roundsync.a"
  "libtm_roundsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_roundsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

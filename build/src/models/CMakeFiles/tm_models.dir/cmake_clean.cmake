file(REMOVE_RECURSE
  "CMakeFiles/tm_models.dir/predicates.cpp.o"
  "CMakeFiles/tm_models.dir/predicates.cpp.o.d"
  "CMakeFiles/tm_models.dir/schedule.cpp.o"
  "CMakeFiles/tm_models.dir/schedule.cpp.o.d"
  "CMakeFiles/tm_models.dir/timing_model.cpp.o"
  "CMakeFiles/tm_models.dir/timing_model.cpp.o.d"
  "libtm_models.a"
  "libtm_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

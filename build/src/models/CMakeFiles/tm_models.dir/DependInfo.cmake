
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/predicates.cpp" "src/models/CMakeFiles/tm_models.dir/predicates.cpp.o" "gcc" "src/models/CMakeFiles/tm_models.dir/predicates.cpp.o.d"
  "/root/repo/src/models/schedule.cpp" "src/models/CMakeFiles/tm_models.dir/schedule.cpp.o" "gcc" "src/models/CMakeFiles/tm_models.dir/schedule.cpp.o.d"
  "/root/repo/src/models/timing_model.cpp" "src/models/CMakeFiles/tm_models.dir/timing_model.cpp.o" "gcc" "src/models/CMakeFiles/tm_models.dir/timing_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for tm_models.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtm_models.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/factory.cpp" "src/consensus/CMakeFiles/tm_consensus.dir/factory.cpp.o" "gcc" "src/consensus/CMakeFiles/tm_consensus.dir/factory.cpp.o.d"
  "/root/repo/src/consensus/lm3.cpp" "src/consensus/CMakeFiles/tm_consensus.dir/lm3.cpp.o" "gcc" "src/consensus/CMakeFiles/tm_consensus.dir/lm3.cpp.o.d"
  "/root/repo/src/consensus/lm_over_wlm.cpp" "src/consensus/CMakeFiles/tm_consensus.dir/lm_over_wlm.cpp.o" "gcc" "src/consensus/CMakeFiles/tm_consensus.dir/lm_over_wlm.cpp.o.d"
  "/root/repo/src/consensus/paxos.cpp" "src/consensus/CMakeFiles/tm_consensus.dir/paxos.cpp.o" "gcc" "src/consensus/CMakeFiles/tm_consensus.dir/paxos.cpp.o.d"
  "/root/repo/src/consensus/unanimity.cpp" "src/consensus/CMakeFiles/tm_consensus.dir/unanimity.cpp.o" "gcc" "src/consensus/CMakeFiles/tm_consensus.dir/unanimity.cpp.o.d"
  "/root/repo/src/consensus/wlm.cpp" "src/consensus/CMakeFiles/tm_consensus.dir/wlm.cpp.o" "gcc" "src/consensus/CMakeFiles/tm_consensus.dir/wlm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/giraf/CMakeFiles/tm_giraf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/tm_consensus.dir/factory.cpp.o"
  "CMakeFiles/tm_consensus.dir/factory.cpp.o.d"
  "CMakeFiles/tm_consensus.dir/lm3.cpp.o"
  "CMakeFiles/tm_consensus.dir/lm3.cpp.o.d"
  "CMakeFiles/tm_consensus.dir/lm_over_wlm.cpp.o"
  "CMakeFiles/tm_consensus.dir/lm_over_wlm.cpp.o.d"
  "CMakeFiles/tm_consensus.dir/paxos.cpp.o"
  "CMakeFiles/tm_consensus.dir/paxos.cpp.o.d"
  "CMakeFiles/tm_consensus.dir/unanimity.cpp.o"
  "CMakeFiles/tm_consensus.dir/unanimity.cpp.o.d"
  "CMakeFiles/tm_consensus.dir/wlm.cpp.o"
  "CMakeFiles/tm_consensus.dir/wlm.cpp.o.d"
  "libtm_consensus.a"
  "libtm_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

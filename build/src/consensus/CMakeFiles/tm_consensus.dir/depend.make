# Empty dependencies file for tm_consensus.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtm_consensus.a"
)

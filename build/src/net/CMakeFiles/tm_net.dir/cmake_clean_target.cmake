file(REMOVE_RECURSE
  "libtm_net.a"
)

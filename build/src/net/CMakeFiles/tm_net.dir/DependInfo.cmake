
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/codec.cpp" "src/net/CMakeFiles/tm_net.dir/codec.cpp.o" "gcc" "src/net/CMakeFiles/tm_net.dir/codec.cpp.o.d"
  "/root/repo/src/net/frame.cpp" "src/net/CMakeFiles/tm_net.dir/frame.cpp.o" "gcc" "src/net/CMakeFiles/tm_net.dir/frame.cpp.o.d"
  "/root/repo/src/net/ping.cpp" "src/net/CMakeFiles/tm_net.dir/ping.cpp.o" "gcc" "src/net/CMakeFiles/tm_net.dir/ping.cpp.o.d"
  "/root/repo/src/net/transport.cpp" "src/net/CMakeFiles/tm_net.dir/transport.cpp.o" "gcc" "src/net/CMakeFiles/tm_net.dir/transport.cpp.o.d"
  "/root/repo/src/net/udp_transport.cpp" "src/net/CMakeFiles/tm_net.dir/udp_transport.cpp.o" "gcc" "src/net/CMakeFiles/tm_net.dir/udp_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/giraf/CMakeFiles/tm_giraf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for tm_net.
# This may be replaced when dependencies are built.

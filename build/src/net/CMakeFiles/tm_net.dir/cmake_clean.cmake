file(REMOVE_RECURSE
  "CMakeFiles/tm_net.dir/codec.cpp.o"
  "CMakeFiles/tm_net.dir/codec.cpp.o.d"
  "CMakeFiles/tm_net.dir/frame.cpp.o"
  "CMakeFiles/tm_net.dir/frame.cpp.o.d"
  "CMakeFiles/tm_net.dir/ping.cpp.o"
  "CMakeFiles/tm_net.dir/ping.cpp.o.d"
  "CMakeFiles/tm_net.dir/transport.cpp.o"
  "CMakeFiles/tm_net.dir/transport.cpp.o.d"
  "CMakeFiles/tm_net.dir/udp_transport.cpp.o"
  "CMakeFiles/tm_net.dir/udp_transport.cpp.o.d"
  "libtm_net.a"
  "libtm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

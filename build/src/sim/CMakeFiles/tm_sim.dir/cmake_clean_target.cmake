file(REMOVE_RECURSE
  "libtm_sim.a"
)

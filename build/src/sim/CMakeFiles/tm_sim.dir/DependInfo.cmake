
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/latency_model.cpp" "src/sim/CMakeFiles/tm_sim.dir/latency_model.cpp.o" "gcc" "src/sim/CMakeFiles/tm_sim.dir/latency_model.cpp.o.d"
  "/root/repo/src/sim/sampler.cpp" "src/sim/CMakeFiles/tm_sim.dir/sampler.cpp.o" "gcc" "src/sim/CMakeFiles/tm_sim.dir/sampler.cpp.o.d"
  "/root/repo/src/sim/trace_model.cpp" "src/sim/CMakeFiles/tm_sim.dir/trace_model.cpp.o" "gcc" "src/sim/CMakeFiles/tm_sim.dir/trace_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for tm_sim.
# This may be replaced when dependencies are built.

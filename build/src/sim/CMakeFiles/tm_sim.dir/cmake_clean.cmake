file(REMOVE_RECURSE
  "CMakeFiles/tm_sim.dir/latency_model.cpp.o"
  "CMakeFiles/tm_sim.dir/latency_model.cpp.o.d"
  "CMakeFiles/tm_sim.dir/sampler.cpp.o"
  "CMakeFiles/tm_sim.dir/sampler.cpp.o.d"
  "CMakeFiles/tm_sim.dir/trace_model.cpp.o"
  "CMakeFiles/tm_sim.dir/trace_model.cpp.o.d"
  "libtm_sim.a"
  "libtm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tm_analysis.dir/equations.cpp.o"
  "CMakeFiles/tm_analysis.dir/equations.cpp.o.d"
  "libtm_analysis.a"
  "libtm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/equations.cpp" "src/analysis/CMakeFiles/tm_analysis.dir/equations.cpp.o" "gcc" "src/analysis/CMakeFiles/tm_analysis.dir/equations.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/tm_models.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

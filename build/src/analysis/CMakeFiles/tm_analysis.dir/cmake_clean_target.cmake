file(REMOVE_RECURSE
  "libtm_analysis.a"
)

# Empty dependencies file for tm_analysis.
# This may be replaced when dependencies are built.

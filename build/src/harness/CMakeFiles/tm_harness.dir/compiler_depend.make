# Empty compiler generated dependencies file for tm_harness.
# This may be replaced when dependencies are built.

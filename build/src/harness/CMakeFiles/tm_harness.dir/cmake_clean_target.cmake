file(REMOVE_RECURSE
  "libtm_harness.a"
)

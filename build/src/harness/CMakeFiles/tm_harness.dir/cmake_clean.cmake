file(REMOVE_RECURSE
  "CMakeFiles/tm_harness.dir/algorithm_runs.cpp.o"
  "CMakeFiles/tm_harness.dir/algorithm_runs.cpp.o.d"
  "CMakeFiles/tm_harness.dir/experiments.cpp.o"
  "CMakeFiles/tm_harness.dir/experiments.cpp.o.d"
  "CMakeFiles/tm_harness.dir/measurement.cpp.o"
  "CMakeFiles/tm_harness.dir/measurement.cpp.o.d"
  "libtm_harness.a"
  "libtm_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tm_oracles.dir/omega.cpp.o"
  "CMakeFiles/tm_oracles.dir/omega.cpp.o.d"
  "CMakeFiles/tm_oracles.dir/omega_election.cpp.o"
  "CMakeFiles/tm_oracles.dir/omega_election.cpp.o.d"
  "libtm_oracles.a"
  "libtm_oracles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_oracles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

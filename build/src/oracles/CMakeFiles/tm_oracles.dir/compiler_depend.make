# Empty compiler generated dependencies file for tm_oracles.
# This may be replaced when dependencies are built.

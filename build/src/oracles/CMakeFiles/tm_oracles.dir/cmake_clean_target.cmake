file(REMOVE_RECURSE
  "libtm_oracles.a"
)

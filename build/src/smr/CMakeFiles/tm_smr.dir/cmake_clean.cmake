file(REMOVE_RECURSE
  "CMakeFiles/tm_smr.dir/smr.cpp.o"
  "CMakeFiles/tm_smr.dir/smr.cpp.o.d"
  "CMakeFiles/tm_smr.dir/state_machine.cpp.o"
  "CMakeFiles/tm_smr.dir/state_machine.cpp.o.d"
  "libtm_smr.a"
  "libtm_smr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_smr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

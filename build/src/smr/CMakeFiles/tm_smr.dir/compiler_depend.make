# Empty compiler generated dependencies file for tm_smr.
# This may be replaced when dependencies are built.

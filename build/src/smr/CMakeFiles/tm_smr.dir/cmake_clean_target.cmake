file(REMOVE_RECURSE
  "libtm_smr.a"
)

// Tests for the state-machine-replication layer: the KV/journal machines,
// the deterministic engine-based SmrGroup (including chaos, crashes and
// leader election), and the network SmrNode over the in-process hub.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "fault/injector.hpp"
#include "giraf/engine.hpp"
#include "history/history.hpp"
#include "history/linearizability.hpp"
#include "history/recorder.hpp"
#include "models/schedule.hpp"
#include "net/transport.hpp"
#include "oracles/omega.hpp"
#include "smr/smr.hpp"

namespace timing {
namespace {

// ------------------------------------------------------ state machines --

TEST(StateMachine, KvCommandEncoding) {
  const Command c = make_kv_command(7, 4242);
  EXPECT_EQ(kv_command_key(c), 7u);
  EXPECT_EQ(kv_command_argument(c), 4242u);
  EXPECT_GT(c, 0);
  const Command big = make_kv_command(0x7fffffffu, 0x7fffffffu);
  EXPECT_EQ(kv_command_key(big), 0x7fffffffu);
  EXPECT_EQ(kv_command_argument(big), 0x7fffffffu);
  EXPECT_NE(big, kNoValue);
}

TEST(StateMachine, KvApplyAndLookup) {
  KvStateMachine kv;
  kv.apply(make_kv_command(1, 10));
  kv.apply(make_kv_command(2, 20));
  kv.apply(make_kv_command(1, 11));  // overwrite
  kv.apply(kNoopCommand);            // counted, no effect on the map
  std::uint32_t out = 0;
  ASSERT_TRUE(kv.get(1, out));
  EXPECT_EQ(out, 11u);
  ASSERT_TRUE(kv.get(2, out));
  EXPECT_EQ(out, 20u);
  EXPECT_FALSE(kv.get(3, out));
  EXPECT_EQ(kv.size(), 2u);
  EXPECT_EQ(kv.applied(), 4);
}

TEST(StateMachine, FingerprintsDetectDivergence) {
  KvStateMachine a, b;
  a.apply(make_kv_command(1, 10));
  b.apply(make_kv_command(1, 10));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.apply(make_kv_command(1, 11));
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  // Same final map, different applied count: still flagged (replicas
  // must agree on the SEQUENCE, not just the end state).
  a.apply(make_kv_command(1, 11));
  a.apply(kNoopCommand);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(StateMachine, JournalRecordsSequence) {
  JournalStateMachine j;
  j.apply(5);
  j.apply(9);
  EXPECT_EQ(j.journal(), (std::vector<Command>{5, 9}));
  JournalStateMachine k;
  k.apply(9);
  k.apply(5);
  EXPECT_NE(j.fingerprint(), k.fingerprint()) << "order must matter";
}

// ------------------------------------------------------------ SmrGroup --

std::vector<std::unique_ptr<StateMachine>> kv_machines(int n) {
  std::vector<std::unique_ptr<StateMachine>> ms;
  for (int i = 0; i < n; ++i) ms.push_back(std::make_unique<KvStateMachine>());
  return ms;
}

// ------------------------------------------------- shared SMR helpers --

// Regression: the agreement scan must skip EVERY undecided replica, not
// just crashed ones — reading decision() from a replica that never got
// there poisoned the check with garbage.
TEST(SmrHelpers, AgreedDecisionSkipsUndecidedReplicas) {
  const int n = 5;
  const Value decree = 4242;
  std::vector<std::unique_ptr<Protocol>> group;
  for (ProcessId i = 0; i < n; ++i) {
    group.push_back(make_smr_protocol(AlgorithmKind::kWlm, i, n, decree,
                                      /*use_election=*/false));
  }
  RoundEngine engine(std::move(group), std::make_shared<DesignatedOracle>(0));
  engine.crash_at(3, 1);  // executes no rounds: stays undecided forever
  const LinkMatrix timely(n, 0);
  while (!engine.all_alive_decided()) {
    ASSERT_LT(engine.current_round(), 50) << "timely group must decide";
    engine.step(timely);
  }
  ASSERT_FALSE(engine.process(3).has_decided());
  EXPECT_EQ(smr_agreed_decision(engine), decree);
}

// Regression: `1 + inst * stride` used to be computed in 32-bit Round
// arithmetic and silently wrapped at throughput-scale instance counts,
// violating the disjoint-wire-round-range invariant.
TEST(SmrHelpers, FirstRoundIsComputedIn64Bits) {
  const Round stride = 1 << 20;
  EXPECT_EQ(smr_first_round(0, stride), 1);
  EXPECT_EQ(smr_first_round(1, stride), 1 + (1 << 20));
  // The largest instance whose round RANGE (first..first+stride) still
  // fits: 1 + 2046 * 2^20 + 2^20 <= INT32_MAX.
  EXPECT_EQ(smr_first_round(2046, stride),
            static_cast<Round>(1 + 2046LL * (1 << 20)));
}

TEST(SmrHelpersDeathTest, FirstRoundOverflowAborts) {
  // One instance past the boundary: the range end no longer fits Round.
  EXPECT_DEATH(smr_first_round(2047, 1 << 20),
               "instance round range overflows Round");
}

TEST(SmrGroup, ReplicatesAcrossChaoticInstances) {
  const int n = 5;
  SmrGroupConfig cfg;
  cfg.n = n;
  cfg.leader = 1;
  SmrGroup group(cfg, kv_machines(n));

  Rng rng(404);
  for (int inst = 0; inst < 10; ++inst) {
    std::vector<Command> proposals;
    for (int i = 0; i < n; ++i) {
      proposals.push_back(make_kv_command(
          static_cast<std::uint32_t>(rng.uniform_int(4)),
          static_cast<std::uint32_t>(1 + rng.uniform_int(1000))));
    }
    ScheduleConfig sched;
    sched.n = n;
    sched.model = TimingModel::kWlm;
    sched.leader = 1;
    sched.gsr = 1 + static_cast<Round>(rng.uniform_int(12));
    sched.pre_gsr_p = 0.3;
    sched.seed = 1000 + static_cast<std::uint64_t>(inst);
    ScheduleSampler network(sched);

    const auto r = group.run_instance(proposals, network);
    ASSERT_TRUE(r.decided) << "instance " << inst;
    EXPECT_NE(std::find(proposals.begin(), proposals.end(), r.command),
              proposals.end())
        << "decided command must be someone's proposal";
    ASSERT_TRUE(group.consistent()) << "instance " << inst;
  }
  EXPECT_EQ(group.instances_decided(), 10);
  const auto& kv = static_cast<const KvStateMachine&>(group.machine(0));
  EXPECT_EQ(kv.applied(), 10);
}

TEST(SmrGroup, UndecidedInstanceAppliesNothing) {
  const int n = 4;
  SmrGroupConfig cfg;
  cfg.n = n;
  cfg.max_rounds_per_instance = 30;
  SmrGroup group(cfg, kv_machines(n));
  std::vector<Command> proposals{make_kv_command(1, 1), make_kv_command(1, 2),
                                 make_kv_command(1, 3), make_kv_command(1, 4)};
  ScheduleConfig sched;
  sched.n = n;
  sched.model = TimingModel::kWlm;
  sched.gsr = 1 << 28;  // never stabilizes
  sched.pre_gsr_p = 0.1;
  sched.seed = 3;
  ScheduleSampler network(sched);
  const auto r = group.run_instance(proposals, network);
  EXPECT_FALSE(r.decided);
  EXPECT_EQ(group.instances_decided(), 0);
  const auto& kv = static_cast<const KvStateMachine&>(group.machine(0));
  EXPECT_EQ(kv.applied(), 0);
  EXPECT_TRUE(group.consistent());
}

TEST(SmrGroup, WorksWithOnlineElection) {
  const int n = 5;
  SmrGroupConfig cfg;
  cfg.n = n;
  cfg.use_election = true;  // no designated oracle at all
  SmrGroup group(cfg, kv_machines(n));
  for (int inst = 0; inst < 5; ++inst) {
    std::vector<Command> proposals;
    for (int i = 0; i < n; ++i) {
      proposals.push_back(
          make_kv_command(static_cast<std::uint32_t>(inst),
                          static_cast<std::uint32_t>(100 + i)));
    }
    ScheduleConfig sched;
    sched.n = n;
    sched.model = TimingModel::kWlm;
    sched.leader = 2;
    sched.gsr = 6;
    sched.seed = 50 + static_cast<std::uint64_t>(inst);
    ScheduleSampler network(sched);
    const auto r = group.run_instance(proposals, network);
    ASSERT_TRUE(r.decided) << "instance " << inst;
    ASSERT_TRUE(group.consistent());
  }
}

TEST(SmrGroup, NoopsFillIdleSlots) {
  const int n = 4;
  SmrGroupConfig cfg;
  cfg.n = n;
  cfg.leader = 0;
  std::vector<std::unique_ptr<StateMachine>> ms;
  for (int i = 0; i < n; ++i) {
    ms.push_back(std::make_unique<JournalStateMachine>());
  }
  SmrGroup group(cfg, std::move(ms));
  std::vector<Command> proposals(static_cast<std::size_t>(n), kNoopCommand);
  ScheduleConfig sched;
  sched.n = n;
  sched.model = TimingModel::kWlm;
  sched.leader = 0;
  sched.gsr = 1;
  sched.seed = 5;
  ScheduleSampler network(sched);
  const auto r = group.run_instance(proposals, network);
  ASSERT_TRUE(r.decided);
  EXPECT_EQ(r.command, kNoopCommand);
  const auto& j = static_cast<const JournalStateMachine&>(group.machine(2));
  EXPECT_EQ(j.journal(), (std::vector<Command>{kNoopCommand}));
}

TEST(SmrGroup, SurvivesMinorityCrashes) {
  // Two of five replicas crash at different points of a 6-instance log;
  // the survivors keep deciding and stay mutually consistent.
  const int n = 5;
  SmrGroupConfig cfg;
  cfg.n = n;
  cfg.leader = 0;
  SmrGroup group(cfg, kv_machines(n));

  for (int inst = 0; inst < 6; ++inst) {
    std::vector<Command> proposals;
    for (int i = 0; i < n; ++i) {
      proposals.push_back(make_kv_command(
          static_cast<std::uint32_t>(inst),
          static_cast<std::uint32_t>(100 * inst + i)));
    }
    // Instance 2 loses p4 mid-run; instance 4 additionally loses p3.
    std::vector<Round> crashes(static_cast<std::size_t>(n), 0);
    if (inst >= 2) crashes[4] = inst == 2 ? 5 : 1;
    if (inst >= 4) crashes[3] = inst == 4 ? 3 : 1;

    ScheduleConfig sched;
    sched.n = n;
    sched.model = TimingModel::kWlm;
    sched.leader = 0;
    sched.gsr = 8;
    sched.seed = 900 + static_cast<std::uint64_t>(inst);
    sched.crash_rounds = crashes;
    ScheduleSampler network(sched);

    const auto r = group.run_instance(proposals, network, &crashes);
    ASSERT_TRUE(r.decided) << "instance " << inst;
  }
  // Survivors p0..p2 applied everything and agree.
  std::vector<bool> survivors{true, true, true, false, false};
  EXPECT_TRUE(group.consistent_among(survivors));
  const auto& kv = static_cast<const KvStateMachine&>(group.machine(0));
  EXPECT_EQ(kv.applied(), 6);
  // The crashed replicas are BEHIND (shorter logs), not divergent: their
  // applied prefix lengths are smaller.
  const auto& kv4 = static_cast<const KvStateMachine&>(group.machine(4));
  EXPECT_LT(kv4.applied(), 6);
}

// ------------------------------------- register machine + op histories --

std::vector<std::unique_ptr<StateMachine>> register_machines(int n) {
  std::vector<std::unique_ptr<StateMachine>> ms;
  for (int i = 0; i < n; ++i) {
    ms.push_back(std::make_unique<RegisterStateMachine>());
  }
  return ms;
}

ScheduleSampler conforming_network(int n, ProcessId leader,
                                   std::uint64_t seed, Round gsr = 1) {
  ScheduleConfig sched;
  sched.n = n;
  sched.model = TimingModel::kWlm;
  sched.leader = leader;
  sched.gsr = gsr;
  sched.seed = seed;
  return ScheduleSampler(sched);
}

TEST(StateMachine, DuplicateRequestIdIsIdempotent) {
  RegisterStateMachine m;
  const Command cmd = make_register_command(op_func::kAppend, 5, 3, 0, 77, 0);
  m.apply(cmd);
  const Value chain1 = m.value(0);
  Value r1 = kNoValue;
  ASSERT_TRUE(m.last_result(3, r1));

  // A duplicate (client 3, rid 5) is recognized via the session table and
  // NOT re-executed: same state, same cached result.
  m.apply(cmd);
  EXPECT_EQ(m.value(0), chain1);
  EXPECT_EQ(m.effective(), 1);
  EXPECT_EQ(m.applied(), 2);
  Value r2 = kNoValue;
  ASSERT_TRUE(m.last_result(3, r2));
  EXPECT_EQ(r2, r1);

  // A fresh rid from the same client re-executes.
  m.apply(make_register_command(op_func::kAppend, 6, 3, 0, 77, 0));
  EXPECT_EQ(m.effective(), 2);
  EXPECT_NE(m.value(0), chain1);
}

TEST(SmrGroup, IdempotentResubmitAcrossInstances) {
  // A client that lost the ack re-submits the same (client, rid) command;
  // it wins a second instance, but replicas apply the effect once. The
  // recorded history stays linearizable: one invoke, one ok.
  const int n = 5;
  SmrGroupConfig cfg;
  cfg.n = n;
  cfg.leader = 0;
  SmrGroup group(cfg, register_machines(n));
  HistoryRecorder rec;

  const Command cmd = make_register_command(op_func::kWrite, 1, 0, 0, 42, 0);
  rec.invoke(0, op_func::kWrite, 0, 1, 42);
  for (int inst = 0; inst < 2; ++inst) {
    std::vector<Command> proposals(static_cast<std::size_t>(n), cmd);
    ScheduleSampler network =
        conforming_network(n, 0, 700 + static_cast<std::uint64_t>(inst));
    const auto r = group.run_instance(proposals, network);
    ASSERT_TRUE(r.decided) << "instance " << inst;
    EXPECT_EQ(r.command, cmd);
  }
  const auto& m = static_cast<const RegisterStateMachine&>(group.machine(0));
  Value result = kNoValue;
  ASSERT_TRUE(m.last_result(0, result));
  rec.ok(0, result);

  EXPECT_TRUE(group.consistent());
  EXPECT_EQ(m.applied(), 2);    // both log entries applied...
  EXPECT_EQ(m.effective(), 1);  // ...but the write executed once
  EXPECT_EQ(m.value(0), 42);
  const History h = build_history(rec.events());
  ASSERT_TRUE(h.well_formed()) << h.error;
  EXPECT_TRUE(check_history(h).linearizable);
}

TEST(SmrGroup, RequestOutstandingAcrossLeaderFailover) {
  // The op is invoked, then the initial leader crashes mid-instance; the
  // online election fails over and the SAME instance still decides the
  // op. Its completion and the machine effect must agree.
  const int n = 5;
  SmrGroupConfig cfg;
  cfg.n = n;
  cfg.use_election = true;
  SmrGroup group(cfg, register_machines(n));
  HistoryRecorder rec;

  const Command cmd = make_register_command(op_func::kWrite, 1, 2, 0, 66, 0);
  rec.invoke(2, op_func::kWrite, 0, 1, 66);

  std::vector<Round> crashes(static_cast<std::size_t>(n), 0);
  crashes[0] = 3;  // initial (lowest-id) leader dies mid-instance
  ScheduleConfig sched;
  sched.n = n;
  sched.model = TimingModel::kWlm;
  sched.leader = 1;  // post-failover stable leader
  sched.gsr = 8;
  sched.seed = 41;
  sched.crash_rounds = crashes;
  ScheduleSampler network(sched);

  std::vector<Command> proposals(static_cast<std::size_t>(n), cmd);
  const auto r = group.run_instance(proposals, network, &crashes);
  ASSERT_TRUE(r.decided);
  EXPECT_EQ(r.command, cmd);
  EXPECT_FALSE(r.applied[0]) << "crashed leader must not have applied";
  ASSERT_TRUE(r.applied[1]);

  const auto& m = static_cast<const RegisterStateMachine&>(group.machine(1));
  Value result = kNoValue;
  ASSERT_TRUE(m.last_result(2, result));
  rec.ok(2, result);
  EXPECT_EQ(result, 66);
  EXPECT_EQ(m.value(0), 66);
  EXPECT_EQ(m.effective(), 1);

  const History h = build_history(rec.events());
  ASSERT_TRUE(h.well_formed()) << h.error;
  EXPECT_TRUE(check_history(h).linearizable);
}

TEST(SmrGroup, PartitionedMinorityReadTimesOutAsInfo) {
  // A read submitted through a replica cut off in a minority partition
  // never decides — it must close as info (unknown), never fabricate an
  // ok, and the register state must be untouched by the attempt.
  const int n = 5;
  SmrGroupConfig cfg;
  cfg.n = n;
  cfg.leader = 0;
  SmrGroup group(cfg, register_machines(n));
  HistoryRecorder rec;

  // Committed baseline write through the majority side.
  const Command wcmd = make_register_command(op_func::kWrite, 1, 0, 0, 42, 0);
  rec.invoke(0, op_func::kWrite, 0, 1, 42);
  {
    std::vector<Command> proposals(static_cast<std::size_t>(n), kNoopCommand);
    proposals[0] = wcmd;
    ScheduleSampler network = conforming_network(n, 0, 11);
    const auto r = group.run_instance(proposals, network);
    ASSERT_TRUE(r.decided);
    ASSERT_EQ(r.command, wcmd);
    const auto& m =
        static_cast<const RegisterStateMachine&>(group.machine(0));
    Value result = kNoValue;
    ASSERT_TRUE(m.last_result(0, result));
    rec.ok(0, result);
  }

  // Read submitted via replica 1, which is partitioned into {1, 3} for
  // the whole instance; the majority {0, 2, 4} decides the leader's noop.
  const Command rcmd = make_register_command(op_func::kRead, 1, 1, 0, 0, 0);
  rec.invoke(1, op_func::kRead, 0, 1);
  {
    fault::FaultPlan plan;
    fault::FaultEvent part;
    part.kind = fault::FaultKind::kPartition;
    part.groups = {{1, 3}, {0, 2, 4}};
    part.from = 1;
    part.to = 1 << 20;
    plan.events.push_back(part);  // no gsr marker: a pure-safety plan
    ASSERT_EQ(fault::validate(plan, n, 0), "");

    ScheduleConfig sched;
    sched.n = n;
    sched.model = TimingModel::kWlm;
    sched.leader = 0;
    sched.gsr = 1;
    sched.seed = 12;
    ScheduleSampler inner(sched);
    fault::InjectorConfig icfg;
    icfg.n = n;
    icfg.leader = 0;
    icfg.seed = 13;
    fault::FaultInjector injector(plan, icfg);
    fault::FaultInjectedSampler network(inner, injector);

    std::vector<Command> proposals(static_cast<std::size_t>(n), kNoopCommand);
    proposals[1] = rcmd;
    const auto r = group.run_instance(proposals, network, nullptr, 60);
    EXPECT_FALSE(r.decided) << "partitioned instance must not decide";
    EXPECT_NE(r.command, rcmd) << "minority proposal must not win";
    rec.info(1);  // the client times out: unknown outcome, not a fail
  }

  // Fault-free retry through the majority-side replica completes ok and
  // observes the committed write.
  rec.invoke(1, op_func::kRead, 0, 2);
  const Command rcmd2 = make_register_command(op_func::kRead, 2, 1, 0, 0, 0);
  {
    std::vector<Command> proposals(static_cast<std::size_t>(n), kNoopCommand);
    proposals[0] = rcmd2;
    ScheduleSampler network = conforming_network(n, 0, 14);
    const auto r = group.run_instance(proposals, network);
    ASSERT_TRUE(r.decided);
    ASSERT_EQ(r.command, rcmd2);
    const auto& m =
        static_cast<const RegisterStateMachine&>(group.machine(0));
    Value result = kNoValue;
    ASSERT_TRUE(m.last_result(1, result));
    EXPECT_EQ(result, 42) << "retry must observe the committed write";
    rec.ok(1, result);
  }

  const auto& m = static_cast<const RegisterStateMachine&>(group.machine(0));
  EXPECT_EQ(m.effective(), 2);  // write + retry read; the partitioned
                                // read never decided, noops don't count
  EXPECT_EQ(m.value(0), 42);
  EXPECT_TRUE(group.consistent());
  const History h = build_history(rec.events());
  ASSERT_TRUE(h.well_formed()) << h.error;
  EXPECT_TRUE(check_history(h).linearizable);
}

// ------------------------------------------------------------- SmrNode --

TEST(SmrNode, ReplicatedKvOverTheHub) {
  constexpr int kN = 4;
  constexpr int kInstances = 4;
  auto hub = std::make_shared<InProcHub>(kN);

  struct Out {
    std::vector<SmrNodeInstance> log;
    std::uint64_t fingerprint = 0;
    long long applied = 0;
  };
  std::vector<Out> outs(kN);
  std::vector<std::thread> threads;
  for (ProcessId i = 0; i < kN; ++i) {
    threads.emplace_back([&, i] {
      InProcTransport transport(hub, i);
      SmrNodeConfig cfg;
      cfg.n = kN;
      cfg.self = i;
      cfg.timeout_ms = 20.0;
      cfg.leader = 1;
      cfg.max_rounds_per_instance = 200;
      auto machine = std::make_unique<KvStateMachine>();
      const auto* kv = machine.get();
      SmrNode node(cfg, transport, std::move(machine));
      outs[static_cast<std::size_t>(i)].log = node.run(
          kInstances, [i](int inst) {
            return make_kv_command(static_cast<std::uint32_t>(inst),
                                   static_cast<std::uint32_t>(10 * inst + i));
          });
      outs[static_cast<std::size_t>(i)].fingerprint = kv->fingerprint();
      outs[static_cast<std::size_t>(i)].applied = kv->applied();
    });
  }
  for (auto& t : threads) t.join();

  for (const auto& o : outs) {
    ASSERT_EQ(o.log.size(), static_cast<std::size_t>(kInstances));
    for (int inst = 0; inst < kInstances; ++inst) {
      ASSERT_TRUE(o.log[static_cast<std::size_t>(inst)].decided)
          << "instance " << inst;
      EXPECT_EQ(o.log[static_cast<std::size_t>(inst)].command,
                outs[0].log[static_cast<std::size_t>(inst)].command);
    }
    EXPECT_EQ(o.applied, kInstances);
    EXPECT_EQ(o.fingerprint, outs[0].fingerprint)
        << "replica state diverged";
  }
}

}  // namespace
}  // namespace timing

// Calibration tests: the simulated LAN and WAN testbeds must stay pinned
// to the paper's published anchor points (within tolerances). These are
// the guardrails that keep the Figure 1(c)-(i) benches honest - if a
// latency-model change drifts the curves away from the paper, this suite
// fails.
//
// Anchors (from the paper's text):
//  LAN (Section 5.2): p = 0.7 @ 0.1 ms; p ~ 0.976 @ 0.2 ms; ES measured
//    above its IID prediction (loss clusters); AFM/LM below theirs (slow
//    node); more rounds satisfy <>AFM than <>LM; a good-leader <>WLM
//    beats everything.
//  WAN (Section 5.3): p ~ 0.88 @ 160 ms, ~0.90 @ 170 ms, ~0.95 @ 200 ms,
//    ~0.96 @ 210 ms; at 160 ms P_ES ~ 0, P_AFM ~ 0.4, P_LM ~ 0.79,
//    P_WLM ~ 0.94; <>LM has high run-to-run variance at short timeouts;
//    <>AFM catches up only past ~230 ms; the <>WLM time-vs-timeout curve
//    is convex with its optimum near 160-170 ms (~730 ms) and <>LM's near
//    200-210 ms, within ~100 ms of each other.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/equations.hpp"
#include "harness/experiments.hpp"
#include "oracles/omega.hpp"
#include "models/timing_model.hpp"

namespace timing {
namespace {

class WanCalibration : public ::testing::Test {
 protected:
  static const std::vector<TimeoutResult>& results() {
    static const std::vector<TimeoutResult> r = [] {
      ExperimentConfig cfg;
      cfg.testbed = Testbed::kWan;
      cfg.timeouts_ms = {140, 160, 170, 200, 210, 230, 300, 350};
      cfg.runs = 33;
      cfg.rounds_per_run = 300;
      cfg.seed = 42;
      return run_experiment(cfg);
    }();
    return r;
  }
  static const TimeoutResult& at(double timeout) {
    for (const auto& r : results()) {
      if (r.timeout_ms == timeout) return r;
    }
    ADD_FAILURE() << "timeout " << timeout << " not in sweep";
    return results().front();
  }
  static double pm(const TimeoutResult& r, TimingModel m) {
    return r.models[static_cast<std::size_t>(model_index(m))].mean_pm;
  }
};

TEST_F(WanCalibration, TimeoutToPAnchors) {
  EXPECT_NEAR(at(160).mean_p, 0.88, 0.02);
  EXPECT_NEAR(at(170).mean_p, 0.90, 0.02);
  EXPECT_NEAR(at(200).mean_p, 0.95, 0.02);
  EXPECT_NEAR(at(210).mean_p, 0.96, 0.02);
  // "up to 99% ... assuring 100% is unrealistic": the ceiling.
  EXPECT_GE(at(350).mean_p, 0.985);
  EXPECT_LT(at(350).mean_p, 0.9999);
}

TEST_F(WanCalibration, PIsMonotoneInTimeout) {
  double prev = 0.0;
  for (const auto& r : results()) {
    EXPECT_GE(r.mean_p + 1e-9, prev) << "at timeout " << r.timeout_ms;
    prev = r.mean_p;
  }
}

TEST_F(WanCalibration, ModelIncidencesAt160) {
  const auto& r = at(160);
  EXPECT_LT(pm(r, TimingModel::kEs), 0.03) << "P_ES ~ 0";
  EXPECT_NEAR(pm(r, TimingModel::kAfm), 0.40, 0.08);
  EXPECT_NEAR(pm(r, TimingModel::kLm), 0.79, 0.06);
  EXPECT_NEAR(pm(r, TimingModel::kWlm), 0.94, 0.03);
}

TEST_F(WanCalibration, WlmEasiestEverywhere) {
  for (const auto& r : results()) {
    EXPECT_GE(pm(r, TimingModel::kWlm) + 1e-9, pm(r, TimingModel::kLm))
        << "timeout " << r.timeout_ms;
    EXPECT_GE(pm(r, TimingModel::kLm) + 0.02, pm(r, TimingModel::kEs))
        << "timeout " << r.timeout_ms;
  }
}

TEST_F(WanCalibration, EsRareBelow200ms) {
  for (double t : {140.0, 160.0, 170.0}) {
    EXPECT_LT(pm(at(t), TimingModel::kEs), 0.03) << t;
  }
}

TEST_F(WanCalibration, LmHighVarianceAtShortTimeouts) {
  // Figure 1(f): at 160 ms <>LM swings between runs (Poland), while
  // <>AFM is consistently low and <>WLM consistently high.
  const auto& r = at(160);
  const auto& lm = r.models[model_index(TimingModel::kLm)];
  const auto& afm = r.models[model_index(TimingModel::kAfm)];
  const auto& wlm = r.models[model_index(TimingModel::kWlm)];
  EXPECT_GT(lm.var_pm, 0.02) << "LM variance must be large at 160 ms";
  EXPECT_GT(lm.var_pm, 2.0 * afm.var_pm);
  EXPECT_GT(lm.var_pm, 4.0 * wlm.var_pm);
  // For long timeouts LM variance collapses...
  EXPECT_LT(at(300).models[model_index(TimingModel::kLm)].var_pm, 0.005);
  // ...while ES variance grows (Figure 1(e): growing CIs).
  EXPECT_GT(at(300).models[model_index(TimingModel::kEs)].var_pm,
            at(160).models[model_index(TimingModel::kEs)].var_pm);
}

TEST_F(WanCalibration, AfmCatchesUpPast230ms) {
  EXPECT_LT(pm(at(160), TimingModel::kAfm), 0.55);
  EXPECT_GT(pm(at(230), TimingModel::kAfm), 0.90);
  // Below 230 ms AFM needs more rounds than LM and WLM (Figure 1(g)).
  for (double t : {160.0, 170.0, 200.0}) {
    const auto& r = at(t);
    EXPECT_GT(r.models[model_index(TimingModel::kAfm)].mean_rounds,
              r.models[model_index(TimingModel::kLm)].mean_rounds)
        << t;
    EXPECT_GT(r.models[model_index(TimingModel::kAfm)].mean_rounds,
              r.models[model_index(TimingModel::kWlm)].mean_rounds)
        << t;
  }
}

TEST_F(WanCalibration, TimeoutTradeoffConvexWithPaperOptima) {
  // Figure 1(i): <>WLM's best time sits at a SHORTER timeout than <>LM's,
  // both curves are convex (ends above the middle), and the two optima
  // are within ~150 ms of each other, <>WLM's within [600, 900] ms
  // (paper: ~730 ms).
  const auto& rs = results();
  auto best = [&](TimingModel m) {
    double best_t = 0.0, best_v = 1e18;
    for (const auto& r : rs) {
      const double v = r.models[model_index(m)].mean_time_ms;
      if (v < best_v) {
        best_v = v;
        best_t = r.timeout_ms;
      }
    }
    return std::pair{best_t, best_v};
  };
  const auto [wlm_t, wlm_v] = best(TimingModel::kWlm);
  const auto [lm_t, lm_v] = best(TimingModel::kLm);
  EXPECT_LE(wlm_t, 180.0) << "<>WLM optimum near 160-170 ms";
  EXPECT_GE(wlm_t, 140.0);
  EXPECT_GE(lm_t, 180.0) << "<>LM optimum near 200-210 ms";
  EXPECT_LE(lm_t, 260.0);
  EXPECT_NEAR(wlm_v, 730.0, 120.0);
  EXPECT_LT(wlm_v - lm_v, 150.0)
      << "paper: using <>WLM costs only ~80 ms over <>LM at their optima";
  EXPECT_GT(wlm_v - lm_v, 0.0)
      << "<>LM at its optimum is slightly faster (but quadratic messages)";
  // Convexity of the <>WLM curve: both sweep ends exceed the optimum.
  EXPECT_GT(rs.front().models[model_index(TimingModel::kWlm)].mean_time_ms,
            wlm_v);
  EXPECT_GT(rs.back().models[model_index(TimingModel::kWlm)].mean_time_ms,
            wlm_v);
}

TEST_F(WanCalibration, WlmAround4p5RoundsAt180ms) {
  // Section 5.3: "if we set our timeout to 180ms ... the number of rounds
  // will be very small (4.5 rounds on average) ... about 800ms".
  ExperimentConfig cfg;
  cfg.testbed = Testbed::kWan;
  cfg.timeouts_ms = {180};
  cfg.runs = 33;
  cfg.rounds_per_run = 300;
  cfg.seed = 42;
  const auto rs = run_experiment(cfg);
  const auto& wlm = rs[0].models[model_index(TimingModel::kWlm)];
  EXPECT_NEAR(wlm.mean_rounds, 4.5, 0.8);
  EXPECT_NEAR(wlm.mean_time_ms, 800.0, 150.0);
}

// --------------------------------------------------------------- LAN --

class LanCalibration : public ::testing::Test {
 protected:
  static const std::vector<TimeoutResult>& results() {
    static const std::vector<TimeoutResult> r = [] {
      ExperimentConfig cfg;
      cfg.testbed = Testbed::kLan;
      cfg.timeouts_ms = {0.1, 0.2, 0.35, 0.5, 0.9, 1.6};
      cfg.runs = 25;
      cfg.rounds_per_run = 300;
      cfg.seed = 7;
      return run_experiment(cfg);
    }();
    return r;
  }
  static const TimeoutResult& at(double timeout) {
    for (const auto& r : results()) {
      if (r.timeout_ms == timeout) return r;
    }
    ADD_FAILURE() << "timeout " << timeout << " not in sweep";
    return results().front();
  }
};

TEST_F(LanCalibration, TimeoutToPAnchors) {
  // Section 5.2: "for a timeout of 0.1ms we measured p = 0.7, for a
  // timeout of 0.2ms it was already p = 0.976".
  EXPECT_NEAR(at(0.1).mean_p, 0.70, 0.04);
  EXPECT_NEAR(at(0.2).mean_p, 0.976, 0.012);
}

TEST_F(LanCalibration, EsBeatsItsIidPrediction) {
  // "Although still worse than the other models, ES is better in practice
  // than what was predicted" - because late messages cluster.
  const auto& r = at(0.35);
  const double predicted = analysis::p_es(8, r.mean_p);
  const double measured = r.models[model_index(TimingModel::kEs)].mean_pm;
  EXPECT_GT(measured, predicted * 1.5);
  // And still the worst model in practice.
  EXPECT_LT(measured, r.models[model_index(TimingModel::kAfm)].mean_pm);
  EXPECT_LT(measured, r.models[model_index(TimingModel::kWlm)].mean_pm);
}

TEST_F(LanCalibration, AfmAndLmUndershootIidPrediction) {
  // "AFM is worse in reality than was predicted, since it is sensitive to
  // a poor performance of any single node" (the occasionally-slow node).
  const auto& r = at(0.35);
  EXPECT_LT(r.models[model_index(TimingModel::kAfm)].mean_pm,
            analysis::p_afm(8, r.mean_p));
  EXPECT_LT(r.models[model_index(TimingModel::kLm)].mean_pm + 0.02,
            analysis::p_afm(8, r.mean_p));
}

TEST_F(LanCalibration, MoreRoundsSatisfyAfmThanLm) {
  // "...which explains why there are more rounds satisfying <>AFM than
  // <>LM" (<>LM additionally needs the leader column). At the extreme
  // 0.1 ms timeout all incidences collapse and the well-connected leader
  // column briefly favours <>LM, so the claim is checked from 0.2 ms up,
  // the operating range of the paper's LAN experiment.
  for (const auto& r : results()) {
    if (r.timeout_ms < 0.2) continue;
    EXPECT_GE(r.models[model_index(TimingModel::kAfm)].mean_pm + 0.01,
              r.models[model_index(TimingModel::kLm)].mean_pm)
        << "timeout " << r.timeout_ms;
  }
}

TEST_F(LanCalibration, GoodLeaderWlmDominates) {
  // "<>WLM performs much better than all other models" with the
  // well-connected leader, especially at short timeouts.
  for (double t : {0.1, 0.2, 0.35}) {
    const auto& r = at(t);
    EXPECT_GE(r.models[model_index(TimingModel::kWlm)].mean_pm + 1e-9,
              r.models[model_index(TimingModel::kLm)].mean_pm)
        << t;
    EXPECT_GT(r.models[model_index(TimingModel::kWlm)].mean_pm,
              r.models[model_index(TimingModel::kEs)].mean_pm)
        << t;
  }
  EXPECT_GT(at(0.1).models[model_index(TimingModel::kWlm)].mean_pm,
            2.0 * at(0.1).models[model_index(TimingModel::kAfm)].mean_pm);
}

TEST_F(LanCalibration, AverageLeaderNeedsBiggerTimeouts) {
  // Section 5.2: with "a less optimal leader, whose links have average
  // timeliness ... much bigger timeouts are needed", in particular bigger
  // than <>AFM needs. We compare the timeout at which each configuration
  // reaches P = 0.95.
  ExperimentConfig avg;
  avg.testbed = Testbed::kLan;
  avg.timeouts_ms = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0, 1.3, 1.6};
  avg.runs = 25;
  avg.rounds_per_run = 300;
  avg.seed = 7;
  avg.leader = pick_average_leader(expected_rtt_matrix(avg));
  ASSERT_NE(avg.leader, resolve_leader(ExperimentConfig{
                            Testbed::kLan, {0.1}, 1, 10, 1, 7}));
  const auto avg_rs = run_experiment(avg);

  auto first_reaching = [](const std::vector<TimeoutResult>& rs,
                           TimingModel m, double level) {
    for (const auto& r : rs) {
      if (r.models[model_index(m)].mean_pm >= level) return r.timeout_ms;
    }
    return 1e9;
  };
  // The good-leader sweep on the same fine grid for a fair comparison.
  ExperimentConfig good = avg;
  good.leader = kNoProcess;
  const auto good_rs = run_experiment(good);
  const double good_wlm = first_reaching(good_rs, TimingModel::kWlm, 0.97);
  const double avg_wlm = first_reaching(avg_rs, TimingModel::kWlm, 0.97);
  const double afm = first_reaching(good_rs, TimingModel::kAfm, 0.97);
  EXPECT_LT(good_wlm, afm + 1e-9)
      << "good-leader <>WLM reaches 0.97 no later than <>AFM";
  EXPECT_GT(avg_wlm, good_wlm) << "an average leader needs bigger timeouts";
}

}  // namespace
}  // namespace timing

// Tests for the adversary-search subsystem (src/adversary): the mutator
// grammar (every candidate it ever produces is valid and replayable
// verbatim), fitness purity and sample-seed semantics, search
// determinism across TIMING_THREADS and across resumed budgets, the
// shrinker/polish passes, and the archive's byte round-trip.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "adversary/archive.hpp"
#include "adversary/candidate.hpp"
#include "adversary/fitness.hpp"
#include "adversary/mutate.hpp"
#include "adversary/search.hpp"
#include "adversary/shrink.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "fault/chaos.hpp"
#include "fault/parser.hpp"
#include "models/link_model_matrix.hpp"

namespace timing::adversary {
namespace {

MutationConfig small_mut() {
  MutationConfig m;
  m.n = 5;
  m.leader = 0;
  m.algorithm = AlgorithmKind::kPaxos;
  return m;
}

/// Cheap evaluation for tests: one sample, short horizon.
EvalConfig small_eval() {
  EvalConfig e;
  e.algorithm = AlgorithmKind::kPaxos;
  e.n = 5;
  e.leader = 0;
  e.eval_seed = 42;
  e.samples = 1;
  e.min_rounds = 40;
  return e;
}

// ---------------------------------------------------------------------------
// Mutator: validity and verbatim replayability of every candidate
// ---------------------------------------------------------------------------

TEST(AdversaryMutate, EveryMutantValidatesAndRoundTrips) {
  const MutationConfig cfg = small_mut();
  Rng rng(7);
  Candidate c = seed_candidate(cfg, 1234);
  for (int step = 0; step < 200; ++step) {
    c = mutate(c, cfg, rng);
    EXPECT_EQ(fault::validate(c.plan, cfg.n, cfg.leader), "")
        << "step " << step << ":\n" << c.plan.spec();
    ASSERT_GE(c.plan.gsr, 3);
    ASSERT_LE(c.plan.gsr, cfg.max_gsr);
    // `source` is the canonical spec and parses back to the same plan.
    const fault::ParseResult pr = fault::parse_fault_plan(c.plan.source);
    ASSERT_TRUE(pr.ok()) << pr.error;
    EXPECT_TRUE(fault::structurally_equal(pr.plan, c.plan)) << c.plan.source;
    // The matrix spec round-trips too.
    LinkModelMatrix m;
    ASSERT_EQ(parse_link_models(c.link_models.spec(), cfg.n, m), "");
    EXPECT_EQ(m, c.link_models);
  }
}

TEST(AdversaryMutate, MutationIsPureInRngState) {
  const MutationConfig cfg = small_mut();
  const Candidate parent = seed_candidate(cfg, 99);
  Rng a(5), b(5);
  const Candidate ca = mutate(parent, cfg, a);
  const Candidate cb = mutate(parent, cfg, b);
  EXPECT_TRUE(structurally_equal(ca, cb));
  EXPECT_EQ(ca.plan.source, cb.plan.source);
}

TEST(AdversaryMutate, LinkEditsKeepReliablePlaneSupport) {
  MutationConfig cfg = small_mut();
  cfg.algorithm = AlgorithmKind::kWlm;
  Rng rng(11);
  Candidate c = seed_candidate(cfg, 5);
  for (int step = 0; step < 100; ++step) {
    c = mutate(c, cfg, rng);
    const std::vector<bool> alive(static_cast<std::size_t>(cfg.n), true);
    EXPECT_TRUE(fault::granular_supports(fault::native_model(cfg.algorithm),
                                         cfg.leader, c.link_models, alive))
        << c.link_models.spec();
  }
}

// ---------------------------------------------------------------------------
// Candidate identity: hash and structural equality
// ---------------------------------------------------------------------------

TEST(AdversaryCandidate, HashIgnoresSourceFormatting) {
  const MutationConfig cfg = small_mut();
  Candidate a = seed_candidate(cfg, 77);
  Candidate b = a;
  b.plan.source = "# reformatted\n" + b.plan.source;
  EXPECT_TRUE(structurally_equal(a, b));
  EXPECT_EQ(candidate_hash(a), candidate_hash(b));

  // A different matrix is a different adversary.
  if (b.link_models.n() == cfg.n) {
    b.link_models.set(1, 0, LinkModelClass::kAsync);
    EXPECT_FALSE(structurally_equal(a, b));
    EXPECT_NE(candidate_hash(a), candidate_hash(b));
  }
}

// ---------------------------------------------------------------------------
// Fitness: purity, sample-seed semantics, dead-process exclusion
// ---------------------------------------------------------------------------

TEST(AdversaryFitness, EvaluationIsPure) {
  const Candidate c = seed_candidate(small_mut(), 3);
  EvalConfig e = small_eval();
  e.samples = 3;
  const Fitness f1 = evaluate(c, e);
  const Fitness f2 = evaluate(c, e);
  EXPECT_EQ(f1, f2);
  EXPECT_NE(f1.signature, 0u);
}

TEST(AdversaryFitness, SampleZeroRunsEvalSeedVerbatim) {
  // samples=1 must reproduce the exact chaos trial the eval seed names:
  // the decision round reported by run_chaos_algorithm directly.
  const Candidate c = seed_candidate(small_mut(), 8);
  EvalConfig e = small_eval();
  const Fitness f = evaluate(c, e);

  fault::ChaosTrialConfig tc;
  tc.n = e.n;
  tc.leader = e.leader;
  tc.seed = e.eval_seed;
  tc.pre_gsr_p = e.pre_gsr_p;
  tc.plan = c.plan;
  tc.link_models = c.link_models;
  tc.max_rounds =
      std::max(e.min_rounds,
               c.plan.gsr + fault::bound_after_gsr(e.algorithm) + 2);
  const fault::ChaosRunResult r = fault::run_chaos_algorithm(e.algorithm, tc);
  EXPECT_EQ(f.decision_round, r.global_decision_round);
}

TEST(AdversaryFitness, MoreSamplesStaysBounded) {
  const Candidate c = seed_candidate(small_mut(), 21);
  EvalConfig e = small_eval();
  e.samples = 4;
  const Fitness f = evaluate(c, e);
  ASSERT_TRUE(f.supported);
  // Mean per-process delay is bounded by the horizon the evaluator set.
  const double horizon =
      std::max(e.min_rounds,
               c.plan.gsr + fault::bound_after_gsr(e.algorithm) + 2) -
      c.plan.gsr;
  EXPECT_GE(f.delay, 0.0);
  EXPECT_LE(f.delay, horizon);
}

TEST(AdversaryFitness, TracesMatchSampleCount) {
  const Candidate c = seed_candidate(small_mut(), 13);
  EvalConfig e = small_eval();
  e.samples = 3;
  std::vector<TrialTrace> traces;
  (void)evaluate(c, e, &traces);
  ASSERT_EQ(traces.size(), 3u);
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(traces[static_cast<std::size_t>(j)].id, j);
    EXPECT_FALSE(traces[static_cast<std::size_t>(j)].events.empty());
  }
}

// ---------------------------------------------------------------------------
// Search: thread-count determinism and resumable budgets
// ---------------------------------------------------------------------------

SearchConfig small_search(std::uint64_t seed) {
  SearchConfig cfg;
  cfg.mut = small_mut();
  cfg.eval = small_eval();
  cfg.seed = seed;
  cfg.walkers = 4;
  cfg.elites = 3;
  return cfg;
}

/// Everything observable about a finished search, serialized for
/// byte-comparison across thread counts and budget splits.
std::string search_fingerprint(const AdversarySearch& s) {
  std::string out;
  out += "evals=" + std::to_string(s.evaluations());
  out += " gens=" + std::to_string(s.generations());
  out += " sigs=" + std::to_string(s.signatures_seen());
  for (const Elite& e : s.elites()) {
    out += "\n" + std::to_string(e.fitness.score) + " g" +
           std::to_string(e.generation) + " w" + std::to_string(e.walker) +
           "\n" + e.candidate.plan.spec() + e.candidate.link_models.spec();
  }
  return out;
}

TEST(AdversarySearch, DeterministicAcrossThreadCounts) {
  std::vector<std::string> prints;
  for (int threads : {1, 2, 8}) {
    ScopedThreads st(threads);
    AdversarySearch s(small_search(17));
    s.run(60);
    prints.push_back(search_fingerprint(s));
  }
  EXPECT_EQ(prints[0], prints[1]);
  EXPECT_EQ(prints[0], prints[2]);
  EXPECT_FALSE(prints[0].empty());
}

TEST(AdversarySearch, ResumedBudgetMatchesSingleShot) {
  AdversarySearch once(small_search(23));
  once.run(60);
  AdversarySearch twice(small_search(23));
  twice.run(20);
  twice.run(40);
  EXPECT_EQ(search_fingerprint(once), search_fingerprint(twice));
}

TEST(AdversarySearch, ElitesAreDedupedAndSorted) {
  AdversarySearch s(small_search(31));
  s.run(80);
  const std::vector<Elite>& es = s.elites();
  ASSERT_FALSE(es.empty());
  std::set<std::uint64_t> hashes;
  for (std::size_t i = 0; i < es.size(); ++i) {
    EXPECT_TRUE(hashes.insert(candidate_hash(es[i].candidate)).second);
    if (i > 0) {
      EXPECT_GE(es[i - 1].fitness.score, es[i].fitness.score);
    }
  }
}

// ---------------------------------------------------------------------------
// Shrink and polish
// ---------------------------------------------------------------------------

TEST(AdversaryShrink, NeverLosesScoreAndOnlySimplifies) {
  AdversarySearch s(small_search(41));
  s.run(40);
  ASSERT_NE(s.best(), nullptr);
  const Elite best = *s.best();
  const ShrinkResult r = shrink(best.candidate, small_mut(), small_eval());
  EXPECT_GE(r.fitness.score, best.fitness.score);
  EXPECT_LE(r.candidate.plan.events.size(), best.candidate.plan.events.size());
  EXPECT_LE(r.candidate.plan.gsr, best.candidate.plan.gsr);
  EXPECT_EQ(fault::validate(r.candidate.plan, 5, 0), "");
  // Deterministic: same inputs, same minimized spec.
  const ShrinkResult r2 = shrink(best.candidate, small_mut(), small_eval());
  EXPECT_EQ(r.candidate.plan.spec(), r2.candidate.plan.spec());
  EXPECT_EQ(r.evaluations, r2.evaluations);
}

TEST(AdversaryPolish, RespectsBudgetAndNeverLosesScore) {
  const Candidate c = seed_candidate(small_mut(), 51);
  const Fitness base = evaluate(c, small_eval());
  const PolishResult p = polish(c, small_mut(), small_eval(), 9, 20);
  EXPECT_LE(p.evaluations, 20);
  EXPECT_GE(p.fitness.score, base.score);
  const PolishResult p2 = polish(c, small_mut(), small_eval(), 9, 20);
  EXPECT_EQ(p.candidate.plan.spec(), p2.candidate.plan.spec());
  EXPECT_EQ(p.improvements, p2.improvements);
}

// ---------------------------------------------------------------------------
// Archive: byte round-trip of the regression fixtures
// ---------------------------------------------------------------------------

TEST(AdversaryArchive, FormatParsesBackExactly) {
  const MutationConfig mcfg = small_mut();
  EvalConfig e = small_eval();
  e.samples = 5;
  e.eval_seed = 98765;
  Candidate c = seed_candidate(mcfg, 61);
  const Fitness f = evaluate(c, e);
  const ArchiveEntry entry = make_archive_entry(c, f, e);

  const std::string text = format_archive_entry(entry);
  ASSERT_TRUE(is_archive_text(text));
  ArchiveEntry back;
  ASSERT_EQ(parse_archive_entry(text, back), "") << text;

  EXPECT_EQ(back.eval.algorithm, e.algorithm);
  EXPECT_EQ(back.eval.n, e.n);
  EXPECT_EQ(back.eval.leader, e.leader);
  EXPECT_EQ(back.eval.pre_gsr_p, e.pre_gsr_p);
  EXPECT_EQ(back.eval.eval_seed, e.eval_seed);
  EXPECT_EQ(back.eval.samples, e.samples);
  EXPECT_EQ(back.eval.min_rounds, e.min_rounds);
  EXPECT_EQ(back.verdict, verdict_string(f));
  EXPECT_EQ(back.delay, f.delay);  // num() doubles round-trip exactly
  EXPECT_EQ(back.decision_round, f.decision_round);
  EXPECT_EQ(back.score, f.score);
  EXPECT_TRUE(structurally_equal(back.candidate, c));

  // Formatting the parsed entry reproduces the bytes.
  back.name = entry.name;
  EXPECT_EQ(format_archive_entry(back), text);
}

TEST(AdversaryArchive, ReplayReproducesRecordedOutcome) {
  // The regression-gate contract: re-running the recorded evaluation
  // yields the recorded verdict, delay and score.
  EvalConfig e = small_eval();
  e.samples = 2;
  Candidate c = seed_candidate(small_mut(), 71);
  const Fitness f = evaluate(c, e);
  ArchiveEntry entry = make_archive_entry(c, f, e);
  ArchiveEntry back;
  ASSERT_EQ(parse_archive_entry(format_archive_entry(entry), back), "");
  const Fitness replayed = evaluate(back.candidate, back.eval);
  EXPECT_EQ(verdict_string(replayed), back.verdict);
  EXPECT_EQ(replayed.delay, back.delay);
  EXPECT_EQ(replayed.score, back.score);
  EXPECT_EQ(replayed.decision_round, back.decision_round);
}

TEST(AdversaryArchive, StemIsContentAddressed) {
  EvalConfig e = small_eval();
  Candidate c = seed_candidate(small_mut(), 81);
  const Fitness f = evaluate(c, e);
  const ArchiveEntry entry = make_archive_entry(c, f, e);
  const std::string stem = entry_stem(entry);
  EXPECT_NE(stem.find("paxos-"), std::string::npos);
  // Same candidate, same stem; mutated candidate, different stem.
  EXPECT_EQ(stem, entry_stem(make_archive_entry(c, f, e)));
}

}  // namespace
}  // namespace timing::adversary

// Tests for the scenario layer: spec validation, the shared override
// grammar, the registry, the results JSONL schema (round-trip + strict
// rejection), checked parsing, and the harness kernel's rejection of
// incoherent ExperimentConfigs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/parse.hpp"
#include "harness/experiments.hpp"
#include "oracles/omega.hpp"
#include "scenario/overrides.hpp"
#include "scenario/registry.hpp"
#include "scenario/results.hpp"
#include "scenario/spec.hpp"

namespace timing::scenario {
namespace {

// ---------------------------------------------------------------------------
// Checked parsing
// ---------------------------------------------------------------------------

TEST(ParseTest, IntAcceptsExactStringsOnly) {
  int v = -1;
  EXPECT_TRUE(parse_int("42", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_int("-7", v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(parse_int("", v));
  EXPECT_FALSE(parse_int("12x", v));   // atoi would return 12
  EXPECT_FALSE(parse_int("x12", v));   // atoi would return 0
  EXPECT_FALSE(parse_int("1.5", v));
  EXPECT_FALSE(parse_int("99999999999999999999", v));  // overflow
}

TEST(ParseTest, U64RejectsNegatives) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, 18446744073709551615ull);
  EXPECT_FALSE(parse_u64("-1", v));
  EXPECT_FALSE(parse_u64("abc", v));
}

TEST(ParseTest, DoubleRejectsTrailingGarbageAndNonFinite) {
  double v = 0;
  EXPECT_TRUE(parse_double("1.5", v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_FALSE(parse_double("1.5.2", v));
  EXPECT_FALSE(parse_double("inf", v));
  EXPECT_FALSE(parse_double("nan", v));
  EXPECT_FALSE(parse_double("", v));
}

TEST(ParseTest, Lists) {
  std::vector<int> is;
  EXPECT_TRUE(parse_int_list("4,8,16", is));
  EXPECT_EQ(is, (std::vector<int>{4, 8, 16}));
  EXPECT_FALSE(parse_int_list("4,,8", is));
  EXPECT_FALSE(parse_int_list("", is));
  EXPECT_FALSE(parse_int_list("4,8,", is));
  std::vector<double> ds;
  EXPECT_TRUE(parse_double_list("140,200.5", ds));
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_DOUBLE_EQ(ds[1], 200.5);
}

// ---------------------------------------------------------------------------
// Spec validation
// ---------------------------------------------------------------------------

ScenarioSpec wan_spec() {
  ScenarioSpec s;
  s.sampler = SamplerKind::kWan;
  s.timeouts_ms = {140, 200};
  return s;
}

TEST(SpecTest, DefaultWanSpecIsValid) {
  EXPECT_EQ(validate(wan_spec()), "");
}

TEST(SpecTest, RejectsZeroRuns) {
  ScenarioSpec s = wan_spec();
  s.runs = 0;
  EXPECT_EQ(validate(s), "runs must be >= 1");
}

TEST(SpecTest, RejectsShortRuns) {
  ScenarioSpec s = wan_spec();
  s.rounds_per_run = 1;
  EXPECT_EQ(validate(s), "rounds_per_run must be >= 2");
}

TEST(SpecTest, RejectsEmptyTimeoutSweep) {
  ScenarioSpec s = wan_spec();
  s.timeouts_ms.clear();
  EXPECT_EQ(validate(s), "empty timeout sweep");
}

TEST(SpecTest, RejectsNonPositiveTimeouts) {
  ScenarioSpec s = wan_spec();
  s.timeouts_ms = {140, 0};
  EXPECT_EQ(validate(s), "timeouts_ms entries must be > 0");
}

TEST(SpecTest, RejectsOutOfRangeLeader) {
  ScenarioSpec s = wan_spec();
  s.leader_policy = LeaderPolicy::kFixed;
  s.leader = s.n;  // one past the end
  EXPECT_EQ(validate(s), "leader out of range [0, n)");
  s.leader = -1;
  EXPECT_EQ(validate(s), "leader out of range [0, n)");
  s.leader = s.n - 1;
  EXPECT_EQ(validate(s), "");
}

TEST(SpecTest, RejectsProfileMismatchedN) {
  ScenarioSpec s = wan_spec();
  s.n = 5;  // the WAN profile has 8 sites
  EXPECT_NE(validate(s), "");
}

TEST(SpecTest, RejectsBadIidP) {
  ScenarioSpec s;
  s.sampler = SamplerKind::kIid;
  s.iid_p = 0.0;
  EXPECT_EQ(validate(s), "iid_p must be in (0, 1]");
  s.iid_p = 1.5;
  EXPECT_EQ(validate(s), "iid_p must be in (0, 1]");
}

TEST(SpecTest, RejectsBadDecisionRounds) {
  ScenarioSpec s = wan_spec();
  s.decision_rounds[2] = 0;
  EXPECT_EQ(validate(s), "decision_rounds entries must be >= 1");
}

TEST(SpecTest, RejectsBadGroupSizes) {
  ScenarioSpec s;
  s.sampler = SamplerKind::kAnalysis;
  s.group_sizes = {4, 1};
  EXPECT_EQ(validate(s), "group_sizes entries must be >= 2");
}

TEST(SpecTest, LoweringMapsLeaderPolicy) {
  ScenarioSpec s = wan_spec();
  ExperimentConfig cfg = to_experiment_config(s);
  EXPECT_EQ(cfg.leader, kNoProcess);
  EXPECT_EQ(cfg.testbed, Testbed::kWan);
  EXPECT_EQ(cfg.timeouts_ms, s.timeouts_ms);

  s.leader_policy = LeaderPolicy::kFixed;
  s.leader = 3;
  EXPECT_EQ(to_experiment_config(s).leader, 3);

  s.leader_policy = LeaderPolicy::kAverage;
  const ProcessId avg = to_experiment_config(s).leader;
  EXPECT_GE(avg, 0);
  EXPECT_LT(avg, s.n);
  // The WAN default (the UK site) is the well-connected choice, not the
  // average one.
  EXPECT_EQ(avg, pick_average_leader(expected_rtt_matrix(to_experiment_config(
                     wan_spec()))));
}

// ---------------------------------------------------------------------------
// Override grammar
// ---------------------------------------------------------------------------

CliArgs apply(ScenarioSpec& spec, std::vector<std::string> argv_s) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("bench"));
  for (auto& s : argv_s) argv.push_back(s.data());
  return apply_cli_args(spec, static_cast<int>(argv.size()), argv.data(), 1);
}

TEST(OverrideTest, AppliesScalarsAndLists) {
  ScenarioSpec s = wan_spec();
  const CliArgs a = apply(s, {"runs=2", "rounds_per_run=20", "seed=99",
                              "timeouts_ms=140,200", "iid_p=0.9",
                              "group_sizes=4,8", "decision_rounds=2,2,3,4"});
  EXPECT_TRUE(a.error.empty()) << a.error;
  EXPECT_FALSE(a.csv);
  EXPECT_EQ(s.runs, 2);
  EXPECT_EQ(s.rounds_per_run, 20);
  EXPECT_EQ(s.seed, 99u);
  EXPECT_EQ(s.timeouts_ms, (std::vector<double>{140, 200}));
  EXPECT_DOUBLE_EQ(s.iid_p, 0.9);
  EXPECT_EQ(s.group_sizes, (std::vector<int>{4, 8}));
  EXPECT_EQ(s.decision_rounds, (std::array<int, kNumModels>{2, 2, 3, 4}));
}

TEST(OverrideTest, LeaderGrammar) {
  ScenarioSpec s = wan_spec();
  EXPECT_TRUE(apply(s, {"leader=3"}).error.empty());
  EXPECT_EQ(s.leader_policy, LeaderPolicy::kFixed);
  EXPECT_EQ(s.leader, 3);
  EXPECT_TRUE(apply(s, {"leader=average"}).error.empty());
  EXPECT_EQ(s.leader_policy, LeaderPolicy::kAverage);
  EXPECT_TRUE(apply(s, {"leader=default"}).error.empty());
  EXPECT_EQ(s.leader_policy, LeaderPolicy::kDefault);
  EXPECT_NE(apply(s, {"leader=boss"}).error, "");
}

TEST(OverrideTest, FlagsAndErrors) {
  ScenarioSpec s = wan_spec();
  EXPECT_TRUE(apply(s, {"--csv"}).csv);
  EXPECT_TRUE(apply(s, {"--help"}).help);
  EXPECT_TRUE(apply(s, {"-h"}).help);

  // Unknown arguments are rejected, not ignored.
  EXPECT_EQ(apply(s, {"--frobnicate"}).error,
            "unknown argument '--frobnicate'");
  EXPECT_EQ(apply(s, {"extra"}).error, "unknown argument 'extra'");
  // Unknown keys and malformed values are usage errors.
  EXPECT_NE(apply(s, {"bogus_key=3"}).error, "");
  EXPECT_NE(apply(s, {"runs=abc"}).error, "");
  EXPECT_NE(apply(s, {"runs=12x"}).error, "");  // atoi would accept this
  EXPECT_NE(apply(s, {"decision_rounds=3,3"}).error, "");  // arity 4
  EXPECT_NE(apply(s, {"timeouts_ms="}).error, "");
}

TEST(OverrideTest, FaultPlanValidatedWithTheSpec) {
  ScenarioSpec s = wan_spec();
  EXPECT_TRUE(
      apply(s, {"fault=crash 1 @2; recover 1 @5; gsr @8"}).error.empty());
  EXPECT_EQ(s.fault_spec, "crash 1 @2; recover 1 @5; gsr @8");
  EXPECT_EQ(validate(s), "");

  // Malformed plans and plans that do not fit the spec's n are scenario
  // validation errors, reported with the parser's statement location.
  EXPECT_TRUE(apply(s, {"fault=crash 1 @2; crunch 3"}).error.empty());
  EXPECT_NE(validate(s).find("statement 2"), std::string::npos)
      << validate(s);
  EXPECT_TRUE(apply(s, {"fault=crash 99 @2; gsr @8"}).error.empty());
  EXPECT_NE(validate(s).find("out of range"), std::string::npos)
      << validate(s);
}

TEST(OverrideTest, PipelineBatchAndProfile) {
  ScenarioSpec s = wan_spec();
  EXPECT_TRUE(apply(s, {"pipeline=8", "batch=4"}).error.empty());
  EXPECT_EQ(s.pipeline, 8);
  EXPECT_EQ(s.batch, 4);
  // Zero is rejected at validation, not parse, time.
  EXPECT_TRUE(apply(s, {"pipeline=0"}).error.empty());
  EXPECT_NE(validate(s), "");
  s = wan_spec();
  EXPECT_TRUE(apply(s, {"batch=0"}).error.empty());
  EXPECT_NE(validate(s), "");

  // profile= swaps the whole testbed: sampler kind, group size, timeout.
  s = wan_spec();
  EXPECT_TRUE(apply(s, {"profile=lan"}).error.empty());
  EXPECT_EQ(s.sampler, SamplerKind::kLan);
  EXPECT_EQ(s.n, s.lan.n);
  EXPECT_EQ(s.timeouts_ms, (std::vector<double>{0.2}));
  EXPECT_TRUE(apply(s, {"profile=wan"}).error.empty());
  EXPECT_EQ(s.sampler, SamplerKind::kWan);
  EXPECT_EQ(s.n, s.wan.n);
  EXPECT_EQ(s.timeouts_ms, (std::vector<double>{200}));
  EXPECT_NE(apply(s, {"profile=metro"}).error, "");
}

TEST(OverrideTest, RejectsDuplicateKeys) {
  ScenarioSpec s = wan_spec();
  // The last write would silently win without the check; the error names
  // both argument positions so the offender is easy to find in a long
  // command line.
  const CliArgs a = apply(s, {"runs=2", "seed=7", "runs=3"});
  EXPECT_EQ(a.error,
            "duplicate override 'runs=3' (argument 3): "
            "'runs=' was already set by argument 1");
  // Distinct keys and repeated flags stay fine.
  EXPECT_TRUE(apply(s, {"runs=2", "rounds_per_run=20"}).error.empty());
  EXPECT_TRUE(apply(s, {"--csv", "--csv", "runs=2"}).error.empty());
}

TEST(OverrideTest, LinkModelKeys) {
  ScenarioSpec s = wan_spec();
  EXPECT_TRUE(apply(s, {"link_models=sync:all;async:0->2"}).error.empty());
  EXPECT_EQ(s.link_models, "sync:all;async:0->2");
  EXPECT_EQ(validate(s), "");

  EXPECT_TRUE(apply(s, {"async_fracs=0,0.25,0.5", "psync_frac=0.3"})
                  .error.empty());
  EXPECT_EQ(s.async_fracs, (std::vector<double>{0, 0.25, 0.5}));
  EXPECT_DOUBLE_EQ(s.psync_frac, 0.3);
  EXPECT_EQ(validate(s), "");
}

TEST(SpecTest, RejectsBadLinkModels) {
  ScenarioSpec s = wan_spec();
  // The matrix spec is parsed at validation time, against the spec's n.
  s.link_models = "sync:all;turbo:0->1";
  EXPECT_NE(validate(s).find("bad link_models"), std::string::npos)
      << validate(s);
  s.link_models = "async:0->99";  // out of range for n = 8
  EXPECT_NE(validate(s).find("bad link_models"), std::string::npos)
      << validate(s);
  s.link_models = "sync:all";
  EXPECT_EQ(validate(s), "");

  s = wan_spec();
  s.async_fracs = {0.5, 1.5};
  EXPECT_EQ(validate(s), "async_fracs entries must be in [0, 1]");
  s = wan_spec();
  s.psync_frac = -0.1;
  EXPECT_EQ(validate(s), "psync_frac must be in [0, 1]");
}

TEST(OverrideTest, AlgorithmKeys) {
  ScenarioSpec s = wan_spec();
  EXPECT_TRUE(apply(s, {"algorithm=paxos"}).error.empty());
  EXPECT_EQ(s.algorithm, AlgorithmKind::kPaxos);
  for (AlgorithmKind k : all_algorithm_kinds()) {
    AlgorithmKind parsed{};
    EXPECT_TRUE(parse_algorithm_kind(algorithm_key(k), parsed));
    EXPECT_EQ(parsed, k);
  }
  EXPECT_NE(apply(s, {"algorithm=raft"}).error, "");
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, HasAllScenariosWithUniqueNames) {
  EXPECT_GE(registry().size(), 15u);
  std::set<std::string> names, binaries;
  for (const Scenario& s : registry()) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    EXPECT_TRUE(binaries.insert(s.binary).second) << "duplicate " << s.binary;
  }
  // Mirrors tm_smoke_scenarios in tests/CMakeLists.txt: a new entry must
  // also get a `ctest -L scenario` smoke run.
  const std::set<std::string> expected{
      "fig1a", "fig1b", "fig1c", "fig1d", "fig1e", "fig1f", "fig1g",
      "fig1h", "fig1i", "appc", "ablation/paxos_recovery",
      "ablation/algorithms_live", "ablation/window_formula",
      "ablation/simulation_cost", "ablation/group_size",
      "ablation/smr_cost", "granular/fig1", "granular/ablation",
      "chaos/consensus", "chaos/single",
      "adversary/search", "chaos/regression",
      "smr/linearizable", "smr/throughput"};
  EXPECT_EQ(names, expected);
}

TEST(RegistryTest, EveryDefaultSpecValidates) {
  for (const Scenario& s : registry()) {
    EXPECT_EQ(validate(s.defaults()), "") << s.name;
  }
}

TEST(RegistryTest, FindScenario) {
  ASSERT_NE(find_scenario("fig1g"), nullptr);
  EXPECT_STREQ(find_scenario("fig1g")->binary, "fig1g_wan_rounds");
  ASSERT_NE(find_scenario("ablation/group_size"), nullptr);
  EXPECT_EQ(find_scenario("fig1z"), nullptr);
  EXPECT_EQ(find_scenario(""), nullptr);
}

TEST(RegistryTest, FigureDefaultsMatchThePaper) {
  const Scenario* g = find_scenario("fig1g");
  ASSERT_NE(g, nullptr);
  const ScenarioSpec s = g->defaults();
  EXPECT_EQ(s.runs, 33);
  EXPECT_EQ(s.rounds_per_run, 300);
  EXPECT_EQ(s.start_points, 15);
  EXPECT_EQ(s.seed, 42u);
  EXPECT_TRUE(s.honor_env_runs);
  EXPECT_EQ(s.timeouts_ms.size(), 12u);
}

// ---------------------------------------------------------------------------
// Results JSONL
// ---------------------------------------------------------------------------

TEST(ResultsTest, RoundTrip) {
  std::stringstream ss;
  ResultWriter w(ss, "fig1g");
  w.add_table("caption with \"quotes\" and\nnewline", {"a", "b"},
              {{"1", "2"}, {"3", ">=4"}});
  w.add_table("second", {"x"}, {});
  w.finish();
  EXPECT_EQ(w.tables(), 2);
  EXPECT_EQ(w.rows(), 2);

  const ParsedResults r = parse_results(ss);
  EXPECT_EQ(r.version, kResultsSchemaVersion);
  EXPECT_EQ(r.scenario, "fig1g");
  ASSERT_EQ(r.tables.size(), 2u);
  EXPECT_EQ(r.tables[0].caption, "caption with \"quotes\" and\nnewline");
  EXPECT_EQ(r.tables[0].cols, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(r.tables[0].rows.size(), 2u);
  EXPECT_EQ(r.tables[0].rows[1], (std::vector<std::string>{"3", ">=4"}));
  EXPECT_TRUE(r.tables[1].rows.empty());
  EXPECT_EQ(r.total_rows(), 2);
}

std::string valid_results() {
  return
      "{\"schema\":\"timing-lab-results\",\"v\":1,\"scenario\":\"x\"}\n"
      "{\"e\":\"table\",\"id\":0,\"caption\":\"c\",\"cols\":[\"a\",\"b\"]}\n"
      "{\"e\":\"row\",\"id\":0,\"v\":[\"1\",\"2\"]}\n"
      "{\"e\":\"end\",\"tables\":1,\"rows\":1}\n";
}

void expect_rejects(const std::string& text, const char* why) {
  std::stringstream ss(text);
  EXPECT_THROW(parse_results(ss), std::runtime_error) << why;
}

TEST(ResultsTest, AcceptsTheReferenceFile) {
  std::stringstream ss(valid_results());
  const ParsedResults r = parse_results(ss);
  EXPECT_EQ(r.scenario, "x");
  EXPECT_EQ(r.total_rows(), 1);
}

TEST(ResultsTest, StrictRejections) {
  expect_rejects("", "empty file");
  expect_rejects("{\"e\":\"end\",\"tables\":0,\"rows\":0}\n",
                 "record before header");
  // Truncation: no end marker.
  expect_rejects(
      "{\"schema\":\"timing-lab-results\",\"v\":1,\"scenario\":\"x\"}\n",
      "missing end");
  // Duplicate header.
  expect_rejects(
      "{\"schema\":\"timing-lab-results\",\"v\":1,\"scenario\":\"x\"}\n"
      "{\"schema\":\"timing-lab-results\",\"v\":1,\"scenario\":\"x\"}\n",
      "duplicate header");
  // Unsupported version.
  expect_rejects(
      "{\"schema\":\"timing-lab-results\",\"v\":2,\"scenario\":\"x\"}\n",
      "future version");
  // Unknown record kind.
  expect_rejects(
      "{\"schema\":\"timing-lab-results\",\"v\":1,\"scenario\":\"x\"}\n"
      "{\"e\":\"blob\"}\n",
      "unknown record");
  // Row for a table that was never declared.
  expect_rejects(
      "{\"schema\":\"timing-lab-results\",\"v\":1,\"scenario\":\"x\"}\n"
      "{\"e\":\"row\",\"id\":0,\"v\":[\"1\"]}\n",
      "row before table");
  // Row arity != column count.
  expect_rejects(
      "{\"schema\":\"timing-lab-results\",\"v\":1,\"scenario\":\"x\"}\n"
      "{\"e\":\"table\",\"id\":0,\"caption\":\"c\",\"cols\":[\"a\",\"b\"]}\n"
      "{\"e\":\"row\",\"id\":0,\"v\":[\"1\"]}\n"
      "{\"e\":\"end\",\"tables\":1,\"rows\":1}\n",
      "arity mismatch");
  // End marker counts must match.
  expect_rejects(
      "{\"schema\":\"timing-lab-results\",\"v\":1,\"scenario\":\"x\"}\n"
      "{\"e\":\"end\",\"tables\":3,\"rows\":0}\n",
      "end mismatch");
  // Nothing may follow the end marker.
  expect_rejects(valid_results() + "{\"e\":\"end\",\"tables\":1,\"rows\":1}\n",
                 "content after end");
  // Non-sequential table ids.
  expect_rejects(
      "{\"schema\":\"timing-lab-results\",\"v\":1,\"scenario\":\"x\"}\n"
      "{\"e\":\"table\",\"id\":1,\"caption\":\"c\",\"cols\":[\"a\"]}\n"
      "{\"e\":\"end\",\"tables\":1,\"rows\":0}\n",
      "non-sequential ids");
}

TEST(ResultsTest, SkipsCommentsAndBlankLines) {
  std::stringstream ss("# a comment\n\n" + valid_results());
  EXPECT_EQ(parse_results(ss).total_rows(), 1);
}

// ---------------------------------------------------------------------------
// Harness kernel rejection (TM_CHECK aborts)
// ---------------------------------------------------------------------------

using ExperimentDeathTest = ::testing::Test;

TEST(ExperimentDeathTest, RejectsZeroRuns) {
  ExperimentConfig cfg;
  cfg.timeouts_ms = {140};
  cfg.runs = 0;
  EXPECT_DEATH(run_experiment(cfg), "bad run shape");
}

TEST(ExperimentDeathTest, RejectsEmptyTimeoutSweep) {
  ExperimentConfig cfg;
  EXPECT_DEATH(run_experiment(cfg), "no timeouts configured");
}

TEST(ExperimentDeathTest, RejectsOutOfRangeLeader) {
  ExperimentConfig cfg;
  cfg.timeouts_ms = {140};
  cfg.runs = 1;
  cfg.rounds_per_run = 2;
  cfg.leader = 8;  // WAN profile has sites 0..7
  EXPECT_DEATH(run_experiment(cfg), "leader out of range");
}

TEST(ScenarioDeathTest, RunExperimentValidatesFirst) {
  ScenarioSpec s = wan_spec();
  s.runs = 0;
  EXPECT_DEATH(scenario::run_experiment(s), "runs must be >= 1");
}

// ---------------------------------------------------------------------------
// TIMING_RUNS handling
// ---------------------------------------------------------------------------

TEST(EnvRunsTest, ParsesValidOverridesAndKeepsDefaultOtherwise) {
  // Warn-once is a static; the return values are what matters here.
  ::setenv("TIMING_RUNS", "7", 1);
  EXPECT_EQ(runs_or_default(33), 7);
  ::setenv("TIMING_RUNS", "abc", 1);
  EXPECT_EQ(runs_or_default(33), 33);
  ::setenv("TIMING_RUNS", "12x", 1);  // strtol would have said 12
  EXPECT_EQ(runs_or_default(33), 33);
  ::setenv("TIMING_RUNS", "0", 1);
  EXPECT_EQ(runs_or_default(33), 33);
  ::setenv("TIMING_RUNS", "200001", 1);
  EXPECT_EQ(runs_or_default(33), 100000);
  ::unsetenv("TIMING_RUNS");
  EXPECT_EQ(runs_or_default(33), 33);
}

}  // namespace
}  // namespace timing::scenario

// Tests for src/history/: the register model, history construction from
// op events, the Wing–Gong linearizability checker with its golden
// fixture corpus, and the end-to-end properties the chaos gate relies
// on — fault-free SMR histories check clean, mutated histories are
// rejected, and verdicts are byte-identical across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <initializer_list>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "history/history.hpp"
#include "history/linearizability.hpp"
#include "history/model.hpp"
#include "history/recorder.hpp"
#include "models/schedule.hpp"
#include "obs/jsonl.hpp"
#include "obs/trace_analysis.hpp"
#include "smr/client.hpp"

namespace timing {
namespace {

// ------------------------------------------------------- register model --

TEST(RegisterModelTest, ReadWriteCasSemantics) {
  StepResult r = register_step(kRegInitial, op_func::kRead, kNoValue, kNoValue);
  EXPECT_EQ(r.state, kRegInitial);
  EXPECT_EQ(r.result, kRegInitial);

  r = register_step(kRegInitial, op_func::kWrite, 42, kNoValue);
  EXPECT_EQ(r.state, 42);
  EXPECT_EQ(r.result, 42);

  r = register_step(42, op_func::kCas, 42, 99);
  EXPECT_EQ(r.state, 99);
  EXPECT_EQ(r.result, 1);  // fired

  r = register_step(99, op_func::kCas, 42, 7);
  EXPECT_EQ(r.state, 99);  // unchanged
  EXPECT_EQ(r.result, 0);  // did not fire
}

TEST(RegisterModelTest, AppendChainsAreOddNonzeroAndOrderSensitive) {
  const Value c1 = register_step(kRegInitial, op_func::kAppend, 5, kNoValue).state;
  const Value c12 = register_step(c1, op_func::kAppend, 6, kNoValue).state;
  const Value c2 = register_step(kRegInitial, op_func::kAppend, 6, kNoValue).state;
  const Value c21 = register_step(c2, op_func::kAppend, 5, kNoValue).state;
  EXPECT_NE(c1, kRegInitial);
  EXPECT_EQ(c1 % 2, 1);  // odd, hence nonzero and disjoint from writes
  EXPECT_EQ(c12 % 2, 1);
  EXPECT_GT(c12, 0);
  EXPECT_NE(c12, c21);  // append order is visible in the state
}

// ------------------------------------------- recorder + build_history --

TEST(HistoryBuildTest, RecorderRoundTripsThroughBuildHistory) {
  HistoryRecorder rec;
  rec.invoke(0, op_func::kWrite, 0, 1, 10);
  rec.invoke(1, op_func::kRead, 0, 1);
  rec.ok(0, 10);
  rec.fail(1);
  rec.invoke(2, op_func::kCas, 1, 7, 3, 4);  // left open -> info

  const History h = build_history(rec.events());
  ASSERT_TRUE(h.well_formed()) << h.error;
  ASSERT_EQ(h.ops.size(), 3u);
  EXPECT_TRUE(h.ops[0].ok());
  EXPECT_EQ(h.ops[0].result, 10);
  EXPECT_TRUE(h.ops[1].failed());
  EXPECT_TRUE(h.ops[2].is_info());
  EXPECT_EQ(h.ops[2].complete_ts, -1);
  EXPECT_EQ(h.ops[2].id, 7);
  // info ops precede nothing.
  EXPECT_GT(h.ops[2].ret(), h.ops[0].ret());
}

TEST(HistoryBuildTest, RejectsCompletionWithoutInvoke) {
  std::vector<TraceEvent> events;
  events.push_back(
      TraceEvent::op(1, 0, op_phase::kOk, op_func::kRead, 0, 1, kNoValue,
                     kNoValue, 0));
  const History h = build_history(events);
  EXPECT_FALSE(h.well_formed());
}

TEST(HistoryBuildTest, RejectsDoubleOutstandingOp) {
  std::vector<TraceEvent> events;
  events.push_back(TraceEvent::op(1, 0, op_phase::kInvoke, op_func::kRead, 0, 1));
  events.push_back(TraceEvent::op(2, 0, op_phase::kInvoke, op_func::kRead, 0, 2));
  const History h = build_history(events);
  EXPECT_FALSE(h.well_formed());
}

TEST(HistoryBuildTest, MalformedHistoryIsNotLinearizable) {
  std::vector<TraceEvent> events;
  events.push_back(
      TraceEvent::op(1, 0, op_phase::kOk, op_func::kRead, 0, 1, kNoValue,
                     kNoValue, 0));
  const CheckResult r = check_history(build_history(events));
  EXPECT_FALSE(r.linearizable);
  EXPECT_NE(r.witness.explanation.find("malformed"), std::string::npos);
}

// ------------------------------------------------------------ checker --

History sequential(std::initializer_list<Operation> ops) {
  History h;
  h.ops = ops;
  return h;
}

Operation op(ProcessId c, std::uint8_t func, Round inv, Round ret,
             std::uint8_t completion, Value a = kNoValue, Value b = kNoValue,
             Value result = kNoValue) {
  Operation o;
  o.client = c;
  o.id = inv;  // unique enough for hand-built histories
  o.func = func;
  o.key = 0;
  o.a = a;
  o.b = b;
  o.result = result;
  o.invoke_ts = inv;
  o.complete_ts = ret;
  o.completion = completion;
  return o;
}

TEST(CheckerTest, ConcurrentReadMayLinearizeBeforeWrite) {
  // write(10) over [1,4], read -> 0 over [2,3]: the read linearizes first.
  const History h = sequential({
      op(0, op_func::kWrite, 1, 4, op_phase::kOk, 10, kNoValue, 10),
      op(1, op_func::kRead, 2, 3, op_phase::kOk, kNoValue, kNoValue, 0),
  });
  EXPECT_TRUE(check_history(h).linearizable);
}

TEST(CheckerTest, SequentialStaleReadRejected) {
  const History h = sequential({
      op(0, op_func::kWrite, 1, 2, op_phase::kOk, 10, kNoValue, 10),
      op(1, op_func::kRead, 3, 4, op_phase::kOk, kNoValue, kNoValue, 0),
  });
  const CheckResult r = check_history(h);
  EXPECT_FALSE(r.linearizable);
  EXPECT_EQ(r.witness.key, 0);
  EXPECT_EQ(r.witness.ops.size(), 2u);
}

TEST(CheckerTest, FailedWriteIsDropped) {
  const History h = sequential({
      op(0, op_func::kWrite, 1, 2, op_phase::kFail, 10),
      op(1, op_func::kRead, 3, 4, op_phase::kOk, kNoValue, kNoValue, 0),
  });
  EXPECT_TRUE(check_history(h).linearizable);
}

TEST(CheckerTest, InfoWriteIsOptional) {
  // The open write may or may not have taken effect: both reads accept.
  const History may_apply = sequential({
      op(0, op_func::kWrite, 1, -1, op_phase::kInfo, 10),
      op(1, op_func::kRead, 2, 3, op_phase::kOk, kNoValue, kNoValue, 10),
  });
  const History may_skip = sequential({
      op(0, op_func::kWrite, 1, -1, op_phase::kInfo, 10),
      op(1, op_func::kRead, 2, 3, op_phase::kOk, kNoValue, kNoValue, 0),
  });
  EXPECT_TRUE(check_history(may_apply).linearizable);
  EXPECT_TRUE(check_history(may_skip).linearizable);
}

TEST(CheckerTest, WitnessIsOneMinimal) {
  const History h = sequential({
      op(0, op_func::kWrite, 1, 2, op_phase::kOk, 10, kNoValue, 10),
      op(1, op_func::kRead, 3, 4, op_phase::kOk, kNoValue, kNoValue, 0),
  });
  const CheckResult r = check_history(h);
  ASSERT_FALSE(r.linearizable);
  // Dropping any single witness op must make the remainder linearizable.
  for (std::size_t drop = 0; drop < r.witness.ops.size(); ++drop) {
    std::vector<Operation> rest;
    for (std::size_t i = 0; i < r.witness.ops.size(); ++i) {
      if (i != drop) rest.push_back(r.witness.ops[i]);
    }
    EXPECT_TRUE(linearizable_key(rest)) << "witness not 1-minimal";
  }
}

// ---------------------------------------------------- golden fixtures --

struct GoldenCase {
  const char* file;
  bool linearizable;
  std::int32_t witness_key;  ///< only checked when !linearizable
};

class GoldenHistoryTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenHistoryTest, VerdictAndWitnessMatch) {
  const GoldenCase& c = GetParam();
  const std::string path =
      std::string(HISTORY_FIXTURES_DIR) + "/" + c.file;
  const ParsedTrace trace = parse_trace_file(path);
  // Op events are exempt from round/phase ordering, so a pure op trace
  // must pass structural validation as-is.
  EXPECT_EQ(validate_trace(trace), "");
  ASSERT_EQ(trace.trials.size(), 1u);

  const History h = build_history(trace.trials[0].events);
  ASSERT_TRUE(h.well_formed()) << h.error;
  const CheckResult r = check_history(h);
  EXPECT_EQ(r.linearizable, c.linearizable) << c.file;
  if (!c.linearizable) {
    EXPECT_EQ(r.witness.key, c.witness_key) << c.file;
    EXPECT_FALSE(r.witness.ops.empty());
    EXPECT_FALSE(r.witness.explanation.empty());
    // Every witness op is one of the history's ops, rendered replayable.
    for (const Operation& w : r.witness.ops) {
      EXPECT_NE(std::find(h.ops.begin(), h.ops.end(), w), h.ops.end());
      EXPECT_NE(to_jsonl(w).find("\"e\":\"op\""), std::string::npos);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, GoldenHistoryTest,
    ::testing::Values(GoldenCase{"linearizable_basic.jsonl", true, -1},
                      GoldenCase{"stale_read.jsonl", false, 0},
                      GoldenCase{"lost_update.jsonl", false, 0},
                      GoldenCase{"split_brain.jsonl", false, 0},
                      GoldenCase{"ok_after_fail.jsonl", false, 0}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      std::string name = info.param.file;
      return name.substr(0, name.find('.'));
    });

// ------------------------------------------- end-to-end SMR histories --

/// Fault-free instance environments: a conforming schedule from round 1,
/// independently seeded per instance.
InstanceEnvFactory fault_free_env(const SmrClientConfig& cfg,
                                  std::uint64_t seed) {
  const int n = cfg.n;
  const ProcessId leader = cfg.leader;
  return [n, leader, seed](int index) {
    InstanceEnv env;
    ScheduleConfig scfg;
    scfg.n = n;
    scfg.model = TimingModel::kWlm;
    scfg.leader = leader;
    scfg.gsr = 1;
    scfg.seed = substream_seed(seed, static_cast<std::uint64_t>(index));
    env.sampler = std::make_unique<ScheduleSampler>(scfg);
    return env;
  };
}

SmrClientConfig client_config(std::uint64_t seed) {
  SmrClientConfig cfg;
  cfg.seed = seed;
  return cfg;  // defaults: n=5, 4 clients, 2 register + 1 append keys
}

TEST(SmrHistoryPropertyTest, FaultFreeHistoriesAreLinearizable) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const SmrClientConfig cfg = client_config(seed);
    const SmrClientReport rep =
        run_smr_clients(cfg, fault_free_env(cfg, substream_seed(seed, 99)));
    EXPECT_TRUE(rep.consistent);
    EXPECT_GT(rep.ops_ok, 0);
    const History h = build_history(rep.events);
    ASSERT_TRUE(h.well_formed()) << h.error;
    EXPECT_TRUE(check_history(h).linearizable) << "seed " << seed;
  }
}

TEST(SmrHistoryPropertyTest, SwappedDecidedValueIsRejected) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const SmrClientConfig cfg = client_config(seed);
    SmrClientReport rep =
        run_smr_clients(cfg, fault_free_env(cfg, substream_seed(seed, 99)));
    // Corrupt the last ok read with a nonzero observed value (the probe
    // reads anchor final state, so one always qualifies): no register
    // state v ever has v^1 reachable alongside it — writes/cas values are
    // even, append chains are odd 62-bit hashes.
    bool mutated = false;
    for (auto it = rep.events.rbegin(); it != rep.events.rend(); ++it) {
      if (it->kind == EventKind::kClientOp &&
          it->op_phase == op_phase::kOk && it->op_func == op_func::kRead &&
          it->value != kRegInitial && it->value != kNoValue) {
        it->value ^= 1;
        mutated = true;
        break;
      }
    }
    ASSERT_TRUE(mutated) << "seed " << seed;
    const History h = build_history(rep.events);
    ASSERT_TRUE(h.well_formed()) << h.error;
    EXPECT_FALSE(check_history(h).linearizable) << "seed " << seed;
  }
}

TEST(SmrHistoryPropertyTest, OkFlippedToFailIsRejected) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const SmrClientConfig cfg = client_config(seed);
    SmrClientReport rep =
        run_smr_clients(cfg, fault_free_env(cfg, substream_seed(seed, 99)));
    // The probe read of the append key observes the full hash chain, so
    // retro-claiming any committed append "definitely did not happen"
    // leaves the chain value underivable.
    const std::int32_t append_key = cfg.reg_keys;
    bool probe_ok = false;
    for (const TraceEvent& e : rep.events) {
      if (e.kind == EventKind::kClientOp && e.op_phase == op_phase::kOk &&
          e.op_func == op_func::kRead && e.op_key == append_key &&
          e.proc == cfg.clients + append_key &&
          e.value != kRegInitial) {
        probe_ok = true;
      }
    }
    ASSERT_TRUE(probe_ok) << "seed " << seed;
    bool mutated = false;
    for (TraceEvent& e : rep.events) {
      if (e.kind == EventKind::kClientOp && e.op_phase == op_phase::kOk &&
          e.op_func == op_func::kAppend && e.op_key == append_key) {
        e.op_phase = op_phase::kFail;
        e.value = kNoValue;
        mutated = true;
        break;
      }
    }
    ASSERT_TRUE(mutated) << "seed " << seed;
    const History h = build_history(rep.events);
    ASSERT_TRUE(h.well_formed()) << h.error;
    EXPECT_FALSE(check_history(h).linearizable) << "seed " << seed;
  }
}

TEST(SmrHistoryPropertyTest, CorruptionHooksAreCaught) {
  for (CorruptMode mode : {CorruptMode::kStaleRead, CorruptMode::kLostUpdate}) {
    SmrClientConfig cfg = client_config(7);
    cfg.corrupt = mode;
    const SmrClientReport rep =
        run_smr_clients(cfg, fault_free_env(cfg, substream_seed(7, 99)));
    const History h = build_history(rep.events);
    ASSERT_TRUE(h.well_formed()) << h.error;
    const CheckResult r = check_history(h);
    EXPECT_FALSE(r.linearizable) << to_string(mode);
    EXPECT_FALSE(r.witness.ops.empty()) << to_string(mode);
  }
}

// ------------------------------------------------ thread determinism --

/// Serialize verdict + witness for a batch of trials run through the
/// parallel trial runner — the whole gate pipeline, not just the checker.
std::string gate_fingerprint() {
  struct Trial {
    bool linearizable = true;
    std::string witness;
  };
  const auto trials =
      run_trials<Trial>(10, [](std::size_t t) {
        const std::uint64_t seed = substream_seed(0xd1ce, t);
        SmrClientConfig cfg;
        cfg.seed = seed;
        cfg.corrupt = t % 2 == 0 ? CorruptMode::kNone : CorruptMode::kStaleRead;
        const SmrClientReport rep =
            run_smr_clients(cfg, fault_free_env(cfg, substream_seed(seed, 99)));
        const CheckResult r = check_history(build_history(rep.events));
        Trial out;
        out.linearizable = r.linearizable;
        for (const Operation& w : r.witness.ops) out.witness += to_jsonl(w) + "\n";
        return out;
      });
  std::ostringstream s;
  for (const Trial& t : trials) {
    s << (t.linearizable ? "ok" : "VIOLATION") << "\n" << t.witness;
  }
  return s.str();
}

TEST(SmrHistoryPropertyTest, VerdictsAreByteIdenticalAcrossThreadCounts) {
  std::string base;
  for (int threads : {1, 2, 8}) {
    ScopedThreads st(threads);
    const std::string fp = gate_fingerprint();
    EXPECT_NE(fp.find("VIOLATION"), std::string::npos);
    if (base.empty()) {
      base = fp;
    } else {
      EXPECT_EQ(fp, base) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace timing

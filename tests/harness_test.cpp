// Unit tests for the measurement harness: run measurement, decision
// windows, random start points, and the experiment driver's statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "harness/algorithm_runs.hpp"
#include "harness/experiments.hpp"
#include "oracles/omega.hpp"
#include "harness/measurement.hpp"
#include "models/schedule.hpp"

namespace timing {
namespace {

TEST(Measurement, IncidenceCountsSatisfyingRounds) {
  // An ES schedule stable from round 11 of 20: exactly half the rounds
  // satisfy every model (plus whatever chaos satisfies by luck at p=0).
  ScheduleConfig cfg;
  cfg.n = 6;
  cfg.model = TimingModel::kEs;
  cfg.gsr = 11;
  cfg.pre_gsr_p = 0.0;
  cfg.seed = 3;
  ScheduleSampler s(cfg);
  RunMeasurement m = measure_run(s, 20, /*leader=*/0);
  EXPECT_EQ(m.rounds, 20);
  EXPECT_DOUBLE_EQ(m.incidence(TimingModel::kEs), 0.5);
  EXPECT_DOUBLE_EQ(m.incidence(TimingModel::kWlm), 0.5);
  // p: 10 rounds fully timely, 10 rounds fully untimely (except self
  // links, which are excluded from message counting).
  EXPECT_NEAR(m.timely_fraction(), 0.5, 1e-9);
}

TEST(Measurement, DecisionWindowBasics) {
  //                         0  1  2  3  4  5  6  7
  std::vector<std::uint8_t> sat{0, 1, 1, 0, 1, 1, 1, 0};
  // From 0, first window of 3 consecutive ends at index 6: 7 rounds.
  auto w = rounds_until_conditions(sat, 0, 3);
  EXPECT_FALSE(w.censored);
  EXPECT_DOUBLE_EQ(w.rounds, 7.0);
  // From 4: ends at 6 -> 3 rounds.
  w = rounds_until_conditions(sat, 4, 3);
  EXPECT_DOUBLE_EQ(w.rounds, 3.0);
  // Window of 2 from 0 ends at index 2 -> 3 rounds.
  w = rounds_until_conditions(sat, 0, 2);
  EXPECT_DOUBLE_EQ(w.rounds, 3.0);
  // Window of 4 never occurs: censored, lower bound = remaining length.
  w = rounds_until_conditions(sat, 0, 4);
  EXPECT_TRUE(w.censored);
  EXPECT_DOUBLE_EQ(w.rounds, 8.0);
}

TEST(Measurement, DecisionWindowStreakMustBeConsecutive) {
  std::vector<std::uint8_t> sat{1, 0, 1, 0, 1, 0, 1, 0, 1, 1, 1};
  auto w = rounds_until_conditions(sat, 0, 3);
  EXPECT_FALSE(w.censored);
  EXPECT_DOUBLE_EQ(w.rounds, 11.0) << "alternating rounds never form a window";
}

TEST(Measurement, DecisionStatsAveragesStartPoints) {
  std::vector<std::uint8_t> sat(100, 1);  // always satisfying
  Rng rng(5);
  auto ds = decision_stats(sat, 4, 15, rng);
  EXPECT_DOUBLE_EQ(ds.mean_rounds, 4.0);
  EXPECT_DOUBLE_EQ(ds.censored_fraction, 0.0);

  std::vector<std::uint8_t> never(100, 0);
  auto ds2 = decision_stats(never, 4, 15, rng);
  EXPECT_DOUBLE_EQ(ds2.censored_fraction, 1.0);
  EXPECT_GT(ds2.mean_rounds, 45.0) << "censored windows report remaining run";
}

TEST(Experiments, PairedSeedsGiveIdenticalLatencies) {
  // The same run index must see the same p regardless of other timeouts
  // in the sweep (paired design).
  ExperimentConfig a;
  a.testbed = Testbed::kWan;
  a.timeouts_ms = {200};
  a.runs = 5;
  a.rounds_per_run = 50;
  a.seed = 11;
  ExperimentConfig b = a;
  b.timeouts_ms = {160, 200, 350};
  const auto ra = run_experiment(a);
  const auto rb = run_experiment(b);
  EXPECT_DOUBLE_EQ(ra[0].mean_p, rb[1].mean_p);
  EXPECT_DOUBLE_EQ(ra[0].models[2].mean_pm, rb[1].models[2].mean_pm);
}

TEST(Experiments, LeaderResolution) {
  ExperimentConfig wan;
  wan.testbed = Testbed::kWan;
  EXPECT_EQ(resolve_leader(wan), WanLatencyModel::kUk);
  wan.leader = 3;
  EXPECT_EQ(resolve_leader(wan), 3);

  ExperimentConfig lan;
  lan.testbed = Testbed::kLan;
  // The best-connected LAN machine is node 0 (smallest node factor).
  EXPECT_EQ(resolve_leader(lan), 0);
}

TEST(Experiments, WellConnectedElectionPicksUk) {
  // The paper's offline method ("we measured the round-trip times of all
  // links using pings, and then chose a well-connected node") must pick
  // the UK site on this testbed, as it did on PlanetLab.
  ExperimentConfig wan;
  wan.testbed = Testbed::kWan;
  EXPECT_EQ(elect_well_connected(expected_rtt_matrix(wan)),
            WanLatencyModel::kUk);
}

TEST(Experiments, ExpectedRttMatrixShape) {
  ExperimentConfig wan;
  wan.testbed = Testbed::kWan;
  const auto rtt = expected_rtt_matrix(wan);
  ASSERT_EQ(rtt.size(), 8u);
  EXPECT_DOUBLE_EQ(rtt[0][0], 0.0);
  EXPECT_DOUBLE_EQ(rtt[0][6], rtt[6][0]);
  EXPECT_NEAR(rtt[0][6], 20.0, 1.0);  // CH <-> UK, 2 x 10 ms
}

TEST(Experiments, MeanTimeIsRoundsTimesTimeout) {
  ExperimentConfig cfg;
  cfg.testbed = Testbed::kWan;
  cfg.timeouts_ms = {250};
  cfg.runs = 4;
  cfg.rounds_per_run = 120;
  cfg.seed = 9;
  const auto rs = run_experiment(cfg);
  for (const auto& m : rs[0].models) {
    EXPECT_DOUBLE_EQ(m.mean_time_ms, m.mean_rounds * 250.0);
  }
}

TEST(AlgorithmRuns, ReportsMessageComplexity) {
  AlgorithmRunConfig cfg;
  cfg.kind = AlgorithmKind::kLm3;
  cfg.schedule.n = 6;
  cfg.schedule.model = TimingModel::kLm;
  cfg.schedule.leader = 1;
  cfg.schedule.gsr = 5;
  cfg.schedule.seed = 8;
  for (int i = 0; i < 6; ++i) cfg.proposals.push_back(i + 1);
  const auto r = run_algorithm(cfg);
  ASSERT_TRUE(r.all_decided);
  EXPECT_EQ(r.stable_round_messages, 6 * 5) << "LM-3 broadcasts: n(n-1)";
  EXPECT_GT(r.total_messages, r.stable_round_messages);
}

TEST(AlgorithmRuns, WlmVsLm3MessageComplexityContrast) {
  // The paper's core message-complexity claim, measured: Algorithm 2
  // sends 2(n-1) stable-state messages/round, the <>LM algorithm n(n-1).
  for (int n : {4, 8, 16, 32}) {
    AlgorithmRunConfig wlm;
    wlm.kind = AlgorithmKind::kWlm;
    wlm.schedule.n = n;
    wlm.schedule.model = TimingModel::kWlm;
    wlm.schedule.leader = 0;
    wlm.schedule.gsr = 4;
    wlm.schedule.seed = n;
    wlm.oracle_stable_from = 0;
    for (int i = 0; i < n; ++i) wlm.proposals.push_back(i + 1);
    const auto rw = run_algorithm(wlm);
    ASSERT_TRUE(rw.all_decided);
    EXPECT_EQ(rw.stable_round_messages, 2 * (n - 1));

    AlgorithmRunConfig lm = wlm;
    lm.kind = AlgorithmKind::kLm3;
    lm.schedule.model = TimingModel::kLm;
    const auto rl = run_algorithm(lm);
    ASSERT_TRUE(rl.all_decided);
    EXPECT_EQ(rl.stable_round_messages, static_cast<long long>(n) * (n - 1));
  }
}

TEST(Streaming, WindowTrackerMatchesDecisionStatsBitForBit) {
  // The incremental tracker must reproduce decision_stats (vector path)
  // exactly: same start points, same resolution rounds, same censoring,
  // same floating-point sums.
  Rng bits_rng(0x7777ULL);
  for (int rep = 0; rep < 20; ++rep) {
    const int len = 40 + static_cast<int>(bits_rng.uniform_int(80));
    const int needed = 2 + static_cast<int>(bits_rng.uniform_int(5));
    const double density = 0.3 + 0.6 * rep / 20.0;
    std::vector<std::uint8_t> sat(static_cast<std::size_t>(len));
    for (auto& b : sat) b = bits_rng.bernoulli(density) ? 1 : 0;

    // Same sub-stream for both paths -> same start points.
    Rng rng_vec = substream(99, static_cast<std::uint64_t>(rep));
    Rng rng_stream = substream(99, static_cast<std::uint64_t>(rep));
    const int start_points = 15;
    const DecisionStats want =
        decision_stats(sat, needed, start_points, rng_vec);

    std::vector<int> starts(static_cast<std::size_t>(start_points));
    for (int s = 0; s < start_points; ++s) {
      starts[static_cast<std::size_t>(s)] = static_cast<int>(
          rng_stream.uniform_int(
              static_cast<std::uint64_t>(std::max(1, len / 2))));
    }
    ConsecutiveWindowTracker tracker(needed, std::move(starts), len);
    long long sat_count = 0;
    for (const auto b : sat) {
      tracker.observe(b != 0);
      sat_count += b ? 1 : 0;
    }
    const DecisionStats got = tracker.finalize();
    EXPECT_EQ(got.mean_rounds, want.mean_rounds) << "rep=" << rep;
    EXPECT_EQ(got.censored_fraction, want.censored_fraction);
    EXPECT_EQ(tracker.satisfied_rounds(), sat_count);
  }
}

TEST(Streaming, MeasureRunStreamingMatchesVectorPipeline) {
  // One (timeout, run) trial both ways: classic measure_run + incidence +
  // decision_stats vs the fused streaming path, same sampler sub-stream,
  // same start_rng. Everything must agree bit-for-bit — this is the
  // invariant that lets run_experiment use the fast path while keeping
  // the figure outputs byte-identical.
  const int n = 8;
  const int rounds = 120;
  const int start_points = 15;
  const std::array<int, kNumModels> needed = {3, 3, 4, 5};
  const ProcessId leader = 2;

  IidTimelinessSampler vec_sampler(n, 0.9, 0xfeedfaceULL);
  RunMeasurement m = measure_run(vec_sampler, rounds, leader);
  Rng vec_rng = substream(7, 3);
  std::array<double, kNumModels> want_rounds{};
  std::array<double, kNumModels> want_censored{};
  for (TimingModel tm : kAllModels) {
    const auto idx = static_cast<std::size_t>(model_index(tm));
    const DecisionStats ds =
        decision_stats(m.sat[idx], needed[idx], start_points, vec_rng);
    want_rounds[idx] = ds.mean_rounds;
    want_censored[idx] = ds.censored_fraction;
  }

  IidTimelinessSampler stream_sampler(n, 0.9, 0xfeedfaceULL);
  Rng stream_rng = substream(7, 3);
  const StreamedRun s = measure_run_streaming(
      stream_sampler, rounds, leader, needed, start_points, stream_rng);

  EXPECT_EQ(s.messages_total, m.messages_total);
  EXPECT_EQ(s.messages_timely, m.messages_timely);
  EXPECT_EQ(s.messages_late, m.messages_late);
  EXPECT_EQ(s.messages_lost, m.messages_lost);
  EXPECT_EQ(s.timely_fraction(), m.timely_fraction());
  for (TimingModel tm : kAllModels) {
    const auto idx = static_cast<std::size_t>(model_index(tm));
    EXPECT_EQ(s.pm[idx], m.incidence(tm)) << to_string(tm);
    EXPECT_EQ(s.mean_rounds[idx], want_rounds[idx]) << to_string(tm);
    EXPECT_EQ(s.censored[idx], want_censored[idx]) << to_string(tm);
  }
}

}  // namespace
}  // namespace timing

// Tests for the networking substrate: codec round-trips (including
// malformed-input rejection), framing, the in-process hub (delivery,
// latency injection, loss), the UDP loopback transport, and ping-based
// latency measurement.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "common/rng.hpp"
#include "net/codec.hpp"
#include "net/frame.hpp"
#include "net/ping.hpp"
#include "net/transport.hpp"
#include "net/udp_transport.hpp"
#include "obs/span.hpp"

namespace timing {
namespace {

Message sample_message() {
  Message m;
  m.type = MsgType::kCommit;
  m.est = -1234567890123LL;
  m.ts = 42;
  m.leader = 3;
  m.maj_approved = true;
  m.heard_maj = false;
  m.ballot = 17;
  m.accepted_ballot = 9;
  m.accepted_value = 777;
  return m;
}

TEST(Codec, RoundTripSimple) {
  Envelope e{12, 4, sample_message()};
  Bytes buf;
  encode(e, buf);
  auto back = decode(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, e);
}

TEST(Codec, RoundTripWithRelayPayload) {
  Message relay;
  relay.type = MsgType::kRelay;
  relay.relay_from = {0, 2, 5};
  relay.relay_msgs = {sample_message(), Message{}, sample_message()};
  relay.relay_msgs[1].type = MsgType::kDecide;
  relay.relay_msgs[1].est = 5;
  Envelope e{7, 1, relay};
  Bytes buf;
  encode(e, buf);
  auto back = decode(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, e);
}

TEST(Codec, NestedRelays) {
  Message inner;
  inner.type = MsgType::kRelay;
  inner.relay_from = {1};
  inner.relay_msgs = {sample_message()};
  Message outer;
  outer.type = MsgType::kRelay;
  outer.relay_from = {3};
  outer.relay_msgs = {inner};
  Envelope e{2, 0, outer};
  Bytes buf;
  encode(e, buf);
  auto back = decode(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, e);
}

TEST(Codec, RejectsTruncatedInput) {
  Envelope e{12, 4, sample_message()};
  Bytes buf;
  encode(e, buf);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    Bytes partial(buf.begin(), buf.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode(partial).has_value()) << "cut at " << cut;
  }
}

TEST(Codec, RejectsTrailingGarbage) {
  Envelope e{1, 0, sample_message()};
  Bytes buf;
  encode(e, buf);
  buf.push_back(0xab);
  EXPECT_FALSE(decode(buf).has_value());
}

TEST(Codec, RejectsBadTypeAndHostileFanout) {
  Envelope e{1, 0, sample_message()};
  Bytes buf;
  encode(e, buf);
  Bytes bad = buf;
  // Message type byte: after the round (4), sender (4) and span (8)
  // header fields.
  bad[16] = 0xff;
  EXPECT_FALSE(decode(bad).has_value());

  // Hostile relay fanout: huge count with no payload.
  Message relay;
  relay.type = MsgType::kRelay;
  Envelope re{1, 0, relay};
  Bytes rbuf;
  encode(re, rbuf);
  // Patch the fanout (last 4 bytes of the message) to a huge value.
  rbuf[rbuf.size() - 4] = 0xff;
  rbuf[rbuf.size() - 3] = 0xff;
  rbuf[rbuf.size() - 2] = 0xff;
  rbuf[rbuf.size() - 1] = 0x7f;
  EXPECT_FALSE(decode(rbuf).has_value());
}

TEST(Codec, FuzzBitflipsNeverCrashAndNeverAliasValidEnvelopes) {
  // Flip random bits in valid encodings: the decoder must either reject
  // the buffer or produce SOME envelope - never crash or read out of
  // bounds (ASAN-visible if it did). This guards the UDP receive path,
  // which feeds raw datagrams straight into decode().
  Rng rng(1234);
  Message m = sample_message();
  m.punish = {1, 2, 3, 4};
  Envelope e{12, 4, m};
  Bytes buf;
  encode(e, buf);
  int rejected = 0;
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    Bytes mutated = buf;
    const int flips = 1 + static_cast<int>(rng.uniform_int(4));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.uniform_int(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    }
    if (!decode(mutated).has_value()) ++rejected;
  }
  // Most single-field corruptions still parse (they change payload
  // values, which is fine); structural corruptions must be rejected.
  EXPECT_GT(rejected, 0);
}

TEST(Codec, FuzzRandomBuffersNeverCrash) {
  Rng rng(4321);
  for (int t = 0; t < 5000; ++t) {
    Bytes junk(rng.uniform_int(128));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    (void)decode(junk);   // must not crash
    (void)parse_frame(junk);
  }
}

TEST(Codec, RandomMessagesRoundTrip) {
  Rng rng(777);
  for (int t = 0; t < 2000; ++t) {
    Message m;
    m.type = static_cast<MsgType>(rng.uniform_int(10));
    m.est = static_cast<Value>(rng.next());
    m.ts = static_cast<Timestamp>(rng.uniform_int(1 << 30));
    m.leader = static_cast<ProcessId>(rng.uniform_int(64)) - 1;
    m.maj_approved = rng.bernoulli(0.5);
    m.heard_maj = rng.bernoulli(0.5);
    m.ballot = static_cast<Timestamp>(rng.uniform_int(1 << 20));
    m.accepted_ballot = static_cast<Timestamp>(rng.uniform_int(1 << 20));
    m.accepted_value = static_cast<Value>(rng.next());
    const auto punishes = rng.uniform_int(9);
    for (std::uint64_t i = 0; i < punishes; ++i) {
      m.punish.push_back(static_cast<Timestamp>(rng.uniform_int(1000)));
    }
    if (rng.bernoulli(0.3)) {
      const auto fanout = 1 + rng.uniform_int(5);
      for (std::uint64_t i = 0; i < fanout; ++i) {
        Message inner;
        inner.est = static_cast<Value>(rng.next());
        m.relay_from.push_back(static_cast<ProcessId>(i));
        m.relay_msgs.push_back(inner);
      }
    }
    Envelope e{static_cast<Round>(rng.uniform_int(1 << 20)),
               static_cast<ProcessId>(rng.uniform_int(64)), m};
    Bytes buf;
    encode(e, buf);
    auto back = decode(buf);
    ASSERT_TRUE(back.has_value()) << "trial " << t;
    ASSERT_EQ(*back, e) << "trial " << t;
  }
}

TEST(Codec, RoundTripCarriesSpanContext) {
  // The causal span id (obs/span.hpp) must survive the wire exactly:
  // the receiver records a causality edge keyed on the very id the
  // sender minted. Exercised through both the raw codec and the framed
  // transport path.
  Envelope e{3, 1, sample_message()};
  e.span = make_span_id(span_kind::kMsg, /*round=*/3, /*src=*/1, /*dst=*/2);
  Bytes buf;
  encode(e, buf);
  const auto back = decode(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->span, e.span);
  EXPECT_EQ(*back, e);

  Bytes framed;
  frame_envelope(e, framed);
  const auto f = parse_frame(framed);
  ASSERT_TRUE(f.has_value());
  ASSERT_TRUE(std::holds_alternative<Envelope>(*f));
  EXPECT_EQ(std::get<Envelope>(*f), e);

  // span = 0 ("tracing off") round-trips too, and the two encodings
  // differ only in the span bytes.
  Envelope off = e;
  off.span = 0;
  Bytes off_buf;
  encode(off, off_buf);
  EXPECT_EQ(off_buf.size(), buf.size());
  const auto off_back = decode(off_buf);
  ASSERT_TRUE(off_back.has_value());
  EXPECT_EQ(off_back->span, 0u);
}

TEST(Frame, RoundTrips) {
  Bytes buf;
  frame_ping(PingFrame{0xdeadbeefcafeULL}, buf);
  auto f = parse_frame(buf);
  ASSERT_TRUE(f.has_value());
  ASSERT_TRUE(std::holds_alternative<PingFrame>(*f));
  EXPECT_EQ(std::get<PingFrame>(*f).nonce, 0xdeadbeefcafeULL);

  buf.clear();
  frame_pong(PongFrame{99}, buf);
  f = parse_frame(buf);
  ASSERT_TRUE(std::holds_alternative<PongFrame>(*f));

  buf.clear();
  Envelope e{3, 2, sample_message()};
  frame_envelope(e, buf);
  f = parse_frame(buf);
  ASSERT_TRUE(std::holds_alternative<Envelope>(*f));
  EXPECT_EQ(std::get<Envelope>(*f), e);

  EXPECT_FALSE(parse_frame(Bytes{}).has_value());
  EXPECT_FALSE(parse_frame(Bytes{9, 1, 2}).has_value());
}

TEST(InProcHub, DeliversBetweenEndpoints) {
  auto hub = std::make_shared<InProcHub>(3);
  InProcTransport a(hub, 0), b(hub, 1);
  Bytes msg{1, 2, 3};
  EXPECT_TRUE(a.send(1, msg));
  Bytes got;
  ProcessId from = kNoProcess;
  ASSERT_TRUE(b.recv(got, from, Clock::now() + std::chrono::seconds(1)));
  EXPECT_EQ(got, msg);
  EXPECT_EQ(from, 0);
}

TEST(InProcHub, RecvTimesOut) {
  auto hub = std::make_shared<InProcHub>(2);
  InProcTransport a(hub, 0);
  Bytes got;
  ProcessId from;
  const auto t0 = Clock::now();
  EXPECT_FALSE(a.recv(got, from, t0 + std::chrono::milliseconds(30)));
  EXPECT_GE(Clock::now() - t0, std::chrono::milliseconds(25));
}

TEST(InProcHub, LatencyInjectionDelaysDelivery) {
  class Fixed final : public LatencyModel {
   public:
    int n() const noexcept override { return 2; }
    void begin_round(Round) override {}
    double sample_ms(ProcessId, ProcessId) override { return 60.0; }
  };
  auto hub = std::make_shared<InProcHub>(2);
  hub->set_latency_model(std::make_unique<Fixed>(), 10.0);
  InProcTransport a(hub, 0), b(hub, 1);
  a.send(1, Bytes{7});
  Bytes got;
  ProcessId from;
  // Not there after 20 ms...
  EXPECT_FALSE(b.recv(got, from, Clock::now() + std::chrono::milliseconds(20)));
  // ...but there within 200 ms.
  EXPECT_TRUE(b.recv(got, from, Clock::now() + std::chrono::milliseconds(200)));
}

TEST(InProcHub, LossDropsPacket) {
  class Lossy final : public LatencyModel {
   public:
    int n() const noexcept override { return 2; }
    void begin_round(Round) override {}
    double sample_ms(ProcessId, ProcessId) override {
      return std::numeric_limits<double>::infinity();
    }
  };
  auto hub = std::make_shared<InProcHub>(2);
  hub->set_latency_model(std::make_unique<Lossy>(), 10.0);
  InProcTransport a(hub, 0), b(hub, 1);
  a.send(1, Bytes{7});
  Bytes got;
  ProcessId from;
  EXPECT_FALSE(b.recv(got, from, Clock::now() + std::chrono::milliseconds(50)));
}

TEST(Udp, LoopbackRoundTrip) {
  UdpTransport a(0, 2, 39100), b(1, 2, 39100);
  Bytes msg{9, 8, 7, 6};
  ASSERT_TRUE(a.send(1, msg));
  Bytes got;
  ProcessId from = kNoProcess;
  ASSERT_TRUE(b.recv(got, from, Clock::now() + std::chrono::seconds(2)));
  EXPECT_EQ(got, msg);
  EXPECT_EQ(from, 0);
}

TEST(Udp, BindConflictThrows) {
  UdpTransport a(0, 2, 39140);
  EXPECT_THROW(UdpTransport(0, 2, 39140), std::runtime_error);
}

TEST(Udp, RecvTimesOut) {
  UdpTransport a(0, 2, 39160);
  Bytes got;
  ProcessId from;
  EXPECT_FALSE(a.recv(got, from, Clock::now() + std::chrono::milliseconds(30)));
}

// Regression: recv used to return on poll's timeout directly, and poll's
// wait is the remaining time truncated to whole milliseconds — so a recv
// with fractional milliseconds left reported a timeout up to 1 ms before
// the deadline (and an EINTR-shortened sleep could do the same). The
// deadline check in the loop must be the only way to time out.
TEST(Udp, RecvTimeoutNotBeforeDeadline) {
  UdpTransport a(0, 2, 39180);
  Bytes got;
  ProcessId from;
  for (int i = 0; i < 20; ++i) {
    const auto wait = std::chrono::microseconds(2500);  // fractional ms
    const auto deadline = Clock::now() + wait;
    EXPECT_FALSE(a.recv(got, from, deadline));
    EXPECT_GE(Clock::now(), deadline);
  }
}

TEST(Ping, MeasuresRttOverHub) {
  auto hub = std::make_shared<InProcHub>(3);
  class Fixed final : public LatencyModel {
   public:
    int n() const noexcept override { return 3; }
    void begin_round(Round) override {}
    double sample_ms(ProcessId, ProcessId) override { return 5.0; }
  };
  hub->set_latency_model(std::make_unique<Fixed>(), 50.0);

  PingConfig cfg;
  cfg.pings_per_peer = 5;
  cfg.total_duration = std::chrono::milliseconds(3000);

  std::vector<PingReport> reports(3);
  std::vector<std::thread> threads;
  for (ProcessId i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      InProcTransport t(hub, i);
      reports[static_cast<std::size_t>(i)] = measure_peer_rtts(t, 3, cfg);
    });
  }
  for (auto& th : threads) th.join();

  for (ProcessId i = 0; i < 3; ++i) {
    for (ProcessId j = 0; j < 3; ++j) {
      if (i == j) {
        EXPECT_EQ(reports[i].avg_rtt_ms[j], 0.0);
      } else {
        EXPECT_GT(reports[i].replies[j], 0) << i << "->" << j;
        // 2 x 5 ms one-way, plus scheduling slack.
        EXPECT_GE(reports[i].avg_rtt_ms[j], 9.0);
        EXPECT_LT(reports[i].avg_rtt_ms[j], 60.0);
        EXPECT_NEAR(reports[i].one_way_ms(j), reports[i].avg_rtt_ms[j] / 2,
                    1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace timing

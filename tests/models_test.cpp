// Unit tests for src/models: the per-round predicates of Section 4.1 and
// the GSR schedule samplers.
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "models/predicates.hpp"
#include "models/schedule.hpp"
#include "models/timing_model.hpp"

namespace timing {
namespace {

LinkMatrix all_timely(int n) { return LinkMatrix(n, 0); }

LinkMatrix none_timely(int n) {
  LinkMatrix a(n, kLost);
  for (ProcessId i = 0; i < n; ++i) a.set(i, i, 0);  // self links stay timely
  return a;
}

TEST(Predicates, EsNeedsEverything) {
  auto a = all_timely(8);
  EXPECT_TRUE(satisfies_es(a));
  a.set(3, 4, kLost);
  EXPECT_FALSE(satisfies_es(a));
}

TEST(Predicates, EsIgnoresCrashedProcesses) {
  auto a = all_timely(5);
  a.set(2, 4, kLost);  // only the crashed sender's link is broken
  CorrectMask correct(5, true);
  correct[4] = false;
  EXPECT_TRUE(satisfies_es(a, &correct));
  EXPECT_FALSE(satisfies_es(a));
}

TEST(Predicates, WlmMinimalRequirement) {
  // Only the leader's column + a majority into the leader: WLM holds,
  // everything else fails.
  const int n = 8;
  const ProcessId ld = 2;
  auto a = none_timely(n);
  for (ProcessId d = 0; d < n; ++d) a.set(d, ld, 0);  // leader n-source
  // majority into the leader: self + 4 others.
  for (ProcessId s = 3; s <= 6; ++s) a.set(ld, s, 0);
  EXPECT_TRUE(satisfies_wlm(a, ld));
  EXPECT_FALSE(satisfies_lm(a, ld));
  EXPECT_FALSE(satisfies_afm(a));
  EXPECT_FALSE(satisfies_es(a));
}

TEST(Predicates, WlmFailsWithoutLeaderColumn) {
  const int n = 8;
  const ProcessId ld = 2;
  auto a = all_timely(n);
  a.set(7, ld, 1);  // one late leader link
  EXPECT_FALSE(satisfies_wlm(a, ld));
  a.set(7, ld, 0);
  EXPECT_TRUE(satisfies_wlm(a, ld));
}

TEST(Predicates, WlmFailsWithoutMajorityIntoLeader) {
  const int n = 8;
  const ProcessId ld = 0;
  auto a = none_timely(n);
  for (ProcessId d = 0; d < n; ++d) a.set(d, ld, 0);
  // only 3 inbound links + self = 4 < 5.
  a.set(ld, 1, 0);
  a.set(ld, 2, 0);
  a.set(ld, 3, 0);
  EXPECT_FALSE(satisfies_wlm(a, ld));
  a.set(ld, 4, 0);  // 5th
  EXPECT_TRUE(satisfies_wlm(a, ld));
}

TEST(Predicates, LmNeedsEveryRowMajority) {
  const int n = 8;
  const ProcessId ld = 1;
  auto a = all_timely(n);
  EXPECT_TRUE(satisfies_lm(a, ld));
  // Break p7's row down to 4 timely (self + 3): below majority 5.
  for (ProcessId s = 0; s < n; ++s) {
    if (s != 7 && s != ld && s != 0 && s != 2) a.set(7, s, kLost);
  }
  EXPECT_EQ(a.timely_into(7), 4);
  EXPECT_FALSE(satisfies_lm(a, ld));
  // WLM does not care about p7's row.
  EXPECT_TRUE(satisfies_wlm(a, ld));
}

TEST(Predicates, AfmRowsAndColumns) {
  const int n = 8;
  auto a = all_timely(n);
  EXPECT_TRUE(satisfies_afm(a));
  // Kill one process's outgoing links below majority: column fails.
  for (ProcessId d = 0; d < n; ++d) {
    if (d != 4 && d != 0 && d != 1 && d != 2) a.set(d, 4, kLost);
  }
  EXPECT_EQ(a.timely_out_of(4), 4);
  EXPECT_FALSE(satisfies_afm(a));
  // <>LM (leader 0) is indifferent to p4's column...
  EXPECT_TRUE(satisfies_lm(a, 0));
  // ...which reproduces the paper's WAN observation: a slow *sender*
  // suppresses <>AFM but not <>LM.
}

TEST(Predicates, AfmSlowReceiverBreaksRowAndLm) {
  const int n = 8;
  auto a = all_timely(n);
  // Poland-style slow receiver: only 3 inbound + self.
  for (ProcessId s = 0; s < n; ++s) {
    if (s != 5 && s != 0 && s != 6 && s != 7) a.set(5, s, kLost);
  }
  EXPECT_FALSE(satisfies_afm(a));
  EXPECT_FALSE(satisfies_lm(a, 6));
  // <>WLM survives as long as the leader's links are fine.
  EXPECT_TRUE(satisfies_wlm(a, 6));
}

TEST(Predicates, ModelImplications) {
  // ES implies every other model (with any leader); checked on random
  // matrices by repairing them to ES.
  auto a = all_timely(8);
  for (ProcessId ld = 0; ld < 8; ++ld) {
    EXPECT_TRUE(satisfies(TimingModel::kEs, a, ld));
    EXPECT_TRUE(satisfies(TimingModel::kLm, a, ld));
    EXPECT_TRUE(satisfies(TimingModel::kWlm, a, ld));
    EXPECT_TRUE(satisfies(TimingModel::kAfm, a, ld));
  }
}

TEST(Predicates, LmImpliesWlm) {
  ScheduleConfig cfg;
  cfg.n = 8;
  cfg.model = TimingModel::kLm;
  cfg.leader = 3;
  cfg.gsr = 1;
  cfg.seed = 5;
  ScheduleSampler s(cfg);
  LinkMatrix a(8);
  for (Round k = 1; k <= 200; ++k) {
    s.sample_round(k, a);
    ASSERT_TRUE(satisfies_lm(a, 3));
    ASSERT_TRUE(satisfies_wlm(a, 3)) << "<>LM round must satisfy <>WLM";
  }
}

TEST(TimingModelMeta, RoundCounts) {
  EXPECT_EQ(rounds_for_global_decision(AnalyzedAlgorithm::kEs3), 3);
  EXPECT_EQ(rounds_for_global_decision(AnalyzedAlgorithm::kLm3), 3);
  EXPECT_EQ(rounds_for_global_decision(AnalyzedAlgorithm::kWlmDirect), 4);
  EXPECT_EQ(rounds_for_global_decision(AnalyzedAlgorithm::kWlmDirect5), 5);
  EXPECT_EQ(rounds_for_global_decision(AnalyzedAlgorithm::kWlmSimulated), 7);
  EXPECT_EQ(rounds_for_global_decision(AnalyzedAlgorithm::kAfm5), 5);
  EXPECT_EQ(default_rounds_for_global_decision(TimingModel::kWlm), 4);
  EXPECT_EQ(model_of(AnalyzedAlgorithm::kWlmSimulated), TimingModel::kWlm);
  EXPECT_EQ(to_string(TimingModel::kWlm), "<>WLM");
}

class ScheduleConformance
    : public ::testing::TestWithParam<std::tuple<TimingModel, int, bool>> {};

TEST_P(ScheduleConformance, PostGsrRoundsConform) {
  const auto [model, n, minimal] = GetParam();
  ScheduleConfig cfg;
  cfg.n = n;
  cfg.model = model;
  cfg.leader = n / 2;
  cfg.gsr = 10;
  cfg.minimal = minimal;
  cfg.seed = 0xc0ffee + n;
  ScheduleSampler s(cfg);
  LinkMatrix a(n);
  for (Round k = 1; k <= 80; ++k) {
    s.sample_round(k, a);
    for (ProcessId i = 0; i < n; ++i) {
      ASSERT_TRUE(a.timely(i, i)) << "self link broken";
    }
    if (k >= cfg.gsr) {
      ASSERT_TRUE(satisfies(model, a, cfg.leader))
          << to_string(model) << " round " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ScheduleConformance,
    ::testing::Combine(::testing::Values(TimingModel::kEs, TimingModel::kLm,
                                         TimingModel::kWlm, TimingModel::kAfm),
                       ::testing::Values(2, 3, 5, 8, 13),
                       ::testing::Bool()));

TEST(Schedule, MinimalWlmIsReallyMinimal) {
  // In the minimal-conforming <>WLM schedule no non-required link is
  // timely: non-leader processes only hear from the leader.
  ScheduleConfig cfg;
  cfg.n = 8;
  cfg.model = TimingModel::kWlm;
  cfg.leader = 0;
  cfg.gsr = 1;
  cfg.minimal = true;
  cfg.seed = 7;
  ScheduleSampler s(cfg);
  LinkMatrix a(8);
  for (Round k = 1; k <= 50; ++k) {
    s.sample_round(k, a);
    for (ProcessId d = 1; d < 8; ++d) {
      for (ProcessId src = 0; src < 8; ++src) {
        if (src != 0 && src != d) {
          ASSERT_FALSE(a.timely(d, src))
              << "minimal schedule leaked a non-leader link";
        }
      }
    }
    ASSERT_EQ(a.timely_into(0), majority_size(8));
  }
}

TEST(Schedule, MobileMajorities) {
  // The repaired majority into the leader must change over rounds
  // (the "_v" in <>(n/2+1)-destination_v).
  ScheduleConfig cfg;
  cfg.n = 8;
  cfg.model = TimingModel::kWlm;
  cfg.leader = 0;
  cfg.gsr = 1;
  cfg.minimal = true;
  cfg.seed = 21;
  ScheduleSampler s(cfg);
  LinkMatrix a(8);
  std::set<std::vector<bool>> seen;
  for (Round k = 1; k <= 60; ++k) {
    s.sample_round(k, a);
    std::vector<bool> row;
    for (ProcessId src = 0; src < 8; ++src) row.push_back(a.timely(0, src));
    seen.insert(row);
  }
  EXPECT_GT(seen.size(), 5u);
}

TEST(Schedule, PreGsrIsChaotic) {
  ScheduleConfig cfg;
  cfg.n = 8;
  cfg.model = TimingModel::kEs;
  cfg.gsr = 1000;
  cfg.pre_gsr_p = 0.3;
  cfg.seed = 3;
  ScheduleSampler s(cfg);
  LinkMatrix a(8);
  long long timely = 0, total = 0;
  for (Round k = 1; k <= 300; ++k) {
    s.sample_round(k, a);
    for (ProcessId d = 0; d < 8; ++d) {
      for (ProcessId src = 0; src < 8; ++src) {
        if (d == src) continue;
        ++total;
        timely += a.timely(d, src) ? 1 : 0;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(timely) / total, 0.3, 0.02);
}

}  // namespace
}  // namespace timing

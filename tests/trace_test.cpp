// Tests for the trace record/replay pipeline: round-trip fidelity,
// malformed-input rejection, and cycling replay.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/sampler.hpp"
#include "sim/trace_model.hpp"

namespace timing {
namespace {

TEST(Trace, RecordThenReplayReproducesMatrices) {
  WanProfile prof;
  WanLatencyModel original(prof, 321);
  std::ostringstream trace_text;
  TraceRecorder recorder(original, trace_text);
  LatencyTimelinessSampler record_sampler(recorder, 170.0);

  std::vector<LinkMatrix> recorded;
  LinkMatrix a(8);
  for (Round k = 1; k <= 30; ++k) {
    record_sampler.sample_round(k, a);
    recorded.push_back(a);
  }

  std::istringstream in(trace_text.str());
  TraceLatencyModel replay = TraceLatencyModel::parse(in);
  EXPECT_EQ(replay.n(), 8);
  EXPECT_EQ(replay.trace_rounds(), 30);
  LatencyTimelinessSampler replay_sampler(replay, 170.0);
  for (Round k = 1; k <= 30; ++k) {
    replay_sampler.sample_round(k, a);
    for (ProcessId d = 0; d < 8; ++d) {
      for (ProcessId s = 0; s < 8; ++s) {
        ASSERT_EQ(a.at(d, s), recorded[static_cast<std::size_t>(k - 1)].at(d, s))
            << "round " << k << " (" << d << "," << s << ")";
      }
    }
  }
}

TEST(Trace, ReplayCyclesPastTheEnd) {
  std::istringstream in(
      "trace v1 n=2\n"
      "1 0 1 5.0\n"
      "1 1 0 lost\n"
      "2 0 1 100.0\n"
      "2 1 0 1.0\n");
  TraceLatencyModel m = TraceLatencyModel::parse(in);
  EXPECT_EQ(m.trace_rounds(), 2);
  for (int cycle = 0; cycle < 3; ++cycle) {
    m.begin_round(2 * cycle + 1);
    EXPECT_DOUBLE_EQ(m.sample_ms(0, 1), 5.0);
    EXPECT_TRUE(std::isinf(m.sample_ms(1, 0)));
    m.begin_round(2 * cycle + 2);
    EXPECT_DOUBLE_EQ(m.sample_ms(0, 1), 100.0);
    EXPECT_DOUBLE_EQ(m.sample_ms(1, 0), 1.0);
  }
}

TEST(Trace, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# recorded on the moon\n"
      "\n"
      "trace v1 n=3\n"
      "# round one\n"
      "1 0 1 2.5\n");
  TraceLatencyModel m = TraceLatencyModel::parse(in);
  m.begin_round(1);
  EXPECT_DOUBLE_EQ(m.sample_ms(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(m.sample_ms(2, 2), 0.0);
}

TEST(Trace, GapRoundsAreAllTimely) {
  std::istringstream in(
      "trace v1 n=2\n"
      "5 0 1 9.0\n"
      "8 0 1 7.0\n");
  TraceLatencyModel m = TraceLatencyModel::parse(in);
  EXPECT_EQ(m.trace_rounds(), 4);  // rounds 5,6,7,8
  m.begin_round(1);
  EXPECT_DOUBLE_EQ(m.sample_ms(0, 1), 9.0);
  m.begin_round(2);
  EXPECT_DOUBLE_EQ(m.sample_ms(0, 1), 0.0);  // gap round
}

TEST(Trace, RejectsMalformedInput) {
  auto expect_throw = [](const std::string& text) {
    std::istringstream in(text);
    EXPECT_THROW(TraceLatencyModel::parse(in), std::runtime_error) << text;
  };
  expect_throw("");                                  // no header
  expect_throw("trace v2 n=4\n1 0 1 1.0\n");         // bad version
  expect_throw("trace v1 n=1\n");                    // implausible n
  expect_throw("trace v1 n=4\n");                    // no rounds
  expect_throw("trace v1 n=4\nnonsense\n");          // bad line
  expect_throw("trace v1 n=4\n1 0 9 1.0\n");         // id out of range
  expect_throw("trace v1 n=4\n2 0 1 1.0\n1 0 1 1\n");// decreasing rounds
  expect_throw("trace v1 n=4\n1 0 1 -3.0\n");        // negative latency
}

}  // namespace
}  // namespace timing

// End-to-end integration: the full PlanetLab-style pipeline of
// Section 5.1 over REAL UDP loopback sockets - ping-based latency
// measurement, offline well-connected leader election, round
// synchronization, and Algorithm 2 consensus, exactly the deployment the
// paper ran on PlanetLab (modulo the substituted network).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "consensus/factory.hpp"
#include "net/ping.hpp"
#include "net/udp_transport.hpp"
#include "oracles/omega.hpp"
#include "roundsync/roundsync.hpp"

namespace timing {
namespace {

TEST(Integration, PingElectSyncDecideOverUdp) {
  constexpr int kN = 4;
  constexpr std::uint16_t kBasePort = 39200;

  struct NodeResult {
    PingReport ping;
    RoundSyncResult sync;
    Value decision = kNoValue;
    ProcessId elected = kNoProcess;
  };
  std::vector<NodeResult> results(kN);
  std::vector<std::thread> threads;

  for (ProcessId i = 0; i < kN; ++i) {
    threads.emplace_back([&, i] {
      auto& out = results[static_cast<std::size_t>(i)];
      UdpTransport transport(i, kN, kBasePort);

      // Phase 1: latency estimation by pings (Section 5.1).
      PingConfig pcfg;
      pcfg.pings_per_peer = 5;
      pcfg.total_duration = std::chrono::milliseconds(3000);
      out.ping = measure_peer_rtts(transport, kN, pcfg);

      // Phase 2: offline election of a well-connected leader from the
      // ping matrix. All nodes are on loopback, so any answer is fine as
      // long as all agree; they use a shared deterministic rule over
      // their own measurements plus node ids, so to keep the test robust
      // we fix the designated leader the way the paper did.
      out.elected = 0;

      // Phase 3: round-synchronized consensus over UDP.
      auto protocol = make_protocol(AlgorithmKind::kWlm, i, kN, 500 + i);
      DesignatedOracle oracle(out.elected);
      RoundSyncConfig cfg;
      cfg.timeout_ms = 30.0;
      cfg.max_rounds = 300;
      cfg.one_way_ms.clear();
      for (ProcessId j = 0; j < kN; ++j) {
        cfg.one_way_ms.push_back(out.ping.one_way_ms(j));
      }
      RoundSyncRunner runner(*protocol, &oracle, transport, kN, cfg);
      out.sync = runner.run();
      out.decision = protocol->decision();
    });
  }
  for (auto& t : threads) t.join();

  // Pings measured something sane on loopback.
  for (ProcessId i = 0; i < kN; ++i) {
    for (ProcessId j = 0; j < kN; ++j) {
      if (i == j) continue;
      EXPECT_GT(results[i].ping.replies[j], 0) << i << "->" << j;
      EXPECT_LT(results[i].ping.avg_rtt_ms[j], 200.0);
    }
  }

  // Everybody decided on the same proposal.
  Value agreed = kNoValue;
  for (const auto& r : results) {
    ASSERT_TRUE(r.sync.decided);
    if (agreed == kNoValue) agreed = r.decision;
    EXPECT_EQ(r.decision, agreed);
  }
  EXPECT_GE(agreed, 500);
  EXPECT_LE(agreed, 500 + kN - 1);
}

TEST(Integration, RepeatedInstancesOverUdp) {
  // State-machine style: several consensus instances back-to-back over
  // the same sockets; every instance must agree and instances must not
  // interfere (fresh protocols per instance).
  constexpr int kN = 3;
  constexpr std::uint16_t kBasePort = 39300;
  constexpr int kInstances = 3;

  std::vector<std::array<Value, kInstances>> decisions(kN);
  std::vector<std::thread> threads;
  for (ProcessId i = 0; i < kN; ++i) {
    threads.emplace_back([&, i] {
      UdpTransport transport(i, kN, kBasePort);
      DesignatedOracle oracle(1);
      for (int inst = 0; inst < kInstances; ++inst) {
        auto protocol =
            make_protocol(AlgorithmKind::kWlm, i, kN, 1000 * (inst + 1) + i);
        RoundSyncConfig cfg;
        cfg.timeout_ms = 25.0;
        cfg.max_rounds = 200;
        cfg.first_round = 1 + inst * 100000;  // disjoint instance ranges
        RoundSyncRunner runner(*protocol, &oracle, transport, kN, cfg);
        const auto r = runner.run();
        decisions[static_cast<std::size_t>(i)][static_cast<std::size_t>(
            inst)] = r.decided ? protocol->decision() : kNoValue;
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int inst = 0; inst < kInstances; ++inst) {
    Value agreed = decisions[0][static_cast<std::size_t>(inst)];
    ASSERT_NE(agreed, kNoValue) << "instance " << inst;
    EXPECT_GE(agreed, 1000 * (inst + 1));
    EXPECT_LT(agreed, 1000 * (inst + 1) + kN);
    for (ProcessId i = 1; i < kN; ++i) {
      EXPECT_EQ(decisions[static_cast<std::size_t>(i)][static_cast<std::size_t>(
                    inst)],
                agreed)
          << "instance " << inst << " node " << i;
    }
  }
}

}  // namespace
}  // namespace timing

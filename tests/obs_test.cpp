// Tests for the observability layer (src/obs): trace event ordering
// invariants, lossless JSONL round-trips, deterministic metric merging,
// a golden trace for a tiny deterministic run, and the acceptance
// property that offline trace analysis reproduces the online harness's
// numbers exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "consensus/factory.hpp"
#include "giraf/engine.hpp"
#include "harness/algorithm_runs.hpp"
#include "harness/measurement.hpp"
#include "models/schedule.hpp"
#include "net/ping.hpp"
#include "net/transport.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/span_analysis.hpp"
#include "obs/trace_analysis.hpp"
#include "obs/trace_config.hpp"
#include "obs/trace_sink.hpp"
#include "oracles/omega.hpp"
#include "roundsync/roundsync.hpp"
#include "sim/sampler.hpp"
#include "smr/client.hpp"

namespace timing {
namespace {

::testing::AssertionResult bits_equal(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  if (ba == bb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in bits";
}

// ---------------------------------------------------------------------
// Sinks.

TEST(TraceSink, NullSinkIsANoOp) {
  // trace_emit on a null sink must be safe (the off-by-default path).
  trace_emit(nullptr, TraceEvent::round_start(1));
}

TEST(TraceSink, BufferSinkCapCountsDrops) {
  BufferSink sink(/*max_events=*/5);
  for (Round k = 1; k <= 10; ++k) sink.record(TraceEvent::round_start(k));
  EXPECT_EQ(sink.events().size(), 5u);
  EXPECT_EQ(sink.dropped(), 5u);
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
  EXPECT_EQ(sink.dropped(), 0u);
}

// ---------------------------------------------------------------------
// JSONL encoding.

std::vector<TraceEvent> one_of_each(int n) {
  return {
      TraceEvent::round_start(1),
      TraceEvent::crash(1, n - 1),
      TraceEvent::msg(EventKind::kMsgSent, 1, 0, 1),
      TraceEvent::msg(EventKind::kMsgTimely, 1, 0, 1),
      TraceEvent::msg(EventKind::kMsgLate, 1, 1, 0, /*delay=*/3),
      TraceEvent::msg(EventKind::kMsgLost, 1, 1, 2),
      TraceEvent::oracle(1, 0, 2),
      TraceEvent::predicates(1, 0b1010),
      TraceEvent::decide(1, 0, 42, decide_rule::kCommitQuorum),
      TraceEvent::round_end(1),
  };
}

TEST(Jsonl, RoundTripIsLossless) {
  const std::vector<TraceEvent> events = one_of_each(4);
  const std::vector<TraceEvent> small = one_of_each(3);
  std::ostringstream out;
  write_trace_header(out, 4);
  write_trial(out, 0, events);
  write_trial(out, 1, small, /*n=*/3);  // per-trial n survives too

  std::istringstream in(out.str());
  const ParsedTrace trace = parse_trace(in);
  EXPECT_EQ(trace.version, kTraceSchemaVersion);
  EXPECT_EQ(trace.n, 4);
  ASSERT_EQ(trace.trials.size(), 2u);
  EXPECT_EQ(trace.trials[0].id, 0);
  EXPECT_EQ(trace.trials[0].n, 0);
  EXPECT_EQ(trace.trials[1].n, 3);
  // Defaulted operator== on the flat struct: every field round-trips.
  EXPECT_EQ(trace.trials[0].events, events);
  EXPECT_EQ(trace.trials[1].events, small);
}

TEST(Jsonl, ReencodingIsByteIdentical) {
  const std::vector<TraceEvent> events = one_of_each(4);
  std::ostringstream a;
  write_trace_header(a, 4);
  write_trial(a, 0, events);
  std::istringstream in(a.str());
  const ParsedTrace trace = parse_trace(in);
  std::ostringstream b;
  write_trace_header(b, trace.n);
  write_trial(b, trace.trials[0].id, trace.trials[0].events);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Jsonl, ParserRejectsMalformedInput) {
  auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return parse_trace(in);
  };
  const std::string header = "{\"schema\":\"timing-trace\",\"v\":1,\"n\":3}\n";
  const std::string trial = "{\"e\":\"trial\",\"id\":0}\n";

  EXPECT_THROW(parse(""), std::runtime_error);  // no header
  EXPECT_THROW(parse("{\"schema\":\"other\",\"v\":1,\"n\":3}\n" + trial),
               std::runtime_error);  // unknown schema
  EXPECT_THROW(parse("{\"schema\":\"timing-trace\",\"v\":99,\"n\":3}\n" +
                     trial),
               std::runtime_error);  // future version
  EXPECT_THROW(parse(header), std::runtime_error);  // no trials
  EXPECT_THROW(parse(header + "{\"e\":\"round_start\",\"k\":1}\n"),
               std::runtime_error);  // event before first trial marker
  EXPECT_THROW(parse(header + trial + "{\"e\":\"warp\",\"k\":1}\n"),
               std::runtime_error);  // unknown event
  EXPECT_THROW(parse(header + trial + "{\"e\":\"crash\",\"k\":1}\n"),
               std::runtime_error);  // missing field
  EXPECT_THROW(
      parse(header + trial + "{\"e\":\"sent\",\"k\":1,\"s\":7,\"d\":0}\n"),
      std::runtime_error);  // pid out of range
  EXPECT_THROW(parse(header + trial +
                     "{\"e\":\"late\",\"k\":1,\"s\":0,\"d\":1,\"delay\":0}\n"),
               std::runtime_error);  // late with no delay
  EXPECT_THROW(parse(header + trial +
                     "{\"e\":\"pred\",\"k\":1,\"sat\":16}\n"),
               std::runtime_error);  // sat mask beyond 4 models
  EXPECT_THROW(parse(header + "{\"e\":\"trial\",\"id\":1,\"n\":9}\n"),
               std::runtime_error);  // per-trial n above header n
}

// ---------------------------------------------------------------------
// Structural validation.

ParsedTrace wrap(std::vector<TraceEvent> events, int n = 3) {
  ParsedTrace trace;
  trace.version = kTraceSchemaVersion;
  trace.n = n;
  TrialTrace t;
  t.id = 0;
  t.events = std::move(events);
  trace.trials.push_back(std::move(t));
  return trace;
}

TEST(ValidateTrace, AcceptsAWellFormedTrial) {
  EXPECT_EQ(validate_trace(wrap({
                TraceEvent::round_start(1),
                TraceEvent::msg(EventKind::kMsgSent, 1, 0, 1),
                TraceEvent::msg(EventKind::kMsgTimely, 1, 0, 1),
                TraceEvent::predicates(1, 0b0001),
                TraceEvent::round_end(1),
                TraceEvent::round_start(2),
                TraceEvent::decide(2, 0, 7, decide_rule::kForwarded),
                TraceEvent::round_end(2),
            })),
            "");
}

TEST(ValidateTrace, CatchesOrderingViolations) {
  // Round numbers must strictly increase.
  EXPECT_NE(validate_trace(wrap({
                TraceEvent::round_start(2),
                TraceEvent::round_end(2),
                TraceEvent::round_start(2),
                TraceEvent::round_end(2),
            })),
            "");
  // Events outside any round.
  EXPECT_NE(validate_trace(wrap({TraceEvent::predicates(1, 1)})), "");
  // Event round must match the open round.
  EXPECT_NE(validate_trace(wrap({
                TraceEvent::round_start(1),
                TraceEvent::predicates(2, 1),
                TraceEvent::round_end(1),
            })),
            "");
  // Phases may not go backwards (a send after the predicate eval).
  EXPECT_NE(validate_trace(wrap({
                TraceEvent::round_start(1),
                TraceEvent::predicates(1, 1),
                TraceEvent::msg(EventKind::kMsgSent, 1, 0, 1),
                TraceEvent::round_end(1),
            })),
            "");
  // In a trial that records sends, a delivery needs a preceding send.
  EXPECT_NE(validate_trace(wrap({
                TraceEvent::round_start(1),
                TraceEvent::msg(EventKind::kMsgSent, 1, 0, 1),
                TraceEvent::msg(EventKind::kMsgTimely, 1, 0, 1),
                TraceEvent::msg(EventKind::kMsgTimely, 1, 2, 1),
                TraceEvent::round_end(1),
            })),
            "");
  // A process decides at most once.
  EXPECT_NE(validate_trace(wrap({
                TraceEvent::round_start(1),
                TraceEvent::decide(1, 0, 7, decide_rule::kForwarded),
                TraceEvent::decide(1, 0, 7, decide_rule::kForwarded),
                TraceEvent::round_end(1),
            })),
            "");
  // An open round must be closed.
  EXPECT_NE(validate_trace(wrap({TraceEvent::round_start(1)})), "");
}

// ---------------------------------------------------------------------
// Engine + protocol wiring, and the golden trace.

struct WlmRun {
  BufferSink sink;
  EngineStats stats;
  Round decided = -1;
  Round engine_global = -1;
};

WlmRun tiny_wlm_run() {
  ScheduleConfig sched;
  sched.n = 3;
  sched.model = TimingModel::kWlm;
  sched.leader = 0;
  sched.gsr = 1;
  sched.seed = 2026;
  ScheduleSampler sampler(sched);

  auto protocols = make_group(AlgorithmKind::kWlm, {10, 20, 30});
  auto oracle = std::make_shared<DesignatedOracle>(0);
  RoundEngine engine(std::move(protocols), oracle);
  WlmRun out;
  engine.set_trace_sink(&out.sink);
  out.decided = engine.run(sampler, 50);
  out.stats = engine.stats();
  out.engine_global = engine.global_decision_round();
  return out;
}

// The full expected trace of the deterministic 3-process <>WLM run
// above: Algorithm 2 with a stable leader from round 1. The leader
// (process 0) decides in round 3 by commit quorum; the others decide in
// round 4 on the forwarded DECIDE. Any change to engine emission order,
// protocol decide paths or the JSONL encoding shows up here.
constexpr const char* kGoldenWlmTrace =
    R"({"schema":"timing-trace","v":1,"n":3}
{"e":"trial","id":0}
{"e":"round_start","k":1}
{"e":"sent","k":1,"s":0,"d":1}
{"e":"timely","k":1,"s":0,"d":1}
{"e":"sent","k":1,"s":0,"d":2}
{"e":"timely","k":1,"s":0,"d":2}
{"e":"sent","k":1,"s":1,"d":0}
{"e":"timely","k":1,"s":1,"d":0}
{"e":"sent","k":1,"s":2,"d":0}
{"e":"late","k":1,"s":2,"d":0,"delay":1}
{"e":"oracle","k":1,"p":0,"ld":0}
{"e":"oracle","k":1,"p":1,"ld":0}
{"e":"oracle","k":1,"p":2,"ld":0}
{"e":"round_end","k":1}
{"e":"round_start","k":2}
{"e":"sent","k":2,"s":0,"d":1}
{"e":"timely","k":2,"s":0,"d":1}
{"e":"sent","k":2,"s":0,"d":2}
{"e":"timely","k":2,"s":0,"d":2}
{"e":"sent","k":2,"s":1,"d":0}
{"e":"timely","k":2,"s":1,"d":0}
{"e":"sent","k":2,"s":2,"d":0}
{"e":"timely","k":2,"s":2,"d":0}
{"e":"oracle","k":2,"p":0,"ld":0}
{"e":"oracle","k":2,"p":1,"ld":0}
{"e":"oracle","k":2,"p":2,"ld":0}
{"e":"round_end","k":2}
{"e":"round_start","k":3}
{"e":"sent","k":3,"s":0,"d":1}
{"e":"timely","k":3,"s":0,"d":1}
{"e":"sent","k":3,"s":0,"d":2}
{"e":"timely","k":3,"s":0,"d":2}
{"e":"sent","k":3,"s":1,"d":0}
{"e":"timely","k":3,"s":1,"d":0}
{"e":"sent","k":3,"s":2,"d":0}
{"e":"late","k":3,"s":2,"d":0,"delay":1}
{"e":"oracle","k":3,"p":0,"ld":0}
{"e":"decide","k":3,"p":0,"v":20,"rule":2}
{"e":"oracle","k":3,"p":1,"ld":0}
{"e":"oracle","k":3,"p":2,"ld":0}
{"e":"round_end","k":3}
{"e":"round_start","k":4}
{"e":"sent","k":4,"s":0,"d":1}
{"e":"timely","k":4,"s":0,"d":1}
{"e":"sent","k":4,"s":0,"d":2}
{"e":"timely","k":4,"s":0,"d":2}
{"e":"sent","k":4,"s":1,"d":0}
{"e":"timely","k":4,"s":1,"d":0}
{"e":"sent","k":4,"s":2,"d":0}
{"e":"late","k":4,"s":2,"d":0,"delay":1}
{"e":"oracle","k":4,"p":0,"ld":0}
{"e":"oracle","k":4,"p":1,"ld":0}
{"e":"decide","k":4,"p":1,"v":20,"rule":1}
{"e":"oracle","k":4,"p":2,"ld":0}
{"e":"decide","k":4,"p":2,"v":20,"rule":1}
{"e":"round_end","k":4}
)";

TEST(EngineTrace, GoldenTinyWlmRun) {
  WlmRun run = tiny_wlm_run();
  EXPECT_EQ(run.decided, 4);
  std::ostringstream out;
  write_trace_header(out, 3);
  write_trial(out, 0, run.sink.events());
  EXPECT_EQ(out.str(), kGoldenWlmTrace);
}

TEST(EngineTrace, IsStructurallyValidAndMatchesEngineStats) {
  WlmRun run = tiny_wlm_run();
  ParsedTrace trace = wrap(run.sink.events());
  EXPECT_EQ(validate_trace(trace), "");

  // Satellite cross-check: the engine's (previously write-only) stats
  // are exposed and agree with the trace event counts exactly.
  const TrialSummary s =
      summarize_trial(trace.trials[0], 3, {3, 3, 4, 5});
  EXPECT_EQ(s.totals.sent, run.stats.messages_sent);
  EXPECT_EQ(s.totals.timely, run.stats.timely_deliveries);
  EXPECT_EQ(s.totals.late, run.stats.late_messages);
  EXPECT_EQ(s.totals.lost, run.stats.lost_messages);
  EXPECT_EQ(s.totals.sent, s.totals.timely + s.totals.late + s.totals.lost);
  // Realized arrivals can lag the sampled fates (messages still in
  // flight when the run ends) but never exceed them.
  EXPECT_LE(run.stats.late_arrivals, run.stats.late_messages);

  // Decide events mirror the engine's decision accounting.
  ASSERT_EQ(s.decides.size(), 3u);
  for (const TraceEvent& d : s.decides) EXPECT_EQ(d.value, 20);
  EXPECT_EQ(s.global_decision_round, run.engine_global);
  EXPECT_EQ(s.global_decision_round, run.decided);

  // The stable leader yields one unbroken leader-stability interval.
  ASSERT_EQ(s.leader_spans.size(), 1u);
  EXPECT_EQ(s.leader_spans[0], (LeaderSpan{1, 4, 0}));
}

TEST(EngineTrace, CrashesAreRecorded) {
  ScheduleConfig sched;
  sched.n = 5;
  sched.model = TimingModel::kWlm;
  sched.leader = 0;
  sched.gsr = 6;
  sched.seed = 11;
  sched.crash_rounds = {0, 0, 3, 0, 0};
  ScheduleSampler sampler(sched);

  auto protocols = make_group(AlgorithmKind::kWlm, {1, 2, 3, 4, 5});
  auto oracle = std::make_shared<DesignatedOracle>(0);
  RoundEngine engine(std::move(protocols), oracle);
  engine.crash_at(2, 3);
  BufferSink sink;
  engine.set_trace_sink(&sink);
  engine.run(sampler, 60);

  ParsedTrace trace = wrap(sink.events(), 5);
  EXPECT_EQ(validate_trace(trace), "");
  const TrialSummary s =
      summarize_trial(trace.trials[0], 5, {3, 3, 4, 5});
  ASSERT_EQ(s.crashes.size(), 1u);
  EXPECT_EQ(s.crashes[0].proc, 2);
  EXPECT_EQ(s.crashes[0].round, 3);
  // The crashed process neither sends nor decides from round 3 on.
  for (const TraceEvent& e : trace.trials[0].events) {
    if (e.kind == EventKind::kMsgSent && e.src == 2) {
      EXPECT_LT(e.round, 3);
    }
    if (e.kind == EventKind::kDecide) {
      EXPECT_NE(e.proc, 2);
    }
  }
}

TEST(AlgorithmRuns, EngineStatsAccessorCrossChecks) {
  AlgorithmRunConfig cfg;
  cfg.kind = AlgorithmKind::kWlm;
  cfg.schedule.n = 4;
  cfg.schedule.model = TimingModel::kWlm;
  cfg.schedule.leader = 1;
  cfg.schedule.gsr = 3;
  cfg.schedule.seed = 77;
  cfg.proposals = {1, 2, 3, 4};
  CountingSink sink;
  cfg.trace = &sink;
  const AlgorithmRunResult res = run_algorithm(cfg);
  EXPECT_TRUE(res.all_decided);
  // The new accessor agrees with the legacy total and balances exactly.
  EXPECT_EQ(res.engine.messages_sent, res.total_messages);
  EXPECT_EQ(res.engine.messages_sent,
            res.engine.timely_deliveries + res.engine.late_messages +
                res.engine.lost_messages);
  EXPECT_LE(res.engine.late_arrivals, res.engine.late_messages);
  EXPECT_GT(sink.count(), 0u);
}

// ---------------------------------------------------------------------
// measure_runs: offline analysis reproduces the online numbers.

constexpr std::array<int, kTraceNumModels> kNeeded{3, 3, 4, 5};

std::vector<RunMeasurement> traced_sweep(std::ostream* trace_out,
                                         MetricsRegistry* metrics, int n,
                                         int num_runs, int rounds) {
  MeasureObs obs;
  obs.trace_out = trace_out;
  obs.metrics = metrics;
  return measure_runs(
      num_runs,
      [&](int run) -> std::unique_ptr<TimelinessSampler> {
        return std::make_unique<IidTimelinessSampler>(
            n, 0.85, substream_seed(505, static_cast<std::uint64_t>(run)));
      },
      rounds, /*leader=*/0, obs);
}

TEST(MeasureRunsTrace, OfflineSummaryMatchesOnlineHarnessExactly) {
  const int n = 5, num_runs = 6, rounds = 120;
  std::ostringstream out;
  const auto ms = traced_sweep(&out, nullptr, n, num_runs, rounds);

  std::istringstream in(out.str());
  const ParsedTrace trace = parse_trace(in);
  EXPECT_EQ(validate_trace(trace), "");
  const TraceSummary summary = summarize_trace(trace, kNeeded);
  ASSERT_EQ(summary.trials.size(), static_cast<std::size_t>(num_runs));

  for (int run = 0; run < num_runs; ++run) {
    const RunMeasurement& online = ms[static_cast<std::size_t>(run)];
    const TrialSummary& offline =
        summary.trials[static_cast<std::size_t>(run)];
    EXPECT_EQ(offline.pred_rounds, rounds);
    EXPECT_EQ(offline.totals.timely, online.messages_timely);
    EXPECT_EQ(offline.totals.late, online.messages_late);
    EXPECT_EQ(offline.totals.lost, online.messages_lost);
    for (int m = 0; m < kTraceNumModels; ++m) {
      const auto mi = static_cast<std::size_t>(m);
      // P_M incidence: exact, down to the last bit.
      EXPECT_TRUE(bits_equal(offline.incidence(m),
                             online.incidence(static_cast<TimingModel>(m))));
      // Rounds until the global-decision conditions hold: the offline
      // first_window must equal the online rounds_until_conditions.
      const DecisionWindow w =
          rounds_until_conditions(online.sat[mi], 0, kNeeded[mi]);
      if (w.censored) {
        EXPECT_EQ(offline.first_window[mi], -1) << "model " << m;
      } else {
        EXPECT_EQ(static_cast<double>(offline.first_window[mi]), w.rounds)
            << "model " << m;
      }
    }
  }
}

TEST(MeasureRunsTrace, BytesAndMetricsAreThreadCountInvariant) {
  const int n = 4, num_runs = 8, rounds = 60;
  std::string base_bytes;
  MetricsRegistry base_metrics;
  {
    ScopedThreads serial(1);
    std::ostringstream out;
    traced_sweep(&out, &base_metrics, n, num_runs, rounds);
    base_bytes = out.str();
  }
  for (int threads : {2, 8}) {
    ScopedThreads st(threads);
    std::ostringstream out;
    MetricsRegistry metrics;
    traced_sweep(&out, &metrics, n, num_runs, rounds);
    EXPECT_EQ(base_bytes, out.str()) << "threads=" << threads;
    EXPECT_EQ(base_metrics.counters(), metrics.counters());
    ASSERT_EQ(base_metrics.stats().size(), metrics.stats().size());
    auto it = metrics.stats().begin();
    for (const auto& [name, stat] : base_metrics.stats()) {
      EXPECT_EQ(name, it->first);
      EXPECT_EQ(stat.count(), it->second.count());
      EXPECT_TRUE(bits_equal(stat.mean(), it->second.mean()));
      EXPECT_TRUE(bits_equal(stat.variance(), it->second.variance()));
      ++it;
    }
    // Wall-clock phase timers are the documented exception: present in
    // both, but their values are not compared.
    EXPECT_EQ(base_metrics.timers().size(), metrics.timers().size());
  }
}

TEST(MeasureRunsTrace, HonoursTimingTraceEnvKnob) {
  const std::string path = "obs_test_env_trace.jsonl";
  ::setenv("TIMING_TRACE", path.c_str(), 1);
  traced_sweep(nullptr, nullptr, 3, 2, 20);
  ::unsetenv("TIMING_TRACE");
  const ParsedTrace trace = parse_trace_file(path);
  EXPECT_EQ(trace.n, 3);
  EXPECT_EQ(trace.trials.size(), 2u);
  EXPECT_EQ(validate_trace(trace), "");
  std::remove(path.c_str());
}

TEST(MeasureRunsTrace, MetricsCountersBalance) {
  MetricsRegistry metrics;
  const int n = 4, num_runs = 3, rounds = 50;
  const auto ms = traced_sweep(nullptr, &metrics, n, num_runs, rounds);
  EXPECT_EQ(metrics.counter("rounds"), num_runs * rounds);
  long long timely = 0, late = 0, lost = 0, total = 0;
  for (const RunMeasurement& m : ms) {
    timely += m.messages_timely;
    late += m.messages_late;
    lost += m.messages_lost;
    total += m.messages_total;
  }
  EXPECT_EQ(metrics.counter("messages.timely"), timely);
  EXPECT_EQ(metrics.counter("messages.late"), late);
  EXPECT_EQ(metrics.counter("messages.lost"), lost);
  EXPECT_EQ(metrics.counter("messages.total"), total);
  EXPECT_EQ(total, timely + late + lost);
  EXPECT_EQ(metrics.stats().at("run.timely_fraction").count(), num_runs);
  // Phase timers recorded both phases for every round.
  EXPECT_EQ(metrics.timers().at("phase.sample").count, num_runs * rounds);
  EXPECT_EQ(metrics.timers().at("phase.predicates").count,
            num_runs * rounds);
}

// ---------------------------------------------------------------------
// Metrics registry mechanics.

TEST(Metrics, MergeIsExactForCountersAndHistograms) {
  MetricsRegistry a, b;
  a.inc("x", 2);
  b.inc("x", 3);
  b.inc("y");
  a.histogram("h", 0.0, 10.0, 5).add(1.0);
  b.histogram("h", 0.0, 10.0, 5).add(9.0);
  a.observe("s", 1.5);
  b.observe("s", 2.5);
  a.merge(b);
  EXPECT_EQ(a.counter("x"), 5);
  EXPECT_EQ(a.counter("y"), 1);
  EXPECT_EQ(a.counter("absent"), 0);
  EXPECT_EQ(a.histograms().at("h").total(), 2u);
  EXPECT_EQ(a.stats().at("s").count(), 2u);
  EXPECT_FALSE(a.to_string().empty());
  a.clear();
  EXPECT_TRUE(a.empty());
}

TEST(Metrics, PhaseTimerIsNoOpOnNullRegistry) {
  { PhaseTimer t(nullptr, "phase.x"); }
  MetricsRegistry reg;
  { PhaseTimer t(&reg, "phase.x"); }
  EXPECT_EQ(reg.timers().at("phase.x").count, 1);
}

// ---------------------------------------------------------------------
// Diff mode.

TEST(DiffTraces, ReportsFirstDivergence) {
  WlmRun run = tiny_wlm_run();
  ParsedTrace a = wrap(run.sink.events());
  ParsedTrace b = a;
  EXPECT_TRUE(diff_traces(a, b).identical);

  // Flip one message fate in trial 0.
  for (TraceEvent& e : b.trials[0].events) {
    if (e.kind == EventKind::kMsgTimely) {
      e.kind = EventKind::kMsgLost;
      break;
    }
  }
  const TraceDiff d = diff_traces(a, b);
  EXPECT_FALSE(d.identical);
  EXPECT_NE(d.report.find("first divergence"), std::string::npos);
}

// Writes a trace for the ctest-level `trace_tool validate` run (see
// tests/CMakeLists.txt: FIXTURES_SETUP obs_trace); the CLI must accept
// what the library emits.
TEST(TraceToolFixture, WritesTraceForCliValidation) {
  WlmRun run = tiny_wlm_run();
  std::ofstream out("obs_cli_trace.jsonl", std::ios::trunc);
  ASSERT_TRUE(out.good());
  write_trace_header(out, 3);
  write_trial(out, 0, run.sink.events());
}

// ---------------------------------------------------------------------
// TraceConfig.

TEST(TraceConfig, ReadsEnvironment) {
  ::unsetenv("TIMING_TRACE");
  EXPECT_FALSE(TraceConfig::from_env().enabled());
  ::setenv("TIMING_TRACE", "/tmp/x.jsonl", 1);
  ::setenv("TIMING_TRACE_MAX_EVENTS", "123", 1);
  const TraceConfig cfg = TraceConfig::from_env();
  EXPECT_TRUE(cfg.enabled());
  EXPECT_EQ(cfg.path, "/tmp/x.jsonl");
  EXPECT_EQ(cfg.max_events_per_trial, 123u);
  ::unsetenv("TIMING_TRACE");
  ::unsetenv("TIMING_TRACE_MAX_EVENTS");
}

// ---------------------------------------------------------------------
// Net-layer drop paths (satellite: transports share the TraceSink).

/// Latency model that loses every message.
class BlackholeModel final : public LatencyModel {
 public:
  explicit BlackholeModel(int n) : n_(n) {}
  int n() const noexcept override { return n_; }
  void begin_round(Round) override {}
  double sample_ms(ProcessId, ProcessId) override {
    return std::numeric_limits<double>::infinity();
  }

 private:
  int n_;
};

TEST(NetTrace, HubLossSurfacesAsLostEvent) {
  auto hub = std::make_shared<InProcHub>(2);
  hub->set_latency_model(std::make_unique<BlackholeModel>(2), 10.0);
  InProcTransport t0(hub, 0);
  BufferSink sink;
  t0.set_trace_sink(&sink);
  EXPECT_TRUE(t0.send(1, {1, 2, 3}));  // locally fine, wire eats it
  ASSERT_EQ(sink.events().size(), 1u);
  const TraceEvent& e = sink.events()[0];
  EXPECT_EQ(e.kind, EventKind::kMsgLost);
  EXPECT_EQ(e.round, 0);  // transport-level, below the round abstraction
  EXPECT_EQ(e.src, 0);
  EXPECT_EQ(e.dst, 1);
}

TEST(NetTrace, PingDropsMalformedFrames) {
  auto hub = std::make_shared<InProcHub>(2);
  InProcTransport t0(hub, 0);
  InProcTransport t1(hub, 1);
  BufferSink sink;
  t0.set_trace_sink(&sink);
  // Node 1 sends garbage; node 0's probe loop must drop (and record) it.
  t1.send(0, {0xde, 0xad, 0xbe, 0xef});
  PingConfig cfg;
  cfg.pings_per_peer = 1;
  cfg.probe_interval = std::chrono::milliseconds(2);
  cfg.total_duration = std::chrono::milliseconds(50);
  measure_peer_rtts(t0, 2, cfg);
  bool saw_drop = false;
  for (const TraceEvent& e : sink.events()) {
    if (e.kind == EventKind::kMsgLost && e.src == 1 && e.dst == 0) {
      saw_drop = true;
    }
  }
  EXPECT_TRUE(saw_drop);
}

// ---------------------------------------------------------------------
// LogHistogram: the latency accumulator behind op.commit_ns/op.queue_ns.

TEST(LogHistogram, SmallValuesAreExactAndNegativesClampToZero) {
  LogHistogram h;
  for (long long v = 0; v < LogHistogram::kSub; ++v) h.record(v);
  h.record(-17);  // clamps to 0
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(LogHistogram::kSub + 1));
  EXPECT_EQ(h.max(), LogHistogram::kSub - 1);
  // Below kSub every bucket holds exactly one value, so quantiles are
  // exact: the median of {0, 0, 1, ..., 63} is 31.
  EXPECT_EQ(h.quantile(0.5), 31);
  EXPECT_EQ(h.quantile(1.0), h.max());
  EXPECT_EQ(h.quantile(0.0), 0);
}

TEST(LogHistogram, QuantileReturnsBucketLowerBound) {
  LogHistogram h;
  const long long v = 123456789;
  h.record(v);
  // One observation: every quantile is that value's deterministic
  // bucket representative, within the documented ~3% of the true value
  // -- except the max-covering quantile, which is exact.
  const long long lo = LogHistogram::bucket_lo(LogHistogram::bucket_of(
      static_cast<unsigned long long>(v)));
  EXPECT_LE(lo, v);
  EXPECT_GE(lo, static_cast<long long>(static_cast<double>(v) * 0.96));
  EXPECT_EQ(h.quantile(0.5), h.max());  // rank 1 covers the last observation
  EXPECT_EQ(h.quantile(1.0), v);
  EXPECT_EQ(h.sum(), v);
}

TEST(LogHistogram, MergeIsExactlyAssociativeAndEmptySafe) {
  const auto fill = [](LogHistogram& h, std::uint64_t seed) {
    Rng rng(seed);
    for (int i = 0; i < 200; ++i) {
      h.record(static_cast<long long>(rng.uniform_int(1u << 20)));
    }
  };
  LogHistogram a, b, c;
  fill(a, 1);
  fill(b, 2);
  fill(c, 3);
  LogHistogram left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  LogHistogram bc = b;     // a + (b + c)
  bc.merge(c);
  LogHistogram right = a;
  right.merge(bc);
  EXPECT_EQ(left, right);
  // Merging a never-touched histogram is the identity, both ways.
  LogHistogram empty;
  LogHistogram a2 = a;
  a2.merge(empty);
  EXPECT_EQ(a2, a);
  empty.merge(a);
  EXPECT_EQ(empty, a);
}

// Satellite regression: merging registries where one side's histogram
// was configured but never observed a value must keep counts exact and
// must not disturb the configured shape, in either direction.
TEST(Metrics, MergeWithNeverTouchedHistogramsIsExact) {
  MetricsRegistry touched, untouched;
  touched.histogram("h", 0.0, 10.0, 5).add(3.0);
  untouched.histogram("h", 0.0, 10.0, 5);  // configured, zero observations
  untouched.latency("lat");                // created, zero observations

  MetricsRegistry a = touched;
  a.merge(untouched);
  EXPECT_EQ(a.histograms().at("h"), touched.histograms().at("h"));
  EXPECT_TRUE(a.latencies().at("lat").empty());

  MetricsRegistry b = untouched;
  b.merge(touched);
  EXPECT_EQ(b.histograms().at("h"), touched.histograms().at("h"));

  // Merging into a registry that never saw the name adopts it verbatim.
  MetricsRegistry fresh;
  fresh.merge(touched);
  EXPECT_EQ(fresh.histograms().at("h"), touched.histograms().at("h"));
  touched.latency("lat2").record(42);
  fresh.merge(touched);
  EXPECT_EQ(fresh.latencies().at("lat2"), touched.latencies().at("lat2"));
}

TEST(Metrics, PhaseTimersNest) {
  MetricsRegistry reg;
  {
    PhaseTimer outer(&reg, "phase.outer");
    {
      PhaseTimer inner(&reg, "phase.inner");
    }
    {
      PhaseTimer again(&reg, "phase.inner");  // same phase, nested twice
    }
  }
  EXPECT_EQ(reg.timers().at("phase.outer").count, 1);
  EXPECT_EQ(reg.timers().at("phase.inner").count, 2);
  // The outer interval encloses both inner ones.
  EXPECT_GE(reg.timers().at("phase.outer").ns,
            reg.timers().at("phase.inner").ns);
}

// ---------------------------------------------------------------------
// Span ids and the span/metrics JSONL encoding.

TEST(SpanId, PacksCoordinatesAndLabels) {
  const std::uint64_t id = make_span_id(span_kind::kMsg, 3, 0, 2);
  const SpanIdParts p = split_span_id(id);
  EXPECT_EQ(p.kind, span_kind::kMsg);
  EXPECT_EQ(p.a, 3u);
  EXPECT_EQ(p.b, 0u);
  EXPECT_EQ(p.c, 2u);
  EXPECT_EQ(span_label(id), "msg(k=3,0->2)");
  EXPECT_EQ(span_label(make_span_id(span_kind::kOp, 1, 2)), "op(c=1,rid=2)");
  EXPECT_EQ(span_label(make_span_id(span_kind::kInstance, 4)), "instance(4)");
  EXPECT_EQ(span_label(make_span_id(span_kind::kRound, 7, 1)),
            "round(k=7,at=1)");
  // Distinct kinds with equal coordinates never collide, and the id
  // stays within the positive range of the JSONL integer encoding.
  EXPECT_NE(id, make_span_id(span_kind::kRound, 3, 0, 2));
  EXPECT_GT(static_cast<long long>(make_span_id(span_kind::kMsg, 0xFFFFFFF,
                                                0xFFFF, 0xFFFF)),
            0);
}

std::vector<TraceEvent> span_one_of_each() {
  const std::uint64_t op = make_span_id(span_kind::kOp, 0, 1);
  const std::uint64_t q = make_span_id(span_kind::kQueue, 0, 1);
  const std::uint64_t cm = make_span_id(span_kind::kCommit, 0, 1);
  const std::uint64_t inst = make_span_id(span_kind::kInstance, 0);
  const std::uint64_t rs = make_span_id(span_kind::kRound, 1, 0);
  return {
      TraceEvent::span(span_phase::kBegin, op, 0, span_kind::kOp),
      TraceEvent::span(span_phase::kBegin, q, op, span_kind::kQueue, 0, 10),
      TraceEvent::span(span_phase::kEnd, q, 0, span_kind::kQueue, 0, 25),
      TraceEvent::span(span_phase::kBegin, cm, op, span_kind::kCommit),
      TraceEvent::span(span_phase::kBegin, inst, 0, span_kind::kInstance),
      TraceEvent::span(span_phase::kBegin, rs, inst, span_kind::kRound, 1),
      TraceEvent::span(span_phase::kEnd, rs, 0, span_kind::kRound, 1),
      TraceEvent::span(span_phase::kEnd, inst, 0, span_kind::kInstance),
      TraceEvent::span(span_phase::kCause, cm, inst, span_kind::kCommit),
      TraceEvent::span(span_phase::kEnd, cm, 0, span_kind::kCommit),
      TraceEvent::span(span_phase::kEnd, op, 0, span_kind::kOp),
      TraceEvent::metrics(0, 0, 5, 10, 20, 30, 40, 55),
      TraceEvent::metrics(0, 1, 5, 1, 2, 3, 4, 5),
  };
}

TEST(Jsonl, SpanAndMetricsEventsRoundTripLosslessly) {
  const std::vector<TraceEvent> events = span_one_of_each();
  std::ostringstream out;
  write_trace_header(out, 3);
  write_trial(out, 0, events);
  std::istringstream in(out.str());
  const ParsedTrace trace = parse_trace(in);
  ASSERT_EQ(trace.trials.size(), 1u);
  EXPECT_EQ(trace.trials[0].events, events);
  // Re-encoding is byte-identical (the golden-trace property extends to
  // the span schema).
  std::ostringstream again;
  write_trace_header(again, 3);
  write_trial(again, 0, trace.trials[0].events);
  EXPECT_EQ(out.str(), again.str());
}

/// Runs the strict parser on `text` and returns the error message, or ""
/// when it parsed cleanly — lets the negative tests pin the line number.
std::string parse_error(const std::string& text) {
  std::istringstream in(text);
  try {
    (void)parse_trace(in);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

TEST(Jsonl, SpanLifecycleErrorsAreLineAccurate) {
  const std::string header = "{\"schema\":\"timing-trace\",\"v\":1,\"n\":3}\n";
  const std::string trial = "{\"e\":\"trial\",\"id\":0}\n";
  const std::string begin =
      "{\"e\":\"span\",\"k\":0,\"sp\":5,\"sk\":\"op\",\"sph\":\"begin\"}\n";
  const std::string end =
      "{\"e\":\"span\",\"k\":0,\"sp\":5,\"sk\":\"op\",\"sph\":\"end\"}\n";

  // Lines 1-2 are header and trial marker, so the duplicated begin on
  // line 4 (and so on) must be named exactly.
  EXPECT_NE(parse_error(header + trial + begin + begin)
                .find("trace line 4: duplicate span begin for id 5"),
            std::string::npos);
  EXPECT_NE(parse_error(header + trial + end)
                .find("trace line 3: span end before begin for id 5"),
            std::string::npos);
  EXPECT_NE(parse_error(header + trial + begin + end + end)
                .find("trace line 5: duplicate span end for id 5"),
            std::string::npos);
  // The lifecycle map resets at each trial marker: a begin in trial 0
  // does not license an end in trial 1.
  EXPECT_NE(parse_error(header + trial + begin +
                        "{\"e\":\"trial\",\"id\":1}\n" + end)
                .find("span end before begin"),
            std::string::npos);
  // A cause edge after the cause span ended is legal (commit <- instance
  // edges are emitted after the instance completed).
  const std::string cause =
      "{\"e\":\"span\",\"k\":0,\"sp\":9,\"sk\":\"commit\",\"sph\":\"cause\","
      "\"pa\":5}\n";
  EXPECT_EQ(parse_error(header + trial + begin + end + cause), "");
}

TEST(Jsonl, RejectsMalformedSpanAndMetricsLines) {
  const std::string header = "{\"schema\":\"timing-trace\",\"v\":1,\"n\":3}\n";
  const std::string trial = "{\"e\":\"trial\",\"id\":0}\n";
  const auto bad = [&](const std::string& line, const char* why) {
    const std::string err = parse_error(header + trial + line + "\n");
    EXPECT_NE(err.find("trace line 3"), std::string::npos) << line;
    EXPECT_NE(err.find(why), std::string::npos) << line << "\n  got: " << err;
  };
  bad("{\"e\":\"span\",\"k\":0,\"sk\":\"op\",\"sph\":\"begin\"}",
      "missing field 'sp'");
  bad("{\"e\":\"span\",\"k\":0,\"sp\":0,\"sk\":\"op\",\"sph\":\"begin\"}",
      "span id must be positive");
  bad("{\"e\":\"span\",\"k\":0,\"sp\":5,\"sk\":\"warp\",\"sph\":\"begin\"}",
      "bad or missing span kind 'sk'");
  bad("{\"e\":\"span\",\"k\":0,\"sp\":5,\"sk\":\"op\",\"sph\":\"during\"}",
      "bad or missing span phase 'sph'");
  bad("{\"e\":\"span\",\"k\":0,\"sp\":5,\"sk\":\"op\",\"sph\":\"begin\","
      "\"pa\":0}",
      "span parent must be positive");
  bad("{\"e\":\"span\",\"k\":0,\"sp\":5,\"sk\":\"op\",\"sph\":\"begin\","
      "\"t\":-3}",
      "negative span timestamp");
  bad("{\"e\":\"span\",\"k\":0,\"sp\":5,\"sk\":\"commit\",\"sph\":\"cause\"}",
      "cause edge without 'pa'");
  bad("{\"e\":\"metrics\",\"k\":0,\"m\":\"op.bogus_ns\",\"c\":1,\"p50\":1,"
      "\"p90\":1,\"p99\":1,\"p999\":1,\"max\":1}",
      "bad or missing metric name 'm'");
  bad("{\"e\":\"metrics\",\"k\":0,\"m\":\"op.commit_ns\",\"c\":0,\"p50\":1,"
      "\"p90\":1,\"p99\":1,\"p999\":1,\"max\":1}",
      "metrics count must be >= 1");
  bad("{\"e\":\"metrics\",\"k\":0,\"m\":\"op.commit_ns\",\"c\":1,\"p50\":-1,"
      "\"p90\":1,\"p99\":1,\"p999\":1,\"max\":1}",
      "negative metrics quantile");
  bad("{\"e\":\"metrics\",\"k\":0,\"m\":\"op.commit_ns\",\"c\":1,\"p50\":9,"
      "\"p90\":1,\"p99\":1,\"p999\":1,\"max\":1}",
      "metrics quantiles not monotone");
}

TEST(Jsonl, RejectsMalformedGeneralLines) {
  const std::string header = "{\"schema\":\"timing-trace\",\"v\":1,\"n\":3}\n";
  const std::string trial = "{\"e\":\"trial\",\"id\":0}\n";
  // Previously-untested strict-parser paths.
  EXPECT_NE(parse_error(header + header + trial).find("duplicate header"),
            std::string::npos);
  EXPECT_NE(parse_error(header + "round_start k=1\n")
                .find("not a JSON object"),
            std::string::npos);
  EXPECT_NE(parse_error(header + "{\"e\":\"trial\",\"id\":x}\n")
                .find("bad integer for 'id'"),
            std::string::npos);
  EXPECT_NE(parse_error(header + trial + "{\"e\":\"round_start\",\"k\":-1}\n")
                .find("negative round"),
            std::string::npos);
  EXPECT_NE(parse_error(header + trial + "{\"k\":1}\n")
                .find("missing event name"),
            std::string::npos);
  const std::string op_tail =
      ",\"f\":\"read\",\"key\":0,\"id\":0}\n";
  EXPECT_NE(parse_error(header + trial +
                        "{\"e\":\"op\",\"k\":1,\"p\":0,\"ph\":\"zap\"" +
                        op_tail)
                .find("bad or missing op phase 'ph'"),
            std::string::npos);
  EXPECT_NE(parse_error(header + trial +
                        "{\"e\":\"op\",\"k\":1,\"p\":0,\"ph\":\"ok\","
                        "\"f\":\"frob\",\"key\":0,\"id\":0}\n")
                .find("bad or missing op function 'f'"),
            std::string::npos);
  EXPECT_NE(parse_error(header + trial +
                        "{\"e\":\"op\",\"k\":1,\"p\":-1,\"ph\":\"ok\"" +
                        op_tail)
                .find("negative client id"),
            std::string::npos);
  EXPECT_NE(parse_error(header + trial +
                        "{\"e\":\"op\",\"k\":1,\"p\":0,\"ph\":\"ok\","
                        "\"f\":\"read\",\"key\":-2,\"id\":0}\n")
                .find("negative op key"),
            std::string::npos);
  EXPECT_NE(parse_error(header + trial +
                        "{\"e\":\"op\",\"k\":1,\"p\":0,\"ph\":\"ok\","
                        "\"f\":\"read\",\"key\":0,\"id\":-1}\n")
                .find("negative op id"),
            std::string::npos);
  // Blank and comment lines are skipped, not errors.
  EXPECT_EQ(parse_error(header + "\n# a comment\n" + trial +
                        "{\"e\":\"round_start\",\"k\":1}\n"),
            "");
}

TEST(ValidateTrace, EnforcesSpanLifecycleOnStructs) {
  const std::uint64_t id = make_span_id(span_kind::kOp, 0, 1);
  const auto begin = TraceEvent::span(span_phase::kBegin, id, 0, span_kind::kOp);
  const auto end = TraceEvent::span(span_phase::kEnd, id, 0, span_kind::kOp);
  EXPECT_EQ(validate_trace(wrap({begin, end})), "");
  EXPECT_NE(validate_trace(wrap({begin, begin, end})), "");  // dup begin
  EXPECT_NE(validate_trace(wrap({end})), "");                // end first
  EXPECT_NE(validate_trace(wrap({begin, end, end})), "");    // dup end
  TraceEvent zero = begin;
  zero.span_id = 0;
  EXPECT_NE(validate_trace(wrap({zero})), "");
  TraceEvent bad_kind = begin;
  bad_kind.span_kind = span_kind::kNone;
  EXPECT_NE(validate_trace(wrap({bad_kind})), "");
  TraceEvent orphan_cause =
      TraceEvent::span(span_phase::kCause, id, 0, span_kind::kOp);
  EXPECT_NE(validate_trace(wrap({begin, orphan_cause, end})), "");
}

// ---------------------------------------------------------------------
// SpanTracer mechanics and the TIMING_SPANS knob.

TEST(SpanTracer, ModesGateEmissionAndTimestamps) {
  BufferSink sink;
  SpanTracer off(&sink, SpanMode::kOff);
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.begin(1, 0, span_kind::kOp), 0);
  EXPECT_TRUE(sink.events().empty());

  SpanTracer ids(&sink, SpanMode::kIds);
  EXPECT_TRUE(ids.enabled());
  EXPECT_FALSE(ids.timed());
  EXPECT_EQ(ids.begin(1, 0, span_kind::kOp), 0);
  EXPECT_EQ(ids.end(1, span_kind::kOp), 0);
  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events()[0].t_ns, -1);  // ids mode: no timestamps
  sink.clear();

  SpanTracer timed(&sink, SpanMode::kTimed);
  EXPECT_TRUE(timed.timed());
  const long long t0 = timed.begin(2, 0, span_kind::kOp);
  const long long t1 = timed.end(2, span_kind::kOp);
  EXPECT_GE(t0, 0);
  EXPECT_GE(t1, t0);
  ASSERT_EQ(sink.events().size(), 2u);
  // The returned reading IS the recorded one — the property the
  // online-equals-offline latency check stands on.
  EXPECT_EQ(sink.events()[0].t_ns, t0);
  EXPECT_EQ(sink.events()[1].t_ns, t1);

  // Null-sink tracer disables regardless of mode.
  SpanTracer null_sink(nullptr, SpanMode::kTimed);
  EXPECT_FALSE(null_sink.enabled());
}

TEST(SpanTracer, ReadsTimingSpansEnvKnob) {
  ::unsetenv("TIMING_SPANS");
  EXPECT_EQ(span_mode_from_env(), SpanMode::kOff);
  ::setenv("TIMING_SPANS", "ids", 1);
  EXPECT_EQ(span_mode_from_env(), SpanMode::kIds);
  ::setenv("TIMING_SPANS", "timed", 1);
  EXPECT_EQ(span_mode_from_env(), SpanMode::kTimed);
  ::setenv("TIMING_SPANS", "sideways", 1);
  EXPECT_EQ(span_mode_from_env(), SpanMode::kOff);  // warn-once, off
  ::unsetenv("TIMING_SPANS");
  std::uint8_t k = 0;
  EXPECT_TRUE(span_kind_from_string("msg", k));
  EXPECT_EQ(k, span_kind::kMsg);
  EXPECT_FALSE(span_kind_from_string("", k));
}

TEST(SpanTracer, MetricsSnapshotIsTimedModeOnly) {
  MetricsRegistry reg;
  reg.latency("op.commit_ns").record(100);
  reg.latency("op.commit_ns").record(200);

  BufferSink sink;
  SpanTracer ids(&sink, SpanMode::kIds);
  EXPECT_EQ(emit_metrics_snapshot(&ids, reg), 0);  // would break ids bytes
  EXPECT_TRUE(sink.events().empty());

  SpanTracer timed(&sink, SpanMode::kTimed);
  // Only op.commit_ns has data, so exactly one line appears.
  EXPECT_EQ(emit_metrics_snapshot(&timed, reg, /*seq=*/2), 1);
  ASSERT_EQ(sink.events().size(), 1u);
  const TraceEvent& e = sink.events()[0];
  EXPECT_EQ(e.kind, EventKind::kMetricsSnapshot);
  EXPECT_EQ(e.round, 2);
  EXPECT_EQ(e.op_key, 0);  // kSpanMetricNames index of op.commit_ns
  const LogHistogram& h = *reg.find_latency("op.commit_ns");
  EXPECT_EQ(e.op_id, static_cast<long long>(h.count()));
  EXPECT_EQ(e.value, h.quantile(0.50));
  EXPECT_EQ(static_cast<long long>(e.span_id), h.max());
}

// ---------------------------------------------------------------------
// The live SMR path: client-harness spans, thread-count determinism and
// the acceptance property that offline latency rebuilds are EQUAL to
// the online registry.

/// Fault-free instance environments (the history_test idiom): a
/// conforming schedule from round 1, independently seeded per instance.
InstanceEnvFactory span_env(const SmrClientConfig& cfg, std::uint64_t seed) {
  const int n = cfg.n;
  const ProcessId leader = cfg.leader;
  return [n, leader, seed](int index) {
    InstanceEnv env;
    ScheduleConfig scfg;
    scfg.n = n;
    scfg.model = TimingModel::kWlm;
    scfg.leader = leader;
    scfg.gsr = 1;
    scfg.seed = substream_seed(seed, static_cast<std::uint64_t>(index));
    env.sampler = std::make_unique<ScheduleSampler>(scfg);
    return env;
  };
}

struct SpannedRun {
  SmrClientReport rep;
  MetricsRegistry metrics;
  std::vector<TraceEvent> events;  ///< ops, then spans, then snapshots
  int n = 0;
};

/// One client-harness trial with span tracing attached, events assembled
/// the way runners_history.cpp assembles them.
SpannedRun spanned_clients_run(SpanMode mode, std::uint64_t seed) {
  SpannedRun out;
  SmrClientConfig cfg;
  cfg.seed = seed;
  out.n = cfg.n;
  BufferSink sink;
  SpanTracer tracer(&sink, mode);
  cfg.spans = &tracer;
  cfg.metrics = &out.metrics;
  out.rep = run_smr_clients(cfg, span_env(cfg, substream_seed(seed, 99)));
  if (mode == SpanMode::kTimed) emit_metrics_snapshot(&tracer, out.metrics);
  out.events = out.rep.events;
  out.events.insert(out.events.end(), sink.events().begin(),
                    sink.events().end());
  return out;
}

/// Serialize + strict-parse one SpannedRun into a single-trial trace.
ParsedTrace reparse(const SpannedRun& run) {
  std::ostringstream out;
  write_trace_header(out, run.n);
  write_trial(out, 0, run.events);
  std::istringstream in(out.str());
  return parse_trace(in);
}

TEST(SpanTrace, ClientOpsFormCausalTreesInIdsMode) {
  const SpannedRun run = spanned_clients_run(SpanMode::kIds, 3);
  ASSERT_GT(run.rep.ops_ok, 0);
  // ids mode records nothing into the latency registry.
  EXPECT_TRUE(run.metrics.latencies().empty());

  const ParsedTrace trace = reparse(run);  // lifecycle-checked by parsing
  EXPECT_EQ(validate_trace(trace), "");
  const SpanIndex idx = index_spans(trace.trials[0]);
  EXPECT_FALSE(idx.timed);

  int ops = 0, commits_with_cause = 0;
  for (const auto& [id, rec] : idx.spans) {
    const SpanIdParts p = split_span_id(id);
    if (p.kind == span_kind::kOp) {
      ++ops;
      EXPECT_EQ(rec.parent, 0u);  // op spans are roots
      // Every op owns its queue child, keyed by the same (client, rid).
      const SpanRecord* q =
          idx.find(make_span_id(span_kind::kQueue, p.a, p.b));
      ASSERT_NE(q, nullptr) << span_label(id);
      EXPECT_EQ(q->parent, id);
    } else if (p.kind == span_kind::kCommit && !rec.causes.empty()) {
      ++commits_with_cause;
      // Commit spans are caused by the consensus instances the op was
      // proposed into — never by anything else.
      for (const std::uint64_t c : rec.causes) {
        EXPECT_EQ(split_span_id(c).kind, span_kind::kInstance)
            << span_label(id) << " <- " << span_label(c);
        EXPECT_NE(idx.find(c), nullptr);
      }
    }
  }
  EXPECT_GT(ops, 0);
  EXPECT_GT(commits_with_cause, 0);
  EXPECT_FALSE(render_span_trees(trace.trials[0], 3).empty());
}

TEST(SpanTrace, IdsModeBytesAreThreadCountInvariant) {
  const auto spanned_bytes = [] {
    const auto trials = run_trials<std::string>(6, [](std::size_t t) {
      SmrClientConfig cfg;
      cfg.seed = substream_seed(0x5eed, t);
      BufferSink sink;
      SpanTracer tracer(&sink, SpanMode::kIds);
      MetricsRegistry metrics;
      cfg.spans = &tracer;
      cfg.metrics = &metrics;
      const SmrClientReport rep =
          run_smr_clients(cfg, span_env(cfg, substream_seed(cfg.seed, 99)));
      std::vector<TraceEvent> events = rep.events;
      events.insert(events.end(), sink.events().begin(),
                    sink.events().end());
      std::ostringstream out;
      write_trial(out, static_cast<int>(t), events);
      return out.str();
    });
    std::string all;
    for (const std::string& s : trials) all += s;
    return all;
  };
  std::string base;
  {
    ScopedThreads serial(1);
    base = spanned_bytes();
  }
  ASSERT_NE(base.find("\"e\":\"span\""), std::string::npos);
  for (int threads : {2, 8}) {
    ScopedThreads st(threads);
    EXPECT_EQ(base, spanned_bytes()) << "threads=" << threads;
  }
}

// The PR's acceptance property: the percentiles trace_tool rebuilds from
// the recorded trace alone are the SAME numbers the online harness
// reported — histogram-for-histogram equality, not approximation.
TEST(SpanTrace, OfflineLatencyRebuildEqualsOnlineRegistryExactly) {
  const SpannedRun run = spanned_clients_run(SpanMode::kTimed, 4);
  ASSERT_GT(run.rep.ops_ok, 0);
  const LogHistogram* commit = run.metrics.find_latency("op.commit_ns");
  const LogHistogram* queue = run.metrics.find_latency("op.queue_ns");
  ASSERT_NE(commit, nullptr);
  ASSERT_NE(queue, nullptr);
  // Every ok op recorded exactly one commit-latency observation.
  EXPECT_EQ(commit->count(), static_cast<std::uint64_t>(run.rep.ops_ok));
  EXPECT_GE(queue->count(), commit->count());

  const ParsedTrace trace = reparse(run);
  EXPECT_EQ(validate_trace(trace), "");
  const SpanIndex idx = index_spans(trace.trials[0]);
  EXPECT_TRUE(idx.timed);

  const SpanLatencies lat = rebuild_latencies(trace.trials[0]);
  EXPECT_EQ(lat.commit, *commit);
  EXPECT_EQ(lat.queue, *queue);
  EXPECT_EQ(latency_row(lat.commit), latency_row(*commit));

  // The snapshot rows embedded in the trace agree with both.
  const std::map<int, LatencyRow> rows = snapshot_rows(trace.trials[0]);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows.at(0), latency_row(*commit));
  EXPECT_EQ(rows.at(1), latency_row(*queue));

  // And the critpath report quotes the same percentile line.
  const std::string report = render_critpath(trace.trials[0], 3);
  std::ostringstream want;
  want << "op.commit_ns: n=" << commit->count();
  EXPECT_NE(report.find(want.str()), std::string::npos) << report;
}

// ---------------------------------------------------------------------
// The live roundsync path: message spans ride the wire and come back as
// causality edges on the receiving node's round spans.

TEST(RoundSyncSpans, LiveMessageSpansCarryCausality) {
  constexpr int kNodes = 3;
  auto hub = std::make_shared<InProcHub>(kNodes);
  std::vector<BufferSink> sinks(kNodes);
  std::vector<RoundSyncResult> results(kNodes);
  std::vector<std::thread> threads;
  for (ProcessId i = 0; i < kNodes; ++i) {
    threads.emplace_back([&, i] {
      auto protocol = make_protocol(AlgorithmKind::kWlm, i, kNodes, 100 + i);
      DesignatedOracle oracle(0);
      InProcTransport transport(hub, i);
      SpanTracer tracer(&sinks[static_cast<std::size_t>(i)], SpanMode::kIds);
      RoundSyncConfig cfg;
      cfg.timeout_ms = 25.0;
      cfg.max_rounds = 200;
      cfg.spans = &tracer;
      cfg.parent_span = make_span_id(span_kind::kInstance, 0);
      RoundSyncRunner runner(*protocol, &oracle, transport, kNodes, cfg);
      results[static_cast<std::size_t>(i)] = runner.run();
    });
  }
  for (std::thread& t : threads) t.join();

  for (ProcessId i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(results[static_cast<std::size_t>(i)].decided) << "node " << i;
    // Each node's stream must be a valid single-trial span trace.
    std::ostringstream out;
    write_trace_header(out, kNodes);
    write_trial(out, i, sinks[static_cast<std::size_t>(i)].events());
    std::istringstream in(out.str());
    const ParsedTrace trace = parse_trace(in);
    EXPECT_EQ(validate_trace(trace), "");

    const SpanIndex idx = index_spans(trace.trials[0]);
    int rounds = 0, msgs = 0, causes = 0;
    for (const auto& [id, rec] : idx.spans) {
      const SpanIdParts p = split_span_id(id);
      if (p.kind == span_kind::kRound) {
        ++rounds;
        EXPECT_EQ(rec.parent, make_span_id(span_kind::kInstance, 0));
        EXPECT_EQ(p.b, static_cast<std::uint64_t>(i));  // our own rounds
        for (const std::uint64_t c : rec.causes) {
          ++causes;
          // A round's causes are the arriving envelopes' message spans:
          // msg ids pack (round, src, dst), so dst must be us and src a
          // peer — the id the SENDER minted crossed the wire intact.
          const SpanIdParts cp = split_span_id(c);
          EXPECT_EQ(cp.kind, span_kind::kMsg);
          EXPECT_EQ(cp.c, static_cast<std::uint64_t>(i));
          EXPECT_NE(cp.b, static_cast<std::uint64_t>(i));
        }
      } else if (p.kind == span_kind::kMsg) {
        ++msgs;
        // We only begin/end msg spans for envelopes we sent.
        EXPECT_EQ(p.b, static_cast<std::uint64_t>(i));
        EXPECT_TRUE(rec.complete());
      }
    }
    EXPECT_GT(rounds, 0) << "node " << i;
    EXPECT_GT(msgs, 0) << "node " << i;
    EXPECT_GT(causes, 0) << "node " << i;
  }
}

}  // namespace
}  // namespace timing

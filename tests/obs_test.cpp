// Tests for the observability layer (src/obs): trace event ordering
// invariants, lossless JSONL round-trips, deterministic metric merging,
// a golden trace for a tiny deterministic run, and the acceptance
// property that offline trace analysis reproduces the online harness's
// numbers exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "consensus/factory.hpp"
#include "giraf/engine.hpp"
#include "harness/algorithm_runs.hpp"
#include "harness/measurement.hpp"
#include "models/schedule.hpp"
#include "net/ping.hpp"
#include "net/transport.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_analysis.hpp"
#include "obs/trace_config.hpp"
#include "obs/trace_sink.hpp"
#include "oracles/omega.hpp"
#include "sim/sampler.hpp"

namespace timing {
namespace {

::testing::AssertionResult bits_equal(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  if (ba == bb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in bits";
}

// ---------------------------------------------------------------------
// Sinks.

TEST(TraceSink, NullSinkIsANoOp) {
  // trace_emit on a null sink must be safe (the off-by-default path).
  trace_emit(nullptr, TraceEvent::round_start(1));
}

TEST(TraceSink, BufferSinkCapCountsDrops) {
  BufferSink sink(/*max_events=*/5);
  for (Round k = 1; k <= 10; ++k) sink.record(TraceEvent::round_start(k));
  EXPECT_EQ(sink.events().size(), 5u);
  EXPECT_EQ(sink.dropped(), 5u);
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
  EXPECT_EQ(sink.dropped(), 0u);
}

// ---------------------------------------------------------------------
// JSONL encoding.

std::vector<TraceEvent> one_of_each(int n) {
  return {
      TraceEvent::round_start(1),
      TraceEvent::crash(1, n - 1),
      TraceEvent::msg(EventKind::kMsgSent, 1, 0, 1),
      TraceEvent::msg(EventKind::kMsgTimely, 1, 0, 1),
      TraceEvent::msg(EventKind::kMsgLate, 1, 1, 0, /*delay=*/3),
      TraceEvent::msg(EventKind::kMsgLost, 1, 1, 2),
      TraceEvent::oracle(1, 0, 2),
      TraceEvent::predicates(1, 0b1010),
      TraceEvent::decide(1, 0, 42, decide_rule::kCommitQuorum),
      TraceEvent::round_end(1),
  };
}

TEST(Jsonl, RoundTripIsLossless) {
  const std::vector<TraceEvent> events = one_of_each(4);
  const std::vector<TraceEvent> small = one_of_each(3);
  std::ostringstream out;
  write_trace_header(out, 4);
  write_trial(out, 0, events);
  write_trial(out, 1, small, /*n=*/3);  // per-trial n survives too

  std::istringstream in(out.str());
  const ParsedTrace trace = parse_trace(in);
  EXPECT_EQ(trace.version, kTraceSchemaVersion);
  EXPECT_EQ(trace.n, 4);
  ASSERT_EQ(trace.trials.size(), 2u);
  EXPECT_EQ(trace.trials[0].id, 0);
  EXPECT_EQ(trace.trials[0].n, 0);
  EXPECT_EQ(trace.trials[1].n, 3);
  // Defaulted operator== on the flat struct: every field round-trips.
  EXPECT_EQ(trace.trials[0].events, events);
  EXPECT_EQ(trace.trials[1].events, small);
}

TEST(Jsonl, ReencodingIsByteIdentical) {
  const std::vector<TraceEvent> events = one_of_each(4);
  std::ostringstream a;
  write_trace_header(a, 4);
  write_trial(a, 0, events);
  std::istringstream in(a.str());
  const ParsedTrace trace = parse_trace(in);
  std::ostringstream b;
  write_trace_header(b, trace.n);
  write_trial(b, trace.trials[0].id, trace.trials[0].events);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Jsonl, ParserRejectsMalformedInput) {
  auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return parse_trace(in);
  };
  const std::string header = "{\"schema\":\"timing-trace\",\"v\":1,\"n\":3}\n";
  const std::string trial = "{\"e\":\"trial\",\"id\":0}\n";

  EXPECT_THROW(parse(""), std::runtime_error);  // no header
  EXPECT_THROW(parse("{\"schema\":\"other\",\"v\":1,\"n\":3}\n" + trial),
               std::runtime_error);  // unknown schema
  EXPECT_THROW(parse("{\"schema\":\"timing-trace\",\"v\":99,\"n\":3}\n" +
                     trial),
               std::runtime_error);  // future version
  EXPECT_THROW(parse(header), std::runtime_error);  // no trials
  EXPECT_THROW(parse(header + "{\"e\":\"round_start\",\"k\":1}\n"),
               std::runtime_error);  // event before first trial marker
  EXPECT_THROW(parse(header + trial + "{\"e\":\"warp\",\"k\":1}\n"),
               std::runtime_error);  // unknown event
  EXPECT_THROW(parse(header + trial + "{\"e\":\"crash\",\"k\":1}\n"),
               std::runtime_error);  // missing field
  EXPECT_THROW(
      parse(header + trial + "{\"e\":\"sent\",\"k\":1,\"s\":7,\"d\":0}\n"),
      std::runtime_error);  // pid out of range
  EXPECT_THROW(parse(header + trial +
                     "{\"e\":\"late\",\"k\":1,\"s\":0,\"d\":1,\"delay\":0}\n"),
               std::runtime_error);  // late with no delay
  EXPECT_THROW(parse(header + trial +
                     "{\"e\":\"pred\",\"k\":1,\"sat\":16}\n"),
               std::runtime_error);  // sat mask beyond 4 models
  EXPECT_THROW(parse(header + "{\"e\":\"trial\",\"id\":1,\"n\":9}\n"),
               std::runtime_error);  // per-trial n above header n
}

// ---------------------------------------------------------------------
// Structural validation.

ParsedTrace wrap(std::vector<TraceEvent> events, int n = 3) {
  ParsedTrace trace;
  trace.version = kTraceSchemaVersion;
  trace.n = n;
  TrialTrace t;
  t.id = 0;
  t.events = std::move(events);
  trace.trials.push_back(std::move(t));
  return trace;
}

TEST(ValidateTrace, AcceptsAWellFormedTrial) {
  EXPECT_EQ(validate_trace(wrap({
                TraceEvent::round_start(1),
                TraceEvent::msg(EventKind::kMsgSent, 1, 0, 1),
                TraceEvent::msg(EventKind::kMsgTimely, 1, 0, 1),
                TraceEvent::predicates(1, 0b0001),
                TraceEvent::round_end(1),
                TraceEvent::round_start(2),
                TraceEvent::decide(2, 0, 7, decide_rule::kForwarded),
                TraceEvent::round_end(2),
            })),
            "");
}

TEST(ValidateTrace, CatchesOrderingViolations) {
  // Round numbers must strictly increase.
  EXPECT_NE(validate_trace(wrap({
                TraceEvent::round_start(2),
                TraceEvent::round_end(2),
                TraceEvent::round_start(2),
                TraceEvent::round_end(2),
            })),
            "");
  // Events outside any round.
  EXPECT_NE(validate_trace(wrap({TraceEvent::predicates(1, 1)})), "");
  // Event round must match the open round.
  EXPECT_NE(validate_trace(wrap({
                TraceEvent::round_start(1),
                TraceEvent::predicates(2, 1),
                TraceEvent::round_end(1),
            })),
            "");
  // Phases may not go backwards (a send after the predicate eval).
  EXPECT_NE(validate_trace(wrap({
                TraceEvent::round_start(1),
                TraceEvent::predicates(1, 1),
                TraceEvent::msg(EventKind::kMsgSent, 1, 0, 1),
                TraceEvent::round_end(1),
            })),
            "");
  // In a trial that records sends, a delivery needs a preceding send.
  EXPECT_NE(validate_trace(wrap({
                TraceEvent::round_start(1),
                TraceEvent::msg(EventKind::kMsgSent, 1, 0, 1),
                TraceEvent::msg(EventKind::kMsgTimely, 1, 0, 1),
                TraceEvent::msg(EventKind::kMsgTimely, 1, 2, 1),
                TraceEvent::round_end(1),
            })),
            "");
  // A process decides at most once.
  EXPECT_NE(validate_trace(wrap({
                TraceEvent::round_start(1),
                TraceEvent::decide(1, 0, 7, decide_rule::kForwarded),
                TraceEvent::decide(1, 0, 7, decide_rule::kForwarded),
                TraceEvent::round_end(1),
            })),
            "");
  // An open round must be closed.
  EXPECT_NE(validate_trace(wrap({TraceEvent::round_start(1)})), "");
}

// ---------------------------------------------------------------------
// Engine + protocol wiring, and the golden trace.

struct WlmRun {
  BufferSink sink;
  EngineStats stats;
  Round decided = -1;
  Round engine_global = -1;
};

WlmRun tiny_wlm_run() {
  ScheduleConfig sched;
  sched.n = 3;
  sched.model = TimingModel::kWlm;
  sched.leader = 0;
  sched.gsr = 1;
  sched.seed = 2026;
  ScheduleSampler sampler(sched);

  auto protocols = make_group(AlgorithmKind::kWlm, {10, 20, 30});
  auto oracle = std::make_shared<DesignatedOracle>(0);
  RoundEngine engine(std::move(protocols), oracle);
  WlmRun out;
  engine.set_trace_sink(&out.sink);
  out.decided = engine.run(sampler, 50);
  out.stats = engine.stats();
  out.engine_global = engine.global_decision_round();
  return out;
}

// The full expected trace of the deterministic 3-process <>WLM run
// above: Algorithm 2 with a stable leader from round 1. The leader
// (process 0) decides in round 3 by commit quorum; the others decide in
// round 4 on the forwarded DECIDE. Any change to engine emission order,
// protocol decide paths or the JSONL encoding shows up here.
constexpr const char* kGoldenWlmTrace =
    R"({"schema":"timing-trace","v":1,"n":3}
{"e":"trial","id":0}
{"e":"round_start","k":1}
{"e":"sent","k":1,"s":0,"d":1}
{"e":"timely","k":1,"s":0,"d":1}
{"e":"sent","k":1,"s":0,"d":2}
{"e":"timely","k":1,"s":0,"d":2}
{"e":"sent","k":1,"s":1,"d":0}
{"e":"timely","k":1,"s":1,"d":0}
{"e":"sent","k":1,"s":2,"d":0}
{"e":"late","k":1,"s":2,"d":0,"delay":1}
{"e":"oracle","k":1,"p":0,"ld":0}
{"e":"oracle","k":1,"p":1,"ld":0}
{"e":"oracle","k":1,"p":2,"ld":0}
{"e":"round_end","k":1}
{"e":"round_start","k":2}
{"e":"sent","k":2,"s":0,"d":1}
{"e":"timely","k":2,"s":0,"d":1}
{"e":"sent","k":2,"s":0,"d":2}
{"e":"timely","k":2,"s":0,"d":2}
{"e":"sent","k":2,"s":1,"d":0}
{"e":"timely","k":2,"s":1,"d":0}
{"e":"sent","k":2,"s":2,"d":0}
{"e":"timely","k":2,"s":2,"d":0}
{"e":"oracle","k":2,"p":0,"ld":0}
{"e":"oracle","k":2,"p":1,"ld":0}
{"e":"oracle","k":2,"p":2,"ld":0}
{"e":"round_end","k":2}
{"e":"round_start","k":3}
{"e":"sent","k":3,"s":0,"d":1}
{"e":"timely","k":3,"s":0,"d":1}
{"e":"sent","k":3,"s":0,"d":2}
{"e":"timely","k":3,"s":0,"d":2}
{"e":"sent","k":3,"s":1,"d":0}
{"e":"timely","k":3,"s":1,"d":0}
{"e":"sent","k":3,"s":2,"d":0}
{"e":"late","k":3,"s":2,"d":0,"delay":1}
{"e":"oracle","k":3,"p":0,"ld":0}
{"e":"decide","k":3,"p":0,"v":20,"rule":2}
{"e":"oracle","k":3,"p":1,"ld":0}
{"e":"oracle","k":3,"p":2,"ld":0}
{"e":"round_end","k":3}
{"e":"round_start","k":4}
{"e":"sent","k":4,"s":0,"d":1}
{"e":"timely","k":4,"s":0,"d":1}
{"e":"sent","k":4,"s":0,"d":2}
{"e":"timely","k":4,"s":0,"d":2}
{"e":"sent","k":4,"s":1,"d":0}
{"e":"timely","k":4,"s":1,"d":0}
{"e":"sent","k":4,"s":2,"d":0}
{"e":"late","k":4,"s":2,"d":0,"delay":1}
{"e":"oracle","k":4,"p":0,"ld":0}
{"e":"oracle","k":4,"p":1,"ld":0}
{"e":"decide","k":4,"p":1,"v":20,"rule":1}
{"e":"oracle","k":4,"p":2,"ld":0}
{"e":"decide","k":4,"p":2,"v":20,"rule":1}
{"e":"round_end","k":4}
)";

TEST(EngineTrace, GoldenTinyWlmRun) {
  WlmRun run = tiny_wlm_run();
  EXPECT_EQ(run.decided, 4);
  std::ostringstream out;
  write_trace_header(out, 3);
  write_trial(out, 0, run.sink.events());
  EXPECT_EQ(out.str(), kGoldenWlmTrace);
}

TEST(EngineTrace, IsStructurallyValidAndMatchesEngineStats) {
  WlmRun run = tiny_wlm_run();
  ParsedTrace trace = wrap(run.sink.events());
  EXPECT_EQ(validate_trace(trace), "");

  // Satellite cross-check: the engine's (previously write-only) stats
  // are exposed and agree with the trace event counts exactly.
  const TrialSummary s =
      summarize_trial(trace.trials[0], 3, {3, 3, 4, 5});
  EXPECT_EQ(s.totals.sent, run.stats.messages_sent);
  EXPECT_EQ(s.totals.timely, run.stats.timely_deliveries);
  EXPECT_EQ(s.totals.late, run.stats.late_messages);
  EXPECT_EQ(s.totals.lost, run.stats.lost_messages);
  EXPECT_EQ(s.totals.sent, s.totals.timely + s.totals.late + s.totals.lost);
  // Realized arrivals can lag the sampled fates (messages still in
  // flight when the run ends) but never exceed them.
  EXPECT_LE(run.stats.late_arrivals, run.stats.late_messages);

  // Decide events mirror the engine's decision accounting.
  ASSERT_EQ(s.decides.size(), 3u);
  for (const TraceEvent& d : s.decides) EXPECT_EQ(d.value, 20);
  EXPECT_EQ(s.global_decision_round, run.engine_global);
  EXPECT_EQ(s.global_decision_round, run.decided);

  // The stable leader yields one unbroken leader-stability interval.
  ASSERT_EQ(s.leader_spans.size(), 1u);
  EXPECT_EQ(s.leader_spans[0], (LeaderSpan{1, 4, 0}));
}

TEST(EngineTrace, CrashesAreRecorded) {
  ScheduleConfig sched;
  sched.n = 5;
  sched.model = TimingModel::kWlm;
  sched.leader = 0;
  sched.gsr = 6;
  sched.seed = 11;
  sched.crash_rounds = {0, 0, 3, 0, 0};
  ScheduleSampler sampler(sched);

  auto protocols = make_group(AlgorithmKind::kWlm, {1, 2, 3, 4, 5});
  auto oracle = std::make_shared<DesignatedOracle>(0);
  RoundEngine engine(std::move(protocols), oracle);
  engine.crash_at(2, 3);
  BufferSink sink;
  engine.set_trace_sink(&sink);
  engine.run(sampler, 60);

  ParsedTrace trace = wrap(sink.events(), 5);
  EXPECT_EQ(validate_trace(trace), "");
  const TrialSummary s =
      summarize_trial(trace.trials[0], 5, {3, 3, 4, 5});
  ASSERT_EQ(s.crashes.size(), 1u);
  EXPECT_EQ(s.crashes[0].proc, 2);
  EXPECT_EQ(s.crashes[0].round, 3);
  // The crashed process neither sends nor decides from round 3 on.
  for (const TraceEvent& e : trace.trials[0].events) {
    if (e.kind == EventKind::kMsgSent && e.src == 2) {
      EXPECT_LT(e.round, 3);
    }
    if (e.kind == EventKind::kDecide) {
      EXPECT_NE(e.proc, 2);
    }
  }
}

TEST(AlgorithmRuns, EngineStatsAccessorCrossChecks) {
  AlgorithmRunConfig cfg;
  cfg.kind = AlgorithmKind::kWlm;
  cfg.schedule.n = 4;
  cfg.schedule.model = TimingModel::kWlm;
  cfg.schedule.leader = 1;
  cfg.schedule.gsr = 3;
  cfg.schedule.seed = 77;
  cfg.proposals = {1, 2, 3, 4};
  CountingSink sink;
  cfg.trace = &sink;
  const AlgorithmRunResult res = run_algorithm(cfg);
  EXPECT_TRUE(res.all_decided);
  // The new accessor agrees with the legacy total and balances exactly.
  EXPECT_EQ(res.engine.messages_sent, res.total_messages);
  EXPECT_EQ(res.engine.messages_sent,
            res.engine.timely_deliveries + res.engine.late_messages +
                res.engine.lost_messages);
  EXPECT_LE(res.engine.late_arrivals, res.engine.late_messages);
  EXPECT_GT(sink.count(), 0u);
}

// ---------------------------------------------------------------------
// measure_runs: offline analysis reproduces the online numbers.

constexpr std::array<int, kTraceNumModels> kNeeded{3, 3, 4, 5};

std::vector<RunMeasurement> traced_sweep(std::ostream* trace_out,
                                         MetricsRegistry* metrics, int n,
                                         int num_runs, int rounds) {
  MeasureObs obs;
  obs.trace_out = trace_out;
  obs.metrics = metrics;
  return measure_runs(
      num_runs,
      [&](int run) -> std::unique_ptr<TimelinessSampler> {
        return std::make_unique<IidTimelinessSampler>(
            n, 0.85, substream_seed(505, static_cast<std::uint64_t>(run)));
      },
      rounds, /*leader=*/0, obs);
}

TEST(MeasureRunsTrace, OfflineSummaryMatchesOnlineHarnessExactly) {
  const int n = 5, num_runs = 6, rounds = 120;
  std::ostringstream out;
  const auto ms = traced_sweep(&out, nullptr, n, num_runs, rounds);

  std::istringstream in(out.str());
  const ParsedTrace trace = parse_trace(in);
  EXPECT_EQ(validate_trace(trace), "");
  const TraceSummary summary = summarize_trace(trace, kNeeded);
  ASSERT_EQ(summary.trials.size(), static_cast<std::size_t>(num_runs));

  for (int run = 0; run < num_runs; ++run) {
    const RunMeasurement& online = ms[static_cast<std::size_t>(run)];
    const TrialSummary& offline =
        summary.trials[static_cast<std::size_t>(run)];
    EXPECT_EQ(offline.pred_rounds, rounds);
    EXPECT_EQ(offline.totals.timely, online.messages_timely);
    EXPECT_EQ(offline.totals.late, online.messages_late);
    EXPECT_EQ(offline.totals.lost, online.messages_lost);
    for (int m = 0; m < kTraceNumModels; ++m) {
      const auto mi = static_cast<std::size_t>(m);
      // P_M incidence: exact, down to the last bit.
      EXPECT_TRUE(bits_equal(offline.incidence(m),
                             online.incidence(static_cast<TimingModel>(m))));
      // Rounds until the global-decision conditions hold: the offline
      // first_window must equal the online rounds_until_conditions.
      const DecisionWindow w =
          rounds_until_conditions(online.sat[mi], 0, kNeeded[mi]);
      if (w.censored) {
        EXPECT_EQ(offline.first_window[mi], -1) << "model " << m;
      } else {
        EXPECT_EQ(static_cast<double>(offline.first_window[mi]), w.rounds)
            << "model " << m;
      }
    }
  }
}

TEST(MeasureRunsTrace, BytesAndMetricsAreThreadCountInvariant) {
  const int n = 4, num_runs = 8, rounds = 60;
  std::string base_bytes;
  MetricsRegistry base_metrics;
  {
    ScopedThreads serial(1);
    std::ostringstream out;
    traced_sweep(&out, &base_metrics, n, num_runs, rounds);
    base_bytes = out.str();
  }
  for (int threads : {2, 8}) {
    ScopedThreads st(threads);
    std::ostringstream out;
    MetricsRegistry metrics;
    traced_sweep(&out, &metrics, n, num_runs, rounds);
    EXPECT_EQ(base_bytes, out.str()) << "threads=" << threads;
    EXPECT_EQ(base_metrics.counters(), metrics.counters());
    ASSERT_EQ(base_metrics.stats().size(), metrics.stats().size());
    auto it = metrics.stats().begin();
    for (const auto& [name, stat] : base_metrics.stats()) {
      EXPECT_EQ(name, it->first);
      EXPECT_EQ(stat.count(), it->second.count());
      EXPECT_TRUE(bits_equal(stat.mean(), it->second.mean()));
      EXPECT_TRUE(bits_equal(stat.variance(), it->second.variance()));
      ++it;
    }
    // Wall-clock phase timers are the documented exception: present in
    // both, but their values are not compared.
    EXPECT_EQ(base_metrics.timers().size(), metrics.timers().size());
  }
}

TEST(MeasureRunsTrace, HonoursTimingTraceEnvKnob) {
  const std::string path = "obs_test_env_trace.jsonl";
  ::setenv("TIMING_TRACE", path.c_str(), 1);
  traced_sweep(nullptr, nullptr, 3, 2, 20);
  ::unsetenv("TIMING_TRACE");
  const ParsedTrace trace = parse_trace_file(path);
  EXPECT_EQ(trace.n, 3);
  EXPECT_EQ(trace.trials.size(), 2u);
  EXPECT_EQ(validate_trace(trace), "");
  std::remove(path.c_str());
}

TEST(MeasureRunsTrace, MetricsCountersBalance) {
  MetricsRegistry metrics;
  const int n = 4, num_runs = 3, rounds = 50;
  const auto ms = traced_sweep(nullptr, &metrics, n, num_runs, rounds);
  EXPECT_EQ(metrics.counter("rounds"), num_runs * rounds);
  long long timely = 0, late = 0, lost = 0, total = 0;
  for (const RunMeasurement& m : ms) {
    timely += m.messages_timely;
    late += m.messages_late;
    lost += m.messages_lost;
    total += m.messages_total;
  }
  EXPECT_EQ(metrics.counter("messages.timely"), timely);
  EXPECT_EQ(metrics.counter("messages.late"), late);
  EXPECT_EQ(metrics.counter("messages.lost"), lost);
  EXPECT_EQ(metrics.counter("messages.total"), total);
  EXPECT_EQ(total, timely + late + lost);
  EXPECT_EQ(metrics.stats().at("run.timely_fraction").count(), num_runs);
  // Phase timers recorded both phases for every round.
  EXPECT_EQ(metrics.timers().at("phase.sample").count, num_runs * rounds);
  EXPECT_EQ(metrics.timers().at("phase.predicates").count,
            num_runs * rounds);
}

// ---------------------------------------------------------------------
// Metrics registry mechanics.

TEST(Metrics, MergeIsExactForCountersAndHistograms) {
  MetricsRegistry a, b;
  a.inc("x", 2);
  b.inc("x", 3);
  b.inc("y");
  a.histogram("h", 0.0, 10.0, 5).add(1.0);
  b.histogram("h", 0.0, 10.0, 5).add(9.0);
  a.observe("s", 1.5);
  b.observe("s", 2.5);
  a.merge(b);
  EXPECT_EQ(a.counter("x"), 5);
  EXPECT_EQ(a.counter("y"), 1);
  EXPECT_EQ(a.counter("absent"), 0);
  EXPECT_EQ(a.histograms().at("h").total(), 2u);
  EXPECT_EQ(a.stats().at("s").count(), 2u);
  EXPECT_FALSE(a.to_string().empty());
  a.clear();
  EXPECT_TRUE(a.empty());
}

TEST(Metrics, PhaseTimerIsNoOpOnNullRegistry) {
  { PhaseTimer t(nullptr, "phase.x"); }
  MetricsRegistry reg;
  { PhaseTimer t(&reg, "phase.x"); }
  EXPECT_EQ(reg.timers().at("phase.x").count, 1);
}

// ---------------------------------------------------------------------
// Diff mode.

TEST(DiffTraces, ReportsFirstDivergence) {
  WlmRun run = tiny_wlm_run();
  ParsedTrace a = wrap(run.sink.events());
  ParsedTrace b = a;
  EXPECT_TRUE(diff_traces(a, b).identical);

  // Flip one message fate in trial 0.
  for (TraceEvent& e : b.trials[0].events) {
    if (e.kind == EventKind::kMsgTimely) {
      e.kind = EventKind::kMsgLost;
      break;
    }
  }
  const TraceDiff d = diff_traces(a, b);
  EXPECT_FALSE(d.identical);
  EXPECT_NE(d.report.find("first divergence"), std::string::npos);
}

// Writes a trace for the ctest-level `trace_tool validate` run (see
// tests/CMakeLists.txt: FIXTURES_SETUP obs_trace); the CLI must accept
// what the library emits.
TEST(TraceToolFixture, WritesTraceForCliValidation) {
  WlmRun run = tiny_wlm_run();
  std::ofstream out("obs_cli_trace.jsonl", std::ios::trunc);
  ASSERT_TRUE(out.good());
  write_trace_header(out, 3);
  write_trial(out, 0, run.sink.events());
}

// ---------------------------------------------------------------------
// TraceConfig.

TEST(TraceConfig, ReadsEnvironment) {
  ::unsetenv("TIMING_TRACE");
  EXPECT_FALSE(TraceConfig::from_env().enabled());
  ::setenv("TIMING_TRACE", "/tmp/x.jsonl", 1);
  ::setenv("TIMING_TRACE_MAX_EVENTS", "123", 1);
  const TraceConfig cfg = TraceConfig::from_env();
  EXPECT_TRUE(cfg.enabled());
  EXPECT_EQ(cfg.path, "/tmp/x.jsonl");
  EXPECT_EQ(cfg.max_events_per_trial, 123u);
  ::unsetenv("TIMING_TRACE");
  ::unsetenv("TIMING_TRACE_MAX_EVENTS");
}

// ---------------------------------------------------------------------
// Net-layer drop paths (satellite: transports share the TraceSink).

/// Latency model that loses every message.
class BlackholeModel final : public LatencyModel {
 public:
  explicit BlackholeModel(int n) : n_(n) {}
  int n() const noexcept override { return n_; }
  void begin_round(Round) override {}
  double sample_ms(ProcessId, ProcessId) override {
    return std::numeric_limits<double>::infinity();
  }

 private:
  int n_;
};

TEST(NetTrace, HubLossSurfacesAsLostEvent) {
  auto hub = std::make_shared<InProcHub>(2);
  hub->set_latency_model(std::make_unique<BlackholeModel>(2), 10.0);
  InProcTransport t0(hub, 0);
  BufferSink sink;
  t0.set_trace_sink(&sink);
  EXPECT_TRUE(t0.send(1, {1, 2, 3}));  // locally fine, wire eats it
  ASSERT_EQ(sink.events().size(), 1u);
  const TraceEvent& e = sink.events()[0];
  EXPECT_EQ(e.kind, EventKind::kMsgLost);
  EXPECT_EQ(e.round, 0);  // transport-level, below the round abstraction
  EXPECT_EQ(e.src, 0);
  EXPECT_EQ(e.dst, 1);
}

TEST(NetTrace, PingDropsMalformedFrames) {
  auto hub = std::make_shared<InProcHub>(2);
  InProcTransport t0(hub, 0);
  InProcTransport t1(hub, 1);
  BufferSink sink;
  t0.set_trace_sink(&sink);
  // Node 1 sends garbage; node 0's probe loop must drop (and record) it.
  t1.send(0, {0xde, 0xad, 0xbe, 0xef});
  PingConfig cfg;
  cfg.pings_per_peer = 1;
  cfg.probe_interval = std::chrono::milliseconds(2);
  cfg.total_duration = std::chrono::milliseconds(50);
  measure_peer_rtts(t0, 2, cfg);
  bool saw_drop = false;
  for (const TraceEvent& e : sink.events()) {
    if (e.kind == EventKind::kMsgLost && e.src == 1 && e.dst == 0) {
      saw_drop = true;
    }
  }
  EXPECT_TRUE(saw_drop);
}

}  // namespace
}  // namespace timing

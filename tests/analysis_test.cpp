// Tests for the Section 4 closed-form analysis: equation identities,
// cross-validation against Monte-Carlo sampling of IID matrices, the
// paper's quoted spot values, and the Appendix C asymptotics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "analysis/equations.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/binomial.hpp"
#include "harness/measurement.hpp"
#include "models/predicates.hpp"
#include "sim/sampler.hpp"

namespace timing {
namespace {

using namespace timing::analysis;

TEST(Equations, DegenerateP) {
  for (int n : {2, 5, 8}) {
    EXPECT_DOUBLE_EQ(p_es(n, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(p_lm(n, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(p_wlm(n, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(p_afm(n, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(p_es(n, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(p_lm(n, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(p_wlm(n, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(p_afm(n, 0.0), 0.0);
  }
}

TEST(Equations, EsClosedForm) {
  EXPECT_NEAR(p_es(8, 0.99), std::pow(0.99, 64), 1e-12);
  EXPECT_NEAR(p_es(3, 0.5), std::pow(0.5, 9), 1e-12);
}

TEST(Equations, WlmFactorsization) {
  // Equation (6): P_WLM = p^n * Pr(M|L).
  const double p = 0.95;
  const int n = 8;
  EXPECT_NEAR(p_wlm(n, p),
              std::pow(p, n) * pr_majority_given_leader(n, p), 1e-12);
}

TEST(Equations, LmIsWlmRowConditionToThePowerN) {
  // Equation (3): P_LM = (p * Pr(M|L))^n.
  const double p = 0.93;
  const int n = 8;
  EXPECT_NEAR(p_lm(n, p),
              std::pow(p * pr_majority_given_leader(n, p), n), 1e-12);
}

TEST(Equations, ModelStrengthOrdering) {
  // ES is the hardest round condition; <>WLM the easiest of the four for
  // high p (it constrains one row + one column only).
  for (double p : {0.9, 0.95, 0.99}) {
    const int n = 8;
    EXPECT_LE(p_es(n, p), p_lm(n, p));
    EXPECT_LE(p_lm(n, p), p_wlm(n, p));
    // AFM vs WLM/LM ordering flips with p (the paper's crossover); just
    // pin the ES <= AFM relation here.
    EXPECT_LE(p_es(n, p), p_afm(n, p) + 1e-12);
  }
}

TEST(Equations, ExpectedRoundsFormula) {
  EXPECT_DOUBLE_EQ(expected_rounds(1.0, 3), 3.0);
  EXPECT_DOUBLE_EQ(expected_rounds(0.5, 3), 8.0 + 2.0);
  EXPECT_TRUE(std::isinf(expected_rounds(0.0, 3)));
}

TEST(Equations, ExactWindowFormulaProperties) {
  // exact E >= paper's approximation, both -> R as P -> 1.
  for (int r : {3, 4, 5, 7}) {
    EXPECT_DOUBLE_EQ(exact_expected_rounds(1.0, r), r);
    for (double p : {0.3, 0.6, 0.9, 0.99}) {
      EXPECT_GE(exact_expected_rounds(p, r) + 1e-9, expected_rounds(p, r))
          << p << " " << r;
    }
    EXPECT_NEAR(exact_expected_rounds(0.9999, r), r, 0.01);
  }
  EXPECT_TRUE(std::isinf(exact_expected_rounds(0.0, 3)));
  // Closed form for R=1 is the plain geometric mean 1/P.
  EXPECT_NEAR(exact_expected_rounds(0.25, 1), 4.0, 1e-12);
}

TEST(Equations, ExactWindowFormulaMatchesMonteCarlo) {
  Rng rng(99);
  for (double p : {0.6, 0.9}) {
    for (int r : {3, 5}) {
      RunningStats stats;
      for (int t = 0; t < 30000; ++t) {
        int streak = 0, round = 0;
        while (streak < r) {
          ++round;
          streak = rng.bernoulli(p) ? streak + 1 : 0;
        }
        stats.add(round);
      }
      EXPECT_NEAR(stats.mean(), exact_expected_rounds(p, r),
                  5.0 * stats.stderr_mean() + 0.02)
          << "p=" << p << " r=" << r;
    }
  }
}

TEST(Equations, PaperSpotValue_EsAt097Needs349Rounds) {
  // Section 4.2: "ES requires 349 rounds for p = 0.97".
  EXPECT_NEAR(e_rounds_es(8, 0.97), 349.0, 6.0);
}

TEST(Equations, PaperSpotValue_WlmDirectVsSimulatedAt092) {
  // Section 4.2: "for p = 0.92 our algorithm requires 18 rounds, while
  // the simulation-based requires 114 rounds".
  EXPECT_NEAR(e_rounds_wlm_direct(8, 0.92), 18.0, 2.0);
  EXPECT_NEAR(e_rounds_wlm_simulated(8, 0.92), 114.0, 12.0);
}

TEST(Equations, PaperSpotValue_AfmVsLmAt085) {
  // Section 4.2: "for p = 0.85, <>AFM is expected to take 10 rounds,
  // while <>LM is expected to take 69 rounds".
  EXPECT_NEAR(e_rounds_afm(8, 0.85), 10.0, 2.0);
  EXPECT_NEAR(e_rounds_lm(8, 0.85), 69.0, 8.0);
}

TEST(Equations, PaperCrossovers) {
  // Figure 1(b): <>AFM best at low p; <>LM overtakes it around p = 0.96;
  // the direct <>WLM overtakes around p = 0.97.
  EXPECT_LT(e_rounds_afm(8, 0.90), e_rounds_lm(8, 0.90));
  EXPECT_LT(e_rounds_afm(8, 0.90), e_rounds_wlm_direct(8, 0.90));
  EXPECT_LT(e_rounds_lm(8, 0.965), e_rounds_afm(8, 0.965));
  // The paper reads the <>WLM/<>AFM crossover off Figure 1(b) as ~0.97;
  // the exact equations put it at ~0.979 (Eq. (9) is only a lower bound
  // on P_AFM, so the plotted AFM curve is an upper bound on E(D)).
  EXPECT_GT(e_rounds_wlm_direct(8, 0.97), e_rounds_afm(8, 0.97));
  EXPECT_LT(e_rounds_wlm_direct(8, 0.985), e_rounds_afm(8, 0.985));
  // And the direct <>WLM always beats the simulated one for p < 1.
  for (double p = 0.90; p < 0.999; p += 0.01) {
    EXPECT_LT(e_rounds_wlm_direct(8, p), e_rounds_wlm_simulated(8, p));
  }
}

TEST(Equations, LmVsWlmSlightEdgeToLm) {
  // Section 4.2: "even though <>WLM requires fewer timely links, <>LM is
  // slightly better [in IID]" because 4 conforming rounds beat 3.
  for (double p : {0.95, 0.97, 0.99}) {
    EXPECT_GT(e_rounds_wlm_direct(8, p), e_rounds_lm(8, p));
    // But per-round, WLM conforms more often.
    EXPECT_GT(p_wlm(8, p), p_lm(8, p));
  }
}

class MonteCarloCrossCheck
    : public ::testing::TestWithParam<std::tuple<TimingModel, double>> {};

TEST_P(MonteCarloCrossCheck, ClosedFormMatchesSampling) {
  const auto [model, p] = GetParam();
  const int n = 8;
  const int rounds = 40000;
  IidTimelinessSampler sampler(n, p, 0xfeed + static_cast<int>(p * 100));
  LinkMatrix a(n);
  long long hits = 0;
  for (int k = 1; k <= rounds; ++k) {
    sampler.sample_round(k, a);
    if (satisfies(model, a, /*leader=*/0)) ++hits;
  }
  const double measured = static_cast<double>(hits) / rounds;
  const double predicted = p_model(model, n, p);
  // The self link is always timely in the sampler but Bernoulli(p) in the
  // closed form (the paper's simplification), so the closed form
  // UNDER-estimates slightly; allow an asymmetric band.
  EXPECT_GE(measured + 0.015, predicted)
      << to_string(model) << " p=" << p;
  const double self_adjust = std::pow(p, model == TimingModel::kEs ? n : 1);
  EXPECT_LE(measured * self_adjust, predicted + 0.03)
      << to_string(model) << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MonteCarloCrossCheck,
    ::testing::Combine(::testing::Values(TimingModel::kEs, TimingModel::kLm,
                                         TimingModel::kWlm, TimingModel::kAfm),
                       ::testing::Values(0.90, 0.95, 0.99)),
    [](const auto& info) {
      std::string m = to_string(std::get<0>(info.param));
      std::string out;
      for (char c : m) {
        if (isalnum(static_cast<unsigned char>(c))) out += c;
      }
      return out + "_p" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(Asymptotics, EsAndLmDiverge) {
  // Appendix C: for fixed p < 1, E(D_ES) and E(D_LM) diverge with n.
  const double p = 0.95;
  double prev_es = 0.0, prev_lm = 0.0;
  for (int n : {4, 8, 16, 32, 64}) {
    const double es = log10_e_rounds(AnalyzedAlgorithm::kEs3, n, p);
    const double lm = log10_e_rounds(AnalyzedAlgorithm::kLm3, n, p);
    EXPECT_GT(es, prev_es);
    EXPECT_GE(lm + 1e-9, prev_lm);
    prev_es = es;
    prev_lm = lm;
  }
  EXPECT_GT(prev_es, 10.0) << "ES must be astronomically slow at n=64";
}

TEST(Asymptotics, AfmApproachesFiveRounds) {
  // Appendix C, Lemma 13: E(D_AFM) -> 5 as n -> infinity for p > 1/2.
  const double p = 0.75;
  EXPECT_LT(afm_chernoff_upper_bound(4096, p), 5.1);
  EXPECT_NEAR(e_rounds_afm(512, p), 5.0, 0.2);
  // And the Chernoff bound is an upper bound on the exact expectation.
  for (int n : {16, 64, 256}) {
    EXPECT_LE(e_rounds_afm(n, p), afm_chernoff_upper_bound(n, p) + 1e-6);
  }
}

TEST(Asymptotics, Log10MatchesLinearWhereBothWork) {
  for (double p : {0.95, 0.99}) {
    for (auto a : {AnalyzedAlgorithm::kEs3, AnalyzedAlgorithm::kLm3,
                   AnalyzedAlgorithm::kWlmDirect, AnalyzedAlgorithm::kAfm5}) {
      const double lin = e_rounds(a, 8, p);
      const double lg = log10_e_rounds(a, 8, p);
      EXPECT_NEAR(lg, std::log10(lin), 1e-6) << to_string(a) << " " << p;
    }
  }
}

/// Reference implementation of the ascending-sorted tail sum the
/// allocation-free binomial_tail_ge replaced; the grid below pins the
/// two-pointer merge to it.
double tail_ge_sorted_reference(int n, int k, double p) {
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  std::vector<double> terms;
  for (int i = k; i <= n; ++i) terms.push_back(binomial_pmf(n, i, p));
  std::sort(terms.begin(), terms.end());
  double sum = 0.0;
  for (double t : terms) sum += t;
  return std::min(1.0, sum);
}

TEST(Binomial, AllocationFreeTailMatchesSortedReferenceOnGrid) {
  for (const int n : {1, 2, 3, 7, 8, 16, 33, 64, 101}) {
    for (int k = 0; k <= n + 1; ++k) {
      for (const double p :
           {0.0, 1e-9, 0.01, 0.25, 0.5, 0.5001, 0.75, 0.9, 0.999, 1.0}) {
        const double want = tail_ge_sorted_reference(n, k, p);
        const double got = binomial_tail_ge(n, k, p);
        EXPECT_NEAR(got, want, 1e-15)
            << "n=" << n << " k=" << k << " p=" << p;
      }
    }
  }
}

}  // namespace
}  // namespace timing

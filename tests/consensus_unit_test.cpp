// Unit tests for the consensus protocols: rule-level behaviour checked by
// feeding hand-crafted rows into compute(), plus the paper's headline
// bounds on friendly schedules.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "consensus/factory.hpp"
#include "consensus/lm3.hpp"
#include "consensus/lm_over_wlm.hpp"
#include "consensus/paxos.hpp"
#include "consensus/unanimity.hpp"
#include "consensus/wlm.hpp"
#include "giraf/engine.hpp"
#include "harness/algorithm_runs.hpp"
#include "oracles/omega.hpp"

namespace timing {
namespace {

Message msg(MsgType t, Value est, Timestamp ts, ProcessId leader = kNoProcess,
            bool maj_approved = false) {
  Message m;
  m.type = t;
  m.est = est;
  m.ts = ts;
  m.leader = leader;
  m.maj_approved = maj_approved;
  return m;
}

// ------------------------------------------------------------ WLM unit --

TEST(WlmUnit, InitializeSendsPrepareToLeader) {
  WlmConsensus p(/*self=*/1, /*n=*/4, /*proposal=*/7);
  SendSpec s = p.initialize(/*leader=*/3);
  EXPECT_EQ(s.msg.type, MsgType::kPrepare);
  EXPECT_EQ(s.msg.est, 7);
  EXPECT_EQ(s.msg.ts, 0);
  EXPECT_EQ(s.msg.leader, 3);
  EXPECT_EQ(s.dests, (std::vector<ProcessId>{3}));
}

TEST(WlmUnit, LeaderBroadcasts) {
  WlmConsensus p(2, 4, 7);
  SendSpec s = p.initialize(2);
  EXPECT_EQ(s.dests.size(), 4u) << "the leader sends to Pi";
}

TEST(WlmUnit, Decide1OnReceivedDecide) {
  WlmConsensus p(0, 3, 5);
  SendSpec init = p.initialize(1);
  RoundMsgs row(3);
  row[0] = init.msg;
  row[2] = msg(MsgType::kDecide, 99, 4);
  SendSpec out = p.compute(1, row, 1);
  EXPECT_TRUE(p.has_decided());
  EXPECT_EQ(p.decision(), 99);
  EXPECT_EQ(out.msg.type, MsgType::kDecide);
  EXPECT_EQ(out.msg.est, 99);
}

TEST(WlmUnit, CommitRuleAdoptsLeaderEstimateWithRoundTimestamp) {
  // prevLD = initialize's leader = 1; round-k message from p1 with
  // majApproved triggers the commit rule (line 28): ts <- k.
  WlmConsensus p(0, 3, 5);
  SendSpec init = p.initialize(1);
  RoundMsgs row(3);
  row[0] = init.msg;
  row[1] = msg(MsgType::kPrepare, 77, 0, 1, /*maj_approved=*/true);
  SendSpec out = p.compute(4, row, 1);
  EXPECT_FALSE(p.has_decided());
  EXPECT_EQ(out.msg.type, MsgType::kCommit);
  EXPECT_EQ(out.msg.est, 77);
  EXPECT_EQ(out.msg.ts, 4);
  EXPECT_EQ(p.last_commit_round(), 4);
}

TEST(WlmUnit, NoCommitWithoutMajApproved) {
  WlmConsensus p(0, 3, 5);
  SendSpec init = p.initialize(1);
  RoundMsgs row(3);
  row[0] = init.msg;
  row[1] = msg(MsgType::kPrepare, 77, 2, 1, /*maj_approved=*/false);
  SendSpec out = p.compute(1, row, 1);
  EXPECT_EQ(out.msg.type, MsgType::kPrepare);
  // line 29: adopt maxTS / maxEST.
  EXPECT_EQ(out.msg.ts, 2);
  EXPECT_EQ(out.msg.est, 77);
}

TEST(WlmUnit, MaxEstBreaksTimestampTiesByValueOrder) {
  WlmConsensus p(0, 4, 1);
  SendSpec init = p.initialize(3);
  RoundMsgs row(4);
  row[0] = init.msg;
  row[1] = msg(MsgType::kPrepare, 50, 2);
  row[2] = msg(MsgType::kPrepare, 60, 2);
  SendSpec out = p.compute(1, row, 3);
  EXPECT_EQ(out.msg.ts, 2);
  EXPECT_EQ(out.msg.est, 60) << "maxEST: maximal estimate among maxTS";
}

TEST(WlmUnit, MajApprovedComputedFromLeaderVotes) {
  // p0 sees 2 of 3 messages naming it leader -> majApproved in its next
  // message.
  WlmConsensus p(0, 3, 5);
  SendSpec init = p.initialize(0);
  RoundMsgs row(3);
  row[0] = init.msg;  // names p0 (own oracle)
  row[1] = msg(MsgType::kPrepare, 8, 0, /*leader=*/0);
  SendSpec out = p.compute(1, row, 0);
  EXPECT_TRUE(out.msg.maj_approved);

  WlmConsensus q(0, 3, 5);
  SendSpec qinit = q.initialize(0);
  RoundMsgs row2(3);
  row2[0] = qinit.msg;
  row2[1] = msg(MsgType::kPrepare, 8, 0, /*leader=*/2);
  SendSpec out2 = q.compute(1, row2, 0);
  EXPECT_FALSE(out2.msg.maj_approved);
}

TEST(WlmUnit, Decide23NeedsOwnCommitAndOwnMajApproved) {
  // Drive a full commit-then-decide sequence: p0 is the leader, commits
  // the leader's (its own) estimate in round 3, and decides in round 4 on
  // a majority of COMMITs including its own, with its own round-4 message
  // carrying majApproved (rules decide-2 + decide-3).
  WlmConsensus p(0, 3, 11);
  SendSpec init = p.initialize(0);
  // Round 3: p0 sees itself majority-approved (own + p1 name it leader)
  // and its own message with majApproved -> commit rule fires next round;
  // first make majApproved true.
  RoundMsgs r3(3);
  r3[0] = init.msg;                                  // leader = 0
  r3[1] = msg(MsgType::kPrepare, 7, 0, /*leader=*/0);  // votes for p0
  SendSpec after3 = p.compute(3, r3, 0);
  ASSERT_TRUE(after3.msg.maj_approved);

  // Round 4: own message has majApproved -> commit on own estimate.
  RoundMsgs r4(3);
  r4[0] = after3.msg;
  r4[1] = msg(MsgType::kPrepare, 7, 0, /*leader=*/0);
  SendSpec after4 = p.compute(4, r4, 0);
  ASSERT_EQ(after4.msg.type, MsgType::kCommit);
  ASSERT_EQ(after4.msg.est, 11);
  ASSERT_TRUE(after4.msg.maj_approved);

  // Round 5: majority of COMMITs including own, own majApproved -> decide.
  RoundMsgs r5(3);
  r5[0] = after4.msg;
  r5[1] = msg(MsgType::kCommit, 11, 4, /*leader=*/0);
  SendSpec out = p.compute(5, r5, 0);
  EXPECT_TRUE(p.has_decided());
  EXPECT_EQ(p.decision(), 11) << "decides its own estimate";
  EXPECT_EQ(out.msg.type, MsgType::kDecide);
}

TEST(WlmUnit, NoDecideWhenOwnMajApprovedFalse) {
  WlmConsensus p(0, 3, 5);
  p.initialize(0);
  RoundMsgs row(3);
  row[0] = msg(MsgType::kCommit, 11, 3, 0, /*maj_approved=*/false);
  row[1] = msg(MsgType::kCommit, 11, 3, 0, true);
  p.compute(4, row, 0);
  EXPECT_FALSE(p.has_decided()) << "decide-3 requires OWN majApproved";
}

TEST(WlmUnit, DecidedProcessKeepsSendingDecide) {
  WlmConsensus p(0, 3, 5);
  p.initialize(1);
  RoundMsgs row(3);
  row[0] = msg(MsgType::kPrepare, 5, 0, 1);
  row[2] = msg(MsgType::kDecide, 99, 4);
  p.compute(1, row, 1);
  ASSERT_TRUE(p.has_decided());
  RoundMsgs row2(3);
  row2[0] = msg(MsgType::kDecide, 99, 0, 1);
  SendSpec out = p.compute(2, row2, 1);
  EXPECT_EQ(out.msg.type, MsgType::kDecide);
  EXPECT_EQ(out.msg.est, 99);
  EXPECT_EQ(p.decision(), 99);
}

// ------------------------------------------------- WLM via Theorem 10 --

TEST(WlmBounds, DecidesByGsrPlus4WithModelMinimumOracle) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    AlgorithmRunConfig cfg;
    cfg.kind = AlgorithmKind::kWlm;
    cfg.schedule.n = 8;
    cfg.schedule.model = TimingModel::kWlm;
    cfg.schedule.leader = 3;
    cfg.schedule.gsr = 15;
    cfg.schedule.minimal = (seed % 2 == 0);
    cfg.schedule.seed = seed;
    cfg.oracle_stable_from = cfg.schedule.gsr;  // Theorem 10(a)
    for (int i = 0; i < 8; ++i) cfg.proposals.push_back(100 + i);
    const auto r = run_algorithm(cfg);
    ASSERT_TRUE(r.all_decided) << "seed " << seed;
    EXPECT_LE(r.global_decision_round, cfg.schedule.gsr + 4)
        << "Theorem 10(a), seed " << seed;
    EXPECT_TRUE(r.agreement);
    EXPECT_TRUE(r.validity);
  }
}

TEST(WlmBounds, DecidesByGsrPlus3WithStableLeader) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    AlgorithmRunConfig cfg;
    cfg.kind = AlgorithmKind::kWlm;
    cfg.schedule.n = 8;
    cfg.schedule.model = TimingModel::kWlm;
    cfg.schedule.leader = 6;
    cfg.schedule.gsr = 12;
    cfg.schedule.minimal = (seed % 2 == 0);
    cfg.schedule.seed = seed * 31;
    cfg.oracle_stable_from = cfg.schedule.gsr - 1;  // Theorem 10(b)
    for (int i = 0; i < 8; ++i) cfg.proposals.push_back(100 + i);
    const auto r = run_algorithm(cfg);
    ASSERT_TRUE(r.all_decided) << "seed " << seed;
    EXPECT_LE(r.global_decision_round, cfg.schedule.gsr + 3)
        << "Theorem 10(b), seed " << seed;
  }
}

TEST(WlmBounds, StableStateMessageComplexityIsLinear) {
  AlgorithmRunConfig cfg;
  cfg.kind = AlgorithmKind::kWlm;
  cfg.schedule.n = 16;
  cfg.schedule.model = TimingModel::kWlm;
  cfg.schedule.leader = 2;
  cfg.schedule.gsr = 8;
  cfg.schedule.seed = 4;
  cfg.oracle_stable_from = 0;
  for (int i = 0; i < 16; ++i) cfg.proposals.push_back(i + 1);
  const auto r = run_algorithm(cfg);
  ASSERT_TRUE(r.all_decided);
  EXPECT_EQ(r.stable_round_messages, 2 * (16 - 1))
      << "leader->all plus all->leader";
}

// ---------------------------------------------------- Unanimity (ES-3) --

TEST(UnanimityUnit, CommitNeedsMajorityAndUnanimity) {
  UnanimityConsensus p(0, 4, 5);
  SendSpec init = p.initialize(kNoProcess);
  RoundMsgs row(4);
  row[0] = init.msg;
  row[1] = msg(MsgType::kPrepare, 5, 0);
  SendSpec out = p.compute(1, row, kNoProcess);
  EXPECT_EQ(out.msg.type, MsgType::kPrepare) << "2 of 4 is not a majority";

  row[2] = msg(MsgType::kPrepare, 5, 0);
  UnanimityConsensus q(0, 4, 5);
  SendSpec qi = q.initialize(kNoProcess);
  row[0] = qi.msg;
  SendSpec out2 = q.compute(1, row, kNoProcess);
  EXPECT_EQ(out2.msg.type, MsgType::kCommit);
  EXPECT_EQ(out2.msg.ts, 1);

  row[2] = msg(MsgType::kPrepare, 6, 0);  // not unanimous
  UnanimityConsensus r2(0, 4, 5);
  SendSpec ri = r2.initialize(kNoProcess);
  row[0] = ri.msg;
  SendSpec out3 = r2.compute(1, row, kNoProcess);
  EXPECT_EQ(out3.msg.type, MsgType::kPrepare);
  EXPECT_EQ(out3.msg.est, 6) << "adopts maxEST among maxTS carriers";
}

TEST(UnanimityUnit, Decide2NeedsFreshCommits) {
  UnanimityConsensus p(0, 3, 5);
  p.initialize(kNoProcess);
  RoundMsgs row(3);
  row[0] = msg(MsgType::kCommit, 5, 3);  // own commit from round 3
  row[1] = msg(MsgType::kCommit, 5, 3);
  p.compute(4, row, kNoProcess);  // k-1 == 3: fresh
  EXPECT_TRUE(p.has_decided());
  EXPECT_EQ(p.decision(), 5);

  UnanimityConsensus q(0, 3, 5);
  q.initialize(kNoProcess);
  RoundMsgs row2(3);
  row2[0] = msg(MsgType::kCommit, 5, 2);  // stale commits (ts != k-1)
  row2[1] = msg(MsgType::kCommit, 5, 2);
  q.compute(4, row2, kNoProcess);
  EXPECT_FALSE(q.has_decided());
}

TEST(UnanimityBounds, EsDecidesInThreeRoundsFromGsr) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    AlgorithmRunConfig cfg;
    cfg.kind = AlgorithmKind::kEs3;
    cfg.schedule.n = 8;
    cfg.schedule.model = TimingModel::kEs;
    cfg.schedule.gsr = 10;
    cfg.schedule.seed = seed * 7;
    for (int i = 0; i < 8; ++i) cfg.proposals.push_back(200 + i);
    const auto r = run_algorithm(cfg);
    ASSERT_TRUE(r.all_decided) << "seed " << seed;
    EXPECT_LE(r.global_decision_round, cfg.schedule.gsr + 2)
        << "3 rounds = GSR..GSR+2, seed " << seed;
  }
}

TEST(UnanimityBounds, AfmDecidesInFiveRoundsFromGsr) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    AlgorithmRunConfig cfg;
    cfg.kind = AlgorithmKind::kAfm5;
    cfg.schedule.n = 8;
    cfg.schedule.model = TimingModel::kAfm;
    cfg.schedule.gsr = 10;
    cfg.schedule.minimal = (seed % 2 == 0);
    cfg.schedule.seed = seed * 13;
    for (int i = 0; i < 8; ++i) cfg.proposals.push_back(300 + i);
    const auto r = run_algorithm(cfg);
    ASSERT_TRUE(r.all_decided) << "seed " << seed;
    EXPECT_LE(r.global_decision_round, cfg.schedule.gsr + 4)
        << "5 rounds = GSR..GSR+4, seed " << seed;
  }
}

// --------------------------------------------------------------- LM-3 --

TEST(Lm3Unit, CommitNeedsVotesAndCertificate) {
  Lm3Consensus p(0, 4, 5);
  SendSpec init = p.initialize(1);
  RoundMsgs row(4);
  row[0] = init.msg;
  Message lead = msg(MsgType::kPrepare, 42, 0, /*leader=*/1);
  lead.heard_maj = true;
  row[1] = lead;
  Message voter = msg(MsgType::kPrepare, 9, 0, /*leader=*/1);
  row[2] = voter;
  // votes for p1: own message (leader=1) + row[1] (p1 itself names 1)
  // + row[2] = 3 of 4 > n/2, and p1's message carries heardMaj.
  SendSpec out = p.compute(3, row, 1);
  EXPECT_EQ(out.msg.type, MsgType::kCommit);
  EXPECT_EQ(out.msg.est, 42);
  EXPECT_EQ(out.msg.ts, 3);

  // Without the certificate: no commit.
  Lm3Consensus q(0, 4, 5);
  SendSpec qi = q.initialize(1);
  row[0] = qi.msg;
  lead.heard_maj = false;
  row[1] = lead;
  SendSpec out2 = q.compute(3, row, 1);
  EXPECT_EQ(out2.msg.type, MsgType::kPrepare);
}

TEST(Lm3Unit, HeardMajReflectsPreviousRound) {
  Lm3Consensus p(0, 4, 1);
  SendSpec init = p.initialize(1);
  RoundMsgs row(4);
  row[0] = init.msg;
  SendSpec out = p.compute(1, row, 1);
  EXPECT_FALSE(out.msg.heard_maj) << "heard only itself";
  RoundMsgs row2(4);
  row2[0] = out.msg;
  row2[1] = msg(MsgType::kPrepare, 1, 0, 1);
  row2[2] = msg(MsgType::kPrepare, 2, 0, 1);
  SendSpec out2 = p.compute(2, row2, 1);
  EXPECT_TRUE(out2.msg.heard_maj) << "heard 3 of 4";
}

TEST(Lm3Bounds, DecidesInThreeRoundsFromGsr) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    AlgorithmRunConfig cfg;
    cfg.kind = AlgorithmKind::kLm3;
    cfg.schedule.n = 8;
    cfg.schedule.model = TimingModel::kLm;
    cfg.schedule.leader = 5;
    cfg.schedule.gsr = 10;
    cfg.schedule.minimal = (seed % 2 == 0);
    cfg.schedule.seed = seed * 3;
    for (int i = 0; i < 8; ++i) cfg.proposals.push_back(400 + i);
    const auto r = run_algorithm(cfg);
    ASSERT_TRUE(r.all_decided) << "seed " << seed;
    EXPECT_LE(r.global_decision_round, cfg.schedule.gsr + 2)
        << "3 rounds = GSR..GSR+2, seed " << seed;
  }
}

// -------------------------------------------- LM over WLM (Algorithm 3) --

TEST(LmOverWlm, DecidesWithinSevenWlmRoundsOfGsr) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    AlgorithmRunConfig cfg;
    cfg.kind = AlgorithmKind::kLmOverWlm;
    cfg.schedule.n = 8;
    cfg.schedule.model = TimingModel::kWlm;
    cfg.schedule.leader = 2;
    cfg.schedule.gsr = 9 + static_cast<Round>(seed % 2);  // odd and even GSR
    cfg.schedule.minimal = (seed % 3 == 0);
    cfg.schedule.seed = seed * 17;
    for (int i = 0; i < 8; ++i) cfg.proposals.push_back(500 + i);
    const auto r = run_algorithm(cfg);
    ASSERT_TRUE(r.all_decided) << "seed " << seed;
    EXPECT_LE(r.global_decision_round, cfg.schedule.gsr + 7)
        << "Lemma 12: 7 <>WLM rounds (+1 for round-boundary alignment), seed "
        << seed;
    EXPECT_TRUE(r.agreement);
  }
}

TEST(LmOverWlm, InnerRoundsAreHalfOuterRounds) {
  auto inner = std::make_unique<Lm3Consensus>(0, 4, 5);
  LmOverWlmSimulation sim(0, 4, std::move(inner));
  SendSpec s = sim.initialize(1);
  EXPECT_NE(s.msg.type, MsgType::kRelay) << "round 1 carries inner message";
  RoundMsgs row(4);
  row[0] = s.msg;
  SendSpec relay = sim.compute(1, row, 1);
  EXPECT_EQ(relay.msg.type, MsgType::kRelay);
  ASSERT_EQ(relay.msg.relay_from.size(), 1u);
  EXPECT_EQ(relay.msg.relay_from[0], 0);
  RoundMsgs row2(4);
  row2[0] = relay.msg;
  SendSpec inner_out = sim.compute(2, row2, 1);
  EXPECT_NE(inner_out.msg.type, MsgType::kRelay);
  EXPECT_EQ(sim.inner_rounds(), 1);
}

// -------------------------------------------------------------- Paxos --

TEST(PaxosUnit, CleanBallotTimeline) {
  // With a perfect network and a stable leader, Paxos decides globally
  // within 5 stable rounds (prepare 2, accept 2, decide 1) + 1 initial
  // idle round.
  std::vector<Value> proposals{10, 11, 12, 13, 14};
  auto group = make_group(AlgorithmKind::kPaxos, proposals);
  auto oracle = std::make_shared<DesignatedOracle>(0);
  RoundEngine e(std::move(group), oracle);
  IidTimelinessSampler s(5, 1.0, 1);
  const Round decided = e.run(s, 20);
  ASSERT_GE(decided, 0);
  EXPECT_LE(decided, 6);
  for (ProcessId i = 0; i < 5; ++i) {
    EXPECT_EQ(e.process(i).decision(), 10) << "leader's proposal wins";
  }
}

TEST(PaxosUnit, SeededPromiseForcesHigherBallot) {
  std::vector<Value> proposals{10, 11, 12};
  std::vector<std::unique_ptr<Protocol>> group;
  std::vector<PaxosConsensus*> raw;
  for (ProcessId i = 0; i < 3; ++i) {
    auto p = std::make_unique<PaxosConsensus>(i, 3, proposals[i]);
    raw.push_back(p.get());
    group.push_back(std::move(p));
  }
  raw[1]->seed_promise(50);
  raw[2]->seed_promise(90);
  auto oracle = std::make_shared<DesignatedOracle>(0);
  RoundEngine e(std::move(group), oracle);
  IidTimelinessSampler s(3, 1.0, 1);
  const Round decided = e.run(s, 60);
  ASSERT_GE(decided, 0);
  EXPECT_GT(raw[0]->ballots_started(), 1)
      << "the leader must have chased past the seeded promises";
  for (ProcessId i = 0; i < 3; ++i) {
    EXPECT_EQ(e.process(i).decision(), 10);
  }
}

TEST(PaxosUnit, RecoveryIsLinearInSeededBallotChain) {
  // The [13] scenario: staggered promises + adversarially revealed
  // majorities make the number of ballots grow with n. Here we only
  // check the friendly-network variant: even with all links timely, the
  // chase visits every seeded ballot tier that NACKs can reveal.
  const int n = 9;
  std::vector<std::unique_ptr<Protocol>> group;
  std::vector<PaxosConsensus*> raw;
  for (ProcessId i = 0; i < n; ++i) {
    auto p = std::make_unique<PaxosConsensus>(i, n, 100 + i);
    raw.push_back(p.get());
    group.push_back(std::move(p));
  }
  for (ProcessId i = 1; i < n; ++i) raw[i]->seed_promise(1000 * i);
  auto oracle = std::make_shared<DesignatedOracle>(0);
  RoundEngine e(std::move(group), oracle);
  IidTimelinessSampler s(n, 1.0, 1);
  const Round decided = e.run(s, 200);
  ASSERT_GE(decided, 0);
  // With a full view the leader learns the global max promise in one
  // NACK wave, so this friendly case needs only a couple of ballots;
  // the adversarial <>WLM case (bench/ablation_paxos_recovery) needs
  // Theta(n).
  EXPECT_GE(raw[0]->ballots_started(), 2);
  EXPECT_TRUE(e.all_alive_decided());
}

// --------------------------------------------------------- Factory ----

TEST(Factory, BuildsEveryKind) {
  for (AlgorithmKind k :
       {AlgorithmKind::kWlm, AlgorithmKind::kEs3, AlgorithmKind::kLm3,
        AlgorithmKind::kAfm5, AlgorithmKind::kLmOverWlm,
        AlgorithmKind::kPaxos}) {
    auto p = make_protocol(k, 0, 4, 1);
    ASSERT_NE(p, nullptr) << to_string(k);
    EXPECT_FALSE(p->has_decided());
    EXPECT_EQ(p->decision(), kNoValue);
  }
  auto g = make_group(AlgorithmKind::kWlm, {1, 2, 3});
  EXPECT_EQ(g.size(), 3u);
}

}  // namespace
}  // namespace timing

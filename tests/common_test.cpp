// Unit tests for src/common: RNG determinism and distribution sanity,
// statistics, and the exact binomial machinery the analysis relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/binomial.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace timing {
namespace {

TEST(Types, MajoritySize) {
  EXPECT_EQ(majority_size(2), 2);
  EXPECT_EQ(majority_size(3), 2);
  EXPECT_EQ(majority_size(4), 3);
  EXPECT_EQ(majority_size(5), 3);
  EXPECT_EQ(majority_size(8), 5);
  EXPECT_EQ(majority_size(9), 5);
}

TEST(Types, IsMajority) {
  EXPECT_FALSE(is_majority(4, 8));
  EXPECT_TRUE(is_majority(5, 8));
  EXPECT_FALSE(is_majority(2, 5));
  EXPECT_TRUE(is_majority(3, 5));
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(123), c2(124);
  bool differs = false;
  for (int i = 0; i < 16; ++i) {
    if (a2.next() != c2.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(r.uniform_int(8), 8u);
  }
  // All residues hit for a small bound.
  bool seen[5] = {};
  for (int i = 0; i < 1000; ++i) seen[r.uniform_int(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, BernoulliMean) {
  Rng r(11);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng r(17);
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) xs.push_back(r.lognormal(1.0, 0.5));
  EXPECT_NEAR(quantile_of(xs, 0.5), std::exp(1.0), 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng r(19);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.exponential(4.0));
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
}

TEST(Rng, ParetoSupport) {
  Rng r(23);
  for (int i = 0; i < 1000; ++i) ASSERT_GE(r.pareto(1.6, 1.4), 1.6);
}

TEST(Rng, SplitStreamsDiffer) {
  Rng r(29);
  Rng s1 = r.split();
  Rng s2 = r.split();
  bool differs = false;
  for (int i = 0; i < 16; ++i) {
    if (s1.next() != s2.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Stats, WelfordMatchesDirect) {
  RunningStats s;
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), mean_of(xs));
  EXPECT_NEAR(s.variance(), variance_of(xs), 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 16.0);
}

TEST(Stats, EmptyAndSingleton) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_half_width(), 0.0);
  s.add(5.0);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_half_width(), 0.0);
}

TEST(Stats, Ci95ShrinksWithN) {
  RunningStats small, large;
  Rng r(31);
  for (int i = 0; i < 5; ++i) small.add(r.normal());
  for (int i = 0; i < 500; ++i) large.add(r.normal());
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(Stats, StudentTTable) {
  EXPECT_NEAR(student_t_975(1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_975(32), 2.037, 0.02);  // the paper's 33-run case
  EXPECT_NEAR(student_t_975(1000), 1.96, 1e-6);
}

TEST(Stats, Quantiles) {
  std::vector<double> xs = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.25), 2.0);
}

TEST(Binomial, ChooseBasics) {
  EXPECT_NEAR(std::exp(log_choose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(8, 4)), 70.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 0)), 1.0, 1e-9);
}

TEST(Binomial, PmfSumsToOne) {
  for (double p : {0.1, 0.5, 0.9}) {
    double sum = 0.0;
    for (int k = 0; k <= 12; ++k) sum += binomial_pmf(12, k, p);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Binomial, TailEdges) {
  EXPECT_DOUBLE_EQ(binomial_tail_ge(10, 0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(binomial_tail_ge(10, 11, 0.3), 0.0);
  EXPECT_NEAR(binomial_tail_ge(10, 10, 0.5), std::pow(0.5, 10), 1e-12);
  EXPECT_NEAR(binomial_tail_ge(1, 1, 0.25), 0.25, 1e-12);
}

TEST(Binomial, TailMonotoneInP) {
  double prev = 0.0;
  for (double p = 0.0; p <= 1.0001; p += 0.05) {
    const double t = binomial_tail_ge(9, 5, std::min(p, 1.0));
    EXPECT_GE(t + 1e-12, prev);
    prev = t;
  }
}

TEST(Binomial, LogTailMatchesLinear) {
  const double t = binomial_tail_ge(20, 15, 0.6);
  EXPECT_NEAR(std::exp(log_binomial_tail_ge(20, 15, 0.6)), t, 1e-9);
}

TEST(Binomial, ChernoffIsLowerBound) {
  for (int n : {8, 16, 64, 256}) {
    for (double p : {0.6, 0.75, 0.9, 0.99}) {
      const double exact = binomial_tail_ge(n, n / 2 + 1, p);
      const double bound = chernoff_majority_lower_bound(n, p);
      EXPECT_LE(bound, exact + 1e-9) << "n=" << n << " p=" << p;
    }
  }
  EXPECT_EQ(chernoff_majority_lower_bound(100, 0.5), 0.0);
}

TEST(Table, FormatsRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os, "caption");
  const std::string s = os.str();
  EXPECT_NE(s.find("caption"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "plain"});
  t.add_row({"2", "with,comma"});
  t.add_row({"3", "with\"quote"});
  std::ostringstream os;
  t.print_csv(os, "cap");
  EXPECT_EQ(os.str(),
            "# cap\na,b\n1,plain\n2,\"with,comma\"\n3,\"with\"\"quote\"\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::integer(3.6), "4");
  EXPECT_EQ(Table::num(std::numeric_limits<double>::infinity()), "inf");
}

}  // namespace
}  // namespace timing

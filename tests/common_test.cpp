// Unit tests for src/common: RNG determinism and distribution sanity,
// statistics, and the exact binomial machinery the analysis relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/binomial.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace timing {
namespace {

TEST(Types, MajoritySize) {
  EXPECT_EQ(majority_size(2), 2);
  EXPECT_EQ(majority_size(3), 2);
  EXPECT_EQ(majority_size(4), 3);
  EXPECT_EQ(majority_size(5), 3);
  EXPECT_EQ(majority_size(8), 5);
  EXPECT_EQ(majority_size(9), 5);
}

TEST(Types, IsMajority) {
  EXPECT_FALSE(is_majority(4, 8));
  EXPECT_TRUE(is_majority(5, 8));
  EXPECT_FALSE(is_majority(2, 5));
  EXPECT_TRUE(is_majority(3, 5));
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(123), c2(124);
  bool differs = false;
  for (int i = 0; i < 16; ++i) {
    if (a2.next() != c2.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(r.uniform_int(8), 8u);
  }
  // All residues hit for a small bound.
  bool seen[5] = {};
  for (int i = 0; i < 1000; ++i) seen[r.uniform_int(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, BernoulliMean) {
  Rng r(11);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng r(17);
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) xs.push_back(r.lognormal(1.0, 0.5));
  EXPECT_NEAR(quantile_of(xs, 0.5), std::exp(1.0), 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng r(19);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.exponential(4.0));
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
}

TEST(Rng, ParetoSupport) {
  Rng r(23);
  for (int i = 0; i < 1000; ++i) ASSERT_GE(r.pareto(1.6, 1.4), 1.6);
}

TEST(Rng, SplitStreamsDiffer) {
  Rng r(29);
  Rng s1 = r.split();
  Rng s2 = r.split();
  bool differs = false;
  for (int i = 0; i < 16; ++i) {
    if (s1.next() != s2.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, SubstreamsForDistinctTrialsAreDecorrelated) {
  // Draw the first 1000 values of the sub-streams for several trial
  // indices of the same root: no value may appear in two streams (64-bit
  // outputs collide with probability ~2^-44 per pair, so any overlap
  // means the streams entered the same xoshiro orbit segment).
  constexpr int kStreams = 8;
  constexpr int kDraws = 1000;
  std::set<std::uint64_t> seen;
  for (std::uint64_t trial = 0; trial < kStreams; ++trial) {
    Rng r = substream(12345, trial);
    for (int i = 0; i < kDraws; ++i) {
      const auto [it, inserted] = seen.insert(r.next());
      EXPECT_TRUE(inserted) << "streams " << trial << " overlap near draw "
                            << i;
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kStreams) * kDraws);
}

TEST(Rng, SubstreamIsStableAcrossSplitOrder) {
  // substream is a pure function of (root, index): materializing stream 5
  // first, last, or twice never changes its draws — unlike split(),
  // which depends on how often the parent was advanced.
  std::vector<std::uint64_t> first;
  {
    Rng r = substream(777, 5);
    for (int i = 0; i < 64; ++i) first.push_back(r.next());
  }
  (void)substream(777, 0);
  (void)substream(777, 9);
  Rng again = substream(777, 5);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(again.next(), first[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(substream_seed(777, 5), substream_seed(777, 5));
  EXPECT_NE(substream_seed(777, 5), substream_seed(777, 6));
  EXPECT_NE(substream_seed(777, 5), substream_seed(778, 5));
}

TEST(Stats, WelfordMatchesDirect) {
  RunningStats s;
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), mean_of(xs));
  EXPECT_NEAR(s.variance(), variance_of(xs), 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 16.0);
}

TEST(Stats, EmptyAndSingleton) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_half_width(), 0.0);
  s.add(5.0);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_half_width(), 0.0);
}

TEST(Stats, Ci95ShrinksWithN) {
  RunningStats small, large;
  Rng r(31);
  for (int i = 0; i < 5; ++i) small.add(r.normal());
  for (int i = 0; i < 500; ++i) large.add(r.normal());
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

namespace {
bool same_bits(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  return ba == bb;
}

/// |a - b| within `ulps` units-in-the-last-place of the larger magnitude.
void expect_ulp_close(double a, double b, double ulps) {
  const double scale =
      std::max({std::abs(a), std::abs(b), 1e-300});
  EXPECT_NEAR(a, b, ulps * scale * std::numeric_limits<double>::epsilon())
      << a << " vs " << b;
}
}  // namespace

TEST(Stats, MergeOfRandomShardsMatchesSinglePass) {
  // Property: splitting a sample into arbitrary contiguous shards,
  // accumulating each shard independently and merging, agrees with the
  // single-pass accumulation within ulp-scale tolerance, and exactly for
  // count/min/max.
  Rng rng(0x57a75);
  for (int rep = 0; rep < 50; ++rep) {
    const int len = 2 + static_cast<int>(rng.uniform_int(200));
    std::vector<double> xs;
    RunningStats single;
    for (int i = 0; i < len; ++i) {
      const double x = rng.lognormal(rng.uniform(-2.0, 2.0), 1.0);
      xs.push_back(x);
      single.add(x);
    }
    RunningStats merged;
    std::size_t pos = 0;
    while (pos < xs.size()) {
      const std::size_t shard_len =
          1 + rng.uniform_int(xs.size() - pos);
      RunningStats shard;
      for (std::size_t i = 0; i < shard_len; ++i) shard.add(xs[pos + i]);
      merged.merge(shard);
      pos += shard_len;
    }
    ASSERT_EQ(merged.count(), single.count());
    EXPECT_TRUE(same_bits(merged.min(), single.min()));
    EXPECT_TRUE(same_bits(merged.max(), single.max()));
    expect_ulp_close(merged.mean(), single.mean(), 16.0);
    expect_ulp_close(merged.variance(), single.variance(), 64.0);
  }
}

TEST(Stats, MergeIsAssociativeAndCommutative) {
  Rng rng(0xa550c);
  for (int rep = 0; rep < 50; ++rep) {
    RunningStats a, b, c;
    for (int i = 0; i < 1 + static_cast<int>(rng.uniform_int(40)); ++i)
      a.add(rng.normal(3.0, 2.0));
    for (int i = 0; i < 1 + static_cast<int>(rng.uniform_int(40)); ++i)
      b.add(rng.exponential(5.0));
    for (int i = 0; i < 1 + static_cast<int>(rng.uniform_int(40)); ++i)
      c.add(rng.uniform(-10.0, 10.0));

    RunningStats ab_c = a;   // (a + b) + c
    ab_c.merge(b);
    ab_c.merge(c);
    RunningStats bc = b;     // a + (b + c)
    bc.merge(c);
    RunningStats a_bc = a;
    a_bc.merge(bc);
    ASSERT_EQ(ab_c.count(), a_bc.count());
    EXPECT_TRUE(same_bits(ab_c.min(), a_bc.min()));
    EXPECT_TRUE(same_bits(ab_c.max(), a_bc.max()));
    expect_ulp_close(ab_c.mean(), a_bc.mean(), 16.0);
    expect_ulp_close(ab_c.variance(), a_bc.variance(), 64.0);

    RunningStats ab = a;     // a + b vs b + a
    ab.merge(b);
    RunningStats ba = b;
    ba.merge(a);
    ASSERT_EQ(ab.count(), ba.count());
    expect_ulp_close(ab.mean(), ba.mean(), 16.0);
    expect_ulp_close(ab.variance(), ba.variance(), 64.0);
  }
}

TEST(Stats, MergingSingletonsReproducesAddBitForBit) {
  // The harness folds per-trial accumulators in trial order; for
  // single-observation accumulators this must be THE SAME floating-point
  // arithmetic as the serial add() loop, not merely close.
  Rng rng(0xb17);
  RunningStats serial, folded;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.pareto(1.0, 1.3);
    serial.add(x);
    RunningStats one;
    one.add(x);
    folded.merge(one);
    ASSERT_TRUE(same_bits(serial.mean(), folded.mean()));
    ASSERT_TRUE(same_bits(serial.variance(), folded.variance()));
  }
}

TEST(Stats, MergeWithEmptyIsIdentity) {
  RunningStats empty, s;
  s.add(1.0);
  s.add(2.0);
  const double mean = s.mean();
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_TRUE(same_bits(s.mean(), mean));
  RunningStats t;
  t.merge(s);
  EXPECT_EQ(t.count(), 2u);
  EXPECT_TRUE(same_bits(t.mean(), mean));
  EXPECT_EQ(t.min(), 1.0);
  EXPECT_EQ(t.max(), 2.0);
}

TEST(Stats, HistogramBinsAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(-0.5);   // underflow
  h.add(0.0);    // bin 0
  h.add(9.999);  // bin 9
  h.add(10.0);   // overflow (half-open range)
  h.add(4.5);    // bin 4
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 5.0);
}

TEST(Stats, HistogramMergeIsExactlyAssociative) {
  // Integer bin counts: any merge tree over the same shards yields the
  // same histogram, bit for bit — the property the parallel harness
  // relies on for distribution outputs.
  Rng rng(0x415);
  std::vector<Histogram> shards(8, Histogram(0.0, 1.0, 25));
  Histogram serial(0.0, 1.0, 25);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(-0.1, 1.1);
    shards[static_cast<std::size_t>(rng.uniform_int(shards.size()))].add(x);
    serial.add(x);
  }
  Histogram left(0.0, 1.0, 25);   // ((s0 + s1) + s2) + ...
  for (const auto& s : shards) left.merge(s);
  Histogram right(0.0, 1.0, 25);  // s7 + (s6 + (...))
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) right.merge(*it);
  EXPECT_EQ(left, right);
  EXPECT_EQ(left, serial);
}

TEST(Stats, HistogramMergeFromUnconfigured) {
  Histogram h;
  EXPECT_FALSE(h.configured());
  Histogram other(0.0, 4.0, 4);
  other.add(1.0);
  h.merge(other);
  ASSERT_TRUE(h.configured());
  EXPECT_EQ(h.count(1), 1u);
  h.merge(Histogram{});  // merging an unconfigured histogram is a no-op
  EXPECT_EQ(h.total(), 1u);
}

TEST(Stats, StudentTTable) {
  EXPECT_NEAR(student_t_975(1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_975(32), 2.037, 0.02);  // the paper's 33-run case
  EXPECT_NEAR(student_t_975(1000), 1.96, 1e-6);
}

TEST(Stats, Quantiles) {
  std::vector<double> xs = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.25), 2.0);
}

TEST(Stats, QuantileInPlaceSpanOverload) {
  std::vector<double> xs = {5, 1, 3, 2, 4};
  // Sorts the caller's buffer instead of a copy; same interpolation.
  EXPECT_DOUBLE_EQ(quantile_of(std::span<double>(xs), 0.25), 2.0);
  EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
  // Interpolation pins: p=0 -> min, p=1 -> max, interior interpolates.
  EXPECT_DOUBLE_EQ(quantile_of(std::span<double>(xs), 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_of(std::span<double>(xs), 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_of(std::span<double>(xs), 0.375), 2.5);
  // Single element: every p returns it.
  std::vector<double> one = {7.5};
  EXPECT_DOUBLE_EQ(quantile_of(std::span<double>(one), 0.0), 7.5);
  EXPECT_DOUBLE_EQ(quantile_of(std::span<double>(one), 0.5), 7.5);
  EXPECT_DOUBLE_EQ(quantile_of(std::span<double>(one), 1.0), 7.5);
  // Empty: 0 by convention, like the by-value overload.
  EXPECT_DOUBLE_EQ(quantile_of(std::span<double>(), 0.5), 0.0);
}

TEST(Binomial, ChooseBasics) {
  EXPECT_NEAR(std::exp(log_choose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(8, 4)), 70.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 0)), 1.0, 1e-9);
}

TEST(Binomial, PmfSumsToOne) {
  for (double p : {0.1, 0.5, 0.9}) {
    double sum = 0.0;
    for (int k = 0; k <= 12; ++k) sum += binomial_pmf(12, k, p);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Binomial, TailEdges) {
  EXPECT_DOUBLE_EQ(binomial_tail_ge(10, 0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(binomial_tail_ge(10, 11, 0.3), 0.0);
  EXPECT_NEAR(binomial_tail_ge(10, 10, 0.5), std::pow(0.5, 10), 1e-12);
  EXPECT_NEAR(binomial_tail_ge(1, 1, 0.25), 0.25, 1e-12);
}

TEST(Binomial, TailMonotoneInP) {
  double prev = 0.0;
  for (double p = 0.0; p <= 1.0001; p += 0.05) {
    const double t = binomial_tail_ge(9, 5, std::min(p, 1.0));
    EXPECT_GE(t + 1e-12, prev);
    prev = t;
  }
}

TEST(Binomial, LogTailMatchesLinear) {
  const double t = binomial_tail_ge(20, 15, 0.6);
  EXPECT_NEAR(std::exp(log_binomial_tail_ge(20, 15, 0.6)), t, 1e-9);
}

TEST(Binomial, ChernoffIsLowerBound) {
  for (int n : {8, 16, 64, 256}) {
    for (double p : {0.6, 0.75, 0.9, 0.99}) {
      const double exact = binomial_tail_ge(n, n / 2 + 1, p);
      const double bound = chernoff_majority_lower_bound(n, p);
      EXPECT_LE(bound, exact + 1e-9) << "n=" << n << " p=" << p;
    }
  }
  EXPECT_EQ(chernoff_majority_lower_bound(100, 0.5), 0.0);
}

TEST(Table, FormatsRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os, "caption");
  const std::string s = os.str();
  EXPECT_NE(s.find("caption"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "plain"});
  t.add_row({"2", "with,comma"});
  t.add_row({"3", "with\"quote"});
  std::ostringstream os;
  t.print_csv(os, "cap");
  EXPECT_EQ(os.str(),
            "# cap\na,b\n1,plain\n2,\"with,comma\"\n3,\"with\"\"quote\"\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::integer(3.6), "4");
  EXPECT_EQ(Table::num(std::numeric_limits<double>::infinity()), "inf");
}

}  // namespace
}  // namespace timing

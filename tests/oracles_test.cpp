// Unit tests for the Omega oracle implementations and the offline
// well-connected leader election (Section 5.2's ping-based method).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "oracles/omega.hpp"

namespace timing {
namespace {

TEST(DesignatedOracle, AlwaysAnswersTheSameLeader) {
  DesignatedOracle o(3);
  for (ProcessId self = 0; self < 5; ++self) {
    for (Round k = 0; k < 10; ++k) {
      EXPECT_EQ(o.query(self, k), 3);
    }
  }
}

TEST(UnstableOracle, StableFromTheConfiguredRound) {
  UnstableOracle o(6, /*final_leader=*/4, /*stable_from=*/20, 9);
  for (ProcessId self = 0; self < 6; ++self) {
    for (Round k = 20; k < 40; ++k) {
      EXPECT_EQ(o.query(self, k), 4);
    }
  }
}

TEST(UnstableOracle, PreStabilizationIsArbitraryButDeterministic) {
  UnstableOracle a(6, 0, 1000, 13), b(6, 0, 1000, 13);
  std::set<ProcessId> answers;
  bool disagreement = false;
  for (Round k = 0; k < 50; ++k) {
    std::set<ProcessId> this_round;
    for (ProcessId self = 0; self < 6; ++self) {
      const ProcessId ans = a.query(self, k);
      EXPECT_EQ(ans, b.query(self, k)) << "same seed must agree";
      EXPECT_GE(ans, 0);
      EXPECT_LT(ans, 6);
      answers.insert(ans);
      this_round.insert(ans);
    }
    if (this_round.size() > 1) disagreement = true;
  }
  EXPECT_GT(answers.size(), 1u) << "pre-GSR output must vary";
  EXPECT_TRUE(disagreement) << "processes must be able to disagree";
}

TEST(UnstableOracle, RepeatedQueriesAgree) {
  UnstableOracle o(4, 1, 100, 77);
  for (Round k = 0; k < 20; ++k) {
    for (ProcessId self = 0; self < 4; ++self) {
      EXPECT_EQ(o.query(self, k), o.query(self, k));
    }
  }
}

TEST(ScriptedOracle, ScriptOverridesDefault) {
  ScriptedOracle o(4, /*default_leader=*/0);
  o.script(2, 5, 3);
  o.script(2, 6, 1);
  EXPECT_EQ(o.query(2, 4), 0);
  EXPECT_EQ(o.query(2, 5), 3);
  EXPECT_EQ(o.query(2, 6), 1);
  EXPECT_EQ(o.query(1, 5), 0) << "other processes keep the default";
}

std::vector<std::vector<double>> rtt_matrix(
    std::initializer_list<std::initializer_list<double>> rows) {
  std::vector<std::vector<double>> m;
  for (const auto& r : rows) m.emplace_back(r);
  return m;
}

TEST(Election, PicksMinimaxNode) {
  // Node 1 has the smallest worst-case RTT.
  const auto rtt = rtt_matrix({{0, 10, 90},
                               {10, 0, 40},
                               {90, 40, 0}});
  EXPECT_EQ(elect_well_connected(rtt), 1);
}

TEST(Election, TieBreaksByMeanThenId) {
  // Nodes 0 and 1 share the same worst RTT (50); node 1 has the lower
  // mean.
  const auto rtt = rtt_matrix({{0, 50, 50},
                               {50, 0, 10},
                               {50, 10, 0}});
  EXPECT_EQ(elect_well_connected(rtt), 1);
  // Full symmetry: lowest id wins.
  const auto sym = rtt_matrix({{0, 50, 50},
                               {50, 0, 50},
                               {50, 50, 0}});
  EXPECT_EQ(elect_well_connected(sym), 0);
}

TEST(Election, AverageLeaderIsTheMedian) {
  // Connectivity order: 1 (best), 0, 2 (worst) -> median is node 0.
  const auto rtt = rtt_matrix({{0, 20, 60},
                               {20, 0, 30},
                               {60, 30, 0}});
  EXPECT_EQ(pick_average_leader(rtt), 0);
}

}  // namespace
}  // namespace timing

// Tests for the fault-injection subsystem (src/fault): the plan grammar
// and validator, the sim-path injector's matrix edits, the no-fault
// byte-identity guarantee of the sampler decorator, determinism of the
// chaos harness across thread counts, and sim-vs-live agreement — the
// FaultInjectedTransport acting exactly where the shared FaultInjector
// says it must.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "adversary/mutate.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "consensus/factory.hpp"
#include "fault/chaos.hpp"
#include "fault/injector.hpp"
#include "fault/parser.hpp"
#include "fault/transport.hpp"
#include "giraf/engine.hpp"
#include "models/schedule.hpp"
#include "net/frame.hpp"
#include "net/transport.hpp"
#include "obs/jsonl.hpp"
#include "obs/trace_analysis.hpp"
#include "oracles/omega.hpp"
#include "roundsync/roundsync.hpp"

namespace timing::fault {
namespace {

// ---------------------------------------------------------------------------
// Grammar: parse, round-trip, errors
// ---------------------------------------------------------------------------

TEST(FaultPlanParser, ParsesEveryStatementKind) {
  const char* text =
      "# adversary for the demo\n"
      "crash 1 @2\n"
      "recover 1 @5\n"
      "partition 0,2|3,4 @2..6\n"
      "drop 0->3 @2..6 p=0.5\n"
      "drop *->2 @3..4\n"
      "delay 4->0 +2.5ms @1..7\n"
      "suppress_leader @3..5\n"
      "gsr @8\n";
  const ParseResult pr = parse_fault_plan(text);
  ASSERT_TRUE(pr.ok()) << pr.error;
  ASSERT_EQ(pr.plan.events.size(), 8u);
  EXPECT_EQ(pr.plan.gsr, 8);
  EXPECT_EQ(pr.plan.events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(pr.plan.events[0].proc, 1);
  EXPECT_EQ(pr.plan.events[3].prob, 0.5);
  EXPECT_EQ(pr.plan.events[4].src, kNoProcess);  // '*' wildcard
  EXPECT_EQ(pr.plan.events[5].extra_ms, 2.5);
  ASSERT_EQ(pr.plan.events[2].groups.size(), 2u);
  EXPECT_EQ(pr.plan.events[2].groups[1], (std::vector<ProcessId>{3, 4}));
  EXPECT_TRUE(validate(pr.plan, 5, /*leader=*/0).empty());
}

TEST(FaultPlanParser, SpecRoundTripsExactly) {
  const char* text =
      "crash 2 @1; partition 0|1,3 @2..4; drop 1->0 @2..4 p=0.25; "
      "delay 0->1 +3ms @1..3; suppress_leader @2..3; gsr @5";
  const ParseResult pr = parse_fault_plan(text);
  ASSERT_TRUE(pr.ok()) << pr.error;
  const ParseResult again = parse_fault_plan(pr.plan.spec());
  ASSERT_TRUE(again.ok()) << again.error;
  EXPECT_EQ(again.plan.events, pr.plan.events);
  EXPECT_EQ(again.plan.gsr, pr.plan.gsr);
}

// Property: every plan the generators can produce — 100 seeded random
// plans plus a 50-step mutation chain off each 10th — survives
// spec() -> parse -> spec() with structural equality and identical
// canonical bytes. The adversary archive stores plans as spec text, so
// any statement the grammar can emit but not re-read would silently
// corrupt regression fixtures.
TEST(FaultPlanParser, GeneratedPlansAlwaysRoundTrip) {
  const auto check = [](const FaultPlan& plan, const char* what) {
    const std::string spec = plan.spec();
    const ParseResult pr = parse_fault_plan(spec);
    ASSERT_TRUE(pr.ok()) << what << ": " << pr.error << "\n" << spec;
    EXPECT_TRUE(structurally_equal(pr.plan, plan)) << what << "\n" << spec;
    EXPECT_EQ(plan_hash(pr.plan), plan_hash(plan)) << what;
    EXPECT_EQ(pr.plan.spec(), spec) << what;  // canonical = fixed point
  };
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const FaultPlan plan = random_fault_plan(5, 0, seed);
    check(plan, "random");
    if (seed % 10 != 0) continue;
    adversary::MutationConfig mcfg;
    mcfg.n = 5;
    mcfg.leader = 0;
    mcfg.mutate_links = false;  // this property targets the plan grammar
    Rng rng(seed);
    adversary::Candidate c;
    c.plan = plan;
    for (int step = 0; step < 50; ++step) {
      c = adversary::mutate(c, mcfg, rng);
      check(c.plan, "mutated");
    }
  }
}

TEST(FaultPlanParser, CommentsMayContainSemicolons) {
  // A '#' comment runs to end of line even in ';'-separated inline specs;
  // archive headers embed "key=value; key=value" freely.
  const ParseResult pr = parse_fault_plan(
      "# header: a=1; b=2; c=3\ncrash 1 @2\n# mid; comment\ngsr @5\n");
  ASSERT_TRUE(pr.ok()) << pr.error;
  ASSERT_EQ(pr.plan.events.size(), 2u);
  EXPECT_EQ(pr.plan.gsr, 5);
}

TEST(FaultPlanParser, ReportsLineAccurateErrors) {
  const ParseResult pr = parse_fault_plan("crash 1 @2\nfrob 3 @4\n");
  ASSERT_FALSE(pr.ok());
  EXPECT_NE(pr.error.find("line 2"), std::string::npos) << pr.error;
  EXPECT_NE(pr.error.find("frob"), std::string::npos) << pr.error;

  // Inline ';'-separated specs count statements instead.
  const ParseResult inl = parse_fault_plan("crash 1 @2; drop 0>1 @2..3");
  ASSERT_FALSE(inl.ok());
  EXPECT_NE(inl.error.find("statement 2"), std::string::npos) << inl.error;
}

TEST(FaultPlanValidate, RejectsStructuralViolations) {
  const auto err = [](const char* text, int n) {
    const ParseResult pr = parse_fault_plan(text);
    EXPECT_TRUE(pr.ok()) << pr.error;
    return validate(pr.plan, n);
  };
  EXPECT_NE(err("crash 1 @2; crash 1 @3; gsr @5", 3), "");   // double crash
  EXPECT_NE(err("recover 1 @3; gsr @5", 3), "");             // no crash
  EXPECT_NE(err("crash 2 @3; recover 2 @3; gsr @5", 3), ""); // not after
  EXPECT_NE(err("drop 0->0 @1..3; gsr @5", 3), "");          // self link
  EXPECT_NE(err("drop 0->1 @2..6; gsr @5", 3), "");          // past gsr
  EXPECT_NE(err("partition 0,1|1,2 @1..3; gsr @5", 3), "");  // overlap
  EXPECT_NE(err("crash 4 @1; gsr @5", 3), "");               // pid range
  EXPECT_NE(err("crash 1 @1; crash 2 @1; gsr @5", 3), "");   // majority
  EXPECT_EQ(err("crash 1 @1; gsr @5", 3), "");
  // The leader must stay correct under a terminal plan.
  const ParseResult pr = parse_fault_plan("crash 0 @2; gsr @5");
  ASSERT_TRUE(pr.ok());
  EXPECT_NE(validate(pr.plan, 3, /*leader=*/0), "");
  EXPECT_EQ(validate(pr.plan, 3, /*leader=*/1), "");
}

TEST(FaultPlan, MinProcessesAndTimeline) {
  const ParseResult pr =
      parse_fault_plan("drop 1->4 @2..3\ncrash 2 @1\ngsr @4\n");
  ASSERT_TRUE(pr.ok()) << pr.error;
  EXPECT_EQ(min_processes(pr.plan), 5);
  const std::string tl = timeline(pr.plan);
  // Sorted by activation round: the crash line precedes the drop line.
  EXPECT_LT(tl.find("crash 2"), tl.find("drop 1->4"));
  EXPECT_NE(tl.find("rounds 2..2"), std::string::npos) << tl;
}

// ---------------------------------------------------------------------------
// Sim-path injector semantics
// ---------------------------------------------------------------------------

FaultPlan golden_plan() {
  const ParseResult pr = parse_fault_plan(
      "crash 2 @2; recover 2 @4; partition 0,1|3 @2..4; "
      "drop 1->0 @2..4 p=1; gsr @5");
  TM_CHECK(pr.ok(), "golden plan must parse");
  return pr.plan;
}

TEST(FaultInjector, EditsMatchThePlan) {
  const int n = 4;
  InjectorConfig cfg;
  cfg.n = n;
  cfg.leader = 0;
  cfg.seed = 99;
  FaultInjector inj(golden_plan(), cfg);

  LinkMatrix a(n, 0);
  inj.apply(2, a);
  // Crash of 2: whole row and column lost (self link kept).
  for (ProcessId p = 0; p < n; ++p) {
    if (p == 2) continue;
    EXPECT_EQ(a.at(2, p), kLost);
    EXPECT_EQ(a.at(p, 2), kLost);
  }
  EXPECT_EQ(a.at(2, 2), 0);
  // Partition {0,1} | {3}: cross-group lost, intra-group kept. Process 2
  // is in no group, so only its crash affects it.
  EXPECT_EQ(a.at(3, 0), kLost);
  EXPECT_EQ(a.at(0, 3), kLost);
  EXPECT_EQ(a.at(3, 1), kLost);
  EXPECT_EQ(a.at(0, 1), kLost);  // drop 1->0 at p=1: dst 0 hears src 1
  EXPECT_EQ(a.at(1, 0), 0);      // the reverse link is intra-group

  // Round 4: crash recovered, windows closed — no edits at all.
  LinkMatrix b(n, 0);
  inj.apply(4, b);
  for (ProcessId d = 0; d < n; ++d) {
    for (ProcessId s = 0; s < n; ++s) EXPECT_EQ(b.at(d, s), 0);
  }
  // The gsr round itself is "active" — apply() emits the marker trace
  // event there — but it edits nothing; past it the plan is inert.
  EXPECT_TRUE(inj.active_in(5));
  LinkMatrix c(n, 0);
  inj.apply(5, c);
  for (ProcessId d = 0; d < n; ++d) {
    for (ProcessId s = 0; s < n; ++s) EXPECT_EQ(c.at(d, s), 0);
  }
  EXPECT_FALSE(inj.active_in(6));
  EXPECT_FALSE(inj.active_in(400));
}

TEST(FaultInjector, PackedAndUnpackedAgree) {
  const int n = 4;
  InjectorConfig cfg;
  cfg.n = n;
  cfg.leader = 0;
  cfg.seed = 7;
  FaultInjector inj(golden_plan(), cfg);
  for (Round k = 1; k <= 6; ++k) {
    LinkMatrix a(n, 0);
    PackedLinkMatrix p(n);
    p.fill(0);
    inj.apply(k, a);
    inj.apply(k, p);
    for (ProcessId d = 0; d < n; ++d) {
      for (ProcessId s = 0; s < n; ++s) {
        EXPECT_EQ(a.at(d, s), p.at(d, s)) << "k=" << k << " " << s << "->"
                                          << d;
      }
    }
  }
}

TEST(FaultInjector, PermanentCrashOutlivesGsr) {
  const ParseResult pr = parse_fault_plan("crash 3 @2; gsr @4");
  ASSERT_TRUE(pr.ok());
  InjectorConfig cfg;
  cfg.n = 5;
  cfg.seed = 1;
  FaultInjector inj(pr.plan, cfg);
  EXPECT_TRUE(inj.crashed_in(3, 100));
  EXPECT_TRUE(inj.active_in(100));
  LinkMatrix a(5, 0);
  inj.apply(100, a);
  EXPECT_EQ(a.at(0, 3), kLost);
}

TEST(FaultInjector, DropCoinsAreAPureFunctionOfTheCell) {
  const ParseResult pr = parse_fault_plan("drop *->* @1..9 p=0.5; gsr @9");
  ASSERT_TRUE(pr.ok());
  InjectorConfig cfg;
  cfg.n = 6;
  cfg.seed = 0xfeed;
  FaultInjector one(pr.plan, cfg);
  FaultInjector two(pr.plan, cfg);
  int fired = 0, held = 0;
  for (Round k = 1; k < 9; ++k) {
    for (ProcessId s = 0; s < 6; ++s) {
      for (ProcessId d = 0; d < 6; ++d) {
        if (s == d) continue;
        EXPECT_EQ(one.drop_fires(k, s, d), two.drop_fires(k, s, d));
        (one.drop_fires(k, s, d) ? fired : held)++;
      }
    }
  }
  // p=0.5 over 240 coins: both outcomes must occur.
  EXPECT_GT(fired, 0);
  EXPECT_GT(held, 0);
}

// ---------------------------------------------------------------------------
// No-fault byte-identity of the sampler decorator
// ---------------------------------------------------------------------------

std::string run_serialized(int n, bool decorated, std::uint64_t seed,
                           Round* decided_out) {
  ScheduleConfig sched;
  sched.n = n;
  sched.model = TimingModel::kWlm;
  sched.leader = 0;
  sched.gsr = 4;
  sched.pre_gsr_p = 0.5;
  sched.seed = seed;

  std::vector<Value> proposals;
  for (ProcessId i = 0; i < n; ++i) proposals.push_back(100 + i);
  auto oracle = std::make_shared<UnstableOracle>(n, 0, 3, seed ^ 0x9e37);
  RoundEngine engine(make_group(AlgorithmKind::kWlm, proposals), oracle);
  BufferSink sink;
  engine.set_trace_sink(&sink);

  ScheduleSampler inner(sched);
  Round decided = -1;
  if (decorated) {
    // The plan's only window sits far past every executed round, so the
    // decorator must stay on the inner fused path throughout.
    const ParseResult pr = parse_fault_plan("drop 0->1 @90..91 p=1; gsr @91");
    TM_CHECK(pr.ok(), "inactive plan must parse");
    InjectorConfig cfg;
    cfg.n = n;
    cfg.leader = 0;
    cfg.seed = seed;
    cfg.sink = &sink;
    FaultInjector injector(pr.plan, cfg);
    FaultInjectedSampler outer(inner, injector);
    decided = engine.run(outer, 40);
  } else {
    decided = engine.run(inner, 40);
  }
  if (decided_out != nullptr) *decided_out = decided;

  std::ostringstream os;
  write_trace_header(os, n);
  write_trial(os, 0, sink.events(), n);
  return os.str();
}

TEST(FaultInjectedSampler, NoFaultRunsAreByteIdentical) {
  for (std::uint64_t seed : {1ull, 42ull, 777ull}) {
    Round plain_round = -1, dec_round = -1;
    const std::string plain = run_serialized(5, false, seed, &plain_round);
    const std::string dec = run_serialized(5, true, seed, &dec_round);
    EXPECT_EQ(plain, dec) << "seed " << seed;
    EXPECT_EQ(plain_round, dec_round);
  }
}

// ---------------------------------------------------------------------------
// Chaos harness: guarantees + determinism across thread counts
// ---------------------------------------------------------------------------

TEST(Chaos, RandomPlansAlwaysValidate) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const FaultPlan plan = random_fault_plan(5, 0, seed);
    EXPECT_EQ(validate(plan, 5, 0), "");
    EXPECT_GE(plan.gsr, 6);
    // The canonical spec must replay to the same plan.
    const ParseResult pr = parse_fault_plan(plan.source);
    ASSERT_TRUE(pr.ok()) << pr.error;
    EXPECT_EQ(pr.plan.events, plan.events);
  }
}

std::string chaos_traces_serialized(int trials) {
  // One chaos run per (trial, algorithm), traces drained in trial order —
  // the serialized bytes must not depend on the worker count.
  struct Out {
    std::string bytes;
  };
  const auto outs =
      run_trials<Out>(static_cast<std::size_t>(trials), [&](std::size_t t) {
        const std::uint64_t seed = substream_seed(0xdead, t);
        ChaosTrialConfig cfg;
        cfg.n = 5;
        cfg.leader = 0;
        cfg.seed = seed;
        cfg.plan = random_fault_plan(5, 0, seed);
        cfg.max_rounds = 120;
        Out out;
        for (AlgorithmKind k :
             {AlgorithmKind::kWlm, AlgorithmKind::kEs3, AlgorithmKind::kLm3,
              AlgorithmKind::kAfm5}) {
          BufferSink sink;
          cfg.trace = &sink;
          const ChaosRunResult r = run_chaos_algorithm(k, cfg);
          EXPECT_TRUE(r.ok()) << r.violation;
          std::ostringstream os;
          write_trial(os, static_cast<int>(t), sink.events(), cfg.n);
          out.bytes += os.str();
        }
        return out;
      });
  std::string all;
  for (const Out& o : outs) all += o.bytes;
  return all;
}

TEST(Chaos, TraceBytesIdenticalAcrossThreadCounts) {
  std::string baseline;
  for (int threads : {1, 2, 8}) {
    ScopedThreads st(threads);
    const std::string got = chaos_traces_serialized(6);
    if (baseline.empty()) {
      baseline = got;
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(got, baseline) << "TIMING_THREADS=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Chaos under granular link models
// ---------------------------------------------------------------------------

TEST(ChaosGranular, AllSyncVerdictsAreBitIdentical) {
  // An all-sync matrix must take the homogeneous code paths exactly:
  // same schedules, same RNG draws, same verdicts, same trace volume.
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    ChaosTrialConfig plain;
    plain.n = 5;
    plain.leader = 0;
    plain.seed = seed;
    plain.plan = random_fault_plan(5, 0, seed);
    plain.max_rounds = 120;
    ChaosTrialConfig granular = plain;
    granular.link_models = LinkModelMatrix(5);  // defaults all-sync
    for (AlgorithmKind k :
         {AlgorithmKind::kWlm, AlgorithmKind::kEs3, AlgorithmKind::kLm3,
          AlgorithmKind::kAfm5}) {
      const ChaosRunResult a = run_chaos_algorithm(k, plain);
      const ChaosRunResult b = run_chaos_algorithm(k, granular);
      EXPECT_EQ(a.safety_ok, b.safety_ok);
      EXPECT_EQ(a.liveness_ok, b.liveness_ok);
      EXPECT_TRUE(b.liveness_enforced);
      EXPECT_EQ(a.global_decision_round, b.global_decision_round);
      EXPECT_EQ(a.fault_events, b.fault_events);
      EXPECT_EQ(a.violation, b.violation);
    }
  }
}

TEST(ChaosGranular, SupportsFollowsTheReliablePlane) {
  const int n = 5;
  LinkModelMatrix m(n);
  const std::vector<bool> all_alive;
  for (TimingModel model : kAllModels) {
    EXPECT_TRUE(granular_supports(model, 0, m, all_alive));
  }

  // One async non-leader link: only ES loses support.
  m.set(2, 3, LinkModelClass::kAsync);
  EXPECT_FALSE(granular_supports(TimingModel::kEs, 0, m, all_alive));
  EXPECT_TRUE(granular_supports(TimingModel::kLm, 0, m, all_alive));
  EXPECT_TRUE(granular_supports(TimingModel::kWlm, 0, m, all_alive));
  EXPECT_TRUE(granular_supports(TimingModel::kAfm, 0, m, all_alive));

  // An async leader entry kills the leader models for that row...
  m.set(2, 0, LinkModelClass::kAsync);
  EXPECT_FALSE(granular_supports(TimingModel::kLm, 0, m, all_alive));
  EXPECT_FALSE(granular_supports(TimingModel::kWlm, 0, m, all_alive));
  // ... unless that destination is crashed.
  std::vector<bool> alive(static_cast<std::size_t>(n), true);
  alive[2] = false;
  EXPECT_TRUE(granular_supports(TimingModel::kLm, 0, m, alive));
  EXPECT_TRUE(granular_supports(TimingModel::kWlm, 0, m, alive));

  // Starve row 1 below majority (needs 3 of 5): leave only self + one.
  LinkModelMatrix starved(n);
  for (ProcessId s = 0; s < n; ++s) {
    if (s != 1 && s != 0) starved.set(1, s, LinkModelClass::kAsync);
  }
  EXPECT_FALSE(granular_supports(TimingModel::kLm, 0, starved, all_alive));
  EXPECT_FALSE(granular_supports(TimingModel::kAfm, 0, starved, all_alive));
  // WLM only needs the leader's own row to reach majority.
  EXPECT_TRUE(granular_supports(TimingModel::kWlm, 0, starved, all_alive));
}

TEST(ChaosGranular, UnsupportedMatrixWaivesLivenessKeepsSafety) {
  const int n = 5;
  // Sever every non-self inbound link of the leader (who is never
  // permanently crashed by random plans, so the waiver cannot be
  // voided by the alive mask): no granular model can make it hear
  // anything reliably, so no liveness bound is owed — but
  // agreement/validity/integrity still are.
  LinkModelMatrix m(n);
  for (ProcessId s = 1; s < n; ++s) m.set(0, s, LinkModelClass::kAsync);
  for (std::uint64_t seed : {1ull, 5ull}) {
    ChaosTrialConfig cfg;
    cfg.n = n;
    cfg.leader = 0;
    cfg.seed = seed;
    cfg.plan = random_fault_plan(n, 0, seed);
    cfg.max_rounds = 120;
    cfg.link_models = m;
    for (AlgorithmKind k :
         {AlgorithmKind::kWlm, AlgorithmKind::kEs3, AlgorithmKind::kLm3,
          AlgorithmKind::kAfm5}) {
      const ChaosRunResult r = run_chaos_algorithm(k, cfg);
      EXPECT_TRUE(r.safety_ok) << r.violation;
      EXPECT_TRUE(r.liveness_ok) << r.violation;
      EXPECT_FALSE(r.liveness_enforced)
          << algorithm_key(k) << " seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Sim vs live: one plan, two backends, same injections
// ---------------------------------------------------------------------------

TEST(FaultInjectedTransport, LiveClusterMatchesTheSharedInjector) {
  const int n = 4;
  const ProcessId leader = 0;
  const FaultPlan plan = golden_plan();
  InjectorConfig icfg;
  icfg.n = n;
  icfg.leader = leader;
  icfg.seed = 4242;
  const FaultInjector injector(plan, icfg);

  std::vector<BufferSink> sinks(static_cast<std::size_t>(n));
  std::vector<Value> decisions(static_cast<std::size_t>(n), kNoValue);
  // Per-node slots written from the node threads: vector<bool> would
  // pack neighbours into one word and race.
  std::vector<char> decided(static_cast<std::size_t>(n), 0);
  auto hub = std::make_shared<InProcHub>(n);
  std::vector<std::thread> threads;
  for (ProcessId i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      auto protocol = make_protocol(AlgorithmKind::kWlm, i, n, 100 + i);
      DesignatedOracle oracle(leader);
      InProcTransport inner(hub, i);
      FaultInjectedTransport transport(inner, injector);
      transport.set_trace_sink(&sinks[static_cast<std::size_t>(i)]);
      RoundSyncConfig cfg;
      cfg.timeout_ms = 25.0;
      cfg.max_rounds = 200;
      RoundSyncRunner runner(*protocol, &oracle, transport, n, cfg);
      const RoundSyncResult r = runner.run();
      decided[static_cast<std::size_t>(i)] = r.decided;
      decisions[static_cast<std::size_t>(i)] = protocol->decision();
    });
  }
  for (auto& t : threads) t.join();

  // Safety across the fault window: everyone decides the same proposal.
  Value agreed = kNoValue;
  for (ProcessId i = 0; i < n; ++i) {
    ASSERT_TRUE(decided[static_cast<std::size_t>(i)]) << "node " << i;
    if (agreed == kNoValue) agreed = decisions[static_cast<std::size_t>(i)];
    EXPECT_EQ(decisions[static_cast<std::size_t>(i)], agreed);
  }

  // Every action the live backend took is one the sim injector mandates
  // for that exact (round, link) — the two backends cannot drift.
  std::size_t live_actions = 0;
  std::set<Round> crash_rounds;
  for (const BufferSink& sink : sinks) {
    for (const TraceEvent& e : sink.events()) {
      if (e.kind != EventKind::kFaultInjected) continue;
      ++live_actions;
      switch (static_cast<FaultKind>(e.rule)) {
        case FaultKind::kCrash:
          EXPECT_TRUE(injector.crashed_in(e.proc, e.round))
              << "crash action at round " << e.round;
          crash_rounds.insert(e.round);
          break;
        case FaultKind::kPartition:
          EXPECT_TRUE(injector.partitioned(e.src, e.dst, e.round));
          break;
        case FaultKind::kDrop:
          EXPECT_TRUE(injector.drop_fires(e.round, e.src, e.dst));
          break;
        case FaultKind::kDelay:
          EXPECT_GT(injector.extra_delay_ms(e.round, e.src, e.dst), 0.0);
          break;
        case FaultKind::kSuppressLeader:
          EXPECT_TRUE(injector.suppressed(e.src, e.round));
          break;
        default:
          ADD_FAILURE() << "unexpected fault rule " << int(e.rule);
      }
    }
  }
  // The crash window [2, 4) is where every crash-isolation action lands.
  for (Round k : crash_rounds) {
    EXPECT_GE(k, 2);
    EXPECT_LT(k, 4);
  }
  EXPECT_GT(live_actions, 0u)
      << "the plan's rounds ran but nothing was injected";

  // Sim side, same plan: the harness holds every guarantee.
  ChaosTrialConfig ccfg;
  ccfg.n = n;
  ccfg.leader = leader;
  ccfg.seed = icfg.seed;
  ccfg.plan = plan;
  ccfg.max_rounds = 100;
  const ChaosRunResult sim = run_chaos_algorithm(AlgorithmKind::kWlm, ccfg);
  EXPECT_TRUE(sim.ok()) << sim.violation;
  EXPECT_GT(sim.fault_events, 0);
}

TEST(FaultInjectedTransport, DelaysDeliverLateButIntact) {
  const int n = 2;
  const ParseResult pr = parse_fault_plan("delay 0->1 +30ms @1..3; gsr @3");
  ASSERT_TRUE(pr.ok()) << pr.error;
  InjectorConfig icfg;
  icfg.n = n;
  icfg.seed = 5;
  const FaultInjector injector(pr.plan, icfg);

  auto hub = std::make_shared<InProcHub>(n);
  InProcTransport a(hub, 0), raw_b(hub, 1);
  FaultInjectedTransport b(raw_b, injector);

  // An envelope stamped round 1 rides the delayed link.
  Bytes wire;
  frame_envelope(Envelope{1, 0, Message{}}, wire);
  ASSERT_TRUE(a.send(1, wire));
  Bytes got;
  ProcessId from = kNoProcess;
  const auto t0 = Clock::now();
  ASSERT_TRUE(b.recv(got, from, t0 + std::chrono::seconds(2)));
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          Clock::now() - t0)
                          .count();
  EXPECT_EQ(from, 0);
  EXPECT_GE(waited, 25) << "the +30ms delay rule must hold the datagram";

  // Round 3 is past the window: immediate delivery.
  wire.clear();
  frame_envelope(Envelope{3, 0, Message{}}, wire);
  ASSERT_TRUE(a.send(1, wire));
  ASSERT_TRUE(b.recv(got, from, Clock::now() + std::chrono::seconds(2)));
}

// Writes a faulted trace for the ctest-level trace_tool runs (see
// tests/CMakeLists.txt: FIXTURES_SETUP fault_trace): `validate` must
// accept the fault events and `summary` must count them in its
// fault-event column.
TEST(TraceToolFixture, WritesFaultedTraceForCli) {
  ChaosTrialConfig cfg;
  cfg.n = 5;
  cfg.leader = 0;
  cfg.seed = 31337;
  cfg.plan = random_fault_plan(5, 0, cfg.seed);
  cfg.max_rounds = 120;
  BufferSink sink;
  cfg.trace = &sink;
  const ChaosRunResult r = run_chaos_algorithm(AlgorithmKind::kWlm, cfg);
  ASSERT_TRUE(r.ok()) << r.violation;
  ASSERT_GT(r.fault_events, 0);
  std::ofstream out("fault_cli_trace.jsonl", std::ios::trunc);
  ASSERT_TRUE(out.good());
  write_trace_header(out, cfg.n);
  write_trial(out, 0, sink.events(), cfg.n);
}

}  // namespace
}  // namespace timing::fault

// Determinism property tests for the parallel Monte-Carlo runner.
//
// The contract under test (common/parallel.hpp): for a fixed root seed,
// the harness produces BIT-IDENTICAL summary statistics and
// decision-round distributions no matter how many threads execute the
// trials — TIMING_THREADS=1 (the historical serial loop), 2, or 8. The
// guarantee holds because trial randomness is a pure function of (root
// seed, trial index) and all floating-point folding happens in trial
// order on one thread; these tests exercise exactly that claim across
// several root seeds and group sizes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "harness/algorithm_runs.hpp"
#include "harness/experiments.hpp"
#include "harness/measurement.hpp"
#include "sim/sampler.hpp"

namespace timing {
namespace {

/// Exact bit equality, stricter than EXPECT_DOUBLE_EQ (which admits 4
/// ulps) and than operator== (which identifies -0.0 with +0.0).
::testing::AssertionResult bits_equal(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  if (ba == bb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in bits";
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ScopedThreads st(threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, PropagatesTheFirstException) {
  ScopedThreads st(4);
  EXPECT_THROW(
      parallel_for(64,
                   [&](std::size_t i) {
                     if (i % 7 == 3) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must stay usable afterwards.
  std::atomic<int> sum{0};
  parallel_for(16, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 120);
}

TEST(ParallelFor, NestedCallsRunInline) {
  ScopedThreads st(4);
  std::atomic<int> total{0};
  parallel_for(8, [&](std::size_t) {
    parallel_for(8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(RunTrials, ResultsLandAtTheirTrialIndex) {
  ScopedThreads st(8);
  const auto out =
      run_trials<std::size_t>(1000, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

// ---------------------------------------------------------------------
// The tentpole guarantee: run_experiment is thread-count-invariant.

ExperimentConfig small_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.testbed = Testbed::kWan;
  cfg.timeouts_ms = {160, 200, 300};
  cfg.runs = 7;
  cfg.rounds_per_run = 60;
  cfg.start_points = 5;
  cfg.seed = seed;
  return cfg;
}

void expect_identical(const std::vector<TimeoutResult>& a,
                      const std::vector<TimeoutResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_TRUE(bits_equal(a[t].timeout_ms, b[t].timeout_ms));
    EXPECT_TRUE(bits_equal(a[t].mean_p, b[t].mean_p));
    for (int m = 0; m < kNumModels; ++m) {
      const auto& ma = a[t].models[static_cast<std::size_t>(m)];
      const auto& mb = b[t].models[static_cast<std::size_t>(m)];
      EXPECT_TRUE(bits_equal(ma.mean_pm, mb.mean_pm));
      EXPECT_TRUE(bits_equal(ma.ci95_pm, mb.ci95_pm));
      EXPECT_TRUE(bits_equal(ma.var_pm, mb.var_pm));
      EXPECT_TRUE(bits_equal(ma.mean_rounds, mb.mean_rounds));
      EXPECT_TRUE(bits_equal(ma.mean_time_ms, mb.mean_time_ms));
      EXPECT_TRUE(bits_equal(ma.censored_fraction, mb.censored_fraction));
      EXPECT_EQ(ma.rounds_hist, mb.rounds_hist)
          << "decision-round distribution differs at timeout index " << t;
    }
  }
}

TEST(ParallelDeterminism, ExperimentSweepIsThreadCountInvariant) {
  for (std::uint64_t seed : {1ULL, 42ULL, 0xC0FFEEULL}) {
    const ExperimentConfig cfg = small_config(seed);
    ScopedThreads serial(1);
    const auto baseline = run_experiment(cfg);
    for (int threads : {2, 8}) {
      ScopedThreads st(threads);
      expect_identical(baseline, run_experiment(cfg));
    }
  }
}

// ---------------------------------------------------------------------
// measure_runs: summary statistics and decision-round distributions for
// n in {3, 5, 8} must not depend on the thread count.

struct Summary {
  std::array<RunningStats, kNumModels> incidence;
  std::array<Histogram, kNumModels> rounds;
};

Summary summarize(int n, std::uint64_t root, int num_runs, int rounds) {
  const auto ms = measure_runs(
      num_runs,
      [&](int run) -> std::unique_ptr<TimelinessSampler> {
        return std::make_unique<IidTimelinessSampler>(
            n, 0.9, substream_seed(root, static_cast<std::uint64_t>(run)));
      },
      rounds, /*leader=*/0);
  Summary out;
  for (auto& h : out.rounds) {
    h = Histogram(0.0, static_cast<double>(rounds) + 1.0, 16);
  }
  for (int run = 0; run < num_runs; ++run) {
    Rng rng = substream(root ^ 0xabcdef, static_cast<std::uint64_t>(run));
    for (TimingModel tm : kAllModels) {
      const auto idx = static_cast<std::size_t>(model_index(tm));
      out.incidence[idx].add(ms[static_cast<std::size_t>(run)].incidence(tm));
      const DecisionStats ds = decision_stats(
          ms[static_cast<std::size_t>(run)].sat[idx], 3, 5, rng);
      out.rounds[idx].add(ds.mean_rounds);
    }
  }
  return out;
}

TEST(ParallelDeterminism, MeasureRunsIsThreadCountInvariant) {
  for (int n : {3, 5, 8}) {
    for (std::uint64_t root : {7ULL, 0xDEADULL}) {
      ScopedThreads serial(1);
      const Summary base = summarize(n, root, 12, 80);
      for (int threads : {2, 8}) {
        ScopedThreads st(threads);
        const Summary par = summarize(n, root, 12, 80);
        for (int m = 0; m < kNumModels; ++m) {
          const auto i = static_cast<std::size_t>(m);
          EXPECT_EQ(base.incidence[i].count(), par.incidence[i].count());
          EXPECT_TRUE(bits_equal(base.incidence[i].mean(),
                                 par.incidence[i].mean()));
          EXPECT_TRUE(bits_equal(base.incidence[i].variance(),
                                 par.incidence[i].variance()));
          EXPECT_TRUE(bits_equal(base.incidence[i].min(),
                                 par.incidence[i].min()));
          EXPECT_TRUE(bits_equal(base.incidence[i].max(),
                                 par.incidence[i].max()));
          EXPECT_EQ(base.rounds[i], par.rounds[i])
              << "n=" << n << " root=" << root << " model=" << m;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// run_algorithms: full protocol executions are trials too.

TEST(ParallelDeterminism, AlgorithmRunsAreThreadCountInvariant) {
  std::vector<AlgorithmRunConfig> cfgs;
  for (int trial = 0; trial < 10; ++trial) {
    AlgorithmRunConfig cfg;
    cfg.kind = trial % 2 == 0 ? AlgorithmKind::kWlm : AlgorithmKind::kLm3;
    cfg.schedule.n = 5;
    cfg.schedule.model =
        trial % 2 == 0 ? TimingModel::kWlm : TimingModel::kLm;
    cfg.schedule.leader = 1;
    cfg.schedule.gsr = 4 + trial % 3;
    cfg.schedule.seed = substream_seed(99, static_cast<std::uint64_t>(trial));
    for (int i = 0; i < 5; ++i) cfg.proposals.push_back(i + 1);
    cfgs.push_back(cfg);
  }
  ScopedThreads serial(1);
  const auto base = run_algorithms(cfgs);
  for (int threads : {2, 8}) {
    ScopedThreads st(threads);
    const auto par = run_algorithms(cfgs);
    ASSERT_EQ(base.size(), par.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(base[i].all_decided, par[i].all_decided);
      EXPECT_EQ(base[i].global_decision_round, par[i].global_decision_round);
      EXPECT_EQ(base[i].decided_value, par[i].decided_value);
      EXPECT_EQ(base[i].total_messages, par[i].total_messages);
      EXPECT_EQ(base[i].stable_round_messages, par[i].stable_round_messages);
    }
  }
}

}  // namespace
}  // namespace timing

// Tests for the online Omega election layer (oracles/omega_election):
// convergence to a well-connected leader, stability once converged,
// leader-crash failover, and consensus running with NO external oracle.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "consensus/factory.hpp"
#include "consensus/wlm.hpp"
#include "giraf/engine.hpp"
#include "models/schedule.hpp"
#include "oracles/omega_election.hpp"

namespace timing {
namespace {

struct Cluster {
  RoundEngine engine;
  std::vector<OmegaElection*> stacks;
};

std::unique_ptr<Cluster> make_cluster(int n, const std::vector<Value>& props) {
  std::vector<std::unique_ptr<Protocol>> group;
  std::vector<OmegaElection*> stacks;
  for (ProcessId i = 0; i < n; ++i) {
    auto stack = std::make_unique<OmegaElection>(
        i, n, std::make_unique<WlmConsensus>(i, n, props[i]));
    stacks.push_back(stack.get());
    group.push_back(std::move(stack));
  }
  // NO oracle: the election layer is the oracle.
  auto cluster = std::unique_ptr<Cluster>(
      new Cluster{RoundEngine(std::move(group), nullptr), std::move(stacks)});
  return cluster;
}

bool all_trust(const std::vector<OmegaElection*>& stacks, ProcessId who) {
  for (const auto* s : stacks) {
    if (s->trusted_leader() != who) return false;
  }
  return true;
}

TEST(Election, ConvergesToTheConformingLeader) {
  // Minimal <>WLM schedule: ONLY process 3's links work post-GSR. The
  // election must converge on 3 (everyone else gets punished whenever
  // trusted) and then consensus decides.
  const int n = 6;
  std::vector<Value> props{10, 11, 12, 13, 14, 15};
  auto cluster = make_cluster(n, props);

  ScheduleConfig sched;
  sched.n = n;
  sched.model = TimingModel::kWlm;
  sched.leader = 3;
  sched.gsr = 8;
  sched.minimal = true;  // non-leader links are dead post-GSR
  sched.pre_gsr_p = 0.3;
  sched.seed = 11;
  ScheduleSampler sampler(sched);

  LinkMatrix a(n);
  Round converged_at = -1;
  for (Round k = 1; k <= 150; ++k) {
    sampler.sample_round(k, a);
    cluster->engine.step(a);
    if (converged_at < 0 && all_trust(cluster->stacks, 3)) converged_at = k;
  }
  ASSERT_GT(converged_at, 0) << "election never converged on the leader";
  EXPECT_TRUE(all_trust(cluster->stacks, 3)) << "convergence must persist";
  EXPECT_TRUE(cluster->engine.all_alive_decided())
      << "consensus must follow once Omega stabilizes";
  std::set<Value> decisions;
  for (ProcessId i = 0; i < n; ++i) {
    decisions.insert(cluster->engine.process(i).decision());
  }
  EXPECT_EQ(decisions.size(), 1u);
}

TEST(Election, StaysOnLowestIdWhenEveryoneIsTimely) {
  // ES-style network from round 1: process 0 delivers everywhere, is
  // never punished, and wins by the id tie-break immediately.
  const int n = 5;
  std::vector<Value> props{1, 2, 3, 4, 5};
  auto cluster = make_cluster(n, props);
  LinkMatrix a(n, 0);
  for (Round k = 1; k <= 12; ++k) cluster->engine.step(a);
  EXPECT_TRUE(all_trust(cluster->stacks, 0));
  for (const auto* s : cluster->stacks) {
    EXPECT_EQ(s->punish_count(0), 0);
  }
  EXPECT_TRUE(cluster->engine.all_alive_decided());
}

TEST(Election, FailsOverWhenTheLeaderCrashes) {
  // Perfect network; leader 0 crashes at round 15. The survivors must
  // punish it, converge on a new leader, and keep a consistent decision.
  const int n = 5;
  std::vector<Value> props{21, 22, 23, 24, 25};
  auto cluster = make_cluster(n, props);
  cluster->engine.crash_at(0, 15);
  LinkMatrix a(n, 0);
  for (Round k = 1; k <= 60; ++k) cluster->engine.step(a);

  std::set<ProcessId> leaders;
  for (ProcessId i = 1; i < n; ++i) {
    leaders.insert(cluster->stacks[static_cast<std::size_t>(i)]
                       ->trusted_leader());
  }
  ASSERT_EQ(leaders.size(), 1u) << "survivors must agree on a leader";
  EXPECT_NE(*leaders.begin(), 0) << "the crashed leader must be abandoned";
  // Decisions happened before the crash (perfect network decides in ~4
  // rounds), and they persist.
  for (ProcessId i = 1; i < n; ++i) {
    EXPECT_TRUE(cluster->engine.process(i).has_decided());
  }
}

TEST(Election, FailoverMidConsensusStillDecides) {
  // Crash the initial leader BEFORE the protocol can finish (unstable
  // prefix), so the decision must happen under the second leader.
  const int n = 5;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::vector<Value> props{31, 32, 33, 34, 35};
    auto cluster = make_cluster(n, props);
    cluster->engine.crash_at(0, 4);  // dies during chaos

    ScheduleConfig sched;
    sched.n = n;
    sched.model = TimingModel::kWlm;
    sched.leader = 2;  // the network favours p2 post-GSR
    sched.gsr = 10;
    sched.pre_gsr_p = 0.2;
    sched.seed = seed;
    sched.crash_rounds.assign(static_cast<std::size_t>(n), 0);
    sched.crash_rounds[0] = 4;
    ScheduleSampler sampler(sched);

    LinkMatrix a(n);
    for (Round k = 1; k <= 200 && !cluster->engine.all_alive_decided(); ++k) {
      sampler.sample_round(k, a);
      cluster->engine.step(a);
    }
    ASSERT_TRUE(cluster->engine.all_alive_decided()) << "seed " << seed;
    std::set<Value> decisions;
    for (ProcessId i = 1; i < n; ++i) {
      decisions.insert(cluster->engine.process(i).decision());
    }
    EXPECT_EQ(decisions.size(), 1u) << "seed " << seed;
  }
}

TEST(Election, SafetyUnderPermanentChaos) {
  // The election layer must never compromise the inner protocol's
  // indulgence: chaos forever, any decisions still agree.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const int n = 6;
    std::vector<Value> props{41, 42, 43, 44, 45, 46};
    auto cluster = make_cluster(n, props);
    ScheduleConfig sched;
    sched.n = n;
    sched.model = TimingModel::kWlm;
    sched.gsr = 1 << 28;
    sched.pre_gsr_p = 0.4;
    sched.seed = seed * 7;
    ScheduleSampler sampler(sched);
    LinkMatrix a(n);
    for (Round k = 1; k <= 120; ++k) {
      sampler.sample_round(k, a);
      cluster->engine.step(a);
    }
    std::set<Value> decisions;
    for (ProcessId i = 0; i < n; ++i) {
      if (cluster->engine.process(i).has_decided()) {
        decisions.insert(cluster->engine.process(i).decision());
      }
    }
    EXPECT_LE(decisions.size(), 1u) << "seed " << seed;
  }
}

TEST(Election, PunishmentCountersAreMonotone) {
  const int n = 4;
  std::vector<Value> props{1, 2, 3, 4};
  auto cluster = make_cluster(n, props);
  ScheduleConfig sched;
  sched.n = n;
  sched.model = TimingModel::kWlm;
  sched.gsr = 1 << 28;
  sched.pre_gsr_p = 0.3;
  sched.seed = 5;
  ScheduleSampler sampler(sched);
  LinkMatrix a(n);
  std::vector<Timestamp> prev(static_cast<std::size_t>(n), 0);
  for (Round k = 1; k <= 80; ++k) {
    sampler.sample_round(k, a);
    cluster->engine.step(a);
    for (ProcessId j = 0; j < n; ++j) {
      const Timestamp now = cluster->stacks[0]->punish_count(j);
      ASSERT_GE(now, prev[static_cast<std::size_t>(j)]) << "round " << k;
      prev[static_cast<std::size_t>(j)] = now;
    }
  }
}

}  // namespace
}  // namespace timing

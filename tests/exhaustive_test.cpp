// Exhaustive bounded model checking of the consensus protocols.
//
// For n = 3 processes there are 2^6 = 64 possible delivery patterns per
// round (each off-diagonal link delivers or not; self links always do).
// We enumerate EVERY schedule of D rounds - not samples, the full tree -
// and assert the paper's safety properties in every reachable state:
//
//   * uniform agreement: no two processes ever hold different decisions;
//   * validity: decisions are proposals;
//   * Lemma 1: a process's timestamp never exceeds the round number;
//   * Lemma 2: timestamps never decrease;
//   * decisions are stable (write-once).
//
// Depth 3 from the initial state covers 64 + 64^2 + 64^3 = 266,304
// schedules per (algorithm, oracle) pair. To reach deeper, interesting
// states, we additionally run random 6-round prefixes and exhaust every
// 2-round suffix from each.
//
// Adversarial oracles are included: all processes trusting a fixed
// leader, everyone trusting themselves (split brain), and a leader
// rotating every round.
//
// The search trees are embarrassingly parallel: the 64 first-level
// branches (and the randomized prefixes) fan out over the shared thread
// pool (common/parallel.hpp, TIMING_THREADS). Each branch keeps its own
// checker and the visited-state counts are integers summed in branch
// order, so the test's verdict and counts are thread-count-invariant.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "consensus/factory.hpp"

namespace timing {
namespace {

constexpr int kN = 3;
constexpr unsigned kMaskCount = 64;  // 2^(3*2) off-diagonal links

using OracleFn = std::function<ProcessId(ProcessId self, Round k)>;

struct SysState {
  std::vector<std::unique_ptr<Protocol>> procs;
  std::vector<SendSpec> outbox;
  std::vector<Timestamp> prev_ts;
  std::vector<Value> decided;
  Round k = 0;

  SysState clone() const {
    SysState copy;
    copy.outbox = outbox;
    copy.prev_ts = prev_ts;
    copy.decided = decided;
    copy.k = k;
    for (const auto& p : procs) {
      auto c = p->clone();
      TM_CHECK(c != nullptr, "protocol does not support clone()");
      copy.procs.push_back(std::move(c));
    }
    return copy;
  }
};

struct Checker {
  const std::vector<Value>& proposals;
  bool check_lemma1;  // Paxos ballots are exempt
  long long states_checked = 0;

  void check(const SysState& s) {
    ++states_checked;
    std::set<Value> decisions;
    for (ProcessId i = 0; i < kN; ++i) {
      const Protocol& p = *s.procs[static_cast<std::size_t>(i)];
      if (check_lemma1) {
        ASSERT_LE(p.current_ts(), s.k) << "Lemma 1 violated at round " << s.k;
        ASSERT_GE(p.current_ts(), s.prev_ts[static_cast<std::size_t>(i)])
            << "Lemma 2 violated at round " << s.k;
      }
      if (s.decided[static_cast<std::size_t>(i)] != kNoValue) {
        ASSERT_TRUE(p.has_decided()) << "decision retracted";
        ASSERT_EQ(p.decision(), s.decided[static_cast<std::size_t>(i)])
            << "decision changed";
      }
      if (p.has_decided()) {
        decisions.insert(p.decision());
        ASSERT_NE(std::find(proposals.begin(), proposals.end(), p.decision()),
                  proposals.end())
            << "validity violated";
      }
    }
    ASSERT_LE(decisions.size(), 1u)
        << "AGREEMENT violated at round " << s.k;
  }
};

SysState initial_state(AlgorithmKind kind, const std::vector<Value>& props,
                       const OracleFn& oracle) {
  SysState s;
  s.procs = make_group(kind, props);
  for (ProcessId i = 0; i < kN; ++i) {
    s.outbox.push_back(s.procs[static_cast<std::size_t>(i)]->initialize(
        oracle(i, 0)));
  }
  s.prev_ts.assign(kN, 0);
  s.decided.assign(kN, kNoValue);
  return s;
}

// Executes one round with the 6-bit delivery mask. Bit b corresponds to
// the b-th off-diagonal (dst, src) pair in row-major order.
void step(SysState& s, unsigned mask, const OracleFn& oracle) {
  RoundMsgs rows[kN];
  for (auto& row : rows) row.assign(kN, std::nullopt);
  for (ProcessId i = 0; i < kN; ++i) {
    rows[i][static_cast<std::size_t>(i)] =
        s.outbox[static_cast<std::size_t>(i)].msg;
  }
  int bit = 0;
  for (ProcessId dst = 0; dst < kN; ++dst) {
    for (ProcessId src = 0; src < kN; ++src) {
      if (dst == src) continue;
      const bool delivered = (mask >> bit) & 1u;
      ++bit;
      if (!delivered) continue;
      const auto& spec = s.outbox[static_cast<std::size_t>(src)];
      for (ProcessId d : spec.dests) {
        if (d == dst) {
          rows[dst][static_cast<std::size_t>(src)] = spec.msg;
          break;
        }
      }
    }
  }
  ++s.k;
  for (ProcessId i = 0; i < kN; ++i) {
    auto& p = *s.procs[static_cast<std::size_t>(i)];
    s.prev_ts[static_cast<std::size_t>(i)] = p.current_ts();
    if (p.has_decided() &&
        s.decided[static_cast<std::size_t>(i)] == kNoValue) {
      s.decided[static_cast<std::size_t>(i)] = p.decision();
    }
    s.outbox[static_cast<std::size_t>(i)] =
        p.compute(s.k, rows[i], oracle(i, s.k));
  }
}

void dfs(const SysState& s, int depth, const OracleFn& oracle,
         Checker& checker) {
  if (depth == 0) return;
  for (unsigned mask = 0; mask < kMaskCount; ++mask) {
    SysState child = s.clone();
    if (::testing::Test::HasFatalFailure()) return;
    step(child, mask, oracle);
    checker.check(child);
    if (::testing::Test::HasFatalFailure()) return;
    dfs(child, depth - 1, oracle, checker);
  }
}

/// dfs() with the 64 first-level branches spread over the thread pool.
/// Returns the number of states checked below (and including) level 1.
long long parallel_dfs(const SysState& root, int depth, const OracleFn& oracle,
                       const std::vector<Value>& proposals, bool lemma1) {
  const auto counts =
      run_trials<long long>(kMaskCount, [&](std::size_t mask) -> long long {
        Checker checker{proposals, lemma1};
        if (::testing::Test::HasFatalFailure()) return checker.states_checked;
        SysState child = root.clone();
        step(child, static_cast<unsigned>(mask), oracle);
        checker.check(child);
        if (!::testing::Test::HasFatalFailure()) {
          dfs(child, depth - 1, oracle, checker);
        }
        return checker.states_checked;
      });
  long long total = 0;
  for (long long c : counts) total += c;
  return total;
}

struct ExhaustiveCase {
  AlgorithmKind kind;
  int oracle_variant;  // 0 fixed, 1 split (self), 2 rotating
};

OracleFn make_oracle(int variant) {
  switch (variant) {
    case 0: return [](ProcessId, Round) { return 0; };
    case 1: return [](ProcessId self, Round) { return self; };
    default: return [](ProcessId, Round k) { return k % kN; };
  }
}

std::string oracle_name(int variant) {
  switch (variant) {
    case 0: return "Fixed";
    case 1: return "Split";
    default: return "Rotating";
  }
}

class Exhaustive : public ::testing::TestWithParam<ExhaustiveCase> {};

TEST_P(Exhaustive, DepthThreeFromInitialState) {
  const auto [kind, variant] = GetParam();
  const std::vector<Value> props{10, 20, 30};
  const bool lemma1 = kind != AlgorithmKind::kPaxos;
  const OracleFn oracle = make_oracle(variant);
  Checker checker{props, lemma1};
  SysState init = initial_state(kind, props, oracle);
  checker.check(init);
  const long long below =
      parallel_dfs(init, /*depth=*/3, oracle, props, lemma1);
  // 64 + 64^2 + 64^3 nodes, plus the root.
  EXPECT_EQ(checker.states_checked + below, 1 + 64 + 64 * 64 + 64 * 64 * 64);
}

TEST_P(Exhaustive, DepthTwoFromRandomizedDeepStates) {
  const auto [kind, variant] = GetParam();
  const std::vector<Value> props{10, 20, 30};
  const bool lemma1 = kind != AlgorithmKind::kPaxos;
  const OracleFn oracle = make_oracle(variant);
  const std::uint64_t root_seed = 0x5eed ^
                                  static_cast<std::uint64_t>(variant) << 8 ^
                                  static_cast<std::uint64_t>(kind);
  // One sub-stream per prefix: each parallel branch draws its own random
  // walk reproducibly, independent of scheduling.
  const auto counts =
      run_trials<long long>(12, [&](std::size_t prefix) -> long long {
        Checker checker{props, lemma1};
        Rng rng = substream(root_seed, prefix);
        SysState s = initial_state(kind, props, oracle);
        const int len = 3 + static_cast<int>(rng.uniform_int(6));
        for (int r = 0; r < len; ++r) {
          step(s, static_cast<unsigned>(rng.uniform_int(kMaskCount)), oracle);
          checker.check(s);
          if (::testing::Test::HasFatalFailure()) return checker.states_checked;
        }
        dfs(s, /*depth=*/2, oracle, checker);
        return checker.states_checked;
      });
  long long total = 0;
  for (long long c : counts) total += c;
  EXPECT_GT(total, 12 * (64 + 64 * 64));
}

std::vector<ExhaustiveCase> cases() {
  std::vector<ExhaustiveCase> cs;
  for (AlgorithmKind k :
       {AlgorithmKind::kWlm, AlgorithmKind::kEs3, AlgorithmKind::kLm3,
        AlgorithmKind::kLmOverWlm, AlgorithmKind::kPaxos}) {
    for (int variant = 0; variant < 3; ++variant) {
      cs.push_back({k, variant});
    }
  }
  return cs;
}

INSTANTIATE_TEST_SUITE_P(
    SmallSystems, Exhaustive, ::testing::ValuesIn(cases()),
    [](const ::testing::TestParamInfo<ExhaustiveCase>& info) {
      std::string name = to_string(info.param.kind);
      std::string out;
      for (char c : name) {
        if (isalnum(static_cast<unsigned char>(c))) out += c;
      }
      return out + "_" + oracle_name(info.param.oracle_variant);
    });

TEST(Clone, ClonedProtocolsBehaveIdentically) {
  // clone() fidelity: after cloning mid-run, original and copy produce
  // byte-identical message streams for the same inputs.
  for (AlgorithmKind kind :
       {AlgorithmKind::kWlm, AlgorithmKind::kEs3, AlgorithmKind::kLm3,
        AlgorithmKind::kLmOverWlm, AlgorithmKind::kPaxos}) {
    const std::vector<Value> props{10, 20, 30};
    const OracleFn oracle = make_oracle(0);
    SysState s = initial_state(kind, props, oracle);
    Rng rng(44);
    for (int r = 0; r < 5; ++r) {
      step(s, static_cast<unsigned>(rng.uniform_int(kMaskCount)), oracle);
    }
    SysState copy = s.clone();
    for (int r = 0; r < 5; ++r) {
      const unsigned mask = static_cast<unsigned>(rng.uniform_int(kMaskCount));
      step(s, mask, oracle);
      step(copy, mask, oracle);
      for (ProcessId i = 0; i < kN; ++i) {
        ASSERT_EQ(s.outbox[static_cast<std::size_t>(i)].msg,
                  copy.outbox[static_cast<std::size_t>(i)].msg)
            << to_string(kind) << " diverged at suffix round " << r;
      }
    }
  }
}

}  // namespace
}  // namespace timing

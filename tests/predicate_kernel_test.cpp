// Differential tests for the packed predicate kernels and the fused
// sample-and-evaluate path: the bit-plane implementations must agree
// bit-for-bit with the scalar LinkMatrix oracles on randomized matrices
// for every n in 1..65 (crossing the one-word/two-word row boundary),
// with and without crash masks, and the fused samplers must reproduce
// the exact matrices of the scalar sample_round for the same RNG
// sub-stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "models/predicates.hpp"
#include "models/schedule.hpp"
#include "sim/link_matrix.hpp"
#include "sim/packed_eval.hpp"
#include "sim/sampler.hpp"

namespace timing {
namespace {

/// Random matrix with forced-timely self links (the LinkMatrix
/// convention every sampler maintains).
LinkMatrix random_matrix(int n, double p, Rng& rng) {
  LinkMatrix a(n);
  for (ProcessId d = 0; d < n; ++d) {
    for (ProcessId s = 0; s < n; ++s) {
      if (s == d || rng.bernoulli(p)) {
        a.set(d, s, 0);
      } else {
        a.set(d, s, rng.bernoulli(0.3)
                        ? kLost
                        : static_cast<Delay>(1 + rng.uniform_int(4)));
      }
    }
  }
  return a;
}

void expect_same_matrix(const LinkMatrix& want, const PackedLinkMatrix& got) {
  ASSERT_EQ(want.n(), got.n());
  for (ProcessId d = 0; d < want.n(); ++d) {
    for (ProcessId s = 0; s < want.n(); ++s) {
      ASSERT_EQ(want.at(d, s), got.at(d, s))
          << "cell (" << d << ", " << s << ")";
    }
  }
}

TEST(PackedLinkMatrix, SetAtRoundTripAndTailInvariant) {
  for (const int n : {1, 5, 63, 64, 65}) {
    PackedLinkMatrix a(n);
    // Fresh all-timely matrix: tail bits beyond n must be zero.
    for (ProcessId d = 0; d < n; ++d) {
      for (int w = 0; w < a.words_per_row(); ++w) {
        EXPECT_EQ(a.row_words(d)[w] & ~a.word_mask(w), 0u);
      }
      EXPECT_EQ(a.timely_into(d), n);
    }
    a.set(0, n - 1, kLost);
    EXPECT_EQ(a.at(0, n - 1), kLost);
    EXPECT_FALSE(a.timely(0, n - 1));
    a.set(0, n - 1, 3);
    EXPECT_EQ(a.at(0, n - 1), 3);
    // Re-marking timely must win over the stale delay-plane entry.
    a.set(0, n - 1, 0);
    EXPECT_EQ(a.at(0, n - 1), 0);
    EXPECT_TRUE(a.timely(0, n - 1));
    EXPECT_EQ(a.timely_count(), static_cast<std::size_t>(n) * n);
  }
}

TEST(PackedLinkMatrix, AssignFromCopyToRoundTrip) {
  Rng rng(0x5eedULL);
  for (const int n : {1, 2, 64, 65}) {
    const LinkMatrix a = random_matrix(n, 0.7, rng);
    PackedLinkMatrix q(n);
    q.assign_from(a);
    expect_same_matrix(a, q);
    LinkMatrix back;
    q.copy_to(back);
    for (ProcessId d = 0; d < n; ++d) {
      for (ProcessId s = 0; s < n; ++s) {
        EXPECT_EQ(back.at(d, s), a.at(d, s));
      }
    }
    // Counts agree with the scalar oracles.
    for (ProcessId i = 0; i < n; ++i) {
      EXPECT_EQ(q.timely_into(i), a.timely_into(i));
      EXPECT_EQ(q.timely_out_of(i), a.timely_out_of(i));
    }
    EXPECT_DOUBLE_EQ(q.timely_fraction(), a.timely_fraction());
  }
}

TEST(PackedLinkMatrix, LargeNTimelyFractionDoesNotOverflow) {
  // n^2 = 2'147'488'281 > INT_MAX: the historical int division made this
  // UB/garbage. The bit plane holds 46341 x 725 words (~268 MB); the
  // delay plane is never allocated for an all-timely matrix.
  const int n = 46341;
  PackedLinkMatrix a(n);
  EXPECT_EQ(a.timely_count(), static_cast<std::size_t>(n) * n);
  EXPECT_DOUBLE_EQ(a.timely_fraction(), 1.0);
  a.set_untimely(0, 1, kLost);
  const auto total = static_cast<double>(static_cast<std::size_t>(n) * n);
  EXPECT_DOUBLE_EQ(a.timely_fraction(), (total - 1.0) / total);
}

TEST(PredicateKernel, MatchesScalarForAllNAcrossWordBoundary) {
  Rng rng(0xd1ffULL);
  for (int n = 1; n <= 65; ++n) {
    for (const double p : {0.35, 0.8, 0.97}) {
      const LinkMatrix a = random_matrix(n, p, rng);
      PackedLinkMatrix q(n);
      q.assign_from(a);
      const auto leader =
          static_cast<ProcessId>(rng.uniform_int(static_cast<std::uint64_t>(n)));
      EXPECT_EQ(satisfies_es(a), satisfies_es(q)) << "n=" << n;
      EXPECT_EQ(satisfies_lm(a, leader), satisfies_lm(q, leader)) << "n=" << n;
      EXPECT_EQ(satisfies_wlm(a, leader), satisfies_wlm(q, leader))
          << "n=" << n;
      EXPECT_EQ(satisfies_afm(a), satisfies_afm(q)) << "n=" << n;
      EXPECT_EQ(evaluate_all(a, leader), evaluate_all(q, leader))
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(PredicateKernel, MatchesScalarUnderCrashMasks) {
  Rng rng(0xc4a5ULL);
  for (int n = 2; n <= 65; n += (n < 10 ? 1 : 7)) {
    for (int rep = 0; rep < 6; ++rep) {
      const LinkMatrix a = random_matrix(n, 0.85, rng);
      PackedLinkMatrix q(n);
      q.assign_from(a);
      CorrectMask correct(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) correct[i] = rng.bernoulli(0.8);
      const auto leader =
          static_cast<ProcessId>(rng.uniform_int(static_cast<std::uint64_t>(n)));
      EXPECT_EQ(satisfies_es(a, &correct), satisfies_es(q, &correct));
      EXPECT_EQ(satisfies_lm(a, leader, &correct),
                satisfies_lm(q, leader, &correct));
      EXPECT_EQ(satisfies_wlm(a, leader, &correct),
                satisfies_wlm(q, leader, &correct));
      EXPECT_EQ(satisfies_afm(a, &correct), satisfies_afm(q, &correct));
      EXPECT_EQ(evaluate_all(a, leader, &correct),
                evaluate_all(q, leader, &correct))
          << "n=" << n << " rep=" << rep;
    }
  }
}

TEST(PredicateKernel, EvaluateAllEmitsSamePredicateEvent) {
  Rng rng(0xe4e2ULL);
  const LinkMatrix a = random_matrix(9, 0.8, rng);
  PackedLinkMatrix q(9);
  q.assign_from(a);
  BufferSink scalar_sink;
  BufferSink packed_sink;
  (void)evaluate_all(a, 2, nullptr, &scalar_sink, 7);
  (void)evaluate_all(q, 2, nullptr, &packed_sink, 7);
  ASSERT_EQ(scalar_sink.events().size(), 1u);
  ASSERT_EQ(packed_sink.events().size(), 1u);
  EXPECT_TRUE(scalar_sink.events()[0] == packed_sink.events()[0]);
}

TEST(FusedKernel, IidPackedSampleMatchesScalarSubstream) {
  for (const int n : {2, 8, 64, 65}) {
    IidTimelinessSampler scalar(n, 0.9, 0xabcdULL);
    IidTimelinessSampler packed(n, 0.9, 0xabcdULL);
    LinkMatrix a(n);
    PackedLinkMatrix q(n);
    for (Round k = 1; k <= 12; ++k) {
      scalar.sample_round(k, a);
      packed.sample_round(k, q);
      expect_same_matrix(a, q);
    }
  }
}

TEST(FusedKernel, IidFusedReproducesScalarMatricesAndMask) {
  for (const int n : {2, 8, 33, 64, 65}) {
    IidTimelinessSampler scalar(n, 0.85, 0x1234ULL);
    IidTimelinessSampler fused(n, 0.85, 0x1234ULL);
    LinkMatrix a(n);
    PackedLinkMatrix q(n);
    ColumnDeficits cols;
    const ProcessId leader = n > 2 ? 2 : 0;
    for (Round k = 1; k <= 12; ++k) {
      scalar.sample_round(k, a);
      const FusedRoundEval e = fused.sample_round_and_evaluate(k, leader, q, cols);
      expect_same_matrix(a, q);
      EXPECT_EQ(e.mask, evaluate_all(a, leader)) << "n=" << n << " k=" << k;
      // Fate tallies must match a scalar count over the off-diagonal.
      long long timely = 0, late = 0, lost = 0;
      for (ProcessId d = 0; d < n; ++d) {
        for (ProcessId s = 0; s < n; ++s) {
          if (s == d) continue;
          const Delay f = a.at(d, s);
          if (f == 0) ++timely;
          else if (f == kLost) ++lost;
          else ++late;
        }
      }
      EXPECT_EQ(e.timely, timely);
      EXPECT_EQ(e.late, late);
      EXPECT_EQ(e.lost, lost);
    }
  }
}

TEST(FusedKernel, LatencyFusedReproducesScalarMatricesAndMask) {
  // WAN (fixed 8 sites) and a larger LAN group.
  WanProfile wan;
  WanLatencyModel wan_scalar(wan, 77);
  WanLatencyModel wan_fused(wan, 77);
  LanProfile lan;
  lan.n = 16;
  LanLatencyModel lan_scalar(lan, 78);
  LanLatencyModel lan_fused(lan, 78);
  const std::pair<LatencyModel*, LatencyModel*> pairs[] = {
      {&wan_scalar, &wan_fused}, {&lan_scalar, &lan_fused}};
  for (const auto& [scalar_model, fused_model] : pairs) {
    const int n = scalar_model->n();
    LatencyTimelinessSampler scalar(*scalar_model, 170.0);
    LatencyTimelinessSampler fused(*fused_model, 170.0);
    LinkMatrix a(n);
    PackedLinkMatrix q(n);
    ColumnDeficits cols;
    for (Round k = 1; k <= 10; ++k) {
      scalar.sample_round(k, a);
      const FusedRoundEval e = fused.sample_round_and_evaluate(k, 0, q, cols);
      expect_same_matrix(a, q);
      EXPECT_EQ(e.mask, evaluate_all(a, 0)) << "n=" << n << " k=" << k;
    }
  }
}

TEST(FusedKernel, LatencyPackedSampleMatchesScalarSubstream) {
  WanProfile profile;
  WanLatencyModel scalar_model(profile, 5);
  WanLatencyModel packed_model(profile, 5);
  LatencyTimelinessSampler scalar(scalar_model, 140.0);
  LatencyTimelinessSampler packed(packed_model, 140.0);
  LinkMatrix a(scalar.n());
  PackedLinkMatrix q(scalar.n());
  for (Round k = 1; k <= 10; ++k) {
    scalar.sample_round(k, a);
    packed.sample_round(k, q);
    expect_same_matrix(a, q);
  }
}

TEST(FusedKernel, ScheduleSamplerPackedFallbackMatchesScalar) {
  ScheduleConfig cfg;
  cfg.n = 7;
  cfg.model = TimingModel::kWlm;
  cfg.gsr = 3;
  ScheduleSampler scalar(cfg);
  ScheduleSampler packed(cfg);
  LinkMatrix a(cfg.n);
  PackedLinkMatrix q(cfg.n);
  for (Round k = 1; k <= 8; ++k) {
    scalar.sample_round(k, a);
    packed.sample_round(k, q);  // base-class packed fallback
    expect_same_matrix(a, q);
  }
}

TEST(FusedKernel, DefaultFusedPathMatchesDirectKernels) {
  // The base-class sample_round_and_evaluate (packed sample + separate
  // evaluate + tally) must agree with the overridden fused loops.
  const int n = 9;
  IidTimelinessSampler direct(n, 0.8, 42);
  IidTimelinessSampler via_base(n, 0.8, 42);
  PackedLinkMatrix q1(n), q2(n);
  ColumnDeficits c1, c2;
  for (Round k = 1; k <= 8; ++k) {
    const FusedRoundEval a = direct.sample_round_and_evaluate(k, 1, q1, c1);
    const FusedRoundEval b =
        via_base.TimelinessSampler::sample_round_and_evaluate(k, 1, q2, c2);
    EXPECT_EQ(a.mask, b.mask);
    EXPECT_EQ(a.timely, b.timely);
    EXPECT_EQ(a.late, b.late);
    EXPECT_EQ(a.lost, b.lost);
    for (ProcessId d = 0; d < n; ++d) {
      for (ProcessId s = 0; s < n; ++s) {
        ASSERT_EQ(q1.at(d, s), q2.at(d, s));
      }
    }
  }
}

}  // namespace
}  // namespace timing

// Granular (per-link) timing models: the LinkModelMatrix spec grammar,
// and the granular predicate paths against two oracles:
//  * the all-sync LinkModelMatrix must be bit-identical to the
//    homogeneous predicates for every n in 1..65 (crossing the
//    one-word/two-word row boundary), crash masks included — the
//    refactor's backwards-compatibility guarantee;
//  * on mixed matrices the packed granular kernels must agree
//    bit-for-bit with the scalar granular loops.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/equations.hpp"
#include "analysis/granular.hpp"
#include "common/rng.hpp"
#include "harness/experiments.hpp"
#include "models/link_model_matrix.hpp"
#include "models/predicates.hpp"
#include "sim/link_matrix.hpp"
#include "sim/packed_eval.hpp"

namespace timing {
namespace {

/// Random matrix with forced-timely self links (the LinkMatrix
/// convention every sampler maintains).
LinkMatrix random_matrix(int n, double p, Rng& rng) {
  LinkMatrix a(n);
  for (ProcessId d = 0; d < n; ++d) {
    for (ProcessId s = 0; s < n; ++s) {
      if (s == d || rng.bernoulli(p)) {
        a.set(d, s, 0);
      } else {
        a.set(d, s, rng.bernoulli(0.3)
                        ? kLost
                        : static_cast<Delay>(1 + rng.uniform_int(4)));
      }
    }
  }
  return a;
}

/// Random per-link class assignment (self links stay sync by
/// construction of LinkModelMatrix::set).
LinkModelMatrix random_classes(int n, Rng& rng) {
  LinkModelMatrix m(n);
  for (ProcessId d = 0; d < n; ++d) {
    for (ProcessId s = 0; s < n; ++s) {
      m.set(d, s, static_cast<LinkModelClass>(rng.uniform_int(3)));
    }
  }
  return m;
}

TEST(LinkModelSpec, ParsesTheReadmeExample) {
  LinkModelMatrix m;
  ASSERT_EQ(parse_link_models("sync:all;async:0->2,3->*", 5, m), "");
  EXPECT_EQ(m.n(), 5);
  EXPECT_EQ(m.at(2, 0), LinkModelClass::kAsync);   // 0->2: src 0, dst 2
  EXPECT_EQ(m.at(0, 3), LinkModelClass::kAsync);   // 3->*: src 3, all dsts
  EXPECT_EQ(m.at(4, 3), LinkModelClass::kAsync);
  EXPECT_EQ(m.at(3, 3), LinkModelClass::kSync);    // wildcard skips self
  EXPECT_EQ(m.at(1, 0), LinkModelClass::kSync);
  EXPECT_EQ(m.count(LinkModelClass::kAsync), 1 + 4);
}

TEST(LinkModelSpec, UnmentionedLinksDefaultToSync) {
  LinkModelMatrix m;
  ASSERT_EQ(parse_link_models("psync:1->0", 3, m), "");
  EXPECT_EQ(m.at(0, 1), LinkModelClass::kPartialSync);
  EXPECT_EQ(m.count(LinkModelClass::kPartialSync), 1);
  EXPECT_FALSE(m.all_sync());
  LinkModelMatrix all;
  ASSERT_EQ(parse_link_models("sync:all", 3, all), "");
  EXPECT_TRUE(all.all_sync());
}

TEST(LinkModelSpec, LaterClausesOverwriteEarlierOnes) {
  LinkModelMatrix m;
  ASSERT_EQ(parse_link_models("async:all;sync:*->0;psync:1->2", 4, m), "");
  for (ProcessId s = 0; s < 4; ++s) {
    EXPECT_EQ(m.at(0, s), LinkModelClass::kSync) << "src " << s;
  }
  EXPECT_EQ(m.at(2, 1), LinkModelClass::kPartialSync);
  EXPECT_EQ(m.at(3, 2), LinkModelClass::kAsync);
}

TEST(LinkModelSpec, RejectsMalformedSpecs) {
  LinkModelMatrix m;
  EXPECT_NE(parse_link_models("", 3, m), "");
  EXPECT_NE(parse_link_models("fast:all", 3, m), "");
  EXPECT_NE(parse_link_models("sync", 3, m), "");
  EXPECT_NE(parse_link_models("sync:", 3, m), "");
  EXPECT_NE(parse_link_models("async:0-2", 3, m), "");
  EXPECT_NE(parse_link_models("async:0->7", 3, m), "");   // out of range
  EXPECT_NE(parse_link_models("async:x->1", 3, m), "");
  EXPECT_NE(parse_link_models("async:1->1", 3, m), "");   // self link
  // Error strings name the offending clause or pair.
  EXPECT_NE(parse_link_models("fast:all", 3, m).find("'fast'"),
            std::string::npos);
  EXPECT_NE(parse_link_models("async:0->7", 3, m).find("out of range"),
            std::string::npos);
}

TEST(LinkModelMatrix, MixedIsDeterministicAndHitsTheFractions) {
  const LinkModelMatrix a = LinkModelMatrix::mixed(10, 0.3, 0.5, 42);
  const LinkModelMatrix b = LinkModelMatrix::mixed(10, 0.3, 0.5, 42);
  for (ProcessId d = 0; d < 10; ++d) {
    for (ProcessId s = 0; s < 10; ++s) {
      ASSERT_EQ(a.at(d, s), b.at(d, s));
    }
  }
  // 90 off-diagonal links: 27 async, then half of the remaining 63
  // (rounded) psync; diagonal stays sync.
  EXPECT_EQ(a.count(LinkModelClass::kAsync), 27);
  EXPECT_EQ(a.count(LinkModelClass::kPartialSync), 32);
  for (ProcessId i = 0; i < 10; ++i) {
    EXPECT_EQ(a.at(i, i), LinkModelClass::kSync);
  }
  const LinkModelMatrix c = LinkModelMatrix::mixed(10, 0.3, 0.5, 43);
  bool any_diff = false;
  for (ProcessId d = 0; d < 10 && !any_diff; ++d) {
    for (ProcessId s = 0; s < 10; ++s) {
      if (a.at(d, s) != c.at(d, s)) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff) << "different seeds should shuffle differently";
}

TEST(GranularEquivalence, AllSyncMatchesHomogeneousForAllN) {
  Rng rng(0x9ea4ULL);
  for (int n = 1; n <= 65; ++n) {
    const GranularContext g{LinkModelMatrix(n)};
    ASSERT_TRUE(g.all_sync());
    for (const double p : {0.35, 0.8, 0.97}) {
      const LinkMatrix a = random_matrix(n, p, rng);
      PackedLinkMatrix q(n);
      q.assign_from(a);
      const auto leader = static_cast<ProcessId>(
          rng.uniform_int(static_cast<std::uint64_t>(n)));
      const std::uint8_t want = evaluate_all(a, leader);
      ASSERT_EQ(want, evaluate_all(q, leader));
      const GranularEval gs = evaluate_all_granular(a, leader, g);
      const GranularEval gp = evaluate_all_granular(q, leader, g);
      EXPECT_EQ(gs.sat, want) << "scalar n=" << n << " p=" << p;
      EXPECT_EQ(gp.sat, want) << "packed n=" << n << " p=" << p;
      // All links are sync: the sync class conforms iff every link was
      // timely; the empty psync/async classes conform vacuously.
      const std::uint8_t want_csat =
          static_cast<std::uint8_t>(((want & 1u) ? 1u : 0u) | 0b110u);
      EXPECT_EQ(gs.csat, want_csat);
      EXPECT_EQ(gp.csat, want_csat);
      for (TimingModel m : kAllModels) {
        EXPECT_EQ(satisfies_granular(m, a, leader, g),
                  satisfies(m, a, leader));
        EXPECT_EQ(satisfies_granular(m, q, leader, g),
                  satisfies(m, q, leader));
      }
    }
  }
}

TEST(GranularEquivalence, AllSyncMatchesHomogeneousUnderCrashMasks) {
  Rng rng(0xc4a6ULL);
  for (int n = 2; n <= 65; n += (n < 10 ? 1 : 7)) {
    const GranularContext g{LinkModelMatrix(n)};
    for (int rep = 0; rep < 6; ++rep) {
      const LinkMatrix a = random_matrix(n, 0.85, rng);
      PackedLinkMatrix q(n);
      q.assign_from(a);
      CorrectMask correct(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) correct[i] = rng.bernoulli(0.8);
      const auto leader = static_cast<ProcessId>(
          rng.uniform_int(static_cast<std::uint64_t>(n)));
      const std::uint8_t want = evaluate_all(a, leader, &correct);
      ASSERT_EQ(want, evaluate_all(q, leader, &correct));
      const GranularEval gs = evaluate_all_granular(a, leader, g, &correct);
      const GranularEval gp = evaluate_all_granular(q, leader, g, &correct);
      EXPECT_EQ(gs.sat, want) << "scalar n=" << n << " rep=" << rep;
      EXPECT_EQ(gp.sat, want) << "packed n=" << n << " rep=" << rep;
      EXPECT_EQ(gs.csat, gp.csat);
      for (TimingModel m : kAllModels) {
        EXPECT_EQ(satisfies_granular(m, a, leader, g, &correct),
                  satisfies(m, a, leader, &correct));
        EXPECT_EQ(satisfies_granular(m, q, leader, g, &correct),
                  satisfies(m, q, leader, &correct));
      }
    }
  }
}

TEST(GranularKernel, PackedMatchesScalarOnMixedMatrices) {
  Rng rng(0x6a4aULL);
  for (int n = 1; n <= 65; ++n) {
    const GranularContext g(random_classes(n, rng));
    for (const double p : {0.5, 0.9}) {
      const LinkMatrix a = random_matrix(n, p, rng);
      PackedLinkMatrix q(n);
      q.assign_from(a);
      const auto leader = static_cast<ProcessId>(
          rng.uniform_int(static_cast<std::uint64_t>(n)));
      const GranularEval gs = evaluate_all_granular(a, leader, g);
      const GranularEval gp = evaluate_all_granular(q, leader, g);
      EXPECT_EQ(gs.sat, gp.sat) << "n=" << n << " p=" << p;
      EXPECT_EQ(gs.csat, gp.csat) << "n=" << n << " p=" << p;
      for (TimingModel m : kAllModels) {
        EXPECT_EQ(satisfies_granular(m, a, leader, g),
                  satisfies_granular(m, q, leader, g))
            << "n=" << n << " model=" << static_cast<int>(m);
      }
    }
  }
}

TEST(GranularKernel, PackedMatchesScalarUnderCrashMasks) {
  Rng rng(0x7b5bULL);
  for (int n = 2; n <= 65; n += (n < 10 ? 1 : 7)) {
    const GranularContext g(random_classes(n, rng));
    for (int rep = 0; rep < 6; ++rep) {
      const LinkMatrix a = random_matrix(n, 0.8, rng);
      PackedLinkMatrix q(n);
      q.assign_from(a);
      CorrectMask correct(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) correct[i] = rng.bernoulli(0.8);
      const auto leader = static_cast<ProcessId>(
          rng.uniform_int(static_cast<std::uint64_t>(n)));
      const GranularEval gs = evaluate_all_granular(a, leader, g, &correct);
      const GranularEval gp = evaluate_all_granular(q, leader, g, &correct);
      EXPECT_EQ(gs.sat, gp.sat) << "n=" << n << " rep=" << rep;
      EXPECT_EQ(gs.csat, gp.csat) << "n=" << n << " rep=" << rep;
      for (TimingModel m : kAllModels) {
        EXPECT_EQ(satisfies_granular(m, a, leader, g, &correct),
                  satisfies_granular(m, q, leader, g, &correct));
      }
    }
  }
}

TEST(GranularSemantics, AsyncLinksCarryNoObligation) {
  // Only the async link is untimely: granular ES still holds (no
  // required link failed) while the homogeneous predicate fails.
  LinkModelMatrix cls(3);
  cls.set(1, 0, LinkModelClass::kAsync);
  const GranularContext g(std::move(cls));
  LinkMatrix a(3, 0);
  a.set(1, 0, kLost);
  PackedLinkMatrix q(3);
  q.assign_from(a);
  EXPECT_FALSE(satisfies_es(a));
  EXPECT_TRUE(satisfies_granular(TimingModel::kEs, a, 0, g));
  EXPECT_TRUE(satisfies_granular(TimingModel::kEs, q, 0, g));
  const GranularEval e = evaluate_all_granular(q, 0, g);
  // sync and psync classes conform; the async class does not.
  EXPECT_EQ(e.csat, 0b011);
}

TEST(GranularSemantics, AsyncLinksCannotCountTowardsQuorums) {
  // All links timely, but both non-self links into process 1 are async:
  // its reliable row count is 1 < majority_size(3) = 2, so <>LM and
  // <>AFM fail even though the homogeneous predicates hold.
  LinkModelMatrix cls(3);
  cls.set(1, 0, LinkModelClass::kAsync);
  cls.set(1, 2, LinkModelClass::kAsync);
  const GranularContext g(std::move(cls));
  const LinkMatrix a(3, 0);
  PackedLinkMatrix q(3);
  q.assign_from(a);
  const ProcessId leader = 0;
  EXPECT_TRUE(satisfies_lm(a, leader));
  EXPECT_TRUE(satisfies_afm(a));
  const GranularEval gs = evaluate_all_granular(a, leader, g);
  const GranularEval gp = evaluate_all_granular(q, leader, g);
  EXPECT_EQ(gs.sat, gp.sat);
  EXPECT_TRUE(gs.sat & (1u << static_cast<int>(TimingModel::kEs)));
  EXPECT_FALSE(gs.sat & (1u << static_cast<int>(TimingModel::kLm)));
  // The leader's own row has no async links, so <>WLM still holds.
  EXPECT_TRUE(gs.sat & (1u << static_cast<int>(TimingModel::kWlm)));
  EXPECT_FALSE(gs.sat & (1u << static_cast<int>(TimingModel::kAfm)));
  // Everything was timely, so every class conforms.
  EXPECT_EQ(gs.csat, 0b111);
}

TEST(GranularTrace, EmitsPredicateEventWithClassConformance) {
  Rng rng(0xe4e3ULL);
  const LinkMatrix a = random_matrix(9, 0.8, rng);
  PackedLinkMatrix q(9);
  q.assign_from(a);
  const GranularContext g(LinkModelMatrix::mixed(9, 0.25, 0.25, 7));
  BufferSink scalar_sink;
  BufferSink packed_sink;
  const GranularEval e = evaluate_all_granular(a, 2, g, nullptr,
                                               &scalar_sink, 7);
  (void)evaluate_all_granular(q, 2, g, nullptr, &packed_sink, 7);
  ASSERT_EQ(scalar_sink.events().size(), 1u);
  ASSERT_EQ(packed_sink.events().size(), 1u);
  EXPECT_TRUE(scalar_sink.events()[0] == packed_sink.events()[0]);
  const TraceEvent& ev = scalar_sink.events()[0];
  EXPECT_EQ(ev.kind, EventKind::kPredicateEval);
  EXPECT_EQ(ev.sat, e.sat);
  EXPECT_EQ(ev.csat, e.csat);
  EXPECT_NE(ev.csat, kTraceNoClassSat);
  // The homogeneous entry point leaves csat at the sentinel.
  BufferSink homog_sink;
  (void)evaluate_all(a, 2, nullptr, &homog_sink, 7);
  ASSERT_EQ(homog_sink.events().size(), 1u);
  EXPECT_EQ(homog_sink.events()[0].csat, kTraceNoClassSat);
}

TEST(GranularAnalysis, AllSyncMatchesClosedForms) {
  // With every link sync and p_sync = p the Poisson-binomial tails
  // collapse to the paper's binomial closed forms; the DP reassociates
  // the products, so compare with a tight relative tolerance.
  // equations.hpp's closed forms require n > 1 (valid_np); the granular
  // formulas have no such restriction, so start the comparison at 2.
  for (const int n : {2, 3, 5, 8, 16, 33}) {
    for (const double p : {0.35, 0.8, 0.97}) {
      const LinkModelMatrix m(n);
      analysis::GranularLinkProbs q;
      q.p_sync = p;
      const ProcessId leader = n / 2;
      const double tol = 1e-12;
      EXPECT_NEAR(analysis::granular_p_es(m, q), analysis::p_es(n, p),
                  tol * analysis::p_es(n, p))
          << "n=" << n << " p=" << p;
      EXPECT_NEAR(analysis::granular_p_lm(m, leader, q),
                  analysis::p_lm(n, p), tol)
          << "n=" << n << " p=" << p;
      EXPECT_NEAR(analysis::granular_p_wlm(m, leader, q),
                  analysis::p_wlm(n, p), tol)
          << "n=" << n << " p=" << p;
      EXPECT_NEAR(analysis::granular_p_afm(m, q), analysis::p_afm(n, p),
                  tol)
          << "n=" << n << " p=" << p;
      for (const TimingModel model : kAllModels) {
        EXPECT_NEAR(analysis::granular_p_model(model, m, leader, q),
                    analysis::p_model(model, n, p), tol)
            << "n=" << n << " p=" << p;
      }
    }
  }
}

TEST(GranularAnalysis, AsyncLinksDropOutOfConformanceTerms) {
  // n = 3, maj = 2, one async link 0->2 (src 0, dst 2): the eight
  // remaining required links drive G-ES, and the async link only shows
  // up in the per-class conformance probability.
  LinkModelMatrix m(3);
  ASSERT_EQ(parse_link_models("sync:all;async:0->2", 3, m), "");
  analysis::GranularLinkProbs q;
  q.p_sync = 0.8;
  q.p_async = 0.3;
  const double p = q.p_sync;
  EXPECT_NEAR(analysis::granular_p_es(m, q), std::pow(p, 8), 1e-12);
  // Removing a requirement can only help: strictly above all-sync ES.
  EXPECT_GT(analysis::granular_p_es(m, q), analysis::p_es(3, p));
  // Row 2 lost a quorum candidate, so <>LM drops below all-sync:
  // rows 0/1 contribute p * (1 - (1-p)^2) each, row 2 only p * p.
  const double row_full = p * (1.0 - (1.0 - p) * (1.0 - p));
  EXPECT_NEAR(analysis::granular_p_lm(m, 1, q),
              row_full * row_full * p * p, 1e-12);
  EXPECT_LT(analysis::granular_p_lm(m, 1, q), analysis::p_lm(3, p));
  // Per-class conformance: one async link, eight sync links.
  EXPECT_NEAR(analysis::granular_p_class(m, LinkModelClass::kAsync, q),
              q.p_async, 1e-15);
  EXPECT_NEAR(analysis::granular_p_class(m, LinkModelClass::kSync, q),
              std::pow(p, 8), 1e-12);
  EXPECT_NEAR(analysis::granular_p_class(m, LinkModelClass::kPartialSync, q),
              1.0, 1e-15);
}

TEST(GranularMeasurement, AllSyncStreamingIsBitIdentical) {
  // Same sampler sub-stream, same start_rng: the granular streaming path
  // under an all-sync matrix must reproduce every StreamedRun field of
  // the homogeneous fused path exactly.
  const int n = 9;
  const std::array<int, kNumModels> needed{3, 3, 4, 5};
  IidTimelinessSampler s_homog(n, 0.9, 0x5eed);
  IidTimelinessSampler s_gran(n, 0.9, 0x5eed);
  Rng r_homog(7);
  Rng r_gran(7);
  const StreamedRun a =
      measure_run_streaming(s_homog, 200, 2, needed, 10, r_homog);
  const GranularContext g{LinkModelMatrix(n)};
  const GranularStreamedRun b =
      measure_run_streaming_granular(s_gran, 200, 2, needed, 10, r_gran, g);
  EXPECT_EQ(a.messages_total, b.base.messages_total);
  EXPECT_EQ(a.messages_timely, b.base.messages_timely);
  EXPECT_EQ(a.messages_late, b.base.messages_late);
  EXPECT_EQ(a.messages_lost, b.base.messages_lost);
  for (int idx = 0; idx < kNumModels; ++idx) {
    const auto i = static_cast<std::size_t>(idx);
    EXPECT_EQ(a.pm[i], b.base.pm[i]) << idx;
    EXPECT_EQ(a.mean_rounds[i], b.base.mean_rounds[i]) << idx;
    EXPECT_EQ(a.censored[i], b.base.censored[i]) << idx;
  }
  // All links are sync, so sync-class conformance IS the ES incidence;
  // the empty classes are vacuously conforming every round.
  EXPECT_EQ(b.class_pm[0], b.base.pm[model_index(TimingModel::kEs)]);
  EXPECT_EQ(b.class_pm[1], 1.0);
  EXPECT_EQ(b.class_pm[2], 1.0);
}

TEST(GranularExperiment, AllSyncSweepIsBitIdentical) {
  // The full Section 5 sweep kernel with link_models = all-sync must be
  // byte-identical to the homogeneous sweep — the refactor's
  // backwards-compatibility guarantee at the experiment level (this is
  // what keeps fig1c/fig1g outputs stable under link_models=sync:all).
  ExperimentConfig cfg;
  cfg.testbed = Testbed::kWan;
  cfg.timeouts_ms = {180, 260};
  cfg.runs = 3;
  cfg.rounds_per_run = 60;
  cfg.start_points = 5;
  cfg.seed = 99;
  const auto base = run_experiment(cfg);
  cfg.link_models = LinkModelMatrix(cfg.wan.n);
  const auto gran = run_experiment(cfg);
  ASSERT_EQ(base.size(), gran.size());
  for (std::size_t ti = 0; ti < base.size(); ++ti) {
    EXPECT_EQ(base[ti].timeout_ms, gran[ti].timeout_ms);
    EXPECT_EQ(base[ti].mean_p, gran[ti].mean_p);
    EXPECT_FALSE(base[ti].granular);
    EXPECT_TRUE(gran[ti].granular);
    for (int idx = 0; idx < kNumModels; ++idx) {
      const auto& bm = base[ti].models[static_cast<std::size_t>(idx)];
      const auto& gm = gran[ti].models[static_cast<std::size_t>(idx)];
      EXPECT_EQ(bm.mean_pm, gm.mean_pm) << ti << " " << idx;
      EXPECT_EQ(bm.ci95_pm, gm.ci95_pm) << ti << " " << idx;
      EXPECT_EQ(bm.var_pm, gm.var_pm) << ti << " " << idx;
      EXPECT_EQ(bm.mean_rounds, gm.mean_rounds) << ti << " " << idx;
      EXPECT_EQ(bm.mean_time_ms, gm.mean_time_ms) << ti << " " << idx;
      EXPECT_EQ(bm.censored_fraction, gm.censored_fraction) << ti << " "
                                                            << idx;
    }
    // Same fold order, same values: sync conformance == mean ES P_M.
    EXPECT_EQ(gran[ti].mean_class_pm[0],
              gran[ti].models[model_index(TimingModel::kEs)].mean_pm);
  }
}

TEST(GranularAnalysis, TimelySelfMatchesTheSamplerConvention) {
  // With timely_self the three self links drop out of every product:
  // all-sync ES becomes p^(n^2 - n) instead of the paper's p^(n^2).
  const LinkModelMatrix m(3);
  analysis::GranularLinkProbs q;
  q.p_sync = 0.8;
  q.timely_self = true;
  EXPECT_NEAR(analysis::granular_p_es(m, q), std::pow(0.8, 6), 1e-12);
  EXPECT_NEAR(analysis::granular_p_class(m, LinkModelClass::kSync, q),
              std::pow(0.8, 6), 1e-12);
  // WLM: required leader column (2 off-diagonal links at p) times the
  // leader row reaching maj-1 = 1 of its 2 remaining links.
  EXPECT_NEAR(analysis::granular_p_wlm(m, 0, q),
              0.8 * 0.8 * (1.0 - 0.2 * 0.2), 1e-12);
}

}  // namespace
}  // namespace timing

// Unit tests for src/sim: the link matrix and the latency models /
// timeliness samplers that stand in for the paper's testbeds.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "sim/latency_model.hpp"
#include "sim/link_matrix.hpp"
#include "sim/sampler.hpp"

namespace timing {
namespace {

TEST(LinkMatrix, BasicAccess) {
  LinkMatrix a(4, kLost);
  EXPECT_EQ(a.n(), 4);
  EXPECT_FALSE(a.timely(0, 1));
  a.set(0, 1, 0);
  EXPECT_TRUE(a.timely(0, 1));
  a.set(2, 3, 5);
  EXPECT_EQ(a.at(2, 3), 5);
  EXPECT_FALSE(a.timely(2, 3));
}

TEST(LinkMatrix, RowColumnCounts) {
  LinkMatrix a(3, kLost);
  a.set(0, 0, 0);
  a.set(0, 1, 0);
  a.set(2, 1, 0);
  EXPECT_EQ(a.timely_into(0), 2);
  EXPECT_EQ(a.timely_into(1), 0);
  EXPECT_EQ(a.timely_into(2), 1);
  EXPECT_EQ(a.timely_out_of(1), 2);
  EXPECT_EQ(a.timely_out_of(2), 0);
}

TEST(LinkMatrix, TimelyFraction) {
  LinkMatrix a(2, 0);
  EXPECT_DOUBLE_EQ(a.timely_fraction(), 1.0);
  a.set(0, 1, kLost);
  EXPECT_DOUBLE_EQ(a.timely_fraction(), 0.75);
  a.fill(kLost);
  EXPECT_DOUBLE_EQ(a.timely_fraction(), 0.0);
}

TEST(IidSampler, MatchesP) {
  IidTimelinessSampler s(8, 0.9, 77);
  LinkMatrix a(8);
  long long timely = 0, total = 0;
  for (Round k = 1; k <= 2000; ++k) {
    s.sample_round(k, a);
    for (ProcessId d = 0; d < 8; ++d) {
      ASSERT_TRUE(a.timely(d, d)) << "self link must be timely";
      for (ProcessId src = 0; src < 8; ++src) {
        if (src == d) continue;
        ++total;
        timely += a.timely(d, src) ? 1 : 0;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(timely) / total, 0.9, 0.005);
}

TEST(IidSampler, ExtremeP) {
  IidTimelinessSampler all(4, 1.0, 1), none(4, 0.0, 1);
  LinkMatrix a(4);
  all.sample_round(1, a);
  EXPECT_DOUBLE_EQ(a.timely_fraction(), 1.0);
  none.sample_round(1, a);
  for (ProcessId d = 0; d < 4; ++d) {
    for (ProcessId s = 0; s < 4; ++s) {
      EXPECT_EQ(a.timely(d, s), d == s);
    }
  }
}

TEST(IidLatencyModel, RespectsImpliedTimeout) {
  IidLatencyModel m(8, 0.8, 5, 0.25, 1.0);
  m.begin_round(1);
  int timely = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const double ms = m.sample_ms(0, 1);
    if (ms <= 1.0) ++timely;
  }
  EXPECT_NEAR(static_cast<double>(timely) / trials, 0.8, 0.01);
}

TEST(LatencySampler, ThresholdsAndDelays) {
  // A degenerate one-value latency model for exact behaviour checks.
  class Fixed final : public LatencyModel {
   public:
    explicit Fixed(double ms) : ms_(ms) {}
    int n() const noexcept override { return 3; }
    void begin_round(Round) override {}
    double sample_ms(ProcessId s, ProcessId d) override {
      return s == d ? 0.0 : ms_;
    }
    double ms_;
  };

  Fixed model(30.0);
  LatencyTimelinessSampler s(model, 100.0);
  LinkMatrix a(3);
  s.sample_round(1, a);
  EXPECT_TRUE(a.timely(0, 1));  // 30 <= 100

  model.ms_ = 250.0;  // floor(250/100) = 2 rounds late
  s.sample_round(2, a);
  EXPECT_EQ(a.at(0, 1), 2);

  model.ms_ = std::numeric_limits<double>::infinity();
  s.sample_round(3, a);
  EXPECT_EQ(a.at(0, 1), kLost);
}

TEST(LatencySampler, SinkSeesEveryMessage) {
  LanLatencyModel model(LanProfile{}, 3);
  LatencyTimelinessSampler s(model, 0.5);
  int count = 0;
  s.set_latency_sink([&](ProcessId, ProcessId, double) { ++count; });
  LinkMatrix a(8);
  s.sample_round(1, a);
  EXPECT_EQ(count, 8 * 7);
}

TEST(LanModel, SelfLatencyZero) {
  LanLatencyModel m(LanProfile{}, 11);
  m.begin_round(1);
  EXPECT_EQ(m.sample_ms(3, 3), 0.0);
}

TEST(LanModel, LatenciesPositiveAndFinite_MostOfTheTime) {
  LanLatencyModel m(LanProfile{}, 13);
  int lost = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    m.begin_round(i + 1);
    const double ms = m.sample_ms(0, 1);
    if (!std::isfinite(ms)) {
      ++lost;
      continue;
    }
    ASSERT_GT(ms, 0.0);
    ASSERT_LT(ms, 1000.0);
  }
  EXPECT_LT(lost, trials / 100);
}

TEST(WanModel, SiteNamesAndBaseSymmetry) {
  WanLatencyModel m(WanProfile{}, 17);
  EXPECT_EQ(m.node_name(WanLatencyModel::kUk), "UK");
  EXPECT_EQ(m.node_name(5), "PL");
  for (ProcessId i = 0; i < 8; ++i) {
    for (ProcessId j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(m.base_ms(i, j), m.base_ms(j, i));
      EXPECT_EQ(static_cast<int>(m.quality(i, j)),
                static_cast<int>(m.quality(j, i)));
    }
  }
}

TEST(WanModel, UkIsWellConnected) {
  // Every UK link is at most Medium quality and at most 95 ms base -
  // the property that justified the paper's leader choice.
  WanLatencyModel m(WanProfile{}, 19);
  for (ProcessId j = 0; j < 8; ++j) {
    if (j == WanLatencyModel::kUk) continue;
    EXPECT_NE(static_cast<int>(m.quality(WanLatencyModel::kUk, j)),
              static_cast<int>(LinkQuality::kBad));
    EXPECT_LE(m.base_ms(WanLatencyModel::kUk, j), 95.0);
  }
}

TEST(WanModel, SlowRunFlagIsSeedDependent) {
  std::set<bool> seen;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    WanLatencyModel m(WanProfile{}, seed);
    seen.insert(m.slow_run());
  }
  EXPECT_EQ(seen.size(), 2u) << "both slow and normal runs must occur";
}

TEST(WanModel, SlowRunFractionNearConfig) {
  WanProfile prof;
  int slow = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    WanLatencyModel m(prof, static_cast<std::uint64_t>(i) * 977 + 5);
    slow += m.slow_run() ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(slow) / trials, prof.slow_run_prob, 0.05);
}

TEST(WanModel, LatencyAtLeastRelatedToBase) {
  WanProfile prof;
  prof.slow_run_prob = 0.0;
  WanLatencyModel m(prof, 23);
  m.begin_round(1);
  // Average of many samples should be in the ballpark of the base.
  double sum = 0.0;
  int finite = 0;
  for (int i = 0; i < 5000; ++i) {
    const double ms = m.sample_ms(0, 6);  // CH -> UK, base 10, good
    if (std::isfinite(ms)) {
      sum += ms;
      ++finite;
    }
  }
  const double avg = sum / finite;
  EXPECT_GT(avg, 8.0);
  EXPECT_LT(avg, 16.0);
}

TEST(WanModel, BurstyOutboundRaisesChinaLatency) {
  WanProfile prof;
  prof.slow_run_prob = 0.0;
  prof.burst_enter_prob = 1.0;  // burst every round
  prof.burst_exit_prob = 0.0;
  WanLatencyModel m(prof, 29);
  m.begin_round(1);
  m.begin_round(2);
  double with_burst = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double ms = m.sample_ms(4, 0);  // CN -> CH
    if (std::isfinite(ms)) with_burst += ms;
  }
  prof.burst_enter_prob = 0.0;
  WanLatencyModel m2(prof, 29);
  m2.begin_round(1);
  double without = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double ms = m2.sample_ms(4, 0);
    if (std::isfinite(ms)) without += ms;
  }
  EXPECT_GT(with_burst / 500.0, without / 500.0 + prof.burst_extra_ms * 0.8);
}

TEST(WanModel, SlowInboundHitsOnlyPoland) {
  WanProfile prof;
  prof.slow_run_prob = 1.0;
  prof.slow_enter_prob = 1.0;
  prof.slow_exit_prob = 0.0;
  prof.burst_enter_prob = 0.0;
  WanLatencyModel m(prof, 31);
  ASSERT_TRUE(m.slow_run());
  m.begin_round(1);
  m.begin_round(2);  // episode surely active
  double pl_in = 0.0, se_in = 0.0;
  for (int i = 0; i < 400; ++i) {
    const double a = m.sample_ms(0, 5);  // CH -> PL
    const double b = m.sample_ms(0, 7);  // CH -> SE
    if (std::isfinite(a)) pl_in += a;
    if (std::isfinite(b)) se_in += b;
  }
  EXPECT_GT(pl_in / 400.0, se_in / 400.0 + prof.slow_extra_ms * 0.8);
}

TEST(Determinism, SameSeedSameMatrices) {
  for (int variant = 0; variant < 2; ++variant) {
    WanProfile prof;
    WanLatencyModel m1(prof, 99), m2(prof, 99);
    LatencyTimelinessSampler s1(m1, 170.0), s2(m2, 170.0);
    LinkMatrix a(8), b(8);
    for (Round k = 1; k <= 50; ++k) {
      s1.sample_round(k, a);
      s2.sample_round(k, b);
      for (ProcessId d = 0; d < 8; ++d) {
        for (ProcessId s = 0; s < 8; ++s) {
          ASSERT_EQ(a.at(d, s), b.at(d, s)) << "round " << k;
        }
      }
    }
  }
}

}  // namespace
}  // namespace timing

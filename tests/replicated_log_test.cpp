// Tests for the pipelined, batched ReplicatedLog: batch sealing (fullness
// vs flush deadline), out-of-order decision with in-order commit, slot
// retry/abandonment, the consistent() vs consistent_among() semantics
// with crashed replicas, and thread-count determinism of the
// smr/throughput scenario's results JSONL.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "scenario/registry.hpp"
#include "scenario/results.hpp"
#include "scenario/run.hpp"
#include "scenario/spec.hpp"
#include "sim/sampler.hpp"
#include "smr/replicated_log.hpp"

namespace timing {
namespace {

// ------------------------------------------------------- test samplers --

/// Every link timely every round: decisions in a handful of rounds.
class TimelySampler final : public TimelinessSampler {
 public:
  explicit TimelySampler(int n) : n_(n) {}
  int n() const noexcept override { return n_; }
  void sample_round(Round, LinkMatrix& out) override { out.fill(0); }

 private:
  int n_;
};

/// Every cross-process message lost before round `until`, fully timely
/// from `until` on (self-links always timely, as real samplers keep them).
class LostUntilSampler final : public TimelinessSampler {
 public:
  LostUntilSampler(int n, Round until) : n_(n), until_(until) {}
  int n() const noexcept override { return n_; }
  void sample_round(Round k, LinkMatrix& out) override {
    out.fill(k < until_ ? kLost : Delay{0});
    for (ProcessId i = 0; i < n_; ++i) out.set(i, i, 0);
  }

 private:
  int n_;
  Round until_;
};

std::vector<std::unique_ptr<StateMachine>> kv_machines(int n) {
  std::vector<std::unique_ptr<StateMachine>> ms;
  for (int i = 0; i < n; ++i) ms.push_back(std::make_unique<KvStateMachine>());
  return ms;
}

SlotEnvFactory timely_envs(int n) {
  return [n](int, int) {
    SlotEnv env;
    env.sampler = std::make_unique<TimelySampler>(n);
    return env;
  };
}

/// Drive ticks until drained, with a liveness bound so a broken log
/// fails the test instead of hanging it.
void drain(ReplicatedLog& rlog, int max_ticks = 10000) {
  while (!rlog.drained()) {
    ASSERT_LT(rlog.now(), max_ticks) << "log did not drain";
    rlog.tick();
  }
}

// ------------------------------------------------------- batch sealing --

TEST(ReplicatedLog, NoSubmissionsMeansNoSlots) {
  ReplicatedLogConfig cfg;
  cfg.n = 3;
  ReplicatedLog rlog(cfg, kv_machines(3), timely_envs(3));
  for (int i = 0; i < 10; ++i) rlog.tick();
  EXPECT_TRUE(rlog.drained());
  EXPECT_EQ(rlog.slots_started(), 0);
  EXPECT_TRUE(rlog.take_committed().empty());
  EXPECT_TRUE(rlog.log().empty());
}

TEST(ReplicatedLog, FullBatchSealsImmediately) {
  ReplicatedLogConfig cfg;
  cfg.n = 3;
  cfg.batch = 2;
  cfg.flush_ticks = 1000;  // only fullness can seal
  ReplicatedLog rlog(cfg, kv_machines(3), timely_envs(3));
  rlog.submit(make_kv_command(1, 10));
  EXPECT_EQ(rlog.slots_started(), 1);  // batch opened = slot ordinal taken
  EXPECT_FALSE(rlog.drained());
  rlog.submit(make_kv_command(2, 20));  // fills the batch: seals now
  drain(rlog);
  const auto recs = rlog.take_committed();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_TRUE(recs[0].committed);
  EXPECT_EQ(recs[0].slot, 0);
  EXPECT_EQ(recs[0].sealed_tick, 0);  // sealed before the first tick
  ASSERT_EQ(recs[0].ops.size(), 2u);
  EXPECT_EQ(recs[0].ops[0].cmd, make_kv_command(1, 10));
  EXPECT_EQ(recs[0].ops[1].cmd, make_kv_command(2, 20));
  EXPECT_EQ(rlog.log(),
            (std::vector<Command>{make_kv_command(1, 10),
                                  make_kv_command(2, 20)}));
  EXPECT_TRUE(rlog.consistent());
}

TEST(ReplicatedLog, SingleOpSealsAtTheFlushDeadline) {
  ReplicatedLogConfig cfg;
  cfg.n = 3;
  cfg.batch = 4;
  cfg.flush_ticks = 2;
  ReplicatedLog rlog(cfg, kv_machines(3), timely_envs(3));
  rlog.submit(make_kv_command(7, 70));  // opens at tick 0, never fills
  rlog.tick();                          // tick 1: deadline not reached
  EXPECT_EQ(rlog.in_flight(), 0);
  rlog.tick();  // tick 2: waited flush_ticks, seals and starts
  EXPECT_EQ(rlog.in_flight(), 1);
  drain(rlog);
  const auto recs = rlog.take_committed();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_TRUE(recs[0].committed);
  EXPECT_EQ(recs[0].sealed_tick, 2);
  ASSERT_EQ(recs[0].ops.size(), 1u);
  EXPECT_EQ(recs[0].ops[0].cmd, make_kv_command(7, 70));
}

// ------------------------------------- pipelining and commit ordering --

TEST(ReplicatedLog, InFlightNeverExceedsThePipeline) {
  ReplicatedLogConfig cfg;
  cfg.n = 3;
  cfg.pipeline = 2;
  cfg.batch = 1;
  ReplicatedLog rlog(cfg, kv_machines(3), [](int, int) {
    SlotEnv env;  // slow enough that slots queue behind the pipeline
    env.sampler = std::make_unique<LostUntilSampler>(3, 6);
    return env;
  });
  for (int i = 0; i < 6; ++i) rlog.submit(make_kv_command(0, 100 + i));
  EXPECT_EQ(rlog.slots_started(), 6);
  while (!rlog.drained()) {
    EXPECT_LE(rlog.in_flight(), cfg.pipeline);
    ASSERT_LT(rlog.now(), 1000);
    rlog.tick();
  }
  EXPECT_EQ(rlog.slots_committed(), 6);
  EXPECT_EQ(rlog.log().size(), 6u);
}

TEST(ReplicatedLog, PipeliningOverlapsInstances) {
  const int kCmds = 4;
  long long ticks_by_pipeline[2] = {0, 0};
  const int pipelines[2] = {1, 4};
  for (int v = 0; v < 2; ++v) {
    ReplicatedLogConfig cfg;
    cfg.n = 3;
    cfg.pipeline = pipelines[v];
    cfg.batch = 1;
    ReplicatedLog rlog(cfg, kv_machines(3), timely_envs(3));
    for (int i = 0; i < kCmds; ++i) rlog.submit(make_kv_command(0, i));
    drain(rlog);
    EXPECT_EQ(rlog.slots_committed(), kCmds);
    ticks_by_pipeline[v] = rlog.now();
  }
  // Serialized, the slots run back to back; pipelined, they share rounds.
  EXPECT_LT(ticks_by_pipeline[1], ticks_by_pipeline[0]);
}

TEST(ReplicatedLog, OutOfOrderDecisionStillCommitsInSlotOrder) {
  ReplicatedLogConfig cfg;
  cfg.n = 3;
  cfg.pipeline = 2;
  cfg.batch = 1;
  // Slot 0's network is dead until round 12; slot 1's is timely from the
  // start, so slot 1 DECIDES first but must wait to COMMIT second.
  ReplicatedLog rlog(cfg, kv_machines(3), [](int slot, int) {
    SlotEnv env;
    if (slot == 0) {
      env.sampler = std::make_unique<LostUntilSampler>(3, 12);
    } else {
      env.sampler = std::make_unique<TimelySampler>(3);
    }
    return env;
  });
  const Command a = make_kv_command(1, 111);
  const Command b = make_kv_command(2, 222);
  rlog.submit(a);
  rlog.submit(b);
  drain(rlog);
  const auto recs = rlog.take_committed();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].slot, 0);
  EXPECT_EQ(recs[1].slot, 1);
  EXPECT_TRUE(recs[0].committed);
  EXPECT_TRUE(recs[1].committed);
  // Decided out of order...
  EXPECT_LT(recs[1].decided_tick, recs[0].decided_tick);
  // ...but committed in slot order, and slot 1 waited for slot 0.
  EXPECT_LE(recs[0].committed_tick, recs[1].committed_tick);
  EXPECT_GT(recs[1].committed_tick, recs[1].decided_tick);
  // The applied sequence is the SLOT order, not the decision order.
  EXPECT_EQ(rlog.log(), (std::vector<Command>{a, b}));
  EXPECT_TRUE(rlog.consistent());
}

// ------------------------------------------------ retry and abandonment --

TEST(ReplicatedLog, AbandonsASlotAfterTheAttemptBudget) {
  ReplicatedLogConfig cfg;
  cfg.n = 3;
  cfg.batch = 1;
  cfg.max_attempts_per_slot = 2;
  std::vector<std::pair<int, int>> asked;  // (slot, attempt) requests
  ReplicatedLog rlog(cfg, kv_machines(3), [&asked](int slot, int attempt) {
    asked.emplace_back(slot, attempt);
    SlotEnv env;  // never decides within its round budget
    env.sampler = std::make_unique<LostUntilSampler>(3, 1 << 28);
    env.max_rounds = 5;
    return env;
  });
  rlog.submit(make_kv_command(9, 90));
  drain(rlog);
  const auto recs = rlog.take_committed();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_FALSE(recs[0].committed);
  EXPECT_EQ(recs[0].attempts, 2);
  EXPECT_TRUE(recs[0].applied.empty());
  EXPECT_EQ(rlog.slots_abandoned(), 1);
  EXPECT_EQ(rlog.slots_committed(), 0);
  // Each attempt asked the factory for a fresh environment.
  EXPECT_EQ(asked, (std::vector<std::pair<int, int>>{{0, 0}, {0, 1}}));
  // Abandoned commands are never applied anywhere.
  EXPECT_TRUE(rlog.log().empty());
  for (ProcessId i = 0; i < 3; ++i) {
    EXPECT_EQ(static_cast<const KvStateMachine&>(rlog.machine(i)).applied(),
              0);
  }
  EXPECT_TRUE(rlog.consistent());
}

// ------------------------------ consistency with crashed replicas -------

TEST(ReplicatedLog, ConsistentAmongSurvivorsWithACrashedReplica) {
  const int kN = 5;
  const ProcessId kCrashed = 4;
  ReplicatedLogConfig cfg;
  cfg.n = kN;
  cfg.batch = 1;
  cfg.pipeline = 1;
  // Slots 0-1 are fault-free; replica 4 is crashed from round 1 of slot
  // 2's instance, so it misses that slot's command and ends BEHIND.
  ReplicatedLog rlog(cfg, kv_machines(kN), [kN, kCrashed](int slot, int) {
    SlotEnv env;
    env.sampler = std::make_unique<TimelySampler>(kN);
    if (slot == 2) {
      env.crash_rounds.assign(kN, 0);
      env.crash_rounds[kCrashed] = 1;
    }
    return env;
  });
  for (int i = 0; i < 3; ++i) rlog.submit(make_kv_command(0, 10 + i));
  drain(rlog);
  EXPECT_EQ(rlog.slots_committed(), 3);
  // Behind is not divergent: the full-group check trips, the survivor
  // check must not (the regression this API exists for).
  EXPECT_FALSE(rlog.consistent());
  const std::vector<bool> alive = rlog.alive_at_end();
  ASSERT_EQ(alive.size(), static_cast<std::size_t>(kN));
  EXPECT_FALSE(alive[kCrashed]);
  EXPECT_TRUE(rlog.consistent_among(alive));
  // The crashed replica applied exactly the pre-crash prefix.
  const auto applied_of = [&rlog](ProcessId i) {
    return static_cast<const KvStateMachine&>(rlog.machine(i)).applied();
  };
  EXPECT_EQ(applied_of(kCrashed), 2);
  EXPECT_EQ(applied_of(0), 3);
}

// --------------------------------------------------- decree encoding ----

TEST(ReplicatedLog, SlotDecreesArePositiveDistinctAndOutsideCommands) {
  EXPECT_GT(slot_decree(0), 0);
  EXPECT_NE(slot_decree(0), kNoopCommand);
  EXPECT_NE(slot_decree(0), slot_decree(1));
  // Disjoint from the KV command encoding even at its extremes.
  EXPECT_NE(slot_decree(0), make_kv_command(0, 0));
  EXPECT_NE(slot_decree(1 << 20),
            make_kv_command(0x7fffffffu, 0x7fffffffu));
}

// -------------------------- smr/throughput JSONL thread determinism -----

std::string throughput_jsonl() {
  const scenario::Scenario* sc = scenario::find_scenario("smr/throughput");
  EXPECT_NE(sc, nullptr);
  scenario::ScenarioSpec spec = sc->defaults();
  spec.runs = 2;  // scaled down: determinism, not statistics
  spec.rounds_per_run = 12;
  spec.clients = 8;
  spec.pipeline = 4;
  spec.batch = 2;
  std::ostringstream text, jsonl;
  scenario::ResultWriter w(jsonl, "smr/throughput");
  scenario::RunContext ctx;
  ctx.out = &text;
  ctx.results = &w;
  EXPECT_EQ(sc->run(spec, ctx), 0);
  w.finish();
  return jsonl.str();
}

TEST(ReplicatedLog, ThroughputResultsBytesIdenticalAcrossThreadCounts) {
  std::string baseline;
  for (int threads : {1, 2, 8}) {
    ScopedThreads st(threads);
    const std::string got = throughput_jsonl();
    if (baseline.empty()) {
      baseline = got;
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(got, baseline) << "TIMING_THREADS=" << threads;
    }
  }
}

}  // namespace
}  // namespace timing

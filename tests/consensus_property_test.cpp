// Property-based tests: the consensus invariants the paper proves in
// Appendix A, checked over large families of random and adversarial
// schedules.
//
//  * SAFETY (uniform agreement + validity) must hold on EVERY schedule,
//    including ones that never stabilize - all the algorithms here are
//    indulgent. We run chaotic schedules (GSR beyond the horizon,
//    unstable oracles, crashes) and check that no two processes ever
//    decide differently and that decisions are proposals.
//  * TERMINATION must hold once the model's properties do: a conforming
//    suffix forces global decision within the algorithm's bound.
//  * TIMESTAMP sanity (Lemma 1/2): a process's timestamp never exceeds
//    the round number and never decreases.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "consensus/factory.hpp"
#include "giraf/engine.hpp"
#include "harness/algorithm_runs.hpp"
#include "models/schedule.hpp"
#include "oracles/omega.hpp"

namespace timing {
namespace {

TimingModel native_model(AlgorithmKind k) {
  switch (k) {
    case AlgorithmKind::kEs3: return TimingModel::kEs;
    case AlgorithmKind::kLm3: return TimingModel::kLm;
    case AlgorithmKind::kAfm5: return TimingModel::kAfm;
    default: return TimingModel::kWlm;
  }
}

int bound_after_gsr(AlgorithmKind k) {
  switch (k) {
    case AlgorithmKind::kEs3: return 2;
    case AlgorithmKind::kLm3: return 2;
    case AlgorithmKind::kWlm: return 4;
    case AlgorithmKind::kAfm5: return 4;
    case AlgorithmKind::kLmOverWlm: return 7;
    case AlgorithmKind::kPaxos: return 60;  // no constant bound in <>WLM
  }
  return 0;
}


std::string safe_name(AlgorithmKind k) {
  std::string s = to_string(k), out;
  for (char c : s) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9')) {
      out += c;
    }
  }
  return out;
}

constexpr AlgorithmKind kAllKinds[] = {
    AlgorithmKind::kWlm,  AlgorithmKind::kEs3,        AlgorithmKind::kLm3,
    AlgorithmKind::kAfm5, AlgorithmKind::kLmOverWlm,  AlgorithmKind::kPaxos};

// ------------------------------------------------------------- safety --

struct ChaosCase {
  AlgorithmKind kind;
  int n;
  std::uint64_t seed;
};

class ChaosSafety : public ::testing::TestWithParam<ChaosCase> {};

// Chaotic network + unstable oracle forever: nobody is obliged to decide,
// but any decisions made must agree and be valid. Also checks the
// timestamp lemmas through the introspection hooks.
TEST_P(ChaosSafety, AgreementAndValidityUnderChaos) {
  const auto [kind, n, seed] = GetParam();
  std::vector<Value> proposals;
  for (int i = 0; i < n; ++i) proposals.push_back(1000 + 7 * i);

  auto oracle = std::make_shared<UnstableOracle>(n, 0,
                                                 /*stable_from=*/1 << 28,
                                                 seed ^ 0xdead);
  RoundEngine engine(make_group(kind, proposals), oracle);

  ScheduleConfig sched;
  sched.n = n;
  sched.model = native_model(kind);
  sched.leader = 0;
  sched.gsr = 1 << 28;  // never stabilizes within the run
  sched.pre_gsr_p = 0.45;
  sched.seed = seed;
  ScheduleSampler sampler(sched);

  LinkMatrix a(n);
  Timestamp prev_ts_min = 0;
  for (Round k = 1; k <= 160; ++k) {
    sampler.sample_round(k, a);
    engine.step(a);
    // Lemma 1 speaks about Algorithm-2-style timestamps; Paxos ballots
    // are proposer-unique numbers unrelated to round indices.
    if (kind != AlgorithmKind::kPaxos) {
      for (ProcessId i = 0; i < n; ++i) {
        const Timestamp ts = engine.process(i).current_ts();
        ASSERT_LE(ts, k) << "Lemma 1: ts <= round";
        ASSERT_GE(ts, 0);
      }
    }
    (void)prev_ts_min;
  }
  std::set<Value> decisions;
  for (ProcessId i = 0; i < n; ++i) {
    const Protocol& p = engine.process(i);
    if (p.has_decided()) decisions.insert(p.decision());
  }
  ASSERT_LE(decisions.size(), 1u) << "agreement violated under chaos";
  for (Value d : decisions) {
    ASSERT_NE(std::find(proposals.begin(), proposals.end(), d),
              proposals.end())
        << "validity violated";
  }
}

std::vector<ChaosCase> chaos_cases() {
  std::vector<ChaosCase> cases;
  for (AlgorithmKind k : kAllKinds) {
    for (int n : {2, 3, 4, 5, 8}) {
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        cases.push_back({k, n, seed * 1299721});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ChaosSafety, ::testing::ValuesIn(chaos_cases()),
    [](const ::testing::TestParamInfo<ChaosCase>& info) {
      return safe_name(info.param.kind) + "_n" +
             std::to_string(info.param.n) + "_s" +
             std::to_string(info.param.seed / 1299721);
    });

// ------------------------------------------------- safety with crashes --

struct CrashCase {
  AlgorithmKind kind;
  std::uint64_t seed;
};

class CrashSafety : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashSafety, MinorityCrashesNeverBreakSafetyOrLiveness) {
  const auto [kind, seed] = GetParam();
  const int n = 7;  // tolerate up to 3 crashes
  AlgorithmRunConfig cfg;
  cfg.kind = kind;
  cfg.schedule.n = n;
  cfg.schedule.model = native_model(kind);
  cfg.schedule.leader = 0;  // stays correct
  cfg.schedule.gsr = 20;
  cfg.schedule.seed = seed;
  cfg.oracle_stable_from = cfg.schedule.gsr - 1;
  for (int i = 0; i < n; ++i) cfg.proposals.push_back(50 + i);
  cfg.crashes.assign(static_cast<std::size_t>(n), 0);
  // Crash a minority at staggered pre/post-GSR rounds (never the leader).
  Rng rng(seed);
  int crashed = 0;
  for (ProcessId i = n - 1; i >= 1 && crashed < (n - 1) / 2; --i) {
    if (rng.bernoulli(0.7)) {
      cfg.crashes[static_cast<std::size_t>(i)] =
          2 + static_cast<Round>(rng.uniform_int(30));
      ++crashed;
    }
  }
  cfg.max_rounds = 400;
  const auto r = run_algorithm(cfg);
  EXPECT_TRUE(r.agreement) << to_string(kind) << " seed " << seed;
  EXPECT_TRUE(r.validity);
  EXPECT_TRUE(r.all_decided)
      << to_string(kind) << " failed to terminate, seed " << seed;
}

std::vector<CrashCase> crash_cases() {
  std::vector<CrashCase> cases;
  for (AlgorithmKind k : kAllKinds) {
    // Paxos liveness under crashes is exercised separately (its recovery
    // in <>WLM is the very pathology the paper discusses).
    if (k == AlgorithmKind::kPaxos) continue;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      cases.push_back({k, seed * 104729});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, CrashSafety, ::testing::ValuesIn(crash_cases()),
    [](const ::testing::TestParamInfo<CrashCase>& info) {
      return safe_name(info.param.kind) + "_s" +
             std::to_string(info.param.seed / 104729);
    });

// ------------------------------------------------------- termination --

struct LiveCase {
  AlgorithmKind kind;
  int n;
  Round gsr;
  bool minimal;
  std::uint64_t seed;
};

class Termination : public ::testing::TestWithParam<LiveCase> {};

TEST_P(Termination, DecidesWithinBoundAfterGsr) {
  const auto [kind, n, gsr, minimal, seed] = GetParam();
  AlgorithmRunConfig cfg;
  cfg.kind = kind;
  cfg.schedule.n = n;
  cfg.schedule.model = native_model(kind);
  cfg.schedule.leader = static_cast<ProcessId>(seed % n);
  cfg.schedule.gsr = gsr;
  cfg.schedule.minimal = minimal;
  cfg.schedule.seed = seed;
  cfg.oracle_stable_from = gsr - 1;  // stable-leader common case
  for (int i = 0; i < n; ++i) cfg.proposals.push_back(10 + i);
  cfg.max_rounds = gsr + 200;
  const auto r = run_algorithm(cfg);
  ASSERT_TRUE(r.all_decided)
      << to_string(kind) << " n=" << n << " gsr=" << gsr << " seed=" << seed;
  EXPECT_LE(r.global_decision_round, gsr + bound_after_gsr(kind))
      << to_string(kind) << " n=" << n << " minimal=" << minimal
      << " seed=" << seed;
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
}

std::vector<LiveCase> live_cases() {
  std::vector<LiveCase> cases;
  for (AlgorithmKind k : kAllKinds) {
    if (k == AlgorithmKind::kPaxos) continue;  // covered by the ablation
    for (int n : {3, 4, 5, 8}) {
      for (Round gsr : {1, 2, 7, 24}) {
        for (bool minimal : {false, true}) {
          // AFM's minimal (circulant) schedule stresses convergence; see
          // the dedicated AfmMinimal test below for the looser bound.
          if (k == AlgorithmKind::kAfm5 && minimal) continue;
          cases.push_back(
              {k, n, gsr, minimal,
               0x5eed + static_cast<std::uint64_t>(n * 131 + gsr * 17)});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Termination, ::testing::ValuesIn(live_cases()),
    [](const ::testing::TestParamInfo<LiveCase>& info) {
      return safe_name(info.param.kind) + "_n" +
             std::to_string(info.param.n) + "_g" +
             std::to_string(info.param.gsr) +
             (info.param.minimal ? "_min" : "_rnd");
    });

// AFM over the minimal rotating-majority schedule: global decision still
// happens promptly, though the estimate-spread phase may add a couple of
// rounds beyond the friendly-schedule bound (DESIGN.md section 6).
TEST(AfmMinimal, DecidesPromptlyOnRotatingMajorities) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    AlgorithmRunConfig cfg;
    cfg.kind = AlgorithmKind::kAfm5;
    cfg.schedule.n = 8;
    cfg.schedule.model = TimingModel::kAfm;
    cfg.schedule.gsr = 12;
    cfg.schedule.minimal = true;
    cfg.schedule.seed = seed * 29;
    for (int i = 0; i < 8; ++i) cfg.proposals.push_back(70 + i);
    cfg.max_rounds = 300;
    const auto r = run_algorithm(cfg);
    ASSERT_TRUE(r.all_decided) << "seed " << seed;
    EXPECT_LE(r.global_decision_round, cfg.schedule.gsr + 8)
        << "seed " << seed;
    EXPECT_TRUE(r.agreement);
  }
}

// -------------------------------------- decisions are stable (monotone) --

TEST(DecisionStability, OnceDecidedAlwaysDecidedAndUnchanged) {
  const int n = 5;
  std::vector<Value> proposals{9, 8, 7, 6, 5};
  auto oracle = std::make_shared<DesignatedOracle>(1);
  RoundEngine engine(make_group(AlgorithmKind::kWlm, proposals), oracle);
  ScheduleConfig sched;
  sched.n = n;
  sched.model = TimingModel::kWlm;
  sched.leader = 1;
  sched.gsr = 6;
  sched.seed = 77;
  ScheduleSampler sampler(sched);
  LinkMatrix a(n);
  std::vector<Value> decided(static_cast<std::size_t>(n), kNoValue);
  for (Round k = 1; k <= 40; ++k) {
    sampler.sample_round(k, a);
    engine.step(a);
    for (ProcessId i = 0; i < n; ++i) {
      const Protocol& p = engine.process(i);
      if (decided[static_cast<std::size_t>(i)] != kNoValue) {
        ASSERT_TRUE(p.has_decided()) << "decision retracted";
        ASSERT_EQ(p.decision(), decided[static_cast<std::size_t>(i)])
            << "decision changed";
      } else if (p.has_decided()) {
        decided[static_cast<std::size_t>(i)] = p.decision();
      }
    }
  }
}

// ------------------------------- alternating stability / chaos windows --

TEST(Indulgence, SurvivesAlternatingStableAndChaoticWindows) {
  // Stability that arrives and evaporates repeatedly: decisions made in a
  // stable window must persist through later chaos, and late deciders
  // must join the same value.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const int n = 6;
    std::vector<Value> proposals{11, 22, 33, 44, 55, 66};
    auto oracle = std::make_shared<DesignatedOracle>(2);
    RoundEngine engine(make_group(AlgorithmKind::kWlm, proposals), oracle);

    ScheduleConfig stable;
    stable.n = n;
    stable.model = TimingModel::kWlm;
    stable.leader = 2;
    stable.gsr = 1;
    stable.seed = seed;
    ScheduleSampler stable_sampler(stable);

    ScheduleConfig chaos = stable;
    chaos.gsr = 1 << 28;
    chaos.pre_gsr_p = 0.2;
    ScheduleSampler chaos_sampler(chaos);

    LinkMatrix a(n);
    Round k = 0;
    std::set<Value> decisions;
    for (int window = 0; window < 6; ++window) {
      ScheduleSampler& s = (window % 2 == 0) ? chaos_sampler : stable_sampler;
      for (int r = 0; r < 3 + static_cast<int>(seed % 3); ++r) {
        s.sample_round(++k, a);
        engine.step(a);
      }
    }
    for (ProcessId i = 0; i < n; ++i) {
      if (engine.process(i).has_decided()) {
        decisions.insert(engine.process(i).decision());
      }
    }
    ASSERT_LE(decisions.size(), 1u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace timing

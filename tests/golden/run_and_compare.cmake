# Golden-output test driver: run BINARY (with optional ARGS, a
# semicolon-separated list) in a clean environment (no TIMING_RUNS /
# TIMING_THREADS, which legitimately change the sweep) and require its
# stdout to be byte-identical to the GOLDEN fixture. Pins the migrated
# figure binaries — and machine-readable CLI output like
# `trace_tool summary --json` — to the committed bytes.
if(NOT DEFINED BINARY OR NOT DEFINED GOLDEN)
  message(FATAL_ERROR "usage: cmake -DBINARY=... [-DARGS=a;b;c] -DGOLDEN=... -P run_and_compare.cmake")
endif()
if(NOT DEFINED ARGS)
  set(ARGS "")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env --unset=TIMING_RUNS --unset=TIMING_THREADS
          ${BINARY} ${ARGS}
  OUTPUT_VARIABLE actual
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BINARY} exited with ${rc}")
endif()

file(READ ${GOLDEN} expected)
if(NOT actual STREQUAL expected)
  get_filename_component(fixture ${GOLDEN} NAME_WE)
  file(WRITE ${fixture}.actual "${actual}")
  message(FATAL_ERROR
          "stdout differs from ${GOLDEN}; actual output saved in the test "
          "working directory as ${fixture}.actual")
endif()

# Golden-output test driver: run BINARY with a clean environment (no
# TIMING_RUNS / TIMING_THREADS, which legitimately change the sweep) and
# require its stdout to be byte-identical to the GOLDEN fixture. Pins the
# migrated figure binaries to the pre-registry output.
if(NOT DEFINED BINARY OR NOT DEFINED GOLDEN)
  message(FATAL_ERROR "usage: cmake -DBINARY=... -DGOLDEN=... -P run_and_compare.cmake")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env --unset=TIMING_RUNS --unset=TIMING_THREADS
          ${BINARY}
  OUTPUT_VARIABLE actual
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BINARY} exited with ${rc}")
endif()

file(READ ${GOLDEN} expected)
if(NOT actual STREQUAL expected)
  get_filename_component(fixture ${GOLDEN} NAME_WE)
  file(WRITE ${fixture}.actual "${actual}")
  message(FATAL_ERROR
          "stdout differs from ${GOLDEN}; actual output saved in the test "
          "working directory as ${fixture}.actual")
endif()

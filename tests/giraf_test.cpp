// Unit tests for the GIRAF round engine (Algorithm 1's environment):
// delivery semantics, destination sets, late/lost accounting, crashes,
// oracle plumbing and decision bookkeeping.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "giraf/engine.hpp"
#include "oracles/omega.hpp"

namespace timing {
namespace {

// A probe protocol that records what it sees and sends a configurable
// destination pattern.
class Probe final : public Protocol {
 public:
  Probe(ProcessId self, int n, bool broadcast)
      : self_(self), n_(n), broadcast_(broadcast) {}

  SendSpec initialize(ProcessId hint) override {
    hints.push_back(hint);
    return spec();
  }
  SendSpec compute(Round k, const RoundMsgs& received,
                   ProcessId hint) override {
    hints.push_back(hint);
    rounds.push_back(k);
    rows.push_back(received);
    if (decide_at == k) decided_value = 42;
    return spec();
  }
  bool has_decided() const noexcept override { return decided_value != kNoValue; }
  Value decision() const noexcept override { return decided_value; }

  std::vector<ProcessId> hints;
  std::vector<Round> rounds;
  std::vector<RoundMsgs> rows;
  Round decide_at = -1;
  Value decided_value = kNoValue;

 private:
  SendSpec spec() const {
    Message m;
    m.est = self_ * 1000 + static_cast<Value>(rounds.size());
    if (broadcast_) return SendSpec{m, SendSpec::all(n_)};
    return SendSpec{m, {0}};  // everyone sends to p0 only
  }
  ProcessId self_;
  int n_;
  bool broadcast_;
};

std::vector<std::unique_ptr<Protocol>> probes(int n, bool broadcast,
                                              std::vector<Probe*>& out) {
  std::vector<std::unique_ptr<Protocol>> v;
  for (ProcessId i = 0; i < n; ++i) {
    auto p = std::make_unique<Probe>(i, n, broadcast);
    out.push_back(p.get());
    v.push_back(std::move(p));
  }
  return v;
}

TEST(Engine, TimelyDeliveryAndOwnMessage) {
  std::vector<Probe*> ps;
  RoundEngine e(probes(4, /*broadcast=*/true, ps), nullptr);
  LinkMatrix a(4, 0);
  e.step(a);
  ASSERT_EQ(ps[1]->rows.size(), 1u);
  const RoundMsgs& row = ps[1]->rows[0];
  for (ProcessId s = 0; s < 4; ++s) {
    ASSERT_TRUE(row[s].has_value()) << "missing message from " << s;
    EXPECT_EQ(row[s]->est, s * 1000 + 0);
  }
}

TEST(Engine, LostMessagesDoNotArrive) {
  std::vector<Probe*> ps;
  RoundEngine e(probes(4, true, ps), nullptr);
  LinkMatrix a(4, 0);
  a.set(2, 1, kLost);
  e.step(a);
  EXPECT_FALSE(ps[2]->rows[0][1].has_value());
  EXPECT_TRUE(ps[2]->rows[0][2].has_value()) << "own message always present";
  EXPECT_EQ(e.stats().lost_messages, 1);
}

TEST(Engine, LateMessagesAreCountedNotDelivered) {
  std::vector<Probe*> ps;
  RoundEngine e(probes(4, true, ps), nullptr);
  LinkMatrix a(4, 0);
  a.set(2, 1, 2);  // p1 -> p2 arrives 2 rounds late
  e.step(a);
  EXPECT_FALSE(ps[2]->rows[0][1].has_value());
  EXPECT_EQ(e.stats().late_arrivals, 0);
  a.fill(0);
  e.step(a);
  EXPECT_EQ(e.stats().late_arrivals, 0);
  e.step(a);  // due now
  EXPECT_EQ(e.stats().late_arrivals, 1);
}

TEST(Engine, DestinationSetsAreRespected) {
  std::vector<Probe*> ps;
  RoundEngine e(probes(4, /*broadcast=*/false, ps), nullptr);
  LinkMatrix a(4, 0);
  e.step(a);
  // Everyone sent only to p0: 3 sends (p0's send to itself is skipped).
  EXPECT_EQ(e.messages_last_round(), 3);
  EXPECT_TRUE(ps[0]->rows[0][3].has_value());
  EXPECT_FALSE(ps[2]->rows[0][1].has_value());
}

TEST(Engine, MessageComplexityAccounting) {
  std::vector<Probe*> ps;
  RoundEngine e(probes(8, true, ps), nullptr);
  LinkMatrix a(8, 0);
  e.step(a);
  EXPECT_EQ(e.messages_last_round(), 8 * 7);
  EXPECT_EQ(e.stats().messages_sent, 8 * 7);
  EXPECT_EQ(e.stats().timely_deliveries, 8 * 7);
}

TEST(Engine, RoundNumbersAndOracleQueries) {
  std::vector<Probe*> ps;
  auto oracle = std::make_shared<DesignatedOracle>(3);
  RoundEngine e(probes(2, true, ps), oracle);
  LinkMatrix a(2, 0);
  e.step(a);
  e.step(a);
  EXPECT_EQ(ps[0]->rounds, (std::vector<Round>{1, 2}));
  // initialize hint + one per compute.
  EXPECT_EQ(ps[0]->hints, (std::vector<ProcessId>{3, 3, 3}));
  EXPECT_EQ(e.current_round(), 2);
}

TEST(Engine, CrashStopsParticipation) {
  std::vector<Probe*> ps;
  RoundEngine e(probes(4, true, ps), nullptr);
  e.crash_at(1, 2);  // p1 executes round 1 only
  LinkMatrix a(4, 0);
  e.step(a);
  EXPECT_TRUE(ps[0]->rows[0][1].has_value());
  e.step(a);
  EXPECT_FALSE(ps[0]->rows[1][1].has_value()) << "crashed process kept sending";
  EXPECT_EQ(ps[1]->rounds.size(), 1u) << "crashed process kept computing";
  EXPECT_FALSE(e.alive(1));
  EXPECT_TRUE(e.alive(0));
}

TEST(Engine, DecisionBookkeeping) {
  std::vector<Probe*> ps;
  RoundEngine e(probes(3, true, ps), nullptr);
  ps[0]->decide_at = 2;
  ps[1]->decide_at = 4;
  ps[2]->decide_at = 3;
  LinkMatrix a(3, 0);
  for (int i = 0; i < 5; ++i) e.step(a);
  EXPECT_EQ(e.decision_round(0), 2);
  EXPECT_EQ(e.decision_round(1), 4);
  EXPECT_EQ(e.decision_round(2), 3);
  EXPECT_EQ(e.global_decision_round(), 4);
  EXPECT_TRUE(e.all_alive_decided());
}

TEST(Engine, RunStopsAtGlobalDecision) {
  std::vector<Probe*> ps;
  RoundEngine e(probes(3, true, ps), nullptr);
  for (auto* p : ps) p->decide_at = 7;
  IidTimelinessSampler s(3, 1.0, 1);
  EXPECT_EQ(e.run(s, 100), 7);
  EXPECT_EQ(e.current_round(), 7);
}

TEST(Engine, RunReturnsMinusOneWithoutDecision) {
  std::vector<Probe*> ps;
  RoundEngine e(probes(3, true, ps), nullptr);
  IidTimelinessSampler s(3, 1.0, 1);
  EXPECT_EQ(e.run(s, 10), -1);
}

TEST(Engine, DeterministicAcrossIdenticalRuns) {
  // Two engines fed identical matrices must produce identical protocol
  // states and stats - the property the paired-seed experiment design
  // relies on.
  auto run_once = [] {
    std::vector<Probe*> ps;
    RoundEngine e(probes(5, true, ps), nullptr);
    IidTimelinessSampler s(5, 0.7, 99);
    LinkMatrix a(5);
    std::vector<long long> sent;
    for (Round k = 1; k <= 30; ++k) {
      s.sample_round(k, a);
      e.step(a);
      sent.push_back(e.stats().timely_deliveries);
    }
    return sent;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, CrashedProcessesDoNotBlockGlobalDecision) {
  std::vector<Probe*> ps;
  RoundEngine e(probes(4, true, ps), nullptr);
  e.crash_at(3, 2);
  for (auto* p : ps) p->decide_at = 3;
  IidTimelinessSampler s(4, 1.0, 1);
  EXPECT_EQ(e.run(s, 10), 3) << "p3 crashed; the others decide at 3";
}

}  // namespace
}  // namespace timing

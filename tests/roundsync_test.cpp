// Tests for the Section 5.1 round-synchronization protocol, driven over
// the in-process hub: consensus end-to-end without synchronized clocks,
// fast-forward joins for lagging nodes, and decision consistency.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "consensus/factory.hpp"
#include "net/transport.hpp"
#include "oracles/omega.hpp"
#include "roundsync/roundsync.hpp"

namespace timing {
namespace {

struct NodeOutcome {
  RoundSyncResult result;
  Value decision = kNoValue;
};

// Run n nodes, each with its own thread, protocol and transport, over a
// shared hub; returns per-node results.
std::vector<NodeOutcome> run_cluster(int n, AlgorithmKind kind,
                                     ProcessId leader, double timeout_ms,
                                     LatencyModel* model_or_null,
                                     double model_round_ms,
                                     int stagger_ms_per_node = 0) {
  auto hub = std::make_shared<InProcHub>(n);
  if (model_or_null != nullptr) {
    // Ownership handoff through a wrapper: tests keep profiles simple.
    struct Borrow final : LatencyModel {
      explicit Borrow(LatencyModel* m) : m_(m) {}
      int n() const noexcept override { return m_->n(); }
      void begin_round(Round k) override { m_->begin_round(k); }
      double sample_ms(ProcessId s, ProcessId d) override {
        return m_->sample_ms(s, d);
      }
      LatencyModel* m_;
    };
    hub->set_latency_model(std::make_unique<Borrow>(model_or_null),
                           model_round_ms);
  }

  std::vector<NodeOutcome> outcomes(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  for (ProcessId i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      if (stagger_ms_per_node > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(stagger_ms_per_node * i));
      }
      auto protocol = make_protocol(kind, i, n, 100 + i);
      DesignatedOracle oracle(leader);
      InProcTransport transport(hub, i);
      RoundSyncConfig cfg;
      cfg.timeout_ms = timeout_ms;
      cfg.max_rounds = 400;
      RoundSyncRunner runner(*protocol, &oracle, transport, n, cfg);
      outcomes[static_cast<std::size_t>(i)].result = runner.run();
      outcomes[static_cast<std::size_t>(i)].decision = protocol->decision();
    });
  }
  for (auto& t : threads) t.join();
  return outcomes;
}

TEST(RoundSync, WlmConsensusOverPerfectNetwork) {
  const auto outcomes = run_cluster(4, AlgorithmKind::kWlm, /*leader=*/1,
                                    /*timeout_ms=*/25.0, nullptr, 0.0);
  Value agreed = kNoValue;
  for (const auto& o : outcomes) {
    ASSERT_TRUE(o.result.decided) << "a node failed to decide";
    ASSERT_NE(o.decision, kNoValue);
    if (agreed == kNoValue) agreed = o.decision;
    EXPECT_EQ(o.decision, agreed);
    EXPECT_LE(o.result.decision_round, 12)
        << "stable network: decision within a handful of rounds";
  }
  EXPECT_GE(agreed, 100);
  EXPECT_LE(agreed, 103);
}

TEST(RoundSync, AllAlgorithmsDecideOverHub) {
  for (AlgorithmKind kind :
       {AlgorithmKind::kEs3, AlgorithmKind::kLm3, AlgorithmKind::kAfm5,
        AlgorithmKind::kPaxos}) {
    const auto outcomes =
        run_cluster(4, kind, 0, 25.0, nullptr, 0.0);
    Value agreed = kNoValue;
    for (const auto& o : outcomes) {
      ASSERT_TRUE(o.result.decided) << to_string(kind);
      if (agreed == kNoValue) agreed = o.decision;
      EXPECT_EQ(o.decision, agreed) << to_string(kind);
    }
  }
}

TEST(RoundSync, StaggeredStartFastForwards) {
  // Nodes start 80 ms apart with a 30 ms round: laggards must jump ahead
  // (the Section 5.1 fast-forward) instead of walking every round.
  const auto outcomes =
      run_cluster(4, AlgorithmKind::kWlm, 0, 30.0, nullptr, 0.0,
                  /*stagger_ms_per_node=*/80);
  long long jumps = 0;
  Value agreed = kNoValue;
  for (const auto& o : outcomes) {
    ASSERT_TRUE(o.result.decided);
    if (agreed == kNoValue) agreed = o.decision;
    EXPECT_EQ(o.decision, agreed);
    jumps += o.result.fast_forwards;
  }
  EXPECT_GT(jumps, 0) << "late starters must fast-forward to their peers";
}

TEST(RoundSync, DecidesOverLossyLatencyModel) {
  // A mildly adversarial network: 20% of messages late or lost relative
  // to the 20 ms round. Decisions still happen and agree.
  class Flaky final : public LatencyModel {
   public:
    explicit Flaky(std::uint64_t seed) : rng_(seed) {}
    int n() const noexcept override { return 4; }
    void begin_round(Round) override {}
    double sample_ms(ProcessId, ProcessId) override {
      const double u = rng_.uniform();
      if (u < 0.05) return std::numeric_limits<double>::infinity();
      if (u < 0.20) return 60.0;  // late by ~3 rounds
      return 2.0;
    }
   private:
    Rng rng_;
  };
  Flaky model(12345);
  const auto outcomes =
      run_cluster(4, AlgorithmKind::kWlm, 2, 20.0, &model, 20.0);
  Value agreed = kNoValue;
  for (const auto& o : outcomes) {
    ASSERT_TRUE(o.result.decided) << "flaky network prevented decision";
    if (agreed == kNoValue) agreed = o.decision;
    EXPECT_EQ(o.decision, agreed);
  }
}

TEST(RoundSync, ResynchronizesAfterABlackout) {
  // The paper: "whenever the synchronization is lost, it is immediately
  // regained." A network blackout stalls message flow for a while; when
  // it lifts, laggards must fast-forward back to their peers' round and
  // decisions must still be consistent. The blackout also delays node 0's
  // packets MORE than others', so the group genuinely drifts apart.
  class Blackout final : public LatencyModel {
   public:
    int n() const noexcept override { return 4; }
    void begin_round(Round) override {}
    double sample_ms(ProcessId src, ProcessId) override {
      const auto since_start =
          std::chrono::duration<double, std::milli>(Clock::now() - t0_)
              .count();
      if (since_start > 120.0 && since_start < 320.0) {
        // Blackout window: node 0's messages are lost, others delayed.
        if (src == 0) return std::numeric_limits<double>::infinity();
        return 150.0;
      }
      return 1.0;
    }
   private:
    Clock::time_point t0_ = Clock::now();
  };
  Blackout model;
  const auto outcomes =
      run_cluster(4, AlgorithmKind::kWlm, 1, 15.0, &model, 15.0);
  Value agreed = kNoValue;
  long long jumps = 0;
  for (const auto& o : outcomes) {
    ASSERT_TRUE(o.result.decided) << "blackout prevented decision";
    if (agreed == kNoValue) agreed = o.decision;
    EXPECT_EQ(o.decision, agreed);
    jumps += o.result.fast_forwards;
  }
  // With every node's flow interrupted, at least someone had to catch up.
  EXPECT_GE(jumps, 0);
}

TEST(RoundSync, ReportsProgressMetrics) {
  const auto outcomes = run_cluster(3, AlgorithmKind::kWlm, 0, 15.0,
                                    nullptr, 0.0);
  for (const auto& o : outcomes) {
    EXPECT_GT(o.result.rounds_executed, 0);
    EXPECT_GT(o.result.messages_sent, 0);
    EXPECT_GT(o.result.elapsed_ms, 0.0);
    EXPECT_GE(o.result.final_round, o.result.decision_round);
  }
}

TEST(RoundSync, HonoursMaxRounds) {
  // A protocol that never decides must stop at max_rounds.
  class NeverDecides final : public Protocol {
   public:
    explicit NeverDecides(int n) : n_(n) {}
    SendSpec initialize(ProcessId) override {
      return {Message{}, SendSpec::all(n_)};
    }
    SendSpec compute(Round, const RoundMsgs&, ProcessId) override {
      return {Message{}, SendSpec::all(n_)};
    }
    bool has_decided() const noexcept override { return false; }
    Value decision() const noexcept override { return kNoValue; }
   private:
    int n_;
  };
  auto hub = std::make_shared<InProcHub>(2);
  std::vector<std::thread> threads;
  std::vector<RoundSyncResult> results(2);
  for (ProcessId i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      NeverDecides protocol(2);
      InProcTransport transport(hub, i);
      RoundSyncConfig cfg;
      cfg.timeout_ms = 5.0;
      cfg.max_rounds = 20;
      RoundSyncRunner runner(protocol, nullptr, transport, 2, cfg);
      results[static_cast<std::size_t>(i)] = runner.run();
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& r : results) {
    EXPECT_FALSE(r.decided);
    EXPECT_EQ(r.rounds_executed, 20);
  }
}

}  // namespace
}  // namespace timing

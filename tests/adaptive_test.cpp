// Tests for the adaptive timeout controller: quantile tracking, bounded
// steps, and end-to-end behaviour inside the round-sync runner (the
// Section 5.3 tuning methodology, automated).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "consensus/factory.hpp"
#include "net/transport.hpp"
#include "oracles/omega.hpp"
#include "roundsync/adaptive_timeout.hpp"
#include "roundsync/roundsync.hpp"

namespace timing {
namespace {

TEST(AdaptiveTimeout, ConvergesToTargetQuantile) {
  AdaptiveTimeoutConfig cfg;
  cfg.initial_ms = 100.0;
  cfg.target_p = 0.90;
  cfg.margin_factor = 1.0;
  cfg.window_samples = 50;
  AdaptiveTimeout at(cfg);
  Rng rng(5);
  // Offsets uniform in [0, 10): the 0.9-quantile is ~9 ms.
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 20; ++i) at.record_offset_ms(rng.uniform(0.0, 10.0));
    at.next_timeout_ms();
  }
  EXPECT_NEAR(at.timeout_ms(), 9.0, 1.0);
  EXPECT_GT(at.adjustments(), 0);
}

TEST(AdaptiveTimeout, GrowsWhenMessagesArriveLate) {
  AdaptiveTimeoutConfig cfg;
  cfg.initial_ms = 2.0;
  cfg.target_p = 0.9;
  cfg.margin_factor = 1.0;
  cfg.window_samples = 20;
  cfg.max_step_factor = 2.0;
  AdaptiveTimeout at(cfg);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 20; ++i) at.record_offset_ms(40.0);
    at.next_timeout_ms();
  }
  EXPECT_NEAR(at.timeout_ms(), 40.0, 1.0);
}

TEST(AdaptiveTimeout, StepsAreBounded) {
  AdaptiveTimeoutConfig cfg;
  cfg.initial_ms = 10.0;
  cfg.window_samples = 10;
  cfg.max_step_factor = 1.5;
  AdaptiveTimeout at(cfg);
  for (int i = 0; i < 10; ++i) at.record_offset_ms(1000.0);
  EXPECT_NEAR(at.next_timeout_ms(), 15.0, 1e-9) << "one step up: x1.5 only";
  for (int i = 0; i < 10; ++i) at.record_offset_ms(0.001);
  EXPECT_NEAR(at.next_timeout_ms(), 10.0, 1e-9) << "one step down: /1.5";
}

TEST(AdaptiveTimeout, RespectsBounds) {
  AdaptiveTimeoutConfig cfg;
  cfg.initial_ms = 1.0;
  cfg.min_ms = 0.5;
  cfg.max_ms = 2.0;
  cfg.window_samples = 10;
  cfg.max_step_factor = 100.0;
  AdaptiveTimeout at(cfg);
  for (int i = 0; i < 10; ++i) at.record_offset_ms(500.0);
  EXPECT_DOUBLE_EQ(at.next_timeout_ms(), 2.0);
  for (int i = 0; i < 10; ++i) at.record_offset_ms(0.0);
  EXPECT_DOUBLE_EQ(at.next_timeout_ms(), 0.5);
}

TEST(AdaptiveTimeout, LateBurstAfterWindowCapStillRaisesNextTimeout) {
  // Regression: record_offset_ms used to silently drop every sample once
  // the window held 4 x window_samples, so a latency burst arriving after
  // the cap could never move the next adjustment. The ring buffer must
  // keep absorbing: after 4 x window_samples fast samples, a burst of the
  // same size overwrites the oldest and the next timeout goes UP.
  AdaptiveTimeoutConfig cfg;
  cfg.initial_ms = 10.0;
  cfg.target_p = 0.9;
  cfg.margin_factor = 1.0;
  cfg.window_samples = 16;
  cfg.max_step_factor = 1.5;
  AdaptiveTimeout at(cfg);
  // Fill to the cap with fast samples...
  for (int i = 0; i < 4 * cfg.window_samples; ++i) at.record_offset_ms(1.0);
  // ...then a late burst past the cap. With the drop-at-cap bug the
  // window still holds only 1 ms samples and the timeout steps DOWN.
  for (int i = 0; i < 4 * cfg.window_samples; ++i) at.record_offset_ms(50.0);
  const double next = at.next_timeout_ms();
  EXPECT_NEAR(next, 15.0, 1e-9) << "burst must raise the timeout "
                                   "(one bounded step up from 10 ms)";
  EXPECT_GT(next, cfg.initial_ms);
}

TEST(AdaptiveTimeout, RingOverwritesOldestNotNewest) {
  // Half the capacity late, then fill the rest fast, then one more burst
  // wave: the p50 over the final window must reflect the mix actually
  // retained (oldest-first overwrite), not drop the new arrivals.
  AdaptiveTimeoutConfig cfg;
  cfg.initial_ms = 8.0;
  cfg.target_p = 0.5;
  cfg.margin_factor = 1.0;
  cfg.window_samples = 8;
  cfg.max_step_factor = 100.0;
  AdaptiveTimeout at(cfg);
  const int cap = 4 * cfg.window_samples;
  for (int i = 0; i < cap; ++i) at.record_offset_ms(2.0);
  // Overwrite exactly half the ring with late samples.
  for (int i = 0; i < cap / 2; ++i) at.record_offset_ms(30.0);
  // Window is now half 2 ms, half 30 ms; p50 interpolates between them,
  // so the result must sit strictly between the two plateaus.
  const double next = at.next_timeout_ms();
  EXPECT_GT(next, 2.0);
  EXPECT_LT(next, 30.0);
}

TEST(AdaptiveTimeout, NoAdjustmentWithoutAFullWindow) {
  AdaptiveTimeoutConfig cfg;
  cfg.initial_ms = 7.0;
  cfg.window_samples = 100;
  AdaptiveTimeout at(cfg);
  for (int i = 0; i < 50; ++i) at.record_offset_ms(1.0);
  EXPECT_DOUBLE_EQ(at.next_timeout_ms(), 7.0);
  EXPECT_EQ(at.adjustments(), 0);
}

TEST(AdaptiveRoundSync, ShrinksAnOversizedTimeoutAndStillDecides) {
  // Nodes start with a 60 ms round on a ~2 ms network: the controller
  // must walk the timeout down while consensus keeps working.
  constexpr int kN = 4;
  class Fast final : public LatencyModel {
   public:
    int n() const noexcept override { return kN; }
    void begin_round(Round) override {}
    double sample_ms(ProcessId, ProcessId) override { return 2.0; }
  };
  auto hub = std::make_shared<InProcHub>(kN);
  hub->set_latency_model(std::make_unique<Fast>(), 10.0);

  struct Out {
    RoundSyncResult r;
    Value decision = kNoValue;
    double final_timeout = 0;
  };
  std::vector<Out> outs(kN);
  std::vector<std::thread> threads;
  for (ProcessId i = 0; i < kN; ++i) {
    threads.emplace_back([&, i] {
      // A protocol that decides but lingers long enough for several
      // adjustment windows: use WLM with a large linger.
      auto protocol = make_protocol(AlgorithmKind::kWlm, i, kN, 900 + i);
      DesignatedOracle oracle(0);
      InProcTransport transport(hub, i);
      AdaptiveTimeoutConfig acfg;
      acfg.initial_ms = 60.0;
      acfg.target_p = 0.9;
      acfg.window_samples = 12;
      acfg.min_ms = 1.0;
      AdaptiveTimeout adaptive(acfg);
      RoundSyncConfig cfg;
      cfg.timeout_ms = acfg.initial_ms;
      cfg.max_rounds = 120;
      cfg.linger_rounds_after_decide = 60;
      cfg.adaptive = &adaptive;
      RoundSyncRunner runner(*protocol, &oracle, transport, kN, cfg);
      outs[static_cast<std::size_t>(i)].r = runner.run();
      outs[static_cast<std::size_t>(i)].decision = protocol->decision();
      outs[static_cast<std::size_t>(i)].final_timeout = adaptive.timeout_ms();
    });
  }
  for (auto& t : threads) t.join();

  Value agreed = kNoValue;
  for (const auto& o : outs) {
    ASSERT_TRUE(o.r.decided);
    if (agreed == kNoValue) agreed = o.decision;
    EXPECT_EQ(o.decision, agreed);
    EXPECT_LT(o.final_timeout, 30.0)
        << "controller failed to shrink a 60 ms timeout on a 2 ms network";
    EXPECT_GE(o.final_timeout, 1.0);
  }
}

}  // namespace
}  // namespace timing

// trace_tool - offline analysis of timing-trace JSONL files (see
// docs/OBSERVABILITY.md). Answers the paper's Section 5 questions from a
// recorded trace instead of the live harness:
//
//   trace_tool summary  <trace> [--needed 3,3,4,5] [--per-trial]
//       per-model P_M incidence and the first round where R_M
//       consecutive conforming rounds complete
//   trace_tool links    <trace> [--trial K] [--top N]
//       per-link late/lost breakdowns
//   trace_tool leader   <trace> [--trial K]
//       leader-stability intervals from OracleOutput events
//   trace_tool validate <trace>
//       parse + structural event-ordering checks; exit 0 iff valid
//   trace_tool check    <trace> [--trial K]
//       linearizability of the recorded op histories ("e":"op" events,
//       docs/HISTORY.md); prints a minimal witness per failing trial and
//       exits 0 iff every checked history is linearizable
//   trace_tool diff     <a> <b>
//       first divergent event and summary deltas; exit 0 iff identical
//   trace_tool spans    <trace> [--trial K] [--top N]
//       per-op causal span trees ("e":"span" events, TIMING_SPANS)
//   trace_tool critpath <trace> [--trial K] [--top N]
//       per-phase latency table + the longest causal chain of the N
//       slowest ops, rebuilt from the recorded spans alone
//   trace_tool latency  <trace> [--trial K] [--csv]
//       commit/queue latency percentiles rebuilt from spans; cross-checks
//       any recorded "e":"metrics" snapshots and exits 1 on disagreement
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "common/parse.hpp"
#include "history/history.hpp"
#include "history/linearizability.hpp"
#include "obs/span_analysis.hpp"
#include "obs/trace_analysis.hpp"

namespace {

using namespace timing;

constexpr std::array<int, kTraceNumModels> kDefaultNeeded{3, 3, 4, 5};

int usage() {
  std::fprintf(stderr,
               "usage: trace_tool summary  <trace.jsonl> [--needed a,b,c,d] "
               "[--per-trial] [--json]\n"
               "       trace_tool links    <trace.jsonl> [--trial K] [--top N]\n"
               "       trace_tool leader   <trace.jsonl> [--trial K]\n"
               "       trace_tool validate <trace.jsonl>\n"
               "       trace_tool check    <trace.jsonl> [--trial K]\n"
               "       trace_tool diff     <a.jsonl> <b.jsonl>\n"
               "       trace_tool spans    <trace.jsonl> [--trial K] [--top N]\n"
               "       trace_tool critpath <trace.jsonl> [--trial K] [--top N]\n"
               "       trace_tool latency  <trace.jsonl> [--trial K] [--csv]\n");
  return 2;
}

bool parse_needed(const char* arg, std::array<int, kTraceNumModels>& out) {
  int vals[kTraceNumModels] = {};
  if (std::sscanf(arg, "%d,%d,%d,%d", &vals[0], &vals[1], &vals[2],
                  &vals[3]) != kTraceNumModels) {
    return false;
  }
  for (int i = 0; i < kTraceNumModels; ++i) {
    if (vals[i] < 1) return false;
    out[static_cast<std::size_t>(i)] = vals[i];
  }
  return true;
}

void print_trial_summary(const TrialSummary& t,
                         const std::array<int, kTraceNumModels>& needed) {
  std::printf(
      "trial %d: rounds=%lld pred_rounds=%lld decision_round=%lld "
      "faults=%lld\n",
      t.trial_id, static_cast<long long>(t.rounds), t.pred_rounds,
      static_cast<long long>(t.global_decision_round), t.fault_events);
  for (int m = 0; m < kTraceNumModels; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    std::printf("  %-4s P_M=%.4f  R_M=%d  first_window_end=%lld\n",
                kTraceModelNames[mi], t.incidence(m), needed[mi],
                static_cast<long long>(t.first_window[mi]));
  }
  if (t.granular_rounds > 0) {
    for (int c = 0; c < kTraceNumLinkClasses; ++c) {
      std::printf("  class %-5s P=%.4f\n",
                  kTraceLinkClassNames[static_cast<std::size_t>(c)],
                  t.class_incidence(c));
    }
  }
}

/// Machine-readable mirror of cmd_summary: one JSON object on stdout.
/// Keys are stable (tests pin the exact bytes); doubles print with six
/// decimals so the output is platform-independent.
int cmd_summary_json(const ParsedTrace& trace,
                     const std::array<int, kTraceNumModels>& needed,
                     bool per_trial) {
  const TraceSummary s = summarize_trace(trace, needed);
  std::printf("{\n");
  std::printf("  \"schema\": %d,\n", kTraceSchemaVersion);
  std::printf("  \"n\": %d,\n", s.n);
  std::printf("  \"trials\": %zu,\n", s.trials.size());
  std::printf("  \"models\": [\n");
  for (int m = 0; m < kTraceNumModels; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    int completed = 0;
    const double fw = s.mean_first_window(m, &completed);
    std::printf("    {\"model\": \"%s\", \"needed\": %d, "
                "\"mean_p\": %.6f, \"mean_first_window\": %.2f, "
                "\"completed\": %d}%s\n",
                kTraceModelNames[mi], needed[mi], s.mean_incidence(m),
                completed > 0 ? fw : -1.0, completed,
                m + 1 < kTraceNumModels ? "," : "");
  }
  std::printf("  ],\n");
  long long granular = 0;
  std::array<long long, kTraceNumLinkClasses> class_sat{};
  LinkCounts fates;
  long long faults = 0;
  long long ops = 0;
  long long decides = 0;
  long long crashes = 0;
  for (const TrialSummary& t : s.trials) {
    granular += t.granular_rounds;
    for (int c = 0; c < kTraceNumLinkClasses; ++c) {
      class_sat[static_cast<std::size_t>(c)] +=
          t.class_sat_rounds[static_cast<std::size_t>(c)];
    }
    fates.timely += t.totals.timely;
    fates.late += t.totals.late;
    fates.lost += t.totals.lost;
    faults += t.fault_events;
    ops += t.op_events;
    decides += static_cast<long long>(t.decides.size());
    crashes += static_cast<long long>(t.crashes.size());
  }
  if (granular > 0) {
    std::printf("  \"granular\": {\"rounds\": %lld, \"classes\": [\n",
                granular);
    for (int c = 0; c < kTraceNumLinkClasses; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      std::printf("    {\"class\": \"%s\", \"sat_rounds\": %lld, "
                  "\"conforming\": %.6f}%s\n",
                  kTraceLinkClassNames[ci], class_sat[ci],
                  static_cast<double>(class_sat[ci]) /
                      static_cast<double>(granular),
                  c + 1 < kTraceNumLinkClasses ? "," : "");
    }
    std::printf("  ]},\n");
  } else {
    std::printf("  \"granular\": null,\n");
  }
  std::printf("  \"fates\": {\"timely\": %lld, \"late\": %lld, "
              "\"lost\": %lld},\n",
              fates.timely, fates.late, fates.lost);
  std::printf("  \"fault_events\": %lld,\n", faults);
  std::printf("  \"op_events\": %lld,\n", ops);
  std::printf("  \"decide_events\": %lld,\n", decides);
  std::printf("  \"crash_events\": %lld%s\n", crashes,
              per_trial ? "," : "");
  if (per_trial) {
    std::printf("  \"per_trial\": [\n");
    for (std::size_t i = 0; i < s.trials.size(); ++i) {
      const TrialSummary& t = s.trials[i];
      std::printf("    {\"trial\": %d, \"rounds\": %lld, "
                  "\"pred_rounds\": %lld, \"decision_round\": %lld, "
                  "\"fault_events\": %lld, \"decides\": %zu, "
                  "\"crashes\": %zu, \"models\": [",
                  t.trial_id, static_cast<long long>(t.rounds),
                  t.pred_rounds,
                  static_cast<long long>(t.global_decision_round),
                  t.fault_events, t.decides.size(), t.crashes.size());
      for (int m = 0; m < kTraceNumModels; ++m) {
        const auto mi = static_cast<std::size_t>(m);
        std::printf("{\"model\": \"%s\", \"p\": %.6f, "
                    "\"first_window\": %lld}%s",
                    kTraceModelNames[mi], t.incidence(m),
                    static_cast<long long>(t.first_window[mi]),
                    m + 1 < kTraceNumModels ? ", " : "");
      }
      std::printf("]}%s\n", i + 1 < s.trials.size() ? "," : "");
    }
    std::printf("  ]\n");
  }
  std::printf("}\n");
  return 0;
}

int cmd_summary(const ParsedTrace& trace,
                const std::array<int, kTraceNumModels>& needed,
                bool per_trial) {
  const TraceSummary s = summarize_trace(trace, needed);
  std::printf("n=%d trials=%zu\n", s.n, s.trials.size());
  std::printf("%-4s %10s %4s %18s %10s\n", "M", "mean P_M", "R_M",
              "mean first-window", "completed");
  for (int m = 0; m < kTraceNumModels; ++m) {
    int completed = 0;
    const double fw = s.mean_first_window(m, &completed);
    std::printf("%-4s %10.4f %4d %18.2f %6d/%zu\n",
                kTraceModelNames[static_cast<std::size_t>(m)],
                s.mean_incidence(m), needed[static_cast<std::size_t>(m)], fw,
                completed, s.trials.size());
  }
  // Per-link-class conformance, present only in granular traces (rounds
  // evaluated against a LinkModelMatrix record a csat mask).
  long long granular = 0;
  std::array<long long, kTraceNumLinkClasses> class_sat{};
  for (const TrialSummary& t : s.trials) {
    granular += t.granular_rounds;
    for (int c = 0; c < kTraceNumLinkClasses; ++c) {
      class_sat[static_cast<std::size_t>(c)] +=
          t.class_sat_rounds[static_cast<std::size_t>(c)];
    }
  }
  if (granular > 0) {
    std::printf("granular rounds: %lld\n", granular);
    for (int c = 0; c < kTraceNumLinkClasses; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      std::printf("  class %-5s conforming %10.4f (%lld/%lld)\n",
                  kTraceLinkClassNames[ci],
                  static_cast<double>(class_sat[ci]) /
                      static_cast<double>(granular),
                  class_sat[ci], granular);
    }
  }
  long long faults = 0;
  long long ops = 0;
  for (const TrialSummary& t : s.trials) {
    faults += t.fault_events;
    ops += t.op_events;
  }
  std::printf("fault events: %lld total, %.1f per trial\n", faults,
              s.trials.empty()
                  ? 0.0
                  : static_cast<double>(faults) /
                        static_cast<double>(s.trials.size()));
  std::printf("op events: %lld total, %.1f per trial\n", ops,
              s.trials.empty()
                  ? 0.0
                  : static_cast<double>(ops) /
                        static_cast<double>(s.trials.size()));
  if (per_trial) {
    for (const TrialSummary& t : s.trials) print_trial_summary(t, needed);
  }
  return 0;
}

int cmd_links(const ParsedTrace& trace, int trial, int top) {
  const TraceSummary s = summarize_trace(trace, kDefaultNeeded);
  // Fold link counts over the selected trials.
  std::vector<LinkCounts> links(
      static_cast<std::size_t>(s.n) * static_cast<std::size_t>(s.n));
  LinkCounts totals;
  for (const TrialSummary& t : s.trials) {
    if (trial >= 0 && t.trial_id != trial) continue;
    // The trial's own n may be smaller than the header's (group-size
    // sweeps); remap (src, dst) into the header-n stride.
    for (ProcessId src = 0; src < t.n; ++src) {
      for (ProcessId dst = 0; dst < t.n; ++dst) {
        const LinkCounts& l = t.link(src, dst);
        auto& acc = links[static_cast<std::size_t>(src) *
                              static_cast<std::size_t>(s.n) +
                          static_cast<std::size_t>(dst)];
        acc.sent += l.sent;
        acc.timely += l.timely;
        acc.late += l.late;
        acc.lost += l.lost;
      }
    }
    totals.sent += t.totals.sent;
    totals.timely += t.totals.timely;
    totals.late += t.totals.late;
    totals.lost += t.totals.lost;
  }
  // Predicate-harness traces (measure_runs) omit MsgSent — the fate event
  // implies the send — so derive sent from the fates when absent.
  const auto sent_of = [](const LinkCounts& l) {
    return std::max(l.sent, l.timely + l.late + l.lost);
  };
  std::printf("totals: sent=%lld timely=%lld late=%lld lost=%lld\n",
              sent_of(totals), totals.timely, totals.late, totals.lost);
  // Rank links by (late + lost): the ones that break timeliness.
  std::vector<int> order;
  for (int i = 0; i < static_cast<int>(links.size()); ++i) {
    const auto& l = links[static_cast<std::size_t>(i)];
    if (l.timely + l.late + l.lost + l.sent > 0) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& la = links[static_cast<std::size_t>(a)];
    const auto& lb = links[static_cast<std::size_t>(b)];
    return la.late + la.lost > lb.late + lb.lost;
  });
  if (top > 0 && static_cast<int>(order.size()) > top) {
    order.resize(static_cast<std::size_t>(top));
  }
  std::printf("%-9s %8s %8s %8s %8s\n", "link", "sent", "timely", "late",
              "lost");
  for (int i : order) {
    const auto& l = links[static_cast<std::size_t>(i)];
    std::printf("%3d->%-4d %8lld %8lld %8lld %8lld\n", i / s.n, i % s.n,
                sent_of(l), l.timely, l.late, l.lost);
  }
  return 0;
}

int cmd_leader(const ParsedTrace& trace, int trial) {
  const TraceSummary s = summarize_trace(trace, kDefaultNeeded);
  for (const TrialSummary& t : s.trials) {
    if (trial >= 0 && t.trial_id != trial) continue;
    std::printf("trial %d: %zu leader interval(s)\n", t.trial_id,
                t.leader_spans.size());
    for (const LeaderSpan& span : t.leader_spans) {
      std::printf("  rounds %lld..%lld leader=%d (%lld rounds)\n",
                  static_cast<long long>(span.first),
                  static_cast<long long>(span.last), span.leader,
                  static_cast<long long>(span.last - span.first + 1));
    }
  }
  return 0;
}

int cmd_validate(const char* path) {
  const ParsedTrace trace = parse_trace_file(path);  // throws on bad syntax
  const std::string err = validate_trace(trace);
  if (!err.empty()) {
    std::fprintf(stderr, "invalid: %s\n", err.c_str());
    return 1;
  }
  std::printf("ok: schema v%d, n=%d, %zu trial(s)\n", trace.version, trace.n,
              trace.trials.size());
  return 0;
}

int cmd_check(const ParsedTrace& trace, int trial) {
  int checked = 0;
  int failed = 0;
  for (const TrialTrace& t : trace.trials) {
    if (trial >= 0 && t.id != trial) continue;
    std::vector<TraceEvent> ops;
    for (const TraceEvent& e : t.events) {
      if (e.kind == EventKind::kClientOp) ops.push_back(e);
    }
    if (ops.empty()) continue;  // trials without op histories are skipped
    ++checked;
    const History h = build_history(ops);
    const CheckResult r = check_history(h);
    if (r.linearizable) {
      std::printf("trial %d: linearizable (%zu op(s))\n", t.id,
                  h.ops.size());
      continue;
    }
    ++failed;
    std::printf("trial %d: NOT linearizable: %s\n", t.id,
                r.witness.explanation.c_str());
    if (!r.witness.ops.empty()) {
      std::printf("minimal witness (key %d):\n", r.witness.key);
      for (const Operation& op : r.witness.ops) {
        std::printf("%s\n", to_jsonl(op).c_str());
      }
    }
  }
  if (checked == 0) {
    std::fprintf(stderr, "check: no op events in the selected trial(s)\n");
    return 2;
  }
  std::printf("%d trial(s) checked, %d non-linearizable\n", checked, failed);
  return failed == 0 ? 0 : 1;
}

int cmd_spans(const ParsedTrace& trace, int trial, int top) {
  int shown = 0;
  for (const TrialTrace& t : trace.trials) {
    if (trial >= 0 && t.id != trial) continue;
    std::printf("trial %d:\n%s", t.id, render_span_trees(t, top).c_str());
    ++shown;
  }
  if (shown == 0) {
    std::fprintf(stderr, "spans: no matching trial\n");
    return 2;
  }
  return 0;
}

int cmd_critpath(const ParsedTrace& trace, int trial, int top) {
  int shown = 0;
  for (const TrialTrace& t : trace.trials) {
    if (trial >= 0 && t.id != trial) continue;
    std::printf("trial %d:\n%s", t.id,
                render_critpath(t, top > 0 ? top : 3).c_str());
    ++shown;
  }
  if (shown == 0) {
    std::fprintf(stderr, "critpath: no matching trial\n");
    return 2;
  }
  return 0;
}

void print_latency_row(const char* metric, int trial_id, const LatencyRow& r,
                       bool csv) {
  if (csv) {
    std::printf("%d,%s,%lld,%lld,%lld,%lld,%lld,%lld\n", trial_id, metric,
                r.count, r.p50, r.p90, r.p99, r.p999, r.max);
  } else {
    std::printf("  %-13s %8lld %10lld %10lld %10lld %10lld %10lld\n",
                metric, r.count, r.p50, r.p90, r.p99, r.p999, r.max);
  }
}

int cmd_latency(const ParsedTrace& trace, int trial, bool csv) {
  if (csv) std::printf("trial,metric,count,p50,p90,p99,p999,max\n");
  int mismatches = 0;
  int with_spans = 0;
  for (const TrialTrace& t : trace.trials) {
    if (trial >= 0 && t.id != trial) continue;
    const SpanLatencies lat = rebuild_latencies(t);
    const std::map<int, LatencyRow> snaps = snapshot_rows(t);
    if (lat.commit.count() == 0 && lat.queue.count() == 0 &&
        snaps.empty()) {
      continue;  // no timed spans in this trial
    }
    ++with_spans;
    if (!csv) {
      std::printf("trial %d:\n  %-13s %8s %10s %10s %10s %10s %10s\n",
                  t.id, "metric", "count", "p50(ns)", "p90(ns)", "p99(ns)",
                  "p999(ns)", "max(ns)");
    }
    const LogHistogram* rebuilt[kSpanMetricCount] = {&lat.commit,
                                                     &lat.queue};
    for (int m = 0; m < kSpanMetricCount; ++m) {
      const LatencyRow row = latency_row(*rebuilt[m]);
      if (row.count > 0) {
        print_latency_row(kSpanMetricNames[m], t.id, row, csv);
      }
      // Cross-check: a recorded snapshot must equal the offline rebuild
      // (the online/offline percentile-equality contract).
      const auto snap = snaps.find(m);
      if (snap == snaps.end()) continue;
      if (snap->second == row) continue;
      ++mismatches;
      std::fprintf(stderr,
                   "trial %d: %s snapshot disagrees with the rebuild: "
                   "snapshot n=%lld p50=%lld p90=%lld p99=%lld p999=%lld "
                   "max=%lld, rebuilt n=%lld p50=%lld p90=%lld p99=%lld "
                   "p999=%lld max=%lld\n",
                   t.id, kSpanMetricNames[m], snap->second.count,
                   snap->second.p50, snap->second.p90, snap->second.p99,
                   snap->second.p999, snap->second.max, row.count, row.p50,
                   row.p90, row.p99, row.p999, row.max);
    }
  }
  if (with_spans == 0) {
    std::fprintf(stderr,
                 "latency: no timed spans in the selected trial(s) (record "
                 "with TIMING_SPANS=timed)\n");
    return 2;
  }
  return mismatches == 0 ? 0 : 1;
}

int cmd_diff(const char* a_path, const char* b_path) {
  const ParsedTrace a = parse_trace_file(a_path);
  const ParsedTrace b = parse_trace_file(b_path);
  const TraceDiff d = diff_traces(a, b);
  if (d.identical) {
    std::printf("identical\n");
    return 0;
  }
  std::printf("%s", d.report.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "validate") return cmd_validate(argv[2]);
    if (cmd == "diff") {
      if (argc != 4) return usage();
      return cmd_diff(argv[2], argv[3]);
    }

    std::array<int, kTraceNumModels> needed = kDefaultNeeded;
    bool per_trial = false;
    bool json = false;
    bool csv = false;
    int trial = -1;
    int top = 0;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--per-trial") == 0) {
        per_trial = true;
      } else if (std::strcmp(argv[i], "--json") == 0) {
        json = true;
      } else if (std::strcmp(argv[i], "--csv") == 0) {
        csv = true;
      } else if (std::strcmp(argv[i], "--needed") == 0 && i + 1 < argc) {
        if (!parse_needed(argv[++i], needed)) return usage();
      } else if (std::strcmp(argv[i], "--trial") == 0 && i + 1 < argc) {
        // Checked parses (shared with the scenario override grammar):
        // `--trial 1x` is a usage error, not a silent atoi prefix.
        if (!timing::parse_int(argv[++i], trial)) {
          std::fprintf(stderr, "trace_tool: --trial expects an integer, got "
                               "'%s'\n", argv[i]);
          return usage();
        }
      } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
        if (!timing::parse_int(argv[++i], top) || top < 0) {
          std::fprintf(stderr, "trace_tool: --top expects a non-negative "
                               "integer, got '%s'\n", argv[i]);
          return usage();
        }
      } else {
        return usage();
      }
    }

    if (cmd != "summary" && cmd != "links" && cmd != "leader" &&
        cmd != "check" && cmd != "spans" && cmd != "critpath" &&
        cmd != "latency") {
      return usage();
    }
    const ParsedTrace trace = parse_trace_file(argv[2]);
    if (cmd == "summary") {
      return json ? cmd_summary_json(trace, needed, per_trial)
                  : cmd_summary(trace, needed, per_trial);
    }
    if (cmd == "links") return cmd_links(trace, trial, top);
    if (cmd == "leader") return cmd_leader(trace, trial);
    if (cmd == "check") return cmd_check(trace, trial);
    if (cmd == "spans") return cmd_spans(trace, trial, top);
    if (cmd == "critpath") return cmd_critpath(trace, trial, top);
    if (cmd == "latency") return cmd_latency(trace, trial, csv);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "trace_tool: %s\n", ex.what());
    return 1;
  }
  return usage();
}

// timing_lab: the unified experiment driver. Every figure and ablation
// is a named scenario in the registry; this binary lists them, describes
// their paper-default parameters, runs them with `key=value` overrides,
// and validates the results JSONL they emit.
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return timing::scenario::lab_main(argc, argv);
}

#include "obs/metrics.hpp"

#include <sstream>

#include "common/check.hpp"

namespace timing {

long long MetricsRegistry::counter(const std::string& name) const noexcept {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, std::size_t bins) {
  auto [it, inserted] = histograms_.try_emplace(name);
  if (inserted || !it->second.configured()) {
    // First use — or an unconfigured placeholder that arrived through
    // merge(); either way this call's shape wins.
    it->second = Histogram(lo, hi, bins);
  } else {
    TM_CHECK(it->second.lo() == lo && it->second.hi() == hi &&
                 it->second.bins() == bins,
             "histogram re-requested with a different shape");
  }
  return it->second;
}

const LogHistogram* MetricsRegistry::find_latency(
    const std::string& name) const noexcept {
  const auto it = latencies_.find(name);
  return it == latencies_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, s] : other.stats_) stats_[name].merge(s);
  for (const auto& [name, h] : other.histograms_) {
    // Explicit three-way logic instead of try_emplace-then-merge: a
    // never-touched (unconfigured) histogram on either side must not
    // erase the configured side's shape, and merging two configured
    // histograms stays exactly associative (integer bins).
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else if (!it->second.configured()) {
      it->second = h;
    } else {
      it->second.merge(h);
    }
  }
  for (const auto& [name, h] : other.latencies_) latencies_[name].merge(h);
  for (const auto& [name, t] : other.timers_) {
    auto& mine = timers_[name];
    mine.ns += t.ns;
    mine.count += t.count;
  }
}

std::string MetricsRegistry::to_string() const {
  std::ostringstream out;
  for (const auto& [name, v] : counters_) {
    out << name << " = " << v << "\n";
  }
  for (const auto& [name, s] : stats_) {
    out << name << " = mean " << s.mean() << " sd " << s.stddev() << " n "
        << s.count() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << name << " = histogram[" << h.lo() << ", " << h.hi() << ") total "
        << h.total() << "\n";
  }
  for (const auto& [name, h] : latencies_) {
    out << name << " = p50 " << h.quantile(0.50) << " p90 " << h.quantile(0.90)
        << " p99 " << h.quantile(0.99) << " p999 " << h.quantile(0.999)
        << " max " << h.max() << " n " << h.count() << "\n";
  }
  for (const auto& [name, t] : timers_) {
    out << name << " = " << t.ms() << " ms over " << t.count
        << " intervals\n";
  }
  return out.str();
}

}  // namespace timing

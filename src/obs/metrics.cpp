#include "obs/metrics.hpp"

#include <sstream>

#include "common/check.hpp"

namespace timing {

long long MetricsRegistry::counter(const std::string& name) const noexcept {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, std::size_t bins) {
  auto [it, inserted] = histograms_.try_emplace(name);
  if (inserted) {
    it->second = Histogram(lo, hi, bins);
  } else {
    TM_CHECK(it->second.lo() == lo && it->second.hi() == hi &&
                 it->second.bins() == bins,
             "histogram re-requested with a different shape");
  }
  return it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, s] : other.stats_) stats_[name].merge(s);
  for (const auto& [name, h] : other.histograms_) {
    auto [it, inserted] = histograms_.try_emplace(name, h);
    if (!inserted) it->second.merge(h);
  }
  for (const auto& [name, t] : other.timers_) {
    auto& mine = timers_[name];
    mine.ns += t.ns;
    mine.count += t.count;
  }
}

std::string MetricsRegistry::to_string() const {
  std::ostringstream out;
  for (const auto& [name, v] : counters_) {
    out << name << " = " << v << "\n";
  }
  for (const auto& [name, s] : stats_) {
    out << name << " = mean " << s.mean() << " sd " << s.stddev() << " n "
        << s.count() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << name << " = histogram[" << h.lo() << ", " << h.hi() << ") total "
        << h.total() << "\n";
  }
  for (const auto& [name, t] : timers_) {
    out << name << " = " << t.ms() << " ms over " << t.count
        << " intervals\n";
  }
  return out.str();
}

}  // namespace timing

// Runtime trace switches. Tracing is OFF by default; setting
// TIMING_TRACE=<path> makes the observability-aware entry points
// (measure_runs and the figure benches built on it) record every trial
// and write one JSONL trace file at <path>. The env is read per call —
// unlike TIMING_THREADS there is no process-wide cache, so tests can
// toggle it.
#pragma once

#include <cstddef>
#include <string>

namespace timing {

struct TraceConfig {
  /// JSONL output path; empty disables tracing.
  std::string path;
  /// Cap on buffered events per trial (0 = unbounded). Guards sweeps that
  /// would otherwise buffer gigabytes; drops are counted, never silent.
  std::size_t max_events_per_trial = 0;

  bool enabled() const noexcept { return !path.empty(); }

  /// TIMING_TRACE=<path> (and optional TIMING_TRACE_MAX_EVENTS).
  static TraceConfig from_env();
};

}  // namespace timing

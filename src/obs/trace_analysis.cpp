#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/check.hpp"

namespace timing {

namespace {

/// Within-round emission phase; validate_trace requires phases to be
/// non-decreasing between RoundStart and RoundEnd.
int phase_rank(EventKind k) noexcept {
  switch (k) {
    case EventKind::kRoundStart: return 0;
    case EventKind::kCrash: return 1;
    case EventKind::kMsgSent:
    case EventKind::kMsgTimely:
    case EventKind::kMsgLate:
    case EventKind::kMsgLost: return 2;
    case EventKind::kOracleOutput:
    case EventKind::kPredicateEval:
    case EventKind::kDecide: return 3;
    case EventKind::kRoundEnd: return 4;
    case EventKind::kFaultInjected: return -1;  // exempt, see validate_trace
    case EventKind::kClientOp: return -1;       // exempt, see validate_trace
    case EventKind::kSpan: return -1;           // exempt, see validate_trace
    case EventKind::kMetricsSnapshot: return -1;
  }
  return 5;
}

bool is_msg(EventKind k) noexcept {
  return k == EventKind::kMsgSent || k == EventKind::kMsgTimely ||
         k == EventKind::kMsgLate || k == EventKind::kMsgLost;
}

}  // namespace

TrialSummary summarize_trial(const TrialTrace& trial, int n,
                             const std::array<int, kTraceNumModels>& needed) {
  TrialSummary out;
  out.trial_id = trial.id;
  out.n = n;
  out.links.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                   LinkCounts{});
  out.first_window.fill(-1);

  std::array<int, kTraceNumModels> streak{};
  // Leader agreement per round: outputs keyed by process, folded into
  // spans once the round is complete.
  std::map<ProcessId, ProcessId> oracle_out;
  Round oracle_round = 0;
  auto close_oracle_round = [&]() {
    if (oracle_out.empty()) return;
    ProcessId agreed = oracle_out.begin()->second;
    for (const auto& [proc, ld] : oracle_out) {
      if (ld != agreed) {
        agreed = kNoProcess;
        break;
      }
    }
    if (agreed != kNoProcess) {
      if (!out.leader_spans.empty() &&
          out.leader_spans.back().leader == agreed &&
          out.leader_spans.back().last == oracle_round - 1) {
        out.leader_spans.back().last = oracle_round;
      } else {
        out.leader_spans.push_back(LeaderSpan{oracle_round, oracle_round,
                                              agreed});
      }
    }
    oracle_out.clear();
  };

  for (const TraceEvent& e : trial.events) {
    // Op events carry a logical timestamp, not an engine round; span
    // and metrics events annotate rounds rather than defining them.
    // None of those may inflate the trial's round count.
    if (e.kind != EventKind::kClientOp && e.kind != EventKind::kSpan &&
        e.kind != EventKind::kMetricsSnapshot) {
      out.rounds = std::max(out.rounds, e.round);
    }
    switch (e.kind) {
      case EventKind::kMsgSent:
        ++out.totals.sent;
        ++out.links[static_cast<std::size_t>(e.src) * n + e.dst].sent;
        break;
      case EventKind::kMsgTimely:
        ++out.totals.timely;
        ++out.links[static_cast<std::size_t>(e.src) * n + e.dst].timely;
        break;
      case EventKind::kMsgLate:
        ++out.totals.late;
        ++out.links[static_cast<std::size_t>(e.src) * n + e.dst].late;
        break;
      case EventKind::kMsgLost:
        ++out.totals.lost;
        ++out.links[static_cast<std::size_t>(e.src) * n + e.dst].lost;
        break;
      case EventKind::kPredicateEval:
        ++out.pred_rounds;
        if (e.csat != kTraceNoClassSat) {
          ++out.granular_rounds;
          for (int c = 0; c < kTraceNumLinkClasses; ++c) {
            if (e.csat & (1u << c)) {
              ++out.class_sat_rounds[static_cast<std::size_t>(c)];
            }
          }
        }
        for (int m = 0; m < kTraceNumModels; ++m) {
          const auto mi = static_cast<std::size_t>(m);
          if (e.sat & (1u << m)) {
            ++out.sat_rounds[mi];
            ++streak[mi];
            if (out.first_window[mi] < 0 && streak[mi] >= needed[mi]) {
              out.first_window[mi] = e.round;
            }
          } else {
            streak[mi] = 0;
          }
        }
        break;
      case EventKind::kOracleOutput:
        if (e.round != oracle_round) {
          close_oracle_round();
          oracle_round = e.round;
        }
        oracle_out[e.proc] = e.leader;
        break;
      case EventKind::kDecide:
        out.decides.push_back(e);
        out.global_decision_round =
            std::max(out.global_decision_round, e.round);
        break;
      case EventKind::kCrash:
        out.crashes.push_back(e);
        break;
      case EventKind::kFaultInjected:
        ++out.fault_events;
        break;
      case EventKind::kClientOp:
        ++out.op_events;
        break;
      case EventKind::kSpan:
        ++out.span_events;
        break;
      case EventKind::kMetricsSnapshot:
        ++out.metrics_events;
        break;
      case EventKind::kRoundStart:
      case EventKind::kRoundEnd:
        break;
    }
  }
  close_oracle_round();
  return out;
}

double TraceSummary::mean_incidence(int model) const noexcept {
  double sum = 0.0;
  int count = 0;
  for (const TrialSummary& t : trials) {
    if (t.pred_rounds == 0) continue;
    sum += t.incidence(model);
    ++count;
  }
  return count ? sum / count : 0.0;
}

double TraceSummary::mean_first_window(int model,
                                       int* completed) const noexcept {
  double sum = 0.0;
  int count = 0;
  for (const TrialSummary& t : trials) {
    const Round w = t.first_window[static_cast<std::size_t>(model)];
    if (w < 0) continue;
    sum += static_cast<double>(w);
    ++count;
  }
  if (completed != nullptr) *completed = count;
  return count ? sum / count : 0.0;
}

TraceSummary summarize_trace(const ParsedTrace& trace,
                             const std::array<int, kTraceNumModels>& needed) {
  TraceSummary out;
  out.n = trace.n;
  out.trials.reserve(trace.trials.size());
  for (const TrialTrace& t : trace.trials) {
    out.trials.push_back(
        summarize_trial(t, t.n > 0 ? t.n : trace.n, needed));
  }
  return out;
}

std::string validate_trace(const ParsedTrace& trace) {
  std::ostringstream err;
  for (const TrialTrace& trial : trace.trials) {
    Round open_round = -1;   // round between RoundStart and RoundEnd
    Round last_started = 0;
    Round op_ts = -1;        // last ClientOp logical timestamp
    int last_rank = -1;
    bool trial_has_sends = false;
    for (const TraceEvent& e : trial.events) {
      if (e.kind == EventKind::kMsgSent) {
        trial_has_sends = true;
        break;
      }
    }
    std::set<std::pair<ProcessId, ProcessId>> sent_this_round;
    std::set<ProcessId> decided, crashed;
    // Span lifecycle (0 = unseen, 1 = begun, 2 = ended); mirrors the
    // parser's checks so programmatically-built traces are held to the
    // same contract.
    std::map<std::uint64_t, int> span_state;

    for (std::size_t i = 0; i < trial.events.size(); ++i) {
      const TraceEvent& e = trial.events[i];
      auto fail = [&](const std::string& why) {
        err << "trial " << trial.id << " event " << i << " ("
            << to_string(e.kind) << ", round " << e.round << "): " << why;
        return err.str();
      };

      if (e.kind == EventKind::kClientOp) {
        // Op events carry logical timestamps from the client harness,
        // not engine rounds: exempt from all round/phase checks, but
        // the timestamps must strictly increase within the trial so
        // histories have a total invocation/completion order.
        if (op_ts >= 0 && e.round <= op_ts) {
          return fail("op timestamps must strictly increase");
        }
        op_ts = e.round;
        continue;
      }
      if (e.kind == EventKind::kSpan) {
        // Spans annotate rounds (or are round-free, k = 0) and carry
        // monotonic timestamps, not engine rounds: exempt from the
        // open-round/phase checks. Their lifecycle must still be sound.
        if (e.span_id == 0) return fail("span id must be positive");
        if (span_kind_name(e.span_kind) == nullptr) {
          return fail("invalid span kind");
        }
        int& st = span_state[e.span_id];
        if (e.span_phase == span_phase::kBegin) {
          if (st != 0) return fail("duplicate span begin");
          st = 1;
        } else if (e.span_phase == span_phase::kEnd) {
          if (st == 0) return fail("span end before begin");
          if (st == 2) return fail("duplicate span end");
          st = 2;
        } else if (e.span_phase == span_phase::kCause) {
          if (e.span_parent == 0) return fail("cause edge without a cause");
        } else {
          return fail("invalid span phase");
        }
        continue;
      }
      if (e.kind == EventKind::kMetricsSnapshot) continue;  // exempt
      if (e.kind == EventKind::kFaultInjected) {
        // Sim-path injection happens while round k is being *sampled*,
        // i.e. after RoundEnd(k-1) and before the engine's RoundStart(k),
        // so fault events are exempt from the open-round and phase
        // checks. They still may not reference an already-closed round.
        if (e.round < last_started) {
          return fail("fault event for an already-closed round");
        }
        continue;
      }
      if (e.kind == EventKind::kRoundStart) {
        if (open_round >= 0) return fail("previous round never ended");
        if (e.round <= last_started) {
          return fail("round numbers must strictly increase");
        }
        open_round = e.round;
        last_started = e.round;
        last_rank = 0;
        sent_this_round.clear();
        continue;
      }
      if (open_round < 0) return fail("event outside any round");
      if (e.round != open_round) {
        return fail("round does not match the open round " +
                    std::to_string(open_round));
      }
      const int rank = phase_rank(e.kind);
      if (rank < last_rank) {
        return fail("out-of-order phase (rank " + std::to_string(rank) +
                    " after " + std::to_string(last_rank) + ")");
      }
      last_rank = rank;

      if (e.kind == EventKind::kMsgSent) {
        sent_this_round.insert({e.src, e.dst});
      } else if (trial_has_sends && is_msg(e.kind)) {
        if (sent_this_round.count({e.src, e.dst}) == 0) {
          return fail("delivery/loss without a preceding send on the link");
        }
      }
      if (e.kind == EventKind::kDecide && !decided.insert(e.proc).second) {
        return fail("process decided twice");
      }
      if (e.kind == EventKind::kCrash && !crashed.insert(e.proc).second) {
        return fail("process crashed twice");
      }
      if (e.kind == EventKind::kRoundEnd) open_round = -1;
    }
    if (open_round >= 0) {
      err << "trial " << trial.id << ": round " << open_round
          << " never ended";
      return err.str();
    }
  }
  return "";
}

TraceDiff diff_traces(const ParsedTrace& a, const ParsedTrace& b) {
  TraceDiff out;
  std::ostringstream rep;
  if (a.n != b.n) {
    rep << "group size differs: " << a.n << " vs " << b.n << "\n";
    out.identical = false;
  }
  if (a.trials.size() != b.trials.size()) {
    rep << "trial count differs: " << a.trials.size() << " vs "
        << b.trials.size() << "\n";
    out.identical = false;
  }
  const std::size_t trials = std::min(a.trials.size(), b.trials.size());
  const std::array<int, kTraceNumModels> needed{3, 3, 4, 5};
  for (std::size_t t = 0; t < trials; ++t) {
    const TrialTrace& ta = a.trials[t];
    const TrialTrace& tb = b.trials[t];
    if (ta.events == tb.events) continue;
    out.identical = false;
    // First divergent event.
    const std::size_t len = std::min(ta.events.size(), tb.events.size());
    std::size_t div = len;
    for (std::size_t i = 0; i < len; ++i) {
      if (!(ta.events[i] == tb.events[i])) {
        div = i;
        break;
      }
    }
    rep << "trial " << ta.id << ": ";
    if (div < len) {
      rep << "first divergence at event " << div << ": " << to_jsonl(
          ta.events[div]) << " vs " << to_jsonl(tb.events[div]) << "\n";
    } else {
      rep << "event counts differ: " << ta.events.size() << " vs "
          << tb.events.size() << "\n";
    }
    // Summary-level deltas help explain what the divergence means.
    const int na = ta.n > 0 ? ta.n : a.n;
    const int nb = tb.n > 0 ? tb.n : b.n;
    const int n = std::min(na, nb);
    const TrialSummary sa = summarize_trial(ta, n, needed);
    const TrialSummary sb = summarize_trial(tb, n, needed);
    for (int m = 0; m < kTraceNumModels; ++m) {
      const auto mi = static_cast<std::size_t>(m);
      if (sa.sat_rounds[mi] != sb.sat_rounds[mi]) {
        rep << "  " << kTraceModelNames[m] << " conforming rounds: "
            << sa.sat_rounds[mi] << " vs " << sb.sat_rounds[mi] << "\n";
      }
    }
    if (sa.global_decision_round != sb.global_decision_round) {
      rep << "  global decision round: " << sa.global_decision_round
          << " vs " << sb.global_decision_round << "\n";
    }
    if (!(sa.totals == sb.totals)) {
      rep << "  message fates (timely/late/lost): " << sa.totals.timely
          << "/" << sa.totals.late << "/" << sa.totals.lost << " vs "
          << sb.totals.timely << "/" << sb.totals.late << "/"
          << sb.totals.lost << "\n";
    }
  }
  out.report = rep.str();
  if (out.identical) out.report = "traces are identical\n";
  return out;
}

}  // namespace timing

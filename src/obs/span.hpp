// Causal span tracing: WHERE an operation's latency went. A span is a
// named interval (begin/end) with a parent — op spans own queue, commit
// and apply children; instance spans own round spans; message spans hang
// off the round that sent them — plus explicit cross-tree *cause* edges
// (round <- arriving message, commit <- deciding instance) that carry
// the causality a parent pointer cannot.
//
// Spans ride the existing TraceSink pipeline as schema-v1 "e":"span"
// JSONL lines, so every buffering/serialization/validation facility of
// obs/ applies unchanged. Two properties are load-bearing:
//
//  * Deterministic ids. A span id is a pure bit-pack of (kind, small
//    integer coordinates) — (client, rid) for op-family spans, the
//    instance ordinal for instance spans, (ctx, round) for round spans,
//    (round, src, dst) for message spans. No wall clock, no thread
//    identity: in `ids` mode a trace is a pure function of the seeds
//    and is byte-identical across TIMING_THREADS (pinned in
//    tests/obs_test.cpp).
//  * One-branch disabled path. Every emission site tests one pointer /
//    mode byte; bench_span_overhead enforces <3% overhead when off and
//    <10% in `timed` mode on the live ablation path.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "obs/trace_event.hpp"
#include "obs/trace_sink.hpp"

namespace timing {

class MetricsRegistry;

/// What span emission records. `ids` keeps the causal structure but
/// suppresses timestamps (t stays -1 / off the wire), preserving the
/// determinism contract; `timed` stamps monotonic nanoseconds and
/// additionally allows metrics snapshots.
enum class SpanMode : std::uint8_t {
  kOff = 0,
  kIds = 1,
  kTimed = 2,
};

const char* to_string(SpanMode m) noexcept;
bool span_mode_from_string(const char* s, SpanMode& out) noexcept;

/// Reads TIMING_SPANS (off|ids|timed; default off). Read per call, like
/// TraceConfig::from_env; warns once on stderr for an unknown value and
/// treats it as off.
SpanMode span_mode_from_env();

/// Deterministic span id: kind tag in bits 59..62, then three small
/// integer coordinates (a:27, b:16, c:16 bits). Collisions within one
/// trial are impossible as long as coordinates respect those widths —
/// rounds and slot ordinals below 2^27, process/client ids and rids
/// below 2^16 — which every harness in this repo satisfies by orders of
/// magnitude. Bit 63 stays clear for every kind below span_kind::kCount,
/// so ids stay within the positive range of the JSONL integer encoding.
constexpr std::uint64_t make_span_id(std::uint8_t kind, std::uint64_t a,
                                     std::uint64_t b = 0,
                                     std::uint64_t c = 0) noexcept {
  return ((static_cast<std::uint64_t>(kind) & 0xFULL) << 59) |
         ((a & 0x7FFFFFFULL) << 32) | ((b & 0xFFFFULL) << 16) |
         (c & 0xFFFFULL);
}

/// Emits span events into a TraceSink under a SpanMode. Null sink or
/// kOff disables; begin/end return the timestamp they recorded (0 in
/// ids mode) so callers can feed the *same* clock reading into a
/// LogHistogram — that shared reading is why online percentiles equal
/// the ones trace_tool rebuilds offline.
///
/// Not thread-safe (matches BufferSink's single-writer-per-trial
/// contract): one tracer per trial on the sim path, one per node on the
/// live path, all emission from the driving thread.
class SpanTracer {
 public:
  SpanTracer() = default;
  SpanTracer(TraceSink* sink, SpanMode mode);

  bool enabled() const noexcept { return sink_ != nullptr && mode_ != SpanMode::kOff; }
  bool timed() const noexcept { return enabled() && mode_ == SpanMode::kTimed; }
  SpanMode mode() const noexcept { return mode_; }
  TraceSink* sink() const noexcept { return sink_; }

  /// Monotonic nanoseconds since this tracer's construction (its
  /// epoch); 0 when not in timed mode, so ids-mode arithmetic on the
  /// return values is harmlessly degenerate.
  long long now_ns() const noexcept;

  /// Emit a begin event; returns its timestamp.
  long long begin(std::uint64_t id, std::uint64_t parent, std::uint8_t kind,
                  Round k = 0);
  /// Emit an end event; returns its timestamp.
  long long end(std::uint64_t id, std::uint8_t kind, Round k = 0);
  /// Emit a causality edge: `cause_id` happened-before span `id`.
  void cause(std::uint64_t id, std::uint64_t cause_id, std::uint8_t kind,
             Round k = 0);

 private:
  TraceSink* sink_ = nullptr;
  SpanMode mode_ = SpanMode::kOff;
  long long epoch_ns_ = 0;
};

/// One-branch helpers for possibly-null tracer pointers (the idiom at
/// every instrumentation site).
inline long long span_begin(SpanTracer* t, std::uint64_t id,
                            std::uint64_t parent, std::uint8_t kind,
                            Round k = 0) {
  return t != nullptr ? t->begin(id, parent, kind, k) : 0;
}
inline long long span_end(SpanTracer* t, std::uint64_t id, std::uint8_t kind,
                          Round k = 0) {
  return t != nullptr ? t->end(id, kind, k) : 0;
}
inline void span_cause(SpanTracer* t, std::uint64_t id, std::uint64_t cause_id,
                       std::uint8_t kind, Round k = 0) {
  if (t != nullptr) t->cause(id, cause_id, kind, k);
}

/// Emit one "e":"metrics" snapshot line per known latency metric the
/// registry holds (kSpanMetricNames order; absent/empty metrics are
/// skipped). Timed mode only — snapshot values are wall clock and would
/// break ids-mode byte-identity. `seq` orders multiple snapshots within
/// a trial. Returns the number of lines emitted.
int emit_metrics_snapshot(SpanTracer* t, const MetricsRegistry& reg,
                          Round seq = 0);

}  // namespace timing

// Schema-versioned JSONL trace encoding: one JSON object per line, plain
// text (gzip-agnostic — compress the file externally if desired).
//
// Layout of a trace file:
//   {"schema":"timing-trace","v":1,"n":4}          <- header, exactly once
//   {"e":"trial","id":0}                           <- trial delimiter
//   {"e":"trial","id":1,"n":3}                     <- optional per-trial n
//   {"e":"round_start","k":1}
//   {"e":"sent","k":1,"s":0,"d":1}
//   {"e":"timely","k":1,"s":0,"d":1}
//   {"e":"late","k":1,"s":0,"d":2,"delay":3}
//   {"e":"lost","k":1,"s":2,"d":0}
//   {"e":"oracle","k":1,"p":0,"ld":2}
//   {"e":"pred","k":1,"sat":13}                    <- bit i = model index i
//   {"e":"decide","k":5,"p":1,"v":42,"rule":2}
//   {"e":"crash","k":3,"p":2}
//   {"e":"fault","k":2,"fk":4,"s":0,"d":1}        <- fk = FaultKind

//   {"e":"round_end","k":1}
//   {"e":"trial","id":1}
//   ...
//
// Fields with sentinel defaults are omitted, so encoding is injective per
// event kind and round-trips losslessly (asserted in tests/obs_test.cpp).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace_event.hpp"

namespace timing {

/// One line, no trailing newline.
std::string to_jsonl(const TraceEvent& e);

/// `n` in the header is the process-count bound for the whole file (the
/// max over trials when trials differ, e.g. a group-size sweep).
void write_trace_header(std::ostream& out, int n);
/// `n` > 0 records this trial's own process count (omitted when it
/// matches the header).
void write_trial(std::ostream& out, int trial_id,
                 const std::vector<TraceEvent>& events, int n = 0);

struct TrialTrace {
  int id = 0;
  /// This trial's process count; 0 = inherit the header's n.
  int n = 0;
  std::vector<TraceEvent> events;

  bool operator==(const TrialTrace&) const = default;
};

struct ParsedTrace {
  int version = 0;
  int n = 0;
  std::vector<TrialTrace> trials;

  bool operator==(const ParsedTrace&) const = default;
};

/// Strict parser; throws std::runtime_error with a line number on any
/// malformed input (missing/duplicate header, unknown event, missing
/// field, out-of-range ids, events before the first trial marker).
/// Blank lines and lines starting with '#' are skipped.
ParsedTrace parse_trace(std::istream& in);

/// Parse a file by path (convenience for trace_tool and tests).
ParsedTrace parse_trace_file(const std::string& path);

}  // namespace timing

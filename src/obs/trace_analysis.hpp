// Offline trace analysis: answers the paper's Section 5 questions from a
// recorded JSONL trace instead of the live harness — per-model P_M
// incidence, the first round where R_M consecutive conforming rounds
// complete, leader-stability intervals, per-link late/lost breakdowns —
// plus structural validation (event-ordering invariants) and a diff mode.
//
// The first-window computation deliberately mirrors
// harness/measurement.hpp's rounds_until_conditions(sat, 0, needed): for
// an identical sat series both report the same round, which is what lets
// tests assert exact agreement between online and offline numbers.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "obs/jsonl.hpp"

namespace timing {

/// A maximal interval of rounds during which every process that reported
/// an oracle output reported the same leader.
struct LeaderSpan {
  Round first = 0;
  Round last = 0;
  ProcessId leader = kNoProcess;

  bool operator==(const LeaderSpan&) const = default;
};

/// Message-fate counts for one directed link (src -> dst).
struct LinkCounts {
  long long sent = 0;  ///< 0 in traces that record fates only (measure_run)
  long long timely = 0;
  long long late = 0;
  long long lost = 0;

  bool operator==(const LinkCounts&) const = default;
};

struct TrialSummary {
  int trial_id = 0;
  int n = 0;
  Round rounds = 0;  ///< highest round observed

  /// Rounds carrying a PredicateEval event (the sat-series length).
  long long pred_rounds = 0;
  /// Per model: rounds whose matrix satisfied the model.
  std::array<long long, kTraceNumModels> sat_rounds{};
  /// PredicateEval events carrying a granular csat mask (0 for
  /// homogeneous traces).
  long long granular_rounds = 0;
  /// Per link class (sync/psync/async): granular rounds in which every
  /// link of that class was timely.
  std::array<long long, kTraceNumLinkClasses> class_sat_rounds{};
  /// Per model: 1-based round in which the needed[m]-th consecutive
  /// conforming round occurred, counting from round 1 (equals
  /// rounds_until_conditions(sat, 0, needed).rounds); -1 if the run ended
  /// first. The window *begins* at first_window[m] - needed[m] + 1.
  std::array<Round, kTraceNumModels> first_window{};

  LinkCounts totals;
  std::vector<LinkCounts> links;  ///< n*n, index src * n + dst

  std::vector<LeaderSpan> leader_spans;
  std::vector<TraceEvent> decides;       ///< in emission order
  std::vector<TraceEvent> crashes;
  long long fault_events = 0;            ///< FaultInjected events recorded
  long long op_events = 0;               ///< ClientOp events recorded
  long long span_events = 0;             ///< Span events recorded
  long long metrics_events = 0;          ///< MetricsSnapshot events recorded
  Round global_decision_round = -1;      ///< max decide round, -1 if none

  double incidence(int model) const noexcept {
    return pred_rounds
               ? static_cast<double>(
                     sat_rounds[static_cast<std::size_t>(model)]) /
                     static_cast<double>(pred_rounds)
               : 0.0;
  }
  /// Per-class conformance probability over the granular rounds.
  double class_incidence(int cls) const noexcept {
    return granular_rounds
               ? static_cast<double>(
                     class_sat_rounds[static_cast<std::size_t>(cls)]) /
                     static_cast<double>(granular_rounds)
               : 0.0;
  }
  const LinkCounts& link(ProcessId src, ProcessId dst) const {
    return links[static_cast<std::size_t>(src) *
                     static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(dst)];
  }
};

/// `needed[m]` = R_M, the consecutive conforming rounds model m requires
/// for global decision (the paper's defaults are {3, 3, 4, 5}).
TrialSummary summarize_trial(const TrialTrace& trial, int n,
                             const std::array<int, kTraceNumModels>& needed);

struct TraceSummary {
  int n = 0;
  std::vector<TrialSummary> trials;

  /// Mean P_M over trials with predicate data.
  double mean_incidence(int model) const noexcept;
  /// Mean first-window round over trials where the window completed;
  /// `completed` receives how many did.
  double mean_first_window(int model, int* completed = nullptr) const noexcept;
};

TraceSummary summarize_trace(const ParsedTrace& trace,
                             const std::array<int, kTraceNumModels>& needed);

/// Structural validation beyond what the parser enforces. Checks, per
/// trial: RoundStart rounds strictly increase; every event between a
/// RoundStart(k) and its RoundEnd(k) carries round k; the within-round
/// phase order RoundStart < Crash <= Msg* <= Oracle/Predicate/Decide <
/// RoundEnd; every delivery/loss follows its MsgSent (in trials that
/// record sends); at most one Decide and one Crash per process. Returns
/// "" when valid, else a description of the first violation.
/// FaultInjected events are exempt from the open-round/phase checks
/// (sim-path injection edits round k's matrix before the engine opens
/// round k) but may not reference an already-closed round. ClientOp
/// events are fully exempt ("k" is a logical timestamp, not a round),
/// but their timestamps must strictly increase within each trial.
std::string validate_trace(const ParsedTrace& trace);

struct TraceDiff {
  bool identical = true;
  std::string report;  ///< human-readable description of the differences
};

/// Structural + summary comparison of two traces (e.g. the same sweep at
/// different thread counts, or before/after a protocol change).
TraceDiff diff_traces(const ParsedTrace& a, const ParsedTrace& b);

}  // namespace timing

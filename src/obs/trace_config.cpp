#include "obs/trace_config.hpp"

#include <cstdlib>

namespace timing {

TraceConfig TraceConfig::from_env() {
  TraceConfig cfg;
  if (const char* path = std::getenv("TIMING_TRACE")) {
    cfg.path = path;
  }
  if (const char* cap = std::getenv("TIMING_TRACE_MAX_EVENTS")) {
    const long v = std::strtol(cap, nullptr, 10);
    if (v > 0) cfg.max_events_per_trial = static_cast<std::size_t>(v);
  }
  return cfg;
}

}  // namespace timing

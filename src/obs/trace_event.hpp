// Typed round-trace events: the structured record of WHY a run behaved
// the way it did, mirroring the quantities Section 5 measures. One event
// is one observable fact about a round — a message's fate on a link, the
// oracle's output at a process, which model predicates the round's
// communication matrix satisfied, a decision, a crash.
//
// The schema is deliberately flat (no nesting, fixed fields) so events
// serialize to one JSONL line each and compare bitwise for the
// determinism tests. Unused fields keep their sentinel defaults and are
// omitted from the JSONL encoding.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace timing {

/// Bumped whenever the JSONL encoding or event semantics change;
/// trace_tool refuses traces from a different major version.
inline constexpr int kTraceSchemaVersion = 1;

/// Number of timing models a PredicateEval event covers. Bit i of
/// TraceEvent::sat corresponds to model index i in the canonical order
/// ES, <>LM, <>WLM, <>AFM (matching models/timing_model.hpp and
/// harness/measurement.hpp's model_index). Kept as a local constant so
/// tm_obs stays below tm_models in the dependency order.
inline constexpr int kTraceNumModels = 4;

/// Canonical short names for the sat-mask bits, index = model index.
inline constexpr const char* kTraceModelNames[kTraceNumModels] = {
    "ES", "LM", "WLM", "AFM"};

enum class EventKind : std::uint8_t {
  kRoundStart,    ///< round k began
  kRoundEnd,      ///< round k's compute phase finished
  kMsgSent,       ///< src dispatched its round-k message to dst
  kMsgTimely,     ///< the (src,dst) round-k message arrived within the round
  kMsgLate,       ///< ... arrived `delay` rounds after round k ended
  kMsgLost,       ///< ... never arrived (or was dropped by a transport)
  kOracleOutput,  ///< proc's oracle answered `leader` at end of round k
  kPredicateEval, ///< which model predicates round k's matrix satisfied
  kDecide,        ///< proc decided `value` in round k (rule = protocol tag)
  kCrash,         ///< proc stopped taking steps from round k on
  kFaultInjected, ///< a fault-plan event acted on round k (rule = FaultKind)
};

/// Stable wire names (the "e" field of the JSONL encoding).
const char* to_string(EventKind k) noexcept;

struct TraceEvent {
  EventKind kind = EventKind::kRoundStart;
  Round round = 0;
  ProcessId src = kNoProcess;   ///< sender (Msg* events)
  ProcessId dst = kNoProcess;   ///< recipient (Msg* events)
  ProcessId proc = kNoProcess;  ///< subject process (oracle/decide/crash)
  ProcessId leader = kNoProcess;///< oracle output
  int delay = 0;                ///< MsgLate: rounds of extra delay
  std::uint8_t sat = 0;         ///< PredicateEval: bit per model
  std::uint8_t rule = 0;        ///< Decide: protocol-specific rule tag
  Value value = kNoValue;       ///< Decide: the decided value

  bool operator==(const TraceEvent&) const = default;

  // Factories for the common shapes; keep call sites one line.
  static TraceEvent round_start(Round k) {
    TraceEvent e;
    e.kind = EventKind::kRoundStart;
    e.round = k;
    return e;
  }
  static TraceEvent round_end(Round k) {
    TraceEvent e;
    e.kind = EventKind::kRoundEnd;
    e.round = k;
    return e;
  }
  static TraceEvent msg(EventKind kind, Round k, ProcessId src, ProcessId dst,
                        int delay = 0) {
    TraceEvent e;
    e.kind = kind;
    e.round = k;
    e.src = src;
    e.dst = dst;
    e.delay = delay;
    return e;
  }
  static TraceEvent oracle(Round k, ProcessId proc, ProcessId leader) {
    TraceEvent e;
    e.kind = EventKind::kOracleOutput;
    e.round = k;
    e.proc = proc;
    e.leader = leader;
    return e;
  }
  static TraceEvent predicates(Round k, std::uint8_t sat_mask) {
    TraceEvent e;
    e.kind = EventKind::kPredicateEval;
    e.round = k;
    e.sat = sat_mask;
    return e;
  }
  static TraceEvent decide(Round k, ProcessId proc, Value v,
                           std::uint8_t rule) {
    TraceEvent e;
    e.kind = EventKind::kDecide;
    e.round = k;
    e.proc = proc;
    e.value = v;
    e.rule = rule;
    return e;
  }
  static TraceEvent crash(Round k, ProcessId proc) {
    TraceEvent e;
    e.kind = EventKind::kCrash;
    e.round = k;
    e.proc = proc;
    return e;
  }
  /// Fault injection acting on round k. `fault_kind` is the FaultKind of
  /// fault/plan.hpp (stored in `rule`); proc/src/dst/delay are filled per
  /// kind (crash/recover -> proc, drop/delay -> src,dst, delay -> extra
  /// rounds in `delay`). Emitted by both injection backends, so sim and
  /// live traces agree on which rounds a plan touched.
  static TraceEvent fault(Round k, std::uint8_t fault_kind,
                          ProcessId proc = kNoProcess,
                          ProcessId src = kNoProcess,
                          ProcessId dst = kNoProcess, int delay = 0) {
    TraceEvent e;
    e.kind = EventKind::kFaultInjected;
    e.round = k;
    e.rule = fault_kind;
    e.proc = proc;
    e.src = src;
    e.dst = dst;
    e.delay = delay;
    return e;
  }
};

/// Decide-rule tags (TraceEvent::rule). One namespace for all protocols;
/// the tag names the rule that fired, per the pseudocode comments in
/// src/consensus/.
namespace decide_rule {
inline constexpr std::uint8_t kNone = 0;
inline constexpr std::uint8_t kForwarded = 1;   ///< decide-1: saw a DECIDE
inline constexpr std::uint8_t kCommitQuorum = 2;///< decide-2/3: commit majority
inline constexpr std::uint8_t kPaxosLearn = 3;  ///< Paxos: learned from leader
inline constexpr std::uint8_t kPaxosChosen = 4; ///< Paxos leader: value chosen
inline constexpr std::uint8_t kSimulated = 5;   ///< via Algorithm 3 simulation
}  // namespace decide_rule

const char* decide_rule_name(std::uint8_t rule) noexcept;

}  // namespace timing

// Typed round-trace events: the structured record of WHY a run behaved
// the way it did, mirroring the quantities Section 5 measures. One event
// is one observable fact about a round — a message's fate on a link, the
// oracle's output at a process, which model predicates the round's
// communication matrix satisfied, a decision, a crash.
//
// The schema is deliberately flat (no nesting, fixed fields) so events
// serialize to one JSONL line each and compare bitwise for the
// determinism tests. Unused fields keep their sentinel defaults and are
// omitted from the JSONL encoding.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace timing {

/// Bumped whenever the JSONL encoding or event semantics change;
/// trace_tool refuses traces from a different major version.
inline constexpr int kTraceSchemaVersion = 1;

/// Number of timing models a PredicateEval event covers. Bit i of
/// TraceEvent::sat corresponds to model index i in the canonical order
/// ES, <>LM, <>WLM, <>AFM (matching models/timing_model.hpp and
/// harness/measurement.hpp's model_index). Kept as a local constant so
/// tm_obs stays below tm_models in the dependency order.
inline constexpr int kTraceNumModels = 4;

/// Canonical short names for the sat-mask bits, index = model index.
inline constexpr const char* kTraceModelNames[kTraceNumModels] = {
    "ES", "LM", "WLM", "AFM"};

/// Number of per-link model classes a granular PredicateEval event can
/// report conformance for (TraceEvent::csat). Bit c corresponds to class
/// index c in the canonical sync/psync/async order of
/// models/link_model_matrix.hpp (pinned by static_asserts there).
inline constexpr int kTraceNumLinkClasses = 3;

/// Canonical short names for the csat bits, index = class index.
inline constexpr const char* kTraceLinkClassNames[kTraceNumLinkClasses] = {
    "sync", "psync", "async"};

/// TraceEvent::csat sentinel: the round was evaluated homogeneously (no
/// per-link class information). Omitted from the JSONL encoding.
inline constexpr std::uint8_t kTraceNoClassSat = 0xff;

enum class EventKind : std::uint8_t {
  kRoundStart,    ///< round k began
  kRoundEnd,      ///< round k's compute phase finished
  kMsgSent,       ///< src dispatched its round-k message to dst
  kMsgTimely,     ///< the (src,dst) round-k message arrived within the round
  kMsgLate,       ///< ... arrived `delay` rounds after round k ended
  kMsgLost,       ///< ... never arrived (or was dropped by a transport)
  kOracleOutput,  ///< proc's oracle answered `leader` at end of round k
  kPredicateEval, ///< which model predicates round k's matrix satisfied
  kDecide,        ///< proc decided `value` in round k (rule = protocol tag)
  kCrash,         ///< proc stopped taking steps from round k on
  kFaultInjected, ///< a fault-plan event acted on round k (rule = FaultKind)
  kClientOp,      ///< client-visible SMR operation event ("round" = logical ts)
  kSpan,          ///< causal span begin/end/cause (obs/span.hpp)
  kMetricsSnapshot, ///< latency-histogram snapshot ("m"/"c"/percentiles)
};

/// Stable wire names (the "e" field of the JSONL encoding).
const char* to_string(EventKind k) noexcept;

struct TraceEvent {
  EventKind kind = EventKind::kRoundStart;
  Round round = 0;
  ProcessId src = kNoProcess;   ///< sender (Msg* events)
  ProcessId dst = kNoProcess;   ///< recipient (Msg* events)
  ProcessId proc = kNoProcess;  ///< subject process (oracle/decide/crash)
  ProcessId leader = kNoProcess;///< oracle output
  int delay = 0;                ///< MsgLate: rounds of extra delay
  std::uint8_t sat = 0;         ///< PredicateEval: bit per model
  std::uint8_t csat = kTraceNoClassSat; ///< PredicateEval (granular): bit per
                                ///< link class, all class links timely
  std::uint8_t rule = 0;        ///< Decide: protocol-specific rule tag
  Value value = kNoValue;       ///< Decide: value; ClientOp: observed result

  // Client-operation fields (EventKind::kClientOp only). For op events
  // `round` is a wall-free logical timestamp (strictly increasing per
  // trial) and `proc` is the CLIENT id — a separate id space from the
  // replica processes, so it is not bounded by the trace header's n.
  std::uint8_t op_phase = 0;    ///< op_phase:: value (invoke/ok/fail/info)
  std::uint8_t op_func = 0;     ///< op_func:: value (read/write/cas/append)
  std::int32_t op_key = -1;     ///< object key the operation targets
  long long op_id = -1;         ///< client-unique operation id
  Value arg = kNoValue;         ///< write value / cas expected / append value
  Value arg2 = kNoValue;        ///< cas replacement value

  // Span fields (kSpan / kMetricsSnapshot only; obs/span.hpp). For span
  // events `round` carries the engine round the span belongs to (0 for
  // round-free spans such as ops) and `span_parent` is the parent span
  // for begin events or the *cause* span for cause events. `t_ns` is a
  // monotonic timestamp relative to the trial's tracer epoch, -1 (and
  // omitted on the wire) in `ids` mode. For metrics snapshots the span
  // fields are repurposed per the table in obs/span.hpp.
  std::uint64_t span_id = 0;    ///< deterministic span id (never 0 on wire)
  std::uint64_t span_parent = 0;///< parent (begin) or cause (cause) span id
  long long t_ns = -1;          ///< monotonic ns since tracer epoch, -1 = none
  std::uint8_t span_kind = 0;   ///< span_kind:: value
  std::uint8_t span_phase = 0;  ///< span_phase:: value (begin/end/cause)

  bool operator==(const TraceEvent&) const = default;

  // Factories for the common shapes; keep call sites one line.
  static TraceEvent round_start(Round k) {
    TraceEvent e;
    e.kind = EventKind::kRoundStart;
    e.round = k;
    return e;
  }
  static TraceEvent round_end(Round k) {
    TraceEvent e;
    e.kind = EventKind::kRoundEnd;
    e.round = k;
    return e;
  }
  static TraceEvent msg(EventKind kind, Round k, ProcessId src, ProcessId dst,
                        int delay = 0) {
    TraceEvent e;
    e.kind = kind;
    e.round = k;
    e.src = src;
    e.dst = dst;
    e.delay = delay;
    return e;
  }
  static TraceEvent oracle(Round k, ProcessId proc, ProcessId leader) {
    TraceEvent e;
    e.kind = EventKind::kOracleOutput;
    e.round = k;
    e.proc = proc;
    e.leader = leader;
    return e;
  }
  static TraceEvent predicates(Round k, std::uint8_t sat_mask) {
    TraceEvent e;
    e.kind = EventKind::kPredicateEval;
    e.round = k;
    e.sat = sat_mask;
    return e;
  }
  /// Granular evaluation: like predicates(), plus the per-link-class
  /// conformance bits (csat != kTraceNoClassSat marks the round as
  /// evaluated against a LinkModelMatrix).
  static TraceEvent granular_predicates(Round k, std::uint8_t sat_mask,
                                        std::uint8_t class_sat) {
    TraceEvent e = predicates(k, sat_mask);
    e.csat = class_sat;
    return e;
  }
  static TraceEvent decide(Round k, ProcessId proc, Value v,
                           std::uint8_t rule) {
    TraceEvent e;
    e.kind = EventKind::kDecide;
    e.round = k;
    e.proc = proc;
    e.value = v;
    e.rule = rule;
    return e;
  }
  static TraceEvent crash(Round k, ProcessId proc) {
    TraceEvent e;
    e.kind = EventKind::kCrash;
    e.round = k;
    e.proc = proc;
    return e;
  }
  /// Fault injection acting on round k. `fault_kind` is the FaultKind of
  /// fault/plan.hpp (stored in `rule`); proc/src/dst/delay are filled per
  /// kind (crash/recover -> proc, drop/delay -> src,dst, delay -> extra
  /// rounds in `delay`). Emitted by both injection backends, so sim and
  /// live traces agree on which rounds a plan touched.
  /// Client-operation event. `ts` is a trial-local logical timestamp
  /// (strictly increasing across all op events of the trial); `client`
  /// is the client id; `result` is only meaningful for completion
  /// phases (ok carries the observed value, fail/info carry kNoValue).
  static TraceEvent op(Round ts, ProcessId client, std::uint8_t phase,
                       std::uint8_t func, std::int32_t key, long long id,
                       Value a = kNoValue, Value b = kNoValue,
                       Value result = kNoValue) {
    TraceEvent e;
    e.kind = EventKind::kClientOp;
    e.round = ts;
    e.proc = client;
    e.op_phase = phase;
    e.op_func = func;
    e.op_key = key;
    e.op_id = id;
    e.arg = a;
    e.arg2 = b;
    e.value = result;
    return e;
  }
  /// Span lifecycle event (obs/span.hpp). `phase` is a span_phase::
  /// value; for kBegin `parent` is the enclosing span (0 = root), for
  /// kCause it is the causally-preceding span (e.g. the message span
  /// whose arrival enabled this span's round). `t` is -1 in ids mode.
  static TraceEvent span(std::uint8_t phase, std::uint64_t id,
                         std::uint64_t parent, std::uint8_t kind,
                         Round k = 0, long long t = -1) {
    TraceEvent e;
    e.kind = EventKind::kSpan;
    e.round = k;
    e.span_id = id;
    e.span_parent = parent;
    e.span_kind = kind;
    e.span_phase = phase;
    e.t_ns = t;
    return e;
  }
  /// Latency-histogram snapshot: metric `metric_id` (index into
  /// kSpanMetricNames) observed `count` values with the given quantile
  /// representatives. `seq` keeps multiple snapshots of one trial
  /// ordered. Field reuse: op_key=metric, op_id=count, value=p50,
  /// arg=p90, arg2=p99, t_ns=p999, span_id=max.
  static TraceEvent metrics(Round seq, std::int32_t metric_id,
                            long long count, long long p50, long long p90,
                            long long p99, long long p999, long long max) {
    TraceEvent e;
    e.kind = EventKind::kMetricsSnapshot;
    e.round = seq;
    e.op_key = metric_id;
    e.op_id = count;
    e.value = static_cast<Value>(p50);
    e.arg = static_cast<Value>(p90);
    e.arg2 = static_cast<Value>(p99);
    e.t_ns = p999;
    e.span_id = static_cast<std::uint64_t>(max);
    return e;
  }
  static TraceEvent fault(Round k, std::uint8_t fault_kind,
                          ProcessId proc = kNoProcess,
                          ProcessId src = kNoProcess,
                          ProcessId dst = kNoProcess, int delay = 0) {
    TraceEvent e;
    e.kind = EventKind::kFaultInjected;
    e.round = k;
    e.rule = fault_kind;
    e.proc = proc;
    e.src = src;
    e.dst = dst;
    e.delay = delay;
    return e;
  }
};

/// Decide-rule tags (TraceEvent::rule). One namespace for all protocols;
/// the tag names the rule that fired, per the pseudocode comments in
/// src/consensus/.
namespace decide_rule {
inline constexpr std::uint8_t kNone = 0;
inline constexpr std::uint8_t kForwarded = 1;   ///< decide-1: saw a DECIDE
inline constexpr std::uint8_t kCommitQuorum = 2;///< decide-2/3: commit majority
inline constexpr std::uint8_t kPaxosLearn = 3;  ///< Paxos: learned from leader
inline constexpr std::uint8_t kPaxosChosen = 4; ///< Paxos leader: value chosen
inline constexpr std::uint8_t kSimulated = 5;   ///< via Algorithm 3 simulation
}  // namespace decide_rule

const char* decide_rule_name(std::uint8_t rule) noexcept;

/// Operation phases (TraceEvent::op_phase), following the Jepsen history
/// convention: ok = the op took effect, fail = it definitely did NOT,
/// info = unknown (timeout/crash) — concurrent with everything after it.
namespace op_phase {
inline constexpr std::uint8_t kInvoke = 0;
inline constexpr std::uint8_t kOk = 1;
inline constexpr std::uint8_t kFail = 2;
inline constexpr std::uint8_t kInfo = 3;
inline constexpr int kCount = 4;
}  // namespace op_phase

/// Operation functions (TraceEvent::op_func) over the register/append
/// object types of src/history/model.hpp.
namespace op_func {
inline constexpr std::uint8_t kRead = 0;
inline constexpr std::uint8_t kWrite = 1;
inline constexpr std::uint8_t kCas = 2;
inline constexpr std::uint8_t kAppend = 3;
inline constexpr int kCount = 4;
}  // namespace op_func

/// Stable wire names for op_phase / op_func (the "ph" and "f" JSONL
/// fields); nullptr on out-of-range input for the parser's error path.
const char* op_phase_name(std::uint8_t phase) noexcept;
const char* op_func_name(std::uint8_t func) noexcept;
bool op_phase_from_string(const char* s, std::uint8_t& out) noexcept;
bool op_func_from_string(const char* s, std::uint8_t& out) noexcept;

/// Span kinds (TraceEvent::span_kind): what stage of an operation's life
/// a span covers. Non-zero values only — the kind tag rides in the high
/// bits of every span id (obs/span.hpp), and id 0 means "no span".
namespace span_kind {
inline constexpr std::uint8_t kNone = 0;     ///< invalid on the wire
inline constexpr std::uint8_t kOp = 1;       ///< client op, invoke -> done
inline constexpr std::uint8_t kQueue = 2;    ///< invoke -> first proposal
inline constexpr std::uint8_t kCommit = 3;   ///< first proposal -> decided
inline constexpr std::uint8_t kApply = 4;    ///< decided log applied to SM
inline constexpr std::uint8_t kInstance = 5; ///< one consensus instance
inline constexpr std::uint8_t kRound = 6;    ///< one engine/roundsync round
inline constexpr std::uint8_t kMsg = 7;      ///< one framed envelope on a link
inline constexpr std::uint8_t kBatch = 8;    ///< ops pooled into one decree
inline constexpr std::uint8_t kSlot = 9;     ///< log slot, sealed -> committed
inline constexpr int kCount = 10;
}  // namespace span_kind

/// Span lifecycle phases (TraceEvent::span_phase).
namespace span_phase {
inline constexpr std::uint8_t kBegin = 0;
inline constexpr std::uint8_t kEnd = 1;
inline constexpr std::uint8_t kCause = 2;  ///< causality edge, no time
inline constexpr int kCount = 3;
}  // namespace span_phase

/// Stable wire names for span_kind / span_phase (the "sk" and "sph"
/// JSONL fields); nullptr on out-of-range input.
const char* span_kind_name(std::uint8_t kind) noexcept;
const char* span_phase_name(std::uint8_t phase) noexcept;
bool span_kind_from_string(const char* s, std::uint8_t& out) noexcept;
bool span_phase_from_string(const char* s, std::uint8_t& out) noexcept;

/// Latency metrics a kMetricsSnapshot line may carry (the "m" field);
/// TraceEvent::op_key holds the index into this table.
inline constexpr const char* kSpanMetricNames[] = {
    "op.commit_ns",  ///< invoke -> ok, per committed client op
    "op.queue_ns",   ///< invoke -> first proposal into an instance
};
inline constexpr int kSpanMetricCount = 2;

}  // namespace timing

// MetricsRegistry: named counters, running statistics and histograms with
// deterministic merging, plus wall-clock phase timers for profiling.
//
// Determinism contract (the same one common/parallel.hpp establishes):
// each trial owns a private registry, filled on whatever pool thread runs
// the trial; the harness then merges registries in trial-index order on
// the calling thread. Counters and histogram bins are integers (exactly
// associative); RunningStats merging in a fixed order is bit-reproducible
// for a fixed thread-count-independent fill order. Hence every counter,
// stat and histogram a sweep reports is identical for TIMING_THREADS=1
// and 8 — asserted in tests/obs_test.cpp.
//
// Phase timers are the one deliberate exception: they measure real
// wall-clock time (sample/step/compute phase profiling) and are kept in a
// separate namespace (`timers()`), excluded from the determinism
// guarantee. Merging still sums them exactly.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "common/stats.hpp"

namespace timing {

struct TimerTotal {
  long long ns = 0;     ///< accumulated wall-clock nanoseconds
  long long count = 0;  ///< number of timed intervals

  double ms() const noexcept { return static_cast<double>(ns) / 1e6; }
  bool operator==(const TimerTotal&) const = default;
};

class MetricsRegistry {
 public:
  /// Add `delta` to the named counter (created at 0 on first use).
  void inc(const std::string& name, long long delta = 1) {
    counters_[name] += delta;
  }
  /// Current value; 0 for unknown names.
  long long counter(const std::string& name) const noexcept;

  /// Observe a sample in the named running statistic.
  void observe(const std::string& name, double x) { stats_[name].add(x); }

  /// Get-or-create a histogram. The shape is fixed on first use; a
  /// mismatched re-request is a checked error. An unconfigured entry
  /// (possible only through merging a registry holding one) is adopted
  /// and configured rather than treated as a shape mismatch.
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t bins);

  /// Get-or-create a log-bucketed latency histogram (obs spans record
  /// nanoseconds here). Shapeless, so there is nothing to mismatch.
  LogHistogram& latency(const std::string& name) { return latencies_[name]; }
  /// Lookup without creating; nullptr for unknown names.
  const LogHistogram* find_latency(const std::string& name) const noexcept;

  /// Accumulate a timed interval into the named phase timer.
  void add_time(const std::string& phase, std::chrono::nanoseconds dt) {
    auto& t = timers_[phase];
    t.ns += dt.count();
    ++t.count;
  }

  /// Fold `other` into this registry. Deterministic when applied in a
  /// fixed order (names are iterated sorted; counters/histograms are
  /// exactly associative, RunningStats merges in call order).
  void merge(const MetricsRegistry& other);

  const std::map<std::string, long long>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, RunningStats>& stats() const noexcept {
    return stats_;
  }
  const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }
  const std::map<std::string, LogHistogram>& latencies() const noexcept {
    return latencies_;
  }
  const std::map<std::string, TimerTotal>& timers() const noexcept {
    return timers_;
  }

  bool empty() const noexcept {
    return counters_.empty() && stats_.empty() && histograms_.empty() &&
           latencies_.empty() && timers_.empty();
  }
  void clear() noexcept {
    counters_.clear();
    stats_.clear();
    histograms_.clear();
    latencies_.clear();
    timers_.clear();
  }

  /// Human-readable dump, sorted by name (bench/debug output).
  std::string to_string() const;

 private:
  std::map<std::string, long long> counters_;
  std::map<std::string, RunningStats> stats_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, LogHistogram> latencies_;
  std::map<std::string, TimerTotal> timers_;
};

/// RAII wall-clock phase timer; null registry disables it entirely.
class PhaseTimer {
 public:
  PhaseTimer(MetricsRegistry* reg, const char* phase) noexcept
      : reg_(reg), phase_(phase) {
    if (reg_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() {
    if (reg_ != nullptr) {
      reg_->add_time(phase_, std::chrono::steady_clock::now() - start_);
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  MetricsRegistry* reg_;
  const char* phase_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace timing

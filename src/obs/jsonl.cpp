#include "obs/jsonl.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace timing {

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kRoundStart: return "round_start";
    case EventKind::kRoundEnd: return "round_end";
    case EventKind::kMsgSent: return "sent";
    case EventKind::kMsgTimely: return "timely";
    case EventKind::kMsgLate: return "late";
    case EventKind::kMsgLost: return "lost";
    case EventKind::kOracleOutput: return "oracle";
    case EventKind::kPredicateEval: return "pred";
    case EventKind::kDecide: return "decide";
    case EventKind::kCrash: return "crash";
    case EventKind::kFaultInjected: return "fault";
    case EventKind::kClientOp: return "op";
    case EventKind::kSpan: return "span";
    case EventKind::kMetricsSnapshot: return "metrics";
  }
  return "unknown";
}

const char* span_kind_name(std::uint8_t kind) noexcept {
  switch (kind) {
    case span_kind::kOp: return "op";
    case span_kind::kQueue: return "queue";
    case span_kind::kCommit: return "commit";
    case span_kind::kApply: return "apply";
    case span_kind::kInstance: return "instance";
    case span_kind::kRound: return "round";
    case span_kind::kMsg: return "msg";
    case span_kind::kBatch: return "batch";
    case span_kind::kSlot: return "slot";
  }
  return nullptr;  // kNone and out-of-range: invalid on the wire
}

const char* span_phase_name(std::uint8_t phase) noexcept {
  switch (phase) {
    case span_phase::kBegin: return "begin";
    case span_phase::kEnd: return "end";
    case span_phase::kCause: return "cause";
  }
  return nullptr;
}

bool span_kind_from_string(const char* s, std::uint8_t& out) noexcept {
  for (std::uint8_t k = 1; k < span_kind::kCount; ++k) {
    if (std::string(span_kind_name(k)) == s) {
      out = k;
      return true;
    }
  }
  return false;
}

bool span_phase_from_string(const char* s, std::uint8_t& out) noexcept {
  for (std::uint8_t p = 0; p < span_phase::kCount; ++p) {
    if (std::string(span_phase_name(p)) == s) {
      out = p;
      return true;
    }
  }
  return false;
}

const char* op_phase_name(std::uint8_t phase) noexcept {
  switch (phase) {
    case op_phase::kInvoke: return "invoke";
    case op_phase::kOk: return "ok";
    case op_phase::kFail: return "fail";
    case op_phase::kInfo: return "info";
  }
  return nullptr;
}

const char* op_func_name(std::uint8_t func) noexcept {
  switch (func) {
    case op_func::kRead: return "read";
    case op_func::kWrite: return "write";
    case op_func::kCas: return "cas";
    case op_func::kAppend: return "append";
  }
  return nullptr;
}

bool op_phase_from_string(const char* s, std::uint8_t& out) noexcept {
  for (std::uint8_t p = 0; p < op_phase::kCount; ++p) {
    if (std::string(op_phase_name(p)) == s) {
      out = p;
      return true;
    }
  }
  return false;
}

bool op_func_from_string(const char* s, std::uint8_t& out) noexcept {
  for (std::uint8_t f = 0; f < op_func::kCount; ++f) {
    if (std::string(op_func_name(f)) == s) {
      out = f;
      return true;
    }
  }
  return false;
}

const char* decide_rule_name(std::uint8_t rule) noexcept {
  switch (rule) {
    case decide_rule::kForwarded: return "decide-forwarded";
    case decide_rule::kCommitQuorum: return "decide-commit-quorum";
    case decide_rule::kPaxosLearn: return "paxos-learn";
    case decide_rule::kPaxosChosen: return "paxos-chosen";
    case decide_rule::kSimulated: return "simulated-lm";
    default: return "none";
  }
}

namespace {

void append_field(std::string& s, const char* key, long long v) {
  s += ",\"";
  s += key;
  s += "\":";
  s += std::to_string(v);
}

void append_str_field(std::string& s, const char* key, const char* v) {
  s += ",\"";
  s += key;
  s += "\":\"";
  s += v;
  s += "\"";
}

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  throw std::runtime_error("trace line " + std::to_string(line_no) + ": " +
                           why);
}

/// Extract an integer field `"key":<int>` from a flat one-line JSON
/// object. Returns nullopt when absent.
std::optional<long long> find_int(const std::string& line,
                                  const std::string& key, std::size_t line_no) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(start, &end, 10);
  if (end == start || errno != 0) fail(line_no, "bad integer for '" + key + "'");
  return v;
}

long long require_int(const std::string& line, const std::string& key,
                      std::size_t line_no) {
  const auto v = find_int(line, key, line_no);
  if (!v) fail(line_no, "missing field '" + key + "'");
  return *v;
}

/// Extract a string field `"key":"<value>"`.
std::optional<std::string> find_str(const std::string& line,
                                    const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const auto start = pos + needle.size();
  const auto close = line.find('"', start);
  if (close == std::string::npos) return std::nullopt;
  return line.substr(start, close - start);
}

std::optional<EventKind> kind_from_string(const std::string& s) {
  for (int k = 0; k <= static_cast<int>(EventKind::kMetricsSnapshot); ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (s == to_string(kind)) return kind;
  }
  return std::nullopt;
}

ProcessId check_pid(long long v, int n, const char* what,
                    std::size_t line_no) {
  if (v < 0 || v >= n) fail(line_no, std::string(what) + " out of range");
  return static_cast<ProcessId>(v);
}

}  // namespace

std::string to_jsonl(const TraceEvent& e) {
  std::string s = "{\"e\":\"";
  s += to_string(e.kind);
  s += "\"";
  append_field(s, "k", e.round);
  switch (e.kind) {
    case EventKind::kRoundStart:
    case EventKind::kRoundEnd:
      break;
    case EventKind::kMsgSent:
    case EventKind::kMsgTimely:
    case EventKind::kMsgLost:
      append_field(s, "s", e.src);
      append_field(s, "d", e.dst);
      break;
    case EventKind::kMsgLate:
      append_field(s, "s", e.src);
      append_field(s, "d", e.dst);
      append_field(s, "delay", e.delay);
      break;
    case EventKind::kOracleOutput:
      append_field(s, "p", e.proc);
      append_field(s, "ld", e.leader);
      break;
    case EventKind::kPredicateEval:
      append_field(s, "sat", e.sat);
      // Granular evaluations carry the per-link-class conformance bits;
      // homogeneous ones keep the sentinel and omit the field.
      if (e.csat != kTraceNoClassSat) append_field(s, "csat", e.csat);
      break;
    case EventKind::kDecide:
      append_field(s, "p", e.proc);
      append_field(s, "v", e.value);
      append_field(s, "rule", e.rule);
      break;
    case EventKind::kCrash:
      append_field(s, "p", e.proc);
      break;
    case EventKind::kFaultInjected:
      // "fk" is the FaultKind of fault/plan.hpp; the subject fields are
      // per kind and omitted at their sentinel (kNoProcess / 0) so the
      // encoding stays injective under the sentinel-default round-trip.
      append_field(s, "fk", e.rule);
      if (e.proc != kNoProcess) append_field(s, "p", e.proc);
      if (e.src != kNoProcess) append_field(s, "s", e.src);
      if (e.dst != kNoProcess) append_field(s, "d", e.dst);
      if (e.delay != 0) append_field(s, "delay", e.delay);
      break;
    case EventKind::kClientOp:
      // "k" above is the logical timestamp; "p" is the CLIENT id (its
      // own id space, deliberately not bounded by the header's n).
      // ph/f are strings so hand-written fixture histories read well;
      // args and result are omitted at the kNoValue sentinel.
      append_field(s, "p", e.proc);
      append_str_field(s, "ph", op_phase_name(e.op_phase));
      append_str_field(s, "f", op_func_name(e.op_func));
      append_field(s, "key", e.op_key);
      append_field(s, "id", e.op_id);
      if (e.arg != kNoValue) append_field(s, "a", e.arg);
      if (e.arg2 != kNoValue) append_field(s, "b", e.arg2);
      if (e.value != kNoValue) append_field(s, "v", e.value);
      break;
    case EventKind::kSpan: {
      // "k" above is the round the span belongs to (0 = round-free).
      // "pa" is omitted at 0 (root) and "t" below 0 (ids mode), keeping
      // the sentinel-default round-trip injective.
      append_field(s, "sp", static_cast<long long>(e.span_id));
      const char* sk = span_kind_name(e.span_kind);
      append_str_field(s, "sk", sk != nullptr ? sk : "unknown");
      const char* sph = span_phase_name(e.span_phase);
      append_str_field(s, "sph", sph != nullptr ? sph : "unknown");
      if (e.span_parent != 0) {
        append_field(s, "pa", static_cast<long long>(e.span_parent));
      }
      if (e.t_ns >= 0) append_field(s, "t", e.t_ns);
      break;
    }
    case EventKind::kMetricsSnapshot: {
      // "k" above is the snapshot sequence number. Quantiles are the
      // LogHistogram's deterministic bucket representatives, always
      // written (0 is a legal value, not a sentinel).
      const char* m = (e.op_key >= 0 && e.op_key < kSpanMetricCount)
                          ? kSpanMetricNames[e.op_key]
                          : "unknown";
      append_str_field(s, "m", m);
      append_field(s, "c", e.op_id);
      append_field(s, "p50", e.value);
      append_field(s, "p90", e.arg);
      append_field(s, "p99", e.arg2);
      append_field(s, "p999", e.t_ns);
      append_field(s, "max", static_cast<long long>(e.span_id));
      break;
    }
  }
  s += "}";
  return s;
}

void write_trace_header(std::ostream& out, int n) {
  out << "{\"schema\":\"timing-trace\",\"v\":" << kTraceSchemaVersion
      << ",\"n\":" << n << "}\n";
}

void write_trial(std::ostream& out, int trial_id,
                 const std::vector<TraceEvent>& events, int n) {
  out << "{\"e\":\"trial\",\"id\":" << trial_id;
  if (n > 0) out << ",\"n\":" << n;
  out << "}\n";
  for (const TraceEvent& e : events) out << to_jsonl(e) << "\n";
}

namespace {
/// Per-trial span lifecycle state for the structural checks below.
enum class SpanState : std::uint8_t { kBegun = 1, kEnded = 2 };
}  // namespace

ParsedTrace parse_trace(std::istream& in) {
  ParsedTrace trace;
  bool have_header = false;
  std::string line;
  std::size_t line_no = 0;
  // Span lifecycle per trial: every span id may begin once and end once,
  // and may not end before it begins. Reset at each trial marker.
  std::map<std::uint64_t, SpanState> span_state;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (line.front() != '{' || line.back() != '}') {
      fail(line_no, "not a JSON object");
    }

    if (const auto schema = find_str(line, "schema")) {
      if (*schema != "timing-trace") fail(line_no, "unknown schema");
      if (have_header) fail(line_no, "duplicate header");
      const long long v = require_int(line, "v", line_no);
      if (v != kTraceSchemaVersion) {
        fail(line_no, "unsupported schema version " + std::to_string(v));
      }
      const long long n = require_int(line, "n", line_no);
      if (n < 2 || n > 100000) fail(line_no, "implausible n");
      trace.version = static_cast<int>(v);
      trace.n = static_cast<int>(n);
      have_header = true;
      continue;
    }
    if (!have_header) fail(line_no, "event before header");

    const auto name = find_str(line, "e");
    if (!name) fail(line_no, "missing event name");
    if (*name == "trial") {
      TrialTrace t;
      t.id = static_cast<int>(require_int(line, "id", line_no));
      if (const auto tn = find_int(line, "n", line_no)) {
        if (*tn < 2 || *tn > trace.n) {
          fail(line_no, "per-trial n out of range");
        }
        t.n = static_cast<int>(*tn);
      }
      trace.trials.push_back(std::move(t));
      span_state.clear();
      continue;
    }
    const auto kind = kind_from_string(*name);
    if (!kind) fail(line_no, "unknown event '" + *name + "'");
    if (trace.trials.empty()) fail(line_no, "event before first trial marker");
    const int cur_n =
        trace.trials.back().n > 0 ? trace.trials.back().n : trace.n;

    TraceEvent e;
    e.kind = *kind;
    e.round = static_cast<Round>(require_int(line, "k", line_no));
    if (e.round < 0) fail(line_no, "negative round");
    switch (*kind) {
      case EventKind::kRoundStart:
      case EventKind::kRoundEnd:
        break;
      case EventKind::kMsgSent:
      case EventKind::kMsgTimely:
      case EventKind::kMsgLost:
        e.src = check_pid(require_int(line, "s", line_no), cur_n, "src",
                          line_no);
        e.dst = check_pid(require_int(line, "d", line_no), cur_n, "dst",
                          line_no);
        break;
      case EventKind::kMsgLate:
        e.src = check_pid(require_int(line, "s", line_no), cur_n, "src",
                          line_no);
        e.dst = check_pid(require_int(line, "d", line_no), cur_n, "dst",
                          line_no);
        e.delay = static_cast<int>(require_int(line, "delay", line_no));
        if (e.delay < 1) fail(line_no, "late delay must be >= 1");
        break;
      case EventKind::kOracleOutput:
        e.proc = check_pid(require_int(line, "p", line_no), cur_n, "proc",
                           line_no);
        e.leader = check_pid(require_int(line, "ld", line_no), cur_n,
                             "leader", line_no);
        break;
      case EventKind::kPredicateEval: {
        const long long sat = require_int(line, "sat", line_no);
        if (sat < 0 || sat >= (1 << kTraceNumModels)) {
          fail(line_no, "sat mask out of range");
        }
        e.sat = static_cast<std::uint8_t>(sat);
        if (const auto csat = find_int(line, "csat", line_no)) {
          if (*csat < 0 || *csat >= (1 << kTraceNumLinkClasses)) {
            fail(line_no, "csat mask out of range");
          }
          e.csat = static_cast<std::uint8_t>(*csat);
        }
        break;
      }
      case EventKind::kDecide: {
        e.proc = check_pid(require_int(line, "p", line_no), cur_n, "proc",
                           line_no);
        e.value = require_int(line, "v", line_no);
        const long long rule = require_int(line, "rule", line_no);
        if (rule < 0 || rule > 255) fail(line_no, "rule out of range");
        e.rule = static_cast<std::uint8_t>(rule);
        break;
      }
      case EventKind::kCrash:
        e.proc = check_pid(require_int(line, "p", line_no), cur_n, "proc",
                           line_no);
        break;
      case EventKind::kFaultInjected: {
        const long long fk = require_int(line, "fk", line_no);
        if (fk < 1 || fk > 255) fail(line_no, "fault kind out of range");
        e.rule = static_cast<std::uint8_t>(fk);
        if (const auto p = find_int(line, "p", line_no)) {
          e.proc = check_pid(*p, cur_n, "proc", line_no);
        }
        if (const auto s_ = find_int(line, "s", line_no)) {
          e.src = check_pid(*s_, cur_n, "src", line_no);
        }
        if (const auto d = find_int(line, "d", line_no)) {
          e.dst = check_pid(*d, cur_n, "dst", line_no);
        }
        if (const auto dl = find_int(line, "delay", line_no)) {
          if (*dl < 1) fail(line_no, "fault delay must be >= 1");
          e.delay = static_cast<int>(*dl);
        }
        break;
      }
      case EventKind::kClientOp: {
        // Clients live in their own id space (>= 0, not bounded by n).
        const long long client = require_int(line, "p", line_no);
        if (client < 0) fail(line_no, "negative client id");
        e.proc = static_cast<ProcessId>(client);
        const auto ph = find_str(line, "ph");
        if (!ph || !op_phase_from_string(ph->c_str(), e.op_phase)) {
          fail(line_no, "bad or missing op phase 'ph'");
        }
        const auto f = find_str(line, "f");
        if (!f || !op_func_from_string(f->c_str(), e.op_func)) {
          fail(line_no, "bad or missing op function 'f'");
        }
        const long long key = require_int(line, "key", line_no);
        if (key < 0) fail(line_no, "negative op key");
        e.op_key = static_cast<std::int32_t>(key);
        e.op_id = require_int(line, "id", line_no);
        if (e.op_id < 0) fail(line_no, "negative op id");
        if (const auto a = find_int(line, "a", line_no)) e.arg = *a;
        if (const auto b = find_int(line, "b", line_no)) e.arg2 = *b;
        if (const auto v = find_int(line, "v", line_no)) e.value = *v;
        break;
      }
      case EventKind::kSpan: {
        const long long sp = require_int(line, "sp", line_no);
        if (sp <= 0) fail(line_no, "span id must be positive");
        e.span_id = static_cast<std::uint64_t>(sp);
        const auto sk = find_str(line, "sk");
        if (!sk || !span_kind_from_string(sk->c_str(), e.span_kind)) {
          fail(line_no, "bad or missing span kind 'sk'");
        }
        const auto sph = find_str(line, "sph");
        if (!sph || !span_phase_from_string(sph->c_str(), e.span_phase)) {
          fail(line_no, "bad or missing span phase 'sph'");
        }
        if (const auto pa = find_int(line, "pa", line_no)) {
          if (*pa <= 0) fail(line_no, "span parent must be positive");
          e.span_parent = static_cast<std::uint64_t>(*pa);
        }
        if (const auto t = find_int(line, "t", line_no)) {
          if (*t < 0) fail(line_no, "negative span timestamp");
          e.t_ns = *t;
        }
        if (e.span_phase == span_phase::kCause && e.span_parent == 0) {
          fail(line_no, "cause edge without 'pa'");
        }
        // Lifecycle checks, line-accurate: a span begins at most once,
        // ends at most once, and never ends before it begins.
        if (e.span_phase == span_phase::kBegin) {
          if (!span_state.try_emplace(e.span_id, SpanState::kBegun).second) {
            fail(line_no,
                 "duplicate span begin for id " + std::to_string(sp));
          }
        } else if (e.span_phase == span_phase::kEnd) {
          const auto it = span_state.find(e.span_id);
          if (it == span_state.end()) {
            fail(line_no,
                 "span end before begin for id " + std::to_string(sp));
          }
          if (it->second == SpanState::kEnded) {
            fail(line_no, "duplicate span end for id " + std::to_string(sp));
          }
          it->second = SpanState::kEnded;
        }
        break;
      }
      case EventKind::kMetricsSnapshot: {
        const auto m = find_str(line, "m");
        int metric = -1;
        if (m) {
          for (int i = 0; i < kSpanMetricCount; ++i) {
            if (*m == kSpanMetricNames[i]) metric = i;
          }
        }
        if (metric < 0) fail(line_no, "bad or missing metric name 'm'");
        e.op_key = metric;
        e.op_id = require_int(line, "c", line_no);
        if (e.op_id < 1) fail(line_no, "metrics count must be >= 1");
        const long long p50 = require_int(line, "p50", line_no);
        const long long p90 = require_int(line, "p90", line_no);
        const long long p99 = require_int(line, "p99", line_no);
        const long long p999 = require_int(line, "p999", line_no);
        const long long mx = require_int(line, "max", line_no);
        if (p50 < 0 || p90 < 0 || p99 < 0 || p999 < 0 || mx < 0) {
          fail(line_no, "negative metrics quantile");
        }
        if (p50 > p90 || p90 > p99 || p99 > p999 || p999 > mx) {
          fail(line_no, "metrics quantiles not monotone");
        }
        e.value = p50;
        e.arg = p90;
        e.arg2 = p99;
        e.t_ns = p999;
        e.span_id = static_cast<std::uint64_t>(mx);
        break;
      }
    }
    trace.trials.back().events.push_back(e);
  }
  if (!have_header) throw std::runtime_error("trace: missing header line");
  if (trace.trials.empty()) throw std::runtime_error("trace: no trials");
  return trace;
}

ParsedTrace parse_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return parse_trace(in);
}

}  // namespace timing

#include "obs/span_analysis.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "obs/span.hpp"

namespace timing {

const SpanRecord* SpanIndex::find(std::uint64_t id) const noexcept {
  const auto it = spans.find(id);
  return it == spans.end() ? nullptr : &it->second;
}

SpanIndex index_spans(const TrialTrace& trial) {
  SpanIndex out;
  auto record_of = [&out](std::uint64_t id) -> SpanRecord& {
    auto [it, fresh] = out.spans.try_emplace(id);
    if (fresh) {
      it->second.id = id;
      out.order.push_back(id);
    }
    return it->second;
  };
  for (const TraceEvent& e : trial.events) {
    if (e.kind != EventKind::kSpan) continue;
    SpanRecord& r = record_of(e.span_id);
    r.kind = e.span_kind;
    if (e.t_ns >= 0) out.timed = true;
    switch (e.span_phase) {
      case span_phase::kBegin:
        r.begun = true;
        r.parent = e.span_parent;
        r.round = e.round;
        r.t_begin = e.t_ns;
        break;
      case span_phase::kEnd:
        r.ended = true;
        r.t_end = e.t_ns;
        break;
      case span_phase::kCause:
        r.causes.push_back(e.span_parent);
        break;
      default:
        break;
    }
  }
  for (const std::uint64_t id : out.order) {
    const std::uint64_t parent = out.spans.at(id).parent;
    const auto pit = parent != 0 ? out.spans.find(parent) : out.spans.end();
    if (pit != out.spans.end()) {
      pit->second.children.push_back(id);
    } else {
      // Root, or the parent is not in this trial (cross-node edge on
      // the live path) — either way it renders as a root.
      out.roots.push_back(id);
    }
  }
  return out;
}

SpanIdParts split_span_id(std::uint64_t id) noexcept {
  SpanIdParts p;
  p.kind = static_cast<std::uint8_t>((id >> 59) & 0xFULL);
  p.a = (id >> 32) & 0x7FFFFFFULL;
  p.b = (id >> 16) & 0xFFFFULL;
  p.c = id & 0xFFFFULL;
  return p;
}

std::string span_label(std::uint64_t id) {
  const SpanIdParts p = split_span_id(id);
  std::ostringstream s;
  switch (p.kind) {
    case span_kind::kOp:
      s << "op(c=" << p.a << ",rid=" << p.b << ")";
      break;
    case span_kind::kQueue:
      s << "queue(c=" << p.a << ",rid=" << p.b << ")";
      break;
    case span_kind::kCommit:
      s << "commit(c=" << p.a << ",rid=" << p.b << ")";
      break;
    case span_kind::kApply:
      s << "apply(inst=" << p.a << ")";
      break;
    case span_kind::kInstance:
      s << "instance(" << p.a << ")";
      break;
    case span_kind::kRound:
      s << "round(k=" << p.a << ",at=" << p.b << ")";
      break;
    case span_kind::kMsg:
      s << "msg(k=" << p.a << "," << p.b << "->" << p.c << ")";
      break;
    case span_kind::kBatch:
      s << "batch(slot=" << p.a << ")";
      break;
    case span_kind::kSlot:
      s << "slot(" << p.a << ")";
      break;
    default:
      s << "span(0x" << std::hex << id << ")";
      break;
  }
  return s.str();
}

SpanLatencies rebuild_latencies(const TrialTrace& trial) {
  SpanLatencies out;
  const SpanIndex idx = index_spans(trial);
  if (!idx.timed) return out;
  // The set of (client, rid) pairs that completed ok: exactly the ops
  // the harness records op.commit_ns for.
  std::set<std::uint64_t> ok_ops;
  for (const TraceEvent& e : trial.events) {
    if (e.kind == EventKind::kClientOp && e.op_phase == op_phase::kOk) {
      ok_ops.insert(make_span_id(span_kind::kOp,
                                 static_cast<std::uint64_t>(e.proc),
                                 static_cast<std::uint64_t>(e.op_id)));
    }
  }
  for (const std::uint64_t id : idx.order) {
    const SpanRecord& r = idx.spans.at(id);
    if (!r.complete() || r.duration() < 0) continue;
    if (r.kind == span_kind::kOp && ok_ops.count(id) != 0) {
      out.commit.record(r.duration());
    } else if (r.kind == span_kind::kQueue) {
      out.queue.record(r.duration());
    }
  }
  return out;
}

LatencyRow latency_row(const LogHistogram& h) noexcept {
  LatencyRow r;
  r.count = static_cast<long long>(h.count());
  r.p50 = h.quantile(0.50);
  r.p90 = h.quantile(0.90);
  r.p99 = h.quantile(0.99);
  r.p999 = h.quantile(0.999);
  r.max = h.max();
  return r;
}

std::map<int, LatencyRow> snapshot_rows(const TrialTrace& trial) {
  std::map<int, LatencyRow> out;
  for (const TraceEvent& e : trial.events) {
    if (e.kind != EventKind::kMetricsSnapshot) continue;
    LatencyRow r;
    r.count = e.op_id;
    r.p50 = e.value;
    r.p90 = e.arg;
    r.p99 = e.arg2;
    r.p999 = e.t_ns;
    r.max = static_cast<long long>(e.span_id);
    out[e.op_key] = r;  // later snapshots of one metric supersede
  }
  return out;
}

namespace {

void render_subtree(const SpanIndex& idx, std::uint64_t id, int depth,
                    std::ostringstream& out) {
  const SpanRecord& r = idx.spans.at(id);
  for (int i = 0; i < depth; ++i) out << "  ";
  out << span_label(id);
  if (r.round > 0) out << " k=" << r.round;
  if (r.duration() >= 0) {
    out << " dur=" << r.duration() << "ns";
  } else if (!r.complete()) {
    out << (r.begun ? " [open]" : " [no-begin]");
  }
  if (!r.causes.empty()) {
    out << " <-";
    for (const std::uint64_t c : r.causes) out << " " << span_label(c);
  }
  out << "\n";
  for (const std::uint64_t child : r.children) {
    render_subtree(idx, child, depth + 1, out);
  }
}

/// Number of spans reachable through child edges (ids-mode chain
/// weight); visited guard against malformed inputs.
std::size_t subtree_size(const SpanIndex& idx, std::uint64_t id,
                         std::set<std::uint64_t>& visited) {
  if (!visited.insert(id).second) return 0;
  const SpanRecord* r = idx.find(id);
  if (r == nullptr) return 0;
  std::size_t total = 1;
  for (const std::uint64_t child : r->children) {
    total += subtree_size(idx, child, visited);
  }
  return total;
}

/// Greedy longest causal chain: from `id`, repeatedly descend into the
/// child or cause with the largest duration (timed) or largest subtree
/// (ids mode).
std::vector<std::uint64_t> causal_chain(const SpanIndex& idx,
                                        std::uint64_t id) {
  std::vector<std::uint64_t> chain;
  std::set<std::uint64_t> visited;
  std::uint64_t cur = id;
  while (visited.insert(cur).second) {
    chain.push_back(cur);
    const SpanRecord* r = idx.find(cur);
    if (r == nullptr) break;
    std::uint64_t best = 0;
    long long best_weight = -1;
    auto consider = [&](std::uint64_t cand) {
      if (cand == 0 || visited.count(cand) != 0) return;
      const SpanRecord* cr = idx.find(cand);
      if (cr == nullptr) return;
      long long w;
      if (idx.timed) {
        w = cr->duration() >= 0 ? cr->duration() : 0;
      } else {
        std::set<std::uint64_t> scratch = visited;
        w = static_cast<long long>(subtree_size(idx, cand, scratch));
      }
      if (w > best_weight) {
        best_weight = w;
        best = cand;
      }
    };
    for (const std::uint64_t child : r->children) consider(child);
    for (const std::uint64_t cause : r->causes) consider(cause);
    if (best == 0) break;
    cur = best;
  }
  return chain;
}

}  // namespace

std::string render_span_trees(const TrialTrace& trial, int max_roots) {
  const SpanIndex idx = index_spans(trial);
  std::ostringstream out;
  if (idx.spans.empty()) {
    out << "(no spans)\n";
    return out.str();
  }
  int shown = 0;
  for (const std::uint64_t root : idx.roots) {
    if (max_roots > 0 && shown >= max_roots) {
      out << "... (" << idx.roots.size() - static_cast<std::size_t>(shown)
          << " more roots)\n";
      break;
    }
    render_subtree(idx, root, 0, out);
    ++shown;
  }
  return out.str();
}

std::string render_critpath(const TrialTrace& trial, int top) {
  const SpanIndex idx = index_spans(trial);
  std::ostringstream out;
  if (idx.spans.empty()) {
    out << "(no spans)\n";
    return out.str();
  }

  // Per-kind duration/count table.
  LogHistogram per_kind[span_kind::kCount];
  long long kind_count[span_kind::kCount] = {};
  for (const std::uint64_t id : idx.order) {
    const SpanRecord& r = idx.spans.at(id);
    if (r.kind >= span_kind::kCount) continue;
    ++kind_count[r.kind];
    if (r.duration() >= 0) per_kind[r.kind].record(r.duration());
  }
  out << "phase        count    p50(ns)    p99(ns)    max(ns)\n";
  for (int k = 1; k < span_kind::kCount; ++k) {
    if (kind_count[k] == 0) continue;
    out << span_kind_name(static_cast<std::uint8_t>(k));
    for (std::size_t pad = std::string(span_kind_name(
             static_cast<std::uint8_t>(k))).size();
         pad < 13; ++pad) {
      out << " ";
    }
    out << kind_count[k];
    if (per_kind[k].count() > 0) {
      out << "  " << per_kind[k].quantile(0.50) << "  "
          << per_kind[k].quantile(0.99) << "  " << per_kind[k].max();
    } else {
      out << "  (untimed)";
    }
    out << "\n";
  }

  // The longest causal chain of the `top` slowest ops (all ops in ids
  // mode, where there is no duration to rank by — then first-seen
  // order, which is deterministic).
  std::vector<std::uint64_t> ops;
  for (const std::uint64_t id : idx.order) {
    if (idx.spans.at(id).kind == span_kind::kOp) ops.push_back(id);
  }
  if (idx.timed) {
    std::stable_sort(ops.begin(), ops.end(),
                     [&idx](std::uint64_t a, std::uint64_t b) {
                       return idx.spans.at(a).duration() >
                              idx.spans.at(b).duration();
                     });
  }
  if (top > 0 && static_cast<std::size_t>(top) < ops.size()) {
    ops.resize(static_cast<std::size_t>(top));
  }
  for (const std::uint64_t op : ops) {
    const std::vector<std::uint64_t> chain = causal_chain(idx, op);
    out << "critpath";
    if (idx.spans.at(op).duration() >= 0) {
      out << " (" << idx.spans.at(op).duration() << "ns)";
    }
    out << ":";
    for (const std::uint64_t id : chain) out << " " << span_label(id);
    out << "\n";
  }

  // The line the online harness must agree with (tests assert this).
  const SpanLatencies lat = rebuild_latencies(trial);
  if (lat.commit.count() > 0) {
    const LatencyRow r = latency_row(lat.commit);
    out << "op.commit_ns: n=" << r.count << " p50=" << r.p50
        << " p90=" << r.p90 << " p99=" << r.p99 << " p999=" << r.p999
        << " max=" << r.max << "\n";
  }
  return out.str();
}

}  // namespace timing

// Offline span analysis: rebuilds, from a recorded JSONL trace alone,
// the causal span trees, the per-commit critical path, and the latency
// histograms the online harness reported. The latency rebuild follows
// the client harness's recording rule exactly — op.commit_ns from op
// spans whose (client, rid) has an ok completion among the trial's op
// events, op.queue_ns from every completed queue span — and feeds the
// same recorded timestamps into the same LogHistogram, so the offline
// percentiles are *equal* to the online ones, not estimates
// (asserted in tests/obs_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/jsonl.hpp"

namespace timing {

/// One span reassembled from its begin/end/cause lines.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root
  std::uint8_t kind = 0;     ///< span_kind:: value
  Round round = 0;
  long long t_begin = -1;
  long long t_end = -1;
  bool begun = false;
  bool ended = false;
  std::vector<std::uint64_t> children;  ///< spans naming this as parent
  std::vector<std::uint64_t> causes;    ///< spans that happened-before this

  bool complete() const noexcept { return begun && ended; }
  /// Duration in ns; -1 when untimed or incomplete.
  long long duration() const noexcept {
    return (t_begin >= 0 && t_end >= t_begin) ? t_end - t_begin : -1;
  }
};

/// All spans of one trial, in first-appearance order.
struct SpanIndex {
  std::map<std::uint64_t, SpanRecord> spans;
  std::vector<std::uint64_t> order;  ///< first-appearance order
  std::vector<std::uint64_t> roots;  ///< parent == 0, first-appearance order
  bool timed = false;                ///< any event carried a timestamp

  const SpanRecord* find(std::uint64_t id) const noexcept;
};

SpanIndex index_spans(const TrialTrace& trial);

/// Decode the coordinates make_span_id packed (obs/span.hpp).
struct SpanIdParts {
  std::uint8_t kind = 0;
  std::uint64_t a = 0, b = 0, c = 0;
};
SpanIdParts split_span_id(std::uint64_t id) noexcept;

/// Human label for a span id, e.g. "op(c=1,rid=2)" or "msg(k=3,0->2)".
std::string span_label(std::uint64_t id);

/// The latency histograms the online harness records (kSpanMetricNames
/// order: op.commit_ns, op.queue_ns), rebuilt from the trial's span and
/// op events.
struct SpanLatencies {
  LogHistogram commit;  ///< op.commit_ns
  LogHistogram queue;   ///< op.queue_ns

  void merge(const SpanLatencies& other) {
    commit.merge(other.commit);
    queue.merge(other.queue);
  }
};
SpanLatencies rebuild_latencies(const TrialTrace& trial);

/// The (count, p50, p90, p99, p999, max) row a metrics snapshot line
/// carries / a LogHistogram reports; the comparison unit for the
/// online-equals-offline check.
struct LatencyRow {
  long long count = 0;
  long long p50 = 0, p90 = 0, p99 = 0, p999 = 0, max = 0;

  bool operator==(const LatencyRow&) const = default;
};
LatencyRow latency_row(const LogHistogram& h) noexcept;

/// The snapshot rows recorded in the trial (metric -> row); empty when
/// the trace carries no "e":"metrics" lines.
std::map<int, LatencyRow> snapshot_rows(const TrialTrace& trial);

/// Per-op span trees ("trace_tool spans"): each root span rendered with
/// its children indented, durations when timed, cause edges inline.
/// At most `max_roots` roots (0 = all).
std::string render_span_trees(const TrialTrace& trial, int max_roots);

/// Critical-path report ("trace_tool critpath"): per-kind duration
/// table, the longest causal chain of the `top` slowest ops, and the
/// op.commit_ns percentile line that must match the online harness.
std::string render_critpath(const TrialTrace& trial, int top);

}  // namespace timing

#include "obs/span.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"

namespace timing {

const char* to_string(SpanMode m) noexcept {
  switch (m) {
    case SpanMode::kOff: return "off";
    case SpanMode::kIds: return "ids";
    case SpanMode::kTimed: return "timed";
  }
  return "off";
}

bool span_mode_from_string(const char* s, SpanMode& out) noexcept {
  if (s == nullptr) return false;
  if (std::strcmp(s, "off") == 0) { out = SpanMode::kOff; return true; }
  if (std::strcmp(s, "ids") == 0) { out = SpanMode::kIds; return true; }
  if (std::strcmp(s, "timed") == 0) { out = SpanMode::kTimed; return true; }
  return false;
}

SpanMode span_mode_from_env() {
  const char* v = std::getenv("TIMING_SPANS");
  if (v == nullptr || *v == '\0') return SpanMode::kOff;
  SpanMode m = SpanMode::kOff;
  if (!span_mode_from_string(v, m)) {
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "timing: ignoring invalid TIMING_SPANS=%s "
                   "(want off|ids|timed)\n",
                   v);
    }
    return SpanMode::kOff;
  }
  return m;
}

namespace {
long long steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

SpanTracer::SpanTracer(TraceSink* sink, SpanMode mode)
    : sink_(sink), mode_(mode) {
  if (timed()) epoch_ns_ = steady_now_ns();
}

long long SpanTracer::now_ns() const noexcept {
  if (!timed()) return 0;
  return steady_now_ns() - epoch_ns_;
}

long long SpanTracer::begin(std::uint64_t id, std::uint64_t parent,
                            std::uint8_t kind, Round k) {
  if (!enabled()) return 0;
  const long long t = timed() ? now_ns() : -1;
  sink_->record(TraceEvent::span(span_phase::kBegin, id, parent, kind, k, t));
  return t < 0 ? 0 : t;
}

long long SpanTracer::end(std::uint64_t id, std::uint8_t kind, Round k) {
  if (!enabled()) return 0;
  const long long t = timed() ? now_ns() : -1;
  sink_->record(TraceEvent::span(span_phase::kEnd, id, 0, kind, k, t));
  return t < 0 ? 0 : t;
}

void SpanTracer::cause(std::uint64_t id, std::uint64_t cause_id,
                       std::uint8_t kind, Round k) {
  if (!enabled()) return;
  sink_->record(
      TraceEvent::span(span_phase::kCause, id, cause_id, kind, k, -1));
}

int emit_metrics_snapshot(SpanTracer* t, const MetricsRegistry& reg,
                          Round seq) {
  if (t == nullptr || !t->timed()) return 0;
  int emitted = 0;
  for (int m = 0; m < kSpanMetricCount; ++m) {
    const LogHistogram* h = reg.find_latency(kSpanMetricNames[m]);
    if (h == nullptr || h->empty()) continue;
    t->sink()->record(TraceEvent::metrics(
        seq, m, static_cast<long long>(h->count()), h->quantile(0.50),
        h->quantile(0.90), h->quantile(0.99), h->quantile(0.999), h->max()));
    ++emitted;
  }
  return emitted;
}

}  // namespace timing

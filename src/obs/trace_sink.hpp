// TraceSink: where trace events go.
//
// Design constraints, in order:
//  1. ZERO overhead when tracing is off. Every instrumented component
//     holds a raw `TraceSink*` that is null by default; emission sites
//     compile to one predictable branch (`if (sink) ...`). There is no
//     global registry and no virtual call on the off path.
//  2. Determinism under the parallel trial runner. A sink is owned by
//     exactly one trial and written from whatever pool thread runs that
//     trial — never shared — so BufferSink needs no locks ("lock-free
//     enough"). Cross-trial ordering is imposed afterwards, when the
//     harness drains buffers in trial-index order on the calling thread.
//  3. Bounded memory. BufferSink can cap its event count; the overflow
//     counter records what was dropped so truncation is never silent.
#pragma once

#include <cstddef>
#include <vector>

#include "obs/trace_event.hpp"

namespace timing {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& e) = 0;
};

/// Emit helper: the canonical null-safe call used by all instrumented
/// code. Keeps the off-path branch in one place.
inline void trace_emit(TraceSink* sink, const TraceEvent& e) {
  if (sink != nullptr) sink->record(e);
}

/// Per-trial in-memory recorder. Single-writer; appends are amortized
/// O(1) vector pushes.
class BufferSink final : public TraceSink {
 public:
  /// `max_events` = 0 means unbounded.
  explicit BufferSink(std::size_t max_events = 0) : max_events_(max_events) {}

  void record(const TraceEvent& e) override {
    if (max_events_ != 0 && events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back(e);
  }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t dropped() const noexcept { return dropped_; }
  void clear() noexcept {
    events_.clear();
    dropped_ = 0;
  }

 private:
  std::size_t max_events_;
  std::size_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

/// Counts events without storing them (overhead benches, smoke checks).
class CountingSink final : public TraceSink {
 public:
  void record(const TraceEvent&) override { ++count_; }
  std::size_t count() const noexcept { return count_; }

 private:
  std::size_t count_ = 0;
};

}  // namespace timing

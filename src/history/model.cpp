#include "history/model.hpp"

#include "common/rng.hpp"
#include "obs/trace_event.hpp"

namespace timing {

Value register_mix(Value state, Value v) noexcept {
  std::uint64_t s = static_cast<std::uint64_t>(state) * 0x9e3779b97f4a7c15ull ^
                    (static_cast<std::uint64_t>(v) + 0xbf58476d1ce4e5b9ull);
  const std::uint64_t mixed = splitmix64(s);
  return static_cast<Value>((mixed & ((1ull << 62) - 1)) | 1ull);
}

StepResult register_step(Value state, std::uint8_t func, Value a,
                         Value b) noexcept {
  StepResult r;
  switch (func) {
    case op_func::kRead:
      r.state = state;
      r.result = state;
      break;
    case op_func::kWrite:
      r.state = a;
      r.result = a;
      break;
    case op_func::kCas:
      if (state == a) {
        r.state = b;
        r.result = 1;
      } else {
        r.state = state;
        r.result = 0;
      }
      break;
    case op_func::kAppend:
      r.state = register_mix(state, a);
      r.result = r.state;
      break;
    default:
      r.state = state;
      r.result = kNoValue;
      break;
  }
  return r;
}

}  // namespace timing

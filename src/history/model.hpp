// Sequential specification of the replicated objects the SMR clients
// exercise: a totally-ordered register per key supporting read / write /
// cas, plus an order-sensitive `append` that folds values into a hash
// chain (the register analogue of Jepsen's list-append objects — every
// applied append stays visible in the final state, so lost updates
// cannot be masked by later overwrites).
//
// The checker (linearizability.hpp) and the live replicas
// (smr/state_machine.hpp's RegisterStateMachine) share THIS step
// function, so "matches the model" means the same thing online and
// offline.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace timing {

/// Initial state of every register key. The client harness only writes
/// nonzero values and append results are never zero, so a key's state
/// is zero iff no effective op touched it yet — which is what lets the
/// stale-read corruption hook guarantee a detectable violation.
inline constexpr Value kRegInitial = 0;

/// Order-sensitive fold of `v` into `state`: splitmix64-style mixing,
/// masked to 62 bits and forced odd, so results are always positive,
/// nonzero, and odd (disjoint from the even values the client harness
/// writes — a parity argument the mutation tests lean on).
Value register_mix(Value state, Value v) noexcept;

struct StepResult {
  Value state = kRegInitial;  ///< state after the op
  Value result = kNoValue;    ///< value the op returns
};

/// Apply one operation of function `func` (an op_func:: constant from
/// obs/trace_event.hpp) to `state`. read -> returns state; write(a) ->
/// state = a, returns a; cas(a, b) -> if state == a then state = b and
/// returns 1 else returns 0; append(a) -> state = register_mix(state, a),
/// returns the new state.
StepResult register_step(Value state, std::uint8_t func, Value a,
                         Value b) noexcept;

}  // namespace timing

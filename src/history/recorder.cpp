#include "history/recorder.hpp"

#include "common/check.hpp"

namespace timing {

Round HistoryRecorder::invoke(ProcessId client, std::uint8_t func,
                              std::int32_t key, long long id, Value a,
                              Value b) {
  TM_CHECK(pending_.count(client) == 0,
           "client already has an outstanding op");
  pending_[client] = Pending{func, key, id, a, b};
  ++ts_;
  events_.push_back(
      TraceEvent::op(ts_, client, op_phase::kInvoke, func, key, id, a, b));
  return ts_;
}

Round HistoryRecorder::complete(ProcessId client, std::uint8_t phase,
                                Value result) {
  const auto it = pending_.find(client);
  TM_CHECK(it != pending_.end(), "completion without a pending invoke");
  const Pending p = it->second;
  pending_.erase(it);
  ++ts_;
  events_.push_back(TraceEvent::op(ts_, client, phase, p.func, p.key, p.id,
                                   p.a, p.b, result));
  return ts_;
}

Round HistoryRecorder::ok(ProcessId client, Value result) {
  return complete(client, op_phase::kOk, result);
}

Round HistoryRecorder::fail(ProcessId client) {
  return complete(client, op_phase::kFail, kNoValue);
}

Round HistoryRecorder::info(ProcessId client) {
  return complete(client, op_phase::kInfo, kNoValue);
}

}  // namespace timing

// Operation histories: the client-visible record of an SMR run, built
// from the `"e":"op"` events of a schema-v1 trace (docs/HISTORY.md).
//
// A history is a sequence of invoke/ok/fail/info events, one client one
// outstanding op at a time, under the Jepsen completion convention:
// ok = the op took effect, fail = it definitely did NOT take effect,
// info = unknown (timeout, crashed leader) — the op stays concurrent
// with everything after it, forever.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "obs/trace_event.hpp"

namespace timing {

/// One client operation, with its invocation/completion interval.
struct Operation {
  ProcessId client = kNoProcess;
  long long id = -1;            ///< client-assigned request id
  std::uint8_t func = 0;        ///< op_func:: constant
  std::int32_t key = -1;
  Value a = kNoValue;           ///< write value / cas expected / append value
  Value b = kNoValue;           ///< cas replacement
  Value result = kNoValue;      ///< observed result (ok completions only)
  Round invoke_ts = 0;
  Round complete_ts = -1;       ///< -1 = never completed (open at trial end)
  std::uint8_t completion = op_phase::kInfo;  ///< kOk / kFail / kInfo

  bool operator==(const Operation&) const = default;

  bool ok() const noexcept { return completion == op_phase::kOk; }
  bool failed() const noexcept { return completion == op_phase::kFail; }
  bool is_info() const noexcept { return completion == op_phase::kInfo; }
  /// Completion timestamp for precedence purposes: info ops return
  /// "infinity" — they precede nothing.
  Round ret() const noexcept {
    return is_info() ? std::numeric_limits<Round>::max() : complete_ts;
  }
};

struct History {
  std::vector<Operation> ops;  ///< in invoke-timestamp order
  std::string error;           ///< non-empty iff the event stream is malformed

  bool well_formed() const noexcept { return error.empty(); }
};

/// Pair up the ClientOp events of one trial into operations. Ops whose
/// invoke never saw a completion are closed as `info` (open at end of
/// trial). Non-ClientOp events are ignored, so a full mixed trace trial
/// can be passed directly. Malformedness (completion without a pending
/// invoke, two outstanding ops on one client, mismatched func/key/id on
/// completion, non-increasing timestamps) is reported via `error`.
History build_history(const std::vector<TraceEvent>& events);

/// Render an operation as its trace-event JSONL lines (invoke line plus
/// completion line if the op completed) — the replay/witness format.
std::string to_jsonl(const Operation& op);

}  // namespace timing

#include "history/history.hpp"

#include <map>
#include <sstream>

#include "obs/jsonl.hpp"

namespace timing {

History build_history(const std::vector<TraceEvent>& events) {
  History h;
  // Pending op per client: index into h.ops.
  std::map<ProcessId, std::size_t> pending;
  Round last_ts = -1;
  std::size_t index = 0;
  for (const TraceEvent& e : events) {
    ++index;
    if (e.kind != EventKind::kClientOp) continue;
    auto fail = [&](const std::string& why) {
      std::ostringstream os;
      os << "op event " << index << " (client " << e.proc << ", ts "
         << e.round << "): " << why;
      h.error = os.str();
      return h;
    };
    if (e.round <= last_ts) return fail("timestamps must strictly increase");
    last_ts = e.round;

    if (e.op_phase == op_phase::kInvoke) {
      if (pending.count(e.proc)) {
        return fail("client already has an outstanding op");
      }
      Operation op;
      op.client = e.proc;
      op.id = e.op_id;
      op.func = e.op_func;
      op.key = e.op_key;
      op.a = e.arg;
      op.b = e.arg2;
      op.invoke_ts = e.round;
      pending[e.proc] = h.ops.size();
      h.ops.push_back(op);
      continue;
    }
    const auto it = pending.find(e.proc);
    if (it == pending.end()) {
      return fail("completion without a pending invoke");
    }
    Operation& op = h.ops[it->second];
    if (op.func != e.op_func || op.key != e.op_key || op.id != e.op_id) {
      return fail("completion func/key/id does not match the invoke");
    }
    op.complete_ts = e.round;
    op.completion = e.op_phase;
    if (e.op_phase == op_phase::kOk) op.result = e.value;
    pending.erase(it);
  }
  // Clients whose last op never completed: open ops, info by default
  // (Operation initializes completion = kInfo, complete_ts = -1).
  return h;
}

std::string to_jsonl(const Operation& op) {
  std::string s = to_jsonl(TraceEvent::op(op.invoke_ts, op.client,
                                          op_phase::kInvoke, op.func, op.key,
                                          op.id, op.a, op.b));
  if (op.complete_ts >= 0) {
    s += "\n";
    s += to_jsonl(TraceEvent::op(op.complete_ts, op.client, op.completion,
                                 op.func, op.key, op.id, op.a, op.b,
                                 op.ok() ? op.result : kNoValue));
  }
  return s;
}

}  // namespace timing

// In-memory recorder for client operation events: hands out the trial's
// strictly increasing logical timestamps and enforces the one
// outstanding op per client discipline at the emission site, so every
// recorded stream is well-formed by construction.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "obs/trace_event.hpp"

namespace timing {

class HistoryRecorder {
 public:
  /// Record an invocation; returns the assigned timestamp. CHECK-fails
  /// if the client already has an outstanding op.
  Round invoke(ProcessId client, std::uint8_t func, std::int32_t key,
               long long id, Value a = kNoValue, Value b = kNoValue);

  /// Complete the client's outstanding op. `result` is only recorded
  /// for ok completions.
  Round ok(ProcessId client, Value result);
  Round fail(ProcessId client);
  Round info(ProcessId client);

  /// True iff `client` has an invoked-but-uncompleted op.
  bool outstanding(ProcessId client) const {
    return pending_.count(client) != 0;
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  Round last_ts() const { return ts_; }

 private:
  struct Pending {
    std::uint8_t func = 0;
    std::int32_t key = -1;
    long long id = -1;
    Value a = kNoValue;
    Value b = kNoValue;
  };
  Round complete(ProcessId client, std::uint8_t phase, Value result);

  std::map<ProcessId, Pending> pending_;
  std::vector<TraceEvent> events_;
  Round ts_ = 0;
};

}  // namespace timing

// Wing–Gong linearizability checking over operation histories, with the
// two standard scalability levers:
//
//  * P-compositionality: keys are independent objects, so a history is
//    linearizable iff its per-key projections are (Herlihy & Wing's
//    locality property). The search runs per key.
//  * Memoized search states: the DFS over "which ops are linearized so
//    far" caches (linearized-set, register state) pairs, collapsing the
//    factorially many interleavings that reach the same configuration
//    (the Wing–Gong / Lowe optimization).
//
// Completion semantics follow the Jepsen convention established in
// history.hpp: `fail` ops are dropped (they definitely did not happen),
// `info` ops take effect at ANY point after their invocation or never —
// the search may linearize them but does not have to.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "history/history.hpp"

namespace timing {

/// A minimal non-linearizable sub-history: removing ANY single op from
/// `ops` makes the remainder linearizable (1-minimality, established by
/// greedy delta-debugging). All ops are on the same `key`.
struct Witness {
  std::int32_t key = -1;
  std::vector<Operation> ops;  ///< in invoke-timestamp order
  std::string explanation;     ///< one-line human-readable summary
};

struct CheckResult {
  bool linearizable = true;
  Witness witness;  ///< meaningful iff !linearizable (lowest failing key)
};

/// Check one key's operations (all `ops` must share a key). Fail ops are
/// ignored; info ops are optional in the linearization order.
bool linearizable_key(const std::vector<Operation>& ops);

/// Check a full history: partition by key, check each, and on failure
/// minimize a witness for the lowest failing key. Deterministic — the
/// same history always yields the same verdict and witness.
CheckResult check_history(const History& history);

}  // namespace timing

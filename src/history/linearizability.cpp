#include "history/linearizability.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "history/model.hpp"

namespace timing {

namespace {

/// Projection of one key's history the search actually runs on: ok and
/// info ops in invoke order. Fail ops are dropped (they did not happen)
/// and info READS are dropped too — they have no state effect and an
/// unconstrained result, so linearizing them can never matter.
std::vector<Operation> searchable(const std::vector<Operation>& ops) {
  std::vector<Operation> out;
  for (const Operation& op : ops) {
    if (op.failed()) continue;
    if (op.is_info() && op.func == op_func::kRead) continue;
    out.push_back(op);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Operation& x, const Operation& y) {
                     return x.invoke_ts < y.invoke_ts;
                   });
  return out;
}

/// Wing–Gong DFS with memoized (linearized-set, state) configurations.
class KeySearch {
 public:
  explicit KeySearch(std::vector<Operation> ops) : ops_(std::move(ops)) {
    mask_.assign((ops_.size() + 63) / 64, 0);
    for (const Operation& op : ops_) {
      if (op.ok()) ++ok_left_;
    }
  }

  bool run() { return dfs(kRegInitial); }

 private:
  bool linearized(std::size_t i) const {
    return (mask_[i / 64] >> (i % 64)) & 1u;
  }
  void set(std::size_t i) { mask_[i / 64] |= 1ull << (i % 64); }
  void clear(std::size_t i) { mask_[i / 64] &= ~(1ull << (i % 64)); }

  bool dfs(Value state) {
    if (ok_left_ == 0) return true;  // every ok op explained; info optional
    if (!seen_.insert({mask_, state}).second) return false;

    // Minimality frontier: op i may linearize next iff no OTHER
    // unlinearized op returns before i is invoked. With unique
    // timestamps that is inv_i < min ret over unlinearized j != i, so
    // track the two smallest returns among unlinearized ops.
    Round min1 = std::numeric_limits<Round>::max();
    Round min2 = min1;
    std::size_t min1_at = ops_.size();
    for (std::size_t j = 0; j < ops_.size(); ++j) {
      if (linearized(j)) continue;
      const Round r = ops_[j].ret();
      if (r < min1) {
        min2 = min1;
        min1 = r;
        min1_at = j;
      } else if (r < min2) {
        min2 = r;
      }
    }

    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (linearized(i)) continue;
      const Round bound = (i == min1_at) ? min2 : min1;
      if (ops_[i].invoke_ts > bound) continue;  // some other op ended first
      const Operation& op = ops_[i];
      const StepResult next = register_step(state, op.func, op.a, op.b);
      // ok ops must reproduce the observed result; info ops place no
      // constraint (their result was never seen).
      if (op.ok() && next.result != op.result) continue;
      set(i);
      if (op.ok()) --ok_left_;
      const bool found = dfs(next.state);
      if (op.ok()) ++ok_left_;
      clear(i);
      if (found) return true;
      // NOT taking an info op needs no explicit branch: the success
      // condition only counts ok ops, so skipping is the default.
    }
    return false;
  }

  std::vector<Operation> ops_;
  std::vector<std::uint64_t> mask_;
  int ok_left_ = 0;
  std::set<std::pair<std::vector<std::uint64_t>, Value>> seen_;
};

/// Greedy delta-debugging to a 1-minimal witness: repeatedly drop any op
/// whose removal keeps the remainder non-linearizable.
std::vector<Operation> minimize(std::vector<Operation> ops) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      std::vector<Operation> fewer;
      fewer.reserve(ops.size() - 1);
      for (std::size_t j = 0; j < ops.size(); ++j) {
        if (j != i) fewer.push_back(ops[j]);
      }
      if (!linearizable_key(fewer)) {
        ops = std::move(fewer);
        changed = true;
        break;
      }
    }
  }
  return ops;
}

}  // namespace

bool linearizable_key(const std::vector<Operation>& ops) {
  return KeySearch(searchable(ops)).run();
}

CheckResult check_history(const History& history) {
  CheckResult out;
  if (!history.well_formed()) {
    out.linearizable = false;
    out.witness.explanation = "malformed history: " + history.error;
    return out;
  }
  // P-compositionality: keys are independent objects; check each
  // projection. std::map iteration makes "lowest failing key" exact.
  std::map<std::int32_t, std::vector<Operation>> by_key;
  for (const Operation& op : history.ops) by_key[op.key].push_back(op);
  for (auto& [key, ops] : by_key) {
    if (linearizable_key(ops)) continue;
    out.linearizable = false;
    out.witness.key = key;
    out.witness.ops = minimize(searchable(ops));
    std::ostringstream os;
    os << out.witness.ops.size() << " op(s) on key " << key
       << " admit no linearization consistent with the register spec";
    out.witness.explanation = os.str();
    return out;
  }
  return out;
}

}  // namespace timing

// The candidate mutator: one small, validated edit per call.
//
// Every mutation is drawn from a fixed grammar of edits over the
// fault-plan statements plus granular link degradation:
//
//   add      crash / crash+recover / partition / drop / delay /
//            suppress_leader (inserted before the gsr marker)
//   remove   any non-gsr statement (a crash takes its recover along)
//   shift    slide a statement's round/window by a small delta
//   resize   widen or narrow one end of a window
//   gsr      move the stabilization round itself
//   retarget reassign the subject process / link endpoints / partition cut
//   perturb  nudge a drop probability or delay magnitude
//   degrade  one directed link one class down (sync -> psync -> async)
//   upgrade  one directed link one class up (so annealing can back off)
//
// Candidates that fail fault::validate(plan, n, leader) — or whose
// matrix's reliable plane could no longer carry the algorithm's native
// model even with everyone alive (fault::granular_supports) — are
// rejected and the mutator retries; after `attempts` failures it returns
// the parent unchanged. The returned plan always carries its canonical
// spec() in `source`, so every candidate the search ever holds is
// replayable verbatim.
//
// Determinism: mutate() is a pure function of (parent, cfg, rng state).
// The search derives one counter-based RNG sub-stream per (generation,
// walker), so mutation sequences are bit-identical for any
// TIMING_THREADS.
#pragma once

#include <cstdint>

#include "adversary/candidate.hpp"
#include "common/rng.hpp"
#include "consensus/factory.hpp"

namespace timing::adversary {

struct MutationConfig {
  int n = 5;
  ProcessId leader = 0;
  /// Gates link degradation: the reliable plane must keep supporting this
  /// algorithm's native model (all-alive), or the degenerate "starve every
  /// link, never owe liveness" candidate would dominate the search.
  AlgorithmKind algorithm = AlgorithmKind::kPaxos;
  Round max_gsr = 24;      ///< gsr stays in [3, max_gsr]
  int max_events = 12;     ///< non-gsr statements per plan
  bool mutate_links = true;///< enable degrade/upgrade link edits
  int attempts = 8;        ///< validation retries before returning parent
  /// Matrix every seed candidate starts from; n() == 0 means all-sync.
  LinkModelMatrix base_links;
};

/// A fresh search seed: random_fault_plan(n, leader, seed) over the
/// configured base matrix.
Candidate seed_candidate(const MutationConfig& cfg, std::uint64_t seed);

/// One validated edit of `parent` (the parent itself when every attempt
/// failed validation). Pure in (parent, cfg, rng state).
Candidate mutate(const Candidate& parent, const MutationConfig& cfg, Rng& rng);

}  // namespace timing::adversary

// Greedy plan minimization: make an elite small enough to read.
//
// shrink() repeatedly tries the cheapest structural simplifications —
// drop a statement (a crash takes its recover; a recover alone turns its
// crash permanent), narrow a window by one round from either end, pull
// the gsr marker earlier, upgrade a degraded link back toward sync — and
// keeps any edit whose re-evaluated score is no worse than the best seen
// so far. Each adopted edit strictly shrinks a bounded measure (event
// count, total window width, gsr, degraded-link count), so the loop
// terminates; candidates are re-validated before every evaluation.
//
// The result is deterministic in (start, configs): edits are tried in a
// fixed order and evaluation is pure, so the minimized specs the archive
// stores are byte-stable across runs and thread counts.
#pragma once

#include "adversary/fitness.hpp"
#include "adversary/mutate.hpp"

namespace timing::adversary {

struct ShrinkResult {
  Candidate candidate;
  Fitness fitness;      ///< of the minimized candidate
  int steps = 0;        ///< simplifications adopted
  int evaluations = 0;  ///< chaos runs spent (incl. the baseline one)
};

ShrinkResult shrink(const Candidate& start, const MutationConfig& mcfg,
                    const EvalConfig& ecfg);

struct PolishResult {
  Candidate candidate;
  Fitness fitness;
  int evaluations = 0;   ///< mutations evaluated (excl. the baseline one)
  int improvements = 0;  ///< strict score gains adopted
};

/// Greedy intensification around a finished candidate: `budget` single
/// mutations, adopting any whose score is no worse (plateau drift is
/// allowed, so the walk can cross flat ground). The annealer explores;
/// this squeezes the last rounds out of the basin it ends in.
/// Deterministic in (start, configs, seed) — one serial RNG stream.
PolishResult polish(const Candidate& start, const MutationConfig& mcfg,
                    const EvalConfig& ecfg, std::uint64_t seed, int budget);

}  // namespace timing::adversary

#include "adversary/archive.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/parse.hpp"
#include "fault/parser.hpp"

namespace timing::adversary {

namespace {

constexpr const char* kMagic = "# adversary v1";

/// Shortest text that parses back to exactly `v` (same policy as the
/// fault-plan spec formatter, so header doubles round-trip too).
std::string num(double v) {
  for (int prec = 6; prec <= 17; ++prec) {
    std::ostringstream os;
    os.precision(prec);
    os << v;
    double back = 0.0;
    if (parse_double(os.str(), back) && back == v) return os.str();
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// key=value tokens of one header comment line (after "# ").
void parse_pairs(const std::string& line,
                 std::vector<std::pair<std::string, std::string>>& out) {
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) continue;
    out.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
  }
}

}  // namespace

ArchiveEntry make_archive_entry(const Candidate& c, const Fitness& f,
                                const EvalConfig& eval) {
  ArchiveEntry e;
  e.eval = eval;
  e.candidate = c;
  e.candidate.plan.source = c.plan.spec();
  e.verdict = verdict_string(f);
  e.delay = f.delay;
  e.decision_round = f.decision_round;
  e.score = f.score;
  return e;
}

std::string entry_stem(const ArchiveEntry& e) {
  std::ostringstream os;
  os << algorithm_key(e.eval.algorithm) << "-" << std::hex
     << candidate_hash(e.candidate);
  return os.str();
}

std::string format_archive_entry(const ArchiveEntry& e) {
  std::ostringstream os;
  os << kMagic << "\n";
  os << "# algorithm=" << algorithm_key(e.eval.algorithm) << " n=" << e.eval.n
     << " leader=" << e.eval.leader << " pre_gsr_p=" << num(e.eval.pre_gsr_p)
     << " eval_seed=" << e.eval.eval_seed << " samples=" << e.eval.samples
     << " min_rounds=" << e.eval.min_rounds << "\n";
  os << "# link_models=" << e.candidate.link_models.spec() << "\n";
  os << "# verdict=" << e.verdict << " delay=" << num(e.delay)
     << " decision_round=" << e.decision_round << " score=" << num(e.score)
     << "\n";
  os << e.candidate.plan.spec();
  return os.str();
}

bool is_archive_text(const std::string& text) {
  return text.rfind(kMagic, 0) == 0;
}

std::string parse_archive_entry(const std::string& text, ArchiveEntry& out) {
  if (!is_archive_text(text)) return "missing '# adversary v1' header";
  ArchiveEntry e;
  std::vector<std::pair<std::string, std::string>> pairs;
  std::istringstream is(text);
  std::string line;
  std::string link_models_spec = "sync:all";
  while (std::getline(is, line)) {
    if (line.rfind("# link_models=", 0) == 0) {
      link_models_spec = line.substr(std::string("# link_models=").size());
    } else if (line.rfind("# ", 0) == 0) {
      parse_pairs(line.substr(2), pairs);
    }
  }
  bool have_algorithm = false;
  bool have_seed = false;
  for (const auto& [key, value] : pairs) {
    if (key == "algorithm") {
      if (!parse_algorithm_kind(value, e.eval.algorithm)) {
        return "unknown algorithm '" + value + "'";
      }
      have_algorithm = true;
    } else if (key == "n") {
      if (!parse_int(value, e.eval.n)) return "bad n '" + value + "'";
    } else if (key == "leader") {
      int v = 0;
      if (!parse_int(value, v)) return "bad leader '" + value + "'";
      e.eval.leader = static_cast<ProcessId>(v);
    } else if (key == "pre_gsr_p") {
      if (!parse_double(value, e.eval.pre_gsr_p)) {
        return "bad pre_gsr_p '" + value + "'";
      }
    } else if (key == "eval_seed") {
      try {
        e.eval.eval_seed = std::stoull(value);
      } catch (...) {
        return "bad eval_seed '" + value + "'";
      }
      have_seed = true;
    } else if (key == "samples") {
      if (!parse_int(value, e.eval.samples)) {
        return "bad samples '" + value + "'";
      }
    } else if (key == "min_rounds") {
      if (!parse_int(value, e.eval.min_rounds)) {
        return "bad min_rounds '" + value + "'";
      }
    } else if (key == "verdict") {
      e.verdict = value;
    } else if (key == "delay") {
      if (!parse_double(value, e.delay)) return "bad delay '" + value + "'";
    } else if (key == "decision_round") {
      int v = 0;
      if (!parse_int(value, v)) return "bad decision_round '" + value + "'";
      e.decision_round = v;
    } else if (key == "score") {
      if (!parse_double(value, e.score)) return "bad score '" + value + "'";
    }
  }
  if (!have_algorithm || !have_seed || e.verdict.empty()) {
    return "header must record algorithm, eval_seed and verdict";
  }
  if (e.eval.n < 3) return "n must be >= 3";

  const fault::ParseResult pr = fault::parse_fault_plan(text);
  if (!pr.ok()) return "bad plan: " + pr.error;
  e.candidate.plan = pr.plan;
  const std::string verr =
      fault::validate(e.candidate.plan, e.eval.n, e.eval.leader);
  if (!verr.empty()) return "invalid plan: " + verr;
  const std::string lerr =
      parse_link_models(link_models_spec, e.eval.n, e.candidate.link_models);
  if (!lerr.empty()) return lerr;
  out = std::move(e);
  return "";
}

std::string write_archive_entry(const std::string& dir, const ArchiveEntry& e,
                                std::string* path_out) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return "cannot create " + dir + ": " + ec.message();
  ArchiveEntry named = e;
  named.name = entry_stem(e);
  const std::filesystem::path path =
      std::filesystem::path(dir) / (named.name + ".plan");
  std::ofstream file(path);
  if (!file) return "cannot write " + path.string();
  file << format_archive_entry(named) << "\n";
  if (!file.good()) return "write failed: " + path.string();
  if (path_out != nullptr) *path_out = path.string();
  return "";
}

std::string load_archive(const std::string& dir,
                         std::vector<ArchiveEntry>& out) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return "cannot read " + dir + ": " + ec.message();
  std::vector<std::filesystem::path> files;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".plan") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  std::vector<ArchiveEntry> entries;
  for (const auto& path : files) {
    std::ifstream file(path);
    if (!file) return "cannot open " + path.string();
    std::ostringstream text;
    text << file.rdbuf();
    ArchiveEntry e;
    const std::string err = parse_archive_entry(text.str(), e);
    if (!err.empty()) return path.filename().string() + ": " + err;
    e.name = path.stem().string();
    entries.push_back(std::move(e));
  }
  out = std::move(entries);
  return "";
}

}  // namespace timing::adversary

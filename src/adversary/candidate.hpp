// A search candidate: one complete adversary the chaos harness can run.
//
// The search space is the cross product of the fault-plan grammar
// (fault/plan.hpp) and a static per-link timing assignment
// (models/link_model_matrix.hpp). The plan injects crashes, partitions,
// drops, delays and leader suppression before its gsr marker; the matrix
// chooses which links even owe timeliness afterwards. Both halves are
// plain data, so a candidate is trivially hashable, comparable and
// serializable — the properties the mutator, the elite pool and the
// archive all lean on.
#pragma once

#include <cstdint>

#include "fault/plan.hpp"
#include "models/link_model_matrix.hpp"

namespace timing::adversary {

struct Candidate {
  fault::FaultPlan plan;
  /// Per-link model assignment the candidate runs under; all-sync is the
  /// homogeneous case. Always sized to the search's n.
  LinkModelMatrix link_models;
};

/// True iff the candidates describe the same adversary: structurally
/// equal plans (fault::structurally_equal — `source` text is ignored)
/// and identical link matrices.
inline bool structurally_equal(const Candidate& a, const Candidate& b) {
  return fault::structurally_equal(a.plan, b.plan) &&
         a.link_models == b.link_models;
}

/// Stable content hash over plan structure and link classes; equal
/// candidates hash identically across runs and platforms. Used to dedupe
/// the elite pool and to name archive entries.
inline std::uint64_t candidate_hash(const Candidate& c) {
  std::uint64_t h = fault::plan_hash(c.plan);
  const int n = c.link_models.n();
  h ^= static_cast<std::uint64_t>(n) + 0x9e3779b97f4a7c15ull;
  h *= 0x100000001b3ull;
  for (ProcessId d = 0; d < n; ++d) {
    for (ProcessId s = 0; s < n; ++s) {
      h ^= static_cast<std::uint64_t>(c.link_models.at(d, s)) + 1;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

}  // namespace timing::adversary

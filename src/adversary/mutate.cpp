#include "adversary/mutate.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "fault/chaos.hpp"

namespace timing::adversary {

namespace {

using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultPlan;

/// Inclusive uniform draw in [lo, hi].
Round rand_round(Rng& rng, Round lo, Round hi) {
  TM_CHECK(lo <= hi, "empty round range");
  return lo + static_cast<Round>(
                  rng.uniform_int(static_cast<std::uint64_t>(hi - lo + 1)));
}

ProcessId rand_proc(Rng& rng, int n) {
  return static_cast<ProcessId>(rng.uniform_int(static_cast<std::uint64_t>(n)));
}

bool windowed(FaultKind k) {
  return k == FaultKind::kPartition || k == FaultKind::kDrop ||
         k == FaultKind::kDelay || k == FaultKind::kSuppressLeader;
}

int non_gsr_events(const FaultPlan& p) {
  int c = 0;
  for (const FaultEvent& e : p.events) {
    if (e.kind != FaultKind::kGsr) ++c;
  }
  return c;
}

/// The gsr marker is always the last event (validate() enforces it);
/// additions go right before it.
void insert_before_gsr(FaultPlan& p, FaultEvent e) {
  p.events.insert(p.events.end() - 1, std::move(e));
}

/// A fault round in [1, gsr - 1], biased toward the rounds just before
/// stabilization: damage inflicted there is what the protocol still
/// carries when the bound clock starts, so that is where the worst
/// schedules live.
Round rand_fault_round(Rng& rng, Round gsr) {
  if (gsr >= 3 && rng.bernoulli(0.5)) {
    return rand_round(rng, std::max<Round>(1, gsr - 3), gsr - 1);
  }
  return rand_round(rng, 1, gsr - 1);
}

/// [from, to) window inside [1, gsr], with the same late bias: half the
/// draws hug gsr from below.
std::pair<Round, Round> rand_window(Rng& rng, Round gsr) {
  if (gsr >= 3 && rng.bernoulli(0.5)) {
    const Round from = rand_round(rng, std::max<Round>(1, gsr - 4), gsr - 1);
    return {from, gsr};
  }
  const Round from = rand_round(rng, 1, gsr - 1);
  const Round to = rand_round(rng, from + 1, gsr);
  return {from, to};
}

/// A two-group partition cut; empty groups mean the draw failed.
std::vector<std::vector<ProcessId>> rand_cut(Rng& rng, int n) {
  std::vector<ProcessId> a, b;
  for (ProcessId p = 0; p < n; ++p) (rng.bernoulli(0.5) ? a : b).push_back(p);
  if (a.empty() || b.empty()) return {};
  return {a, b};
}

/// Indices of non-gsr events; empty when the plan is bare.
std::vector<std::size_t> editable(const FaultPlan& p) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < p.events.size(); ++i) {
    if (p.events[i].kind != FaultKind::kGsr) out.push_back(i);
  }
  return out;
}

/// The matching recover for a crash event, if any: the first recover of
/// the same process after it.
std::size_t recover_of(const FaultPlan& p, std::size_t crash_idx) {
  for (std::size_t j = crash_idx + 1; j < p.events.size(); ++j) {
    if (p.events[j].kind == FaultKind::kRecover &&
        p.events[j].proc == p.events[crash_idx].proc) {
      return j;
    }
  }
  return p.events.size();
}

enum class Op {
  kAddCrash,
  kAddRecoverableCrash,
  kAddPartition,
  kAddDrop,
  kAddDelay,
  kAddSuppress,
  kRemove,
  kShift,
  kResize,
  kShiftGsr,
  kRetarget,
  kPerturb,
  kDegradeLink,
  kUpgradeLink,
};

constexpr Op kPlanOps[] = {
    Op::kAddCrash, Op::kAddRecoverableCrash, Op::kAddPartition, Op::kAddDrop,
    Op::kAddDelay, Op::kAddSuppress,         Op::kRemove,       Op::kShift,
    Op::kResize,   Op::kShiftGsr,            Op::kRetarget,     Op::kPerturb,
};
constexpr Op kLinkOps[] = {Op::kDegradeLink, Op::kUpgradeLink};

/// Apply one op in place; false when the op does not apply to this
/// candidate (e.g. nothing to remove). The caller validates the result.
bool apply(Op op, Candidate& c, const MutationConfig& cfg, Rng& rng) {
  FaultPlan& p = c.plan;
  const Round gsr = p.gsr;
  switch (op) {
    case Op::kAddCrash: {
      if (non_gsr_events(p) >= cfg.max_events) return false;
      FaultEvent e;
      e.kind = FaultKind::kCrash;
      e.proc = rand_proc(rng, cfg.n);
      e.from = rand_fault_round(rng, gsr);
      insert_before_gsr(p, e);
      return true;
    }
    case Op::kAddRecoverableCrash: {
      if (non_gsr_events(p) + 1 >= cfg.max_events || gsr < 3) return false;
      FaultEvent crash;
      crash.kind = FaultKind::kCrash;
      crash.proc = rand_proc(rng, cfg.n);
      crash.from = rand_fault_round(rng, gsr);
      FaultEvent recover;
      recover.kind = FaultKind::kRecover;
      recover.proc = crash.proc;
      // Half the recoveries land exactly at gsr: a process that comes
      // back with empty state at the instant the bound clock starts.
      recover.from = rng.bernoulli(0.5)
                         ? gsr
                         : rand_round(rng, crash.from + 1, gsr);
      insert_before_gsr(p, crash);
      insert_before_gsr(p, recover);
      return true;
    }
    case Op::kAddPartition: {
      if (non_gsr_events(p) >= cfg.max_events) return false;
      FaultEvent e;
      e.kind = FaultKind::kPartition;
      e.groups = rand_cut(rng, cfg.n);
      if (e.groups.empty()) return false;
      std::tie(e.from, e.to) = rand_window(rng, gsr);
      insert_before_gsr(p, e);
      return true;
    }
    case Op::kAddDrop: {
      if (non_gsr_events(p) >= cfg.max_events) return false;
      FaultEvent e;
      e.kind = FaultKind::kDrop;
      e.src = rng.bernoulli(0.25) ? kNoProcess : rand_proc(rng, cfg.n);
      e.dst = rng.bernoulli(0.25) ? kNoProcess : rand_proc(rng, cfg.n);
      if (e.src != kNoProcess && e.src == e.dst) return false;
      e.prob = 0.25 + rng.uniform() * 0.75;
      std::tie(e.from, e.to) = rand_window(rng, gsr);
      insert_before_gsr(p, e);
      return true;
    }
    case Op::kAddDelay: {
      if (non_gsr_events(p) >= cfg.max_events) return false;
      FaultEvent e;
      e.kind = FaultKind::kDelay;
      e.src = rand_proc(rng, cfg.n);
      e.dst = rand_proc(rng, cfg.n);
      if (e.src == e.dst) return false;
      e.extra_ms = static_cast<double>(rand_round(rng, 1, 5));
      std::tie(e.from, e.to) = rand_window(rng, gsr);
      insert_before_gsr(p, e);
      return true;
    }
    case Op::kAddSuppress: {
      if (non_gsr_events(p) >= cfg.max_events) return false;
      FaultEvent e;
      e.kind = FaultKind::kSuppressLeader;
      std::tie(e.from, e.to) = rand_window(rng, gsr);
      insert_before_gsr(p, e);
      return true;
    }
    case Op::kRemove: {
      const auto idx = editable(p);
      if (idx.empty()) return false;
      const std::size_t i = idx[rng.uniform_int(idx.size())];
      if (p.events[i].kind == FaultKind::kCrash) {
        // The recover, if any, goes too — it may not dangle.
        const std::size_t j = recover_of(p, i);
        if (j < p.events.size()) {
          p.events.erase(p.events.begin() + static_cast<std::ptrdiff_t>(j));
        }
      }
      p.events.erase(p.events.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
    case Op::kShift: {
      const auto idx = editable(p);
      if (idx.empty()) return false;
      const std::size_t i = idx[rng.uniform_int(idx.size())];
      Round d = rand_round(rng, -3, 3);
      if (d == 0) d = 1;
      FaultEvent& e = p.events[i];
      e.from += d;
      if (windowed(e.kind)) e.to += d;
      return true;
    }
    case Op::kResize: {
      std::vector<std::size_t> idx;
      for (std::size_t i = 0; i < p.events.size(); ++i) {
        if (windowed(p.events[i].kind)) idx.push_back(i);
      }
      if (idx.empty()) return false;
      FaultEvent& e = p.events[idx[rng.uniform_int(idx.size())]];
      switch (rng.uniform_int(4)) {
        case 0: e.from += 1; break;
        case 1: e.from -= 1; break;
        case 2: e.to += 1; break;
        default: e.to -= 1; break;
      }
      return true;
    }
    case Op::kShiftGsr: {
      Round d = rand_round(rng, -2, 2);
      if (d == 0) d = 1;
      const Round next = p.gsr + d;
      if (next < 3 || next > cfg.max_gsr) return false;
      p.gsr = next;
      p.events.back().from = next;  // the terminal marker mirrors the field
      return true;
    }
    case Op::kRetarget: {
      const auto idx = editable(p);
      if (idx.empty()) return false;
      const std::size_t i = idx[rng.uniform_int(idx.size())];
      FaultEvent& e = p.events[i];
      switch (e.kind) {
        case FaultKind::kCrash: {
          const ProcessId next = rand_proc(rng, cfg.n);
          const std::size_t j = recover_of(p, i);
          if (j < p.events.size()) p.events[j].proc = next;
          e.proc = next;
          return true;
        }
        case FaultKind::kRecover:
          return false;  // only moves with its crash
        case FaultKind::kPartition: {
          auto cut = rand_cut(rng, cfg.n);
          if (cut.empty()) return false;
          e.groups = std::move(cut);
          return true;
        }
        case FaultKind::kDrop:
        case FaultKind::kDelay: {
          const ProcessId src = rand_proc(rng, cfg.n);
          const ProcessId dst = rand_proc(rng, cfg.n);
          if (src == dst) return false;
          e.src = src;
          e.dst = dst;
          return true;
        }
        default:
          return false;
      }
    }
    case Op::kPerturb: {
      std::vector<std::size_t> idx;
      for (std::size_t i = 0; i < p.events.size(); ++i) {
        if (p.events[i].kind == FaultKind::kDrop ||
            p.events[i].kind == FaultKind::kDelay) {
          idx.push_back(i);
        }
      }
      if (idx.empty()) return false;
      FaultEvent& e = p.events[idx[rng.uniform_int(idx.size())]];
      if (e.kind == FaultKind::kDrop) {
        e.prob = std::clamp(e.prob + rng.uniform(-0.3, 0.3), 0.05, 1.0);
      } else {
        e.extra_ms = std::max(
            1.0, e.extra_ms + static_cast<double>(rand_round(rng, -2, 2)));
      }
      return true;
    }
    case Op::kDegradeLink:
    case Op::kUpgradeLink: {
      LinkModelMatrix& m = c.link_models;
      const bool down = op == Op::kDegradeLink;
      std::vector<std::pair<ProcessId, ProcessId>> idx;
      for (ProcessId d = 0; d < cfg.n; ++d) {
        for (ProcessId s = 0; s < cfg.n; ++s) {
          if (d == s) continue;
          const LinkModelClass cls = m.at(d, s);
          if (down ? cls != LinkModelClass::kAsync
                   : cls != LinkModelClass::kSync) {
            idx.emplace_back(d, s);
          }
        }
      }
      if (idx.empty()) return false;
      const auto [d, s] = idx[rng.uniform_int(idx.size())];
      const int step = static_cast<int>(m.at(d, s)) + (down ? 1 : -1);
      m.set(d, s, static_cast<LinkModelClass>(step));
      if (down &&
          !fault::granular_supports(fault::native_model(cfg.algorithm),
                                    cfg.leader, m, {})) {
        return false;  // would never owe liveness: not a meaningful score
      }
      return true;
    }
  }
  return false;
}

}  // namespace

Candidate seed_candidate(const MutationConfig& cfg, std::uint64_t seed) {
  Candidate c;
  c.plan = fault::random_fault_plan(cfg.n, cfg.leader, seed);
  c.link_models =
      cfg.base_links.n() == cfg.n ? cfg.base_links : LinkModelMatrix(cfg.n);
  return c;
}

Candidate mutate(const Candidate& parent, const MutationConfig& cfg, Rng& rng) {
  TM_CHECK(parent.plan.gsr >= 1 && !parent.plan.events.empty() &&
               parent.plan.events.back().kind == FaultKind::kGsr,
           "mutate() needs a plan closed by a gsr marker");
  const std::size_t plan_ops = std::size(kPlanOps);
  const std::size_t total_ops =
      plan_ops + (cfg.mutate_links ? std::size(kLinkOps) : 0);
  for (int attempt = 0; attempt < cfg.attempts; ++attempt) {
    const std::size_t pick = rng.uniform_int(total_ops);
    const Op op = pick < plan_ops ? kPlanOps[pick] : kLinkOps[pick - plan_ops];
    Candidate next = parent;
    if (!apply(op, next, cfg, rng)) continue;
    next.plan.source = next.plan.spec();
    if (!fault::validate(next.plan, cfg.n, cfg.leader).empty()) continue;
    if (structurally_equal(next, parent)) continue;
    return next;
  }
  return parent;
}

}  // namespace timing::adversary

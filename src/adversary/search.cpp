#include "adversary/search.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace timing::adversary {

namespace {

/// Distinct salts keep the three per-(generation, walker) draws — fresh
/// seeds, mutations, acceptance coins — on independent sub-streams.
constexpr std::uint64_t kSeedSalt = 0x5eed;
constexpr std::uint64_t kMutateSalt = 0x3017a7e;
constexpr std::uint64_t kAcceptSalt = 0xacce97;

std::uint64_t stream(std::uint64_t root, std::uint64_t salt, long long gen,
                     int walker) {
  return substream_seed(substream_seed(root ^ salt,
                                       static_cast<std::uint64_t>(gen)),
                        static_cast<std::uint64_t>(walker));
}

}  // namespace

AdversarySearch::AdversarySearch(SearchConfig cfg) : cfg_(cfg) {
  TM_CHECK(cfg_.walkers >= 1, "search needs at least one walker");
  TM_CHECK(cfg_.elites >= 1, "search needs room for at least one elite");
  TM_CHECK(cfg_.t0 >= cfg_.t_min && cfg_.t_min > 0.0,
           "search temperatures must satisfy t0 >= t_min > 0");
  walkers_.resize(static_cast<std::size_t>(cfg_.walkers));
}

double AdversarySearch::temperature(long long generation) const noexcept {
  return std::max(cfg_.t_min,
                  cfg_.t0 * std::pow(cfg_.cooling,
                                     static_cast<double>(generation)));
}

void AdversarySearch::run(long long evaluations) {
  TM_CHECK(evaluations >= 0, "negative evaluation budget");
  target_ += evaluations;
  while (evals_ < target_) step();
}

void AdversarySearch::step() {
  const long long g = generation_++;
  const int w_count = cfg_.walkers;

  // Propose serially (mutation is microseconds; evaluation is the cost),
  // then evaluate every proposal in parallel. run_trials owns one result
  // slot per index and folds on the calling thread, so the outcome is
  // independent of TIMING_THREADS.
  std::vector<Candidate> proposals(static_cast<std::size_t>(w_count));
  for (int w = 0; w < w_count; ++w) {
    const std::size_t wi = static_cast<std::size_t>(w);
    if (!walkers_[wi].inited) {
      proposals[wi] = seed_candidate(cfg_.mut, stream(cfg_.seed, kSeedSalt, g, w));
      continue;
    }
    Rng rng(stream(cfg_.seed, kMutateSalt, g, w));
    if (rng.bernoulli(cfg_.restart_p)) {
      // A fresh uniform draw: the hunt strictly contains sampling.
      proposals[wi] = seed_candidate(cfg_.mut, stream(cfg_.seed, kSeedSalt, g, w));
      continue;
    }
    if (!elites_.empty() && rng.bernoulli(cfg_.exploit_p)) {
      const std::size_t e = rng.uniform_int(elites_.size());
      proposals[wi] = mutate(elites_[e].candidate, cfg_.mut, rng);
      continue;
    }
    proposals[wi] = mutate(walkers_[wi].current, cfg_.mut, rng);
  }
  const std::vector<Fitness> fits = run_trials<Fitness>(
      static_cast<std::size_t>(w_count),
      [&](std::size_t w) { return evaluate(proposals[w], cfg_.eval); });
  evals_ += w_count;

  const double temp = temperature(g);
  for (int w = 0; w < w_count; ++w) {
    const std::size_t wi = static_cast<std::size_t>(w);
    const Fitness& f = fits[wi];
    const bool rejected = f.score <= kRejectScore;
    const bool novel =
        !rejected && seen_signatures_.insert(f.signature).second;
    const double adjusted = f.score + (novel ? cfg_.novelty_bonus : 0.0);
    if (!rejected) offer_elite(proposals[wi], f, w);

    Walker& walker = walkers_[wi];
    if (!walker.inited) {
      walker.inited = true;
      walker.current = proposals[wi];
      walker.fitness = f;
      walker.adjusted = adjusted;
      continue;
    }
    if (rejected) continue;
    bool accept = adjusted >= walker.adjusted;
    if (!accept) {
      Rng coin(stream(cfg_.seed, kAcceptSalt, g, w));
      accept = coin.uniform() < std::exp((adjusted - walker.adjusted) / temp);
    }
    if (accept) {
      walker.current = proposals[wi];
      walker.fitness = f;
      walker.adjusted = adjusted;
    }
  }
}

void AdversarySearch::offer_elite(const Candidate& c, const Fitness& f,
                                  int walker) {
  const std::uint64_t key = candidate_hash(c);
  if (!elite_hashes_.insert(key).second) return;  // same adversary, same score
  Elite e;
  e.candidate = c;
  e.fitness = f;
  e.generation = generation_ - 1;
  e.walker = walker;
  elites_.push_back(std::move(e));
  std::stable_sort(elites_.begin(), elites_.end(),
                   [](const Elite& a, const Elite& b) {
                     if (a.fitness.score != b.fitness.score) {
                       return a.fitness.score > b.fitness.score;
                     }
                     if (a.generation != b.generation) {
                       return a.generation < b.generation;
                     }
                     if (a.walker != b.walker) return a.walker < b.walker;
                     return candidate_hash(a.candidate) <
                            candidate_hash(b.candidate);
                   });
  while (static_cast<int>(elites_.size()) > cfg_.elites) {
    elite_hashes_.erase(candidate_hash(elites_.back().candidate));
    elites_.pop_back();
  }
}

}  // namespace timing::adversary

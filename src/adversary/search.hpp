// The hunt: simulated annealing over W independent walkers with a
// shared elite pool and novelty credit.
//
// Each generation every walker proposes one mutation of its current
// candidate (generation 0 proposes fresh random seeds); all W proposals
// are evaluated in parallel via common/parallel's run_trials, then the
// bookkeeping — novelty, Metropolis acceptance, elite insertion — runs
// sequentially in walker order on the calling thread. Every random draw
// comes from a counter-based sub-stream keyed by (generation, walker),
// and the temperature is a pure function of the generation index, so a
// search run is bit-identical for any TIMING_THREADS.
//
// run(evaluations) RAISES A TARGET rather than adding a fixed count:
// run(1000) twice and run(2000) once perform the identical generation
// sequence, which is what makes resumed and single-shot budgets produce
// byte-identical elite pools and archives.
//
// Acceptance uses score + novelty bonus (unseen coverage signature), so
// walkers drift toward unexplored failure shapes; elites rank by RAW
// score only, keeping the archive and the shrinker free of exploration
// noise.
//
// Two proposal kinds besides plain mutation keep the hunt global:
// restarts (probability restart_p: a fresh uniform seed candidate, so
// the search never covers less of the space than sampling does) and
// elite exploits (probability exploit_p: mutate a current elite instead
// of the walker's own chain, concentrating budget around the best basins
// found so far).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "adversary/fitness.hpp"
#include "adversary/mutate.hpp"

namespace timing::adversary {

struct SearchConfig {
  MutationConfig mut;
  EvalConfig eval;
  /// Root of the search's RNG sub-streams (mutations, seeds, acceptance).
  std::uint64_t seed = 1;
  int walkers = 16;
  int elites = 8;
  double t0 = 1.0;       ///< initial temperature (score units: mean rounds)
  double t_min = 0.02;
  double cooling = 0.95; ///< per-generation geometric factor
  double novelty_bonus = 0.25;
  double restart_p = 0.15;  ///< fresh uniform seed instead of a mutation
  double exploit_p = 0.3;   ///< mutate a random current elite instead
};

struct Elite {
  Candidate candidate;
  Fitness fitness;
  long long generation = 0;  ///< when it was found
  int walker = 0;
};

class AdversarySearch {
 public:
  explicit AdversarySearch(SearchConfig cfg);

  /// Raise the evaluation target by `evaluations` and run whole
  /// generations (walkers evaluations each) until it is met. Calling
  /// run(a) then run(b) is byte-identical to run(a + b).
  void run(long long evaluations);

  /// Best-first: descending score, ties to the earlier (generation,
  /// walker), then to the smaller candidate hash.
  const std::vector<Elite>& elites() const noexcept { return elites_; }
  const Elite* best() const noexcept {
    return elites_.empty() ? nullptr : &elites_.front();
  }

  long long evaluations() const noexcept { return evals_; }
  long long generations() const noexcept { return generation_; }
  std::size_t signatures_seen() const noexcept {
    return seen_signatures_.size();
  }
  double temperature(long long generation) const noexcept;

 private:
  void step();
  void offer_elite(const Candidate& c, const Fitness& f, int walker);

  struct Walker {
    bool inited = false;
    Candidate current;
    Fitness fitness;
    double adjusted = kRejectScore;  ///< score + novelty at acceptance time
  };

  SearchConfig cfg_;
  std::vector<Walker> walkers_;
  std::vector<Elite> elites_;
  std::unordered_set<std::uint64_t> seen_signatures_;
  std::unordered_set<std::uint64_t> elite_hashes_;
  long long generation_ = 0;
  long long evals_ = 0;
  long long target_ = 0;
};

}  // namespace timing::adversary

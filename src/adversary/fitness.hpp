// Fitness: what makes one adversary worse (better) than another.
//
// A candidate is scored by `samples` deterministic chaos executions
// (fault::run_chaos_algorithm) under a FIXED family of evaluation seeds
// shared by every candidate in a search — plans compete on structure,
// not on lucky pre-gsr schedules. A single integer decision delay under
// a single seed turned out to be a nearly flat, noise-dominated fitness
// landscape: best-of-N uniform sampling wins that race on extreme-value
// luck alone. Averaging the *per-process* decision delays over several
// seeds compresses the luck (the noise shrinks like 1/sqrt(samples))
// while the structural signal — what the schedule does to the protocol
// state carried across gsr — survives and becomes climbable. The score
// is tiered:
//
//   safety violation    kSafetyScore  + delay   (immediate elite: the
//                                                search found a bug)
//   liveness violation  kLivenessScore + delay  (decided past the bound,
//                                                or never while owed)
//   ordinary            delay = mean per-correct-process decision round
//                               minus gsr, averaged over the samples
//   unsupported matrix  kRejectScore  (liveness was never owed — an
//                                      infinite "delay" that means
//                                      nothing; the walker discards it)
//
// Each evaluation also produces a coverage signature: a stable hash of
// the run's failure *shape* drawn from the recorded trace (fault kinds
// actually fired, oracle leader-span count, message-fate fractions,
// per-class csat conformance buckets, outcome tier). The search grants
// novelty credit for unseen signatures so it keeps exploring distinct
// shapes instead of re-finding one; the signature deliberately excludes
// the exact delay, which the score already carries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adversary/candidate.hpp"
#include "consensus/factory.hpp"
#include "obs/trace_analysis.hpp"

namespace timing::adversary {

inline constexpr double kSafetyScore = 1e6;
inline constexpr double kLivenessScore = 1e3;
inline constexpr double kRejectScore = -1e9;

struct EvalConfig {
  AlgorithmKind algorithm = AlgorithmKind::kPaxos;
  int n = 5;
  ProcessId leader = 0;
  /// Pre-gsr per-link timeliness of the underlying schedule.
  double pre_gsr_p = 0.4;
  /// Root of the seed family every candidate (and the uniform baseline)
  /// runs under; sample 0 uses it verbatim (so a quoted trial seed plus
  /// samples=1 replays that exact trial), sample j > 0 uses
  /// substream_seed(eval_seed, j).
  std::uint64_t eval_seed = 1;
  /// Chaos executions averaged per evaluation. More samples = smoother,
  /// more structural fitness at proportionally higher cost.
  int samples = 5;
  /// Floor for the per-run round cap; the evaluator always extends it
  /// past gsr + bound_after_gsr so undecided is distinguishable.
  int min_rounds = 80;
};

struct Fitness {
  bool supported = true;        ///< reliable plane carries the model
  bool safety_violation = false;   ///< any sample violated safety
  bool liveness_violation = false; ///< any sample violated liveness
  /// Global decision round of the PRIMARY sample (j = 0); -1 = undecided.
  Round decision_round = -1;
  /// Mean decision delay: per correct process, decision round minus gsr
  /// (or the proven floor max_rounds - gsr if it never decided),
  /// averaged over processes and samples. Fractional on purpose — the
  /// dense signal is what makes the landscape climbable.
  double delay = 0.0;
  double score = kRejectScore;
  std::uint64_t signature = 0;  ///< coverage fingerprint over all samples
  /// The chaos harness's replayable report from the first violating
  /// sample, if any.
  std::string violation;

  bool operator==(const Fitness&) const = default;
};

/// `cfg.samples` deterministic chaos executions; pure in (candidate,
/// cfg). `traces`, when given, receives one TrialTrace per sample — the
/// same events the coverage signature is computed from — so `timing_lab
/// replay` can record a JSONL trace for offline re-verification.
Fitness evaluate(const Candidate& candidate, const EvalConfig& cfg,
                 std::vector<TrialTrace>* traces = nullptr);

/// "safety" | "liveness" | "decided" | "undecided" | "unsupported" —
/// stable strings shared by the scenario tables, the archive format and
/// `timing_lab replay`.
const char* verdict_string(const Fitness& f) noexcept;

}  // namespace timing::adversary

#include "adversary/fitness.hpp"

#include <algorithm>
#include <array>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "fault/chaos.hpp"
#include "obs/jsonl.hpp"
#include "obs/trace_analysis.hpp"
#include "obs/trace_sink.hpp"

namespace timing::adversary {

namespace {

void sig_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}

/// Fraction -> 0..8 bucket (9 shapes), denominator-safe.
std::uint64_t bucket8(long long part, long long whole) noexcept {
  if (whole <= 0) return 15;  // sentinel: no data of this kind
  return static_cast<std::uint64_t>((part * 8) / whole);
}

/// The failure-shape fingerprint. Uses the same TrialSummary schema the
/// offline `trace_tool summary --json` output exposes, so external
/// tooling can reproduce signatures from a recorded trace.
std::uint64_t coverage_signature(const TrialSummary& s,
                                 const fault::ChaosRunResult& r,
                                 Round gsr) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  sig_mix(h, static_cast<std::uint64_t>(
                 std::min<long long>(s.fault_events, 255) / 16));
  sig_mix(h, static_cast<std::uint64_t>(
                 std::min<std::size_t>(s.leader_spans.size(), 15)));
  const long long fates = s.totals.timely + s.totals.late + s.totals.lost;
  sig_mix(h, bucket8(s.totals.lost, fates));
  sig_mix(h, bucket8(s.totals.late, fates));
  for (int c = 0; c < kTraceNumLinkClasses; ++c) {
    sig_mix(h, bucket8(s.class_sat_rounds[static_cast<std::size_t>(c)],
                       s.granular_rounds));
  }
  sig_mix(h, static_cast<std::uint64_t>(s.crashes.size()));
  // Outcome tier, not the exact delay.
  std::uint64_t outcome = 0;
  if (!r.safety_ok) {
    outcome = 4;
  } else if (!r.liveness_ok) {
    outcome = 3;
  } else if (r.global_decision_round < 0) {
    outcome = 2;
  } else {
    outcome = r.global_decision_round <= gsr ? 0 : 1;
  }
  sig_mix(h, outcome);
  return h;
}

/// Fault kinds fired, straight off the injection events.
std::uint64_t fired_kind_mask(const std::vector<TraceEvent>& events) {
  std::uint64_t mask = 0;
  for (const TraceEvent& e : events) {
    if (e.kind == EventKind::kFaultInjected) {
      mask |= 1ull << (e.rule & 63);
    }
  }
  return mask;
}

}  // namespace

Fitness evaluate(const Candidate& candidate, const EvalConfig& cfg,
                 std::vector<TrialTrace>* traces) {
  TM_CHECK(candidate.plan.gsr >= 1, "candidates need a gsr marker");
  TM_CHECK(cfg.samples >= 1, "evaluation needs at least one sample");
  const Round gsr = candidate.plan.gsr;

  // Processes the plan crashes for good are not correct; liveness (and
  // hence decision delay) is not owed to them.
  std::vector<bool> dead(static_cast<std::size_t>(cfg.n), false);
  for (const fault::FaultEvent& e : candidate.plan.events) {
    if (e.kind == fault::FaultKind::kCrash) {
      dead[static_cast<std::size_t>(e.proc)] = true;
    } else if (e.kind == fault::FaultKind::kRecover) {
      dead[static_cast<std::size_t>(e.proc)] = false;
    }
  }
  int correct = 0;
  for (bool d : dead) correct += d ? 0 : 1;
  TM_CHECK(correct >= 1, "validate() guarantees a correct majority");

  Fitness f;
  f.signature = 0xcbf29ce484222325ull;
  double delay_sum = 0.0;
  for (int j = 0; j < cfg.samples; ++j) {
    fault::ChaosTrialConfig tc;
    tc.n = cfg.n;
    tc.leader = cfg.leader;
    // Sample 0 runs the root seed verbatim: the seed a chaos violation
    // report quotes replays that exact trial via samples=1.
    tc.seed = j == 0 ? cfg.eval_seed
                     : substream_seed(cfg.eval_seed,
                                      static_cast<std::uint64_t>(j));
    tc.pre_gsr_p = cfg.pre_gsr_p;
    tc.plan = candidate.plan;
    tc.link_models = candidate.link_models;
    tc.max_rounds = std::max(
        cfg.min_rounds,
        candidate.plan.gsr + fault::bound_after_gsr(cfg.algorithm) + 2);
    BufferSink sink;
    tc.trace = &sink;
    const fault::ChaosRunResult r =
        fault::run_chaos_algorithm(cfg.algorithm, tc);

    TrialTrace trial;
    trial.id = j;
    trial.n = cfg.n;
    trial.events = sink.events();
    const std::array<int, kTraceNumModels> needed{3, 3, 4, 5};
    const TrialSummary summary = summarize_trial(trial, cfg.n, needed);
    sig_mix(f.signature, coverage_signature(summary, r, gsr));
    sig_mix(f.signature, fired_kind_mask(trial.events));

    f.supported = f.supported && r.liveness_enforced;
    if (!r.safety_ok && !f.safety_violation) {
      f.safety_violation = true;
      f.violation = r.violation;
    }
    if (!r.liveness_ok && !f.liveness_violation) {
      f.liveness_violation = true;
      if (f.violation.empty()) f.violation = r.violation;
    }
    if (j == 0) f.decision_round = r.global_decision_round;

    // Dense delay: every correct process contributes its own decision
    // round (the proven floor max_rounds when it never decided).
    std::vector<Round> decided_at(static_cast<std::size_t>(cfg.n), -1);
    for (const TraceEvent& e : trial.events) {
      if (e.kind != EventKind::kDecide) continue;
      if (e.proc < 0 || e.proc >= cfg.n) continue;
      auto& slot = decided_at[static_cast<std::size_t>(e.proc)];
      if (slot < 0) slot = e.round;
    }
    for (ProcessId p = 0; p < cfg.n; ++p) {
      if (dead[static_cast<std::size_t>(p)]) continue;
      const Round d = decided_at[static_cast<std::size_t>(p)];
      delay_sum += static_cast<double>((d >= 0 ? d : tc.max_rounds) - gsr);
    }
    if (traces != nullptr) traces->push_back(std::move(trial));
  }
  f.delay = delay_sum / (static_cast<double>(correct) * cfg.samples);

  if (!f.supported && !f.safety_violation) {
    // Liveness was never owed; "delay" would be unbounded and empty.
    f.delay = 0.0;
    f.score = kRejectScore;
    return f;
  }
  if (f.safety_violation) {
    f.score = kSafetyScore + f.delay;
  } else if (f.liveness_violation) {
    f.score = kLivenessScore + f.delay;
  } else {
    f.score = f.delay;
  }
  return f;
}

const char* verdict_string(const Fitness& f) noexcept {
  if (f.safety_violation) return "safety";
  if (!f.supported) return "unsupported";
  if (f.liveness_violation) return "liveness";
  if (f.decision_round < 0) return "undecided";
  return "decided";
}

}  // namespace timing::adversary

// The adversary archive: minimized hunt winners as regression fixtures.
//
// Each entry is one file that is simultaneously a valid fault-plan file
// (the plan parser skips '#' comment lines) and a self-describing
// record of the evaluation it must reproduce:
//
//   # adversary v1
//   # algorithm=paxos n=5 leader=0 pre_gsr_p=0.4 eval_seed=123 samples=5 min_rounds=80
//   # link_models=sync:all
//   # verdict=decided delay=8.2 decision_round=25 score=8.2
//   suppress_leader @6..9
//   gsr @9
//
// `timing_lab replay <file>` and the chaos/regression scenario re-run
// the recorded (algorithm, n, leader, pre_gsr_p, eval_seed) evaluation
// and compare verdict, decision round and score against the header —
// evaluation is a pure function, so any divergence is a behavior change
// in the engine, the injector or the protocol, which is exactly what a
// regression gate is for. Files sort by name on load, so archive order
// (and therefore every report built from it) is deterministic.
#pragma once

#include <string>
#include <vector>

#include "adversary/fitness.hpp"

namespace timing::adversary {

struct ArchiveEntry {
  std::string name;  ///< file stem (set by load/write)
  EvalConfig eval;   ///< the recorded evaluation configuration
  Candidate candidate;
  /// Recorded outcome the replay must reproduce.
  std::string verdict;
  double delay = 0.0;
  Round decision_round = -1;
  double score = 0.0;
};

/// Entry from a finished evaluation (name left empty until written).
ArchiveEntry make_archive_entry(const Candidate& c, const Fitness& f,
                                const EvalConfig& eval);

/// Deterministic file stem: "<algorithm>-<candidate hash hex>".
std::string entry_stem(const ArchiveEntry& e);

/// The full file text (header comments + canonical plan spec).
std::string format_archive_entry(const ArchiveEntry& e);

/// Parse a full file text; "" on success. Validates the plan against the
/// recorded n/leader and parses link_models with the recorded n.
std::string parse_archive_entry(const std::string& text, ArchiveEntry& out);

/// Quick sniff: does this text carry the archive header?
bool is_archive_text(const std::string& text);

/// Write `<dir>/<entry_stem>.plan` (creating dir); "" on success, else an
/// error message. `path_out`, when given, receives the file path.
std::string write_archive_entry(const std::string& dir, const ArchiveEntry& e,
                                std::string* path_out = nullptr);

/// Load every *.plan in `dir`, sorted by file name; "" on success.
std::string load_archive(const std::string& dir,
                         std::vector<ArchiveEntry>& out);

}  // namespace timing::adversary

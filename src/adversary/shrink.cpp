#include "adversary/shrink.hpp"

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace timing::adversary {

namespace {

using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultPlan;

bool windowed(FaultKind k) {
  return k == FaultKind::kPartition || k == FaultKind::kDrop ||
         k == FaultKind::kDelay || k == FaultKind::kSuppressLeader;
}

std::size_t recover_of(const FaultPlan& p, std::size_t crash_idx) {
  for (std::size_t j = crash_idx + 1; j < p.events.size(); ++j) {
    if (p.events[j].kind == FaultKind::kRecover &&
        p.events[j].proc == p.events[crash_idx].proc) {
      return j;
    }
  }
  return p.events.size();
}

}  // namespace

ShrinkResult shrink(const Candidate& start, const MutationConfig& mcfg,
                    const EvalConfig& ecfg) {
  ShrinkResult out;
  out.candidate = start;
  out.candidate.plan.source = out.candidate.plan.spec();
  out.fitness = evaluate(out.candidate, ecfg);
  out.evaluations = 1;
  double target = out.fitness.score;

  // Try one edit; adopt it when it validates and loses no score.
  auto attempt = [&](Candidate next) -> bool {
    next.plan.source = next.plan.spec();
    if (!fault::validate(next.plan, mcfg.n, mcfg.leader).empty()) return false;
    const Fitness f = evaluate(next, ecfg);
    ++out.evaluations;
    if (f.score < target) return false;
    target = f.score;
    out.candidate = std::move(next);
    out.fitness = f;
    ++out.steps;
    return true;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    const FaultPlan& plan = out.candidate.plan;

    // 1. Drop whole statements, largest simplification first.
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
      if (plan.events[i].kind == FaultKind::kGsr) continue;
      Candidate next = out.candidate;
      if (plan.events[i].kind == FaultKind::kCrash) {
        const std::size_t j = recover_of(plan, i);
        if (j < plan.events.size()) {
          next.plan.events.erase(next.plan.events.begin() +
                                 static_cast<std::ptrdiff_t>(j));
        }
      }
      next.plan.events.erase(next.plan.events.begin() +
                             static_cast<std::ptrdiff_t>(i));
      if (attempt(std::move(next))) {
        changed = true;
        break;
      }
    }
    if (changed) continue;

    // 2. Narrow windows one round from either end.
    for (std::size_t i = 0; i < plan.events.size() && !changed; ++i) {
      if (!windowed(plan.events[i].kind)) continue;
      if (plan.events[i].to - plan.events[i].from <= 1) continue;
      for (int end = 0; end < 2 && !changed; ++end) {
        Candidate next = out.candidate;
        FaultEvent& e = next.plan.events[i];
        if (end == 0) {
          e.from += 1;
        } else {
          e.to -= 1;
        }
        changed = attempt(std::move(next));
      }
    }
    if (changed) continue;

    // 3. Pull stabilization earlier (a stronger adversary: the same
    // delay with less pre-gsr runway).
    if (plan.gsr > 3) {
      Candidate next = out.candidate;
      next.plan.gsr -= 1;
      next.plan.events.back().from = next.plan.gsr;
      changed = attempt(std::move(next));
    }
    if (changed) continue;

    // 4. Upgrade degraded links back toward sync.
    for (ProcessId d = 0; d < mcfg.n && !changed; ++d) {
      for (ProcessId s = 0; s < mcfg.n && !changed; ++s) {
        if (d == s) continue;
        const LinkModelClass cls = out.candidate.link_models.at(d, s);
        if (cls == LinkModelClass::kSync) continue;
        Candidate next = out.candidate;
        next.link_models.set(d, s,
                             static_cast<LinkModelClass>(
                                 static_cast<int>(cls) - 1));
        changed = attempt(std::move(next));
      }
    }
  }
  return out;
}

PolishResult polish(const Candidate& start, const MutationConfig& mcfg,
                    const EvalConfig& ecfg, std::uint64_t seed, int budget) {
  PolishResult out;
  out.candidate = start;
  out.fitness = evaluate(start, ecfg);
  Rng rng(seed);
  for (int i = 0; i < budget; ++i) {
    Candidate next = mutate(out.candidate, mcfg, rng);
    if (structurally_equal(next, out.candidate)) continue;  // no eval spent
    const Fitness f = evaluate(next, ecfg);
    ++out.evaluations;
    if (f.score >= out.fitness.score) {
      if (f.score > out.fitness.score) ++out.improvements;
      out.candidate = std::move(next);
      out.fitness = f;
    }
  }
  return out;
}

}  // namespace timing::adversary

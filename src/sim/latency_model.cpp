#include "sim/latency_model.hpp"

#include <array>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace timing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::string LatencyModel::node_name(ProcessId i) const {
  return "node" + std::to_string(i);
}

// ---------------------------------------------------------------- IID --

IidLatencyModel::IidLatencyModel(int n, double p, std::uint64_t seed,
                                 double loss_share, double timeout_ms)
    : n_(n), p_(p), loss_share_(loss_share), timeout_ms_(timeout_ms),
      rng_(seed) {
  TM_CHECK(n > 1, "IID model needs n > 1");
  TM_CHECK(p >= 0.0 && p <= 1.0, "p must be a probability");
}

void IidLatencyModel::begin_round(Round) {}

double IidLatencyModel::sample_ms(ProcessId, ProcessId) {
  if (rng_.bernoulli(p_)) return 0.5 * timeout_ms_;
  if (rng_.bernoulli(loss_share_)) return kInf;
  // Late by a geometric number of rounds: most stragglers arrive soon.
  double lateness = 1.0;
  while (rng_.bernoulli(0.4) && lateness < 16.0) lateness += 1.0;
  return (lateness + 0.5) * timeout_ms_;
}

// ---------------------------------------------------------------- LAN --

LanLatencyModel::LanLatencyModel(LanProfile profile, std::uint64_t seed)
    : profile_(profile), rng_(seed) {
  TM_CHECK(profile_.n > 1, "LAN model needs n > 1");
}

void LanLatencyModel::begin_round(Round) {
  if (in_burst_) {
    if (rng_.bernoulli(profile_.burst_exit_prob)) in_burst_ = false;
  } else if (rng_.bernoulli(profile_.burst_enter_prob)) {
    in_burst_ = true;
  }
  if (slow_episode_) {
    if (rng_.bernoulli(profile_.slow_exit_prob)) slow_episode_ = false;
  } else if (rng_.bernoulli(profile_.slow_enter_prob)) {
    slow_episode_ = true;
  }
}

double LanLatencyModel::sample_ms(ProcessId src, ProcessId dst) {
  if (src == dst) return 0.0;
  if (rng_.bernoulli(profile_.loss_prob)) return kInf;
  double ms = profile_.base_ms +
              rng_.lognormal(profile_.lognormal_mu, profile_.lognormal_sigma);
  ms *= profile_.node_factor[src % 8] * profile_.node_factor[dst % 8];
  if (in_burst_) ms *= profile_.burst_factor;
  if (slow_episode_ && dst == profile_.slow_node) ms *= profile_.slow_factor;
  return ms;
}

// ---------------------------------------------------------------- WAN --

namespace {

// Site order: 0 CH (Switzerland), 1 JP (Japan), 2 CA (California, US),
// 3 GA (Georgia, US), 4 CN (China), 5 PL (Poland), 6 UK, 7 SE (Sweden).
constexpr std::array<const char*, 8> kSiteNames = {
    "CH", "JP", "CA-US", "GA-US", "CN", "PL", "UK", "SE"};

// Median one-way latencies (ms), PlanetLab era. Symmetric. The UK site
// has unusually good long-haul links (dedicated research-network routes
// to JP/CN), which is why the paper's offline ping-based election picks
// it: its worst-case RTT beats every other site's (see the
// WellConnectedElectionPicksUk test).
constexpr double kBaseMs[8][8] = {
    //  CH    JP    CA    GA    CN    PL    UK    SE
    { 0.1,  135,   80,   55,  140,   22,   10,   22},  // CH
    { 135,  0.1,   60,   85,   35,  140,   95,  138},  // JP
    {  80,   60,  0.1,   30,  110,   90,   72,   85},  // CA
    {  55,   85,   30,  0.1,  110,   65,   48,   58},  // GA
    { 140,   35,  110,  110,  0.1,  140,   95,  135},  // CN
    {  22,  140,   90,   65,  140,  0.1,   24,   18},  // PL
    {  10,   95,   72,   48,   95,   24,  0.1,   14},  // UK
    {  22,  138,   85,   58,  135,   18,   14,  0.1},  // SE
};

// G = good, M = medium, B = bad. Intra-Europe and CA-GA are good; links
// touching the UK are at worst medium; remaining intercontinental links
// involving JP/CN are bad; US<->Europe are medium.
constexpr char kQuality[8][8] = {
    //  CH   JP   CA   GA   CN   PL   UK   SE
    { 'G', 'B', 'M', 'M', 'B', 'G', 'G', 'G'},  // CH
    { 'B', 'G', 'M', 'B', 'M', 'B', 'M', 'B'},  // JP
    { 'M', 'M', 'G', 'G', 'B', 'M', 'M', 'M'},  // CA
    { 'M', 'B', 'G', 'G', 'B', 'M', 'M', 'M'},  // GA
    { 'B', 'M', 'B', 'B', 'G', 'B', 'M', 'B'},  // CN
    { 'G', 'B', 'M', 'M', 'B', 'G', 'G', 'G'},  // PL
    { 'G', 'M', 'M', 'M', 'M', 'G', 'G', 'G'},  // UK
    { 'G', 'B', 'M', 'M', 'B', 'G', 'G', 'G'},  // SE
};

}  // namespace

WanLatencyModel::WanLatencyModel(WanProfile profile, std::uint64_t seed)
    : profile_(profile), rng_(seed) {
  TM_CHECK(profile_.n == 8, "the WAN profile models exactly 8 sites");
  slow_run_ = rng_.bernoulli(profile_.slow_run_prob);
  run_jitter_ = rng_.lognormal(0.0, profile_.run_jitter_sigma);
}

std::string WanLatencyModel::node_name(ProcessId i) const {
  return kSiteNames[static_cast<std::size_t>(i)];
}

double WanLatencyModel::base_ms(ProcessId src, ProcessId dst) const noexcept {
  return kBaseMs[src][dst];
}

LinkQuality WanLatencyModel::quality(ProcessId src,
                                     ProcessId dst) const noexcept {
  switch (kQuality[src][dst]) {
    case 'G': return LinkQuality::kGood;
    case 'M': return LinkQuality::kMedium;
    default: return LinkQuality::kBad;
  }
}

void WanLatencyModel::begin_round(Round) {
  if (slow_run_) {
    if (slow_episode_) {
      if (rng_.bernoulli(profile_.slow_exit_prob)) slow_episode_ = false;
    } else if (rng_.bernoulli(profile_.slow_enter_prob)) {
      slow_episode_ = true;
    }
  }
  if (out_burst_) {
    if (rng_.bernoulli(profile_.burst_exit_prob)) out_burst_ = false;
  } else if (rng_.bernoulli(profile_.burst_enter_prob)) {
    out_burst_ = true;
  }
}

double WanLatencyModel::sample_ms(ProcessId src, ProcessId dst) {
  if (src == dst) return 0.0;
  const LinkNoise& noise = [&]() -> const LinkNoise& {
    switch (quality(src, dst)) {
      case LinkQuality::kGood: return profile_.good;
      case LinkQuality::kMedium: return profile_.medium;
      default: return profile_.bad;
    }
  }();
  if (rng_.bernoulli(noise.loss_prob)) return kInf;
  double ms =
      base_ms(src, dst) * run_jitter_ * rng_.lognormal(0.0, noise.jitter_sigma);
  if (rng_.bernoulli(noise.spike_prob)) {
    ms *= rng_.pareto(profile_.spike_pareto_xm, profile_.spike_pareto_alpha);
  }
  if (slow_episode_ && dst == profile_.slow_inbound_node) {
    ms += profile_.slow_extra_ms;
  }
  if (out_burst_ && src == profile_.bursty_outbound_node) {
    ms += profile_.burst_extra_ms;
  }
  return ms;
}

}  // namespace timing

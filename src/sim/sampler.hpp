// Timeliness samplers: produce the per-round link matrix A consumed by the
// round engine and by the model predicates.
//
// Two families:
//  * LatencyTimelinessSampler - wraps a LatencyModel and a timeout; a
//    message is timely iff its sampled latency is within the timeout
//    (the paper: "a message is considered to arrive in a communication
//    round if its latency is less than the timeout").
//  * Schedule-based samplers live in src/models (they need the model
//    definitions to construct conforming/adversarial rounds).
//
// Every sampler also fills the packed bit-plane representation
// (PackedLinkMatrix); the two concrete samplers here additionally provide
// the fused sample-and-evaluate kernel: one pass that draws the round's
// fates AND computes the four-model predicate bitmask, without touching
// the int16 delay plane unless a late/lost fate is actually drawn. The
// fused path consumes the RNG in exactly the per-cell order of the scalar
// sample_round, so for the same sub-stream it reproduces the exact same
// matrices (asserted by tests/predicate_kernel_test.cpp).
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "sim/latency_model.hpp"
#include "sim/link_matrix.hpp"
#include "sim/packed_eval.hpp"

namespace timing {

/// Result of one fused sample-and-evaluate round: the packed predicate
/// bitmask (kPackedEsBit.. order, equal to models/evaluate_all) plus the
/// off-diagonal message-fate tallies of the round.
struct FusedRoundEval {
  std::uint8_t mask = 0;
  long long timely = 0;
  long long late = 0;
  long long lost = 0;
};

class TimelinessSampler {
 public:
  virtual ~TimelinessSampler() = default;
  virtual int n() const noexcept = 0;
  /// Fill `out` (resized by caller to n x n) with the fates of the round-k
  /// messages. Must be called with strictly increasing k.
  virtual void sample_round(Round k, LinkMatrix& out) = 0;

  /// Packed-plane variant. The default samples into a per-thread scratch
  /// LinkMatrix and packs it (same RNG consumption, so same fates); the
  /// concrete samplers below fill the bit plane directly.
  virtual void sample_round(Round k, PackedLinkMatrix& out);

  /// Fused kernel: one pass that samples round k into `out` AND evaluates
  /// the four failure-free model predicates for `leader`, tallying the
  /// message fates. Default = packed sample_round + packed_evaluate_mask
  /// + a complement scan for the tallies; IID and latency samplers fuse
  /// the evaluation into the sampling loop itself. `cols` is reusable
  /// scratch (see ColumnDeficits).
  virtual FusedRoundEval sample_round_and_evaluate(Round k, ProcessId leader,
                                                   PackedLinkMatrix& out,
                                                   ColumnDeficits& cols);
};

/// Off-diagonal fate tallies of an already-sampled packed round: timely
/// from popcounts, late/lost from the (rare) complement bits.
void tally_fates(const PackedLinkMatrix& a, FusedRoundEval& eval);

/// Observer invoked for every sampled latency; used by the harness to
/// measure p (the fraction of timely messages) alongside the matrices.
using LatencySink =
    std::function<void(ProcessId src, ProcessId dst, double ms)>;

class LatencyTimelinessSampler final : public TimelinessSampler {
 public:
  /// `max_delay_rounds` caps how long a straggler stays in flight before
  /// we count it as lost (keeps engine queues bounded).
  LatencyTimelinessSampler(LatencyModel& model, double timeout_ms,
                           int max_delay_rounds = 64);

  int n() const noexcept override { return model_.n(); }
  void sample_round(Round k, LinkMatrix& out) override;
  void sample_round(Round k, PackedLinkMatrix& out) override;
  FusedRoundEval sample_round_and_evaluate(Round k, ProcessId leader,
                                           PackedLinkMatrix& out,
                                           ColumnDeficits& cols) override;

  void set_latency_sink(LatencySink sink) { sink_ = std::move(sink); }
  double timeout_ms() const noexcept { return timeout_ms_; }

 private:
  /// Fate of one sampled latency (kLost / 0 / rounds late).
  Delay classify(double ms) const noexcept;

  LatencyModel& model_;
  double timeout_ms_;
  int max_delay_rounds_;
  LatencySink sink_;
};

/// Direct Bernoulli sampler: entry timely with probability p, otherwise
/// late by a geometric number of rounds or lost. This is the Section 4
/// IID world without the latency detour.
class IidTimelinessSampler final : public TimelinessSampler {
 public:
  IidTimelinessSampler(int n, double p, std::uint64_t seed,
                       double loss_share = 0.25);

  int n() const noexcept override { return n_; }
  void sample_round(Round k, LinkMatrix& out) override;
  void sample_round(Round k, PackedLinkMatrix& out) override;
  FusedRoundEval sample_round_and_evaluate(Round k, ProcessId leader,
                                           PackedLinkMatrix& out,
                                           ColumnDeficits& cols) override;

 private:
  /// Late-or-lost fate draw shared by all three entry points (keeps the
  /// RNG consumption identical across them).
  Delay untimely_fate();

  int n_;
  double p_;
  double loss_share_;
  Rng rng_;
};

}  // namespace timing

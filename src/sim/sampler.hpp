// Timeliness samplers: produce the per-round link matrix A consumed by the
// round engine and by the model predicates.
//
// Two families:
//  * LatencyTimelinessSampler - wraps a LatencyModel and a timeout; a
//    message is timely iff its sampled latency is within the timeout
//    (the paper: "a message is considered to arrive in a communication
//    round if its latency is less than the timeout").
//  * Schedule-based samplers live in src/models (they need the model
//    definitions to construct conforming/adversarial rounds).
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "sim/latency_model.hpp"
#include "sim/link_matrix.hpp"

namespace timing {

class TimelinessSampler {
 public:
  virtual ~TimelinessSampler() = default;
  virtual int n() const noexcept = 0;
  /// Fill `out` (resized by caller to n x n) with the fates of the round-k
  /// messages. Must be called with strictly increasing k.
  virtual void sample_round(Round k, LinkMatrix& out) = 0;
};

/// Observer invoked for every sampled latency; used by the harness to
/// measure p (the fraction of timely messages) alongside the matrices.
using LatencySink =
    std::function<void(ProcessId src, ProcessId dst, double ms)>;

class LatencyTimelinessSampler final : public TimelinessSampler {
 public:
  /// `max_delay_rounds` caps how long a straggler stays in flight before
  /// we count it as lost (keeps engine queues bounded).
  LatencyTimelinessSampler(LatencyModel& model, double timeout_ms,
                           int max_delay_rounds = 64);

  int n() const noexcept override { return model_.n(); }
  void sample_round(Round k, LinkMatrix& out) override;

  void set_latency_sink(LatencySink sink) { sink_ = std::move(sink); }
  double timeout_ms() const noexcept { return timeout_ms_; }

 private:
  LatencyModel& model_;
  double timeout_ms_;
  int max_delay_rounds_;
  LatencySink sink_;
};

/// Direct Bernoulli sampler: entry timely with probability p, otherwise
/// late by a geometric number of rounds or lost. This is the Section 4
/// IID world without the latency detour.
class IidTimelinessSampler final : public TimelinessSampler {
 public:
  IidTimelinessSampler(int n, double p, std::uint64_t seed,
                       double loss_share = 0.25);

  int n() const noexcept override { return n_; }
  void sample_round(Round k, LinkMatrix& out) override;

 private:
  int n_;
  double p_;
  double loss_share_;
  Rng rng_;
};

}  // namespace timing

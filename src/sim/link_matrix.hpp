// The per-round communication matrix A of Section 4.1.
//
// Rows are destinations, columns are sources (as in the paper). Instead of
// only 0/1 we record the *fate* of a message sent on the link in this
// round: delivered timely (delay 0), delivered d >= 1 rounds late, or lost.
// The analysis only distinguishes timely vs not; algorithm executions also
// exercise late deliveries (indulgence).
//
// Two representations share this file:
//  * LinkMatrix       - one int16 fate per cell; the original layout, kept
//                       as the oracle for the packed fast path;
//  * PackedLinkMatrix - the timely/not-timely bit plane as uint64 row
//                       words (bit src of row dst == A_{dst,src}) next to
//                       a lazily allocated delay plane that only holds the
//                       cells whose bit is 0. Predicates become popcounts
//                       and word compares, and the common all-timely case
//                       never touches the int16 plane at all.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace timing {

/// Fate of one message: number of rounds of extra delay. 0 = timely
/// (arrives in the round it was sent, i.e. A entry = 1).
using Delay = std::int16_t;

/// Sentinel: the message never arrives.
inline constexpr Delay kLost = -1;

class LinkMatrix {
 public:
  LinkMatrix() = default;
  explicit LinkMatrix(int n, Delay fill = 0)
      : n_(n), cells_(static_cast<std::size_t>(n) * n, fill) {}

  int n() const noexcept { return n_; }

  Delay at(ProcessId dst, ProcessId src) const noexcept {
    return cells_[static_cast<std::size_t>(dst) * n_ + src];
  }
  void set(ProcessId dst, ProcessId src, Delay d) noexcept {
    cells_[static_cast<std::size_t>(dst) * n_ + src] = d;
  }

  /// A_{dst,src} = 1 in the paper's notation.
  bool timely(ProcessId dst, ProcessId src) const noexcept {
    return at(dst, src) == 0;
  }

  void fill(Delay d) noexcept {
    for (auto& c : cells_) c = d;
  }

  /// Number of timely incoming links of `dst` (a full row of ones count);
  /// includes the self link, matching the paper ("p's link with itself
  /// counts towards the count").
  int timely_into(ProcessId dst) const noexcept {
    int c = 0;
    for (ProcessId s = 0; s < n_; ++s) c += timely(dst, s) ? 1 : 0;
    return c;
  }

  /// Number of timely outgoing links of `src` (column count), incl. self.
  int timely_out_of(ProcessId src) const noexcept {
    int c = 0;
    for (ProcessId d = 0; d < n_; ++d) c += timely(d, src) ? 1 : 0;
    return c;
  }

  /// Fraction of timely entries over all n^2 entries. Counted and divided
  /// in std::size_t: n^2 overflows int already at n = 46341 (group-size
  /// sweeps run far past paper scale).
  double timely_fraction() const noexcept {
    if (n_ == 0) return 0.0;
    std::size_t c = 0;
    for (ProcessId d = 0; d < n_; ++d) {
      c += static_cast<std::size_t>(timely_into(d));
    }
    return static_cast<double>(c) /
           static_cast<double>(static_cast<std::size_t>(n_) * n_);
  }

 private:
  int n_ = 0;
  std::vector<Delay> cells_;
};

/// Bit-plane representation of the same matrix. Row `dst` is
/// `words_per_row()` uint64 words; bit `src % 64` of word `src / 64` is 1
/// iff the link (dst <- src) is timely this round. Unused tail bits of the
/// last word are always 0 (popcount invariant). The delay plane stores the
/// fate of not-timely cells only and is allocated on first use, so
/// all-timely rounds stay within the bit plane.
class PackedLinkMatrix {
 public:
  static constexpr int kWordBits = 64;

  PackedLinkMatrix() = default;
  explicit PackedLinkMatrix(int n, Delay fill_value = 0)
      : n_(n), words_((n + kWordBits - 1) / kWordBits),
        bits_(static_cast<std::size_t>(n) * words_, 0) {
    TM_CHECK(n >= 0, "negative matrix size");
    fill(fill_value);
  }

  int n() const noexcept { return n_; }
  int words_per_row() const noexcept { return words_; }

  /// Valid-bit mask of word `w` of any row (partial for the last word).
  std::uint64_t word_mask(int w) const noexcept {
    const int bits = n_ - w * kWordBits;
    return bits >= kWordBits ? ~0ULL : (1ULL << bits) - 1;
  }

  const std::uint64_t* row_words(ProcessId dst) const noexcept {
    return bits_.data() + static_cast<std::size_t>(dst) * words_;
  }
  /// Mutable row access for samplers that assemble rows word-by-word.
  /// Callers must keep tail bits zero and the delay plane consistent
  /// (store_untimely for every cleared bit they later read back).
  std::uint64_t* mutable_row_words(ProcessId dst) noexcept {
    return bits_.data() + static_cast<std::size_t>(dst) * words_;
  }

  bool timely(ProcessId dst, ProcessId src) const noexcept {
    return (row_words(dst)[src / kWordBits] >>
            (static_cast<unsigned>(src) % kWordBits)) &
           1u;
  }

  /// Exact fate, identical to the scalar LinkMatrix: the bit plane wins
  /// (a set bit means 0 regardless of stale delay-plane contents).
  Delay at(ProcessId dst, ProcessId src) const noexcept {
    if (timely(dst, src)) return 0;
    return delays_[static_cast<std::size_t>(dst) * n_ + src];
  }

  void set(ProcessId dst, ProcessId src, Delay d) {
    if (d == 0) {
      set_timely(dst, src);
    } else {
      set_untimely(dst, src, d);
    }
  }

  /// Fast path: mark the link timely (bit only, delay plane untouched).
  void set_timely(ProcessId dst, ProcessId src) noexcept {
    mutable_row_words(dst)[src / kWordBits] |=
        1ULL << (static_cast<unsigned>(src) % kWordBits);
  }

  /// Slow path: clear the bit and record the late/lost fate (d != 0).
  void set_untimely(ProcessId dst, ProcessId src, Delay d) {
    mutable_row_words(dst)[src / kWordBits] &=
        ~(1ULL << (static_cast<unsigned>(src) % kWordBits));
    store_untimely(dst, src, d);
  }

  /// Record the fate of a cell whose bit is already 0 (for samplers using
  /// mutable_row_words). Allocates the delay plane on first use.
  void store_untimely(ProcessId dst, ProcessId src, Delay d) {
    if (delays_.empty()) {
      delays_.assign(static_cast<std::size_t>(n_) * n_, kLost);
    }
    delays_[static_cast<std::size_t>(dst) * n_ + src] = d;
  }

  void fill(Delay d) {
    if (d == 0) {
      for (ProcessId dst = 0; dst < n_; ++dst) {
        auto* row = mutable_row_words(dst);
        for (int w = 0; w < words_; ++w) row[w] = word_mask(w);
      }
    } else {
      std::fill(bits_.begin(), bits_.end(), 0);
      if (delays_.empty()) {
        delays_.assign(static_cast<std::size_t>(n_) * n_, d);
      } else {
        std::fill(delays_.begin(), delays_.end(), d);
      }
    }
  }

  /// Number of timely incoming links of `dst`, incl. self: row popcount.
  int timely_into(ProcessId dst) const noexcept {
    const auto* row = row_words(dst);
    int c = 0;
    for (int w = 0; w < words_; ++w) c += std::popcount(row[w]);
    return c;
  }

  /// Number of timely outgoing links of `src` (column count), incl. self.
  int timely_out_of(ProcessId src) const noexcept {
    const int w = src / kWordBits;
    const std::uint64_t bit = 1ULL << (static_cast<unsigned>(src) % kWordBits);
    int c = 0;
    for (ProcessId d = 0; d < n_; ++d) {
      c += (row_words(d)[w] & bit) ? 1 : 0;
    }
    return c;
  }

  /// Total timely entries over the whole matrix.
  std::size_t timely_count() const noexcept {
    std::size_t c = 0;
    for (const std::uint64_t w : bits_) {
      c += static_cast<std::size_t>(std::popcount(w));
    }
    return c;
  }

  /// Fraction of timely entries over all n^2 entries, in std::size_t
  /// arithmetic (n = 46341 already overflows int n*n).
  double timely_fraction() const noexcept {
    if (n_ == 0) return 0.0;
    return static_cast<double>(timely_count()) /
           static_cast<double>(static_cast<std::size_t>(n_) * n_);
  }

  /// Pack an existing scalar matrix (oracle interop; O(n^2)).
  void assign_from(const LinkMatrix& a) {
    if (n_ != a.n()) *this = PackedLinkMatrix(a.n());
    for (ProcessId dst = 0; dst < n_; ++dst) {
      auto* row = mutable_row_words(dst);
      for (int w = 0; w < words_; ++w) row[w] = 0;
      for (ProcessId src = 0; src < n_; ++src) {
        const Delay d = a.at(dst, src);
        if (d == 0) {
          row[src / kWordBits] |= 1ULL
                                  << (static_cast<unsigned>(src) % kWordBits);
        } else {
          store_untimely(dst, src, d);
        }
      }
    }
  }

  /// Unpack into the scalar layout (tests and diffing).
  void copy_to(LinkMatrix& a) const {
    if (a.n() != n_) a = LinkMatrix(n_);
    for (ProcessId dst = 0; dst < n_; ++dst) {
      for (ProcessId src = 0; src < n_; ++src) {
        a.set(dst, src, at(dst, src));
      }
    }
  }

 private:
  int n_ = 0;
  int words_ = 0;
  std::vector<std::uint64_t> bits_;
  std::vector<Delay> delays_;  ///< valid only where the bit is 0; lazy
};

}  // namespace timing

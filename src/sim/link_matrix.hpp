// The per-round communication matrix A of Section 4.1.
//
// Rows are destinations, columns are sources (as in the paper). Instead of
// only 0/1 we record the *fate* of a message sent on the link in this
// round: delivered timely (delay 0), delivered d >= 1 rounds late, or lost.
// The analysis only distinguishes timely vs not; algorithm executions also
// exercise late deliveries (indulgence).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace timing {

/// Fate of one message: number of rounds of extra delay. 0 = timely
/// (arrives in the round it was sent, i.e. A entry = 1).
using Delay = std::int16_t;

/// Sentinel: the message never arrives.
inline constexpr Delay kLost = -1;

class LinkMatrix {
 public:
  LinkMatrix() = default;
  explicit LinkMatrix(int n, Delay fill = 0)
      : n_(n), cells_(static_cast<std::size_t>(n) * n, fill) {}

  int n() const noexcept { return n_; }

  Delay at(ProcessId dst, ProcessId src) const noexcept {
    return cells_[static_cast<std::size_t>(dst) * n_ + src];
  }
  void set(ProcessId dst, ProcessId src, Delay d) noexcept {
    cells_[static_cast<std::size_t>(dst) * n_ + src] = d;
  }

  /// A_{dst,src} = 1 in the paper's notation.
  bool timely(ProcessId dst, ProcessId src) const noexcept {
    return at(dst, src) == 0;
  }

  void fill(Delay d) noexcept {
    for (auto& c : cells_) c = d;
  }

  /// Number of timely incoming links of `dst` (a full row of ones count);
  /// includes the self link, matching the paper ("p's link with itself
  /// counts towards the count").
  int timely_into(ProcessId dst) const noexcept {
    int c = 0;
    for (ProcessId s = 0; s < n_; ++s) c += timely(dst, s) ? 1 : 0;
    return c;
  }

  /// Number of timely outgoing links of `src` (column count), incl. self.
  int timely_out_of(ProcessId src) const noexcept {
    int c = 0;
    for (ProcessId d = 0; d < n_; ++d) c += timely(d, src) ? 1 : 0;
    return c;
  }

  /// Fraction of timely entries over all n^2 entries.
  double timely_fraction() const noexcept {
    if (n_ == 0) return 0.0;
    int c = 0;
    for (ProcessId d = 0; d < n_; ++d) c += timely_into(d);
    return static_cast<double>(c) / static_cast<double>(n_ * n_);
  }

 private:
  int n_ = 0;
  std::vector<Delay> cells_;
};

}  // namespace timing

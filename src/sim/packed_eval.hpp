// Bit-plane predicate kernels for PackedLinkMatrix.
//
// These are the Section 4.1 per-round model predicates rewritten as
// popcounts and word compares over the packed rows:
//   ES    - every row is all-ones (row popcount == n);
//   <>LM  - the leader column is all-ones and every row has a majority;
//   <>WLM - the leader column is all-ones and the leader row has a
//           majority;
//   <>AFM - every row has a majority and every column has a majority.
// Column counts are accumulated from the zero bits of each row (the
// complement), so in the common high-p case the whole evaluation touches
// ~n/64 words per row and a handful of stray zero bits.
//
// This header lives in sim/ so the fused sample-and-evaluate kernel of
// sampler.cpp can use it; models/predicates.cpp wraps it behind the
// TimingModel enum (and static_asserts the bit order matches). The mask
// bit layout is the canonical ES/LM/WLM/AFM order of obs/trace_event.hpp.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/link_matrix.hpp"

namespace timing {

inline constexpr std::uint8_t kPackedEsBit = 1u << 0;
inline constexpr std::uint8_t kPackedLmBit = 1u << 1;
inline constexpr std::uint8_t kPackedWlmBit = 1u << 2;
inline constexpr std::uint8_t kPackedAfmBit = 1u << 3;

/// Scratch for the column (source) counts of the <>AFM predicate. Reused
/// across rounds so the hot path never allocates; resize() is a no-op
/// after the first round of a trial.
class ColumnDeficits {
 public:
  void reset(int n) {
    deficits_.assign(static_cast<std::size_t>(n), 0);
  }
  void bump(int src) noexcept { ++deficits_[static_cast<std::size_t>(src)]; }
  int at(int src) const noexcept {
    return deficits_[static_cast<std::size_t>(src)];
  }

 private:
  std::vector<int> deficits_;
};

/// All four predicates of one failure-free round in a single sweep over
/// the bit plane. `cols` is caller-provided scratch (see ColumnDeficits).
inline std::uint8_t packed_evaluate_mask(const PackedLinkMatrix& a,
                                         ProcessId leader,
                                         ColumnDeficits& cols) {
  const int n = a.n();
  const int words = a.words_per_row();
  const int maj = majority_size(n);
  const int lw = leader / PackedLinkMatrix::kWordBits;
  const std::uint64_t lbit =
      1ULL << (static_cast<unsigned>(leader) % PackedLinkMatrix::kWordBits);

  cols.reset(n);
  bool es = true;
  bool rows_ok = true;     // every row popcount >= maj
  bool leader_col = true;  // leader bit set in every row
  int leader_row_cnt = 0;

  for (ProcessId dst = 0; dst < n; ++dst) {
    const std::uint64_t* row = a.row_words(dst);
    int cnt = 0;
    for (int w = 0; w < words; ++w) {
      const std::uint64_t bits = row[w];
      cnt += std::popcount(bits);
      // Column deficits from the complement: rare in the high-p regime.
      std::uint64_t comp = ~bits & a.word_mask(w);
      while (comp != 0) {
        cols.bump(w * PackedLinkMatrix::kWordBits + std::countr_zero(comp));
        comp &= comp - 1;
      }
    }
    es &= cnt == n;
    rows_ok &= cnt >= maj;
    leader_col &= (row[lw] & lbit) != 0;
    if (dst == leader) leader_row_cnt = cnt;
  }

  bool cols_ok = true;
  for (ProcessId src = 0; src < n; ++src) {
    cols_ok &= n - cols.at(src) >= maj;
  }

  std::uint8_t mask = 0;
  if (es) mask |= kPackedEsBit;
  if (leader_col && rows_ok) mask |= kPackedLmBit;
  if (leader_col && leader_row_cnt >= maj) mask |= kPackedWlmBit;
  if (rows_ok && cols_ok) mask |= kPackedAfmBit;
  return mask;
}

/// Convenience overload with its own scratch (cold paths and tests).
inline std::uint8_t packed_evaluate_mask(const PackedLinkMatrix& a,
                                         ProcessId leader) {
  ColumnDeficits cols;
  return packed_evaluate_mask(a, leader, cols);
}

// ---------------------------------------------------------------------
// Crash-mask variants. `correct` is the std::vector<bool> aliveness mask
// of models/predicates.hpp (null means everyone correct); the kernels
// first pack it into uint64 words, then reuse the same word arithmetic.

/// Packed aliveness mask; word layout matches PackedLinkMatrix rows.
class PackedCorrectMask {
 public:
  PackedCorrectMask(const std::vector<bool>& correct, int n)
      : words_(static_cast<std::size_t>((n + 63) / 64), 0), alive_(0) {
    for (int i = 0; i < n; ++i) {
      if (correct[static_cast<std::size_t>(i)]) {
        words_[static_cast<std::size_t>(i / 64)] |=
            1ULL << (static_cast<unsigned>(i) % 64);
        ++alive_;
      }
    }
  }
  const std::uint64_t* words() const noexcept { return words_.data(); }
  int alive() const noexcept { return alive_; }
  bool test(int i) const noexcept {
    return (words_[static_cast<std::size_t>(i / 64)] >>
            (static_cast<unsigned>(i) % 64)) &
           1u;
  }

 private:
  std::vector<std::uint64_t> words_;
  int alive_;
};

inline bool packed_satisfies_es(const PackedLinkMatrix& a,
                                const PackedCorrectMask& cm) {
  const int n = a.n();
  const int words = a.words_per_row();
  for (ProcessId dst = 0; dst < n; ++dst) {
    if (!cm.test(dst)) continue;
    const std::uint64_t* row = a.row_words(dst);
    for (int w = 0; w < words; ++w) {
      if ((cm.words()[w] & ~row[w]) != 0) return false;
    }
  }
  return true;
}

/// Timely links into `dst` from correct sources, incl. self if correct.
inline int packed_timely_in_from_correct(const PackedLinkMatrix& a,
                                         ProcessId dst,
                                         const PackedCorrectMask& cm) {
  const std::uint64_t* row = a.row_words(dst);
  int c = 0;
  for (int w = 0; w < a.words_per_row(); ++w) {
    c += std::popcount(row[w] & cm.words()[w]);
  }
  return c;
}

inline bool packed_leader_column_ok(const PackedLinkMatrix& a,
                                    ProcessId leader,
                                    const PackedCorrectMask& cm) {
  const int lw = leader / PackedLinkMatrix::kWordBits;
  const std::uint64_t lbit =
      1ULL << (static_cast<unsigned>(leader) % PackedLinkMatrix::kWordBits);
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (cm.test(d) && (a.row_words(d)[lw] & lbit) == 0) return false;
  }
  return true;
}

inline bool packed_satisfies_lm(const PackedLinkMatrix& a, ProcessId leader,
                                const PackedCorrectMask& cm) {
  if (!cm.test(leader)) return false;
  if (!packed_leader_column_ok(a, leader, cm)) return false;
  const int maj = majority_size(a.n());
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (!cm.test(d)) continue;
    if (packed_timely_in_from_correct(a, d, cm) < maj) return false;
  }
  return true;
}

inline bool packed_satisfies_wlm(const PackedLinkMatrix& a, ProcessId leader,
                                 const PackedCorrectMask& cm) {
  if (!cm.test(leader)) return false;
  if (!packed_leader_column_ok(a, leader, cm)) return false;
  return packed_timely_in_from_correct(a, leader, cm) >=
         majority_size(a.n());
}

inline bool packed_satisfies_afm(const PackedLinkMatrix& a,
                                 const PackedCorrectMask& cm) {
  const int n = a.n();
  const int maj = majority_size(n);
  for (ProcessId i = 0; i < n; ++i) {
    if (!cm.test(i)) continue;
    if (packed_timely_in_from_correct(a, i, cm) < maj) return false;
    // Majority-source over correct recipients (self is correct here).
    const int iw = i / PackedLinkMatrix::kWordBits;
    const std::uint64_t ibit =
        1ULL << (static_cast<unsigned>(i) % PackedLinkMatrix::kWordBits);
    int c = 0;
    for (ProcessId d = 0; d < n; ++d) {
      if (cm.test(d) && (a.row_words(d)[iw] & ibit) != 0) ++c;
    }
    if (c < maj) return false;
  }
  return true;
}

}  // namespace timing

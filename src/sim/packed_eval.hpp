// Bit-plane predicate kernels for PackedLinkMatrix.
//
// These are the Section 4.1 per-round model predicates rewritten as
// popcounts and word compares over the packed rows:
//   ES    - every row is all-ones (row popcount == n);
//   <>LM  - the leader column is all-ones and every row has a majority;
//   <>WLM - the leader column is all-ones and the leader row has a
//           majority;
//   <>AFM - every row has a majority and every column has a majority.
// Column counts are accumulated from the zero bits of each row (the
// complement), so in the common high-p case the whole evaluation touches
// ~n/64 words per row and a handful of stray zero bits.
//
// This header lives in sim/ so the fused sample-and-evaluate kernel of
// sampler.cpp can use it; models/predicates.cpp wraps it behind the
// TimingModel enum (and static_asserts the bit order matches). The mask
// bit layout is the canonical ES/LM/WLM/AFM order of obs/trace_event.hpp.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/link_matrix.hpp"

namespace timing {

inline constexpr std::uint8_t kPackedEsBit = 1u << 0;
inline constexpr std::uint8_t kPackedLmBit = 1u << 1;
inline constexpr std::uint8_t kPackedWlmBit = 1u << 2;
inline constexpr std::uint8_t kPackedAfmBit = 1u << 3;

/// Scratch for the column (source) counts of the <>AFM predicate. Reused
/// across rounds so the hot path never allocates; resize() is a no-op
/// after the first round of a trial.
class ColumnDeficits {
 public:
  void reset(int n) {
    deficits_.assign(static_cast<std::size_t>(n), 0);
  }
  void bump(int src) noexcept { ++deficits_[static_cast<std::size_t>(src)]; }
  int at(int src) const noexcept {
    return deficits_[static_cast<std::size_t>(src)];
  }

 private:
  std::vector<int> deficits_;
};

/// All four predicates of one failure-free round in a single sweep over
/// the bit plane. `cols` is caller-provided scratch (see ColumnDeficits).
inline std::uint8_t packed_evaluate_mask(const PackedLinkMatrix& a,
                                         ProcessId leader,
                                         ColumnDeficits& cols) {
  const int n = a.n();
  const int words = a.words_per_row();
  const int maj = majority_size(n);
  const int lw = leader / PackedLinkMatrix::kWordBits;
  const std::uint64_t lbit =
      1ULL << (static_cast<unsigned>(leader) % PackedLinkMatrix::kWordBits);

  cols.reset(n);
  bool es = true;
  bool rows_ok = true;     // every row popcount >= maj
  bool leader_col = true;  // leader bit set in every row
  int leader_row_cnt = 0;

  for (ProcessId dst = 0; dst < n; ++dst) {
    const std::uint64_t* row = a.row_words(dst);
    int cnt = 0;
    for (int w = 0; w < words; ++w) {
      const std::uint64_t bits = row[w];
      cnt += std::popcount(bits);
      // Column deficits from the complement: rare in the high-p regime.
      std::uint64_t comp = ~bits & a.word_mask(w);
      while (comp != 0) {
        cols.bump(w * PackedLinkMatrix::kWordBits + std::countr_zero(comp));
        comp &= comp - 1;
      }
    }
    es &= cnt == n;
    rows_ok &= cnt >= maj;
    leader_col &= (row[lw] & lbit) != 0;
    if (dst == leader) leader_row_cnt = cnt;
  }

  bool cols_ok = true;
  for (ProcessId src = 0; src < n; ++src) {
    cols_ok &= n - cols.at(src) >= maj;
  }

  std::uint8_t mask = 0;
  if (es) mask |= kPackedEsBit;
  if (leader_col && rows_ok) mask |= kPackedLmBit;
  if (leader_col && leader_row_cnt >= maj) mask |= kPackedWlmBit;
  if (rows_ok && cols_ok) mask |= kPackedAfmBit;
  return mask;
}

/// Convenience overload with its own scratch (cold paths and tests).
inline std::uint8_t packed_evaluate_mask(const PackedLinkMatrix& a,
                                         ProcessId leader) {
  ColumnDeficits cols;
  return packed_evaluate_mask(a, leader, cols);
}

// ---------------------------------------------------------------------
// Crash-mask variants. `correct` is the std::vector<bool> aliveness mask
// of models/predicates.hpp (null means everyone correct); the kernels
// first pack it into uint64 words, then reuse the same word arithmetic.

/// Packed aliveness mask; word layout matches PackedLinkMatrix rows.
class PackedCorrectMask {
 public:
  PackedCorrectMask(const std::vector<bool>& correct, int n)
      : words_(static_cast<std::size_t>((n + 63) / 64), 0), alive_(0) {
    for (int i = 0; i < n; ++i) {
      if (correct[static_cast<std::size_t>(i)]) {
        words_[static_cast<std::size_t>(i / 64)] |=
            1ULL << (static_cast<unsigned>(i) % 64);
        ++alive_;
      }
    }
  }
  const std::uint64_t* words() const noexcept { return words_.data(); }
  int alive() const noexcept { return alive_; }
  bool test(int i) const noexcept {
    return (words_[static_cast<std::size_t>(i / 64)] >>
            (static_cast<unsigned>(i) % 64)) &
           1u;
  }

 private:
  std::vector<std::uint64_t> words_;
  int alive_;
};

inline bool packed_satisfies_es(const PackedLinkMatrix& a,
                                const PackedCorrectMask& cm) {
  const int n = a.n();
  const int words = a.words_per_row();
  for (ProcessId dst = 0; dst < n; ++dst) {
    if (!cm.test(dst)) continue;
    const std::uint64_t* row = a.row_words(dst);
    for (int w = 0; w < words; ++w) {
      if ((cm.words()[w] & ~row[w]) != 0) return false;
    }
  }
  return true;
}

/// Timely links into `dst` from correct sources, incl. self if correct.
inline int packed_timely_in_from_correct(const PackedLinkMatrix& a,
                                         ProcessId dst,
                                         const PackedCorrectMask& cm) {
  const std::uint64_t* row = a.row_words(dst);
  int c = 0;
  for (int w = 0; w < a.words_per_row(); ++w) {
    c += std::popcount(row[w] & cm.words()[w]);
  }
  return c;
}

inline bool packed_leader_column_ok(const PackedLinkMatrix& a,
                                    ProcessId leader,
                                    const PackedCorrectMask& cm) {
  const int lw = leader / PackedLinkMatrix::kWordBits;
  const std::uint64_t lbit =
      1ULL << (static_cast<unsigned>(leader) % PackedLinkMatrix::kWordBits);
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (cm.test(d) && (a.row_words(d)[lw] & lbit) == 0) return false;
  }
  return true;
}

inline bool packed_satisfies_lm(const PackedLinkMatrix& a, ProcessId leader,
                                const PackedCorrectMask& cm) {
  if (!cm.test(leader)) return false;
  if (!packed_leader_column_ok(a, leader, cm)) return false;
  const int maj = majority_size(a.n());
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (!cm.test(d)) continue;
    if (packed_timely_in_from_correct(a, d, cm) < maj) return false;
  }
  return true;
}

inline bool packed_satisfies_wlm(const PackedLinkMatrix& a, ProcessId leader,
                                 const PackedCorrectMask& cm) {
  if (!cm.test(leader)) return false;
  if (!packed_leader_column_ok(a, leader, cm)) return false;
  return packed_timely_in_from_correct(a, leader, cm) >=
         majority_size(a.n());
}

inline bool packed_satisfies_afm(const PackedLinkMatrix& a,
                                 const PackedCorrectMask& cm) {
  const int n = a.n();
  const int maj = majority_size(n);
  for (ProcessId i = 0; i < n; ++i) {
    if (!cm.test(i)) continue;
    if (packed_timely_in_from_correct(a, i, cm) < maj) return false;
    // Majority-source over correct recipients (self is correct here).
    const int iw = i / PackedLinkMatrix::kWordBits;
    const std::uint64_t ibit =
        1ULL << (static_cast<unsigned>(i) % PackedLinkMatrix::kWordBits);
    int c = 0;
    for (ProcessId d = 0; d < n; ++d) {
      if (cm.test(d) && (a.row_words(d)[iw] & ibit) != 0) ++c;
    }
    if (c < maj) return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// Granular (per-link) variants. Each directed link carries a class in
// [0, GranularPlanes::kNumClasses); classes 0 and 1 are *required*
// (they carry a timing obligation and count towards quorums), class 2 is
// exempt (it can neither violate a predicate nor count towards one).
// models/predicates.cpp maps the LinkModelClass enum onto these indices
// (sync=0, psync=1, async=2) and static_asserts the order.
//
// The predicates restrict both sides of every rule to the required plane:
//   G-ES    - every required link is timely;
//   G-<>LM  - required leader-column links are timely and every row's
//             required-and-timely count has a majority;
//   G-<>WLM - required leader-column links are timely and the leader
//             row's required-and-timely count has a majority;
//   G-<>AFM - every row's and every column's required-and-timely count
//             has a majority.
// Majority thresholds stay majority_size(n): exempting links from a
// quorum does not shrink the quorum the algorithm needs. With the
// all-required plane (every off-diagonal link class 0/1) these reduce
// exactly to the homogeneous kernels above.

/// Per-link class assignment pre-packed into bit planes so the granular
/// sweep stays word-at-a-time. Row layout matches PackedLinkMatrix.
class GranularPlanes {
 public:
  static constexpr int kNumClasses = 3;
  static constexpr int kNumRequiredClasses = 2;

  GranularPlanes() = default;

  /// `class_of(dst, src)` returns the class index of link (dst <- src).
  /// Self links must be required (class 0 or 1).
  template <class ClassFn>
  GranularPlanes(int n, ClassFn&& class_of)
      : n_(n),
        words_((n + PackedLinkMatrix::kWordBits - 1) /
               PackedLinkMatrix::kWordBits),
        require_(static_cast<std::size_t>(n) * words_, 0),
        require_col_(static_cast<std::size_t>(n), 0) {
    for (auto& plane : cls_) {
      plane.assign(static_cast<std::size_t>(n) * words_, 0);
    }
    for (ProcessId dst = 0; dst < n; ++dst) {
      for (ProcessId src = 0; src < n; ++src) {
        const int c = class_of(dst, src);
        const std::size_t idx =
            static_cast<std::size_t>(dst) * words_ +
            static_cast<std::size_t>(src / PackedLinkMatrix::kWordBits);
        const std::uint64_t bit =
            1ULL
            << (static_cast<unsigned>(src) % PackedLinkMatrix::kWordBits);
        cls_[static_cast<std::size_t>(c)][idx] |= bit;
        if (c < kNumRequiredClasses) {
          require_[idx] |= bit;
          ++require_col_[static_cast<std::size_t>(src)];
        }
      }
    }
  }

  int n() const noexcept { return n_; }
  int words_per_row() const noexcept { return words_; }

  const std::uint64_t* require_row(ProcessId dst) const noexcept {
    return require_.data() + static_cast<std::size_t>(dst) * words_;
  }
  const std::uint64_t* class_row(int c, ProcessId dst) const noexcept {
    return cls_[static_cast<std::size_t>(c)].data() +
           static_cast<std::size_t>(dst) * words_;
  }
  /// Number of required links into column `src` over all n rows.
  int require_col(ProcessId src) const noexcept {
    return require_col_[static_cast<std::size_t>(src)];
  }
  bool require(ProcessId dst, ProcessId src) const noexcept {
    return (require_row(dst)[src / PackedLinkMatrix::kWordBits] >>
            (static_cast<unsigned>(src) % PackedLinkMatrix::kWordBits)) &
           1u;
  }

 private:
  int n_ = 0;
  int words_ = 0;
  std::vector<std::uint64_t> require_;
  std::array<std::vector<std::uint64_t>, kNumClasses> cls_;
  std::vector<int> require_col_;
};

/// Result of one granular evaluation: `sat` uses the canonical
/// ES/LM/WLM/AFM bit order, `csat` has bit c set iff every class-c link
/// (between correct processes) was timely this round.
struct GranularPackedEval {
  std::uint8_t sat = 0;
  std::uint8_t csat = 0;
};

/// All four granular predicates plus per-class conformance of one
/// failure-free round in a single sweep over the bit plane.
inline GranularPackedEval packed_evaluate_granular(const PackedLinkMatrix& a,
                                                   ProcessId leader,
                                                   const GranularPlanes& g,
                                                   ColumnDeficits& cols) {
  const int n = a.n();
  const int words = a.words_per_row();
  const int maj = majority_size(n);
  const int lw = leader / PackedLinkMatrix::kWordBits;
  const std::uint64_t lbit =
      1ULL << (static_cast<unsigned>(leader) % PackedLinkMatrix::kWordBits);

  cols.reset(n);
  bool es = true;
  bool rows_ok = true;     // every row's required-and-timely count >= maj
  bool leader_col = true;  // every required leader bit set
  int leader_row_cnt = 0;
  bool class_ok[GranularPlanes::kNumClasses] = {true, true, true};

  for (ProcessId dst = 0; dst < n; ++dst) {
    const std::uint64_t* row = a.row_words(dst);
    const std::uint64_t* req = g.require_row(dst);
    int cnt = 0;
    for (int w = 0; w < words; ++w) {
      const std::uint64_t bits = row[w];
      cnt += std::popcount(bits & req[w]);
      // Required-but-untimely links; rare in the high-p regime. The class
      // planes only hold valid bits, so no word_mask is needed.
      std::uint64_t comp = req[w] & ~bits;
      es &= comp == 0;
      while (comp != 0) {
        cols.bump(w * PackedLinkMatrix::kWordBits + std::countr_zero(comp));
        comp &= comp - 1;
      }
      for (int c = 0; c < GranularPlanes::kNumClasses; ++c) {
        class_ok[c] &= (g.class_row(c, dst)[w] & ~bits) == 0;
      }
    }
    rows_ok &= cnt >= maj;
    leader_col &= ((req[lw] & lbit) & ~row[lw]) == 0;
    if (dst == leader) leader_row_cnt = cnt;
  }

  bool cols_ok = true;
  for (ProcessId src = 0; src < n; ++src) {
    cols_ok &= g.require_col(src) - cols.at(src) >= maj;
  }

  GranularPackedEval out;
  if (es) out.sat |= kPackedEsBit;
  if (leader_col && rows_ok) out.sat |= kPackedLmBit;
  if (leader_col && leader_row_cnt >= maj) out.sat |= kPackedWlmBit;
  if (rows_ok && cols_ok) out.sat |= kPackedAfmBit;
  for (int c = 0; c < GranularPlanes::kNumClasses; ++c) {
    if (class_ok[c]) out.csat |= static_cast<std::uint8_t>(1u << c);
  }
  return out;
}

/// Convenience overload with its own scratch (cold paths and tests).
inline GranularPackedEval packed_evaluate_granular(const PackedLinkMatrix& a,
                                                   ProcessId leader,
                                                   const GranularPlanes& g) {
  ColumnDeficits cols;
  return packed_evaluate_granular(a, leader, g, cols);
}

// Granular crash-mask variants (cold path: the chaos gate). Requirements
// and quorum counts intersect the required plane with the aliveness mask.

inline bool packed_granular_satisfies_es(const PackedLinkMatrix& a,
                                         const GranularPlanes& g,
                                         const PackedCorrectMask& cm) {
  for (ProcessId dst = 0; dst < a.n(); ++dst) {
    if (!cm.test(dst)) continue;
    const std::uint64_t* row = a.row_words(dst);
    const std::uint64_t* req = g.require_row(dst);
    for (int w = 0; w < a.words_per_row(); ++w) {
      if ((req[w] & cm.words()[w] & ~row[w]) != 0) return false;
    }
  }
  return true;
}

/// Required-and-timely links into `dst` from correct sources.
inline int packed_granular_timely_in(const PackedLinkMatrix& a,
                                     const GranularPlanes& g, ProcessId dst,
                                     const PackedCorrectMask& cm) {
  const std::uint64_t* row = a.row_words(dst);
  const std::uint64_t* req = g.require_row(dst);
  int c = 0;
  for (int w = 0; w < a.words_per_row(); ++w) {
    c += std::popcount(row[w] & req[w] & cm.words()[w]);
  }
  return c;
}

inline bool packed_granular_leader_column_ok(const PackedLinkMatrix& a,
                                             const GranularPlanes& g,
                                             ProcessId leader,
                                             const PackedCorrectMask& cm) {
  const int lw = leader / PackedLinkMatrix::kWordBits;
  const std::uint64_t lbit =
      1ULL << (static_cast<unsigned>(leader) % PackedLinkMatrix::kWordBits);
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (!cm.test(d)) continue;
    if ((g.require_row(d)[lw] & lbit & ~a.row_words(d)[lw]) != 0) {
      return false;
    }
  }
  return true;
}

inline bool packed_granular_satisfies_lm(const PackedLinkMatrix& a,
                                         const GranularPlanes& g,
                                         ProcessId leader,
                                         const PackedCorrectMask& cm) {
  if (!cm.test(leader)) return false;
  if (!packed_granular_leader_column_ok(a, g, leader, cm)) return false;
  const int maj = majority_size(a.n());
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (!cm.test(d)) continue;
    if (packed_granular_timely_in(a, g, d, cm) < maj) return false;
  }
  return true;
}

inline bool packed_granular_satisfies_wlm(const PackedLinkMatrix& a,
                                          const GranularPlanes& g,
                                          ProcessId leader,
                                          const PackedCorrectMask& cm) {
  if (!cm.test(leader)) return false;
  if (!packed_granular_leader_column_ok(a, g, leader, cm)) return false;
  return packed_granular_timely_in(a, g, leader, cm) >=
         majority_size(a.n());
}

inline bool packed_granular_satisfies_afm(const PackedLinkMatrix& a,
                                          const GranularPlanes& g,
                                          const PackedCorrectMask& cm) {
  const int n = a.n();
  const int maj = majority_size(n);
  for (ProcessId i = 0; i < n; ++i) {
    if (!cm.test(i)) continue;
    if (packed_granular_timely_in(a, g, i, cm) < maj) return false;
    const int iw = i / PackedLinkMatrix::kWordBits;
    const std::uint64_t ibit =
        1ULL << (static_cast<unsigned>(i) % PackedLinkMatrix::kWordBits);
    int c = 0;
    for (ProcessId d = 0; d < n; ++d) {
      if (cm.test(d) && g.require(d, i) &&
          (a.row_words(d)[iw] & ibit) != 0) {
        ++c;
      }
    }
    if (c < maj) return false;
  }
  return true;
}

/// Per-class conformance under a crash mask: bit c set iff every class-c
/// link between correct processes was timely.
inline std::uint8_t packed_granular_class_conformance(
    const PackedLinkMatrix& a, const GranularPlanes& g,
    const PackedCorrectMask& cm) {
  bool class_ok[GranularPlanes::kNumClasses] = {true, true, true};
  for (ProcessId dst = 0; dst < a.n(); ++dst) {
    if (!cm.test(dst)) continue;
    const std::uint64_t* row = a.row_words(dst);
    for (int w = 0; w < a.words_per_row(); ++w) {
      for (int c = 0; c < GranularPlanes::kNumClasses; ++c) {
        class_ok[c] &=
            (g.class_row(c, dst)[w] & cm.words()[w] & ~row[w]) == 0;
      }
    }
  }
  std::uint8_t csat = 0;
  for (int c = 0; c < GranularPlanes::kNumClasses; ++c) {
    if (class_ok[c]) csat |= static_cast<std::uint8_t>(1u << c);
  }
  return csat;
}

}  // namespace timing

// Latency models: the simulated stand-ins for the paper's physical
// testbeds (a 100 Mbit LAN and 8 PlanetLab sites). See DESIGN.md section 4
// for the substitution rationale and the calibration anchor points.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace timing {

/// One-way message latency source. Implementations may keep per-round or
/// per-run state (burst episodes, slow-node episodes); begin_round() must
/// be called once per round in increasing round order before sampling that
/// round's messages. A model instance represents ONE run; run-scoped
/// pathologies (e.g. "the Poland node was slow in several runs") are drawn
/// at construction, so independent runs use independently seeded models.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  virtual int n() const noexcept = 0;

  /// Advance round-scoped state (burst processes etc.).
  virtual void begin_round(Round k) = 0;

  /// Latency in milliseconds of a message sent from src to dst in the
  /// current round. Returns +infinity when the message is lost.
  virtual double sample_ms(ProcessId src, ProcessId dst) = 0;

  /// Human-readable node name (site name for the WAN model).
  virtual std::string node_name(ProcessId i) const;
};

/// Parameters of the LAN profile (Section 5.2). Defaults are calibrated so
/// that the fraction of messages within 0.1 ms is ~0.70 and within 0.2 ms
/// is ~0.976, matching the paper's measurements, and so that late messages
/// cluster in bursts (the paper's explanation for ES beating its IID
/// prediction) and one node is occasionally slow to receive (the paper's
/// explanation for AFM/LM undershooting theirs).
struct LanProfile {
  int n = 8;
  double base_ms = 0.030;         ///< fixed propagation + stack floor
  double lognormal_mu = -3.00;    ///< jitter: exp(N(mu, sigma)) added to base
  double lognormal_sigma = 0.45;
  /// Per-node speed multiplier applied to all latencies touching the
  /// node; spreads connectivity so that "a good leader" vs "an average
  /// leader" (Section 5.2) is meaningful on the LAN too. Node 0 is the
  /// best-connected machine, node 5 (also the slow-episode node) the
  /// worst.
  double node_factor[8] = {0.78, 1.0, 0.95, 1.08, 1.15, 1.3, 0.9, 1.0};
  double burst_enter_prob = 0.004;  ///< per round, enter a congested episode
  double burst_exit_prob = 0.35;   ///< per round, leave the episode
  double burst_factor = 8.0;       ///< latency multiplier inside an episode
  ProcessId slow_node = 5;         ///< the occasionally slow machine
  double slow_enter_prob = 0.015;
  double slow_exit_prob = 0.25;
  double slow_factor = 5.0;        ///< applies to the slow node's inbound links
  double loss_prob = 0.0005;
};

/// Quality class of a WAN link; determines jitter and tail behaviour.
enum class LinkQuality { kGood, kMedium, kBad };

/// Per-quality-class noise parameters.
struct LinkNoise {
  double jitter_sigma;   ///< lognormal multiplier sigma on the base latency
  double spike_prob;     ///< probability of a heavy-tail (Pareto) spike
  double loss_prob;      ///< outright packet loss
};

/// Parameters of the WAN (PlanetLab) profile, Section 5.3: 8 sites in
/// Switzerland, Japan, California, Georgia (US), China, Poland, UK and
/// Sweden.
///
/// Mechanisms reproduced from the paper's observations:
///  * the UK site is well connected (all its links are at most Medium
///    quality with moderate base latency) - it is the designated leader;
///  * the Poland site is slow to RECEIVE in a fraction of runs (run-scoped
///    draw + in-run episodes): its inbound links gain slow_extra_ms, which
///    leaves nearby European senders timely but makes intercontinental
///    senders late - this is what gives  <>LM its high variance at short
///    timeouts while leaving <>WLM mostly intact (Figures 1(e)/(f));
///  * the China site has chronically bursty OUTBOUND links (+burst ms in
///    roughly half the rounds), which suppresses its column majority and
///    caps P_<>AFM around 0.4 consistently at short timeouts while barely
///    affecting <>LM; the burst magnitude is chosen so the column recovers
///    around a 230 ms timeout, where the paper reports <>AFM catching up.
///
/// Calibration anchors (Figure 1(d)): p ~ 0.88 @ 160 ms, ~0.90 @ 170 ms,
/// ~0.95 @ 200 ms, ~0.96 @ 210 ms, with a ~99% ceiling.
struct WanProfile {
  int n = 8;
  LinkNoise good{0.10, 0.004, 0.002};
  LinkNoise medium{0.205, 0.010, 0.005};
  LinkNoise bad{0.265, 0.018, 0.009};
  double spike_pareto_xm = 1.6;   ///< spike multiplies latency by Pareto(xm, alpha)
  double spike_pareto_alpha = 1.4;
  /// Run-scoped global jitter multiplier exp(N(0, sigma)): some runs are
  /// globally slower than others (PlanetLab load varies by hour). This is
  /// what gives ES its LARGE run-to-run variance at long timeouts
  /// (Figure 1(e)/(f)) while the majority-based models absorb it.
  double run_jitter_sigma = 0.10;

  ProcessId slow_inbound_node = 5;  ///< Poland
  double slow_run_prob = 0.30;      ///< fraction of runs with a slow Poland
  double slow_enter_prob = 0.15;    ///< episode dynamics within a slow run
  double slow_exit_prob = 0.05;
  double slow_extra_ms = 110.0;     ///< added to Poland's inbound latency

  ProcessId bursty_outbound_node = 4;  ///< China
  double burst_enter_prob = 0.30;
  double burst_exit_prob = 0.35;
  double burst_extra_ms = 90.0;  ///< added to China's outbound latency
};

/// IID network: every message is timely with probability p and otherwise
/// late/lost. This is the world of the Section 4 analysis; the "latency"
/// returned is synthetic (below/above an implied 1.0 ms timeout) and only
/// its relation to the timeout matters.
class IidLatencyModel final : public LatencyModel {
 public:
  IidLatencyModel(int n, double p, std::uint64_t seed,
                  double loss_share = 0.25, double timeout_ms = 1.0);

  int n() const noexcept override { return n_; }
  void begin_round(Round k) override;
  double sample_ms(ProcessId src, ProcessId dst) override;

 private:
  int n_;
  double p_;
  double loss_share_;  ///< fraction of untimely messages that are lost outright
  double timeout_ms_;
  Rng rng_;
};

class LanLatencyModel final : public LatencyModel {
 public:
  LanLatencyModel(LanProfile profile, std::uint64_t seed);

  int n() const noexcept override { return profile_.n; }
  void begin_round(Round k) override;
  double sample_ms(ProcessId src, ProcessId dst) override;

  const LanProfile& profile() const noexcept { return profile_; }
  bool in_burst() const noexcept { return in_burst_; }

 private:
  LanProfile profile_;
  Rng rng_;
  bool in_burst_ = false;
  bool slow_episode_ = false;
};

class WanLatencyModel final : public LatencyModel {
 public:
  WanLatencyModel(WanProfile profile, std::uint64_t seed);

  int n() const noexcept override { return profile_.n; }
  void begin_round(Round k) override;
  double sample_ms(ProcessId src, ProcessId dst) override;
  std::string node_name(ProcessId i) const override;

  /// Base (median, uncongested) one-way latency between two sites, ms.
  double base_ms(ProcessId src, ProcessId dst) const noexcept;
  /// Quality class of a directed link (symmetric in practice).
  LinkQuality quality(ProcessId src, ProcessId dst) const noexcept;

  bool slow_run() const noexcept { return slow_run_; }
  const WanProfile& profile() const noexcept { return profile_; }

  /// Index of the UK site (the paper's designated leader).
  static constexpr ProcessId kUk = 6;

 private:
  WanProfile profile_;
  Rng rng_;
  bool slow_run_;
  double run_jitter_ = 1.0;
  bool slow_episode_ = false;
  bool out_burst_ = false;
};

}  // namespace timing

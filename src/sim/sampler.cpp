#include "sim/sampler.hpp"

#include <cmath>

#include "common/check.hpp"

namespace timing {

LatencyTimelinessSampler::LatencyTimelinessSampler(LatencyModel& model,
                                                   double timeout_ms,
                                                   int max_delay_rounds)
    : model_(model), timeout_ms_(timeout_ms),
      max_delay_rounds_(max_delay_rounds) {
  TM_CHECK(timeout_ms > 0.0, "timeout must be positive");
}

void LatencyTimelinessSampler::sample_round(Round k, LinkMatrix& out) {
  model_.begin_round(k);
  const int n = model_.n();
  for (ProcessId dst = 0; dst < n; ++dst) {
    for (ProcessId src = 0; src < n; ++src) {
      if (src == dst) {
        out.set(dst, src, 0);  // a process always "receives" its own message
        continue;
      }
      const double ms = model_.sample_ms(src, dst);
      if (sink_) sink_(src, dst, ms);
      Delay d;
      if (!std::isfinite(ms)) {
        d = kLost;
      } else if (ms <= timeout_ms_) {
        d = 0;
      } else {
        // Rounds last `timeout`; a message sent at the start of round k
        // with latency L lands in round k + floor(L / timeout).
        const double rounds_late = std::floor(ms / timeout_ms_);
        d = rounds_late > max_delay_rounds_
                ? kLost
                : static_cast<Delay>(rounds_late);
      }
      out.set(dst, src, d);
    }
  }
}

IidTimelinessSampler::IidTimelinessSampler(int n, double p,
                                           std::uint64_t seed,
                                           double loss_share)
    : n_(n), p_(p), loss_share_(loss_share), rng_(seed) {
  TM_CHECK(n > 1, "IID sampler needs n > 1");
  TM_CHECK(p >= 0.0 && p <= 1.0, "p must be a probability");
}

void IidTimelinessSampler::sample_round(Round, LinkMatrix& out) {
  for (ProcessId dst = 0; dst < n_; ++dst) {
    for (ProcessId src = 0; src < n_; ++src) {
      if (src == dst) {
        out.set(dst, src, 0);
        continue;
      }
      if (rng_.bernoulli(p_)) {
        out.set(dst, src, 0);
      } else if (rng_.bernoulli(loss_share_)) {
        out.set(dst, src, kLost);
      } else {
        Delay d = 1;
        while (rng_.bernoulli(0.4) && d < 16) ++d;
        out.set(dst, src, d);
      }
    }
  }
}

}  // namespace timing

#include "sim/sampler.hpp"

#include <bit>
#include <cmath>

#include "common/check.hpp"

namespace timing {

namespace {

/// Streaming accumulator for the four failure-free predicates, fed cell
/// by cell as a fused kernel samples a round. Mirrors packed_evaluate_mask
/// exactly (differential-tested against the scalar predicates).
struct MaskAccum {
  int n = 0;
  int maj = 0;
  ProcessId leader = 0;
  ColumnDeficits* cols = nullptr;
  bool es = true;
  bool rows_ok = true;
  bool leader_col = true;
  int leader_row_cnt = 0;
  int cnt = 0;            // timely cells of the current row
  bool leader_bit = false;

  void begin(int n_in, ProcessId leader_in, ColumnDeficits& cols_in) {
    n = n_in;
    maj = majority_size(n_in);
    leader = leader_in;
    cols = &cols_in;
    cols->reset(n_in);
    es = rows_ok = leader_col = true;
    leader_row_cnt = 0;
  }
  void begin_row() {
    cnt = 0;
    leader_bit = false;
  }
  void cell_timely(ProcessId src) {
    ++cnt;
    if (src == leader) leader_bit = true;
  }
  void cell_untimely(ProcessId src) { cols->bump(src); }
  void end_row(ProcessId dst) {
    es &= cnt == n;
    rows_ok &= cnt >= maj;
    leader_col &= leader_bit;
    if (dst == leader) leader_row_cnt = cnt;
  }
  std::uint8_t finish() const {
    bool cols_ok = true;
    for (ProcessId src = 0; src < n; ++src) {
      cols_ok &= n - cols->at(src) >= maj;
    }
    std::uint8_t mask = 0;
    if (es) mask |= kPackedEsBit;
    if (leader_col && rows_ok) mask |= kPackedLmBit;
    if (leader_col && leader_row_cnt >= maj) mask |= kPackedWlmBit;
    if (rows_ok && cols_ok) mask |= kPackedAfmBit;
    return mask;
  }
};

}  // namespace

void TimelinessSampler::sample_round(Round k, PackedLinkMatrix& out) {
  // Generic fallback: sample through the scalar path (identical RNG
  // consumption) and pack. The scratch is per-thread and reused, so pool
  // workers never allocate per round after their first.
  thread_local LinkMatrix scratch;
  if (scratch.n() != n()) scratch = LinkMatrix(n());
  sample_round(k, scratch);
  out.assign_from(scratch);
}

FusedRoundEval TimelinessSampler::sample_round_and_evaluate(
    Round k, ProcessId leader, PackedLinkMatrix& out, ColumnDeficits& cols) {
  sample_round(k, out);
  FusedRoundEval eval;
  eval.mask = packed_evaluate_mask(out, leader, cols);
  tally_fates(out, eval);
  return eval;
}

void tally_fates(const PackedLinkMatrix& a, FusedRoundEval& eval) {
  const int n = a.n();
  const int words = a.words_per_row();
  long long timely = 0;
  for (ProcessId dst = 0; dst < n; ++dst) {
    const std::uint64_t* row = a.row_words(dst);
    for (int w = 0; w < words; ++w) {
      timely += std::popcount(row[w]);
      std::uint64_t comp = ~row[w] & a.word_mask(w);
      while (comp != 0) {
        const ProcessId src = static_cast<ProcessId>(
            w * PackedLinkMatrix::kWordBits + std::countr_zero(comp));
        comp &= comp - 1;
        if (src == dst) continue;  // untimely self link: not a message
        if (a.at(dst, src) == kLost) {
          ++eval.lost;
        } else {
          ++eval.late;
        }
      }
    }
    // Self links are not messages; exclude the (normally set) self bit.
    if (a.timely(dst, dst)) --timely;
  }
  eval.timely += timely;
}

LatencyTimelinessSampler::LatencyTimelinessSampler(LatencyModel& model,
                                                   double timeout_ms,
                                                   int max_delay_rounds)
    : model_(model), timeout_ms_(timeout_ms),
      max_delay_rounds_(max_delay_rounds) {
  TM_CHECK(timeout_ms > 0.0, "timeout must be positive");
}

Delay LatencyTimelinessSampler::classify(double ms) const noexcept {
  if (!std::isfinite(ms)) return kLost;
  if (ms <= timeout_ms_) return 0;
  // Rounds last `timeout`; a message sent at the start of round k with
  // latency L lands in round k + floor(L / timeout).
  const double rounds_late = std::floor(ms / timeout_ms_);
  return rounds_late > max_delay_rounds_ ? kLost
                                         : static_cast<Delay>(rounds_late);
}

void LatencyTimelinessSampler::sample_round(Round k, LinkMatrix& out) {
  model_.begin_round(k);
  const int n = model_.n();
  for (ProcessId dst = 0; dst < n; ++dst) {
    for (ProcessId src = 0; src < n; ++src) {
      if (src == dst) {
        out.set(dst, src, 0);  // a process always "receives" its own message
        continue;
      }
      const double ms = model_.sample_ms(src, dst);
      if (sink_) sink_(src, dst, ms);
      out.set(dst, src, classify(ms));
    }
  }
}

void LatencyTimelinessSampler::sample_round(Round k, PackedLinkMatrix& out) {
  model_.begin_round(k);
  const int n = model_.n();
  for (ProcessId dst = 0; dst < n; ++dst) {
    std::uint64_t* row = out.mutable_row_words(dst);
    for (int w = 0; w < out.words_per_row(); ++w) row[w] = 0;
    for (ProcessId src = 0; src < n; ++src) {
      if (src == dst) {
        out.set_timely(dst, src);
        continue;
      }
      const double ms = model_.sample_ms(src, dst);
      if (sink_) sink_(src, dst, ms);
      const Delay d = classify(ms);
      if (d == 0) {
        out.set_timely(dst, src);
      } else {
        out.store_untimely(dst, src, d);
      }
    }
  }
}

FusedRoundEval LatencyTimelinessSampler::sample_round_and_evaluate(
    Round k, ProcessId leader, PackedLinkMatrix& out, ColumnDeficits& cols) {
  model_.begin_round(k);
  const int n = model_.n();
  FusedRoundEval eval;
  MaskAccum acc;
  acc.begin(n, leader, cols);
  for (ProcessId dst = 0; dst < n; ++dst) {
    std::uint64_t* row = out.mutable_row_words(dst);
    for (int w = 0; w < out.words_per_row(); ++w) row[w] = 0;
    acc.begin_row();
    for (ProcessId src = 0; src < n; ++src) {
      if (src == dst) {
        out.set_timely(dst, src);
        acc.cell_timely(src);
        continue;
      }
      const double ms = model_.sample_ms(src, dst);
      if (sink_) sink_(src, dst, ms);
      const Delay d = classify(ms);
      if (d == 0) {
        out.set_timely(dst, src);
        acc.cell_timely(src);
        ++eval.timely;
      } else {
        out.store_untimely(dst, src, d);
        acc.cell_untimely(src);
        if (d == kLost) {
          ++eval.lost;
        } else {
          ++eval.late;
        }
      }
    }
    acc.end_row(dst);
  }
  eval.mask = acc.finish();
  return eval;
}

IidTimelinessSampler::IidTimelinessSampler(int n, double p,
                                           std::uint64_t seed,
                                           double loss_share)
    : n_(n), p_(p), loss_share_(loss_share), rng_(seed) {
  TM_CHECK(n > 1, "IID sampler needs n > 1");
  TM_CHECK(p >= 0.0 && p <= 1.0, "p must be a probability");
}

Delay IidTimelinessSampler::untimely_fate() {
  if (rng_.bernoulli(loss_share_)) return kLost;
  Delay d = 1;
  while (rng_.bernoulli(0.4) && d < 16) ++d;
  return d;
}

void IidTimelinessSampler::sample_round(Round, LinkMatrix& out) {
  for (ProcessId dst = 0; dst < n_; ++dst) {
    for (ProcessId src = 0; src < n_; ++src) {
      if (src == dst) {
        out.set(dst, src, 0);
        continue;
      }
      out.set(dst, src, rng_.bernoulli(p_) ? 0 : untimely_fate());
    }
  }
}

void IidTimelinessSampler::sample_round(Round, PackedLinkMatrix& out) {
  for (ProcessId dst = 0; dst < n_; ++dst) {
    std::uint64_t* row = out.mutable_row_words(dst);
    for (int w = 0; w < out.words_per_row(); ++w) row[w] = 0;
    for (ProcessId src = 0; src < n_; ++src) {
      if (src == dst || rng_.bernoulli(p_)) {
        out.set_timely(dst, src);
      } else {
        out.store_untimely(dst, src, untimely_fate());
      }
    }
  }
}

FusedRoundEval IidTimelinessSampler::sample_round_and_evaluate(
    Round, ProcessId leader, PackedLinkMatrix& out, ColumnDeficits& cols) {
  FusedRoundEval eval;
  MaskAccum acc;
  acc.begin(n_, leader, cols);
  for (ProcessId dst = 0; dst < n_; ++dst) {
    std::uint64_t* row = out.mutable_row_words(dst);
    for (int w = 0; w < out.words_per_row(); ++w) row[w] = 0;
    acc.begin_row();
    for (ProcessId src = 0; src < n_; ++src) {
      if (src == dst) {
        out.set_timely(dst, src);
        acc.cell_timely(src);
      } else if (rng_.bernoulli(p_)) {
        out.set_timely(dst, src);
        acc.cell_timely(src);
        ++eval.timely;
      } else {
        const Delay d = untimely_fate();
        out.store_untimely(dst, src, d);
        acc.cell_untimely(src);
        if (d == kLost) {
          ++eval.lost;
        } else {
          ++eval.late;
        }
      }
    }
    acc.end_row(dst);
  }
  eval.mask = acc.finish();
  return eval;
}

}  // namespace timing

// Trace-based latencies: record any LatencyModel's samples to a portable
// text format and replay them later - the bridge between this library and
// REAL measurements (the paper's raw PlanetLab traces are not available;
// a user with their own testbed pings can feed them in here and re-run
// every figure against reality).
//
// Format (line-oriented, '#' comments):
//   trace v1 n=<n>
//   <round> <src> <dst> <latency_ms | 'lost'>
// Rounds must be non-decreasing. Replay cycles back to the first round
// when the trace is exhausted, so short traces can drive long runs.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/latency_model.hpp"

namespace timing {

class TraceLatencyModel final : public LatencyModel {
 public:
  /// Parse from a stream; throws std::runtime_error on malformed input.
  static TraceLatencyModel parse(std::istream& in);

  int n() const noexcept override { return n_; }
  void begin_round(Round k) override;
  double sample_ms(ProcessId src, ProcessId dst) override;

  /// Number of recorded rounds.
  int trace_rounds() const noexcept { return static_cast<int>(rounds_.size()); }

 private:
  TraceLatencyModel() = default;

  // rounds_[r] is an n*n matrix of latencies (infinity = lost); cells
  // never sampled in the trace default to 0 (timely).
  int n_ = 0;
  std::vector<std::vector<double>> rounds_;
  std::size_t cursor_ = 0;
};

/// Wraps a model, copying every sample to `out` in the trace format.
/// begin_round/sample_ms forward to the wrapped model.
class TraceRecorder final : public LatencyModel {
 public:
  TraceRecorder(LatencyModel& wrapped, std::ostream& out);

  int n() const noexcept override { return wrapped_.n(); }
  void begin_round(Round k) override;
  double sample_ms(ProcessId src, ProcessId dst) override;

 private:
  LatencyModel& wrapped_;
  std::ostream& out_;
  Round round_ = 0;
  bool wrote_header_ = false;
};

}  // namespace timing

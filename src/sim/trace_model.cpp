#include "sim/trace_model.hpp"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/check.hpp"

namespace timing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

TraceLatencyModel TraceLatencyModel::parse(std::istream& in) {
  TraceLatencyModel model;
  std::string line;
  bool have_header = false;
  long long current_round = -1;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (!have_header) {
      std::istringstream hs(line);
      std::string word, version, nfield;
      hs >> word >> version >> nfield;
      if (word != "trace" || version != "v1" ||
          nfield.rfind("n=", 0) != 0) {
        throw std::runtime_error("trace: bad header: " + line);
      }
      model.n_ = std::stoi(nfield.substr(2));
      if (model.n_ < 2 || model.n_ > 4096) {
        throw std::runtime_error("trace: implausible n");
      }
      have_header = true;
      continue;
    }
    std::istringstream ls(line);
    long long round;
    int src, dst;
    std::string latency;
    if (!(ls >> round >> src >> dst >> latency)) {
      throw std::runtime_error("trace: bad line: " + line);
    }
    if (model.rounds_.empty()) {
      current_round = round - 1;  // the trace may start at any round number
    }
    if (round < current_round) {
      throw std::runtime_error("trace: rounds must be non-decreasing");
    }
    if (src < 0 || src >= model.n_ || dst < 0 || dst >= model.n_) {
      throw std::runtime_error("trace: process id out of range: " + line);
    }
    while (current_round < round) {
      model.rounds_.emplace_back(
          static_cast<std::size_t>(model.n_) * model.n_, 0.0);
      ++current_round;
    }
    double ms;
    if (latency == "lost") {
      ms = kInf;
    } else {
      ms = std::stod(latency);
      if (!(ms >= 0.0)) throw std::runtime_error("trace: negative latency");
    }
    model.rounds_.back()[static_cast<std::size_t>(src) * model.n_ + dst] = ms;
  }
  if (!have_header) throw std::runtime_error("trace: missing header");
  if (model.rounds_.empty()) throw std::runtime_error("trace: no rounds");
  // The first begin_round() advances the cursor; park it on the last
  // entry so replay starts at the trace's first round.
  model.cursor_ = model.rounds_.size() - 1;
  return model;
}

void TraceLatencyModel::begin_round(Round) {
  cursor_ = (cursor_ + 1) % rounds_.size();
}

double TraceLatencyModel::sample_ms(ProcessId src, ProcessId dst) {
  if (src == dst) return 0.0;
  return rounds_[cursor_][static_cast<std::size_t>(src) * n_ + dst];
}

TraceRecorder::TraceRecorder(LatencyModel& wrapped, std::ostream& out)
    : wrapped_(wrapped), out_(out) {}

void TraceRecorder::begin_round(Round k) {
  if (!wrote_header_) {
    out_ << "trace v1 n=" << wrapped_.n() << "\n";
    wrote_header_ = true;
  }
  round_ = k;
  wrapped_.begin_round(k);
}

double TraceRecorder::sample_ms(ProcessId src, ProcessId dst) {
  const double ms = wrapped_.sample_ms(src, dst);
  out_ << round_ << ' ' << src << ' ' << dst << ' ';
  if (std::isfinite(ms)) {
    out_ << ms;
  } else {
    out_ << "lost";
  }
  out_ << "\n";
  return ms;
}

}  // namespace timing

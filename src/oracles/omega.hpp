// Omega failure-detector implementations.
//
// The paper's evaluation sidesteps online leader election: "we designated
// one process to act as a leader in all runs", chosen offline as a
// well-connected node from ping measurements (Section 5.2). We provide
// that designated oracle, an unstable oracle for adversarial pre-GSR
// behaviour, and the offline well-connected election procedure itself.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "giraf/oracle.hpp"

namespace timing {

/// Always trusts the same leader: the common case the paper analyses
/// ("election protocols often ensure leader stability ... the same leader
/// may persist for numerous instances of consensus"). Satisfies the
/// Theorem 10(b) premise (oracle correct from round GSR-1, indeed from
/// round 0), giving Algorithm 2 its 4-round bound.
class DesignatedOracle final : public Oracle {
 public:
  explicit DesignatedOracle(ProcessId leader) : leader_(leader) {}
  ProcessId query(ProcessId, Round) override { return leader_; }

 private:
  ProcessId leader_;
};

/// Outputs arbitrary (deterministic pseudo-random, per process and round)
/// leaders before `stable_from`, then the final leader. Setting
/// stable_from = GSR gives the model's minimum guarantee (5-round bound
/// for Algorithm 2); stable_from = GSR-1 gives the stable-leader case.
class UnstableOracle final : public Oracle {
 public:
  UnstableOracle(int n, ProcessId final_leader, Round stable_from,
                 std::uint64_t seed);
  ProcessId query(ProcessId self, Round k) override;

 private:
  int n_;
  ProcessId final_leader_;
  Round stable_from_;
  std::uint64_t seed_;
};

/// Adversarial oracle scripted per (process, round); entries default to
/// the final leader. Used by targeted worst-case tests.
class ScriptedOracle final : public Oracle {
 public:
  ScriptedOracle(int n, ProcessId default_leader);
  void script(ProcessId self, Round k, ProcessId answer);
  ProcessId query(ProcessId self, Round k) override;

 private:
  int n_;
  ProcessId default_leader_;
  // (self, round) -> answer; flat map is plenty at test scale.
  std::vector<std::tuple<ProcessId, Round, ProcessId>> entries_;
};

/// The paper's offline election: given measured average round-trip times
/// (rtt[i][j], ms; diagonal ignored), return the node whose connectivity
/// is best. "Well-connected" = smallest maximum RTT to any peer, with
/// mean RTT as tie-breaker - a node that can reach everybody fast, which
/// is what the <>n-source requirement needs.
ProcessId elect_well_connected(const std::vector<std::vector<double>>& rtt);

/// The opposite, used to reproduce the paper's "average leader"
/// experiment on the LAN: the node with median connectivity.
ProcessId pick_average_leader(const std::vector<std::vector<double>>& rtt);

}  // namespace timing

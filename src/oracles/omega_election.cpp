#include "oracles/omega_election.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace timing {

OmegaElection::OmegaElection(ProcessId self, int n,
                             std::unique_ptr<Protocol> inner,
                             ElectionConfig cfg)
    : self_(self), n_(n), cfg_(cfg), inner_(std::move(inner)),
      punish_(static_cast<std::size_t>(n), 0), leader_(0) {
  TM_CHECK(inner_ != nullptr, "inner protocol required");
  TM_CHECK(n > 1, "election needs n > 1");
  TM_CHECK(cfg_.miss_threshold >= 1, "miss threshold must be positive");
}

ProcessId OmegaElection::recompute_leader() const noexcept {
  ProcessId best = 0;
  for (ProcessId j = 1; j < n_; ++j) {
    if (punish_[static_cast<std::size_t>(j)] <
        punish_[static_cast<std::size_t>(best)]) {
      best = j;
    }
  }
  return best;
}

SendSpec OmegaElection::initialize(ProcessId /*external_hint_ignored*/) {
  leader_ = recompute_leader();
  SendSpec spec = inner_->initialize(leader_);
  spec.msg.punish = punish_;
  return spec;
}

SendSpec OmegaElection::compute(Round k, const RoundMsgs& received,
                                ProcessId /*external_hint_ignored*/) {
  // Merge counters pointwise-max from everything received.
  for (const auto& m : received) {
    if (!m || m->punish.size() != punish_.size()) continue;
    for (std::size_t j = 0; j < punish_.size(); ++j) {
      punish_[j] = std::max(punish_[j], m->punish[j]);
    }
  }

  // Miss detection against the leader we trusted THIS round (whose
  // message we were expecting).
  if (leader_ != self_) {
    if (received[static_cast<std::size_t>(leader_)].has_value()) {
      missed_ = 0;
    } else if (++missed_ >= cfg_.miss_threshold) {
      ++punish_[static_cast<std::size_t>(leader_)];
      missed_ = 0;
    }
  } else {
    missed_ = 0;
  }

  const ProcessId new_leader = recompute_leader();
  if (new_leader != leader_) {
    leader_ = new_leader;
    missed_ = 0;
  }
  // This is the process's Omega output for round k — exactly what the
  // inner protocol receives as its oracle hint below.
  trace_emit(trace_sink_, TraceEvent::oracle(k, self_, leader_));

  SendSpec spec = inner_->compute(k, received, leader_);
  spec.msg.punish = punish_;
  return spec;
}

}  // namespace timing

// An ONLINE Omega implementation layered under any leader-based protocol.
//
// The paper deliberately runs with a designated leader ("implementing a
// leader election algorithm is beyond the scope of this paper") and cites
// stable-election protocols [22, 24, 1] to justify the stable-leader
// assumption. This module supplies that missing piece so the library is
// deployable without an external oracle: a punishment-counter election in
// the style of Aguilera et al., piggybacked on the consensus messages.
//
// Protocol (per process i):
//  * a vector punish[n] of monotone counters, merged pointwise-max with
//    every received message's vector;
//  * the trusted leader is argmin_j (punish[j], j) - lexicographic, so
//    ties break by process id;
//  * when the trusted leader's messages have been missing for
//    `miss_threshold` consecutive rounds, i punishes it (increments its
//    counter) and immediately re-evaluates.
//
// Stabilization argument: once the network stabilizes, some process g is
// an eventual n-source (the <>WLM premise). Whenever g is trusted by
// everybody, its messages arrive, so punish[g] stops growing. Any
// better-ranked candidate b < g must keep failing to deliver to someone
// who trusts it (otherwise b would be a legitimate leader and the
// election may stabilize on b - also fine); every such failure bumps
// punish[b], so eventually (punish[b], b) > (punish[g], g) for every such
// b, and all processes converge on the same leader forever: exactly
// Omega. The elected leader is then an n-source and majority-destination,
// satisfying <>WLM's premises with respect to the Omega output.
//
// The wrapper forwards rounds unchanged to the inner protocol, passing
// the elected leader as its oracle hint and piggybacking the counters on
// the inner protocol's own messages; in <>WLM's stable state the merge
// information flows through the leader, which is sufficient.
#pragma once

#include <memory>
#include <vector>

#include "giraf/protocol.hpp"

namespace timing {

struct ElectionConfig {
  /// Consecutive silent rounds before the trusted leader is punished.
  /// 1 = punish on the first miss (fastest, twitchy); the default
  /// tolerates one lost message.
  int miss_threshold = 2;
};

class OmegaElection final : public Protocol {
 public:
  OmegaElection(ProcessId self, int n, std::unique_ptr<Protocol> inner,
                ElectionConfig cfg = {});

  SendSpec initialize(ProcessId leader_hint) override;
  SendSpec compute(Round k, const RoundMsgs& received,
                   ProcessId leader_hint) override;

  bool has_decided() const noexcept override { return inner_->has_decided(); }
  Value decision() const noexcept override { return inner_->decision(); }
  Timestamp current_ts() const noexcept override {
    return inner_->current_ts();
  }
  Value current_est() const noexcept override { return inner_->current_est(); }

  /// Tracing covers both layers: the election's OracleOutput events and
  /// the inner protocol's decide events share one sink.
  void set_trace_sink(TraceSink* sink) noexcept override {
    Protocol::set_trace_sink(sink);
    inner_->set_trace_sink(sink);
  }

  /// The leader this process currently trusts (its Omega output).
  ProcessId trusted_leader() const noexcept { return leader_; }
  /// Current punishment counter of process j (test introspection).
  Timestamp punish_count(ProcessId j) const noexcept {
    return punish_[static_cast<std::size_t>(j)];
  }

  std::unique_ptr<Protocol> clone() const override {
    auto inner_copy = inner_->clone();
    if (!inner_copy) return nullptr;
    auto copy = std::make_unique<OmegaElection>(self_, n_,
                                                std::move(inner_copy), cfg_);
    copy->punish_ = punish_;
    copy->missed_ = missed_;
    copy->leader_ = leader_;
    return copy;
  }

 private:
  ProcessId recompute_leader() const noexcept;

  const ProcessId self_;
  const int n_;
  const ElectionConfig cfg_;
  std::unique_ptr<Protocol> inner_;
  std::vector<Timestamp> punish_;
  int missed_ = 0;  ///< consecutive rounds without the trusted leader
  ProcessId leader_;
};

}  // namespace timing

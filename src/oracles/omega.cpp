#include "oracles/omega.hpp"

#include <algorithm>
#include <limits>
#include <tuple>

#include "common/check.hpp"

namespace timing {

UnstableOracle::UnstableOracle(int n, ProcessId final_leader,
                               Round stable_from, std::uint64_t seed)
    : n_(n), final_leader_(final_leader), stable_from_(stable_from),
      seed_(seed) {
  TM_CHECK(n > 1, "oracle needs n > 1");
  TM_CHECK(final_leader >= 0 && final_leader < n, "leader out of range");
}

ProcessId UnstableOracle::query(ProcessId self, Round k) {
  if (k >= stable_from_) return final_leader_;
  // Deterministic pseudo-random output per (self, k): repeated queries
  // agree, different processes may disagree (arbitrary pre-GSR output).
  std::uint64_t h = seed_ ^ (static_cast<std::uint64_t>(self) << 32) ^
                    static_cast<std::uint64_t>(k);
  h = splitmix64(h);
  return static_cast<ProcessId>(h % static_cast<std::uint64_t>(n_));
}

ScriptedOracle::ScriptedOracle(int n, ProcessId default_leader)
    : n_(n), default_leader_(default_leader) {
  TM_CHECK(default_leader >= 0 && default_leader < n,
           "default leader out of range");
}

void ScriptedOracle::script(ProcessId self, Round k, ProcessId answer) {
  TM_CHECK(answer >= 0 && answer < n_, "scripted answer out of range");
  entries_.emplace_back(self, k, answer);
}

ProcessId ScriptedOracle::query(ProcessId self, Round k) {
  for (const auto& [s, r, a] : entries_) {
    if (s == self && r == k) return a;
  }
  return default_leader_;
}

namespace {

struct Connectivity {
  double worst;
  double mean;
  ProcessId node;
};

std::vector<Connectivity> connectivity_of(
    const std::vector<std::vector<double>>& rtt) {
  const int n = static_cast<int>(rtt.size());
  std::vector<Connectivity> out;
  out.reserve(static_cast<std::size_t>(n));
  for (ProcessId i = 0; i < n; ++i) {
    double worst = 0.0;
    double sum = 0.0;
    for (ProcessId j = 0; j < n; ++j) {
      if (i == j) continue;
      worst = std::max(worst, rtt[i][j]);
      sum += rtt[i][j];
    }
    out.push_back({worst, n > 1 ? sum / (n - 1) : 0.0, i});
  }
  return out;
}

bool better(const Connectivity& a, const Connectivity& b) {
  return std::tie(a.worst, a.mean, a.node) < std::tie(b.worst, b.mean, b.node);
}

}  // namespace

ProcessId elect_well_connected(const std::vector<std::vector<double>>& rtt) {
  TM_CHECK(rtt.size() > 1, "need at least 2 nodes to elect");
  auto conn = connectivity_of(rtt);
  return std::min_element(conn.begin(), conn.end(), better)->node;
}

ProcessId pick_average_leader(const std::vector<std::vector<double>>& rtt) {
  TM_CHECK(rtt.size() > 1, "need at least 2 nodes");
  auto conn = connectivity_of(rtt);
  std::sort(conn.begin(), conn.end(), better);
  return conn[conn.size() / 2].node;
}

}  // namespace timing

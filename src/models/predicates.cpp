#include "models/predicates.hpp"

#include "common/check.hpp"

namespace timing {

namespace {

bool alive(const CorrectMask* correct, ProcessId i) {
  return correct == nullptr || (*correct)[static_cast<std::size_t>(i)];
}

/// Timely links into `dst` from correct sources (self included).
int timely_in_from_correct(const LinkMatrix& a, ProcessId dst,
                           const CorrectMask* correct) {
  int c = 0;
  for (ProcessId s = 0; s < a.n(); ++s) {
    if (alive(correct, s) && a.timely(dst, s)) ++c;
  }
  return c;
}

/// Timely links out of `src`; recipients need not be correct (the paper's
/// <>j-source definition does not require correctness of recipients), but
/// delivery to a crashed process is vacuous, so we count all rows.
int timely_out(const LinkMatrix& a, ProcessId src) {
  int c = 0;
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (a.timely(d, src)) ++c;
  }
  return c;
}

}  // namespace

bool satisfies_es(const LinkMatrix& a, const CorrectMask* correct) {
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (!alive(correct, d)) continue;
    for (ProcessId s = 0; s < a.n(); ++s) {
      if (!alive(correct, s)) continue;
      if (!a.timely(d, s)) return false;
    }
  }
  return true;
}

bool satisfies_lm(const LinkMatrix& a, ProcessId leader,
                  const CorrectMask* correct) {
  TM_CHECK(leader >= 0 && leader < a.n(), "leader out of range");
  if (!alive(correct, leader)) return false;
  // Leader is an n-source: timely outgoing links to all n processes.
  // A crashed recipient satisfies the requirement vacuously.
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (alive(correct, d) && !a.timely(d, leader)) return false;
  }
  const int maj = majority_size(a.n());
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (!alive(correct, d)) continue;
    if (timely_in_from_correct(a, d, correct) < maj) return false;
  }
  return true;
}

bool satisfies_wlm(const LinkMatrix& a, ProcessId leader,
                   const CorrectMask* correct) {
  TM_CHECK(leader >= 0 && leader < a.n(), "leader out of range");
  if (!alive(correct, leader)) return false;
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (alive(correct, d) && !a.timely(d, leader)) return false;
  }
  return timely_in_from_correct(a, leader, correct) >= majority_size(a.n());
}

bool satisfies_afm(const LinkMatrix& a, const CorrectMask* correct) {
  const int maj = majority_size(a.n());
  for (ProcessId i = 0; i < a.n(); ++i) {
    if (!alive(correct, i)) continue;
    if (timely_in_from_correct(a, i, correct) < maj) return false;
    // Majority-source: count all timely outgoing links (self included).
    if (correct == nullptr) {
      if (timely_out(a, i) < maj) return false;
    } else {
      int c = 0;
      for (ProcessId d = 0; d < a.n(); ++d) {
        // Recipients need not be correct for the source count, but a
        // crashed destination cannot "receive"; in failure-free runs the
        // distinction is moot. We count deliveries to correct processes
        // plus the self link, the conservative reading.
        if ((d == i || alive(correct, d)) && a.timely(d, i)) ++c;
      }
      if (c < maj) return false;
    }
  }
  return true;
}

bool satisfies(TimingModel m, const LinkMatrix& a, ProcessId leader,
               const CorrectMask* correct) {
  switch (m) {
    case TimingModel::kEs: return satisfies_es(a, correct);
    case TimingModel::kLm: return satisfies_lm(a, leader, correct);
    case TimingModel::kWlm: return satisfies_wlm(a, leader, correct);
    case TimingModel::kAfm: return satisfies_afm(a, correct);
  }
  return false;
}

std::uint8_t evaluate_all(const LinkMatrix& a, ProcessId leader,
                          const CorrectMask* correct, TraceSink* sink,
                          Round k) {
  std::uint8_t mask = 0;
  for (TimingModel m : kAllModels) {
    if (satisfies(m, a, leader, correct)) {
      mask |= static_cast<std::uint8_t>(1u << static_cast<int>(m));
    }
  }
  trace_emit(sink, TraceEvent::predicates(k, mask));
  return mask;
}

// ---------------------------------------------------------------------
// Packed fast path. The sim/packed_eval.hpp kernels use their own bit
// constants so sim/ does not depend on the TimingModel enum; pin the two
// orders together here, where both are visible.
static_assert(kPackedEsBit == 1u << static_cast<int>(TimingModel::kEs));
static_assert(kPackedLmBit == 1u << static_cast<int>(TimingModel::kLm));
static_assert(kPackedWlmBit == 1u << static_cast<int>(TimingModel::kWlm));
static_assert(kPackedAfmBit == 1u << static_cast<int>(TimingModel::kAfm));

bool satisfies_es(const PackedLinkMatrix& a, const CorrectMask* correct) {
  if (correct == nullptr) {
    return (packed_evaluate_mask(a, 0) & kPackedEsBit) != 0;
  }
  return packed_satisfies_es(a, PackedCorrectMask(*correct, a.n()));
}

bool satisfies_lm(const PackedLinkMatrix& a, ProcessId leader,
                  const CorrectMask* correct) {
  TM_CHECK(leader >= 0 && leader < a.n(), "leader out of range");
  if (correct == nullptr) {
    return (packed_evaluate_mask(a, leader) & kPackedLmBit) != 0;
  }
  return packed_satisfies_lm(a, leader, PackedCorrectMask(*correct, a.n()));
}

bool satisfies_wlm(const PackedLinkMatrix& a, ProcessId leader,
                   const CorrectMask* correct) {
  TM_CHECK(leader >= 0 && leader < a.n(), "leader out of range");
  if (correct == nullptr) {
    return (packed_evaluate_mask(a, leader) & kPackedWlmBit) != 0;
  }
  return packed_satisfies_wlm(a, leader, PackedCorrectMask(*correct, a.n()));
}

bool satisfies_afm(const PackedLinkMatrix& a, const CorrectMask* correct) {
  if (correct == nullptr) {
    return (packed_evaluate_mask(a, 0) & kPackedAfmBit) != 0;
  }
  return packed_satisfies_afm(a, PackedCorrectMask(*correct, a.n()));
}

bool satisfies(TimingModel m, const PackedLinkMatrix& a, ProcessId leader,
               const CorrectMask* correct) {
  switch (m) {
    case TimingModel::kEs: return satisfies_es(a, correct);
    case TimingModel::kLm: return satisfies_lm(a, leader, correct);
    case TimingModel::kWlm: return satisfies_wlm(a, leader, correct);
    case TimingModel::kAfm: return satisfies_afm(a, correct);
  }
  return false;
}

std::uint8_t evaluate_all(const PackedLinkMatrix& a, ProcessId leader,
                          const CorrectMask* correct, TraceSink* sink,
                          Round k) {
  TM_CHECK(leader >= 0 && leader < a.n(), "leader out of range");
  std::uint8_t mask = 0;
  if (correct == nullptr) {
    // One sweep computes all four models; scratch is per-thread so the
    // hot failure-free path never allocates.
    thread_local ColumnDeficits cols;
    mask = packed_evaluate_mask(a, leader, cols);
  } else {
    const PackedCorrectMask cm(*correct, a.n());
    if (packed_satisfies_es(a, cm)) mask |= kPackedEsBit;
    if (cm.test(leader)) {
      if (packed_satisfies_lm(a, leader, cm)) mask |= kPackedLmBit;
      if (packed_satisfies_wlm(a, leader, cm)) mask |= kPackedWlmBit;
    }
    if (packed_satisfies_afm(a, cm)) mask |= kPackedAfmBit;
  }
  trace_emit(sink, TraceEvent::predicates(k, mask));
  return mask;
}

}  // namespace timing

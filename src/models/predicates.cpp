#include "models/predicates.hpp"

#include <type_traits>
#include <utility>

#include "common/check.hpp"

namespace timing {

namespace {

bool alive(const CorrectMask* correct, ProcessId i) {
  return correct == nullptr || (*correct)[static_cast<std::size_t>(i)];
}

/// Timely links into `dst` from correct sources (self included).
int timely_in_from_correct(const LinkMatrix& a, ProcessId dst,
                           const CorrectMask* correct) {
  int c = 0;
  for (ProcessId s = 0; s < a.n(); ++s) {
    if (alive(correct, s) && a.timely(dst, s)) ++c;
  }
  return c;
}

/// Timely links out of `src`; recipients need not be correct (the paper's
/// <>j-source definition does not require correctness of recipients), but
/// delivery to a crashed process is vacuous, so we count all rows.
int timely_out(const LinkMatrix& a, ProcessId src) {
  int c = 0;
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (a.timely(d, src)) ++c;
  }
  return c;
}

}  // namespace

bool satisfies_es(const LinkMatrix& a, const CorrectMask* correct) {
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (!alive(correct, d)) continue;
    for (ProcessId s = 0; s < a.n(); ++s) {
      if (!alive(correct, s)) continue;
      if (!a.timely(d, s)) return false;
    }
  }
  return true;
}

bool satisfies_lm(const LinkMatrix& a, ProcessId leader,
                  const CorrectMask* correct) {
  TM_CHECK(leader >= 0 && leader < a.n(), "leader out of range");
  if (!alive(correct, leader)) return false;
  // Leader is an n-source: timely outgoing links to all n processes.
  // A crashed recipient satisfies the requirement vacuously.
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (alive(correct, d) && !a.timely(d, leader)) return false;
  }
  const int maj = majority_size(a.n());
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (!alive(correct, d)) continue;
    if (timely_in_from_correct(a, d, correct) < maj) return false;
  }
  return true;
}

bool satisfies_wlm(const LinkMatrix& a, ProcessId leader,
                   const CorrectMask* correct) {
  TM_CHECK(leader >= 0 && leader < a.n(), "leader out of range");
  if (!alive(correct, leader)) return false;
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (alive(correct, d) && !a.timely(d, leader)) return false;
  }
  return timely_in_from_correct(a, leader, correct) >= majority_size(a.n());
}

bool satisfies_afm(const LinkMatrix& a, const CorrectMask* correct) {
  const int maj = majority_size(a.n());
  for (ProcessId i = 0; i < a.n(); ++i) {
    if (!alive(correct, i)) continue;
    if (timely_in_from_correct(a, i, correct) < maj) return false;
    // Majority-source: count all timely outgoing links (self included).
    if (correct == nullptr) {
      if (timely_out(a, i) < maj) return false;
    } else {
      int c = 0;
      for (ProcessId d = 0; d < a.n(); ++d) {
        // Recipients need not be correct for the source count, but a
        // crashed destination cannot "receive"; in failure-free runs the
        // distinction is moot. We count deliveries to correct processes
        // plus the self link, the conservative reading.
        if ((d == i || alive(correct, d)) && a.timely(d, i)) ++c;
      }
      if (c < maj) return false;
    }
  }
  return true;
}

bool satisfies(TimingModel m, const LinkMatrix& a, ProcessId leader,
               const CorrectMask* correct) {
  switch (m) {
    case TimingModel::kEs: return satisfies_es(a, correct);
    case TimingModel::kLm: return satisfies_lm(a, leader, correct);
    case TimingModel::kWlm: return satisfies_wlm(a, leader, correct);
    case TimingModel::kAfm: return satisfies_afm(a, correct);
  }
  return false;
}

// ---------------------------------------------------------------------
// Packed fast path. The sim/packed_eval.hpp kernels use their own bit
// constants so sim/ does not depend on the TimingModel enum; pin the two
// orders together here, where both are visible.
static_assert(kPackedEsBit == 1u << static_cast<int>(TimingModel::kEs));
static_assert(kPackedLmBit == 1u << static_cast<int>(TimingModel::kLm));
static_assert(kPackedWlmBit == 1u << static_cast<int>(TimingModel::kWlm));
static_assert(kPackedAfmBit == 1u << static_cast<int>(TimingModel::kAfm));

bool satisfies_es(const PackedLinkMatrix& a, const CorrectMask* correct) {
  if (correct == nullptr) {
    return (packed_evaluate_mask(a, 0) & kPackedEsBit) != 0;
  }
  return packed_satisfies_es(a, PackedCorrectMask(*correct, a.n()));
}

bool satisfies_lm(const PackedLinkMatrix& a, ProcessId leader,
                  const CorrectMask* correct) {
  TM_CHECK(leader >= 0 && leader < a.n(), "leader out of range");
  if (correct == nullptr) {
    return (packed_evaluate_mask(a, leader) & kPackedLmBit) != 0;
  }
  return packed_satisfies_lm(a, leader, PackedCorrectMask(*correct, a.n()));
}

bool satisfies_wlm(const PackedLinkMatrix& a, ProcessId leader,
                   const CorrectMask* correct) {
  TM_CHECK(leader >= 0 && leader < a.n(), "leader out of range");
  if (correct == nullptr) {
    return (packed_evaluate_mask(a, leader) & kPackedWlmBit) != 0;
  }
  return packed_satisfies_wlm(a, leader, PackedCorrectMask(*correct, a.n()));
}

bool satisfies_afm(const PackedLinkMatrix& a, const CorrectMask* correct) {
  if (correct == nullptr) {
    return (packed_evaluate_mask(a, 0) & kPackedAfmBit) != 0;
  }
  return packed_satisfies_afm(a, PackedCorrectMask(*correct, a.n()));
}

bool satisfies(TimingModel m, const PackedLinkMatrix& a, ProcessId leader,
               const CorrectMask* correct) {
  switch (m) {
    case TimingModel::kEs: return satisfies_es(a, correct);
    case TimingModel::kLm: return satisfies_lm(a, leader, correct);
    case TimingModel::kWlm: return satisfies_wlm(a, leader, correct);
    case TimingModel::kAfm: return satisfies_afm(a, correct);
  }
  return false;
}

// ---------------------------------------------------------------------
// One templated body behind each scalar/packed overload pair (the
// granular variants below reuse the same shape, so four entry points
// share two implementations instead of four diverging loops).

namespace {

template <class Matrix>
std::uint8_t evaluate_mask(const Matrix& a, ProcessId leader,
                           const CorrectMask* correct) {
  if constexpr (std::is_same_v<Matrix, PackedLinkMatrix>) {
    if (correct == nullptr) {
      // One sweep computes all four models; scratch is per-thread so the
      // hot failure-free path never allocates.
      thread_local ColumnDeficits cols;
      return packed_evaluate_mask(a, leader, cols);
    }
    // Crash path: build the packed aliveness mask once for all four.
    const PackedCorrectMask cm(*correct, a.n());
    std::uint8_t mask = 0;
    if (packed_satisfies_es(a, cm)) mask |= kPackedEsBit;
    if (cm.test(leader)) {
      if (packed_satisfies_lm(a, leader, cm)) mask |= kPackedLmBit;
      if (packed_satisfies_wlm(a, leader, cm)) mask |= kPackedWlmBit;
    }
    if (packed_satisfies_afm(a, cm)) mask |= kPackedAfmBit;
    return mask;
  } else {
    std::uint8_t mask = 0;
    for (TimingModel m : kAllModels) {
      if (satisfies(m, a, leader, correct)) {
        mask |= static_cast<std::uint8_t>(1u << static_cast<int>(m));
      }
    }
    return mask;
  }
}

template <class Matrix>
std::uint8_t evaluate_all_impl(const Matrix& a, ProcessId leader,
                               const CorrectMask* correct, TraceSink* sink,
                               Round k) {
  TM_CHECK(leader >= 0 && leader < a.n(), "leader out of range");
  const std::uint8_t mask = evaluate_mask(a, leader, correct);
  trace_emit(sink, TraceEvent::predicates(k, mask));
  return mask;
}

}  // namespace

std::uint8_t evaluate_all(const LinkMatrix& a, ProcessId leader,
                          const CorrectMask* correct, TraceSink* sink,
                          Round k) {
  return evaluate_all_impl(a, leader, correct, sink, k);
}

std::uint8_t evaluate_all(const PackedLinkMatrix& a, ProcessId leader,
                          const CorrectMask* correct, TraceSink* sink,
                          Round k) {
  return evaluate_all_impl(a, leader, correct, sink, k);
}

// ---------------------------------------------------------------------
// Granular predicates. Pin the LinkModelClass order to the generic class
// indices of sim/packed_eval.hpp (sync and psync required, async exempt)
// and to the obs csat bit order, here where all three are visible.
static_assert(static_cast<int>(LinkModelClass::kSync) == 0);
static_assert(static_cast<int>(LinkModelClass::kPartialSync) == 1);
static_assert(static_cast<int>(LinkModelClass::kAsync) == 2);
static_assert(kNumLinkModelClasses == GranularPlanes::kNumClasses);
static_assert(static_cast<int>(LinkModelClass::kPartialSync) <
              GranularPlanes::kNumRequiredClasses);
static_assert(static_cast<int>(LinkModelClass::kAsync) >=
              GranularPlanes::kNumRequiredClasses);
static_assert(kNumLinkModelClasses == kTraceNumLinkClasses);

GranularContext::GranularContext(LinkModelMatrix matrix)
    : matrix_(std::move(matrix)),
      planes_(matrix_.n(),
              [this](ProcessId dst, ProcessId src) {
                return static_cast<int>(matrix_.at(dst, src));
              }),
      all_sync_(matrix_.all_sync()) {}

namespace {

/// Required-and-timely links into `dst` from correct sources (self
/// included; self links are always required).
int granular_timely_in(const LinkMatrix& a, const GranularContext& g,
                       ProcessId dst, const CorrectMask* correct) {
  int c = 0;
  for (ProcessId s = 0; s < a.n(); ++s) {
    if (alive(correct, s) && g.matrix().reliable(dst, s) &&
        a.timely(dst, s)) {
      ++c;
    }
  }
  return c;
}

bool granular_es(const LinkMatrix& a, const GranularContext& g,
                 const CorrectMask* correct) {
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (!alive(correct, d)) continue;
    for (ProcessId s = 0; s < a.n(); ++s) {
      if (!alive(correct, s)) continue;
      if (g.matrix().reliable(d, s) && !a.timely(d, s)) return false;
    }
  }
  return true;
}

/// Required leader-column links into correct processes are timely; an
/// async (d <- leader) link is vacuously fine.
bool granular_leader_column_ok(const LinkMatrix& a, const GranularContext& g,
                               ProcessId leader,
                               const CorrectMask* correct) {
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (!alive(correct, d)) continue;
    if (g.matrix().reliable(d, leader) && !a.timely(d, leader)) return false;
  }
  return true;
}

bool granular_lm(const LinkMatrix& a, const GranularContext& g,
                 ProcessId leader, const CorrectMask* correct) {
  if (!alive(correct, leader)) return false;
  if (!granular_leader_column_ok(a, g, leader, correct)) return false;
  const int maj = majority_size(a.n());
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (!alive(correct, d)) continue;
    if (granular_timely_in(a, g, d, correct) < maj) return false;
  }
  return true;
}

bool granular_wlm(const LinkMatrix& a, const GranularContext& g,
                  ProcessId leader, const CorrectMask* correct) {
  if (!alive(correct, leader)) return false;
  if (!granular_leader_column_ok(a, g, leader, correct)) return false;
  return granular_timely_in(a, g, leader, correct) >= majority_size(a.n());
}

bool granular_afm(const LinkMatrix& a, const GranularContext& g,
                  const CorrectMask* correct) {
  const int maj = majority_size(a.n());
  for (ProcessId i = 0; i < a.n(); ++i) {
    if (!alive(correct, i)) continue;
    if (granular_timely_in(a, g, i, correct) < maj) return false;
    // Majority-source over required links, same recipient convention as
    // the homogeneous predicate above.
    int c = 0;
    for (ProcessId d = 0; d < a.n(); ++d) {
      if ((d == i || alive(correct, d)) && g.matrix().reliable(d, i) &&
          a.timely(d, i)) {
        ++c;
      }
    }
    if (c < maj) return false;
  }
  return true;
}

/// Scalar per-class conformance: bit c iff all class-c links between
/// correct processes were timely.
std::uint8_t granular_class_conformance(const LinkMatrix& a,
                                        const GranularContext& g,
                                        const CorrectMask* correct) {
  bool class_ok[kNumLinkModelClasses] = {true, true, true};
  for (ProcessId d = 0; d < a.n(); ++d) {
    if (!alive(correct, d)) continue;
    for (ProcessId s = 0; s < a.n(); ++s) {
      if (!alive(correct, s)) continue;
      if (!a.timely(d, s)) {
        class_ok[static_cast<int>(g.matrix().at(d, s))] = false;
      }
    }
  }
  std::uint8_t csat = 0;
  for (int c = 0; c < kNumLinkModelClasses; ++c) {
    if (class_ok[c]) csat |= static_cast<std::uint8_t>(1u << c);
  }
  return csat;
}

template <class Matrix>
GranularEval evaluate_granular_mask(const Matrix& a, ProcessId leader,
                                    const GranularContext& g,
                                    const CorrectMask* correct) {
  GranularEval out;
  if constexpr (std::is_same_v<Matrix, PackedLinkMatrix>) {
    if (correct == nullptr) {
      thread_local ColumnDeficits cols;
      const GranularPackedEval e =
          packed_evaluate_granular(a, leader, g.planes(), cols);
      out.sat = e.sat;
      out.csat = e.csat;
      return out;
    }
    const PackedCorrectMask cm(*correct, a.n());
    if (packed_granular_satisfies_es(a, g.planes(), cm)) {
      out.sat |= kPackedEsBit;
    }
    if (cm.test(leader)) {
      if (packed_granular_satisfies_lm(a, g.planes(), leader, cm)) {
        out.sat |= kPackedLmBit;
      }
      if (packed_granular_satisfies_wlm(a, g.planes(), leader, cm)) {
        out.sat |= kPackedWlmBit;
      }
    }
    if (packed_granular_satisfies_afm(a, g.planes(), cm)) {
      out.sat |= kPackedAfmBit;
    }
    out.csat = packed_granular_class_conformance(a, g.planes(), cm);
    return out;
  } else {
    for (TimingModel m : kAllModels) {
      if (satisfies_granular(m, a, leader, g, correct)) {
        out.sat |= static_cast<std::uint8_t>(1u << static_cast<int>(m));
      }
    }
    out.csat = granular_class_conformance(a, g, correct);
    return out;
  }
}

template <class Matrix>
GranularEval evaluate_all_granular_impl(const Matrix& a, ProcessId leader,
                                        const GranularContext& g,
                                        const CorrectMask* correct,
                                        TraceSink* sink, Round k) {
  TM_CHECK(leader >= 0 && leader < a.n(), "leader out of range");
  TM_CHECK(g.n() == a.n(), "link model matrix size mismatch");
  const GranularEval e = evaluate_granular_mask(a, leader, g, correct);
  trace_emit(sink, TraceEvent::granular_predicates(k, e.sat, e.csat));
  return e;
}

}  // namespace

bool satisfies_granular(TimingModel m, const LinkMatrix& a, ProcessId leader,
                        const GranularContext& g,
                        const CorrectMask* correct) {
  TM_CHECK(g.n() == a.n(), "link model matrix size mismatch");
  switch (m) {
    case TimingModel::kEs: return granular_es(a, g, correct);
    case TimingModel::kLm:
      TM_CHECK(leader >= 0 && leader < a.n(), "leader out of range");
      return granular_lm(a, g, leader, correct);
    case TimingModel::kWlm:
      TM_CHECK(leader >= 0 && leader < a.n(), "leader out of range");
      return granular_wlm(a, g, leader, correct);
    case TimingModel::kAfm: return granular_afm(a, g, correct);
  }
  return false;
}

bool satisfies_granular(TimingModel m, const PackedLinkMatrix& a,
                        ProcessId leader, const GranularContext& g,
                        const CorrectMask* correct) {
  TM_CHECK(g.n() == a.n(), "link model matrix size mismatch");
  TM_CHECK(leader >= 0 && leader < a.n(), "leader out of range");
  if (correct == nullptr) {
    const GranularPackedEval e = packed_evaluate_granular(a, leader,
                                                          g.planes());
    return (e.sat & (1u << static_cast<int>(m))) != 0;
  }
  const PackedCorrectMask cm(*correct, a.n());
  switch (m) {
    case TimingModel::kEs:
      return packed_granular_satisfies_es(a, g.planes(), cm);
    case TimingModel::kLm:
      return packed_granular_satisfies_lm(a, g.planes(), leader, cm);
    case TimingModel::kWlm:
      return packed_granular_satisfies_wlm(a, g.planes(), leader, cm);
    case TimingModel::kAfm:
      return packed_granular_satisfies_afm(a, g.planes(), cm);
  }
  return false;
}

GranularEval evaluate_all_granular(const LinkMatrix& a, ProcessId leader,
                                   const GranularContext& g,
                                   const CorrectMask* correct,
                                   TraceSink* sink, Round k) {
  return evaluate_all_granular_impl(a, leader, g, correct, sink, k);
}

GranularEval evaluate_all_granular(const PackedLinkMatrix& a,
                                   ProcessId leader, const GranularContext& g,
                                   const CorrectMask* correct,
                                   TraceSink* sink, Round k) {
  return evaluate_all_granular_impl(a, leader, g, correct, sink, k);
}

}  // namespace timing

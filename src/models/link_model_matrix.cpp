#include "models/link_model_matrix.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/parse.hpp"
#include "common/rng.hpp"

namespace timing {

const char* to_string(LinkModelClass c) noexcept {
  switch (c) {
    case LinkModelClass::kSync: return "sync";
    case LinkModelClass::kPartialSync: return "psync";
    case LinkModelClass::kAsync: return "async";
  }
  return "?";
}

bool link_model_class_from_string(const std::string& s, LinkModelClass& out) {
  if (s == "sync") {
    out = LinkModelClass::kSync;
  } else if (s == "psync" || s == "partial-sync") {
    out = LinkModelClass::kPartialSync;
  } else if (s == "async") {
    out = LinkModelClass::kAsync;
  } else {
    return false;
  }
  return true;
}

LinkModelMatrix::LinkModelMatrix(int n)
    : n_(n),
      cells_(static_cast<std::size_t>(n) * n,
             static_cast<std::uint8_t>(LinkModelClass::kSync)) {
  TM_CHECK(n >= 0, "negative matrix size");
}

void LinkModelMatrix::set(ProcessId dst, ProcessId src,
                          LinkModelClass c) noexcept {
  if (dst == src) c = LinkModelClass::kSync;
  cells_[static_cast<std::size_t>(dst) * n_ + src] =
      static_cast<std::uint8_t>(c);
}

bool LinkModelMatrix::all_sync() const noexcept {
  for (const std::uint8_t c : cells_) {
    if (c != static_cast<std::uint8_t>(LinkModelClass::kSync)) return false;
  }
  return true;
}

int LinkModelMatrix::count(LinkModelClass c) const noexcept {
  int k = 0;
  for (const std::uint8_t cell : cells_) {
    if (cell == static_cast<std::uint8_t>(c)) ++k;
  }
  return k;
}

LinkModelMatrix LinkModelMatrix::uniform(int n, LinkModelClass c) {
  LinkModelMatrix m(n);
  for (ProcessId d = 0; d < n; ++d) {
    for (ProcessId s = 0; s < n; ++s) m.set(d, s, c);
  }
  return m;
}

LinkModelMatrix LinkModelMatrix::mixed(int n, double async_frac,
                                       double psync_frac,
                                       std::uint64_t seed) {
  TM_CHECK(async_frac >= 0.0 && async_frac <= 1.0, "async_frac out of range");
  TM_CHECK(psync_frac >= 0.0 && psync_frac <= 1.0, "psync_frac out of range");
  LinkModelMatrix m(n);
  // Off-diagonal links in row-major order, then a seeded Fisher-Yates
  // shuffle; the first round(async_frac * L) become async, the next
  // round(psync_frac * rest) psync.
  std::vector<std::pair<ProcessId, ProcessId>> links;
  links.reserve(static_cast<std::size_t>(n) * (n > 0 ? n - 1 : 0));
  for (ProcessId d = 0; d < n; ++d) {
    for (ProcessId s = 0; s < n; ++s) {
      if (d != s) links.emplace_back(d, s);
    }
  }
  Rng rng(substream_seed(seed, 0x6c6d6dULL));  // "lmm"
  for (std::size_t i = links.size(); i > 1; --i) {
    std::swap(links[i - 1], links[rng.uniform_int(i)]);
  }
  const auto total = static_cast<double>(links.size());
  const auto n_async =
      static_cast<std::size_t>(async_frac * total + 0.5);
  const auto n_psync = static_cast<std::size_t>(
      psync_frac * (total - static_cast<double>(n_async)) + 0.5);
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (i < n_async) {
      m.set(links[i].first, links[i].second, LinkModelClass::kAsync);
    } else if (i < n_async + n_psync) {
      m.set(links[i].first, links[i].second, LinkModelClass::kPartialSync);
    }
  }
  return m;
}

std::string LinkModelMatrix::grid() const {
  static constexpr char kGlyph[kNumLinkModelClasses] = {'S', 'P', 'A'};
  std::string out;
  for (ProcessId d = 0; d < n_; ++d) {
    for (ProcessId s = 0; s < n_; ++s) {
      if (s > 0) out += ' ';
      out += kGlyph[static_cast<int>(at(d, s))];
    }
    out += '\n';
  }
  return out;
}

std::string LinkModelMatrix::spec() const {
  std::string out = "sync:all";
  for (LinkModelClass cls :
       {LinkModelClass::kPartialSync, LinkModelClass::kAsync}) {
    std::string clause;
    for (ProcessId s = 0; s < n_; ++s) {
      for (ProcessId d = 0; d < n_; ++d) {
        if (d == s || at(d, s) != cls) continue;
        if (!clause.empty()) clause += ',';
        clause += std::to_string(s) + "->" + std::to_string(d);
      }
    }
    if (!clause.empty()) {
      out += ';';
      out += to_string(cls);
      out += ':';
      out += clause;
    }
  }
  return out;
}

namespace {

/// Endpoint of a pair: a process id or the '*' wildcard (kNoProcess).
bool parse_endpoint(const std::string& s, int n, ProcessId& out,
                    std::string& err) {
  if (s == "*") {
    out = kNoProcess;
    return true;
  }
  int v = 0;
  if (!parse_int(s, v)) {
    err = "bad process '" + s + "'";
    return false;
  }
  if (v < 0 || v >= n) {
    err = "process " + std::to_string(v) + " out of range for n=" +
          std::to_string(n);
    return false;
  }
  out = v;
  return true;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

std::string parse_link_models(const std::string& spec, int n,
                              LinkModelMatrix& out) {
  LinkModelMatrix m(n);
  if (spec.empty()) return "link_models: empty spec";
  for (const std::string& clause : split(spec, ';')) {
    const std::size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      return "link_models: clause '" + clause + "' is missing ':'";
    }
    LinkModelClass cls;
    const std::string cls_str = clause.substr(0, colon);
    if (!link_model_class_from_string(cls_str, cls)) {
      return "link_models: unknown class '" + cls_str + "' in clause '" +
             clause + "' (want sync|psync|async)";
    }
    const std::string targets = clause.substr(colon + 1);
    if (targets == "all") {
      for (ProcessId d = 0; d < n; ++d) {
        for (ProcessId s = 0; s < n; ++s) {
          if (d != s) m.set(d, s, cls);
        }
      }
      continue;
    }
    if (targets.empty()) {
      return "link_models: clause '" + clause + "' has no targets";
    }
    for (const std::string& pair : split(targets, ',')) {
      const std::size_t arrow = pair.find("->");
      if (arrow == std::string::npos) {
        return "link_models: bad pair '" + pair + "' (want src->dst)";
      }
      ProcessId src = kNoProcess;
      ProcessId dst = kNoProcess;
      std::string err;
      if (!parse_endpoint(pair.substr(0, arrow), n, src, err) ||
          !parse_endpoint(pair.substr(arrow + 2), n, dst, err)) {
        return "link_models: " + err + " in pair '" + pair + "'";
      }
      if (src != kNoProcess && src == dst && cls != LinkModelClass::kSync) {
        return "link_models: self link " + pair +
               " must be sync (self links always count)";
      }
      for (ProcessId d = 0; d < n; ++d) {
        if (dst != kNoProcess && d != dst) continue;
        for (ProcessId s = 0; s < n; ++s) {
          if (src != kNoProcess && s != src) continue;
          if (d == s) continue;  // wildcards skip self links
          m.set(d, s, cls);
        }
      }
    }
  }
  out = std::move(m);
  return std::string();
}

}  // namespace timing

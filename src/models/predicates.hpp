// Per-round predicates: does the communication matrix A of one round meet
// the timeliness requirements of a timing model? (Section 4.1.)
//
// Conventions, matching the paper's analysis and measurements:
//  * rows of A are destinations, columns are sources;
//  * a process's link with itself counts towards source/destination counts
//    (footnote 1 in the paper), and LinkMatrix always marks self links
//    timely;
//  * all processes are assumed correct unless a `correct` mask is given -
//    the measurement sections run failure-free experiments, like the paper.
//
// Every predicate exists in two equivalent implementations:
//  * the scalar path over LinkMatrix (the original per-cell loops) — kept
//    as the oracle;
//  * the packed path over PackedLinkMatrix (sim/packed_eval.hpp):
//    popcounts and word compares over the uint64 bit plane.
// tests/predicate_kernel_test.cpp asserts they agree bit-for-bit on
// randomized matrices across the one-word/two-word row boundary and under
// crash masks.
#pragma once

#include <cstdint>
#include <vector>

#include "models/link_model_matrix.hpp"
#include "models/timing_model.hpp"
#include "obs/trace_sink.hpp"
#include "sim/link_matrix.hpp"
#include "sim/packed_eval.hpp"

namespace timing {

/// Optional aliveness mask; null means everyone is correct.
using CorrectMask = std::vector<bool>;

/// ES: every link between correct processes is timely.
bool satisfies_es(const LinkMatrix& a, const CorrectMask* correct = nullptr);
bool satisfies_es(const PackedLinkMatrix& a,
                  const CorrectMask* correct = nullptr);

/// <>LM: the leader is an n-source this round (its column is all timely)
/// and every correct process receives timely messages from at least
/// floor(n/2)+1 correct processes (every row has a majority of ones).
bool satisfies_lm(const LinkMatrix& a, ProcessId leader,
                  const CorrectMask* correct = nullptr);
bool satisfies_lm(const PackedLinkMatrix& a, ProcessId leader,
                  const CorrectMask* correct = nullptr);

/// <>WLM: the leader is an n-source this round and receives timely
/// messages from a majority (only the leader's row needs a majority).
bool satisfies_wlm(const LinkMatrix& a, ProcessId leader,
                   const CorrectMask* correct = nullptr);
bool satisfies_wlm(const PackedLinkMatrix& a, ProcessId leader,
                   const CorrectMask* correct = nullptr);

/// <>AFM (simplified): every correct process is a majority-destination and
/// a majority-source this round.
bool satisfies_afm(const LinkMatrix& a, const CorrectMask* correct = nullptr);
bool satisfies_afm(const PackedLinkMatrix& a,
                   const CorrectMask* correct = nullptr);

/// Dispatch on the model. `leader` is ignored for ES and <>AFM.
bool satisfies(TimingModel m, const LinkMatrix& a, ProcessId leader,
               const CorrectMask* correct = nullptr);
bool satisfies(TimingModel m, const PackedLinkMatrix& a, ProcessId leader,
               const CorrectMask* correct = nullptr);

/// Evaluate all four predicates at once; bit static_cast<int>(m) of the
/// result is set iff model m held (the canonical ES/LM/WLM/AFM bit order
/// of obs/trace_event.hpp). When `sink` is non-null, one PredicateEval
/// event for round `k` is emitted — this is the instrumentation point the
/// measurement harness records P_M incidence through.
std::uint8_t evaluate_all(const LinkMatrix& a, ProcessId leader,
                          const CorrectMask* correct = nullptr,
                          TraceSink* sink = nullptr, Round k = 0);

/// Packed fast path: one sweep over the bit plane (popcounts + word
/// compares; see sim/packed_eval.hpp). Identical mask and trace event.
std::uint8_t evaluate_all(const PackedLinkMatrix& a, ProcessId leader,
                          const CorrectMask* correct = nullptr,
                          TraceSink* sink = nullptr, Round k = 0);

// ---------------------------------------------------------------------
// Granular (per-link) predicates. Every requirement and quorum count is
// restricted to the *reliable* plane of a LinkModelMatrix (sync + psync
// links); async links carry no obligation and cannot count towards a
// quorum (see link_model_matrix.hpp for the full semantics). With an
// all-sync matrix the granular predicates are bit-identical to the
// homogeneous ones above — tests/granular_test.cpp pins that.

/// Immutable evaluation context for one LinkModelMatrix: owns the matrix
/// plus the pre-packed bit planes the granular kernels sweep. Build once
/// per trial (or per scenario), evaluate many rounds.
class GranularContext {
 public:
  explicit GranularContext(LinkModelMatrix matrix);

  int n() const noexcept { return matrix_.n(); }
  const LinkModelMatrix& matrix() const noexcept { return matrix_; }
  const GranularPlanes& planes() const noexcept { return planes_; }
  /// All-sync matrices take the homogeneous fast path unchanged.
  bool all_sync() const noexcept { return all_sync_; }

 private:
  LinkModelMatrix matrix_;
  GranularPlanes planes_;
  bool all_sync_;
};

/// Result of one granular round evaluation. `sat` uses the canonical
/// ES/LM/WLM/AFM bit order; `csat` bit c is set iff every class-c link
/// (between correct processes) was timely this round — the per-class
/// conformance trace_tool summary reports.
struct GranularEval {
  std::uint8_t sat = 0;
  std::uint8_t csat = 0;
};

/// Single granular predicate, scalar and packed. `leader` is ignored for
/// ES and <>AFM.
bool satisfies_granular(TimingModel m, const LinkMatrix& a, ProcessId leader,
                        const GranularContext& g,
                        const CorrectMask* correct = nullptr);
bool satisfies_granular(TimingModel m, const PackedLinkMatrix& a,
                        ProcessId leader, const GranularContext& g,
                        const CorrectMask* correct = nullptr);

/// Evaluate all four granular predicates plus per-class conformance.
/// When `sink` is non-null, one PredicateEval event with the csat field
/// is emitted for round `k`.
GranularEval evaluate_all_granular(const LinkMatrix& a, ProcessId leader,
                                   const GranularContext& g,
                                   const CorrectMask* correct = nullptr,
                                   TraceSink* sink = nullptr, Round k = 0);

/// Packed fast path: one sweep (sim/packed_eval.hpp). Identical result.
GranularEval evaluate_all_granular(const PackedLinkMatrix& a,
                                   ProcessId leader, const GranularContext& g,
                                   const CorrectMask* correct = nullptr,
                                   TraceSink* sink = nullptr, Round k = 0);

}  // namespace timing

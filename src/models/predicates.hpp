// Per-round predicates: does the communication matrix A of one round meet
// the timeliness requirements of a timing model? (Section 4.1.)
//
// Conventions, matching the paper's analysis and measurements:
//  * rows of A are destinations, columns are sources;
//  * a process's link with itself counts towards source/destination counts
//    (footnote 1 in the paper), and LinkMatrix always marks self links
//    timely;
//  * all processes are assumed correct unless a `correct` mask is given -
//    the measurement sections run failure-free experiments, like the paper.
//
// Every predicate exists in two equivalent implementations:
//  * the scalar path over LinkMatrix (the original per-cell loops) — kept
//    as the oracle;
//  * the packed path over PackedLinkMatrix (sim/packed_eval.hpp):
//    popcounts and word compares over the uint64 bit plane.
// tests/predicate_kernel_test.cpp asserts they agree bit-for-bit on
// randomized matrices across the one-word/two-word row boundary and under
// crash masks.
#pragma once

#include <cstdint>
#include <vector>

#include "models/timing_model.hpp"
#include "obs/trace_sink.hpp"
#include "sim/link_matrix.hpp"
#include "sim/packed_eval.hpp"

namespace timing {

/// Optional aliveness mask; null means everyone is correct.
using CorrectMask = std::vector<bool>;

/// ES: every link between correct processes is timely.
bool satisfies_es(const LinkMatrix& a, const CorrectMask* correct = nullptr);
bool satisfies_es(const PackedLinkMatrix& a,
                  const CorrectMask* correct = nullptr);

/// <>LM: the leader is an n-source this round (its column is all timely)
/// and every correct process receives timely messages from at least
/// floor(n/2)+1 correct processes (every row has a majority of ones).
bool satisfies_lm(const LinkMatrix& a, ProcessId leader,
                  const CorrectMask* correct = nullptr);
bool satisfies_lm(const PackedLinkMatrix& a, ProcessId leader,
                  const CorrectMask* correct = nullptr);

/// <>WLM: the leader is an n-source this round and receives timely
/// messages from a majority (only the leader's row needs a majority).
bool satisfies_wlm(const LinkMatrix& a, ProcessId leader,
                   const CorrectMask* correct = nullptr);
bool satisfies_wlm(const PackedLinkMatrix& a, ProcessId leader,
                   const CorrectMask* correct = nullptr);

/// <>AFM (simplified): every correct process is a majority-destination and
/// a majority-source this round.
bool satisfies_afm(const LinkMatrix& a, const CorrectMask* correct = nullptr);
bool satisfies_afm(const PackedLinkMatrix& a,
                   const CorrectMask* correct = nullptr);

/// Dispatch on the model. `leader` is ignored for ES and <>AFM.
bool satisfies(TimingModel m, const LinkMatrix& a, ProcessId leader,
               const CorrectMask* correct = nullptr);
bool satisfies(TimingModel m, const PackedLinkMatrix& a, ProcessId leader,
               const CorrectMask* correct = nullptr);

/// Evaluate all four predicates at once; bit static_cast<int>(m) of the
/// result is set iff model m held (the canonical ES/LM/WLM/AFM bit order
/// of obs/trace_event.hpp). When `sink` is non-null, one PredicateEval
/// event for round `k` is emitted — this is the instrumentation point the
/// measurement harness records P_M incidence through.
std::uint8_t evaluate_all(const LinkMatrix& a, ProcessId leader,
                          const CorrectMask* correct = nullptr,
                          TraceSink* sink = nullptr, Round k = 0);

/// Packed fast path: one sweep over the bit plane (popcounts + word
/// compares; see sim/packed_eval.hpp). Identical mask and trace event.
std::uint8_t evaluate_all(const PackedLinkMatrix& a, ProcessId leader,
                          const CorrectMask* correct = nullptr,
                          TraceSink* sink = nullptr, Round k = 0);

}  // namespace timing

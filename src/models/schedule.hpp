// GSR-based schedules: timeliness samplers that are arbitrary (chaotic)
// before a chosen Global Stabilization Round and conforming to a timing
// model from GSR onward.
//
// These drive the algorithm-correctness tests and the validation runs that
// check each algorithm's decision bound (e.g. Algorithm 2 deciding by
// GSR+4 / GSR+3, Theorem 10). Two post-GSR flavours:
//  * random-conforming: sample a random matrix, then repair it to satisfy
//    the model (exercises typical stable rounds);
//  * minimal-conforming: ONLY the links the model demands are timely - the
//    strongest adversary that still conforms (exercises worst cases; for
//    <>WLM this is what separates Algorithm 2 from Paxos).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "models/link_model_matrix.hpp"
#include "models/timing_model.hpp"
#include "sim/sampler.hpp"

namespace timing {

struct ScheduleConfig {
  int n = 8;
  TimingModel model = TimingModel::kWlm;
  ProcessId leader = 0;     ///< stable leader (ignored for ES / <>AFM)
  Round gsr = 1;            ///< first round whose matrix conforms
  double pre_gsr_p = 0.3;   ///< pre-GSR per-link timeliness probability
  bool minimal = false;     ///< minimal-conforming post-GSR
  double post_gsr_extra_p = 0.5;  ///< baseline timeliness of non-required links
  double untimely_loss_share = 0.4;  ///< untimely messages lost vs late
  std::uint64_t seed = 1;
  /// Crash round per process (0 or negative = never crashes). The models
  /// demand timely links FROM CORRECT processes ("it has j timely
  /// incoming links from correct processes"), so the post-GSR repair must
  /// draw the forced majorities from processes still alive in that round.
  std::vector<Round> crash_rounds;
  /// Optional per-link timing assignment (empty = homogeneous). With a
  /// non-all-sync matrix the post-GSR repair only forces RELIABLE links
  /// timely and only counts reliable links towards the forced quorums:
  /// async links carry no obligation, so a granular-conforming schedule
  /// may never make them timely. An all-sync matrix takes the
  /// homogeneous code path and is therefore bit-identical to it.
  LinkModelMatrix link_models;
};

class ScheduleSampler final : public TimelinessSampler {
 public:
  explicit ScheduleSampler(const ScheduleConfig& cfg);

  int n() const noexcept override { return cfg_.n; }
  void sample_round(Round k, LinkMatrix& out) override;
  // Keep the inherited packed overload visible (it routes through the
  // scalar override above, so schedules pack with identical fates).
  using TimelinessSampler::sample_round;

  const ScheduleConfig& config() const noexcept { return cfg_; }

 private:
  void fill_random(LinkMatrix& out, double p);
  void repair_to_model(LinkMatrix& out, Round k);
  bool alive(ProcessId i, Round k) const noexcept;
  Delay untimely_fate();

  ScheduleConfig cfg_;
  Rng rng_;
  /// True iff link_models names a non-all-sync matrix (the only case in
  /// which the repair deviates from the homogeneous path).
  bool granular_ = false;
};

}  // namespace timing

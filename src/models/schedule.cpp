#include "models/schedule.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace timing {

ScheduleSampler::ScheduleSampler(const ScheduleConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  TM_CHECK(cfg_.n > 1, "schedule needs n > 1");
  TM_CHECK(cfg_.leader >= 0 && cfg_.leader < cfg_.n, "leader out of range");
  TM_CHECK(cfg_.gsr >= 1, "GSR is a round number >= 1");
  TM_CHECK(cfg_.crash_rounds.empty() ||
               static_cast<int>(cfg_.crash_rounds.size()) == cfg_.n,
           "crash_rounds must be empty or have n entries");
  TM_CHECK(cfg_.link_models.n() == 0 || cfg_.link_models.n() == cfg_.n,
           "link_models size must match the schedule's n");
  granular_ = cfg_.link_models.n() > 0 && !cfg_.link_models.all_sync();
}

bool ScheduleSampler::alive(ProcessId i, Round k) const noexcept {
  if (cfg_.crash_rounds.empty()) return true;
  const Round c = cfg_.crash_rounds[static_cast<std::size_t>(i)];
  return c <= 0 || k < c;
}

Delay ScheduleSampler::untimely_fate() {
  if (rng_.bernoulli(cfg_.untimely_loss_share)) return kLost;
  Delay d = 1;
  while (rng_.bernoulli(0.4) && d < 8) ++d;
  return d;
}

void ScheduleSampler::fill_random(LinkMatrix& out, double p) {
  for (ProcessId dst = 0; dst < cfg_.n; ++dst) {
    for (ProcessId src = 0; src < cfg_.n; ++src) {
      if (src == dst) {
        out.set(dst, src, 0);
      } else {
        out.set(dst, src, rng_.bernoulli(p) ? Delay{0} : untimely_fate());
      }
    }
  }
}

void ScheduleSampler::repair_to_model(LinkMatrix& out, Round k) {
  const int n = cfg_.n;
  const int maj = majority_size(n);

  std::vector<ProcessId> alive_set;
  for (ProcessId i = 0; i < n; ++i) {
    if (alive(i, k)) alive_set.push_back(i);
  }
  // The models' premise: fewer than n/2 crashes, so a majority of
  // processes is always alive.
  TM_CHECK(static_cast<int>(alive_set.size()) >= maj,
           "schedule needs a correct majority");

  // Under a granular matrix only reliable links carry obligations (and
  // only they count towards forced quorums). required() is identically
  // true on the homogeneous path, so an all-sync matrix draws the exact
  // same RNG stream as no matrix at all.
  auto required = [&](ProcessId d, ProcessId s) {
    return !granular_ || cfg_.link_models.reliable(d, s);
  };

  // Force `dst`'s row to receive timely from at least `maj` ALIVE sources
  // (the self link always counts, matching the paper's footnote 1). With
  // a granular matrix the quorum may be unreachable — the reliable
  // in-degree caps it — in which case every reliable candidate is forced
  // and the deficit is the caller's problem (granular_supports() gates
  // the liveness expectation on exactly this).
  auto force_row_majority = [&](ProcessId dst) {
    int have = 0;
    std::vector<ProcessId> candidates;
    for (ProcessId s : alive_set) {
      if (!required(dst, s)) continue;
      if (out.timely(dst, s) || s == dst) {
        ++have;
      } else {
        candidates.push_back(s);
      }
    }
    for (std::size_t i = candidates.size(); i > 1; --i) {
      std::swap(candidates[i - 1], candidates[rng_.uniform_int(i)]);
    }
    for (ProcessId s : candidates) {
      if (have >= maj) break;
      out.set(dst, s, 0);
      ++have;
    }
  };

  switch (cfg_.model) {
    case TimingModel::kEs:
      // All required links between correct processes timely.
      for (ProcessId d : alive_set) {
        for (ProcessId s : alive_set) {
          if (required(d, s)) out.set(d, s, 0);
        }
      }
      break;
    case TimingModel::kLm:
      for (ProcessId d = 0; d < n; ++d) {
        if (required(d, cfg_.leader)) out.set(d, cfg_.leader, 0);
      }
      for (ProcessId d : alive_set) force_row_majority(d);
      break;
    case TimingModel::kWlm:
      for (ProcessId d = 0; d < n; ++d) {
        if (required(d, cfg_.leader)) out.set(d, cfg_.leader, 0);
      }
      force_row_majority(cfg_.leader);
      break;
    case TimingModel::kAfm: {
      if (granular_) {
        // All reliable alive<->alive links timely: meets both the
        // majority-destination and majority-source requirements wherever
        // the reliable plane still can (the circulant below may land
        // required mass on async links, which count for nothing).
        for (ProcessId d : alive_set) {
          for (ProcessId s : alive_set) {
            if (required(d, s)) out.set(d, s, 0);
          }
        }
      } else if (alive_set.size() == static_cast<std::size_t>(n)) {
        // Failure-free: a rotated circulant gives every row and column a
        // majority with mobile timely sets.
        const int rot = static_cast<int>(rng_.uniform_int(n));
        for (ProcessId d = 0; d < n; ++d) {
          for (int off = 0; off < maj; ++off) {
            out.set(d, (d + rot + off) % n, 0);
          }
          out.set(d, d, 0);
        }
      } else {
        // With crashes, conservatively make all alive<->alive links
        // timely (satisfies both the majority-destination and the
        // majority-source requirements w.r.t. correct processes).
        for (ProcessId d : alive_set) {
          for (ProcessId s : alive_set) out.set(d, s, 0);
        }
      }
      break;
    }
  }
}

void ScheduleSampler::sample_round(Round k, LinkMatrix& out) {
  if (k < cfg_.gsr) {
    fill_random(out, cfg_.pre_gsr_p);
    return;
  }
  fill_random(out, cfg_.minimal ? 0.0 : cfg_.post_gsr_extra_p);
  repair_to_model(out, k);
}

}  // namespace timing

#include "models/timing_model.hpp"

#include "common/check.hpp"

namespace timing {

TimingModel model_of(AnalyzedAlgorithm a) noexcept {
  switch (a) {
    case AnalyzedAlgorithm::kEs3: return TimingModel::kEs;
    case AnalyzedAlgorithm::kLm3: return TimingModel::kLm;
    case AnalyzedAlgorithm::kWlmDirect:
    case AnalyzedAlgorithm::kWlmDirect5:
    case AnalyzedAlgorithm::kWlmSimulated: return TimingModel::kWlm;
    case AnalyzedAlgorithm::kAfm5: return TimingModel::kAfm;
  }
  return TimingModel::kEs;
}

int rounds_for_global_decision(AnalyzedAlgorithm a) noexcept {
  switch (a) {
    case AnalyzedAlgorithm::kEs3: return 3;
    case AnalyzedAlgorithm::kLm3: return 3;
    case AnalyzedAlgorithm::kWlmDirect: return 4;
    case AnalyzedAlgorithm::kWlmDirect5: return 5;
    case AnalyzedAlgorithm::kWlmSimulated: return 7;
    case AnalyzedAlgorithm::kAfm5: return 5;
  }
  return 0;
}

int default_rounds_for_global_decision(TimingModel m) noexcept {
  switch (m) {
    case TimingModel::kEs: return 3;
    case TimingModel::kLm: return 3;
    case TimingModel::kWlm: return 4;
    case TimingModel::kAfm: return 5;
  }
  return 0;
}

std::string to_string(TimingModel m) {
  switch (m) {
    case TimingModel::kEs: return "ES";
    case TimingModel::kLm: return "<>LM";
    case TimingModel::kWlm: return "<>WLM";
    case TimingModel::kAfm: return "<>AFM";
  }
  return "?";
}

std::string to_string(AnalyzedAlgorithm a) {
  switch (a) {
    case AnalyzedAlgorithm::kEs3: return "ES (3 rounds)";
    case AnalyzedAlgorithm::kLm3: return "<>LM (3 rounds)";
    case AnalyzedAlgorithm::kWlmDirect: return "<>WLM direct (4 rounds)";
    case AnalyzedAlgorithm::kWlmDirect5: return "<>WLM direct (5 rounds)";
    case AnalyzedAlgorithm::kWlmSimulated: return "<>WLM simulated (7 rounds)";
    case AnalyzedAlgorithm::kAfm5: return "<>AFM (5 rounds)";
  }
  return "?";
}

}  // namespace timing

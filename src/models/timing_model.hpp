// The four timing models compared throughout the paper (Section 2), plus
// the simulation-based variant of <>WLM (Appendix B) that the analysis of
// Section 4 also tracks.
//
// Each model is characterised, for the purposes of the analysis and the
// measurements, by (a) a per-round predicate over the communication matrix
// A (see predicates.hpp) and (b) the number of consecutive conforming
// rounds R_M that the fastest known algorithm needs for *global decision*:
//
//   ES    - Eventual Synchrony [DLS88]:        3 rounds ([14])
//   <>LM  - Leader-Majority [19]:              3 rounds ([19])
//   <>WLM - Weak-Leader-Majority (this paper): 4 rounds with a stable
//           leader (Theorem 10(b)), 5 otherwise; 7 via the Appendix B
//           simulation of <>LM
//   <>AFM - All-From-Majority [19], simplified: 5 rounds ([19])
#pragma once

#include <string>

namespace timing {

enum class TimingModel {
  kEs,
  kLm,
  kWlm,
  kAfm,
};

/// Distinct algorithm choices the paper analyses (Figure 1(a)/(b) plots
/// all five curves).
enum class AnalyzedAlgorithm {
  kEs3,           ///< optimal ES algorithm, 3 rounds
  kLm3,           ///< optimal <>LM algorithm, 3 rounds
  kWlmDirect,     ///< Algorithm 2 with stable leader, 4 rounds
  kWlmDirect5,    ///< Algorithm 2, leader stabilises with communication, 5
  kWlmSimulated,  ///< <>LM algorithm over Algorithm 3, 7 rounds
  kAfm5,          ///< <>AFM algorithm, 5 rounds
};

/// Timing model whose per-round predicate the algorithm needs.
TimingModel model_of(AnalyzedAlgorithm a) noexcept;

/// Consecutive conforming rounds needed for global decision.
int rounds_for_global_decision(AnalyzedAlgorithm a) noexcept;

/// Default R_M used in the measurement figures (1(g)-(i)): ES 3, <>LM 3,
/// <>WLM 4 (the stable-leader case, which the paper argues is the common
/// one), <>AFM 5.
int default_rounds_for_global_decision(TimingModel m) noexcept;

std::string to_string(TimingModel m);
std::string to_string(AnalyzedAlgorithm a);

inline constexpr TimingModel kAllModels[] = {
    TimingModel::kEs, TimingModel::kLm, TimingModel::kWlm, TimingModel::kAfm};

}  // namespace timing

// Per-link timing-model assignment (the Granular Synchrony view of the
// paper's question). Instead of one system-wide TimingModel, every
// directed link (src -> dst) carries its own assumption class:
//
//   sync  - the link is always required to be timely for conformance;
//   psync - partially synchronous: required, like sync, for the per-round
//           predicates (the sync/psync split matters to the analysis
//           layer, which assigns the classes different per-round
//           timeliness probabilities, and to per-class conformance
//           reporting);
//   async - no timing obligation at all. An async link can neither
//           violate a predicate nor count towards its quorums.
//
// The granular predicates in models/predicates.hpp restrict every
// requirement and every quorum count to the *reliable* plane
// (sync + psync links). With an all-sync matrix they reduce exactly to
// the homogeneous Section 4.1 predicates - tests/granular_test.cpp pins
// that equivalence bit-for-bit.
//
// Self links are always sync: a process's link with itself counts towards
// the paper's source/destination counts (footnote 1) and is always timely
// in every sampler, so declaring it async would silently shrink quorums.
//
// Spec grammar (scenario override `link_models=`):
//
//   spec   := clause (';' clause)*
//   clause := class ':' targets
//   class  := 'sync' | 'psync' | 'async'
//   targets:= 'all' | pair (',' pair)*
//   pair   := endpoint '->' endpoint      // src -> dst, '*' is a wildcard
//
// Clauses apply in order, later clauses overwriting earlier ones;
// unmentioned links default to sync, so `async:0->2,3->*` alone is a
// valid spec. Wildcard clauses skip self links; naming a self link
// explicitly with a non-sync class is an error.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace timing {

enum class LinkModelClass : std::uint8_t {
  kSync = 0,
  kPartialSync = 1,
  kAsync = 2,
};

inline constexpr int kNumLinkModelClasses = 3;

inline constexpr std::array<LinkModelClass, kNumLinkModelClasses>
    kAllLinkModelClasses{LinkModelClass::kSync, LinkModelClass::kPartialSync,
                         LinkModelClass::kAsync};

/// Canonical spelling used by the spec grammar and describe output.
const char* to_string(LinkModelClass c) noexcept;

/// Accepts the canonical spellings plus "partial-sync" for kPartialSync.
bool link_model_class_from_string(const std::string& s, LinkModelClass& out);

/// n x n per-link class assignment. Rows are destinations, columns are
/// sources, matching LinkMatrix. Self links are pinned to sync.
class LinkModelMatrix {
 public:
  LinkModelMatrix() = default;
  explicit LinkModelMatrix(int n);

  int n() const noexcept { return n_; }

  LinkModelClass at(ProcessId dst, ProcessId src) const noexcept {
    return static_cast<LinkModelClass>(
        cells_[static_cast<std::size_t>(dst) * n_ + src]);
  }

  /// Self links are forced to sync regardless of `c`.
  void set(ProcessId dst, ProcessId src, LinkModelClass c) noexcept;

  /// True iff the link carries a timing obligation (sync or psync).
  bool reliable(ProcessId dst, ProcessId src) const noexcept {
    return at(dst, src) != LinkModelClass::kAsync;
  }

  bool all_sync() const noexcept;

  /// Number of links assigned class `c` (self links included; they are
  /// always sync).
  int count(LinkModelClass c) const noexcept;

  /// All links one class (self links still sync).
  static LinkModelMatrix uniform(int n, LinkModelClass c);

  /// Deterministic mixed matrix for sweep scenarios: of the n*(n-1)
  /// off-diagonal links, round(async_frac * count) are async and, of the
  /// remainder, round(psync_frac * count) are psync; which links is a
  /// seed-determined shuffle, so the same (n, fracs, seed) always yields
  /// the same matrix.
  static LinkModelMatrix mixed(int n, double async_frac, double psync_frac,
                               std::uint64_t seed);

  /// Human-readable grid for `timing_lab describe`: one row per
  /// destination, 'S'/'P'/'A' per source column.
  std::string grid() const;

  /// Canonical spec-grammar text: "sync:all" followed by one clause per
  /// non-sync class listing its links in (src, dst) order, e.g.
  /// "sync:all;psync:0->2;async:1->0,3->2". Round-trips exactly through
  /// parse_link_models, and equal matrices always serialize identically,
  /// so the adversary archive can store matrices verbatim.
  std::string spec() const;

  /// Structural equality: same n and the same class on every link.
  bool operator==(const LinkModelMatrix&) const = default;

 private:
  int n_ = 0;
  std::vector<std::uint8_t> cells_;
};

/// Parse the spec grammar into `out` (sized n). Returns the empty string
/// on success, else a message naming the offending clause or pair.
std::string parse_link_models(const std::string& spec, int n,
                              LinkModelMatrix& out);

}  // namespace timing

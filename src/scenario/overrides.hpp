// The shared scenario CLI grammar: `key=value` overrides over a
// ScenarioSpec plus the common flags. Used by timing_lab and by every
// migrated bench binary, so all experiment surfaces accept the same
// arguments, reject the same garbage, and print the same usage text.
#pragma once

#include <string>

#include "scenario/spec.hpp"

namespace timing::scenario {

struct CliArgs {
  bool csv = false;   ///< emit tables as CSV instead of aligned text
  bool help = false;  ///< --help seen; caller prints usage and exits 0
  std::string error;  ///< non-empty: unknown/invalid argument (usage error)
};

/// Parse argv[first..argc) over `spec`. Recognised flags: --csv, --help
/// (and -h). Everything else must be a `key=value` override; unknown keys
/// or unparsable values set CliArgs::error and leave later args
/// unprocessed. Values are checked (full-string numeric parses), so
/// `runs=abc` is an error, never a silent 0.
CliArgs apply_cli_args(ScenarioSpec& spec, int argc, char** argv, int first);

/// The override grammar, one key per line, for --help output and docs.
std::string override_help();

/// The paper's repetition count unless TIMING_RUNS (>= 1) says otherwise.
/// Raising it appends runs N, N+1, ... — existing runs keep their seeds,
/// so curves only tighten, they don't resample. Invalid values
/// (non-numeric, < 1) and clamped values (> 100000) warn once on stderr
/// instead of silently falling back.
int runs_or_default(int paper_default);

}  // namespace timing::scenario

// Execution context shared by every scenario runner: where tables and
// prose go, whether tables render as CSV, and the optional structured
// results stream. Runners write ONLY through this, so the same runner
// byte-identically serves the bench binaries (text to stdout), --csv
// pipelines, and timing_lab's JSONL emission.
#pragma once

#include <iosfwd>
#include <string>

#include "common/table.hpp"
#include "scenario/results.hpp"

namespace timing::scenario {

struct RunContext {
  std::ostream* out = nullptr;       ///< tables + prose destination
  bool csv = false;                  ///< --csv: machine-readable tables
  ResultWriter* results = nullptr;   ///< null = no structured emission

  std::ostream& os() const { return *out; }

  /// Print a table honouring the output mode, and mirror its rows into
  /// the results stream when one is attached.
  void emit(const Table& t, const std::string& caption = "") const;
};

}  // namespace timing::scenario

// Adversary scenarios: the fitness-guided hunt (adversary/search) and
// the archived-plan regression replay (chaos/regression).
//
// adversary/search runs the simulated-annealing hunt over the fault-plan
// grammar for one (model, algorithm) pair, shrinks the top elites to
// minimal replayable specs, optionally archives them (archive=DIR), and
// — when baseline=N is set — asserts the hunt strictly beat the best of
// N uniform random_fault_plan samples evaluated under the SAME fixed
// evaluation seed. That comparison is the subsystem's reason to exist:
// sampling finds average-case schedules, search finds adversarial ones.
//
// chaos/regression reloads every *.plan in the archive directory and
// re-runs each entry's recorded evaluation. Evaluation is a pure
// function of (candidate, eval config), so verdict, decision round and
// score must reproduce exactly; any drift is a behavior change in the
// engine, injector or protocols and fails the gate.
#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "adversary/archive.hpp"
#include "adversary/search.hpp"
#include "adversary/shrink.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "fault/chaos.hpp"
#include "models/timing_model.hpp"
#include "scenario/runners.hpp"

namespace timing::scenario {

namespace {

/// Sub-stream salts: the hunt, the fixed evaluation seed, the uniform
/// baseline and the polish pass draw from disjoint families of
/// spec.seed.
constexpr std::uint64_t kEvalSalt = 0xe7a1d;
constexpr std::uint64_t kBaselineSalt = 0xba5e;
constexpr std::uint64_t kPolishSalt = 0x90115a;

/// Elites shrunk, polished (and archived) per hunt.
constexpr int kShrinkTop = 3;

/// Fraction of the evaluation budget reserved for the greedy polish
/// pass around the shrunk elites (the rest drives the annealer).
constexpr int kPolishDivisor = 8;

adversary::MutationConfig mutation_config(const ScenarioSpec& spec,
                                          ProcessId leader) {
  adversary::MutationConfig mut;
  mut.n = spec.n;
  mut.leader = leader;
  mut.algorithm = spec.algorithm;
  if (!spec.link_models.empty()) {
    const std::string lerr =
        parse_link_models(spec.link_models, spec.n, mut.base_links);
    TM_CHECK(lerr.empty(), "validate() admits only parseable link_models");
  }
  return mut;
}

adversary::EvalConfig eval_config(const ScenarioSpec& spec, ProcessId leader) {
  adversary::EvalConfig eval;
  eval.algorithm = spec.algorithm;
  eval.n = spec.n;
  eval.leader = leader;
  eval.pre_gsr_p = spec.iid_p;
  eval.eval_seed = substream_seed(spec.seed, kEvalSalt);
  eval.samples = spec.runs;  // chaos executions averaged per candidate
  eval.min_rounds = spec.rounds_per_run;
  return eval;
}

std::string inline_spec(const fault::FaultPlan& plan) {
  std::string out;
  for (char c : plan.spec()) {
    if (c == '\n') {
      out += "; ";
    } else {
      out += c;
    }
  }
  return out;
}

int statements(const fault::FaultPlan& plan) {
  return static_cast<int>(plan.events.size()) - (plan.gsr >= 1 ? 1 : 0);
}

}  // namespace

int run_adversary_search(const ScenarioSpec& spec, const RunContext& ctx) {
  const ProcessId leader =
      spec.leader_policy == LeaderPolicy::kFixed ? spec.leader : 0;

  adversary::SearchConfig cfg;
  cfg.mut = mutation_config(spec, leader);
  cfg.eval = eval_config(spec, leader);
  cfg.seed = spec.seed;

  adversary::AdversarySearch search(cfg);
  search.run(spec.budget - spec.budget / kPolishDivisor);

  if (search.elites().empty()) {
    ctx.os() << "error: the hunt produced no scorable candidate (every "
                "evaluation was rejected)\n";
    return 1;
  }

  // Shrink the top elites to minimal replayable specs, spend whatever
  // remains of the evaluation budget polishing each one (greedy local
  // intensification), and shrink again so the archive stays minimal.
  // Ranking can change when polish uncovers extra score, so re-sort.
  struct Winner {
    adversary::ShrinkResult shrunk;
    adversary::Elite elite;
    int polish_evals = 0;
    int polish_gains = 0;
  };
  const int top = std::min<int>(kShrinkTop,
                                static_cast<int>(search.elites().size()));
  const long long polish_total =
      std::max<long long>(0, spec.budget - search.evaluations());
  const int polish_each = static_cast<int>(polish_total / top);
  long long polish_spent = 0;
  std::vector<Winner> winners;
  for (int i = 0; i < top; ++i) {
    Winner w;
    w.elite = search.elites()[static_cast<std::size_t>(i)];
    w.shrunk = adversary::shrink(w.elite.candidate, cfg.mut, cfg.eval);
    const adversary::PolishResult p = adversary::polish(
        w.shrunk.candidate, cfg.mut, cfg.eval,
        substream_seed(spec.seed ^ kPolishSalt, static_cast<std::uint64_t>(i)),
        polish_each);
    polish_spent += p.evaluations;
    w.polish_evals = p.evaluations;
    w.polish_gains = p.improvements;
    if (p.fitness.score > w.shrunk.fitness.score) {
      w.shrunk = adversary::shrink(p.candidate, cfg.mut, cfg.eval);
    }
    winners.push_back(std::move(w));
  }
  std::stable_sort(winners.begin(), winners.end(),
                   [](const Winner& a, const Winner& b) {
                     return a.shrunk.fitness.score > b.shrunk.fitness.score;
                   });

  Table t({"rank", "score", "verdict", "mean delay", "decided@", "gsr",
           "statements", "minimized", "found@"});
  for (std::size_t i = 0; i < winners.size(); ++i) {
    const Winner& w = winners[i];
    t.add_row({Table::integer(static_cast<int>(i) + 1),
               Table::num(w.shrunk.fitness.score, 1),
               adversary::verdict_string(w.shrunk.fitness),
               Table::num(w.shrunk.fitness.delay, 2),
               Table::integer(static_cast<int>(w.shrunk.fitness.decision_round)),
               Table::integer(static_cast<int>(w.shrunk.candidate.plan.gsr)),
               Table::integer(statements(w.elite.candidate.plan)) + " -> " +
                   Table::integer(statements(w.shrunk.candidate.plan)),
               Table::integer(w.shrunk.steps) + " steps / " +
                   Table::integer(w.shrunk.evaluations) + " evals",
               "g" + std::to_string(w.elite.generation) + "/w" +
                   std::to_string(w.elite.walker)});
  }
  ctx.emit(t, "Adversary hunt: algorithm " + algorithm_key(spec.algorithm) +
                  " under " + to_string(fault::native_model(spec.algorithm)) +
                  ", n = " + std::to_string(spec.n) + ", leader " +
                  std::to_string(leader) + ", " +
                  std::to_string(search.evaluations()) + " evaluations (" +
                  std::to_string(search.generations()) + " generations, " +
                  std::to_string(search.signatures_seen()) +
                  " distinct coverage signatures)");

  const Winner& best = winners.front();
  ctx.os() << "\nwinning adversary (minimized, score "
           << Table::num(best.shrunk.fitness.score, 1) << ", verdict "
           << adversary::verdict_string(best.shrunk.fitness) << "):\n"
           << best.shrunk.candidate.plan.spec() << "\n";
  if (!best.shrunk.candidate.link_models.all_sync()) {
    ctx.os() << "link models: " << best.shrunk.candidate.link_models.spec()
             << "\n";
  }
  ctx.os() << "replay: timing_lab replay \""
           << inline_spec(best.shrunk.candidate.plan) << "\" algorithm="
           << algorithm_key(spec.algorithm) << " n=" << spec.n
           << " leader=" << leader << " iid_p=" << Table::num(spec.iid_p, 2)
           << " seed=" << cfg.eval.eval_seed << "\n";

  if (!spec.archive.empty()) {
    for (const Winner& w : winners) {
      const adversary::ArchiveEntry entry = adversary::make_archive_entry(
          w.shrunk.candidate, w.shrunk.fitness, cfg.eval);
      std::string path;
      const std::string err =
          adversary::write_archive_entry(spec.archive, entry, &path);
      if (!err.empty()) {
        ctx.os() << "error: " << err << "\n";
        return 1;
      }
      ctx.os() << "archived: " << path << "\n";
    }
  }

  if (spec.baseline > 0) {
    // The hunt must strictly beat uniform sampling at equal evaluation
    // conditions: same seed family, same fixed evaluation seed.
    struct Sample {
      double score = adversary::kRejectScore;
      double delay = 0.0;
    };
    const auto samples = run_trials<Sample>(
        static_cast<std::size_t>(spec.baseline), [&](std::size_t i) {
          const adversary::Candidate c = adversary::seed_candidate(
              cfg.mut, substream_seed(spec.seed ^ kBaselineSalt, i));
          const adversary::Fitness f = adversary::evaluate(c, cfg.eval);
          return Sample{f.score, f.delay};
        });
    Sample uniform_best;
    for (const Sample& s : samples) {
      if (s.score > uniform_best.score) uniform_best = s;
    }
    const double hunt_best = best.shrunk.fitness.score;
    ctx.os() << "\nbaseline: best of " << spec.baseline
             << " uniform random plans scored "
             << Table::num(uniform_best.score, 1) << " ("
             << Table::num(uniform_best.delay, 2)
             << " mean rounds past gsr); the hunt scored "
             << Table::num(hunt_best, 1) << " with "
             << (search.evaluations() + polish_spent) << " evaluations\n";
    if (hunt_best <= uniform_best.score) {
      ctx.os() << "FAIL: the hunt did not beat uniform sampling\n";
      return 1;
    }
    ctx.os() << "the hunt beat uniform sampling by "
             << Table::num(hunt_best - uniform_best.score, 1) << "\n";
  }
  return 0;
}

int run_chaos_regression(const ScenarioSpec& spec, const RunContext& ctx) {
  if (spec.archive.empty()) {
    ctx.os() << "error: chaos/regression needs archive=DIR\n";
    return 1;
  }
  std::vector<adversary::ArchiveEntry> entries;
  const std::string err = adversary::load_archive(spec.archive, entries);
  if (!err.empty()) {
    ctx.os() << "error: " << err << "\n";
    return 1;
  }
  if (entries.empty()) {
    ctx.os() << "error: no *.plan entries in " << spec.archive << "\n";
    return 1;
  }

  // Replays are independent; evaluation is pure, so the fold is
  // deterministic for any TIMING_THREADS.
  const auto replayed = run_trials<adversary::Fitness>(
      entries.size(), [&](std::size_t i) {
        return adversary::evaluate(entries[i].candidate, entries[i].eval);
      });

  Table t({"entry", "algorithm", "verdict", "delay", "decided@", "score",
           "match"});
  int mismatches = 0;
  std::vector<std::string> reports;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const adversary::ArchiveEntry& e = entries[i];
    const adversary::Fitness& f = replayed[i];
    const bool match = e.verdict == adversary::verdict_string(f) &&
                       e.delay == f.delay &&
                       e.decision_round == f.decision_round &&
                       e.score == f.score;
    if (!match) {
      ++mismatches;
      reports.push_back(
          e.name + ": recorded verdict=" + e.verdict + " delay=" +
          Table::num(e.delay, 3) + " decided@" +
          std::to_string(e.decision_round) + ", replayed verdict=" +
          std::string(adversary::verdict_string(f)) + " delay=" +
          Table::num(f.delay, 3) + " decided@" +
          std::to_string(f.decision_round));
    }
    t.add_row({e.name, algorithm_key(e.eval.algorithm),
               adversary::verdict_string(f), Table::num(f.delay, 2),
               Table::integer(static_cast<int>(f.decision_round)),
               Table::num(f.score, 1), match ? "yes" : "NO"});
  }
  ctx.emit(t, "Adversary regression: " + std::to_string(entries.size()) +
                  " archived plan(s) from " + spec.archive);

  if (mismatches > 0) {
    ctx.os() << "\n" << mismatches << " replay mismatch(es):\n";
    for (const std::string& r : reports) ctx.os() << "  " << r << "\n";
    return 1;
  }
  ctx.os() << "\nAll " << entries.size()
           << " archived adversaries replayed to their recorded verdict "
              "and fitness.\n";
  return 0;
}

}  // namespace timing::scenario

#include "scenario/overrides.hpp"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "common/parse.hpp"

namespace timing::scenario {

namespace {

/// One override: returns "" on success, the reason on failure.
std::string apply_override(ScenarioSpec& spec, const std::string& key,
                           const std::string& value) {
  if (key == "runs") {
    if (!parse_int(value, spec.runs)) return "expected an integer";
    return "";
  }
  if (key == "rounds_per_run") {
    if (!parse_int(value, spec.rounds_per_run)) return "expected an integer";
    return "";
  }
  if (key == "start_points") {
    if (!parse_int(value, spec.start_points)) return "expected an integer";
    return "";
  }
  if (key == "n") {
    if (!parse_int(value, spec.n)) return "expected an integer";
    return "";
  }
  if (key == "seed") {
    if (!parse_u64(value, spec.seed)) return "expected an unsigned integer";
    return "";
  }
  if (key == "iid_p") {
    if (!parse_double(value, spec.iid_p)) return "expected a number";
    return "";
  }
  if (key == "timeouts_ms") {
    if (!parse_double_list(value, spec.timeouts_ms)) {
      return "expected a comma-separated list of numbers";
    }
    return "";
  }
  if (key == "group_sizes") {
    if (!parse_int_list(value, spec.group_sizes)) {
      return "expected a comma-separated list of integers";
    }
    return "";
  }
  if (key == "decision_rounds") {
    std::vector<int> vals;
    if (!parse_int_list(value, vals) || vals.size() != spec.decision_rounds.size()) {
      return "expected exactly " +
             std::to_string(spec.decision_rounds.size()) +
             " comma-separated integers (ES,LM,WLM,AFM)";
    }
    for (std::size_t i = 0; i < vals.size(); ++i) {
      spec.decision_rounds[i] = vals[i];
    }
    return "";
  }
  if (key == "leader") {
    if (value == "default") {
      spec.leader_policy = LeaderPolicy::kDefault;
      spec.leader = kNoProcess;
      return "";
    }
    if (value == "average") {
      spec.leader_policy = LeaderPolicy::kAverage;
      spec.leader = kNoProcess;
      return "";
    }
    int id = 0;
    if (!parse_int(value, id)) {
      return "expected a process id, 'default' or 'average'";
    }
    spec.leader_policy = LeaderPolicy::kFixed;
    spec.leader = id;
    return "";
  }
  if (key == "algorithm") {
    if (!parse_algorithm_kind(value, spec.algorithm)) {
      std::string known;
      for (AlgorithmKind k : all_algorithm_kinds()) {
        if (!known.empty()) known += ", ";
        known += algorithm_key(k);
      }
      return "unknown algorithm (known: " + known + ")";
    }
    return "";
  }
  if (key == "jsonl") {
    spec.results_path = value;  // empty disables structured emission
    return "";
  }
  if (key == "fault") {
    // Parse/validation happens in scenario::validate(), where n and the
    // leader are known; here we only keep the raw value.
    spec.fault_spec = value;
    return "";
  }
  if (key == "clients") {
    if (!parse_int(value, spec.clients)) return "expected an integer";
    return "";
  }
  if (key == "reg_keys") {
    if (!parse_int(value, spec.reg_keys)) return "expected an integer";
    return "";
  }
  if (key == "append_keys") {
    if (!parse_int(value, spec.append_keys)) return "expected an integer";
    return "";
  }
  if (key == "corrupt") {
    // Validated in scenario::validate(); keep the raw value here.
    spec.corrupt_spec = value;
    return "";
  }
  if (key == "pipeline") {
    if (!parse_int(value, spec.pipeline)) return "expected an integer";
    return "";
  }
  if (key == "batch") {
    if (!parse_int(value, spec.batch)) return "expected an integer";
    return "";
  }
  if (key == "link_models") {
    // Parsed against n in scenario::validate(); keep the raw spec here.
    spec.link_models = value;
    return "";
  }
  if (key == "async_fracs") {
    if (!parse_double_list(value, spec.async_fracs)) {
      return "expected a comma-separated list of numbers";
    }
    return "";
  }
  if (key == "psync_frac") {
    if (!parse_double(value, spec.psync_frac)) return "expected a number";
    return "";
  }
  if (key == "budget") {
    if (!parse_int(value, spec.budget)) return "expected an integer";
    return "";
  }
  if (key == "baseline") {
    if (!parse_int(value, spec.baseline)) return "expected an integer";
    return "";
  }
  if (key == "archive") {
    spec.archive = value;  // existence checked by the scenario runner
    return "";
  }
  if (key == "profile") {
    // Switch latency testbed wholesale: sampler, group size and a
    // profile-appropriate round timeout (override timeouts_ms AFTER
    // profile= to pick a different one).
    if (value == "lan") {
      spec.sampler = SamplerKind::kLan;
      spec.n = spec.lan.n;
      spec.timeouts_ms = {0.2};
      return "";
    }
    if (value == "wan") {
      spec.sampler = SamplerKind::kWan;
      spec.n = spec.wan.n;
      spec.timeouts_ms = {200};
      return "";
    }
    return "expected lan or wan";
  }
  return "unknown key";
}

}  // namespace

CliArgs apply_cli_args(ScenarioSpec& spec, int argc, char** argv, int first) {
  CliArgs out;
  // Repeated key=value overrides are almost always a command-line typo
  // (the second silently wins otherwise), so remember where each key was
  // first set and reject the repeat with both positions.
  std::vector<std::pair<std::string, int>> seen;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      out.csv = true;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      out.help = true;
      continue;
    }
    const auto eq = arg.find('=');
    if (arg.empty() || arg[0] == '-' || eq == std::string::npos ||
        eq == 0) {
      out.error = "unknown argument '" + arg + "'";
      return out;
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    for (const auto& [prev_key, prev_pos] : seen) {
      if (prev_key == key) {
        out.error = "duplicate override '" + arg + "' (argument " +
                    std::to_string(i - first + 1) + "): '" + key +
                    "=' was already set by argument " +
                    std::to_string(prev_pos - first + 1);
        return out;
      }
    }
    seen.emplace_back(key, i);
    const std::string err = apply_override(spec, key, value);
    if (!err.empty()) {
      out.error = "bad override '" + arg + "': " + err;
      return out;
    }
  }
  return out;
}

std::string override_help() {
  return
      "  runs=N              repetitions per sweep point (instances /\n"
      "                      commands / MC trials for the live ablations)\n"
      "  rounds_per_run=N    rounds per run (round cap for live runs)\n"
      "  start_points=N      random decision-window start points per run\n"
      "  n=N                 group size (must match the LAN/WAN profile)\n"
      "  seed=U64            base RNG seed (runs use counter sub-streams)\n"
      "  iid_p=P             per-link timely probability (IID scenarios)\n"
      "  timeouts_ms=A,B,..  round-timeout sweep in milliseconds\n"
      "  group_sizes=A,B,..  group-size sweep (n-scaling scenarios)\n"
      "  decision_rounds=ES,LM,WLM,AFM\n"
      "                      conforming rounds needed for global decision\n"
      "  leader=ID|default|average\n"
      "                      leader policy (paper default / average-leader\n"
      "                      variant / fixed process id)\n"
      "  algorithm=KEY       protocol for live-run scenarios (wlm, es3,\n"
      "                      lm3, afm5, lm_over_wlm, paxos)\n"
      "  jsonl=PATH          write results JSONL to PATH ('' disables)\n"
      "  fault=PLAN          fault plan: a plan-file path or an inline\n"
      "                      ';'-separated spec, e.g.\n"
      "                      \"crash 1 @2; recover 1 @5; gsr @8\"\n"
      "                      (grammar: docs/FAULTS.md; chaos/* scenarios\n"
      "                      generate seeded random plans when unset)\n"
      "  clients=N           closed-loop SMR clients (smr/linearizable)\n"
      "  reg_keys=N          read/write/cas register keys (smr/linearizable)\n"
      "  append_keys=N       append hash-chain keys (smr/linearizable)\n"
      "  corrupt=none|stale|lost\n"
      "                      test-only linearizability violation hook\n"
      "                      (smr/linearizable; see docs/HISTORY.md)\n"
      "  link_models=SPEC    per-link timing assumptions, e.g.\n"
      "                      \"sync:all;async:0->2,3->*\" (classes sync,\n"
      "                      psync, async; unmentioned links are sync;\n"
      "                      '' = homogeneous predicates)\n"
      "  async_fracs=A,B,..  async link-fraction sweep (granular/ablation)\n"
      "  psync_frac=F        psync share of the non-async links in the\n"
      "                      mixed matrices (granular/ablation)\n"
      "  pipeline=K          consensus instances kept in flight by the\n"
      "                      replicated log (smr/throughput; >1 switches\n"
      "                      smr/linearizable to the pipelined harness)\n"
      "  batch=B             commands per decree slot (flush deadline\n"
      "                      still seals partial batches)\n"
      "  profile=lan|wan     latency testbed for smr/throughput (sets\n"
      "                      sampler, n and a matching round timeout;\n"
      "                      put timeouts_ms= after it to re-pick)\n"
      "  budget=N            chaos evaluations for the adversary hunt\n"
      "                      (adversary/search; rounds up to whole\n"
      "                      generations)\n"
      "  baseline=N          uniform random plans the hunt must beat\n"
      "                      (adversary/search; 0 skips the gate)\n"
      "  archive=DIR         adversary archive directory: search writes\n"
      "                      minimized winners, chaos/regression replays\n"
      "                      every *.plan in it\n";
}

int runs_or_default(int paper_default) {
  static bool warned = false;
  if (const char* env = std::getenv("TIMING_RUNS")) {
    long v = 0;
    if (!parse_long(env, v) || v < 1) {
      if (!warned) {
        warned = true;
        std::fprintf(stderr,
                     "warning: ignoring invalid TIMING_RUNS=%s (expected an "
                     "integer >= 1); using the scenario default\n",
                     env);
      }
      return paper_default;
    }
    if (v > 100000) {
      if (!warned) {
        warned = true;
        std::fprintf(stderr, "warning: TIMING_RUNS=%ld clamped to 100000\n",
                     v);
      }
      v = 100000;
    }
    return static_cast<int>(v);
  }
  return paper_default;
}

}  // namespace timing::scenario

// The named scenario registry: one entry per paper figure / ablation.
// Bench binaries are thin wrappers over entries (scenario/cli.hpp's
// bench_main), and tools/timing_lab drives the same entries by name with
// `key=value` overrides — experiments are data, not code.
#pragma once

#include <string>
#include <vector>

#include "scenario/run.hpp"
#include "scenario/spec.hpp"

namespace timing::scenario {

struct Scenario {
  /// Registry key ("fig1g", "ablation/group_size").
  const char* name;
  /// The bench executable wrapping this entry.
  const char* binary;
  /// Paper anchor ("Figure 1(g)", "Appendix C", "ablation").
  const char* figure;
  /// One-line description for `timing_lab list`.
  const char* summary;
  /// Default (paper) parameters. A function, not a static, so profile
  /// defaults are constructed on demand.
  ScenarioSpec (*defaults)();
  /// Execute over a (possibly overridden) spec. Returns a process exit
  /// code; 0 on success.
  int (*run)(const ScenarioSpec& spec, const RunContext& ctx);
};

/// All registered scenarios, in presentation order (figures, appendix,
/// ablations). Names are unique.
const std::vector<Scenario>& registry();

/// Null when `name` is not registered.
const Scenario* find_scenario(const std::string& name);

}  // namespace timing::scenario

#include "scenario/run.hpp"

#include <ostream>

namespace timing::scenario {

void RunContext::emit(const Table& t, const std::string& caption) const {
  if (csv) {
    t.print_csv(*out, caption);
  } else {
    t.print(*out, caption);
  }
  if (results) results->add_table(caption, t.header(), t.body());
}

}  // namespace timing::scenario

// Chaos scenarios: the fault/chaos.hpp safety harness driven by a
// ScenarioSpec. Every trial draws a seeded random fault plan (or replays
// the `fault=` override verbatim), runs the live consensus protocols
// under it, and holds them to the paper's guarantees — safety on every
// trial, decision within the proven bound after the plan's gsr. Any
// violation prints the offending plan spec verbatim and fails the run.
#include <algorithm>
#include <ostream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "fault/chaos.hpp"
#include "fault/parser.hpp"
#include "models/link_model_matrix.hpp"
#include "scenario/runners.hpp"

namespace timing::scenario {

namespace {

/// Maximum number of full violation reports printed verbatim; the rest
/// are counted (each report already replays the whole trial).
constexpr int kMaxReportedViolations = 5;

struct KindTally {
  AlgorithmKind kind = AlgorithmKind::kWlm;
  int trials = 0;
  int safety_violations = 0;
  int liveness_violations = 0;
  int liveness_waived = 0;  ///< granular matrix cannot carry the model
  RunningStats rounds_after_gsr;  ///< decided trials only
  int worst_after_gsr = -1;
  long long fault_events = 0;
};

/// The chaos family kernel shared by chaos/consensus and chaos/single:
/// spec.runs fault plans, each executed under every algorithm in
/// `kinds`. Deterministic in (spec, kinds) for any TIMING_THREADS.
int run_chaos_family(const ScenarioSpec& spec, const RunContext& ctx,
                     const std::vector<AlgorithmKind>& kinds) {
  const int n = spec.n;
  const ProcessId leader =
      spec.leader_policy == LeaderPolicy::kFixed ? spec.leader : 0;

  // A `fault=` override pins one plan for every trial; the trial seed
  // then only varies the underlying pre-gsr schedule.
  fault::FaultPlan fixed;
  const bool have_fixed = !spec.fault_spec.empty();
  if (have_fixed) {
    const fault::ParseResult pr = fault::load_fault_plan(spec.fault_spec);
    if (!pr.ok()) {  // validate() normally catches this earlier
      ctx.os() << "error: bad fault plan: " << pr.error << "\n";
      return 1;
    }
    fixed = pr.plan;
    if (fixed.gsr < 1) {
      ctx.os() << "error: chaos scenarios need a terminal `gsr @R` marker "
                  "(the liveness bound counts from it); got a plan "
                  "without one\n";
      return 1;
    }
  }

  // A `link_models=` override runs every trial's post-gsr schedule under
  // the granular matrix: safety stays unconditional, the liveness bound
  // is only enforced where the reliable plane supports the algorithm.
  LinkModelMatrix links;
  if (!spec.link_models.empty()) {
    const std::string lerr = parse_link_models(spec.link_models, n, links);
    TM_CHECK(lerr.empty(), "validate() admits only parseable link_models");
  }

  struct Trial {
    Round gsr = -1;
    std::vector<fault::ChaosRunResult> per_kind;
  };
  const auto trials = run_trials<Trial>(
      static_cast<std::size_t>(spec.runs), [&](std::size_t t) {
        const std::uint64_t trial_seed = substream_seed(spec.seed, t);
        fault::ChaosTrialConfig cfg;
        cfg.n = n;
        cfg.leader = leader;
        cfg.seed = trial_seed;
        cfg.pre_gsr_p = spec.iid_p;
        cfg.link_models = links;
        cfg.plan = have_fixed ? fixed
                              : fault::random_fault_plan(n, leader, trial_seed);
        Trial out;
        out.gsr = cfg.plan.gsr;
        for (AlgorithmKind k : kinds) {
          // The cap must reach past the liveness bound, or an undecided
          // run could not be told apart from a slow one.
          cfg.max_rounds = std::max(
              spec.rounds_per_run, cfg.plan.gsr + fault::bound_after_gsr(k) + 2);
          out.per_kind.push_back(fault::run_chaos_algorithm(k, cfg));
        }
        return out;
      });

  std::vector<KindTally> tallies;
  for (AlgorithmKind k : kinds) {
    KindTally kt;
    kt.kind = k;
    tallies.push_back(kt);
  }
  std::vector<std::string> violations;
  for (const Trial& trial : trials) {
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      const fault::ChaosRunResult& r = trial.per_kind[i];
      KindTally& kt = tallies[i];
      ++kt.trials;
      kt.fault_events += r.fault_events;
      if (!r.safety_ok) ++kt.safety_violations;
      if (!r.liveness_ok) ++kt.liveness_violations;
      if (!r.liveness_enforced) ++kt.liveness_waived;
      if (!r.ok()) violations.push_back(r.violation);
      if (r.global_decision_round >= 0) {
        // Rounds past gsr until global decision; <= 0 means the run
        // decided before the network even stabilized.
        const int after = r.global_decision_round - trial.gsr;
        kt.rounds_after_gsr.add(static_cast<double>(after));
        kt.worst_after_gsr = std::max(kt.worst_after_gsr, after);
      }
    }
  }

  Table t({"algorithm", "plans", "safety violations", "liveness violations",
           "mean rounds after gsr", "worst rounds after gsr",
           "bound after gsr", "mean fault events"});
  for (const KindTally& kt : tallies) {
    t.add_row({algorithm_key(kt.kind), Table::integer(kt.trials),
               Table::integer(kt.safety_violations),
               Table::integer(kt.liveness_violations),
               Table::num(kt.rounds_after_gsr.mean(), 2),
               Table::integer(kt.worst_after_gsr),
               "gsr+" + std::to_string(fault::bound_after_gsr(kt.kind)),
               Table::num(kt.trials > 0 ? static_cast<double>(kt.fault_events) /
                                              kt.trials
                                        : 0.0,
                          1)});
  }
  std::string caption =
      "Chaos harness: " + std::to_string(spec.runs) +
      (have_fixed ? " runs of the given fault plan"
                  : " seeded random fault plans") +
      ", n = " + std::to_string(n) + ", leader " + std::to_string(leader) +
      ", pre-gsr link p = " + Table::num(spec.iid_p, 2);
  if (links.n() > 0 && !links.all_sync()) {
    caption += ", granular links (" +
               std::to_string(links.count(LinkModelClass::kSync)) + " sync, " +
               std::to_string(links.count(LinkModelClass::kPartialSync)) +
               " psync, " + std::to_string(links.count(LinkModelClass::kAsync)) +
               " async)";
  }
  ctx.emit(t, caption);

  int waived = 0;
  for (const KindTally& kt : tallies) waived += kt.liveness_waived;
  if (waived > 0) {
    ctx.os() << "\nliveness bound waived for " << waived
             << " execution(s): the matrix's reliable plane cannot carry "
                "the algorithm's native model there (safety was still "
                "enforced).\n";
  }

  if (!violations.empty()) {
    ctx.os() << "\n" << violations.size() << " violation(s):\n";
    const int shown = std::min<int>(kMaxReportedViolations,
                                    static_cast<int>(violations.size()));
    for (int i = 0; i < shown; ++i) {
      ctx.os() << "\n" << violations[static_cast<std::size_t>(i)] << "\n";
    }
    if (shown < static_cast<int>(violations.size())) {
      ctx.os() << "\n(" << violations.size() - shown
               << " further violations suppressed)\n";
    }
    return 1;
  }
  ctx.os() << "\nAll " << spec.runs * static_cast<int>(kinds.size())
           << " executions kept agreement, validity and integrity, and "
              "decided within the paper's bound after gsr"
           << (waived > 0 ? " wherever the granular matrix owed one" : "")
           << ".\n";
  return 0;
}

}  // namespace

int run_chaos_consensus(const ScenarioSpec& spec, const RunContext& ctx) {
  return run_chaos_family(spec, ctx,
                          {AlgorithmKind::kWlm, AlgorithmKind::kEs3,
                           AlgorithmKind::kLm3, AlgorithmKind::kAfm5});
}

int run_chaos_single(const ScenarioSpec& spec, const RunContext& ctx) {
  return run_chaos_family(spec, ctx, {spec.algorithm});
}

}  // namespace timing::scenario

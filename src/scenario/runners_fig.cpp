// Figure scenarios: the analysis curves (1(a), 1(b), Appendix C) and the
// Section 5 testbed sweeps (1(c)-(i)). Bodies are the former bench
// mains, now driven by a ScenarioSpec; with default specs the printed
// bytes are identical to the pre-registry binaries (pinned by the golden
// tests under tests/golden/).
#include <cmath>
#include <ostream>
#include <string>

#include "analysis/equations.hpp"
#include "common/table.hpp"
#include "oracles/omega.hpp"
#include "scenario/runners.hpp"

namespace timing::scenario {

using namespace timing::analysis;

int run_fig1a(const ScenarioSpec& spec, const RunContext& ctx) {
  const int n = spec.n;
  Table t({"p", "ES(3r)", "<>AFM(5r)", "<>LM(3r)", "<>WLM direct(4r)",
           "<>WLM simulated(7r)"});
  for (double p = 1.0; p >= 0.98999; p -= 0.001) {
    t.add_row({Table::num(p, 3),
               Table::num(e_rounds_es(n, p), 2),
               Table::num(e_rounds_afm(n, p), 2),
               Table::num(e_rounds_lm(n, p), 2),
               Table::num(e_rounds_wlm_direct(n, p), 2),
               Table::num(e_rounds_wlm_simulated(n, p), 2)});
  }
  ctx.emit(t,
           "Figure 1(a): E[rounds to global decision] vs p (IID analysis, "
           "n=" + std::to_string(n) + ", high p)");
  return 0;
}

int run_fig1b(const ScenarioSpec& spec, const RunContext& ctx) {
  const int n = spec.n;
  std::ostream& os = ctx.os();
  Table t({"p", "<>AFM(5r)", "<>LM(3r)", "<>WLM direct(4r)",
           "<>WLM simulated(7r)", "ES(3r, off-chart)"});
  for (double p = 0.90; p <= 0.9951; p += 0.005) {
    t.add_row({Table::num(p, 3),
               Table::num(e_rounds_afm(n, p), 1),
               Table::num(e_rounds_lm(n, p), 1),
               Table::num(e_rounds_wlm_direct(n, p), 1),
               Table::num(e_rounds_wlm_simulated(n, p), 1),
               Table::num(e_rounds_es(n, p), 0)});
  }
  ctx.emit(t,
           "Figure 1(b): E[rounds to global decision] vs p (IID analysis, "
           "n=" + std::to_string(n) + ", p in [0.9, 1))");

  os << "\nPaper spot values (Section 4.2):\n";
  os << "  ES at p=0.97:            " << Table::num(e_rounds_es(n, 0.97), 0)
     << " rounds   (paper: 349)\n";
  os << "  <>WLM direct at p=0.92:  "
     << Table::num(e_rounds_wlm_direct(n, 0.92), 0)
     << " rounds   (paper: 18)\n";
  os << "  <>WLM simulated at 0.92: "
     << Table::num(e_rounds_wlm_simulated(n, 0.92), 0)
     << " rounds   (paper: 114)\n";
  os << "  <>AFM at p=0.85:         " << Table::num(e_rounds_afm(n, 0.85), 0)
     << " rounds   (paper: 10)\n";
  os << "  <>LM at p=0.85:          " << Table::num(e_rounds_lm(n, 0.85), 0)
     << " rounds   (paper: 69)\n";
  return 0;
}

namespace {

void fig1c_sweep(const ExperimentConfig& cfg, int n, const RunContext& ctx,
                 const std::string& caption) {
  const auto rs = timing::run_experiment(cfg);
  Table t({"timeout(ms)", "p", "P_ES", "pred", "P_AFM", "pred", "P_LM",
           "pred", "P_WLM", "pred"});
  for (const auto& r : rs) {
    t.add_row({Table::num(r.timeout_ms, 2), Table::num(r.mean_p, 3),
               Table::num(r.models[model_index(TimingModel::kEs)].mean_pm, 3),
               Table::num(p_es(n, r.mean_p), 3),
               Table::num(r.models[model_index(TimingModel::kAfm)].mean_pm, 3),
               Table::num(p_afm(n, r.mean_p), 3),
               Table::num(r.models[model_index(TimingModel::kLm)].mean_pm, 3),
               Table::num(p_lm(n, r.mean_p), 3),
               Table::num(r.models[model_index(TimingModel::kWlm)].mean_pm, 3),
               Table::num(p_wlm(n, r.mean_p), 3)});
  }
  ctx.emit(t, caption);
  ctx.os() << "\n";
}

}  // namespace

int run_fig1c(const ScenarioSpec& spec, const RunContext& ctx) {
  std::ostream& os = ctx.os();
  ExperimentConfig good = to_experiment_config(spec);
  os << "Good (well-connected) leader: node " << timing::resolve_leader(good)
     << "\n";
  fig1c_sweep(good, spec.n, ctx,
              "Figure 1(c): LAN, measured vs IID-predicted P_M per timeout "
              "(well-connected leader)");

  ExperimentConfig avg = good;
  avg.leader = pick_average_leader(expected_rtt_matrix(good));
  os << "Average leader: node " << avg.leader << "\n";
  fig1c_sweep(avg, spec.n, ctx,
              "Figure 1(c) variant: the same sweep with an average leader "
              "(<>LM / <>WLM need bigger timeouts, Section 5.2)");
  return 0;
}

int run_fig1d(const ScenarioSpec& spec, const RunContext& ctx) {
  const auto rs = run_experiment(spec);
  Table t({"timeout(ms)", "p (fraction timely)"});
  for (const auto& r : rs) {
    t.add_row({Table::num(r.timeout_ms, 0), Table::num(r.mean_p, 3)});
  }
  ctx.emit(t, std::string() +
          "Figure 1(d): WAN timeout -> fraction of timely messages "
          "(8 PlanetLab-profile sites, 33 runs x 300 rounds)");
  return 0;
}

int run_fig1e(const ScenarioSpec& spec, const RunContext& ctx) {
  const auto rs = run_experiment(spec);
  Table t({"timeout(ms)", "P_ES +-ci", "P_AFM +-ci", "P_LM +-ci",
           "P_WLM +-ci"});
  auto cell = [](const ModelTimeoutStats& m) {
    return Table::num(m.mean_pm, 3) + " +-" + Table::num(m.ci95_pm, 3);
  };
  for (const auto& r : rs) {
    t.add_row({Table::num(r.timeout_ms, 0),
               cell(r.models[model_index(TimingModel::kEs)]),
               cell(r.models[model_index(TimingModel::kAfm)]),
               cell(r.models[model_index(TimingModel::kLm)]),
               cell(r.models[model_index(TimingModel::kWlm)])});
  }
  ctx.emit(t, std::string() +
          "Figure 1(e): WAN, measured P_M per timeout (mean over 33 runs, "
          "95% CI)");
  return 0;
}

int run_fig1f(const ScenarioSpec& spec, const RunContext& ctx) {
  const auto rs = run_experiment(spec);
  Table t({"timeout(ms)", "var P_ES", "var P_AFM", "var P_LM", "var P_WLM"});
  for (const auto& r : rs) {
    t.add_row({Table::num(r.timeout_ms, 0),
               Table::num(r.models[model_index(TimingModel::kEs)].var_pm, 4),
               Table::num(r.models[model_index(TimingModel::kAfm)].var_pm, 4),
               Table::num(r.models[model_index(TimingModel::kLm)].var_pm, 4),
               Table::num(r.models[model_index(TimingModel::kWlm)].var_pm, 4)});
  }
  ctx.emit(t, std::string() +
          "Figure 1(f): WAN, across-run variance of P_M per timeout");
  return 0;
}

int run_fig1g(const ScenarioSpec& spec, const RunContext& ctx) {
  const auto rs = run_experiment(spec);
  const auto needed = [&](TimingModel m) {
    return spec.decision_rounds[static_cast<std::size_t>(model_index(m))];
  };
  Table t({"timeout(ms)",
           "ES(" + std::to_string(needed(TimingModel::kEs)) + "r)", "cens",
           "<>AFM(" + std::to_string(needed(TimingModel::kAfm)) + "r)",
           "<>LM(" + std::to_string(needed(TimingModel::kLm)) + "r)",
           "<>WLM(" + std::to_string(needed(TimingModel::kWlm)) + "r)"});
  for (const auto& r : rs) {
    const auto& es = r.models[model_index(TimingModel::kEs)];
    t.add_row({Table::num(r.timeout_ms, 0),
               (es.censored_fraction > 0 ? ">=" : "") +
                   Table::num(es.mean_rounds, 1),
               Table::num(es.censored_fraction, 2),
               Table::num(r.models[model_index(TimingModel::kAfm)].mean_rounds, 1),
               Table::num(r.models[model_index(TimingModel::kLm)].mean_rounds, 1),
               Table::num(r.models[model_index(TimingModel::kWlm)].mean_rounds, 1)});
  }
  ctx.emit(t, std::string() +
          "Figure 1(g): WAN, average rounds until the global-decision "
          "conditions hold ('cens' = fraction of censored ES windows)");
  return 0;
}

int run_fig1h(const ScenarioSpec& spec, const RunContext& ctx) {
  const auto rs = run_experiment(spec);
  Table t({"timeout(ms)", "ES(ms)", "<>AFM(ms)", "<>LM(ms)", "<>WLM(ms)"});
  for (const auto& r : rs) {
    const auto& es = r.models[model_index(TimingModel::kEs)];
    t.add_row({Table::num(r.timeout_ms, 0),
               (es.censored_fraction > 0 ? ">=" : "") +
                   Table::num(es.mean_time_ms, 0),
               Table::num(r.models[model_index(TimingModel::kAfm)].mean_time_ms, 0),
               Table::num(r.models[model_index(TimingModel::kLm)].mean_time_ms, 0),
               Table::num(r.models[model_index(TimingModel::kWlm)].mean_time_ms, 0)});
  }
  ctx.emit(t, std::string() +
          "Figure 1(h): WAN, average time (ms) until the global-decision "
          "conditions hold (rounds x timeout)");
  return 0;
}

int run_fig1i(const ScenarioSpec& spec, const RunContext& ctx) {
  std::ostream& os = ctx.os();
  const auto rs = run_experiment(spec);

  Table t({"timeout(ms)", "<>LM rounds", "<>LM time(ms)", "<>WLM rounds",
           "<>WLM time(ms)"});
  double best_lm = 1e18, best_lm_t = 0, best_wlm = 1e18, best_wlm_t = 0;
  for (const auto& r : rs) {
    const auto& lm = r.models[model_index(TimingModel::kLm)];
    const auto& wlm = r.models[model_index(TimingModel::kWlm)];
    if (lm.mean_time_ms < best_lm) {
      best_lm = lm.mean_time_ms;
      best_lm_t = r.timeout_ms;
    }
    if (wlm.mean_time_ms < best_wlm) {
      best_wlm = wlm.mean_time_ms;
      best_wlm_t = r.timeout_ms;
    }
    t.add_row({Table::num(r.timeout_ms, 0), Table::num(lm.mean_rounds, 1),
               Table::num(lm.mean_time_ms, 0), Table::num(wlm.mean_rounds, 1),
               Table::num(wlm.mean_time_ms, 0)});
  }
  ctx.emit(t,
           "Figure 1(i): WAN, time to global-decision conditions vs "
           "timeout, <>LM and <>WLM (fine sweep)");

  os << "\nOptimal timeouts (paper: ~170 ms / ~730 ms for <>WLM, "
        "~210 ms / ~650 ms for <>LM, ~80 ms apart):\n";
  os << "  <>WLM: best timeout " << Table::num(best_wlm_t, 0)
     << " ms -> " << Table::num(best_wlm, 0) << " ms to decision\n";
  os << "  <>LM:  best timeout " << Table::num(best_lm_t, 0)
     << " ms -> " << Table::num(best_lm, 0) << " ms to decision\n";
  os << "  difference at the optima: "
     << Table::num(best_wlm - best_lm, 0)
     << " ms - the cost of dropping from Theta(n^2) to O(n) "
        "stable-state messages\n";
  return 0;
}

int run_appc_asymptotics(const ScenarioSpec& spec, const RunContext& ctx) {
  std::ostream& os = ctx.os();
  const double p = spec.iid_p;
  Table t({"n", "log10 E(D_ES)", "log10 E(D_LM)", "log10 E(D_WLM,4r)",
           "log10 E(D_WLM,7r)", "E(D_AFM)", "AFM Chernoff UB"});
  for (int n : spec.group_sizes) {
    const double afm = e_rounds_afm(n, p);
    const double ub = afm_chernoff_upper_bound(n, p);
    t.add_row({Table::integer(n),
               Table::num(log10_e_rounds(AnalyzedAlgorithm::kEs3, n, p), 2),
               Table::num(log10_e_rounds(AnalyzedAlgorithm::kLm3, n, p), 2),
               Table::num(log10_e_rounds(AnalyzedAlgorithm::kWlmDirect, n, p), 2),
               Table::num(log10_e_rounds(AnalyzedAlgorithm::kWlmSimulated, n, p), 2),
               Table::num(afm, 3),
               std::isinf(ub) ? std::string("inf") : Table::num(ub, 3)});
  }
  ctx.emit(t,
           "Appendix C: asymptotics of expected decision time in n "
           "(p = " + Table::num(p, 2) + "). ES/LM/WLM diverge; AFM -> 5.");

  os << "\nAFM convergence to 5 rounds for several p:\n";
  Table t2({"p", "E(D_AFM) n=8", "n=32", "n=128", "n=512"});
  for (double q : {0.6, 0.75, 0.9, 0.95}) {
    t2.add_row({Table::num(q, 2), Table::num(e_rounds_afm(8, q), 2),
                Table::num(e_rounds_afm(32, q), 2),
                Table::num(e_rounds_afm(128, q), 2),
                Table::num(e_rounds_afm(512, q), 2)});
  }
  ctx.emit(t2);
  return 0;
}

}  // namespace timing::scenario

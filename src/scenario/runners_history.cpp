// smr/linearizable: the operation-history linearizability gate
// (docs/HISTORY.md). Every trial runs closed-loop clients against an
// SmrGroup of register machines, with each main-phase consensus instance
// executed under its own seeded random fault plan (or the `fault=`
// override verbatim); the recorded invoke/ok/fail/info history must
// admit a linearization of the register spec. A violation prints a
// 1-minimal witness plus the exact replay command.
#include <algorithm>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "fault/chaos.hpp"
#include "fault/injector.hpp"
#include "fault/parser.hpp"
#include "history/history.hpp"
#include "history/linearizability.hpp"
#include "models/schedule.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_config.hpp"
#include "obs/trace_sink.hpp"
#include "scenario/runners.hpp"
#include "smr/client.hpp"

namespace timing::scenario {

namespace {

/// Maximum number of full witness reports printed; the rest are counted.
constexpr int kMaxReportedViolations = 5;

/// Owns the ScheduleSampler + FaultInjector composition behind one
/// fault-injected instance (FaultInjectedSampler only holds references).
class ChaosInstanceSampler final : public TimelinessSampler {
 public:
  ChaosInstanceSampler(const ScheduleConfig& scfg,
                       const fault::FaultPlan& plan,
                       const fault::InjectorConfig& icfg)
      : sampler_(scfg),
        injector_(plan, icfg),
        injected_(sampler_, injector_) {}

  int n() const noexcept override { return injected_.n(); }
  void sample_round(Round k, LinkMatrix& out) override {
    injected_.sample_round(k, out);
  }
  void sample_round(Round k, PackedLinkMatrix& out) override {
    injected_.sample_round(k, out);
  }
  FusedRoundEval sample_round_and_evaluate(Round k, ProcessId leader,
                                           PackedLinkMatrix& out,
                                           ColumnDeficits& cols) override {
    return injected_.sample_round_and_evaluate(k, leader, out, cols);
  }

 private:
  ScheduleSampler sampler_;
  fault::FaultInjector injector_;
  fault::FaultInjectedSampler injected_;
};

/// Crash round per process (0 = never) from a plan's crash/recover
/// events: a process that recovers before the instance ends is treated
/// as never-crashed for the schedule's correct-majority bookkeeping,
/// exactly as fault/chaos.cpp does.
std::vector<Round> crash_rounds_of(const fault::FaultPlan& plan, int n) {
  std::vector<Round> open(static_cast<std::size_t>(n), 0);
  for (const fault::FaultEvent& e : plan.events) {
    if (e.kind == fault::FaultKind::kCrash) {
      open[static_cast<std::size_t>(e.proc)] = e.from;
    } else if (e.kind == fault::FaultKind::kRecover) {
      open[static_cast<std::size_t>(e.proc)] = 0;
    }
  }
  return open;
}

struct Trial {
  bool linearizable = true;
  bool consistent = true;
  int ops_ok = 0;
  int ops_fail = 0;
  int ops_info = 0;
  int instances_run = 0;
  int instances_decided = 0;
  std::string report;              ///< "" when ok; else witness + replay
  std::vector<TraceEvent> events;  ///< kept only when tracing
};

}  // namespace

int run_smr_linearizable(const ScenarioSpec& spec, const RunContext& ctx) {
  const int n = spec.n;
  const ProcessId leader =
      spec.leader_policy == LeaderPolicy::kFixed ? spec.leader : 0;

  CorruptMode corrupt = CorruptMode::kNone;
  if (!spec.corrupt_spec.empty() &&
      !corrupt_mode_from_string(spec.corrupt_spec.c_str(), corrupt)) {
    ctx.os() << "error: bad corrupt mode '" << spec.corrupt_spec << "'\n";
    return 1;  // validate() normally catches this earlier
  }

  // A `fault=` override pins one plan for every main-phase instance.
  fault::FaultPlan fixed;
  const bool have_fixed = !spec.fault_spec.empty();
  if (have_fixed) {
    const fault::ParseResult pr = fault::load_fault_plan(spec.fault_spec);
    if (!pr.ok()) {
      ctx.os() << "error: bad fault plan: " << pr.error << "\n";
      return 1;
    }
    fixed = pr.plan;
    if (fixed.gsr < 1) {
      ctx.os() << "error: smr/linearizable needs a terminal `gsr @R` "
                  "marker in the fault plan (instances are capped past "
                  "it); got a plan without one\n";
      return 1;
    }
  }

  const TraceConfig trace = TraceConfig::from_env();
  // Span tracing rides the trace file: TIMING_SPANS=ids|timed adds span
  // (and, for timed, metrics-snapshot) events to each trial's stream.
  const SpanMode span_mode =
      trace.enabled() ? span_mode_from_env() : SpanMode::kOff;
  const int bound = fault::bound_after_gsr(spec.algorithm);
  const bool pipelined = spec.pipeline > 1 || spec.batch > 1;

  const auto trials = run_trials<Trial>(
      static_cast<std::size_t>(spec.runs), [&](std::size_t t) {
        const std::uint64_t trial_seed = substream_seed(spec.seed, t);

        SmrClientConfig ccfg;
        ccfg.n = n;
        ccfg.algorithm = spec.algorithm;
        ccfg.leader = leader;
        ccfg.clients = spec.clients;
        ccfg.reg_keys = spec.reg_keys;
        ccfg.append_keys = spec.append_keys;
        ccfg.seed = substream_seed(trial_seed, 1);
        ccfg.corrupt = corrupt;

        // Per-trial sink/tracer/registry: single-writer on this trial's
        // pool thread, drained below in trial order (determinism rule).
        BufferSink span_sink;
        SpanTracer tracer(&span_sink, span_mode);
        MetricsRegistry metrics;
        if (span_mode != SpanMode::kOff) {
          ccfg.spans = &tracer;
          ccfg.metrics = &metrics;
        }

        // Both harnesses draw instance environments from the same
        // recipe; `probe` marks the fault-free tail.
        auto make_env = [&](std::uint64_t inst_seed, bool probe,
                            std::uint64_t probe_salt) {
          InstanceEnv env;
          ScheduleConfig scfg;
          scfg.n = n;
          scfg.model = fault::native_model(spec.algorithm);
          scfg.leader = leader;
          if (!probe) {
            const fault::FaultPlan plan =
                have_fixed ? fixed
                           : fault::random_fault_plan(n, leader, inst_seed);
            scfg.gsr = plan.gsr;
            scfg.pre_gsr_p = spec.iid_p;
            scfg.seed = substream_seed(inst_seed, 1);
            scfg.crash_rounds = crash_rounds_of(plan, n);
            fault::InjectorConfig icfg;
            icfg.n = n;
            icfg.leader = leader;
            icfg.seed = substream_seed(inst_seed, 2);
            env.crash_rounds = scfg.crash_rounds;
            env.max_rounds =
                std::max(spec.rounds_per_run, plan.gsr + bound + 4);
            env.sampler =
                std::make_unique<ChaosInstanceSampler>(scfg, plan, icfg);
          } else {
            scfg.gsr = 1;
            scfg.seed = substream_seed(trial_seed, probe_salt);
            env.max_rounds = std::max(spec.rounds_per_run, 1 + bound + 4);
            env.sampler = std::make_unique<ScheduleSampler>(scfg);
          }
          return env;
        };

        const InstanceEnvFactory env_of = [&](int index) {
          if (index < ccfg.instances) {
            // Main phase: every instance runs under its own fault plan.
            return make_env(
                substream_seed(trial_seed,
                               100 + static_cast<std::uint64_t>(index)),
                false, 0);
          }
          // Probe phase: fault-free conforming schedule from round 1.
          return make_env(0, true,
                          1000 + static_cast<std::uint64_t>(index));
        };

        SmrClientReport rep;
        if (pipelined) {
          // Pipelined/batched form of the gate: same clients, op mix and
          // checker, but slots overlap and ops batch. Each (slot,
          // attempt) gets its own fault plan; on_probe_start flips the
          // factory to the fault-free tail.
          SmrPipelineConfig pcfg;
          pcfg.pipeline = spec.pipeline;
          pcfg.batch = spec.batch;
          bool probe_phase = false;
          pcfg.on_probe_start = [&] { probe_phase = true; };
          const SlotEnvFactory slot_env_of = [&](int slot, int attempt) {
            InstanceEnv env =
                probe_phase
                    ? make_env(0, true,
                               1000 +
                                   16 * static_cast<std::uint64_t>(slot) +
                                   static_cast<std::uint64_t>(attempt))
                    : make_env(
                          substream_seed(
                              substream_seed(
                                  trial_seed,
                                  100 + static_cast<std::uint64_t>(slot)),
                              static_cast<std::uint64_t>(attempt)),
                          false, 0);
            SlotEnv out;
            out.sampler = std::move(env.sampler);
            out.crash_rounds = std::move(env.crash_rounds);
            out.max_rounds = env.max_rounds;
            return out;
          };
          rep = run_pipelined_smr_clients(ccfg, pcfg, slot_env_of);
        } else {
          rep = run_smr_clients(ccfg, env_of);
        }
        Trial out;
        out.consistent = rep.consistent;
        out.ops_ok = rep.ops_ok;
        out.ops_fail = rep.ops_fail;
        out.ops_info = rep.ops_info;
        out.instances_run = rep.instances_run;
        out.instances_decided = rep.instances_decided;

        const History h = build_history(rep.events);
        const CheckResult check = check_history(h);
        out.linearizable = check.linearizable;
        if (!check.linearizable || !rep.consistent) {
          std::string r = "trial " + std::to_string(t) + " (seed " +
                          std::to_string(spec.seed) + "): ";
          if (!rep.consistent) {
            r += "replica fingerprints diverged after the decided log\n";
          }
          if (!check.linearizable) {
            r += check.witness.explanation + "\n";
            r += "minimal witness (key " +
                 std::to_string(check.witness.key) + "):\n";
            for (const Operation& op : check.witness.ops) {
              r += to_jsonl(op) + "\n";
            }
          }
          r += "replay: timing_lab run smr/linearizable seed=" +
               std::to_string(spec.seed) + " runs=" + std::to_string(t + 1) +
               (have_fixed ? " fault=\"" + spec.fault_spec + "\"" : "") +
               (corrupt != CorruptMode::kNone
                    ? std::string(" corrupt=") + to_string(corrupt)
                    : "") +
               (pipelined ? " pipeline=" + std::to_string(spec.pipeline) +
                                " batch=" + std::to_string(spec.batch)
                          : "") +
               "\n";
          out.report = r;
        }
        if (trace.enabled()) {
          out.events = rep.events;
          if (span_mode != SpanMode::kOff) {
            // Op history first (ts order), then the span stream, then the
            // trial's final latency snapshot (timed mode only).
            emit_metrics_snapshot(&tracer, metrics);
            out.events.insert(out.events.end(), span_sink.events().begin(),
                              span_sink.events().end());
          }
        }
        return out;
      });

  if (trace.enabled()) {
    std::ofstream f(trace.path);
    if (!f) {
      ctx.os() << "error: cannot open trace path " << trace.path << "\n";
      return 1;
    }
    write_trace_header(f, n);
    for (std::size_t t = 0; t < trials.size(); ++t) {
      write_trial(f, static_cast<int>(t), trials[t].events);
    }
  }

  long long ok = 0, fail = 0, info = 0, decided = 0, run = 0;
  int violations = 0;
  std::vector<std::string> reports;
  for (const Trial& trial : trials) {
    ok += trial.ops_ok;
    fail += trial.ops_fail;
    info += trial.ops_info;
    decided += trial.instances_decided;
    run += trial.instances_run;
    if (!trial.report.empty()) {
      ++violations;
      reports.push_back(trial.report);
    }
  }

  Table table({"trials", "instances", "decided", "ops ok", "ops fail",
               "ops info", "non-linearizable"});
  table.add_row({Table::integer(spec.runs), Table::integer(run),
                 Table::integer(decided), Table::integer(ok),
                 Table::integer(fail), Table::integer(info),
                 Table::integer(violations)});
  ctx.emit(table,
           "SMR linearizability gate: " + std::to_string(spec.runs) +
               " trials, n = " + std::to_string(n) + ", leader " +
               std::to_string(leader) + ", " + std::to_string(spec.clients) +
               " clients, " + std::to_string(spec.reg_keys) +
               " register + " + std::to_string(spec.append_keys) +
               " append keys, algorithm " + algorithm_key(spec.algorithm) +
               (corrupt != CorruptMode::kNone
                    ? std::string(", corrupt=") + to_string(corrupt)
                    : "") +
               (pipelined ? ", pipeline=" + std::to_string(spec.pipeline) +
                                ", batch=" + std::to_string(spec.batch)
                          : ""));

  if (violations > 0) {
    ctx.os() << "\n" << violations << " non-linearizable trial(s):\n";
    const int shown = std::min<int>(kMaxReportedViolations,
                                    static_cast<int>(reports.size()));
    for (int i = 0; i < shown; ++i) {
      ctx.os() << "\n" << reports[static_cast<std::size_t>(i)];
    }
    if (shown < static_cast<int>(reports.size())) {
      ctx.os() << "\n(" << reports.size() - static_cast<std::size_t>(shown)
               << " further reports suppressed)\n";
    }
    return 1;
  }
  ctx.os() << "\nAll " << spec.runs
           << " histories are linearizable and all applying replicas "
              "agree on the decided log.\n";
  return 0;
}

}  // namespace timing::scenario

#include "scenario/results.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <ostream>
#include <stdexcept>

namespace timing::scenario {

namespace {

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_string_array(std::ostream& out,
                        const std::vector<std::string>& vals) {
  out << '[';
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (i) out << ',';
    out << '"' << escape_json(vals[i]) << '"';
  }
  out << ']';
}

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  throw std::runtime_error("results line " + std::to_string(line_no) + ": " +
                           why);
}

std::optional<long long> find_int(const std::string& line,
                                  const std::string& key,
                                  std::size_t line_no) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(start, &end, 10);
  if (end == start || errno != 0) {
    fail(line_no, "bad integer for '" + key + "'");
  }
  return v;
}

long long require_int(const std::string& line, const std::string& key,
                      std::size_t line_no) {
  const auto v = find_int(line, key, line_no);
  if (!v) fail(line_no, "missing field '" + key + "'");
  return *v;
}

/// Reads the JSON string starting at the opening quote `line[pos]`;
/// advances pos past the closing quote.
std::string read_string(const std::string& line, std::size_t& pos,
                        std::size_t line_no) {
  if (pos >= line.size() || line[pos] != '"') {
    fail(line_no, "expected '\"'");
  }
  std::string out;
  for (std::size_t i = pos + 1; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') {
      pos = i + 1;
      return out;
    }
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= line.size()) break;
    switch (line[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'u': {
        if (i + 4 >= line.size()) fail(line_no, "truncated \\u escape");
        const std::string hex = line.substr(i + 1, 4);
        char* end = nullptr;
        const long cp = std::strtol(hex.c_str(), &end, 16);
        if (end != hex.c_str() + 4 || cp < 0 || cp > 0x7f) {
          fail(line_no, "unsupported \\u escape");
        }
        out += static_cast<char>(cp);
        i += 4;
        break;
      }
      default: fail(line_no, "unknown escape");
    }
  }
  fail(line_no, "unterminated string");
}

std::optional<std::string> find_str(const std::string& line,
                                    const std::string& key,
                                    std::size_t line_no) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  std::size_t at = pos + needle.size() - 1;  // the opening quote
  return read_string(line, at, line_no);
}

std::vector<std::string> require_string_array(const std::string& line,
                                              const std::string& key,
                                              std::size_t line_no) {
  const std::string needle = "\"" + key + "\":[";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) fail(line_no, "missing field '" + key + "'");
  std::size_t at = pos + needle.size();
  std::vector<std::string> out;
  if (at < line.size() && line[at] == ']') return out;
  while (true) {
    out.push_back(read_string(line, at, line_no));
    if (at >= line.size()) fail(line_no, "unterminated array");
    if (line[at] == ']') break;
    if (line[at] != ',') fail(line_no, "expected ',' or ']' in array");
    ++at;
  }
  return out;
}

}  // namespace

ResultWriter::ResultWriter(std::ostream& out, const std::string& scenario_name)
    : out_(out) {
  out_ << "{\"schema\":\"timing-lab-results\",\"v\":" << kResultsSchemaVersion
       << ",\"scenario\":\"" << escape_json(scenario_name) << "\"}\n";
}

void ResultWriter::add_table(const std::string& caption,
                             const std::vector<std::string>& cols,
                             const std::vector<std::vector<std::string>>& rows) {
  if (finished_) {
    throw std::logic_error("ResultWriter::add_table after finish");
  }
  const int id = tables_++;
  out_ << "{\"e\":\"table\",\"id\":" << id << ",\"caption\":\""
       << escape_json(caption) << "\",\"cols\":";
  write_string_array(out_, cols);
  out_ << "}\n";
  for (const auto& row : rows) {
    out_ << "{\"e\":\"row\",\"id\":" << id << ",\"v\":";
    write_string_array(out_, row);
    out_ << "}\n";
    ++rows_;
  }
}

void ResultWriter::finish() {
  if (finished_) return;
  finished_ = true;
  out_ << "{\"e\":\"end\",\"tables\":" << tables_ << ",\"rows\":" << rows_
       << "}\n";
  out_.flush();
}

long long ParsedResults::total_rows() const noexcept {
  long long n = 0;
  for (const ResultTable& t : tables) {
    n += static_cast<long long>(t.rows.size());
  }
  return n;
}

ParsedResults parse_results(std::istream& in) {
  ParsedResults res;
  bool have_header = false;
  bool have_end = false;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (have_end) fail(line_no, "content after end marker");
    if (line.front() != '{' || line.back() != '}') {
      fail(line_no, "not a JSON object");
    }

    if (const auto schema = find_str(line, "schema", line_no)) {
      if (*schema != "timing-lab-results") fail(line_no, "unknown schema");
      if (have_header) fail(line_no, "duplicate header");
      const long long v = require_int(line, "v", line_no);
      if (v != kResultsSchemaVersion) {
        fail(line_no, "unsupported schema version " + std::to_string(v));
      }
      const auto name = find_str(line, "scenario", line_no);
      if (!name || name->empty()) fail(line_no, "missing scenario name");
      res.version = static_cast<int>(v);
      res.scenario = *name;
      have_header = true;
      continue;
    }
    if (!have_header) fail(line_no, "record before header");

    const auto kind = find_str(line, "e", line_no);
    if (!kind) fail(line_no, "missing record kind");
    if (*kind == "table") {
      const long long id = require_int(line, "id", line_no);
      if (id != static_cast<long long>(res.tables.size())) {
        fail(line_no, "table ids must be declared sequentially from 0");
      }
      ResultTable t;
      t.id = static_cast<int>(id);
      const auto caption = find_str(line, "caption", line_no);
      if (!caption) fail(line_no, "missing field 'caption'");
      t.caption = *caption;
      t.cols = require_string_array(line, "cols", line_no);
      if (t.cols.empty()) fail(line_no, "table with no columns");
      res.tables.push_back(std::move(t));
    } else if (*kind == "row") {
      const long long id = require_int(line, "id", line_no);
      if (id < 0 || id >= static_cast<long long>(res.tables.size())) {
        fail(line_no, "row for undeclared table");
      }
      auto row = require_string_array(line, "v", line_no);
      ResultTable& t = res.tables[static_cast<std::size_t>(id)];
      if (row.size() != t.cols.size()) {
        fail(line_no, "row arity != column count");
      }
      t.rows.push_back(std::move(row));
    } else if (*kind == "end") {
      const long long tables = require_int(line, "tables", line_no);
      const long long rows = require_int(line, "rows", line_no);
      if (tables != static_cast<long long>(res.tables.size())) {
        fail(line_no, "end marker table count mismatch");
      }
      if (rows != res.total_rows()) {
        fail(line_no, "end marker row count mismatch");
      }
      have_end = true;
    } else {
      fail(line_no, "unknown record '" + *kind + "'");
    }
  }
  if (!have_header) throw std::runtime_error("results: missing header line");
  if (!have_end) throw std::runtime_error("results: missing end marker");
  return res;
}

ParsedResults parse_results_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open results file: " + path);
  return parse_results(in);
}

}  // namespace timing::scenario

// Scenario registry: the paper's figures, the appendix, and our
// ablations, each with the default (paper) parameters the former bench
// mains hardcoded. Keep the defaults in sync with EXPERIMENTS.md — the
// golden tests pin the default stdout of the fig1c/fig1g entries.
#include "scenario/registry.hpp"

#include "scenario/runners.hpp"

namespace timing::scenario {

namespace {

// -- Figure sweeps -----------------------------------------------------

ScenarioSpec analysis_defaults() {
  ScenarioSpec s;
  s.sampler = SamplerKind::kAnalysis;
  s.n = 8;
  return s;
}

// bench_util.hpp's wan_config(): the paper's WAN methodology.
ScenarioSpec wan_defaults() {
  ScenarioSpec s;
  s.sampler = SamplerKind::kWan;
  s.timeouts_ms = {140, 150, 160, 170, 180, 190, 200,
                   210, 230, 260, 300, 350};
  s.runs = 33;            // the paper's repetition count
  s.rounds_per_run = 300;  // the paper's run length
  s.start_points = 15;     // the paper's random starting points
  s.seed = 42;
  s.honor_env_runs = true;
  return s;
}

// bench_util.hpp's lan_config().
ScenarioSpec lan_defaults() {
  ScenarioSpec s;
  s.sampler = SamplerKind::kLan;
  s.timeouts_ms = {0.1, 0.15, 0.2, 0.25, 0.35, 0.5, 0.7, 0.9, 1.2, 1.6};
  s.runs = 25;
  s.rounds_per_run = 300;
  s.seed = 7;
  s.honor_env_runs = true;
  return s;
}

ScenarioSpec fig1i_defaults() {
  ScenarioSpec s = wan_defaults();
  s.timeouts_ms = {140, 150, 160, 165, 170, 175, 180, 190,
                   200, 210, 220, 230, 250, 270, 300};
  return s;
}

ScenarioSpec appc_defaults() {
  ScenarioSpec s = analysis_defaults();
  s.iid_p = 0.95;
  s.group_sizes = {4, 8, 16, 32, 64, 128, 256, 512};
  return s;
}

// -- Ablations ---------------------------------------------------------

ScenarioSpec paxos_recovery_defaults() {
  ScenarioSpec s;
  s.sampler = SamplerKind::kSchedule;
  s.runs = 1;  // the adversarial schedule is deterministic
  s.group_sizes = {5, 7, 9, 11, 13, 15, 21, 31};
  return s;
}

ScenarioSpec algorithms_live_defaults() {
  ScenarioSpec s;
  s.sampler = SamplerKind::kWan;
  s.timeouts_ms = {160, 200, 260};
  s.runs = 60;             // consensus instances per (algorithm, timeout)
  s.rounds_per_run = 400;  // round cap per instance
  s.seed = 0x1234;
  return s;
}

ScenarioSpec window_formula_defaults() {
  ScenarioSpec s;
  s.sampler = SamplerKind::kIid;
  s.runs = 20000;  // Monte-Carlo trials per grid cell
  s.seed = 20240707;
  return s;
}

ScenarioSpec simulation_cost_defaults() {
  ScenarioSpec s;
  s.sampler = SamplerKind::kSchedule;
  s.runs = 1;              // stable schedules are deterministic per seed
  s.rounds_per_run = 200;  // round cap per protocol option
  s.seed = 77;
  s.group_sizes = {8, 16, 32};
  return s;
}

ScenarioSpec group_size_defaults() {
  ScenarioSpec s;
  s.sampler = SamplerKind::kIid;
  s.iid_p = 0.95;
  s.runs = 1;               // one measurement run per group size
  s.rounds_per_run = 4000;  // run length (censoring horizon)
  s.start_points = 40;
  s.seed = 0xabc;
  s.group_sizes = {4, 6, 8, 12, 16, 24, 32, 48};
  return s;
}

// -- Granular (per-link timing models) ---------------------------------

ScenarioSpec granular_fig1_defaults() {
  ScenarioSpec s = wan_defaults();
  // One PlanetLab-style site (node 7) whose outgoing links carry no
  // timing obligations, and a flaky inbound path to node 6 downgraded to
  // partial synchrony. Override with link_models=SPEC.
  s.link_models = "sync:all;psync:*->6;async:7->*";
  return s;
}

ScenarioSpec granular_ablation_defaults() {
  ScenarioSpec s;
  s.sampler = SamplerKind::kIid;
  s.n = 8;
  s.iid_p = 0.95;
  s.runs = 20;              // measurement runs per sweep point
  s.rounds_per_run = 1000;  // rounds per run
  s.start_points = 15;
  s.seed = 0x9a41;
  s.async_fracs = {0.0, 0.05, 0.1, 0.2, 0.3, 0.5};
  s.psync_frac = 0.25;  // psync share of the remaining links
  return s;
}

// -- Chaos (fault-injection safety harness) ----------------------------

ScenarioSpec chaos_defaults() {
  ScenarioSpec s;
  s.sampler = SamplerKind::kSchedule;
  s.n = 5;
  s.iid_p = 0.4;  // pre-gsr per-link timeliness under the faults
  s.runs = 200;   // fault plans (one fresh seeded plan per trial)
  s.rounds_per_run = 80;  // floor for the round cap (bound-extended)
  s.seed = 0xc4a05;
  s.leader_policy = LeaderPolicy::kFixed;
  s.leader = 0;
  return s;
}

ScenarioSpec adversary_search_defaults() {
  ScenarioSpec s;
  s.sampler = SamplerKind::kSchedule;
  s.n = 5;
  s.iid_p = 0.4;  // pre-gsr per-link timeliness under the faults
  s.runs = 5;     // chaos executions averaged per candidate evaluation
  s.rounds_per_run = 80;  // floor for the per-evaluation round cap
  s.seed = 0xad5e7;
  s.leader_policy = LeaderPolicy::kFixed;
  s.leader = 0;
  s.algorithm = AlgorithmKind::kPaxos;  // no constant bound: most headroom
  s.budget = 2000;
  s.baseline = 2000;
  return s;
}

ScenarioSpec chaos_regression_defaults() {
  ScenarioSpec s = adversary_search_defaults();
  s.archive = "tests/golden/adversary";
  return s;
}

ScenarioSpec smr_linearizable_defaults() {
  ScenarioSpec s;
  s.sampler = SamplerKind::kSchedule;
  s.n = 5;
  s.iid_p = 0.4;  // pre-gsr per-link timeliness under the faults
  s.runs = 200;   // seeded trials (fresh fault plans per instance)
  s.rounds_per_run = 60;  // floor for the per-instance round cap
  s.seed = 0x115ab1e;
  s.leader_policy = LeaderPolicy::kFixed;
  s.leader = 0;
  return s;
}

ScenarioSpec smr_throughput_defaults() {
  ScenarioSpec s;
  s.sampler = SamplerKind::kWan;  // profile=lan switches testbeds
  s.n = 8;
  s.timeouts_ms = {200};  // round timeout = one virtual tick
  s.runs = 5;             // independent seeded trials
  s.rounds_per_run = 64;  // submission ticks per trial
  s.seed = 0x70b5;
  s.pipeline = 8;
  s.batch = 4;
  s.clients = 64;  // closed-loop clients (one outstanding op each)
  return s;
}

ScenarioSpec smr_cost_defaults() {
  ScenarioSpec s;
  s.sampler = SamplerKind::kSchedule;
  s.runs = 50;  // committed commands per (algorithm, n) point
  s.seed = 0x1000;
  s.group_sizes = {4, 8, 16, 32, 64};
  return s;
}

const std::vector<Scenario> kRegistry = {
    {"fig1a", "fig1a_analysis_high_p", "Figure 1(a)",
     "IID analysis: E[rounds] vs p, high-reliability regime", analysis_defaults,
     run_fig1a},
    {"fig1b", "fig1b_analysis_low_p", "Figure 1(b)",
     "IID analysis: E[rounds] vs p in [0.9, 1), ES off-chart",
     analysis_defaults, run_fig1b},
    {"fig1c", "fig1c_lan_pm", "Figure 1(c)",
     "LAN: measured vs IID-predicted P_M per timeout, both leaders",
     lan_defaults, run_fig1c},
    {"fig1d", "fig1d_wan_timeout_to_p", "Figure 1(d)",
     "WAN: round timeout -> fraction of timely messages", wan_defaults,
     run_fig1d},
    {"fig1e", "fig1e_wan_pm", "Figure 1(e)",
     "WAN: measured P_M per timeout with 95% CIs", wan_defaults, run_fig1e},
    {"fig1f", "fig1f_wan_variance", "Figure 1(f)",
     "WAN: across-run variance of P_M per timeout", wan_defaults, run_fig1f},
    {"fig1g", "fig1g_wan_rounds", "Figure 1(g)",
     "WAN: average rounds until global-decision conditions hold",
     wan_defaults, run_fig1g},
    {"fig1h", "fig1h_wan_time", "Figure 1(h)",
     "WAN: average time (rounds x timeout) to decision conditions",
     wan_defaults, run_fig1h},
    {"fig1i", "fig1i_timeout_tradeoff", "Figure 1(i)",
     "WAN: timeout-tuning zoom for <>LM / <>WLM (fine sweep)",
     fig1i_defaults, run_fig1i},
    {"appc", "appc_asymptotics", "Appendix C",
     "Asymptotics of expected decision time as n grows", appc_defaults,
     run_appc_asymptotics},
    {"ablation/paxos_recovery", "ablation_paxos_recovery", "ablation",
     "Paxos vs Algorithm 2 recovery under an adversarial <>WLM schedule",
     paxos_recovery_defaults, run_ablation_paxos_recovery},
    {"ablation/algorithms_live", "ablation_algorithms_live", "ablation",
     "Live algorithm executions over the simulated WAN",
     algorithms_live_defaults, run_ablation_algorithms_live},
    {"ablation/window_formula", "ablation_window_formula", "ablation",
     "Paper E(D) formula vs exact renewal expectation vs Monte-Carlo",
     window_formula_defaults, run_ablation_window_formula},
    {"ablation/simulation_cost", "ablation_simulation_cost", "ablation",
     "Wire cost of the Appendix B reduction vs direct Algorithm 2",
     simulation_cost_defaults, run_ablation_simulation_cost},
    {"ablation/group_size", "ablation_group_size", "ablation",
     "Sensitivity of the model comparison to the group size n",
     group_size_defaults, run_ablation_group_size},
    {"ablation/smr_cost", "ablation_smr_cost", "ablation",
     "Steady-state replication cost per committed command",
     smr_cost_defaults, run_ablation_smr_cost},
    {"granular/fig1", "granular_fig1_wan", "granular",
     "WAN Figure-1 sweep under per-link timing models (link_models=SPEC): "
     "granular P_M, per-class conformance, rounds to decision",
     granular_fig1_defaults, run_granular_fig1},
    {"granular/ablation", "granular_ablation_mix", "granular",
     "Async link-fraction sweep on IID links: measured granular P_M vs "
     "the Poisson-binomial analysis",
     granular_ablation_defaults, run_granular_ablation},
    {"chaos/consensus", "chaos_consensus", "chaos",
     "All four consensus algorithms under seeded random fault plans",
     chaos_defaults, run_chaos_consensus},
    {"chaos/single", "chaos_single", "chaos",
     "One algorithm (algorithm=KEY) under random or given fault plans",
     chaos_defaults, run_chaos_single},
    {"smr/linearizable", "smr_linearizable", "chaos",
     "Client op histories against the SMR layer checked for "
     "linearizability under fault injection",
     smr_linearizable_defaults, run_smr_linearizable},
    {"adversary/search", "adversary_search", "adversary",
     "Fitness-guided hunt for worst-case fault schedules (algorithm=KEY, "
     "budget=N evaluations, baseline=N uniform plans to beat)",
     adversary_search_defaults, run_adversary_search},
    {"chaos/regression", "chaos_regression", "adversary",
     "Replay the archived minimized adversary plans (archive=DIR) and "
     "hold each to its recorded verdict and fitness",
     chaos_regression_defaults, run_chaos_regression},
    {"smr/throughput", "smr_throughput", "smr",
     "Pipelined, batched replicated-log load: ops/sec and commit-latency "
     "quantiles vs the serialized baseline",
     smr_throughput_defaults, run_smr_throughput},
};

}  // namespace

const std::vector<Scenario>& registry() { return kRegistry; }

const Scenario* find_scenario(const std::string& name) {
  for (const Scenario& s : kRegistry) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

}  // namespace timing::scenario

// Ablation scenarios — the former ablation_* bench mains driven by a
// ScenarioSpec. Each family reuses the spec's generic repetition fields
// for its natural knob (ScenarioSpec::runs doc comment): consensus
// instances, committed commands, Monte-Carlo trials; rounds_per_run is
// the round cap / run length. Default specs in registry.cpp reproduce the
// original hardcoded values, keeping default output byte-identical.
#include <algorithm>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/equations.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "consensus/factory.hpp"
#include "consensus/paxos.hpp"
#include "consensus/wlm.hpp"
#include "giraf/engine.hpp"
#include "harness/measurement.hpp"
#include "models/schedule.hpp"
#include "models/timing_model.hpp"
#include "net/codec.hpp"
#include "net/transport.hpp"
#include "oracles/omega.hpp"
#include "scenario/runners.hpp"
#include "sim/latency_model.hpp"
#include "sim/sampler.hpp"
#include "smr/smr.hpp"

namespace timing::scenario {

// ---------------------------------------------------------------------------
// ablation/paxos_recovery
// ---------------------------------------------------------------------------

namespace {

struct RecoveryResult {
  Round decision_round = -1;
  int ballots = 0;
};

// Builds the adversarial <>WLM-conforming matrix for one round.
LinkMatrix adversary_matrix(int n, ProcessId leader, int reveal_index) {
  const int maj = majority_size(n);
  LinkMatrix a(n, kLost);
  for (ProcessId i = 0; i < n; ++i) a.set(i, i, 0);
  for (ProcessId d = 0; d < n; ++d) a.set(d, leader, 0);  // leader n-source
  // Low group: acceptors 1 .. maj-2 (seeded with the lowest promises).
  for (ProcessId s = 1; s <= maj - 2; ++s) a.set(leader, s, 0);
  // One rotating high-promise acceptor.
  const ProcessId fresh = static_cast<ProcessId>(
      std::min(n - 1, maj - 1 + reveal_index));
  a.set(leader, fresh, 0);
  return a;
}

RecoveryResult run_paxos_recovery(int n) {
  const ProcessId leader = 0;
  std::vector<std::unique_ptr<Protocol>> group;
  std::vector<PaxosConsensus*> raw;
  for (ProcessId i = 0; i < n; ++i) {
    auto p = std::make_unique<PaxosConsensus>(i, n, 100 + i);
    raw.push_back(p.get());
    group.push_back(std::move(p));
  }
  for (ProcessId i = 1; i < n; ++i) raw[i]->seed_promise(1000 * i);
  auto oracle = std::make_shared<DesignatedOracle>(leader);
  RoundEngine engine(std::move(group), oracle);
  for (Round k = 1; k <= 40 * n; ++k) {
    const int reveal = std::max(0, raw[0]->ballots_started() - 1);
    engine.step(adversary_matrix(n, leader, reveal));
    if (engine.all_alive_decided()) {
      return {engine.global_decision_round(), raw[0]->ballots_started()};
    }
  }
  return {-1, raw[0]->ballots_started()};
}

RecoveryResult run_wlm_recovery(int n) {
  const ProcessId leader = 0;
  std::vector<std::unique_ptr<Protocol>> group;
  for (ProcessId i = 0; i < n; ++i) {
    group.push_back(std::make_unique<WlmConsensus>(i, n, 100 + i));
  }
  auto oracle = std::make_shared<DesignatedOracle>(leader);
  RoundEngine engine(std::move(group), oracle);
  int reveal = 0;
  for (Round k = 1; k <= 40 * n; ++k) {
    engine.step(adversary_matrix(n, leader, reveal));
    ++reveal;  // rotate the "fresh" member every round: mobile majorities
    if (engine.all_alive_decided()) {
      return {engine.global_decision_round(), 0};
    }
  }
  return {-1, 0};
}

}  // namespace

int run_ablation_paxos_recovery(const ScenarioSpec& spec,
                                const RunContext& ctx) {
  Table t({"n", "Paxos rounds", "Paxos ballots", "Algorithm 2 rounds"});
  const std::vector<int>& ns = spec.group_sizes;
  struct Point {
    RecoveryResult paxos, wlm;
  };
  const auto points = run_trials<Point>(ns.size(), [&](std::size_t i) {
    return Point{run_paxos_recovery(ns[i]), run_wlm_recovery(ns[i])};
  });
  for (std::size_t i = 0; i < ns.size(); ++i) {
    t.add_row({Table::integer(ns[i]),
               Table::integer(points[i].paxos.decision_round),
               Table::integer(points[i].paxos.ballots),
               Table::integer(points[i].wlm.decision_round)});
  }
  ctx.emit(t,
           "Ablation ([13] / Section 3): global decision under an "
           "adversarial minimally-<>WLM schedule with staggered pre-GSR "
           "ballots. Paxos recovery grows linearly with n; Algorithm 2 is "
           "constant.");
  ctx.os() << "\nNote: every round of the schedule satisfies <>WLM "
              "(leader column timely + a majority into the leader), yet "
              "Paxos's 'chase' pays ~2 rounds per hidden ballot tier.\n";
  return 0;
}

// ---------------------------------------------------------------------------
// ablation/algorithms_live
// ---------------------------------------------------------------------------

namespace {

struct LiveRow {
  double mean_rounds = 0.0;
  double mean_msgs = 0.0;
  double timely_pct = 0.0;
  double late_pct = 0.0;
  double lost_pct = 0.0;
  int failures = 0;
};

struct LiveInstance {
  Round decided = -1;
  EngineStats stats;
};

LiveRow run_algo(AlgorithmKind kind, double timeout_ms, int instances,
                 int round_cap, std::uint64_t seed) {
  // Each instance is seeded by its index alone, so the parallel fan-out
  // returns the same per-instance results for any TIMING_THREADS.
  const auto outs = run_trials<LiveInstance>(
      static_cast<std::size_t>(instances), [&](std::size_t inst) {
        WanProfile prof;
        WanLatencyModel model(prof,
                              seed + static_cast<std::uint64_t>(inst) * 7919);
        LatencyTimelinessSampler sampler(model, timeout_ms);
        std::vector<Value> proposals;
        for (int i = 0; i < 8; ++i) proposals.push_back(100 + i);
        auto oracle = std::make_shared<DesignatedOracle>(WanLatencyModel::kUk);
        RoundEngine engine(make_group(kind, proposals), oracle);
        LiveInstance out;
        out.decided = engine.run(sampler, round_cap);
        out.stats = engine.stats();
        return out;
      });
  RunningStats rounds, msgs;
  // Engine-side message-fate totals: the engine's own view of the
  // simulated network quality, cross-checkable against the sampler's p.
  long long sent = 0, timely = 0, late = 0, lost = 0;
  int failures = 0;
  for (const LiveInstance& inst : outs) {
    sent += inst.stats.messages_sent;
    timely += inst.stats.timely_deliveries;
    late += inst.stats.late_messages;
    lost += inst.stats.lost_messages;
    if (inst.decided < 0) {
      ++failures;
      continue;
    }
    rounds.add(static_cast<double>(inst.decided));
    msgs.add(static_cast<double>(inst.stats.messages_sent));
  }
  const auto share = [&](long long part) {
    return sent > 0 ? 100.0 * static_cast<double>(part) /
                          static_cast<double>(sent)
                    : 0.0;
  };
  return {rounds.mean(), msgs.mean(), share(timely), share(late),
          share(lost), failures};
}

}  // namespace

int run_ablation_algorithms_live(const ScenarioSpec& spec,
                                 const RunContext& ctx) {
  const int instances = spec.runs;
  const int round_cap = spec.rounds_per_run;
  const AlgorithmKind kinds[] = {AlgorithmKind::kWlm, AlgorithmKind::kLm3,
                                 AlgorithmKind::kAfm5, AlgorithmKind::kEs3,
                                 AlgorithmKind::kLmOverWlm,
                                 AlgorithmKind::kPaxos};
  for (double timeout : spec.timeouts_ms) {
    Table t({"algorithm", "mean rounds to global decision", "mean messages",
             "timely%", "late%", "lost%",
             "undecided@" + std::to_string(round_cap) + "r"});
    for (AlgorithmKind k : kinds) {
      const LiveRow r = run_algo(k, timeout, instances, round_cap, spec.seed);
      t.add_row({to_string(k), Table::num(r.mean_rounds, 2),
                 Table::num(r.mean_msgs, 0), Table::num(r.timely_pct, 1),
                 Table::num(r.late_pct, 1), Table::num(r.lost_pct, 1),
                 Table::integer(r.failures)});
    }
    ctx.emit(t, "Actual algorithm executions over the simulated WAN, "
                "timeout = " +
                    Table::num(timeout, 0) + " ms, " +
                    std::to_string(instances) + " instances");
    ctx.os() << "\n";
  }
  ctx.os()
      << "Algorithm 2 (O(n) messages) decides in nearly the same number of\n"
         "rounds as the Theta(n^2) <>LM algorithm while sending a fraction\n"
         "of the messages - the paper's headline result, on live runs.\n";
  return 0;
}

// ---------------------------------------------------------------------------
// ablation/window_formula
// ---------------------------------------------------------------------------

namespace {

double monte_carlo(double p_round, int needed, int trials, Rng& rng) {
  RunningStats stats;
  for (int t = 0; t < trials; ++t) {
    int streak = 0;
    int round = 0;
    for (;;) {
      ++round;
      streak = rng.bernoulli(p_round) ? streak + 1 : 0;
      if (streak >= needed) break;
      if (round > 100000000) break;  // unreachable at these parameters
    }
    stats.add(round);
  }
  return stats.mean();
}

}  // namespace

int run_ablation_window_formula(const ScenarioSpec& spec,
                                const RunContext& ctx) {
  using namespace timing::analysis;
  const int trials = spec.runs;
  Table t({"P (round ok)", "R", "paper E(D)", "exact E(D)", "Monte-Carlo",
           "paper/exact"});
  struct GridCell {
    int r;
    double p;
  };
  std::vector<GridCell> grid;
  for (int r : {3, 4, 5, 7}) {
    for (double p : {0.5, 0.7, 0.9, 0.95, 0.99}) grid.push_back({r, p});
  }
  // Each grid cell simulates on its own counter-based sub-stream, so the
  // fan-out stays reproducible (the former shared Rng would have made
  // results depend on execution order).
  const auto mcs = run_trials<double>(grid.size(), [&](std::size_t i) {
    Rng rng = substream(spec.seed, i);
    return monte_carlo(grid[i].p, grid[i].r, trials, rng);
  });
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double paper = expected_rounds(grid[i].p, grid[i].r);
    const double exact = exact_expected_rounds(grid[i].p, grid[i].r);
    t.add_row({Table::num(grid[i].p, 2), Table::integer(grid[i].r),
               Table::num(paper, 2), Table::num(exact, 2),
               Table::num(mcs[i], 2), Table::num(paper / exact, 3)});
  }
  ctx.emit(t,
           "Window-formula ablation: the paper's E(D) = P^-R + (R-1) vs "
           "the exact run-of-R renewal expectation vs simulation");

  ctx.os() << "\nEffect on Figure 1(b) (n=8): expected rounds, paper vs "
              "exact formula\n";
  Table f({"p", "<>WLM direct paper", "exact", "<>LM paper", "exact",
           "<>AFM paper", "exact"});
  for (double p : {0.90, 0.92, 0.95, 0.97, 0.99}) {
    f.add_row({Table::num(p, 2),
               Table::num(e_rounds_wlm_direct(8, p), 1),
               Table::num(e_rounds_exact(AnalyzedAlgorithm::kWlmDirect, 8, p), 1),
               Table::num(e_rounds_lm(8, p), 1),
               Table::num(e_rounds_exact(AnalyzedAlgorithm::kLm3, 8, p), 1),
               Table::num(e_rounds_afm(8, p), 1),
               Table::num(e_rounds_exact(AnalyzedAlgorithm::kAfm5, 8, p), 1)});
  }
  ctx.emit(f);
  ctx.os() << "\nThe model ranking at every p is unchanged; only the "
              "absolute round counts shift where P_M is far from 1.\n";
  return 0;
}

// ---------------------------------------------------------------------------
// ablation/simulation_cost
// ---------------------------------------------------------------------------

namespace {

struct Cost {
  Round decision_round = -1;
  long long stable_msgs = 0;
  long long stable_bytes = 0;
};

// Byte accounting needs message contents; we intercept by wrapping each
// protocol and encoding what it sends.
class ByteCounter final : public Protocol {
 public:
  ByteCounter(std::unique_ptr<Protocol> inner, long long* bytes,
              long long* msgs)
      : inner_(std::move(inner)), bytes_(bytes), msgs_(msgs) {}

  SendSpec initialize(ProcessId hint) override {
    return count(inner_->initialize(hint));
  }
  SendSpec compute(Round k, const RoundMsgs& received,
                   ProcessId hint) override {
    return count(inner_->compute(k, received, hint));
  }
  bool has_decided() const noexcept override { return inner_->has_decided(); }
  Value decision() const noexcept override { return inner_->decision(); }

 private:
  SendSpec count(SendSpec spec) {
    Bytes wire;
    encode(Envelope{0, 0, spec.msg}, wire);
    long long copies = 0;
    for (ProcessId d : spec.dests) {
      if (d != self_counted_) ++copies;
    }
    // Destination lists never include duplicates in our protocols; self
    // is skipped by the engine.
    *bytes_ = static_cast<long long>(wire.size()) * copies;
    *msgs_ = copies;
    return spec;
  }

  std::unique_ptr<Protocol> inner_;
  long long* bytes_;
  long long* msgs_;
  ProcessId self_counted_ = kNoProcess;  // self never in dests for our protos
};

Cost run_cost(AlgorithmKind kind, TimingModel network, int n, int round_cap,
              std::uint64_t seed) {
  std::vector<long long> bytes(static_cast<std::size_t>(n), 0);
  std::vector<long long> msgs(static_cast<std::size_t>(n), 0);
  std::vector<std::unique_ptr<Protocol>> group;
  for (ProcessId i = 0; i < n; ++i) {
    group.push_back(std::make_unique<ByteCounter>(
        make_protocol(kind, i, n, 100 + i), &bytes[static_cast<std::size_t>(i)],
        &msgs[static_cast<std::size_t>(i)]));
  }
  auto oracle = std::make_shared<DesignatedOracle>(0);
  RoundEngine engine(std::move(group), oracle);

  ScheduleConfig sched;
  sched.n = n;
  sched.model = network;
  sched.leader = 0;
  sched.gsr = 1;  // stable from the start: measure the steady state
  sched.seed = seed;
  ScheduleSampler sampler(sched);

  Cost cost;
  LinkMatrix a(n);
  std::vector<long long> round_msgs, round_bytes;
  for (Round k = 1; k <= round_cap; ++k) {
    sampler.sample_round(k, a);
    engine.step(a);
    long long m = 0, b = 0;
    for (ProcessId i = 0; i < n; ++i) {
      m += msgs[static_cast<std::size_t>(i)];
      b += bytes[static_cast<std::size_t>(i)];
    }
    round_msgs.push_back(m);
    round_bytes.push_back(b);
    if (engine.all_alive_decided()) {
      cost.decision_round = engine.global_decision_round();
      break;
    }
  }
  // Steady-state per-round cost: average the last two rounds, so the
  // simulation's alternating relay/inner rounds are both represented
  // (the relay rounds carry the O(n^3) payload).
  const std::size_t have = round_msgs.size();
  const std::size_t take = std::min<std::size_t>(2, have);
  for (std::size_t i = have - take; i < have; ++i) {
    cost.stable_msgs += round_msgs[i];
    cost.stable_bytes += round_bytes[i];
  }
  cost.stable_msgs /= static_cast<long long>(take);
  cost.stable_bytes /= static_cast<long long>(take);
  return cost;
}

}  // namespace

int run_ablation_simulation_cost(const ScenarioSpec& spec,
                                 const RunContext& ctx) {
  const std::vector<int>& ns = spec.group_sizes;
  const int cap = spec.rounds_per_run;
  // The 3x3 (group size x protocol option) grid runs as independent
  // trials on the thread pool; rows are emitted in grid order below.
  struct Cell {
    Cost direct, simulated, native;
  };
  const auto cells = run_trials<Cell>(ns.size(), [&](std::size_t i) {
    const int n = ns[i];
    return Cell{run_cost(AlgorithmKind::kWlm, TimingModel::kWlm, n, cap,
                         spec.seed),
                run_cost(AlgorithmKind::kLmOverWlm, TimingModel::kWlm, n, cap,
                         spec.seed),
                run_cost(AlgorithmKind::kLm3, TimingModel::kLm, n, cap,
                         spec.seed)};
  });
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const int n = ns[i];
    Table t({"protocol", "network", "decision round", "msgs/round",
             "bytes/round"});
    const Cost& direct = cells[i].direct;
    const Cost& simulated = cells[i].simulated;
    const Cost& native = cells[i].native;
    t.add_row({"Algorithm 2 (direct)", "<>WLM",
               Table::integer(direct.decision_round),
               Table::integer(direct.stable_msgs),
               Table::integer(direct.stable_bytes)});
    t.add_row({"LM-3 over Algorithm 3", "<>WLM",
               Table::integer(simulated.decision_round),
               Table::integer(simulated.stable_msgs),
               Table::integer(simulated.stable_bytes)});
    t.add_row({"LM-3 native", "<>LM (stronger!)",
               Table::integer(native.decision_round),
               Table::integer(native.stable_msgs),
               Table::integer(native.stable_bytes)});
    ctx.emit(t, "n = " + std::to_string(n));
    ctx.os() << "\n";
  }
  ctx.os()
      << "Classical reducibility calls <>LM and <>WLM equivalent; the wire\n"
         "bill disagrees: the Appendix B reduction inflates both the round\n"
         "count (x2+2) and the traffic (O(n^3) bytes/round), while the\n"
         "paper's direct Algorithm 2 stays at O(n) small messages.\n";
  return 0;
}

// ---------------------------------------------------------------------------
// ablation/group_size
// ---------------------------------------------------------------------------

int run_ablation_group_size(const ScenarioSpec& spec, const RunContext& ctx) {
  const double p = spec.iid_p;
  const int rounds = spec.rounds_per_run;
  const auto needed = [&](TimingModel m) {
    return spec.decision_rounds[static_cast<std::size_t>(model_index(m))];
  };
  Table t({"n", "P_ES", "P_AFM", "P_LM", "P_WLM",
           "rounds ES(" + std::to_string(needed(TimingModel::kEs)) + ")",
           "AFM(" + std::to_string(needed(TimingModel::kAfm)) + ")",
           "LM(" + std::to_string(needed(TimingModel::kLm)) + ")",
           "WLM(" + std::to_string(needed(TimingModel::kWlm)) + ")"});
  const std::vector<int>& ns = spec.group_sizes;
  // One measurement run per group size, fanned over the pool; sampler
  // seeds depend only on n, so the sweep is thread-count-invariant.
  const auto runs = measure_runs(
      static_cast<int>(ns.size()),
      [&](int i) -> std::unique_ptr<TimelinessSampler> {
        const int n = ns[static_cast<std::size_t>(i)];
        return std::make_unique<IidTimelinessSampler>(
            n, p, spec.seed + static_cast<std::uint64_t>(n));
      },
      rounds, /*leader=*/0);
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const RunMeasurement& m = runs[i];
    Rng rng(7);
    auto window = [&](TimingModel model) {
      const auto ds = decision_stats(
          m.sat[static_cast<std::size_t>(model_index(model))], needed(model),
          spec.start_points, rng);
      return (ds.censored_fraction > 0.5 ? ">=" : "") +
             Table::num(ds.mean_rounds, 1);
    };
    t.add_row({Table::integer(ns[i]),
               Table::num(m.incidence(TimingModel::kEs), 3),
               Table::num(m.incidence(TimingModel::kAfm), 3),
               Table::num(m.incidence(TimingModel::kLm), 3),
               Table::num(m.incidence(TimingModel::kWlm), 3),
               window(TimingModel::kEs), window(TimingModel::kAfm),
               window(TimingModel::kLm), window(TimingModel::kWlm)});
  }
  ctx.emit(t,
           "Group-size sweep, IID p = " + Table::num(p, 2) +
           " (measured; compare Appendix C). "
           "'>=' marks censored (" + std::to_string(rounds) +
           "-round run ended first).");
  ctx.os() << "\nChoosing a timing model depends on n as much as on p: at "
              "n = 48, <>AFM's conditions hold essentially always while "
              "ES's never do.\n";
  return 0;
}

// ---------------------------------------------------------------------------
// ablation/smr_cost
// ---------------------------------------------------------------------------

namespace {

struct PerCommand {
  double rounds = 0.0;
  double messages = 0.0;
  int decided = 0;
};

PerCommand run_sequence(AlgorithmKind kind, int n, int commands,
                        std::uint64_t seed) {
  SmrGroupConfig cfg;
  cfg.n = n;
  cfg.algorithm = kind;
  cfg.leader = 0;
  std::vector<std::unique_ptr<StateMachine>> machines;
  for (int i = 0; i < n; ++i) {
    machines.push_back(std::make_unique<KvStateMachine>());
  }
  SmrGroup group(cfg, std::move(machines));

  PerCommand out;
  long long rounds_total = 0;
  for (int c = 0; c < commands; ++c) {
    std::vector<Command> proposals;
    for (int i = 0; i < n; ++i) {
      proposals.push_back(make_kv_command(static_cast<std::uint32_t>(c % 16),
                                          static_cast<std::uint32_t>(c + i)));
    }
    ScheduleConfig sched;
    sched.n = n;
    sched.model = kind == AlgorithmKind::kLm3 ? TimingModel::kLm
                                              : TimingModel::kWlm;
    sched.leader = 0;
    sched.gsr = 1;  // stable regime: the common case the paper optimises
    sched.seed = seed + static_cast<std::uint64_t>(c);
    ScheduleSampler network(sched);
    const auto r = group.run_instance(proposals, network);
    if (!r.decided) continue;
    ++out.decided;
    rounds_total += r.rounds;
  }
  out.rounds = out.decided ? static_cast<double>(rounds_total) / out.decided
                           : 0.0;
  // Messages per command: rounds x per-round complexity of the pattern.
  const double per_round = kind == AlgorithmKind::kWlm
                               ? 2.0 * (n - 1)
                               : static_cast<double>(n) * (n - 1);
  out.messages = out.rounds * per_round;
  return out;
}

}  // namespace

int run_ablation_smr_cost(const ScenarioSpec& spec, const RunContext& ctx) {
  const int commands = spec.runs;
  Table t({"n", "Alg2 rounds/cmd", "Alg2 msgs/cmd", "LM-3 rounds/cmd",
           "LM-3 msgs/cmd", "msg ratio"});
  const std::vector<int>& ns = spec.group_sizes;
  struct Point {
    PerCommand wlm, lm;
  };
  const auto points = run_trials<Point>(ns.size(), [&](std::size_t i) {
    return Point{run_sequence(AlgorithmKind::kWlm, ns[i], commands, spec.seed),
                 run_sequence(AlgorithmKind::kLm3, ns[i], commands,
                              spec.seed)};
  });
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const PerCommand& wlm = points[i].wlm;
    const PerCommand& lm = points[i].lm;
    t.add_row({Table::integer(ns[i]), Table::num(wlm.rounds, 2),
               Table::num(wlm.messages, 0), Table::num(lm.rounds, 2),
               Table::num(lm.messages, 0),
               Table::num(lm.messages / wlm.messages, 1)});
  }
  ctx.emit(t,
           "Steady-state replication cost per committed command (stable "
           "leader, stable network, " + std::to_string(commands) +
           " commands per point)");
  ctx.os() << "\nAlgorithm 2 pays ~1 extra round per command and saves a\n"
              "factor ~n/2 in messages - at n = 64 every command costs\n"
              "hundreds of messages less. This is the paper's tradeoff\n"
              "expressed in the unit operators care about.\n";
  return 0;
}

}  // namespace timing::scenario

// smr/throughput: load the pipelined, batched replicated log
// (smr/replicated_log.hpp) with closed-loop clients over the calibrated
// LAN/WAN latency testbeds and report ops/sec plus commit-latency
// quantiles — always next to the serialized (pipeline=1, batch=1)
// baseline at the same seeds, so the pipelining win is a column, not a
// second invocation. Time is virtual: one tick = one round timeout, so
// every number is deterministic for a fixed spec and identical across
// TIMING_THREADS settings.
#include <algorithm>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "fault/chaos.hpp"
#include "fault/injector.hpp"
#include "fault/parser.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_config.hpp"
#include "obs/trace_sink.hpp"
#include "scenario/runners.hpp"
#include "sim/latency_model.hpp"
#include "sim/sampler.hpp"
#include "smr/replicated_log.hpp"
#include "smr/state_machine.hpp"

namespace timing::scenario {

namespace {

/// Owns the latency model + timeliness sampler (+ optional fault
/// injection) behind one slot attempt. Fresh per (slot, attempt): a
/// sampler's rounds must be strictly increasing, and each attempt's
/// engine restarts at round 1.
class LoadSlotSampler final : public TimelinessSampler {
 public:
  LoadSlotSampler(const ScenarioSpec& spec, double timeout_ms,
                  std::uint64_t model_seed, const fault::FaultPlan* plan,
                  std::uint64_t inject_seed, ProcessId leader) {
    if (spec.sampler == SamplerKind::kLan) {
      model_ = std::make_unique<LanLatencyModel>(spec.lan, model_seed);
    } else {
      model_ = std::make_unique<WanLatencyModel>(spec.wan, model_seed);
    }
    lat_ = std::make_unique<LatencyTimelinessSampler>(*model_, timeout_ms);
    if (plan != nullptr) {
      fault::InjectorConfig icfg;
      icfg.n = spec.n;
      icfg.leader = leader;
      icfg.seed = inject_seed;
      injector_ = std::make_unique<fault::FaultInjector>(*plan, icfg);
      injected_ =
          std::make_unique<fault::FaultInjectedSampler>(*lat_, *injector_);
    }
  }

  int n() const noexcept override {
    return injected_ ? injected_->n() : lat_->n();
  }
  void sample_round(Round k, LinkMatrix& out) override {
    active().sample_round(k, out);
  }
  void sample_round(Round k, PackedLinkMatrix& out) override {
    active().sample_round(k, out);
  }
  FusedRoundEval sample_round_and_evaluate(Round k, ProcessId leader,
                                           PackedLinkMatrix& out,
                                           ColumnDeficits& cols) override {
    return active().sample_round_and_evaluate(k, leader, out, cols);
  }

 private:
  TimelinessSampler& active() {
    return injected_ ? static_cast<TimelinessSampler&>(*injected_) : *lat_;
  }

  std::unique_ptr<LatencyModel> model_;
  std::unique_ptr<LatencyTimelinessSampler> lat_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::FaultInjectedSampler> injected_;
};

struct LoadTrial {
  long long ops_ok = 0;
  long long ops_fail = 0;
  long long ticks = 0;  ///< virtual ticks elapsed (main + drain)
  int slots_committed = 0;
  int slots_abandoned = 0;
  int instances = 0;
  bool consistent = true;
  MetricsRegistry metrics;         ///< op.commit_ns / op.queue_ns (virtual)
  std::vector<TraceEvent> events;  ///< kept only when tracing
};

struct LoadSummary {
  long long ops_ok = 0;
  long long ops_fail = 0;
  long long ticks = 0;
  long long slots_committed = 0;
  long long slots_abandoned = 0;
  long long instances = 0;
  bool consistent = true;
  MetricsRegistry metrics;
  std::vector<LoadTrial> trials;

  double ops_per_sec(double tick_ms) const {
    const double secs =
        static_cast<double>(ticks) * tick_ms / 1000.0;
    return secs > 0.0 ? static_cast<double>(ops_ok) / secs : 0.0;
  }
};

}  // namespace

int run_smr_throughput(const ScenarioSpec& spec, const RunContext& ctx) {
  const double timeout_ms = spec.timeouts_ms.front();
  const ProcessId leader = resolve_leader(spec);
  const long long tick_ns =
      static_cast<long long>(timeout_ms * 1e6);  // virtual-time unit

  // A `fault=` override pins one plan for every main-phase slot attempt
  // (message drops + crash rounds per the plan; the probe-free load loop
  // otherwise runs the raw latency testbed).
  fault::FaultPlan fixed;
  const bool have_fixed = !spec.fault_spec.empty();
  if (have_fixed) {
    const fault::ParseResult pr = fault::load_fault_plan(spec.fault_spec);
    if (!pr.ok()) {
      ctx.os() << "error: bad fault plan: " << pr.error << "\n";
      return 1;
    }
    fixed = pr.plan;
  }
  const int bound = fault::bound_after_gsr(spec.algorithm);

  const TraceConfig trace = TraceConfig::from_env();
  const SpanMode span_mode =
      trace.enabled() ? span_mode_from_env() : SpanMode::kOff;

  // One pass of the load at a given shape; `traced` only for the real
  // (pipelined) pass so the trace holds one stream per trial.
  const auto run_load = [&](int pipeline, int batch, bool traced) {
    const auto trials = run_trials<LoadTrial>(
        static_cast<std::size_t>(spec.runs), [&](std::size_t t) {
          const std::uint64_t trial_seed = substream_seed(spec.seed, t);
          LoadTrial out;

          BufferSink span_sink;
          SpanTracer tracer(&span_sink,
                            traced ? span_mode : SpanMode::kOff);

          ReplicatedLogConfig lcfg;
          lcfg.n = spec.n;
          lcfg.algorithm = spec.algorithm;
          lcfg.leader = leader;
          lcfg.pipeline = pipeline;
          lcfg.batch = batch;
          lcfg.max_rounds_per_instance = std::max(
              spec.rounds_per_run, (have_fixed ? fixed.gsr : 1) + bound + 4);
          if (traced && span_mode != SpanMode::kOff) lcfg.spans = &tracer;
          std::vector<std::unique_ptr<StateMachine>> machines;
          for (int i = 0; i < spec.n; ++i) {
            machines.push_back(std::make_unique<KvStateMachine>());
          }
          const SlotEnvFactory env_of = [&](int slot, int attempt) {
            const std::uint64_t slot_seed = substream_seed(
                trial_seed, 100 + static_cast<std::uint64_t>(slot));
            const std::uint64_t attempt_seed = substream_seed(
                slot_seed, static_cast<std::uint64_t>(attempt));
            SlotEnv env;
            env.sampler = std::make_unique<LoadSlotSampler>(
                spec, timeout_ms, substream_seed(attempt_seed, 1),
                have_fixed ? &fixed : nullptr,
                substream_seed(attempt_seed, 2), leader);
            if (have_fixed) {
              env.crash_rounds.assign(static_cast<std::size_t>(spec.n), 0);
              for (const fault::FaultEvent& e : fixed.events) {
                if (e.kind == fault::FaultKind::kCrash) {
                  env.crash_rounds[static_cast<std::size_t>(e.proc)] =
                      e.from;
                } else if (e.kind == fault::FaultKind::kRecover) {
                  env.crash_rounds[static_cast<std::size_t>(e.proc)] = 0;
                }
              }
            }
            return env;
          };
          ReplicatedLog rlog(lcfg, std::move(machines), env_of);

          const bool sp_on =
              lcfg.spans != nullptr && lcfg.spans->enabled();
          // Closed-loop clients: each keeps exactly one KV write
          // outstanding. Slots commit (or abandon) in submission order,
          // so a FIFO of submitted ops pairs completions back up without
          // encoding client ids into the commands.
          struct Pending {
            int client = 0;
            int rid = 0;
          };
          std::vector<Pending> fifo;
          std::size_t fifo_head = 0;
          std::vector<int> next_rid(static_cast<std::size_t>(spec.clients),
                                    1);
          int in_flight = 0;
          long long op_ordinal = 0;

          auto submit_ops = [&]() {
            // One outstanding op per client; clients take turns in op
            // ordinal order, so the closed loop stays at `clients` ops.
            while (in_flight < spec.clients) {
              const int c = static_cast<int>(
                  op_ordinal % static_cast<long long>(spec.clients));
              const int rid = next_rid[static_cast<std::size_t>(c)]++;
              const std::uint32_t key =
                  static_cast<std::uint32_t>(op_ordinal % 64);
              const Command cmd = make_kv_command(
                  key, static_cast<std::uint32_t>(op_ordinal & 0xFFFFFF));
              ++op_ordinal;
              std::uint64_t op_span = 0;
              if (sp_on) {
                op_span = make_span_id(span_kind::kOp,
                                       static_cast<std::uint64_t>(c),
                                       static_cast<std::uint64_t>(rid));
                lcfg.spans->begin(op_span, 0, span_kind::kOp);
              }
              rlog.submit(cmd, op_span);
              fifo.push_back({c, rid});
              ++in_flight;
            }
          };

          auto handle_committed = [&]() {
            for (const SlotRecord& sr : rlog.take_committed()) {
              out.instances += sr.attempts;
              for (const LogOp& op : sr.ops) {
                const Pending p = fifo[fifo_head++];
                --in_flight;
                if (sr.committed) {
                  ++out.ops_ok;
                  out.metrics.latency("op.commit_ns")
                      .record((sr.committed_tick - op.submit_tick) *
                              tick_ns);
                  out.metrics.latency("op.queue_ns")
                      .record((sr.sealed_tick - op.submit_tick) * tick_ns);
                } else {
                  ++out.ops_fail;
                }
                if (sp_on) {
                  lcfg.spans->end(
                      make_span_id(span_kind::kOp,
                                   static_cast<std::uint64_t>(p.client),
                                   static_cast<std::uint64_t>(p.rid)),
                      span_kind::kOp);
                }
              }
            }
          };

          for (int tick = 0; tick < spec.rounds_per_run; ++tick) {
            submit_ops();
            rlog.tick();
            handle_committed();
          }
          // Drain: everything submitted resolves within the attempt
          // budget; generous virtual-tick ceiling for the fault cases.
          const int drain_cap = 200 * spec.rounds_per_run + 10000;
          for (int tick = 0; tick < drain_cap && !rlog.drained(); ++tick) {
            rlog.tick();
            handle_committed();
          }
          TM_CHECK(rlog.drained(), "load did not drain");

          out.ticks = rlog.now();
          out.slots_committed = rlog.slots_committed();
          out.slots_abandoned = rlog.slots_abandoned();
          out.consistent = rlog.consistent_among(rlog.alive_at_end());
          if (traced && trace.enabled()) {
            out.events = span_sink.events();
          }
          return out;
        });

    LoadSummary sum;
    for (const LoadTrial& trial : trials) {
      sum.ops_ok += trial.ops_ok;
      sum.ops_fail += trial.ops_fail;
      sum.ticks += trial.ticks;
      sum.slots_committed += trial.slots_committed;
      sum.slots_abandoned += trial.slots_abandoned;
      sum.instances += trial.instances;
      sum.consistent = sum.consistent && trial.consistent;
      sum.metrics.merge(trial.metrics);  // trial order: deterministic
    }
    sum.trials = trials;
    return sum;
  };

  const LoadSummary load = run_load(spec.pipeline, spec.batch, true);
  // The serialized baseline that makes the pipelining win a number. At
  // pipeline=1 batch=1 the load IS the baseline; reuse it.
  const bool is_serial = spec.pipeline == 1 && spec.batch == 1;
  const LoadSummary serial = is_serial ? load : run_load(1, 1, false);

  if (trace.enabled()) {
    std::ofstream f(trace.path);
    if (!f) {
      ctx.os() << "error: cannot open trace path " << trace.path << "\n";
      return 1;
    }
    write_trace_header(f, spec.n);
    for (std::size_t t = 0; t < load.trials.size(); ++t) {
      write_trial(f, static_cast<int>(t), load.trials[t].events);
    }
  }

  const LogHistogram* lat = load.metrics.find_latency("op.commit_ns");
  const LogHistogram empty;
  if (lat == nullptr) lat = &empty;
  const double to_ms = 1e-6;
  const double speedup =
      serial.ops_per_sec(timeout_ms) > 0.0
          ? load.ops_per_sec(timeout_ms) / serial.ops_per_sec(timeout_ms)
          : 0.0;

  Table table({"config", "pipeline", "batch", "clients", "ops ok",
               "ops fail", "slots", "abandoned", "ops/sec", "p50 ms",
               "p99 ms", "p999 ms", "speedup"});
  const auto row = [&](const char* name, int pipeline, int batch,
                       const LoadSummary& s, double speed) {
    const LogHistogram* h = s.metrics.find_latency("op.commit_ns");
    if (h == nullptr) h = &empty;
    table.add_row(
        {name, Table::integer(pipeline), Table::integer(batch),
         Table::integer(spec.clients),
         Table::integer(static_cast<double>(s.ops_ok)),
         Table::integer(static_cast<double>(s.ops_fail)),
         Table::integer(static_cast<double>(s.slots_committed)),
         Table::integer(static_cast<double>(s.slots_abandoned)),
         Table::num(s.ops_per_sec(timeout_ms)),
         Table::num(static_cast<double>(h->quantile(0.50)) * to_ms),
         Table::num(static_cast<double>(h->quantile(0.99)) * to_ms),
         Table::num(static_cast<double>(h->quantile(0.999)) * to_ms),
         Table::num(speed)});
  };
  row("pipelined", spec.pipeline, spec.batch, load, speedup);
  if (!is_serial) row("serial", 1, 1, serial, 1.0);

  ctx.emit(table,
           "Replicated-log load: " + to_string(spec.sampler) +
               " profile, timeout " + Table::num(timeout_ms) + " ms, n = " +
               std::to_string(spec.n) + ", leader " +
               std::to_string(leader) + ", " + std::to_string(spec.clients) +
               " closed-loop clients, " + std::to_string(spec.runs) +
               " trials x " + std::to_string(spec.rounds_per_run) +
               " submission ticks, algorithm " +
               algorithm_key(spec.algorithm) +
               (have_fixed ? ", fault=\"" + spec.fault_spec + "\"" : ""));

  if (!load.consistent || !serial.consistent) {
    ctx.os() << "\nerror: applying replicas diverged after the decided "
                "log\n";
    return 1;
  }
  ctx.os() << "\nAll applying replicas agree on the decided log ("
           << load.instances << " instances across " << load.trials.size()
           << " trial(s); " << (is_serial ? 1 : 2)
           << " config(s)).\n";
  return 0;
}

}  // namespace timing::scenario
